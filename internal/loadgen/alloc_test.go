package loadgen

import (
	"testing"

	"pimds/internal/harness"
	"pimds/internal/obs"
	"pimds/internal/testenv"
	"pimds/internal/wire"
)

// These tests pin the //pimvet:allocfree annotations on the injector's
// inner loop: an allocation in op generation or response accounting is
// charged to every operation of every run and skews AllocsPerOp, the
// very metric benchdiff watches.

func skipIfRace(t *testing.T) {
	t.Helper()
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
}

func TestOpStreamNextAllocs(t *testing.T) {
	skipIfRace(t)
	for _, structure := range []string{StructSet, StructQueue, StructStack} {
		t.Run(structure, func(t *testing.T) {
			cfg := Config{Structure: structure, Seed: 1}.withDefaults()
			st := newOpStream(cfg, 0)
			var sink wire.Op
			avg := testing.AllocsPerRun(1000, func() {
				sink = st.next()
			})
			if avg != 0 {
				t.Errorf("opStream.next(%s): %.1f allocs/op, want 0", structure, avg)
			}
			_ = sink
		})
	}
}

func TestTraceFrameAllocs(t *testing.T) {
	skipIfRace(t)
	cfg := Config{Structure: StructSet, Seed: 1, TraceSample: 0.5}.withDefaults()
	st := newOpStream(cfg, 0)
	var sampled int
	avg := testing.AllocsPerRun(1000, func() {
		if _, ok := st.traceFrame(); ok {
			sampled++
		}
	})
	if avg != 0 {
		t.Errorf("traceFrame: %.1f allocs/op, want 0", avg)
	}
	if sampled == 0 {
		t.Error("traceFrame never sampled at 50%")
	}
}

func TestCountersObserveAllocs(t *testing.T) {
	skipIfRace(t)
	var ctr counters
	lat := &obs.Histogram{}
	avg := testing.AllocsPerRun(1000, func() {
		ctr.observe(lat, 1500, 1000, wire.StatusOK)
	})
	if avg != 0 {
		t.Errorf("counters.observe: %.1f allocs/op, want 0", avg)
	}
}

// TestZipfDistRunsAllocFree covers the combination cmd/pimload actually
// ships under -dist zipf: the generator's cached Zipf source keeps the
// hot path allocation-free end to end.
func TestZipfDistRunsAllocFree(t *testing.T) {
	skipIfRace(t)
	cfg := Config{
		Structure: StructSet,
		Seed:      1,
		Dist:      harness.Zipf{N: 1 << 16, S: 1.2},
	}.withDefaults()
	st := newOpStream(cfg, 0)
	var sink wire.Op
	avg := testing.AllocsPerRun(1000, func() {
		sink = st.next()
	})
	if avg != 0 {
		t.Errorf("opStream.next(zipf): %.1f allocs/op, want 0", avg)
	}
	_ = sink
}
