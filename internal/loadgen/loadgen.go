// Package loadgen is the traffic engine behind cmd/pimload: it drives
// a pimserve instance over the wire protocol from many concurrent
// connections, in closed loop (each connection keeps a fixed pipeline
// of operations outstanding) or open loop (operations are injected on
// a fixed schedule regardless of responses), and reports throughput
// plus client-observed latency percentiles in benchfmt form so
// benchdiff can compare runs.
package loadgen

//pimvet:allow-file determinism: a network load generator measures real wall-clock round trips by definition; key streams stay seeded/deterministic, only timing is physical

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pimds/internal/benchfmt"
	"pimds/internal/harness"
	"pimds/internal/obs"
	"pimds/internal/wire"
)

// Structure families a load can target (the server's list/skip/hash
// all speak "set").
const (
	StructSet   = "set"
	StructQueue = "queue"
	StructStack = "stack"
)

// Config configures one load run.
type Config struct {
	// Addr is the pimserve TCP address.
	Addr string
	// Structure selects the op family: set, queue or stack.
	Structure string
	// Conns is the number of concurrent connections. Default 1.
	Conns int
	// Pipeline is the operations kept outstanding per connection: the
	// closed-loop batch size, or the open-loop outstanding cap.
	// Default 1.
	Pipeline int
	// Rate, when > 0, switches to open loop at this total target
	// ops/s across all connections.
	Rate float64
	// Duration is how long to inject load. Default 1s.
	Duration time.Duration
	// Dist generates keys (sets) or values (queue/stack pushes).
	// Default Uniform over [0, 65536).
	Dist harness.KeyDist
	// Mix is the set operation mix; ignored for queue/stack, which
	// split 50/50 between insert and delete ends. Default Balanced.
	Mix harness.Mix
	// Seed makes the key streams reproducible (connection i uses
	// Seed+i). Timing, of course, is not.
	Seed int64
	// ScanSpan is the key width of generated range scans (mix kinds
	// scan:N); 0 keeps the generator default of 1/64 of the key space.
	ScanSpan int64
	// ScanLimit is the per-scan result cap sent on the wire; 0 lets the
	// server apply its maximum (wire.MaxScanLimit).
	ScanLimit int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// TraceSample is the fraction of request frames ([0, 1]) sent as
	// traced frames with the Sampled bit set, forcing server-side span
	// recording for those requests regardless of the server's own
	// sample rate. Trace IDs are minted per frame from the seeded
	// per-connection stream. Zero sends only plain frames.
	TraceSample float64
	// SLOP99 is the p99 latency budget. When set, the result carries
	// an SLO verdict: whether the observed p99 met the budget, and the
	// error-budget burn rate (fraction of responses over budget,
	// normalized by the 1% a p99 target allows — burn 1.0 means the
	// budget is being consumed exactly as fast as it accrues).
	SLOP99 time.Duration
}

func (c Config) withDefaults() Config {
	if c.Structure == "" {
		c.Structure = StructSet
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.Pipeline == 0 {
		c.Pipeline = 1
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Dist == nil {
		c.Dist = harness.Uniform{N: 1 << 16}
	}
	if c.Mix == (harness.Mix{}) {
		c.Mix = harness.Balanced()
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	Cfg          Config
	Ops          uint64        // completed operations (responses received)
	Errors       uint64        // responses with a non-OK status
	Elapsed      time.Duration // first send to last response
	Latency      *obs.Histogram
	TracedFrames uint64 // request frames sent with trace context
	OverBudget   uint64 // responses slower than Cfg.SLOP99
	Allocs       uint64 // client-side heap allocations during the run
	AllocBytes   uint64 // client-side bytes allocated during the run
	Scans        uint64 // completed range scans (subset of Ops)
	ScanKeys     uint64 // keys returned across all completed scans
}

// KeysPerScan is the mean result cardinality of the run's range scans.
func (r *Result) KeysPerScan() float64 {
	if r.Scans == 0 {
		return 0
	}
	return float64(r.ScanKeys) / float64(r.Scans)
}

// AllocsPerOp is the client-side allocation cost of one completed
// operation — the load generator's own efficiency, watched by
// benchdiff so the injector can't silently become the bottleneck.
func (r *Result) AllocsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Allocs) / float64(r.Ops)
}

// BytesPerOp is the client-side bytes allocated per completed op.
func (r *Result) BytesPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.AllocBytes) / float64(r.Ops)
}

// SLO is a run's verdict against the configured p99 budget.
type SLO struct {
	Budget     time.Duration `json:"budget_ns"`
	P99        time.Duration `json:"p99_ns"`
	Met        bool          `json:"met"`
	OverBudget uint64        `json:"over_budget"`
	// BurnRate is (fraction of responses over budget) / 0.01: how fast
	// the 1% error budget a p99 target grants is being consumed. ≤ 1
	// means within budget, 2 means burning twice as fast as allowed.
	BurnRate float64 `json:"burn_rate"`
}

// SLO evaluates the run against Cfg.SLOP99; ok is false when no
// budget was configured.
func (r *Result) SLO() (slo SLO, ok bool) {
	if r.Cfg.SLOP99 <= 0 {
		return SLO{}, false
	}
	_, _, p99 := r.Latency.Percentiles()
	slo = SLO{
		Budget:     r.Cfg.SLOP99,
		P99:        time.Duration(p99),
		Met:        p99 <= r.Cfg.SLOP99.Nanoseconds(),
		OverBudget: r.OverBudget,
	}
	if r.Ops > 0 {
		slo.BurnRate = float64(r.OverBudget) / float64(r.Ops) / 0.01
	}
	return slo, true
}

// OpsPerSec returns the aggregate throughput.
func (r *Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// mode describes the loop discipline for reports.
func (r *Result) mode() string {
	if r.Cfg.Rate > 0 {
		return fmt.Sprintf("open@%.0f/s", r.Cfg.Rate)
	}
	return "closed"
}

// String renders the one-line summary cmd/pimload prints (and CI
// greps), followed by an SLO verdict line when a budget is set.
func (r *Result) String() string {
	p50, p95, p99 := r.Latency.Percentiles()
	s := fmt.Sprintf("pimload: %d ops in %.2fs = %.0f ops/s (%s, %d conns, pipeline %d; p50=%s p95=%s p99=%s; %d errors; %.1f allocs/op)",
		r.Ops, r.Elapsed.Seconds(), r.OpsPerSec(), r.mode(), r.Cfg.Conns, r.Cfg.Pipeline,
		time.Duration(p50), time.Duration(p95), time.Duration(p99), r.Errors, r.AllocsPerOp())
	if r.Scans > 0 {
		s += fmt.Sprintf("\npimload: %d scans returned %d keys (%.1f keys/scan)", r.Scans, r.ScanKeys, r.KeysPerScan())
	}
	if slo, ok := r.SLO(); ok {
		verdict := "PASS"
		if !slo.Met {
			verdict = "FAIL"
		}
		s += fmt.Sprintf("\npimload: SLO p99≤%s: %s (p99=%s, %d/%d over budget, burn %.2f)",
			slo.Budget, verdict, slo.P99, slo.OverBudget, r.Ops, slo.BurnRate)
	}
	return s
}

// Report renders the run as a benchfmt report comparable by benchdiff.
// The allocation columns are client-side costs per completed op (see
// AllocsPerOp); "slo burn" is the error-budget burn rate, or a
// placeholder when no budget was configured so runs with and without
// an SLO still align structurally.
func (r *Result) Report() *benchfmt.Report {
	p50, p95, p99 := r.Latency.Percentiles()
	burn := "—"
	if slo, ok := r.SLO(); ok {
		burn = fmt.Sprintf("%.2f", slo.BurnRate)
	}
	tab := benchfmt.Table{
		Title:   fmt.Sprintf("pimload — %s workload", r.Cfg.Structure),
		Note:    fmt.Sprintf("dist %s, addr %s", r.Cfg.Dist.Name(), r.Cfg.Addr),
		Columns: []string{"conns", "mode", "pipeline", "ops/s", "p50 latency", "p95 latency", "p99 latency", "errors", "allocs/op", "B/op", "slo burn", "scans", "keys/scan"},
		Rows: [][]string{{
			fmt.Sprint(r.Cfg.Conns),
			r.mode(),
			fmt.Sprint(r.Cfg.Pipeline),
			fmt.Sprintf("%.0f", r.OpsPerSec()),
			time.Duration(p50).String(),
			time.Duration(p95).String(),
			time.Duration(p99).String(),
			fmt.Sprint(r.Errors),
			fmt.Sprintf("%.2f", r.AllocsPerOp()),
			fmt.Sprintf("%.0f", r.BytesPerOp()),
			burn,
			fmt.Sprint(r.Scans),
			fmt.Sprintf("%.1f", r.KeysPerScan()),
		}},
	}
	return &benchfmt.Report{
		Name:   "pimload",
		Params: benchfmt.Params{Seed: r.Cfg.Seed},
		Experiments: []benchfmt.ExperimentResult{{
			ID:          "pimload",
			Description: "network load against pimserve",
			Tables:      []benchfmt.Table{tab},
		}},
	}
}

// opStream yields the wire ops for one connection, deterministically
// from the connection's seed.
type opStream struct {
	structure string
	v2        bool // encode frames as V2 (required once the mix has ordered ops)
	gen       *harness.Generator
	nextID    uint64
	trng      uint64 // trace-sampling xorshift64 state
	traceBar  uint64 // sample a frame when the next draw ≤ this
}

func newOpStream(cfg Config, conn int) *opStream {
	st := &opStream{
		structure: cfg.Structure,
		v2:        cfg.Structure == StructSet && cfg.Mix.OrderedPct() > 0,
		gen:       harness.NewGenerator(cfg.Seed+int64(conn)*7919, cfg.Dist, cfg.Mix),
	}
	if cfg.ScanSpan > 0 {
		st.gen.ScanSpan = cfg.ScanSpan
	}
	if cfg.ScanLimit > 0 {
		st.gen.ScanLimit = uint16(cfg.ScanLimit)
	}
	if cfg.TraceSample > 0 {
		if cfg.TraceSample >= 1 {
			st.traceBar = ^uint64(0)
		} else {
			st.traceBar = uint64(cfg.TraceSample * float64(1<<63) * 2)
		}
		// Splitmix64 round over the connection seed: distinct nonzero
		// trace streams per connection.
		z := uint64(cfg.Seed+int64(conn)*7919)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		z ^= z >> 30
		z *= 0x94d049bb133111eb
		st.trng = z | 1
	}
	return st
}

// traceFrame draws the per-frame sampling decision and, for sampled
// frames, mints a nonzero trace ID from the same seeded stream. Runs
// once per request frame on both loop disciplines, so it is pinned
// allocation-free: tracing must not perturb the load being measured.
//
//pimvet:allocfree //pimvet:nonblocking
func (st *opStream) traceFrame() (wire.TraceContext, bool) {
	if st.traceBar == 0 {
		return wire.TraceContext{}, false
	}
	x := st.trng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	st.trng = x
	if x > st.traceBar {
		return wire.TraceContext{}, false
	}
	return wire.TraceContext{TraceID: x, Sampled: true}, true
}

// next returns the next operation. For queue/stack the set mix maps
// onto the two ends: Add→Enqueue/Push (the key is the value),
// everything else alternates Dequeue/Pop. This is the injector's inner
// loop — an allocation here is charged to every single op of every run
// (and shows up in AllocsPerOp), so it is pinned allocation-free.
//
//pimvet:allocfree //pimvet:nonblocking
func (st *opStream) next() wire.Op {
	o := st.gen.Next()
	op := wire.Op{ID: st.nextID, Key: o.Key}
	st.nextID++
	switch st.structure {
	case StructQueue:
		if o.Kind == harness.Add {
			op.Kind = wire.Enqueue
		} else {
			op.Kind = wire.Dequeue
		}
	case StructStack:
		if o.Kind == harness.Add {
			op.Kind = wire.Push
		} else {
			op.Kind = wire.Pop
		}
	default:
		switch o.Kind {
		case harness.Contains:
			op.Kind = wire.Contains
		case harness.Add:
			op.Kind = wire.Add
		case harness.Remove:
			op.Kind = wire.Remove
		case harness.Scan:
			op.Kind, op.Hi, op.Limit = wire.RangeScan, o.Hi, o.Limit
		case harness.Pred:
			op.Kind = wire.Pred
		case harness.Succ:
			op.Kind = wire.Succ
		case harness.PopMin:
			op.Kind = wire.PopMin
		default:
			op.Kind = wire.PopMax
		}
	}
	return op
}

// appendRequest encodes one request frame for this stream: the V2
// encoding once the mix carries ordered ops (their Hi/Limit need the
// wider records), the fixed encodings otherwise. The trace context
// rides in either encoding. Pinned with the loops that call it: the
// encode path runs once per frame of every measured run.
//
//pimvet:allocfree //pimvet:nonblocking
func (st *opStream) appendRequest(out []byte, batch []wire.Op, ctr *counters) ([]byte, error) {
	tc, traced := st.traceFrame()
	if traced {
		ctr.traced.Add(1)
	}
	if st.v2 {
		return wire.AppendRequestV2(out, batch, tc)
	}
	if traced {
		return wire.AppendRequestTraced(out, batch, tc)
	}
	return wire.AppendRequest(out, batch)
}

// Run executes the configured load and blocks until every connection
// has drained its outstanding operations.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Structure != StructSet && cfg.Structure != StructQueue && cfg.Structure != StructStack {
		return nil, fmt.Errorf("loadgen: unknown structure %q (want set|queue|stack)", cfg.Structure)
	}
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}

	conns := make([]net.Conn, cfg.Conns)
	for i := range conns {
		nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
		if err != nil {
			for _, c := range conns[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
		}
		conns[i] = nc
	}

	res := &Result{Cfg: cfg, Latency: &obs.Histogram{}}
	var (
		ctr    counters
		stop   = make(chan struct{})
		wg     sync.WaitGroup
		runErr atomic.Value
	)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	time.AfterFunc(cfg.Duration, func() { close(stop) })
	for i, nc := range conns {
		wg.Add(1)
		go func(i int, nc net.Conn) {
			defer wg.Done()
			defer nc.Close()
			var err error
			if cfg.Rate > 0 {
				err = openLoop(cfg, newOpStream(cfg, i), nc, stop, &ctr, res.Latency)
			} else {
				err = closedLoop(cfg, newOpStream(cfg, i), nc, stop, &ctr, res.Latency)
			}
			if err != nil {
				runErr.CompareAndSwap(nil, err)
			}
		}(i, nc)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	runtime.ReadMemStats(&m1)
	res.Ops = ctr.ops.Load()
	res.Errors = ctr.errs.Load()
	res.OverBudget = ctr.over.Load()
	res.TracedFrames = ctr.traced.Load()
	res.Scans = ctr.scans.Load()
	res.ScanKeys = ctr.scanKeys.Load()
	res.Allocs = m1.Mallocs - m0.Mallocs
	res.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
	if err, _ := runErr.Load().(error); err != nil {
		return res, err
	}
	return res, nil
}

// counters aggregates per-connection tallies across the run.
type counters struct {
	ops      atomic.Uint64 // responses received
	errs     atomic.Uint64 // non-OK responses
	over     atomic.Uint64 // responses over the SLO budget
	traced   atomic.Uint64 // request frames sent with trace context
	scans    atomic.Uint64 // scan responses received
	scanKeys atomic.Uint64 // keys returned across scan responses
}

// observe records one response latency, tallying SLO budget overruns.
// Called once per response on the measurement path: everything in it is
// atomic counters, no locks, no allocation.
//
//pimvet:allocfree //pimvet:nonblocking
func (c *counters) observe(lat *obs.Histogram, d int64, budget int64, status wire.Status) {
	lat.Observe(d)
	c.ops.Add(1)
	if status != wire.StatusOK {
		c.errs.Add(1)
	}
	if budget > 0 && d > budget {
		c.over.Add(1)
	}
}

// observeScan tallies one scan response's cardinality.
//
//pimvet:allocfree //pimvet:nonblocking
func (c *counters) observeScan(nkeys int) {
	c.scans.Add(1)
	c.scanKeys.Add(uint64(nkeys))
}

// closedLoop keeps exactly Pipeline operations outstanding: send one
// request frame of Pipeline ops, wait for all responses, repeat.
func closedLoop(cfg Config, st *opStream, nc net.Conn, stop <-chan struct{}, ctr *counters, lat *obs.Histogram) error {
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	budget := cfg.SLOP99.Nanoseconds()
	batch := make([]wire.Op, cfg.Pipeline)
	var out, payload []byte
	var results []wire.Result
	var vals []int64
	var err error
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		for i := range batch {
			batch[i] = st.next()
		}
		out, err = st.appendRequest(out[:0], batch, ctr)
		if err != nil {
			return err
		}
		t0 := time.Now()
		base := batch[0].ID
		if _, err := bw.Write(out); err != nil {
			return fmt.Errorf("loadgen: write: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("loadgen: flush: %w", err)
		}
		for seen := 0; seen < len(batch); {
			payload, err = wire.ReadFrame(br, payload[:0])
			if err != nil {
				return fmt.Errorf("loadgen: read: %w", err)
			}
			// Values slices alias vals and are only read inside this
			// iteration, so one reusable arena per connection suffices.
			results, vals, err = wire.DecodeResponseAny(payload, results[:0], vals[:0])
			if err != nil {
				return err
			}
			d := time.Since(t0).Nanoseconds()
			for _, r := range results {
				ctr.observe(lat, d, budget, r.Status)
				// IDs in a closed-loop batch are consecutive from base, so
				// the echoed ID indexes the op that produced this response.
				if idx := r.ID - base; st.v2 && idx < uint64(len(batch)) && batch[idx].Kind == wire.RangeScan {
					ctr.observeScan(len(r.Values))
				}
			}
			seen += len(results)
		}
	}
}

// openLoop injects one op every interval (the per-connection share of
// cfg.Rate), capping outstanding ops at Pipeline × 64 so a stalled
// server degrades to closed-loop instead of unbounded queueing
// (coordinated omission applies past that point, as with any bounded
// injector).
func openLoop(cfg Config, st *opStream, nc net.Conn, stop <-chan struct{}, ctr *counters, lat *obs.Histogram) error {
	perConn := cfg.Rate / float64(cfg.Conns)
	if perConn <= 0 {
		return fmt.Errorf("loadgen: open-loop rate %.1f too low for %d conns", cfg.Rate, cfg.Conns)
	}
	interval := time.Duration(float64(time.Second) / perConn)
	budget := cfg.SLOP99.Nanoseconds()
	maxOut := cfg.Pipeline * 64

	// sentOp remembers what went out under an ID: the send time for
	// latency, and whether it was a scan so the reader can tally result
	// cardinality without re-decoding the request.
	type sentOp struct {
		t0   time.Time
		scan bool
	}
	var (
		mu    sync.Mutex
		sent  = make(map[uint64]sentOp, maxOut)
		slots = make(chan struct{}, maxOut)
		wErr  atomic.Value
		done  = make(chan struct{}) // reader saw EOF (or failed)
	)

	// Reader: match responses to send times.
	go func() {
		defer close(done)
		br := bufio.NewReaderSize(nc, 64<<10)
		var payload []byte
		var results []wire.Result
		var vals []int64
		var err error
		for {
			payload, err = wire.ReadFrame(br, payload[:0])
			if err != nil {
				wErr.CompareAndSwap(nil, fmt.Errorf("loadgen: read: %w", err))
				return
			}
			results, vals, err = wire.DecodeResponseAny(payload, results[:0], vals[:0])
			if err != nil {
				wErr.CompareAndSwap(nil, err)
				return
			}
			now := time.Now()
			mu.Lock()
			for _, r := range results {
				if s, ok := sent[r.ID]; ok {
					delete(sent, r.ID)
					ctr.observe(lat, now.Sub(s.t0).Nanoseconds(), budget, r.Status)
					if s.scan {
						ctr.observeScan(len(r.Values))
					}
					<-slots
				}
			}
			mu.Unlock()
		}
	}()

	bw := bufio.NewWriterSize(nc, 16<<10)
	var out []byte
	var err error
	next := time.Now()
send:
	for {
		select {
		case <-stop:
			break send
		case slots <- struct{}{}: // outstanding budget
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-stop:
				<-slots
				break send
			case <-time.After(d):
			}
		}
		next = next.Add(interval)
		op := st.next()
		mu.Lock()
		sent[op.ID] = sentOp{t0: time.Now(), scan: op.Kind == wire.RangeScan}
		mu.Unlock()
		out, err = st.appendRequest(out[:0], []wire.Op{op}, ctr)
		if err != nil {
			return err
		}
		if _, err := bw.Write(out); err != nil {
			return fmt.Errorf("loadgen: write: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("loadgen: flush: %w", err)
		}
	}

	// Drain: half-close so the server finishes our in-flight ops and
	// closes; the reader exits on EOF.
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
	if err, _ := wErr.Load().(error); err != nil {
		// EOF after half-close is the expected clean end.
		mu.Lock()
		pending := len(sent)
		mu.Unlock()
		if pending > 0 {
			return fmt.Errorf("loadgen: %d responses lost: %w", pending, err)
		}
	}
	return nil
}

// Preload fills a set server to the harness's standard half-full
// occupancy (every other key) through one temporary connection, so
// measured runs start from the steady-state the paper's experiments
// use. No-op for queue/stack.
func Preload(cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.Structure != StructSet {
		return nil
	}
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("loadgen: preload dial: %w", err)
	}
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	keys := harness.PreloadKeys(cfg.Dist.Space())
	// Shuffle deterministically so range-partitioned shards fill
	// evenly as the stream proceeds.
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	var out, payload []byte
	var batch []wire.Op
	var results []wire.Result
	var id uint64
	for len(keys) > 0 {
		n := wire.MaxOpsPerFrame
		if n > len(keys) {
			n = len(keys)
		}
		batch = batch[:0]
		for _, k := range keys[:n] {
			batch = append(batch, wire.Op{ID: id, Kind: wire.Add, Key: k})
			id++
		}
		keys = keys[n:]
		out, err = wire.AppendRequest(out[:0], batch)
		if err != nil {
			return err
		}
		if _, err := bw.Write(out); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		for seen := 0; seen < n; {
			payload, err = wire.ReadFrame(br, payload[:0])
			if err != nil {
				return fmt.Errorf("loadgen: preload read: %w", err)
			}
			results, err = wire.DecodeResponse(payload, results[:0])
			if err != nil {
				return err
			}
			seen += len(results)
		}
	}
	return nil
}
