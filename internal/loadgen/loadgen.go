// Package loadgen is the traffic engine behind cmd/pimload: it drives
// a pimserve instance over the wire protocol from many concurrent
// connections, in closed loop (each connection keeps a fixed pipeline
// of operations outstanding) or open loop (operations are injected on
// a fixed schedule regardless of responses), and reports throughput
// plus client-observed latency percentiles in benchfmt form so
// benchdiff can compare runs.
package loadgen

//pimvet:allow-file determinism: a network load generator measures real wall-clock round trips by definition; key streams stay seeded/deterministic, only timing is physical

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pimds/internal/benchfmt"
	"pimds/internal/harness"
	"pimds/internal/obs"
	"pimds/internal/wire"
)

// Structure families a load can target (the server's list/skip/hash
// all speak "set").
const (
	StructSet   = "set"
	StructQueue = "queue"
	StructStack = "stack"
)

// Config configures one load run.
type Config struct {
	// Addr is the pimserve TCP address.
	Addr string
	// Structure selects the op family: set, queue or stack.
	Structure string
	// Conns is the number of concurrent connections. Default 1.
	Conns int
	// Pipeline is the operations kept outstanding per connection: the
	// closed-loop batch size, or the open-loop outstanding cap.
	// Default 1.
	Pipeline int
	// Rate, when > 0, switches to open loop at this total target
	// ops/s across all connections.
	Rate float64
	// Duration is how long to inject load. Default 1s.
	Duration time.Duration
	// Dist generates keys (sets) or values (queue/stack pushes).
	// Default Uniform over [0, 65536).
	Dist harness.KeyDist
	// Mix is the set operation mix; ignored for queue/stack, which
	// split 50/50 between insert and delete ends. Default Balanced.
	Mix harness.Mix
	// Seed makes the key streams reproducible (connection i uses
	// Seed+i). Timing, of course, is not.
	Seed int64
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Structure == "" {
		c.Structure = StructSet
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.Pipeline == 0 {
		c.Pipeline = 1
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Dist == nil {
		c.Dist = harness.Uniform{N: 1 << 16}
	}
	if c.Mix == (harness.Mix{}) {
		c.Mix = harness.Balanced()
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	Cfg     Config
	Ops     uint64        // completed operations (responses received)
	Errors  uint64        // responses with a non-OK status
	Elapsed time.Duration // first send to last response
	Latency *obs.Histogram
}

// OpsPerSec returns the aggregate throughput.
func (r *Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// mode describes the loop discipline for reports.
func (r *Result) mode() string {
	if r.Cfg.Rate > 0 {
		return fmt.Sprintf("open@%.0f/s", r.Cfg.Rate)
	}
	return "closed"
}

// String renders the one-line summary cmd/pimload prints (and CI
// greps).
func (r *Result) String() string {
	p50, p95, p99 := r.Latency.Percentiles()
	return fmt.Sprintf("pimload: %d ops in %.2fs = %.0f ops/s (%s, %d conns, pipeline %d; p50=%s p95=%s p99=%s; %d errors)",
		r.Ops, r.Elapsed.Seconds(), r.OpsPerSec(), r.mode(), r.Cfg.Conns, r.Cfg.Pipeline,
		time.Duration(p50), time.Duration(p95), time.Duration(p99), r.Errors)
}

// Report renders the run as a benchfmt report comparable by benchdiff.
func (r *Result) Report() *benchfmt.Report {
	p50, p95, p99 := r.Latency.Percentiles()
	tab := benchfmt.Table{
		Title:   fmt.Sprintf("pimload — %s workload", r.Cfg.Structure),
		Note:    fmt.Sprintf("dist %s, addr %s", r.Cfg.Dist.Name(), r.Cfg.Addr),
		Columns: []string{"conns", "mode", "pipeline", "ops/s", "p50 latency", "p95 latency", "p99 latency", "errors"},
		Rows: [][]string{{
			fmt.Sprint(r.Cfg.Conns),
			r.mode(),
			fmt.Sprint(r.Cfg.Pipeline),
			fmt.Sprintf("%.0f", r.OpsPerSec()),
			time.Duration(p50).String(),
			time.Duration(p95).String(),
			time.Duration(p99).String(),
			fmt.Sprint(r.Errors),
		}},
	}
	return &benchfmt.Report{
		Name:   "pimload",
		Params: benchfmt.Params{Seed: r.Cfg.Seed},
		Experiments: []benchfmt.ExperimentResult{{
			ID:          "pimload",
			Description: "network load against pimserve",
			Tables:      []benchfmt.Table{tab},
		}},
	}
}

// opStream yields the wire ops for one connection, deterministically
// from the connection's seed.
type opStream struct {
	structure string
	gen       *harness.Generator
	nextID    uint64
}

func newOpStream(cfg Config, conn int) *opStream {
	return &opStream{
		structure: cfg.Structure,
		gen:       harness.NewGenerator(cfg.Seed+int64(conn)*7919, cfg.Dist, cfg.Mix),
	}
}

// next returns the next operation. For queue/stack the set mix maps
// onto the two ends: Add→Enqueue/Push (the key is the value),
// everything else alternates Dequeue/Pop.
func (st *opStream) next() wire.Op {
	o := st.gen.Next()
	op := wire.Op{ID: st.nextID, Key: o.Key}
	st.nextID++
	switch st.structure {
	case StructQueue:
		if o.Kind == harness.Add {
			op.Kind = wire.Enqueue
		} else {
			op.Kind = wire.Dequeue
		}
	case StructStack:
		if o.Kind == harness.Add {
			op.Kind = wire.Push
		} else {
			op.Kind = wire.Pop
		}
	default:
		switch o.Kind {
		case harness.Contains:
			op.Kind = wire.Contains
		case harness.Add:
			op.Kind = wire.Add
		default:
			op.Kind = wire.Remove
		}
	}
	return op
}

// Run executes the configured load and blocks until every connection
// has drained its outstanding operations.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Structure != StructSet && cfg.Structure != StructQueue && cfg.Structure != StructStack {
		return nil, fmt.Errorf("loadgen: unknown structure %q (want set|queue|stack)", cfg.Structure)
	}
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}

	conns := make([]net.Conn, cfg.Conns)
	for i := range conns {
		nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
		if err != nil {
			for _, c := range conns[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
		}
		conns[i] = nc
	}

	res := &Result{Cfg: cfg, Latency: &obs.Histogram{}}
	var (
		ops    atomic.Uint64
		errs   atomic.Uint64
		stop   = make(chan struct{})
		wg     sync.WaitGroup
		runErr atomic.Value
	)
	start := time.Now()
	time.AfterFunc(cfg.Duration, func() { close(stop) })
	for i, nc := range conns {
		wg.Add(1)
		go func(i int, nc net.Conn) {
			defer wg.Done()
			defer nc.Close()
			var err error
			if cfg.Rate > 0 {
				err = openLoop(cfg, newOpStream(cfg, i), nc, stop, &ops, &errs, res.Latency)
			} else {
				err = closedLoop(cfg, newOpStream(cfg, i), nc, stop, &ops, &errs, res.Latency)
			}
			if err != nil {
				runErr.CompareAndSwap(nil, err)
			}
		}(i, nc)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Ops = ops.Load()
	res.Errors = errs.Load()
	if err, _ := runErr.Load().(error); err != nil {
		return res, err
	}
	return res, nil
}

// closedLoop keeps exactly Pipeline operations outstanding: send one
// request frame of Pipeline ops, wait for all responses, repeat.
func closedLoop(cfg Config, st *opStream, nc net.Conn, stop <-chan struct{}, ops, errs *atomic.Uint64, lat *obs.Histogram) error {
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	batch := make([]wire.Op, cfg.Pipeline)
	var out, payload []byte
	var results []wire.Result
	var err error
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		for i := range batch {
			batch[i] = st.next()
		}
		out, err = wire.AppendRequest(out[:0], batch)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if _, err := bw.Write(out); err != nil {
			return fmt.Errorf("loadgen: write: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("loadgen: flush: %w", err)
		}
		for seen := 0; seen < len(batch); {
			payload, err = wire.ReadFrame(br, payload[:0])
			if err != nil {
				return fmt.Errorf("loadgen: read: %w", err)
			}
			results, err = wire.DecodeResponse(payload, results[:0])
			if err != nil {
				return err
			}
			d := time.Since(t0).Nanoseconds()
			for _, r := range results {
				lat.Observe(d)
				ops.Add(1)
				if r.Status != wire.StatusOK {
					errs.Add(1)
				}
			}
			seen += len(results)
		}
	}
}

// openLoop injects one op every interval (the per-connection share of
// cfg.Rate), capping outstanding ops at Pipeline × 64 so a stalled
// server degrades to closed-loop instead of unbounded queueing
// (coordinated omission applies past that point, as with any bounded
// injector).
func openLoop(cfg Config, st *opStream, nc net.Conn, stop <-chan struct{}, ops, errs *atomic.Uint64, lat *obs.Histogram) error {
	perConn := cfg.Rate / float64(cfg.Conns)
	if perConn <= 0 {
		return fmt.Errorf("loadgen: open-loop rate %.1f too low for %d conns", cfg.Rate, cfg.Conns)
	}
	interval := time.Duration(float64(time.Second) / perConn)
	maxOut := cfg.Pipeline * 64

	var (
		mu    sync.Mutex
		sent  = make(map[uint64]time.Time, maxOut)
		slots = make(chan struct{}, maxOut)
		wErr  atomic.Value
		done  = make(chan struct{}) // reader saw EOF (or failed)
	)

	// Reader: match responses to send times.
	go func() {
		defer close(done)
		br := bufio.NewReaderSize(nc, 64<<10)
		var payload []byte
		var results []wire.Result
		var err error
		for {
			payload, err = wire.ReadFrame(br, payload[:0])
			if err != nil {
				wErr.CompareAndSwap(nil, fmt.Errorf("loadgen: read: %w", err))
				return
			}
			results, err = wire.DecodeResponse(payload, results[:0])
			if err != nil {
				wErr.CompareAndSwap(nil, err)
				return
			}
			now := time.Now()
			mu.Lock()
			for _, r := range results {
				if t0, ok := sent[r.ID]; ok {
					delete(sent, r.ID)
					lat.Observe(now.Sub(t0).Nanoseconds())
					ops.Add(1)
					if r.Status != wire.StatusOK {
						errs.Add(1)
					}
					<-slots
				}
			}
			mu.Unlock()
		}
	}()

	bw := bufio.NewWriterSize(nc, 16<<10)
	var out []byte
	var err error
	next := time.Now()
send:
	for {
		select {
		case <-stop:
			break send
		case slots <- struct{}{}: // outstanding budget
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-stop:
				<-slots
				break send
			case <-time.After(d):
			}
		}
		next = next.Add(interval)
		op := st.next()
		mu.Lock()
		sent[op.ID] = time.Now()
		mu.Unlock()
		out, err = wire.AppendRequest(out[:0], []wire.Op{op})
		if err != nil {
			return err
		}
		if _, err := bw.Write(out); err != nil {
			return fmt.Errorf("loadgen: write: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("loadgen: flush: %w", err)
		}
	}

	// Drain: half-close so the server finishes our in-flight ops and
	// closes; the reader exits on EOF.
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
	if err, _ := wErr.Load().(error); err != nil {
		// EOF after half-close is the expected clean end.
		mu.Lock()
		pending := len(sent)
		mu.Unlock()
		if pending > 0 {
			return fmt.Errorf("loadgen: %d responses lost: %w", pending, err)
		}
	}
	return nil
}

// Preload fills a set server to the harness's standard half-full
// occupancy (every other key) through one temporary connection, so
// measured runs start from the steady-state the paper's experiments
// use. No-op for queue/stack.
func Preload(cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.Structure != StructSet {
		return nil
	}
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("loadgen: preload dial: %w", err)
	}
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	keys := harness.PreloadKeys(cfg.Dist.Space())
	// Shuffle deterministically so range-partitioned shards fill
	// evenly as the stream proceeds.
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	var out, payload []byte
	var batch []wire.Op
	var results []wire.Result
	var id uint64
	for len(keys) > 0 {
		n := wire.MaxOpsPerFrame
		if n > len(keys) {
			n = len(keys)
		}
		batch = batch[:0]
		for _, k := range keys[:n] {
			batch = append(batch, wire.Op{ID: id, Kind: wire.Add, Key: k})
			id++
		}
		keys = keys[n:]
		out, err = wire.AppendRequest(out[:0], batch)
		if err != nil {
			return err
		}
		if _, err := bw.Write(out); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		for seen := 0; seen < n; {
			payload, err = wire.ReadFrame(br, payload[:0])
			if err != nil {
				return fmt.Errorf("loadgen: preload read: %w", err)
			}
			results, err = wire.DecodeResponse(payload, results[:0])
			if err != nil {
				return err
			}
			seen += len(results)
		}
	}
	return nil
}
