package loadgen_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"pimds/internal/benchfmt"
	"pimds/internal/harness"
	"pimds/internal/loadgen"
	"pimds/internal/obs"
	"pimds/internal/server"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Reg = reg
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String(), reg
}

func TestClosedLoopAgainstServer(t *testing.T) {
	_, addr, reg := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 4, KeySpace: 1 << 12,
	})
	nConns := 64
	if testing.Short() {
		nConns = 8
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:     addr,
		Conns:    nConns,
		Pipeline: 16,
		Duration: 300 * time.Millisecond,
		Dist:     harness.Uniform{N: 1 << 12},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d error responses", res.Errors)
	}
	if res.Latency.N() != res.Ops {
		t.Fatalf("latency histogram has %d samples for %d ops", res.Latency.N(), res.Ops)
	}

	// The paper's central claim, transplanted: under many concurrent
	// connections one combiner pass serves multiple requests.
	snap := reg.Snapshot()
	var n, sum float64
	for name, h := range snap.Histograms {
		if strings.Contains(name, "batch_size") {
			n += float64(h.Count)
			sum += h.Mean * float64(h.Count)
		}
	}
	if n == 0 {
		t.Fatal("no combiner batches recorded")
	}
	if factor := sum / n; factor <= 1.0 {
		t.Errorf("combining factor %.2f under %d connections, want > 1", factor, nConns)
	}
}

func TestOpenLoopAgainstServer(t *testing.T) {
	_, addr, _ := startServer(t, server.Config{
		Structure: server.StructHash, Shards: 2, KeySpace: 1 << 12,
	})
	res, err := loadgen.Run(loadgen.Config{
		Addr:     addr,
		Conns:    4,
		Rate:     2000,
		Duration: 250 * time.Millisecond,
		Dist:     harness.Uniform{N: 1 << 12},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d error responses", res.Errors)
	}
	// Open loop at 2000/s for 250ms ≈ 500 ops; allow wide slack but
	// catch a runaway injector (closed-loop would do far more).
	if res.Ops > 2000 {
		t.Errorf("open loop completed %d ops, expected ≈500 (pacing broken?)", res.Ops)
	}
}

func TestQueueAndStackLoads(t *testing.T) {
	for _, structure := range []string{server.StructQueue, server.StructStack} {
		t.Run(structure, func(t *testing.T) {
			_, addr, _ := startServer(t, server.Config{Structure: structure})
			res, err := loadgen.Run(loadgen.Config{
				Addr:      addr,
				Structure: structure, // loadgen names match the serial structures
				Conns:     4,
				Pipeline:  8,
				Duration:  150 * time.Millisecond,
				Seed:      5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.Errors != 0 {
				t.Fatalf("%d error responses", res.Errors)
			}
		})
	}
}

func TestOrderedMixAgainstServer(t *testing.T) {
	// A mix with ordered kinds flips the injector to the V2 encoding;
	// scans come back in variable-size frames and their cardinality is
	// tallied. Single shard so the global kinds (popmin/succ) are legal.
	const keySpace = 1 << 12
	_, addr, _ := startServer(t, server.Config{
		Structure: server.StructSkip, KeySpace: keySpace,
	})
	mix, err := harness.ParseMix("40/20/15,scan:15,popmin:5,succ:5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := loadgen.Config{
		Addr:      addr,
		Conns:     4,
		Pipeline:  8,
		Duration:  200 * time.Millisecond,
		Dist:      harness.Uniform{N: keySpace},
		Mix:       mix,
		Seed:      17,
		ScanSpan:  256,
		ScanLimit: 32,
	}
	if err := loadgen.Preload(cfg); err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d error responses", res.Errors)
	}
	if res.Scans == 0 {
		t.Fatal("a 15%% scan mix completed no scans")
	}
	// The space is preloaded half full, so a 256-wide scan capped at 32
	// should usually return keys.
	if res.ScanKeys == 0 {
		t.Fatal("scans over a half-full key space returned no keys")
	}
	if kps := res.KeysPerScan(); kps <= 0 || kps > 32 {
		t.Fatalf("keys/scan %.1f outside (0, 32]", kps)
	}
	if !strings.Contains(res.String(), "keys/scan") {
		t.Errorf("summary missing scan line:\n%s", res.String())
	}
	row := res.Report().Experiments[0].Tables[0].Rows[0]
	if row[11] == "0" {
		t.Errorf("report scans cell = %q, want > 0", row[11])
	}
}

func TestPreloadFillsHalfTheKeySpace(t *testing.T) {
	const keySpace = 1 << 10
	srv, addr, _ := startServer(t, server.Config{
		Structure: server.StructList, Shards: 4, KeySpace: keySpace,
	})
	if err := loadgen.Preload(loadgen.Config{
		Addr: addr,
		Dist: harness.Uniform{N: keySpace},
		Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	var total int
	for _, n := range srv.ShardLens() {
		total += n
	}
	if total != keySpace/2 {
		t.Fatalf("preload left %d keys, want %d", total, keySpace/2)
	}
}

func TestZipfLoadSkewsShards(t *testing.T) {
	// A zipf key stream against range-partitioned shards must hit
	// shard 0 (which owns the hot low keys) hardest — the imbalance
	// scenario the satellite asks uniform-only workloads never
	// produce.
	const keySpace = 1 << 12
	_, addr, reg := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 4, KeySpace: keySpace,
	})
	dist, err := harness.ParseKeyDist("zipf:1.4", keySpace)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:     addr,
		Conns:    8,
		Pipeline: 8,
		Duration: 200 * time.Millisecond,
		Dist:     dist,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	snap := reg.Snapshot()
	shard0 := snap.Counters["server/shard/000/combines"]
	shard3 := snap.Counters["server/shard/003/combines"]
	h0 := snap.Histograms["server/shard/000/batch_size"]
	h3 := snap.Histograms["server/shard/003/batch_size"]
	ops0 := float64(h0.Count) * h0.Mean
	ops3 := float64(h3.Count) * h3.Mean
	if ops0 <= ops3 {
		t.Errorf("zipf load served %0.f ops on hot shard 0 vs %0.f on shard 3 (combines %d vs %d); expected skew toward shard 0",
			ops0, ops3, shard0, shard3)
	}
}

func TestTraceOriginationAndSLO(t *testing.T) {
	// Server-side sampling off: every span the server records below
	// must come from the client's traced frames.
	srv, addr, reg := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 2, KeySpace: 1 << 12,
	})
	res, err := loadgen.Run(loadgen.Config{
		Addr:        addr,
		Conns:       4,
		Pipeline:    8,
		Duration:    200 * time.Millisecond,
		Dist:        harness.Uniform{N: 1 << 12},
		Seed:        13,
		TraceSample: 1,
		SLOP99:      10 * time.Second, // generous: must PASS
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.TracedFrames == 0 {
		t.Fatal("TraceSample=1 sent no traced frames")
	}
	slo, ok := res.SLO()
	if !ok || !slo.Met || slo.OverBudget != 0 || slo.BurnRate != 0 {
		t.Fatalf("10s budget should pass cleanly: %+v (ok=%v)", slo, ok)
	}
	if burn := res.Report().Experiments[0].Tables[0].Rows[0][10]; burn != "0.00" {
		t.Errorf("report burn cell = %q, want 0.00", burn)
	}
	srv.Shutdown()
	if got := reg.Snapshot().Counters["server/trace/sampled"]; got != res.Ops {
		t.Errorf("server sampled %d ops, want every one of the client's %d (client-originated tracing)", got, res.Ops)
	}
	if spans := srv.TraceSpans(); len(spans) == 0 {
		t.Error("no spans recorded from client-originated trace frames")
	}

	// An impossible 1ns budget must FAIL with every response burning.
	impossible := res
	impossible.Cfg.SLOP99 = time.Nanosecond
	impossible.OverBudget = impossible.Ops
	slo, ok = impossible.SLO()
	if !ok || slo.Met {
		t.Fatalf("1ns budget cannot be met: %+v", slo)
	}
	if slo.BurnRate < 99 {
		t.Errorf("all-over-budget burn rate %.2f, want ≈100", slo.BurnRate)
	}
}

func TestReportIsBenchfmtComparable(t *testing.T) {
	_, addr, _ := startServer(t, server.Config{Structure: server.StructHash})
	run := func() *benchfmt.Report {
		res, err := loadgen.Run(loadgen.Config{
			Addr:     addr,
			Conns:    2,
			Pipeline: 4,
			Duration: 100 * time.Millisecond,
			Seed:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	a, b := run(), run()
	// The report must parse numerically: ops/s and the latency columns
	// are what benchdiff watches for regressions.
	tab := a.Experiments[0].Tables[0]
	row := tab.Rows[0]
	// ops/s, the latency percentiles, errors, and the allocation
	// columns must all parse; "slo burn" is a placeholder when no
	// budget is configured.
	for _, col := range []int{3, 4, 5, 6, 7, 8, 9} {
		if _, ok := benchfmt.ParseCell(row[col]); !ok {
			t.Errorf("column %q cell %q is not numeric", tab.Columns[col], row[col])
		}
	}
	if burn := row[10]; burn != "—" {
		t.Errorf("slo burn cell without a budget = %q, want placeholder", burn)
	}
	// Compare must align the two runs structurally (throughput deltas
	// are expected; structural findings are not).
	for _, f := range benchfmt.Compare(a, b, benchfmt.CompareOptions{ThresholdPct: 1e9}) {
		if f.Severity == benchfmt.SevStructure {
			t.Errorf("structural mismatch between identical-shape runs: %s", f)
		}
	}
}
