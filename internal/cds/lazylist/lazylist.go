// Package lazylist implements the concurrent sorted linked-list with
// fine-grained locks of Heller, Herlihy, Luchangco, Moir, Scherer and
// Shavit, "A Lazy Concurrent List-Based Set Algorithm" (OPODIS 2005) —
// the paper's strongest CPU-side linked-list baseline ("linked-list
// with fine-grained locks", Table 1 row 1).
//
// Add and Remove lock only the two nodes around the modification point
// after an optimistic unlocked traversal, and validate before acting;
// Contains is wait-free.
package lazylist

import (
	"sync"
	"sync/atomic"
)

type node struct {
	key    int64
	mu     sync.Mutex
	marked atomic.Bool
	next   atomic.Pointer[node]
}

// List is a concurrent sorted linked-list set of int64 keys with ±∞
// sentinels. Create one with New. All methods are safe for concurrent
// use.
type List struct {
	head *node
	size atomic.Int64
}

// New returns an empty list.
func New() *List {
	tail := &node{key: 1<<63 - 1}
	head := &node{key: -1 << 63}
	head.next.Store(tail)
	return &List{head: head}
}

// Len returns the current number of keys (approximate under
// concurrency, exact at quiescence).
func (l *List) Len() int { return int(l.size.Load()) }

// find returns adjacent nodes pred, curr with pred.key < k ≤ curr.key
// via an unlocked traversal.
func (l *List) find(k int64) (pred, curr *node) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate checks that pred and curr are unmarked and adjacent; callers
// must hold both locks.
func validate(pred, curr *node) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// Contains reports whether k is in the set. It is wait-free: one
// traversal, no locks, no retries.
func (l *List) Contains(k int64) bool {
	curr := l.head
	for curr.key < k {
		curr = curr.next.Load()
	}
	return curr.key == k && !curr.marked.Load()
}

// Add inserts k and reports whether it was absent.
func (l *List) Add(k int64) bool {
	for {
		pred, curr := l.find(k)
		pred.mu.Lock()
		curr.mu.Lock()
		if !validate(pred, curr) {
			curr.mu.Unlock()
			pred.mu.Unlock()
			continue
		}
		if curr.key == k {
			curr.mu.Unlock()
			pred.mu.Unlock()
			return false
		}
		n := &node{key: k}
		n.next.Store(curr)
		pred.next.Store(n)
		curr.mu.Unlock()
		pred.mu.Unlock()
		l.size.Add(1)
		return true
	}
}

// Remove deletes k and reports whether it was present. Removal marks
// the node logically before unlinking it physically, so concurrent
// wait-free Contains calls stay correct.
func (l *List) Remove(k int64) bool {
	for {
		pred, curr := l.find(k)
		pred.mu.Lock()
		curr.mu.Lock()
		if !validate(pred, curr) {
			curr.mu.Unlock()
			pred.mu.Unlock()
			continue
		}
		if curr.key != k {
			curr.mu.Unlock()
			pred.mu.Unlock()
			return false
		}
		curr.marked.Store(true)           // logical delete
		pred.next.Store(curr.next.Load()) // physical unlink
		curr.mu.Unlock()
		pred.mu.Unlock()
		l.size.Add(-1)
		return true
	}
}

// Keys returns the keys in ascending order. Only meaningful at
// quiescence (tests).
func (l *List) Keys() []int64 {
	var keys []int64
	for n := l.head.next.Load(); n.key != 1<<63-1; n = n.next.Load() {
		if !n.marked.Load() {
			keys = append(keys, n.key)
		}
	}
	return keys
}
