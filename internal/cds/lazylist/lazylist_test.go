package lazylist

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialSemantics(t *testing.T) {
	cdstest.SetSequential(t, New(), 64, 4000, 11)
}

func TestBasic(t *testing.T) {
	l := New()
	if !l.Add(1) || !l.Add(3) || !l.Add(2) {
		t.Fatal("adds failed")
	}
	if l.Add(2) {
		t.Error("duplicate add succeeded")
	}
	got := l.Keys()
	want := []int64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if l.Len() != 3 {
		t.Errorf("len = %d, want 3", l.Len())
	}
	if !l.Remove(2) || l.Contains(2) {
		t.Error("remove broken")
	}
}

func TestSentinelBoundaries(t *testing.T) {
	l := New()
	// Keys adjacent to the sentinels.
	lo, hi := int64(-1<<63+1), int64(1<<63-2)
	if !l.Add(lo) || !l.Add(hi) {
		t.Fatal("boundary adds failed")
	}
	if !l.Contains(lo) || !l.Contains(hi) {
		t.Error("boundary keys missing")
	}
	if !l.Remove(lo) || !l.Remove(hi) {
		t.Error("boundary removes failed")
	}
}

func TestConcurrentConservation(t *testing.T) {
	l := New()
	cdstest.SetStress(t,
		func() cdstest.Set { return l },
		func() []int64 { return l.Keys() },
		128, 8, 3000, 101)
}

// TestConcurrentDisjointRanges: goroutines working on disjoint ranges
// must not interfere at all.
func TestConcurrentDisjointRanges(t *testing.T) {
	l := New()
	done := make(chan bool, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			base := int64(g * 1000)
			okAll := true
			for i := int64(0); i < 200; i++ {
				okAll = okAll && l.Add(base+i)
			}
			for i := int64(0); i < 200; i += 2 {
				okAll = okAll && l.Remove(base+i)
			}
			done <- okAll
		}(g)
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Fatal("operation on private range failed")
		}
	}
	if got := l.Len(); got != 4*100 {
		t.Errorf("len = %d, want 400", got)
	}
	for g := 0; g < 4; g++ {
		base := int64(g * 1000)
		for i := int64(0); i < 200; i++ {
			want := i%2 == 1
			if l.Contains(base+i) != want {
				t.Fatalf("Contains(%d) = %v, want %v", base+i, !want, want)
			}
		}
	}
}
