package lockfreeskip

import (
	"sync"
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialSemantics(t *testing.T) {
	cdstest.SetSequential(t, New(1), 64, 4000, 13)
}

func TestBasic(t *testing.T) {
	l := New(5)
	for _, k := range []int64{9, 2, 7, 4} {
		if !l.Add(k) {
			t.Fatalf("Add(%d) failed", k)
		}
	}
	if l.Add(7) {
		t.Error("duplicate add succeeded")
	}
	got := l.Keys()
	want := []int64{2, 4, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if !l.Remove(7) || l.Remove(7) || l.Contains(7) {
		t.Error("remove semantics broken")
	}
	if l.Len() != 3 {
		t.Errorf("len = %d, want 3", l.Len())
	}
}

func TestConcurrentConservation(t *testing.T) {
	l := New(77)
	cdstest.SetStress(t,
		func() cdstest.Set { return l },
		func() []int64 { return l.Keys() },
		128, 8, 3000, 202)
}

// TestConcurrentSameKey: exactly one of many concurrent adders of the
// same key must win, and exactly one of many concurrent removers.
func TestConcurrentSameKey(t *testing.T) {
	l := New(9)
	const goroutines = 8
	for round := 0; round < 200; round++ {
		k := int64(round)
		var added, removed int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if l.Add(k) {
					mu.Lock()
					added++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if added != 1 {
			t.Fatalf("round %d: %d adders succeeded, want 1", round, added)
		}
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if l.Remove(k) {
					mu.Lock()
					removed++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if removed != 1 {
			t.Fatalf("round %d: %d removers succeeded, want 1", round, removed)
		}
		if l.Contains(k) {
			t.Fatalf("round %d: key still present", round)
		}
	}
}

// TestAddRemoveChurn exercises physical unlinking under churn on a
// small key range, which maximizes marked-node traffic in find().
func TestAddRemoveChurn(t *testing.T) {
	l := New(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				k := int64(i % 8)
				l.Add(k)
				l.Remove(k)
				l.Contains(k)
			}
		}(g)
	}
	wg.Wait()
	// Whatever remains must be a consistent subset of [0,8).
	for _, k := range l.Keys() {
		if k < 0 || k >= 8 {
			t.Errorf("unexpected key %d", k)
		}
	}
}
