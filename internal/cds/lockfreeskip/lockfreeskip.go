// Package lockfreeskip implements the lock-free skip-list of Herlihy
// and Shavit, "The Art of Multiprocessor Programming" (the paper's
// Table 2 row 1 / Figure 4 baseline, citing [27] and Pugh [46]).
//
// Each next pointer is an atomic markable reference: a pointer to an
// immutable (successor, marked) pair replaced wholesale by CAS. A node
// is logically deleted when its bottom-level reference is marked;
// traversals snip marked nodes as they pass.
package lockfreeskip

import (
	"sync/atomic"
)

// maxLevel bounds tower heights; 2^20 expected keys is ample here.
const maxLevel = 20

// markable is an immutable (successor, marked) pair. CAS on the
// containing atomic.Pointer swaps the whole pair, which is Go's
// equivalent of Java's AtomicMarkableReference.
type markable struct {
	next   *node
	marked bool
}

type node struct {
	key  int64
	next []atomic.Pointer[markable]
}

func newNode(key int64, height int) *node {
	return &node{key: key, next: make([]atomic.Pointer[markable], height)}
}

// List is a lock-free skip-list set of int64 keys. Create one with
// New. All methods are safe for concurrent use.
type List struct {
	head *node
	tail *node
	size atomic.Int64
	rng  atomic.Uint64
}

// New returns an empty list. Tower heights are drawn from a
// thread-safe deterministic stream seeded by seed.
func New(seed uint64) *List {
	head := newNode(-1<<63, maxLevel)
	tail := newNode(1<<63-1, maxLevel)
	for i := range head.next {
		head.next[i].Store(&markable{next: tail})
		tail.next[i].Store(&markable{})
	}
	l := &List{head: head, tail: tail}
	l.rng.Store(seed | 1)
	return l
}

// Len returns the number of keys (approximate under concurrency).
func (l *List) Len() int { return int(l.size.Load()) }

// randLevel draws a geometric(1/2) height from a shared splitmix64
// stream; the single F&A keeps it thread-safe without locks.
func (l *List) randLevel() int {
	z := l.rng.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	h := 1
	for ; z&1 == 1 && h < maxLevel; z >>= 1 {
		h++
	}
	return h
}

// find locates the window for k on every level, snipping marked nodes
// along the way, and reports whether an unmarked node with key k exists
// at the bottom level.
func (l *List) find(k int64, preds, succs *[maxLevel]*node) bool {
retry:
	for {
		pred := l.head
		for lvl := maxLevel - 1; lvl >= 0; lvl-- {
			curr := pred.next[lvl].Load().next
			for {
				succM := curr.next[lvl].Load()
				for succM.marked {
					// curr is deleted at this level: snip it.
					pm := pred.next[lvl].Load()
					if pm.marked || pm.next != curr {
						continue retry
					}
					if !pred.next[lvl].CompareAndSwap(pm, &markable{next: succM.next}) {
						continue retry
					}
					curr = succM.next
					succM = curr.next[lvl].Load()
				}
				if curr.key < k {
					pred = curr
					curr = succM.next
				} else {
					break
				}
			}
			preds[lvl] = pred
			succs[lvl] = curr
		}
		return succs[0].key == k
	}
}

// Contains reports whether k is in the set. It is wait-free-ish: it
// never CASes, only traverses, skipping marked nodes.
func (l *List) Contains(k int64) bool {
	pred := l.head
	var curr *node
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		curr = pred.next[lvl].Load().next
		for {
			m := curr.next[lvl].Load()
			for m.marked {
				curr = m.next
				m = curr.next[lvl].Load()
			}
			if curr.key < k {
				pred = curr
				curr = m.next
			} else {
				break
			}
		}
	}
	return curr.key == k
}

// Add inserts k and reports whether it was absent.
func (l *List) Add(k int64) bool {
	var preds, succs [maxLevel]*node
	height := l.randLevel()
	for {
		if l.find(k, &preds, &succs) {
			return false
		}
		n := newNode(k, height)
		for i := 0; i < height; i++ {
			n.next[i].Store(&markable{next: succs[i]})
		}
		// Linearization point: splice into the bottom level.
		pm := preds[0].next[0].Load()
		if pm.marked || pm.next != succs[0] {
			continue
		}
		if !preds[0].next[0].CompareAndSwap(pm, &markable{next: n}) {
			continue
		}
		// Link the upper levels; the node is already in the set, so
		// failures here only delay reachability, not correctness.
		for lvl := 1; lvl < height; lvl++ {
			for {
				// Keep n's forward pointer current; if n got
				// marked meanwhile, stop linking — the remover
				// will (or did) unlink what is linked.
				nm := n.next[lvl].Load()
				if nm.marked {
					l.size.Add(1)
					return true
				}
				if nm.next != succs[lvl] &&
					!n.next[lvl].CompareAndSwap(nm, &markable{next: succs[lvl]}) {
					continue
				}
				pm := preds[lvl].next[lvl].Load()
				if !pm.marked && pm.next == succs[lvl] &&
					preds[lvl].next[lvl].CompareAndSwap(pm, &markable{next: n}) {
					break
				}
				l.find(k, &preds, &succs)
			}
		}
		l.size.Add(1)
		return true
	}
}

// Remove deletes k and reports whether this call removed it.
func (l *List) Remove(k int64) bool {
	var preds, succs [maxLevel]*node
	if !l.find(k, &preds, &succs) {
		return false
	}
	victim := succs[0]
	// Mark the upper levels top-down.
	for lvl := len(victim.next) - 1; lvl >= 1; lvl-- {
		for {
			m := victim.next[lvl].Load()
			if m.marked {
				break
			}
			victim.next[lvl].CompareAndSwap(m, &markable{next: m.next, marked: true})
		}
	}
	// Linearization point: mark the bottom level; exactly one caller
	// succeeds.
	for {
		m := victim.next[0].Load()
		if m.marked {
			return false
		}
		if victim.next[0].CompareAndSwap(m, &markable{next: m.next, marked: true}) {
			l.size.Add(-1)
			l.find(k, &preds, &succs) // physically unlink
			return true
		}
	}
}

// Keys returns the unmarked keys in ascending order; meaningful at
// quiescence (tests).
func (l *List) Keys() []int64 {
	var keys []int64
	for n := l.head.next[0].Load().next; n != l.tail; {
		m := n.next[0].Load()
		if !m.marked {
			keys = append(keys, n.key)
		}
		n = m.next
	}
	return keys
}
