// Package cdstest provides shared correctness harnesses for the
// concurrent data structures in internal/cds: a conservation-law stress
// test for sets and a FIFO/conservation stress test for queues. These
// checks catch lost updates, duplicated elements and reordering without
// needing a full linearizability checker.
package cdstest

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// Set is the minimal concurrent set interface under test. Handles are
// per-goroutine (flat-combining structures need a publication record
// per thread); structures without per-thread state return themselves.
type Set interface {
	Contains(k int64) bool
	Add(k int64) bool
	Remove(k int64) bool
}

// SetStress drives goroutines×opsPerG random operations on keys in
// [0, keySpace) and then checks the conservation law: for every key,
// successfulAdds − successfulRemoves must be 1 if the key is in the
// final set and 0 otherwise. Any lost or duplicated update breaks it.
//
// newHandle is called once per goroutine; finalKeys must return the
// set's sorted contents at quiescence.
func SetStress(t *testing.T, newHandle func() Set, finalKeys func() []int64,
	keySpace int64, goroutines, opsPerG int, seed int64) {
	t.Helper()

	adds := make([]atomic.Int64, keySpace)
	removes := make([]atomic.Int64, keySpace)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := newHandle()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < opsPerG; i++ {
				k := rng.Int63n(keySpace)
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // 40% add
					if h.Add(k) {
						adds[k].Add(1)
					}
				case 4, 5, 6, 7: // 40% remove
					if h.Remove(k) {
						removes[k].Add(1)
					}
				default: // 20% contains
					h.Contains(k)
				}
			}
		}(g)
	}
	wg.Wait()

	final := finalKeys()
	if !sort.SliceIsSorted(final, func(i, j int) bool { return final[i] < final[j] }) {
		t.Fatalf("final keys not sorted: %v", final)
	}
	inFinal := make(map[int64]int, len(final))
	for _, k := range final {
		inFinal[k]++
		if inFinal[k] > 1 {
			t.Fatalf("duplicate key %d in final set", k)
		}
	}
	for k := int64(0); k < keySpace; k++ {
		want := int64(inFinal[k])
		if got := adds[k].Load() - removes[k].Load(); got != want {
			t.Errorf("key %d: adds-removes = %d, want %d (in final set: %v)",
				k, got, want, want == 1)
		}
	}
}

// SetSequential checks a set implementation against map semantics on a
// deterministic random op sequence.
func SetSequential(t *testing.T, s Set, keySpace int64, ops int, seed int64) {
	t.Helper()
	ref := make(map[int64]bool)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		k := rng.Int63n(keySpace)
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Add(k), !ref[k]; got != want {
				t.Fatalf("op %d: Add(%d) = %v, want %v", i, k, got, want)
			}
			ref[k] = true
		case 1:
			if got, want := s.Remove(k), ref[k]; got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		default:
			if got, want := s.Contains(k), ref[k]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, want)
			}
		}
	}
}

// Queue is the minimal concurrent queue interface under test.
type Queue interface {
	Enqueue(v int64)
	Dequeue() (int64, bool)
}

// QueueStress drives producers and consumers concurrently and checks:
// every enqueued value is dequeued exactly once (after draining), and
// values from the same producer are dequeued in their enqueue order.
// Values encode (producer, sequence) as producer*2^32 + seq.
func QueueStress(t *testing.T, newHandle func() Queue, producers, consumers, perProducer int) {
	t.Helper()

	total := producers * perProducer
	dequeued := make([][]int64, consumers)
	var consumed atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := newHandle()
			for i := 0; i < perProducer; i++ {
				h.Enqueue(int64(p)<<32 | int64(i))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := newHandle()
			for consumed.Load() < int64(total) {
				if v, ok := h.Dequeue(); ok {
					dequeued[c] = append(dequeued[c], v)
					consumed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	// Exactly-once delivery.
	seen := make(map[int64]bool, total)
	for _, vals := range dequeued {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != total {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), total)
	}
	// Per-producer FIFO within each consumer: a single consumer must
	// see any one producer's values in increasing sequence order.
	for c, vals := range dequeued {
		last := make(map[int64]int64)
		for _, v := range vals {
			p, seq := v>>32, v&0xffffffff
			if prev, ok := last[p]; ok && seq < prev {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d", c, p, seq, prev)
			}
			last[p] = seq
		}
	}
}

// QueueSequential checks FIFO semantics single-threaded.
func QueueSequential(t *testing.T, q Queue, n int) {
	t.Helper()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on empty queue reported ok")
	}
	for i := 0; i < n; i++ {
		q.Enqueue(int64(i * 3))
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != int64(i*3) {
			t.Fatalf("Dequeue #%d = (%d, %v), want (%d, true)", i, v, ok, i*3)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on drained queue reported ok")
	}
}

// Stack is the minimal concurrent stack interface under test.
type Stack interface {
	Push(v int64)
	Pop() (int64, bool)
}

// StackStress drives producers and consumers concurrently and checks
// exactly-once delivery (every pushed value popped or resident exactly
// once after a final drain).
func StackStress(t *testing.T, newHandle func() Stack, pushers, poppers, perPusher int) {
	t.Helper()

	total := pushers * perPusher
	popped := make([][]int64, poppers)
	var consumed atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := newHandle()
			for i := 0; i < perPusher; i++ {
				h.Push(int64(p)<<32 | int64(i))
			}
		}(p)
	}
	for c := 0; c < poppers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := newHandle()
			for consumed.Load() < int64(total) {
				if v, ok := h.Pop(); ok {
					popped[c] = append(popped[c], v)
					consumed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	seen := make(map[int64]bool, total)
	for _, vals := range popped {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("value %d popped twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != total {
		t.Fatalf("popped %d distinct values, want %d", len(seen), total)
	}
}

// StackSequential checks LIFO semantics single-threaded.
func StackSequential(t *testing.T, s Stack, n int) {
	t.Helper()
	if _, ok := s.Pop(); ok {
		t.Fatal("pop on empty stack reported ok")
	}
	for i := 0; i < n; i++ {
		s.Push(int64(i * 7))
	}
	for i := n - 1; i >= 0; i-- {
		v, ok := s.Pop()
		if !ok || v != int64(i*7) {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i*7)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("pop on drained stack reported ok")
	}
}
