// Package treiberstack implements Treiber's classic lock-free stack
// (1986) — the canonical CPU-side contended stack whose top-pointer
// contention Section 5 of the paper calls out ("operations compete for
// … the top pointer of a stack"). Every push and pop CASes the single
// top pointer, so p concurrent operations serialize exactly like the
// F&A queue's counter: throughput ≤ 1/Latomic under the paper's model.
package treiberstack

import "sync/atomic"

type node struct {
	val  int64
	next *node
}

// Stack is a lock-free LIFO stack of int64 values. The zero value is
// an empty, ready-to-use stack. All methods are safe for concurrent
// use.
type Stack struct {
	top atomic.Pointer[node]
}

// New returns an empty stack.
func New() *Stack { return &Stack{} }

// Push adds v to the top of the stack.
func (s *Stack) Push(v int64) {
	n := &node{val: v}
	for {
		top := s.top.Load()
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			return
		}
	}
}

// Pop removes and returns the top value; ok is false if the stack was
// observed empty.
func (s *Stack) Pop() (v int64, ok bool) {
	for {
		top := s.top.Load()
		if top == nil {
			return 0, false
		}
		if s.top.CompareAndSwap(top, top.next) {
			return top.val, true
		}
	}
}

// Len returns the stack depth at quiescence (tests).
func (s *Stack) Len() int {
	n := 0
	for cur := s.top.Load(); cur != nil; cur = cur.next {
		n++
	}
	return n
}
