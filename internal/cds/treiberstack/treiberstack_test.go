package treiberstack

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialLIFO(t *testing.T) {
	cdstest.StackSequential(t, New(), 2000)
}

func TestConcurrentConservation(t *testing.T) {
	s := New()
	cdstest.StackStress(t,
		func() cdstest.Stack { return s },
		4, 4, 5000)
}

func TestLenAtQuiescence(t *testing.T) {
	s := New()
	for i := int64(0); i < 10; i++ {
		s.Push(i)
	}
	if s.Len() != 10 {
		t.Errorf("len = %d, want 10", s.Len())
	}
	s.Pop()
	if s.Len() != 9 {
		t.Errorf("len = %d, want 9", s.Len())
	}
}
