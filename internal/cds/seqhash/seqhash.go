// Package seqhash implements a sequential chained hash table with
// probe counting. It is the per-vault structure of the PIM-managed
// hash map (package pimhash), this repository's extension beyond the
// paper's three structures: the conclusion invites "other types of
// PIM-managed data structures", and a hash map is the natural
// contended-but-partitionable candidate (FloDB, which the paper cites,
// uses exactly this pairing of a hash table with a skip-list).
package seqhash

// Table is a sequential chained hash table from int64 keys to int64
// values. Create one with New. Steps() counts memory probes (bucket
// head loads plus chain-node visits) so the simulator can charge
// per-access costs.
type Table struct {
	buckets []*entry
	size    int
	steps   uint64
}

type entry struct {
	key  int64
	val  int64
	next *entry
}

// New returns an empty table with capacity rounded up to a power of
// two (minimum 8).
func New(capacity int) *Table {
	n := 8
	for n < capacity {
		n *= 2
	}
	return &Table{buckets: make([]*entry, n)}
}

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.size }

// Steps returns memory probes since the last ResetSteps.
func (t *Table) Steps() uint64 { return t.steps }

// ResetSteps zeroes the probe counter.
func (t *Table) ResetSteps() { t.steps = 0 }

// hash mixes the key (splitmix64 finalizer) and maps it to a bucket.
func (t *Table) hash(k int64) int {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z & uint64(len(t.buckets)-1))
}

// find returns the entry for k, if any, counting probes.
func (t *Table) find(k int64) *entry {
	t.steps++ // bucket head load
	for e := t.buckets[t.hash(k)]; e != nil; e = e.next {
		t.steps++
		if e.key == k {
			return e
		}
	}
	return nil
}

// Get returns the value stored for k.
func (t *Table) Get(k int64) (int64, bool) {
	if e := t.find(k); e != nil {
		return e.val, true
	}
	return 0, false
}

// Put stores v under k and reports whether k was new.
func (t *Table) Put(k, v int64) bool {
	if e := t.find(k); e != nil {
		e.val = v
		return false
	}
	i := t.hash(k)
	t.buckets[i] = &entry{key: k, val: v, next: t.buckets[i]}
	t.size++
	if t.size > 3*len(t.buckets)/4 {
		t.grow()
	}
	return true
}

// Delete removes k and reports whether it was present.
func (t *Table) Delete(k int64) bool {
	i := t.hash(k)
	t.steps++
	for p := &t.buckets[i]; *p != nil; p = &(*p).next {
		t.steps++
		if (*p).key == k {
			*p = (*p).next
			t.size--
			return true
		}
	}
	return false
}

// grow doubles the bucket array and rehashes; each moved entry costs
// one probe (it is one read plus one write, but a single counter keeps
// the accounting simple and the caller charges read+write per step
// during migration-sized rehashes anyway).
func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]*entry, 2*len(old))
	for _, e := range old {
		for e != nil {
			next := e.next
			i := t.hash(e.key)
			e.next = t.buckets[i]
			t.buckets[i] = e
			t.steps++
			e = next
		}
	}
}

// Keys returns all keys in unspecified order (tests).
func (t *Table) Keys() []int64 {
	keys := make([]int64, 0, t.size)
	for _, e := range t.buckets {
		for ; e != nil; e = e.next {
			keys = append(keys, e.key)
		}
	}
	return keys
}
