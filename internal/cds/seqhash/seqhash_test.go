package seqhash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	h := New(4)
	if h.Len() != 0 {
		t.Fatal("new table not empty")
	}
	if _, ok := h.Get(1); ok {
		t.Error("empty table returned a value")
	}
	if !h.Put(1, 100) {
		t.Error("fresh put should report new")
	}
	if h.Put(1, 200) {
		t.Error("overwrite should not report new")
	}
	if v, ok := h.Get(1); !ok || v != 200 {
		t.Errorf("Get(1) = %d,%v want 200,true", v, ok)
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Error("delete semantics broken")
	}
	if h.Len() != 0 {
		t.Errorf("len = %d, want 0", h.Len())
	}
}

func TestGrowth(t *testing.T) {
	h := New(8)
	const n = 10000
	for i := int64(0); i < n; i++ {
		h.Put(i, i*2)
	}
	if h.Len() != n {
		t.Fatalf("len = %d, want %d", h.Len(), n)
	}
	if len(h.buckets) < n {
		t.Errorf("buckets = %d, want ≥ %d after growth", len(h.buckets), n)
	}
	for i := int64(0); i < n; i++ {
		if v, ok := h.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if got := len(h.Keys()); got != n {
		t.Errorf("Keys len = %d, want %d", got, n)
	}
}

// TestAgainstMap checks map semantics on random op streams.
func TestAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		h := New(8)
		ref := make(map[int64]int64)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			k := rng.Int63n(200)
			switch rng.Intn(3) {
			case 0:
				v := rng.Int63()
				_, existed := ref[k]
				if h.Put(k, v) == existed {
					return false
				}
				ref[k] = v
			case 1:
				_, existed := ref[k]
				if h.Delete(k) != existed {
					return false
				}
				delete(ref, k)
			default:
				want, existed := ref[k]
				got, ok := h.Get(k)
				if ok != existed || (ok && got != want) {
					return false
				}
			}
		}
		return h.Len() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestProbesStayConstant: average probes per op must stay O(1) as the
// table grows (the property that makes the PIM hash map message-bound).
func TestProbesStayConstant(t *testing.T) {
	h := New(8)
	for i := int64(0); i < 1<<15; i++ {
		h.Put(i, i)
	}
	h.ResetSteps()
	const lookups = 10000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < lookups; i++ {
		h.Get(rng.Int63n(1 << 15))
	}
	perOp := float64(h.Steps()) / lookups
	if perOp > 4 {
		t.Errorf("avg probes per lookup = %.2f, want O(1) (≈ 2)", perOp)
	}
}
