package fcstack

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialLIFOBothVariants(t *testing.T) {
	for _, eliminate := range []bool{false, true} {
		s := New(eliminate)
		cdstest.StackSequential(t, s.NewHandle(), 2000)
	}
}

func TestConcurrentConservation(t *testing.T) {
	for _, eliminate := range []bool{false, true} {
		s := New(eliminate)
		cdstest.StackStress(t,
			func() cdstest.Stack { return s.NewHandle() },
			4, 4, 4000)
	}
}

// TestEliminationHappens: with concurrent pushers and poppers, some
// pairs should cancel without touching the stack.
func TestEliminationHappens(t *testing.T) {
	s := New(true)
	cdstest.StackStress(t,
		func() cdstest.Stack { return s.NewHandle() },
		4, 4, 4000)
	if s.Eliminated == 0 {
		t.Log("note: no eliminations observed (legal, but unusual under concurrency)")
	}
}

func TestLen(t *testing.T) {
	s := New(false)
	h := s.NewHandle()
	for i := int64(0); i < 7; i++ {
		h.Push(i)
	}
	if s.Len() != 7 {
		t.Errorf("len = %d, want 7", s.Len())
	}
}
