// Package fcstack implements a flat-combining stack: one combiner lock
// over a sequential stack, following Hendler et al. [25] (flat
// combining's original showcase structure). A combiner can also
// *eliminate* matching push/pop pairs in its batch without touching
// memory at all — the classic FC-stack optimization, enabled by
// default.
package fcstack

import (
	"pimds/internal/cds/flatcombining"
	"pimds/internal/obs"
)

// op kinds inside the combiner.
type opKind uint8

const (
	opPush opKind = iota
	opPop
)

type request struct {
	kind opKind
	val  int64
}

// popResult is the result of one pop.
type popResult struct {
	val int64
	ok  bool
}

// Stack is a flat-combining LIFO stack of int64 values. Create one
// with New; each goroutine needs its own Handle.
type Stack struct {
	fc        *flatcombining.FC
	vals      []int64
	eliminate bool

	// Eliminated counts push/pop pairs served without touching the
	// stack (stats).
	Eliminated uint64
}

// New returns an empty stack; eliminate enables push/pop pair
// elimination within combiner batches.
func New(eliminate bool) *Stack {
	s := &Stack{eliminate: eliminate}
	s.fc = flatcombining.New(s.apply)
	return s
}

// Instrument exports combining metrics (batch sizes, lock handoffs,
// totals) into reg under the "fcstack" prefix.
func (s *Stack) Instrument(reg *obs.Registry) {
	s.fc.Instrument(reg, "fcstack")
}

func (s *Stack) apply(batch []*flatcombining.Record) {
	if s.eliminate {
		// Pair each pop with the nearest unmatched push in the batch:
		// both complete immediately (the pop returns the push's value)
		// and the stack itself is untouched. Any serialization of a
		// concurrent batch is linearizable, so pairing is legal.
		var pushes []*flatcombining.Record
		for _, rec := range batch {
			req := rec.Op().(request)
			if req.kind == opPush {
				pushes = append(pushes, rec)
				continue
			}
			if len(pushes) > 0 {
				push := pushes[len(pushes)-1]
				pushes = pushes[:len(pushes)-1]
				rec.Finish(popResult{val: push.Op().(request).val, ok: true})
				push.Finish(true)
				s.Eliminated++
				continue
			}
			rec.Finish(s.popOne())
		}
		for _, push := range pushes {
			s.vals = append(s.vals, push.Op().(request).val)
			push.Finish(true)
		}
		return
	}
	for _, rec := range batch {
		req := rec.Op().(request)
		if req.kind == opPush {
			s.vals = append(s.vals, req.val)
			rec.Finish(true)
		} else {
			rec.Finish(s.popOne())
		}
	}
}

func (s *Stack) popOne() popResult {
	if len(s.vals) == 0 {
		return popResult{}
	}
	v := s.vals[len(s.vals)-1]
	s.vals = s.vals[:len(s.vals)-1]
	return popResult{val: v, ok: true}
}

// Handle is a per-goroutine access handle.
type Handle struct {
	s   *Stack
	rec *flatcombining.Record
}

// NewHandle registers a goroutine with the stack.
func (s *Stack) NewHandle() *Handle {
	return &Handle{s: s, rec: s.fc.NewRecord()}
}

// Push adds v to the top of the stack.
func (h *Handle) Push(v int64) {
	h.s.fc.Do(h.rec, request{kind: opPush, val: v})
}

// Pop removes and returns the top value; ok is false if the stack was
// empty (after elimination).
func (h *Handle) Pop() (v int64, ok bool) {
	r := h.s.fc.Do(h.rec, request{kind: opPop}).(popResult)
	return r.val, r.ok
}

// Len returns the stack depth at quiescence (tests).
func (s *Stack) Len() int { return len(s.vals) }
