// Package flatcombining implements the flat-combining synchronization
// technique of Hendler, Incze, Shavit and Tzafrir (SPAA 2010), which
// the paper uses both as a CPU-side baseline and as the closest
// software analogue of a PIM core: threads publish requests in a
// publication list, one thread acquires a combiner lock and executes
// everybody's requests against a sequential structure.
//
// The engine is generic over the operation and result types; the
// structure-specific part is a single Apply callback that receives the
// batch of pending requests.
package flatcombining

import (
	"runtime"
	"sync/atomic"

	"pimds/internal/obs"
)

// Record is one thread's slot in the publication list. A thread must
// create its record once (NewRecord) and pass it to every Do call;
// records are never removed.
type Record struct {
	op      interface{}
	result  interface{}
	pending atomic.Bool
	next    *Record // publication list link (immutable once published)
}

// Op returns the published operation. Only the combiner may call it,
// and only for records it observed pending.
func (r *Record) Op() interface{} { return r.op }

// Finish stores the operation's result and releases the waiting
// thread. Only the combiner may call it, exactly once per pending
// request it serves.
func (r *Record) Finish(result interface{}) {
	r.result = result
	r.pending.Store(false)
}

// Apply executes a batch of pending requests against the underlying
// sequential structure. It must call Finish on every record in the
// batch. Batches preserve no particular order; any serialization of
// concurrent requests is linearizable.
type Apply func(batch []*Record)

// FC is one flat-combining instance (one combiner lock, one
// publication list, one sequential structure).
type FC struct {
	apply Apply

	lock atomic.Bool            // combiner lock
	head atomic.Pointer[Record] // publication list (LIFO push)

	batch []*Record // combiner-owned scratch, guarded by lock

	// Combines counts combiner passes; Served counts requests
	// executed. Both are read by stats code after quiescence.
	Combines uint64
	Served   uint64

	// Observability (nil when not instrumented). lastCombiner is
	// guarded by the combiner lock; batchSize and handoffs are
	// internally atomic.
	batchSize    *obs.Histogram
	handoffs     *obs.Counter
	lastCombiner *Record
}

// Instrument wires this instance into a metrics registry under the
// given name prefix: combined-batch sizes as name/batch_size, combiner
// lock handoffs (lock acquisitions by a different thread than the
// previous combiner) as name/lock_handoffs, and the Combines/Served
// totals as gauges via a snapshot-time collector. Collectors read the
// unsynchronized totals, so snapshot at quiescence. A nil registry
// leaves the instance uninstrumented (all hooks are no-ops).
func (fc *FC) Instrument(reg *obs.Registry, name string) {
	fc.batchSize = reg.Histogram(name + "/batch_size")
	fc.handoffs = reg.Counter(name + "/lock_handoffs")
	reg.AddCollector(func(r *obs.Registry) {
		r.Gauge(name + "/combines").Set(int64(fc.Combines))
		r.Gauge(name + "/served").Set(int64(fc.Served))
	})
}

// New returns a flat-combining instance whose requests are executed by
// apply.
func New(apply Apply) *FC {
	return &FC{apply: apply}
}

// NewRecord registers a new thread with the publication list.
func (fc *FC) NewRecord() *Record {
	r := &Record{}
	for {
		head := fc.head.Load()
		r.next = head
		if fc.head.CompareAndSwap(head, r) {
			return r
		}
	}
}

// Do publishes op on r, then either combines (if it wins the combiner
// lock) or spins until a combiner has served it. It returns the
// operation's result.
func (fc *FC) Do(r *Record, op interface{}) interface{} {
	r.op = op
	r.pending.Store(true)

	for r.pending.Load() {
		if fc.lock.CompareAndSwap(false, true) {
			if fc.handoffs != nil && fc.lastCombiner != r {
				fc.handoffs.Inc()
				fc.lastCombiner = r
			}
			fc.combine()
			fc.lock.Store(false)
			// Our own request is usually served by our pass, but
			// a concurrent combiner may have picked it up just
			// before we took the lock — loop to re-check.
			continue
		}
		runtime.Gosched()
	}
	return r.result
}

// combine scans the publication list once and applies all pending
// requests as one batch. Callers must hold the combiner lock.
func (fc *FC) combine() {
	fc.batch = fc.batch[:0]
	for rec := fc.head.Load(); rec != nil; rec = rec.next {
		if rec.pending.Load() {
			fc.batch = append(fc.batch, rec)
		}
	}
	if len(fc.batch) == 0 {
		return
	}
	fc.Combines++
	fc.Served += uint64(len(fc.batch))
	fc.batchSize.Observe(int64(len(fc.batch)))
	fc.apply(fc.batch)
	// Note: we cannot assert pending==false here — the moment Apply
	// finishes a record, its owner may return from Do and publish a
	// fresh request on the same record.
}
