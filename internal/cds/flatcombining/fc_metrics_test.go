package flatcombining_test

import (
	"sync"
	"testing"

	"pimds/internal/cds/fclist"
	"pimds/internal/cds/flatcombining"
	"pimds/internal/obs"
)

func TestInstrumentedFC(t *testing.T) {
	fc := flatcombining.New(func(batch []*flatcombining.Record) {
		for _, rec := range batch {
			rec.Finish(rec.Op())
		}
	})
	reg := obs.NewRegistry()
	fc.Instrument(reg, "fc")

	const threads, opsEach = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		rec := fc.NewRecord()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				if got := fc.Do(rec, j).(int); got != j {
					t.Errorf("Do returned %v, want %v", got, j)
					return
				}
			}
		}()
	}
	wg.Wait()

	s := reg.Snapshot()
	h, ok := s.Histograms["fc/batch_size"]
	if !ok || h.Count == 0 {
		t.Fatalf("no batch-size observations: %v", s.Histograms)
	}
	if h.Count != fc.Combines {
		t.Errorf("batch histogram count %d != combines %d", h.Count, fc.Combines)
	}
	if h.Max < 1 || h.Max > threads {
		t.Errorf("batch max = %d, want in [1, %d]", h.Max, threads)
	}
	if got := s.Gauges["fc/served"]; got != threads*opsEach {
		t.Errorf("served = %d, want %d", got, threads*opsEach)
	}
	if got := s.Gauges["fc/combines"]; got != int64(fc.Combines) {
		t.Errorf("combines gauge = %d, want %d", got, fc.Combines)
	}
	// With a single instance and several threads the combiner role must
	// have been taken at least once.
	if s.Counters["fc/lock_handoffs"] == 0 {
		t.Error("no lock handoffs recorded")
	}
}

// TestUninstrumentedFCUnchanged: without Instrument, the structure
// behaves identically (smoke test that nil hooks are harmless under
// concurrency).
func TestUninstrumentedFCUnchanged(t *testing.T) {
	l := fclist.New(true)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		h := l.NewHandle()
		base := int64(i * 1000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(0); k < 100; k++ {
				h.Add(base + k)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Errorf("len = %d, want 400", l.Len())
	}
}

func TestFCListInstrumentDelegates(t *testing.T) {
	l := fclist.New(true)
	reg := obs.NewRegistry()
	l.Instrument(reg)
	h := l.NewHandle()
	for k := int64(0); k < 50; k++ {
		h.Add(k)
	}
	s := reg.Snapshot()
	if s.Histograms["fclist/batch_size"].Count == 0 {
		t.Fatalf("fclist batch sizes not recorded: %v", s.Histograms)
	}
	if s.Gauges["fclist/served"] != 50 {
		t.Errorf("served = %d, want 50", s.Gauges["fclist/served"])
	}
}
