package flatcombining

import (
	"sync"
	"testing"
)

// TestSingleThread: one thread's ops are applied in order with results.
func TestSingleThread(t *testing.T) {
	var log []int
	fc := New(func(batch []*Record) {
		for _, rec := range batch {
			v := rec.Op().(int)
			log = append(log, v)
			rec.Finish(v * 2)
		}
	})
	rec := fc.NewRecord()
	for i := 1; i <= 5; i++ {
		if got := fc.Do(rec, i).(int); got != i*2 {
			t.Fatalf("Do(%d) = %d, want %d", i, got, i*2)
		}
	}
	if len(log) != 5 {
		t.Fatalf("applied %d ops, want 5", len(log))
	}
	for i, v := range log {
		if v != i+1 {
			t.Fatalf("log = %v, want [1 2 3 4 5]", log)
		}
	}
	if fc.Served != 5 {
		t.Errorf("Served = %d, want 5", fc.Served)
	}
	if fc.Combines == 0 || fc.Combines > 5 {
		t.Errorf("Combines = %d, want in [1,5]", fc.Combines)
	}
}

// TestConcurrentCounter: the combined structure is a plain counter; the
// final value must equal the total number of increments even though no
// individual increment is atomic (the combiner serializes them).
func TestConcurrentCounter(t *testing.T) {
	counter := 0
	fc := New(func(batch []*Record) {
		for _, rec := range batch {
			counter += rec.Op().(int)
			rec.Finish(counter)
		}
	})
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := fc.NewRecord()
			for i := 0; i < perG; i++ {
				if got := fc.Do(rec, 1).(int); got < 1 || got > goroutines*perG {
					t.Errorf("observed counter %d out of range", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Errorf("counter = %d, want %d", counter, goroutines*perG)
	}
	if fc.Served != goroutines*perG {
		t.Errorf("Served = %d, want %d", fc.Served, goroutines*perG)
	}
}

// TestResultsRoutedToRightThread: each thread must receive the result
// of its own request, never a neighbor's.
func TestResultsRoutedToRightThread(t *testing.T) {
	fc := New(func(batch []*Record) {
		for _, rec := range batch {
			rec.Finish(rec.Op().(int) + 1000)
		}
	})
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec := fc.NewRecord()
			for i := 0; i < 3000; i++ {
				op := g*1_000_000 + i
				if got := fc.Do(rec, op).(int); got != op+1000 {
					t.Errorf("goroutine %d got result %d for op %d", g, got, op)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBatching: under concurrency, at least some combiner passes should
// serve more than one request (this is probabilistic but overwhelmingly
// likely with blocked waiters).
func TestBatching(t *testing.T) {
	fc := New(func(batch []*Record) {
		for _, rec := range batch {
			rec.Finish(nil)
		}
	})
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := fc.NewRecord()
			for i := 0; i < perG; i++ {
				fc.Do(rec, i)
			}
		}()
	}
	wg.Wait()
	if fc.Served != goroutines*perG {
		t.Fatalf("Served = %d, want %d", fc.Served, goroutines*perG)
	}
	if fc.Combines >= fc.Served {
		t.Logf("no batching observed (combines=%d served=%d); legal but unusual", fc.Combines, fc.Served)
	}
}
