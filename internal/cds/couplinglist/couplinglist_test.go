package couplinglist

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialSemantics(t *testing.T) {
	cdstest.SetSequential(t, New(), 64, 4000, 23)
}

func TestConcurrentConservation(t *testing.T) {
	l := New()
	cdstest.SetStress(t,
		func() cdstest.Set { return l },
		func() []int64 { return l.Keys() },
		128, 8, 2000, 707)
}

func TestBoundaryKeys(t *testing.T) {
	l := New()
	lo, hi := int64(-1<<63+1), int64(1<<63-2)
	if !l.Add(lo) || !l.Add(hi) || !l.Contains(lo) || !l.Contains(hi) {
		t.Error("boundary keys broken")
	}
	if !l.Remove(lo) || !l.Remove(hi) {
		t.Error("boundary removes broken")
	}
}
