// Package couplinglist implements the hand-over-hand (lock-coupling)
// sorted linked-list — the textbook fine-grained-locking list that
// predates the lazy list. It is not one of the paper's baselines (the
// paper's "linked-list with fine-grained locks" is the lazy list [24]),
// but it is the natural strawman reading of that phrase, and comparing
// the two on the host shows why the paper picked the lazy list: lock
// coupling acquires O(n) locks per traversal and falls far behind.
package couplinglist

import "sync"

type node struct {
	key  int64
	mu   sync.Mutex
	next *node
}

// List is a concurrent sorted linked-list set using hand-over-hand
// locking. Create one with New. All methods are safe for concurrent
// use.
type List struct {
	head *node // sentinel, key = -∞
}

// New returns an empty list.
func New() *List {
	tail := &node{key: 1<<63 - 1}
	return &List{head: &node{key: -1 << 63, next: tail}}
}

// find locks its way down the list and returns (pred, curr) both
// locked, with pred.key < k ≤ curr.key.
func (l *List) find(k int64) (pred, curr *node) {
	pred = l.head
	pred.mu.Lock()
	curr = pred.next
	curr.mu.Lock()
	for curr.key < k {
		pred.mu.Unlock()
		pred = curr
		curr = curr.next
		curr.mu.Lock()
	}
	return pred, curr
}

// Contains reports whether k is in the set.
func (l *List) Contains(k int64) bool {
	pred, curr := l.find(k)
	found := curr.key == k
	curr.mu.Unlock()
	pred.mu.Unlock()
	return found
}

// Add inserts k and reports whether it was absent.
func (l *List) Add(k int64) bool {
	pred, curr := l.find(k)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.key == k {
		return false
	}
	pred.next = &node{key: k, next: curr}
	return true
}

// Remove deletes k and reports whether it was present.
func (l *List) Remove(k int64) bool {
	pred, curr := l.find(k)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.key != k {
		return false
	}
	pred.next = curr.next
	return true
}

// Keys returns the keys in ascending order at quiescence (tests).
func (l *List) Keys() []int64 {
	var keys []int64
	for n := l.head.next; n.key != 1<<63-1; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}
