package seqskip

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	l := New(1)
	if l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if _, ok := l.Min(); ok {
		t.Error("Min on empty list reported ok")
	}
	keys := []int64{10, 5, 20, 15, 0, 7}
	for _, k := range keys {
		if !l.AddKey(k) {
			t.Errorf("AddKey(%d) failed", k)
		}
	}
	if l.AddKey(15) {
		t.Error("duplicate add succeeded")
	}
	for _, k := range keys {
		if !l.ContainsKey(k) {
			t.Errorf("ContainsKey(%d) = false", k)
		}
	}
	if l.ContainsKey(6) {
		t.Error("absent key found")
	}
	if min, ok := l.Min(); !ok || min != 0 {
		t.Errorf("Min = %d,%v want 0,true", min, ok)
	}
	if !l.RemoveKey(10) || l.RemoveKey(10) {
		t.Error("remove semantics broken")
	}
	got := l.Keys()
	want := []int64{0, 5, 7, 15, 20}
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestApplyDispatch(t *testing.T) {
	l := New(2)
	if !l.Apply(Op{Kind: Add, Key: 1}) || !l.Apply(Op{Kind: Contains, Key: 1}) ||
		!l.Apply(Op{Kind: Remove, Key: 1}) {
		t.Error("apply dispatch broken")
	}
	if l.Apply(Op{Kind: OpKind(9), Key: 1}) {
		t.Error("unknown op should return false")
	}
}

func TestAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		l := New(uint64(seed))
		ref := make(map[int64]bool)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 800; i++ {
			k := rng.Int63n(100)
			switch rng.Intn(3) {
			case 0:
				if l.AddKey(k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if l.RemoveKey(k) != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if l.ContainsKey(k) != ref[k] {
					return false
				}
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		keys := l.Keys()
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeterministicShape: the same seed and op sequence produce the
// same tower heights, hence the same traversal step counts.
func TestDeterministicShape(t *testing.T) {
	build := func() uint64 {
		l := New(42)
		for k := int64(0); k < 500; k++ {
			l.AddKey(k * 7 % 500)
		}
		l.ResetSteps()
		for k := int64(0); k < 500; k++ {
			l.ContainsKey(k)
		}
		return l.Steps()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("same seed produced different step counts: %d vs %d", a, b)
	}
}

// TestLogarithmicSearch: searches in a large list must visit far fewer
// nodes than a linear scan — the skip-list property that makes the
// combining optimization useless for skip-lists (Section 4.2).
func TestLogarithmicSearch(t *testing.T) {
	l := New(7)
	const n = 1 << 14
	for k := int64(0); k < n; k++ {
		l.AddKey(k)
	}
	l.ResetSteps()
	const searches = 1000
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < searches; i++ {
		l.ContainsKey(rng.Int63n(n))
	}
	perSearch := float64(l.Steps()) / searches
	// β ≈ 2·log2(16384) = 28; allow generous slack but far below n.
	if perSearch > 80 {
		t.Errorf("average search visited %.1f nodes, want O(log n) ≈ 28", perSearch)
	}
}

func TestHeightShrinksAfterRemovals(t *testing.T) {
	l := New(3)
	for k := int64(0); k < 1000; k++ {
		l.AddKey(k)
	}
	for k := int64(0); k < 1000; k++ {
		l.RemoveKey(k)
	}
	if l.Len() != 0 {
		t.Fatalf("len = %d after removing everything", l.Len())
	}
	if l.height != 1 {
		t.Errorf("height = %d after emptying, want 1", l.height)
	}
	// And the list still works.
	if !l.AddKey(5) || !l.ContainsKey(5) {
		t.Error("list broken after emptying")
	}
}

// TestApplyBatchEquivalence: ApplyBatch must return what applying the
// ops one at a time in ascending-key (stable) order returns, and leave
// identical contents — the same contract as seqlist.ApplyBatch.
func TestApplyBatchEquivalence(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		batched, serial := New(9), New(9) // same seed: same tower shapes
		for i := 0; i < 40; i++ {
			k := rng.Int63n(64)
			batched.AddKey(k)
			serial.AddKey(k)
		}
		ops := make([]Op, int(nOps%24)+1)
		for i := range ops {
			ops[i] = Op{Kind: OpKind(rng.Intn(3)), Key: rng.Int63n(64)}
		}

		got := batched.ApplyBatch(ops)

		idx := make([]int, len(ops))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return ops[idx[a]].Key < ops[idx[b]].Key })
		want := make([]bool, len(ops))
		for _, i := range idx {
			want[i] = serial.Apply(ops[i])
		}

		for i := range ops {
			if got[i] != want[i] {
				return false
			}
		}
		bk, sk := batched.Keys(), serial.Keys()
		if len(bk) != len(sk) {
			return false
		}
		for i := range bk {
			if bk[i] != sk[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestApplyBatchSavesLittle pins the §4.2 claim quantitatively: on a
// large skip-list, a batched traversal saves far less than the
// linked-list's combining does — under 40% even for a 16-op batch,
// versus the list's ~4× (see seqlist's TestBatchSingleTraversal).
func TestApplyBatchSavesLittle(t *testing.T) {
	build := func() *List {
		l := New(7)
		for k := int64(0); k < 1<<14; k++ {
			l.AddKey(k)
		}
		return l
	}
	rng := rand.New(rand.NewSource(3))
	var batch []Op
	for i := 0; i < 16; i++ {
		batch = append(batch, Op{Kind: Contains, Key: rng.Int63n(1 << 14)})
	}

	serial := build()
	serial.ResetSteps()
	for _, op := range batch {
		serial.Apply(op)
	}
	serialSteps := serial.Steps()

	batched := build()
	batched.ResetSteps()
	batched.ApplyBatch(batch)
	batchSteps := batched.Steps()

	if batchSteps >= serialSteps {
		t.Errorf("finger batch (%d steps) should not exceed serial (%d)", batchSteps, serialSteps)
	}
	saving := 1 - float64(batchSteps)/float64(serialSteps)
	if saving > 0.5 {
		t.Errorf("batch saved %.0f%%; §4.2 predicts small savings (paths share little)", saving*100)
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	l := New(1)
	if got := l.ApplyBatch(nil); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}
