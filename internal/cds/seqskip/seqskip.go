// Package seqskip implements a sequential skip-list set with integer
// keys. It is the per-partition structure used by the flat-combining
// skip-list (Section 4.2) and the reference implementation whose
// traversal lengths calibrate β in the analytical model.
package seqskip

import "sort"

// MaxHeight is the maximum tower height. 2^24 expected elements is far
// beyond any workload in this repository.
const MaxHeight = 24

// Op kinds, shared shape with package seqlist but defined locally so
// the packages stay independent.
type OpKind uint8

// The three set operations.
const (
	Contains OpKind = iota
	Add
	Remove
)

// Op is one set operation request.
type Op struct {
	Kind OpKind
	Key  int64
}

type node struct {
	key  int64
	next []*node
}

// List is a sequential skip-list with a -∞ head sentinel. Create one
// with New.
type List struct {
	head   *node
	height int // current tallest tower
	size   int
	rng    uint64

	steps uint64 // node visits, for cost accounting
}

// New returns an empty skip-list whose tower heights are drawn from the
// deterministic stream seeded by seed (same seed ⇒ same shape).
func New(seed uint64) *List {
	return &List{
		head:   &node{key: minKey, next: make([]*node, MaxHeight)},
		height: 1,
		rng:    seed*2685821657736338717 + 1,
	}
}

const minKey = -1 << 63

// Len returns the number of keys in the list.
func (l *List) Len() int { return l.size }

// Steps returns node visits since the last ResetSteps.
func (l *List) Steps() uint64 { return l.steps }

// ResetSteps zeroes the visit counter.
func (l *List) ResetSteps() { l.steps = 0 }

// randLevel draws a tower height with geometric(1/2) distribution via
// xorshift64.
func (l *List) randLevel() int {
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	h := 1
	for v := l.rng; v&1 == 1 && h < MaxHeight; v >>= 1 {
		h++
	}
	return h
}

// findPreds fills preds with the rightmost node before k on every
// level and returns the node at k on the bottom level, if any.
func (l *List) findPreds(k int64, preds *[MaxHeight]*node) *node {
	x := l.head
	for lvl := l.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && x.next[lvl].key < k {
			x = x.next[lvl]
			l.steps++
		}
		if x.next[lvl] != nil {
			l.steps++ // inspected the stopping node
		}
		preds[lvl] = x
	}
	if c := x.next[0]; c != nil && c.key == k {
		return c
	}
	return nil
}

// ContainsKey reports whether k is in the list.
func (l *List) ContainsKey(k int64) bool {
	var preds [MaxHeight]*node
	return l.findPreds(k, &preds) != nil
}

// AddKey inserts k and reports whether it was absent.
func (l *List) AddKey(k int64) bool {
	var preds [MaxHeight]*node
	if l.findPreds(k, &preds) != nil {
		return false
	}
	lvl := l.randLevel()
	for l.height < lvl {
		preds[l.height] = l.head
		l.height++
	}
	n := &node{key: k, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = preds[i].next[i]
		preds[i].next[i] = n
	}
	l.size++
	return true
}

// RemoveKey deletes k and reports whether it was present.
func (l *List) RemoveKey(k int64) bool {
	var preds [MaxHeight]*node
	c := l.findPreds(k, &preds)
	if c == nil {
		return false
	}
	for i := 0; i < len(c.next); i++ {
		if preds[i].next[i] == c {
			preds[i].next[i] = c.next[i]
		}
	}
	for l.height > 1 && l.head.next[l.height-1] == nil {
		l.height--
	}
	l.size--
	return true
}

// Apply executes a single operation and returns its result.
func (l *List) Apply(op Op) bool {
	switch op.Kind {
	case Contains:
		return l.ContainsKey(op.Key)
	case Add:
		return l.AddKey(op.Key)
	case Remove:
		return l.RemoveKey(op.Key)
	default:
		return false
	}
}

// Keys returns the keys in ascending order (for tests).
func (l *List) Keys() []int64 {
	keys := make([]int64, 0, l.size)
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		keys = append(keys, n.key)
	}
	return keys
}

// Successor returns the smallest key ≥ k and whether one exists. The
// PIM skip-list's migration protocol uses it to walk a partition's
// nodes in ascending order.
func (l *List) Successor(k int64) (int64, bool) {
	var preds [MaxHeight]*node
	l.findPreds(k, &preds)
	if n := preds[0].next[0]; n != nil {
		return n.key, true
	}
	return 0, false
}

// Min returns the smallest key and whether the list is non-empty.
func (l *List) Min() (int64, bool) {
	if n := l.head.next[0]; n != nil {
		return n.key, true
	}
	return 0, false
}

// Max returns the largest key and whether the list is non-empty. The
// walk rides the top levels right, so it costs O(log n) expected steps
// rather than a bottom-level traversal.
func (l *List) Max() (int64, bool) {
	x := l.head
	for lvl := l.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil {
			x = x.next[lvl]
			l.steps++
		}
	}
	if x == l.head {
		return 0, false
	}
	return x.key, true
}

// PredKey returns the largest key strictly less than k and whether one
// exists.
func (l *List) PredKey(k int64) (int64, bool) {
	var preds [MaxHeight]*node
	l.findPreds(k, &preds)
	if p := preds[0]; p != l.head {
		return p.key, true
	}
	return 0, false
}

// SuccKey returns the smallest key strictly greater than k and whether
// one exists.
func (l *List) SuccKey(k int64) (int64, bool) {
	var preds [MaxHeight]*node
	var n *node
	if c := l.findPreds(k, &preds); c != nil {
		n = c.next[0]
		l.steps++
	} else {
		n = preds[0].next[0]
	}
	if n != nil {
		return n.key, true
	}
	return 0, false
}

// PopMinKey removes and returns the smallest key (ok=false on empty).
// The minimum's predecessor at every level is the head sentinel, so
// the unlink needs no descent.
func (l *List) PopMinKey() (int64, bool) {
	n := l.head.next[0]
	if n == nil {
		return 0, false
	}
	l.steps++
	for i := 0; i < len(n.next); i++ {
		if l.head.next[i] == n {
			l.head.next[i] = n.next[i]
		}
	}
	for l.height > 1 && l.head.next[l.height-1] == nil {
		l.height--
	}
	l.size--
	return n.key, true
}

// PopMaxKey removes and returns the largest key (ok=false on empty).
func (l *List) PopMaxKey() (int64, bool) {
	k, ok := l.Max()
	if !ok {
		return 0, false
	}
	l.RemoveKey(k)
	return k, true
}

// RangeScanInto appends to arena up to limit keys in the half-open
// interval [lo, hi) in ascending order (limit ≤ 0 = unlimited) and
// returns the grown arena, the number of keys appended, and the
// pagination cursor: hi when the interval was exhausted, else the
// first unreturned key. lo ≥ hi is a legal empty scan. One descent
// reaches lo (the β of the analytical model); the span walk then rides
// the bottom level, each visited node charged one step.
func (l *List) RangeScanInto(lo, hi int64, limit int, arena []int64) ([]int64, int, int64) {
	cursor := hi
	if lo >= hi {
		return arena, 0, cursor
	}
	var preds [MaxHeight]*node
	l.findPreds(lo, &preds)
	count := 0
	for n := preds[0].next[0]; n != nil && n.key < hi; n = n.next[0] {
		if limit > 0 && count == limit {
			cursor = n.key
			break
		}
		arena = append(arena, n.key)
		count++
		l.steps++
	}
	return arena, count, cursor
}

// ApplyBatch executes a batch of operations in ascending key order
// using a finger search: each lookup resumes from the previous
// operation's predecessor frontier instead of the head. This is the
// combining optimization transplanted from the linked-list (package
// seqlist). Section 4.2 argues it cannot help a skip-list much —
// "for any two distant nodes in the skip-list, the paths threads must
// traverse … do not have large overlapping sub-paths" — and the
// experiment `-exp skip-combining` measures exactly how little it
// saves. Results are returned in the batch's original order.
func (l *List) ApplyBatch(ops []Op) []bool {
	results := make([]bool, len(ops))
	if len(ops) == 0 {
		return results
	}
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ops[idx[a]].Key < ops[idx[b]].Key })

	var finger [MaxHeight]*node
	for i := range finger {
		finger[i] = l.head
	}
	for _, i := range idx {
		op := ops[i]
		// Resume each level from the finger (whose key is < every
		// remaining key, since keys ascend and fingers only hold
		// predecessors of earlier keys). Mutations invalidate nothing:
		// adds splice after the finger, removes unlink nodes at or
		// after it, and sentinel fingers never get deleted because a
		// finger node always has key < op.Key.
		x := l.head
		var preds [MaxHeight]*node
		for lvl := l.height - 1; lvl >= 0; lvl-- {
			if finger[lvl] != nil && finger[lvl].key > x.key && finger[lvl].key < op.Key {
				x = finger[lvl]
			}
			for x.next[lvl] != nil && x.next[lvl].key < op.Key {
				x = x.next[lvl]
				l.steps++
			}
			if x.next[lvl] != nil {
				l.steps++
			}
			preds[lvl] = x
		}
		c := x.next[0]
		found := c != nil && c.key == op.Key

		switch op.Kind {
		case Contains:
			results[i] = found
		case Add:
			if found {
				results[i] = false
				break
			}
			lvlN := l.randLevel()
			for l.height < lvlN {
				preds[l.height] = l.head
				l.height++
			}
			n := &node{key: op.Key, next: make([]*node, lvlN)}
			for j := 0; j < lvlN; j++ {
				n.next[j] = preds[j].next[j]
				preds[j].next[j] = n
			}
			l.size++
			results[i] = true
		case Remove:
			if !found {
				results[i] = false
				break
			}
			for j := 0; j < len(c.next); j++ {
				if j < l.height && preds[j].next[j] == c {
					preds[j].next[j] = c.next[j]
				}
			}
			l.size--
			results[i] = true
		}
		finger = preds
	}
	return results
}
