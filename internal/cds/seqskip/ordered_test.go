package seqskip

import (
	"math/rand"
	"testing"
)

func fillSkip(t *testing.T, keys ...int64) *List {
	t.Helper()
	l := New(1)
	for _, k := range keys {
		if !l.AddKey(k) {
			t.Fatalf("duplicate key %d in fixture", k)
		}
	}
	return l
}

func TestSkipRangeScanEdgeCases(t *testing.T) {
	l := fillSkip(t, 10, 20, 30, 40, 50)

	arena, n, cursor := l.RangeScanInto(15, 45, 0, nil)
	if want := []int64{20, 30, 40}; !keysEq(arena, want) || n != 3 || cursor != 45 {
		t.Errorf("scan [15,45): keys %v n %d cursor %d", arena, n, cursor)
	}

	// Half-open bounds.
	arena, _, _ = l.RangeScanInto(20, 40, 0, nil)
	if want := []int64{20, 30}; !keysEq(arena, want) {
		t.Errorf("scan [20,40): got %v, want %v", arena, want)
	}

	// Empty and inverted intervals are legal, complete scans.
	if arena, n, cursor := l.RangeScanInto(30, 30, 0, nil); len(arena) != 0 || n != 0 || cursor != 30 {
		t.Errorf("empty scan: %v %d %d", arena, n, cursor)
	}
	if arena, n, cursor := l.RangeScanInto(50, 10, 0, nil); len(arena) != 0 || n != 0 || cursor != 10 {
		t.Errorf("inverted scan: %v %d %d", arena, n, cursor)
	}

	// Limit truncation and cursor resumption cover the range exactly.
	arena, n, cursor = l.RangeScanInto(0, 100, 2, nil)
	if want := []int64{10, 20}; !keysEq(arena, want) || n != 2 || cursor != 30 {
		t.Errorf("limited scan: keys %v n %d cursor %d", arena, n, cursor)
	}
	arena, n, cursor = l.RangeScanInto(cursor, 100, 0, arena[:0])
	if want := []int64{30, 40, 50}; !keysEq(arena, want) || cursor != 100 {
		t.Errorf("resumed scan: keys %v n %d cursor %d", arena, n, cursor)
	}

	// Scanning an empty list.
	if arena, n, cursor := New(2).RangeScanInto(0, 100, 0, nil); len(arena) != 0 || n != 0 || cursor != 100 {
		t.Errorf("scan of empty list: %v %d %d", arena, n, cursor)
	}
}

func TestSkipPredSuccMaxEdgeCases(t *testing.T) {
	l := fillSkip(t, 10, 20, 30)
	if v, ok := l.PredKey(25); !ok || v != 20 {
		t.Errorf("Pred(25): %d,%v", v, ok)
	}
	if v, ok := l.PredKey(20); !ok || v != 10 {
		t.Errorf("Pred(20): %d,%v", v, ok)
	}
	if _, ok := l.PredKey(10); ok {
		t.Error("Pred(10) should not exist")
	}
	if v, ok := l.SuccKey(15); !ok || v != 20 {
		t.Errorf("Succ(15): %d,%v", v, ok)
	}
	if v, ok := l.SuccKey(20); !ok || v != 30 {
		t.Errorf("Succ(20): %d,%v", v, ok)
	}
	if _, ok := l.SuccKey(30); ok {
		t.Error("Succ(30) should not exist")
	}
	if v, ok := l.Max(); !ok || v != 30 {
		t.Errorf("Max: %d,%v", v, ok)
	}
	if _, ok := New(3).Max(); ok {
		t.Error("Max of empty list reported ok")
	}
}

func TestSkipPopMinPopMaxEdgeCases(t *testing.T) {
	l := fillSkip(t, 7, 3, 9)
	if v, ok := l.PopMinKey(); !ok || v != 3 {
		t.Fatalf("PopMin: %d,%v", v, ok)
	}
	if v, ok := l.PopMaxKey(); !ok || v != 9 {
		t.Fatalf("PopMax: %d,%v", v, ok)
	}
	if v, ok := l.PopMinKey(); !ok || v != 7 {
		t.Fatalf("PopMin: %d,%v", v, ok)
	}
	if _, ok := l.PopMinKey(); ok {
		t.Error("PopMin on empty list reported ok")
	}
	if _, ok := l.PopMaxKey(); ok {
		t.Error("PopMax on empty list reported ok")
	}
	if l.Len() != 0 {
		t.Errorf("len after draining: %d", l.Len())
	}
	// The height collapses as towers drain, keeping descents cheap.
	if l.height != 1 {
		t.Errorf("height after draining: %d", l.height)
	}
}

// TestSkipOrderedAgainstReference drives random ordered ops against a
// sorted-slice reference model.
func TestSkipOrderedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := New(11)
	model := map[int64]bool{}
	for i := 0; i < 3000; i++ {
		k := int64(rng.Intn(512))
		switch rng.Intn(8) {
		case 0, 1:
			if l.AddKey(k) != !model[k] {
				t.Fatalf("Add(%d) disagrees with model", k)
			}
			model[k] = true
		case 2:
			if l.RemoveKey(k) != model[k] {
				t.Fatalf("Remove(%d) disagrees with model", k)
			}
			delete(model, k)
		case 3:
			want, wantOK := modelPred(model, k)
			if v, ok := l.PredKey(k); ok != wantOK || (ok && v != want) {
				t.Fatalf("Pred(%d): got %d,%v want %d,%v", k, v, ok, want, wantOK)
			}
		case 4:
			want, wantOK := modelSucc(model, k)
			if v, ok := l.SuccKey(k); ok != wantOK || (ok && v != want) {
				t.Fatalf("Succ(%d): got %d,%v want %d,%v", k, v, ok, want, wantOK)
			}
		case 5:
			hi := k + int64(rng.Intn(64))
			limit := rng.Intn(5)
			arena, _, cursor := l.RangeScanInto(k, hi, limit, nil)
			checkScan(t, model, k, hi, limit, arena, cursor)
		case 6:
			want, wantOK := modelSucc(model, -1<<62)
			if v, ok := l.PopMinKey(); ok != wantOK || (ok && v != want) {
				t.Fatalf("PopMin: got %d,%v want %d,%v", v, ok, want, wantOK)
			}
			delete(model, want)
		case 7:
			want, wantOK := modelPred(model, 1<<62)
			if v, ok := l.PopMaxKey(); ok != wantOK || (ok && v != want) {
				t.Fatalf("PopMax: got %d,%v want %d,%v", v, ok, want, wantOK)
			}
			delete(model, want)
		}
		if l.Len() != len(model) {
			t.Fatalf("size %d, model %d", l.Len(), len(model))
		}
	}
}

func modelPred(m map[int64]bool, k int64) (int64, bool) {
	best, ok := int64(0), false
	for key := range m {
		if key < k && (!ok || key > best) {
			best, ok = key, true
		}
	}
	return best, ok
}

func modelSucc(m map[int64]bool, k int64) (int64, bool) {
	best, ok := int64(0), false
	for key := range m {
		if key > k && (!ok || key < best) {
			best, ok = key, true
		}
	}
	return best, ok
}

func checkScan(t *testing.T, m map[int64]bool, lo, hi int64, limit int, got []int64, cursor int64) {
	t.Helper()
	want := make([]int64, 0, len(m))
	for key := range m {
		if key >= lo && key < hi {
			want = append(want, key)
		}
	}
	sortInt64s(want)
	wantCursor := hi
	if limit > 0 && len(want) > limit {
		wantCursor = want[limit]
		want = want[:limit]
	}
	if !keysEq(got, want) || cursor != wantCursor {
		t.Fatalf("scan [%d,%d) limit %d: got %v cursor %d, want %v cursor %d",
			lo, hi, limit, got, cursor, want, wantCursor)
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func keysEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
