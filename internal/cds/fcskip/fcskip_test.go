package fcskip

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialSemantics(t *testing.T) {
	for _, k := range []int{1, 4, 8} {
		l := New(64, k, 5)
		cdstest.SetSequential(t, l.NewHandle(), 64, 4000, int64(19+k))
	}
}

func TestConcurrentConservation(t *testing.T) {
	for _, k := range []int{1, 4} {
		l := New(128, k, 6)
		cdstest.SetStress(t,
			func() cdstest.Set { return l.NewHandle() },
			func() []int64 { return l.Keys() },
			128, 8, 2500, int64(505+k))
	}
}

func TestPartitionRouting(t *testing.T) {
	l := New(100, 4, 7)
	if l.Partitions() != 4 {
		t.Fatalf("Partitions = %d, want 4", l.Partitions())
	}
	// Partition i covers [25i, 25(i+1)).
	cases := map[int64]int{0: 0, 24: 0, 25: 1, 49: 1, 50: 2, 75: 3, 99: 3}
	for k, want := range cases {
		if got := l.partitionFor(k); got != want {
			t.Errorf("partitionFor(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestKeysSortedAcrossPartitions(t *testing.T) {
	l := New(1000, 8, 8)
	h := l.NewHandle()
	for _, k := range []int64{999, 0, 500, 250, 750, 124, 126} {
		h.Add(k)
	}
	keys := l.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	if l.Len() != 7 {
		t.Errorf("len = %d, want 7", l.Len())
	}
}

func TestOutOfRangeKeyPanics(t *testing.T) {
	l := New(10, 2, 9)
	h := l.NewHandle()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range key should panic")
		}
	}()
	h.Add(10)
}

func TestBadConstructionPanics(t *testing.T) {
	for _, c := range []struct {
		space int64
		k     int
	}{{10, 0}, {2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) should panic", c.space, c.k)
				}
			}()
			New(c.space, c.k, 1)
		}()
	}
}
