// Package fcskip implements the flat-combining skip-list with k
// partitions of Section 4.2 / Figure 4: the key space is split into k
// disjoint ranges, each served by its own flat-combining instance over
// a sequential skip-list, so up to k combiners run in parallel. With
// k = 1 it is the plain flat-combining skip-list (Table 2 row 2).
//
// Its throughput is the paper's stand-in for the PIM-managed skip-list
// with k vaults: multiply by r1 to estimate the PIM version.
package fcskip

import (
	"fmt"

	"pimds/internal/cds/flatcombining"
	"pimds/internal/cds/seqskip"
	"pimds/internal/obs"
)

// List is a partitioned flat-combining skip-list set over the key space
// [0, KeySpace). Create one with New; each goroutine needs its own
// Handle.
type List struct {
	keySpace int64
	parts    []*partition
}

type partition struct {
	fc  *flatcombining.FC
	seq *seqskip.List
}

// New returns an empty partitioned FC skip-list over keys in
// [0, keySpace), split into k equal ranges. Like the paper's
// construction, partition i starts at sentinel key i·keySpace/k.
func New(keySpace int64, k int, seed uint64) *List {
	if k < 1 || keySpace < int64(k) {
		panic(fmt.Sprintf("fcskip: need 1 <= k (%d) <= keySpace (%d)", k, keySpace))
	}
	l := &List{keySpace: keySpace, parts: make([]*partition, k)}
	for i := range l.parts {
		p := &partition{seq: seqskip.New(seed + uint64(i)*0x9e3779b9)}
		p.fc = flatcombining.New(func(batch []*flatcombining.Record) {
			for _, rec := range batch {
				rec.Finish(p.seq.Apply(rec.Op().(seqskip.Op)))
			}
		})
		l.parts[i] = p
	}
	return l
}

// Partitions returns k.
func (l *List) Partitions() int { return len(l.parts) }

// Instrument exports combining metrics for every partition's combiner
// into reg, under "fcskip/part/NNN" prefixes.
func (l *List) Instrument(reg *obs.Registry) {
	for i, p := range l.parts {
		p.fc.Instrument(reg, fmt.Sprintf("fcskip/part/%03d", i))
	}
}

// partitionFor routes a key to its range's partition.
func (l *List) partitionFor(k int64) int {
	if k < 0 || k >= l.keySpace {
		panic(fmt.Sprintf("fcskip: key %d outside [0, %d)", k, l.keySpace))
	}
	return int(k * int64(len(l.parts)) / l.keySpace)
}

// Handle is a per-goroutine access handle: one publication record per
// partition.
type Handle struct {
	l    *List
	recs []*flatcombining.Record
}

// NewHandle registers a goroutine with every partition.
func (l *List) NewHandle() *Handle {
	h := &Handle{l: l, recs: make([]*flatcombining.Record, len(l.parts))}
	for i, p := range l.parts {
		h.recs[i] = p.fc.NewRecord()
	}
	return h
}

// Contains reports whether k is in the set.
func (h *Handle) Contains(k int64) bool { return h.do(seqskip.Contains, k) }

// Add inserts k and reports whether it was absent.
func (h *Handle) Add(k int64) bool { return h.do(seqskip.Add, k) }

// Remove deletes k and reports whether it was present.
func (h *Handle) Remove(k int64) bool { return h.do(seqskip.Remove, k) }

func (h *Handle) do(kind seqskip.OpKind, k int64) bool {
	i := h.l.partitionFor(k)
	p := h.l.parts[i]
	return p.fc.Do(h.recs[i], seqskip.Op{Kind: kind, Key: k}).(bool)
}

// Len returns the total number of keys at quiescence.
func (l *List) Len() int {
	total := 0
	for _, p := range l.parts {
		total += p.seq.Len()
	}
	return total
}

// Keys returns all keys in ascending order at quiescence (tests).
// Partitions hold disjoint ascending ranges, so concatenation is
// already sorted.
func (l *List) Keys() []int64 {
	var keys []int64
	for _, p := range l.parts {
		keys = append(keys, p.seq.Keys()...)
	}
	return keys
}
