package fclist

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialSemanticsBothVariants(t *testing.T) {
	for _, combining := range []bool{false, true} {
		l := New(combining)
		cdstest.SetSequential(t, l.NewHandle(), 64, 4000, 17)
	}
}

func TestConcurrentConservationNoCombining(t *testing.T) {
	l := New(false)
	cdstest.SetStress(t,
		func() cdstest.Set { return l.NewHandle() },
		func() []int64 { return l.Keys() },
		128, 8, 2500, 303)
}

func TestConcurrentConservationCombining(t *testing.T) {
	l := New(true)
	cdstest.SetStress(t,
		func() cdstest.Set { return l.NewHandle() },
		func() []int64 { return l.Keys() },
		128, 8, 2500, 404)
}

func TestCombiningFlag(t *testing.T) {
	if New(true).Combining() != true || New(false).Combining() != false {
		t.Error("Combining flag not preserved")
	}
}

func TestStatsCount(t *testing.T) {
	l := New(true)
	h := l.NewHandle()
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	combines, served := l.Stats()
	if served != 100 {
		t.Errorf("served = %d, want 100", served)
	}
	if combines == 0 {
		t.Error("no combiner passes recorded")
	}
	if l.Len() != 100 {
		t.Errorf("len = %d, want 100", l.Len())
	}
}
