// Package fclist implements the flat-combining linked-list of
// Section 4.1, in both variants the paper evaluates in Figure 2:
// without the combining optimization (the combiner executes each
// request with its own traversal) and with it (the combiner serves the
// whole batch in one traversal). The FC list's throughput is the
// paper's stand-in for the PIM-managed linked-list: multiply by r1 to
// estimate the PIM list.
package fclist

import (
	"pimds/internal/cds/flatcombining"
	"pimds/internal/cds/seqlist"
	"pimds/internal/obs"
)

// List is a flat-combining sorted linked-list set. Create one with New;
// each goroutine must obtain its own Handle.
type List struct {
	fc        *flatcombining.FC
	seq       *seqlist.List
	combining bool

	ops []seqlist.Op // combiner scratch
}

// New returns an empty FC list. If combining is true the combiner
// applies each batch in a single traversal (the paper's combining
// optimization); otherwise it traverses once per request.
func New(combining bool) *List {
	l := &List{seq: seqlist.New(), combining: combining}
	l.fc = flatcombining.New(l.apply)
	return l
}

// Combining reports whether the combining optimization is enabled.
func (l *List) Combining() bool { return l.combining }

// Handle is a per-goroutine access handle (its publication record).
type Handle struct {
	l   *List
	rec *flatcombining.Record
}

// NewHandle registers a goroutine with the list.
func (l *List) NewHandle() *Handle {
	return &Handle{l: l, rec: l.fc.NewRecord()}
}

// Contains reports whether k is in the set.
func (h *Handle) Contains(k int64) bool { return h.do(seqlist.Contains, k) }

// Add inserts k and reports whether it was absent.
func (h *Handle) Add(k int64) bool { return h.do(seqlist.Add, k) }

// Remove deletes k and reports whether it was present.
func (h *Handle) Remove(k int64) bool { return h.do(seqlist.Remove, k) }

func (h *Handle) do(kind seqlist.OpKind, k int64) bool {
	return h.l.fc.Do(h.rec, seqlist.Op{Kind: kind, Key: k}).(bool)
}

// apply runs under the combiner lock.
func (l *List) apply(batch []*flatcombining.Record) {
	if l.combining {
		l.ops = l.ops[:0]
		for _, rec := range batch {
			l.ops = append(l.ops, rec.Op().(seqlist.Op))
		}
		results := l.seq.ApplyBatch(l.ops)
		for i, rec := range batch {
			rec.Finish(results[i])
		}
		return
	}
	for _, rec := range batch {
		rec.Finish(l.seq.Apply(rec.Op().(seqlist.Op)))
	}
}

// Len returns the number of keys at quiescence.
func (l *List) Len() int { return l.seq.Len() }

// Keys returns the keys in ascending order at quiescence (tests).
func (l *List) Keys() []int64 { return l.seq.Keys() }

// Stats returns (combiner passes, requests served) so far.
func (l *List) Stats() (combines, served uint64) {
	return l.fc.Combines, l.fc.Served
}

// Instrument exports combining metrics (batch sizes, lock handoffs,
// totals) into reg under the "fclist" prefix.
func (l *List) Instrument(reg *obs.Registry) {
	l.fc.Instrument(reg, "fclist")
}
