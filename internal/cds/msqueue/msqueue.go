// Package msqueue implements the classic lock-free FIFO queue of
// Michael and Scott (PODC 1996). It is not one of the paper's
// baselines; it serves as an additional correctness reference and as a
// sanity point in the queue benchmarks (the paper's F&A queue exists
// precisely because CAS-retry queues like this one collapse under
// contention).
package msqueue

import "sync/atomic"

type node struct {
	val  int64
	next atomic.Pointer[node]
}

// Queue is a lock-free FIFO queue of int64 values. Create one with New.
// All methods are safe for concurrent use.
type Queue struct {
	head atomic.Pointer[node] // dummy node
	tail atomic.Pointer[node]
}

// New returns an empty queue.
func New() *Queue {
	dummy := &node{}
	q := &Queue{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v to the queue.
func (q *Queue) Enqueue(v int64) {
	n := &node{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false if the
// queue was observed empty.
func (q *Queue) Dequeue() (v int64, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return 0, false
			}
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			return next.val, true
		}
	}
}

// Len returns the queue length at quiescence (tests).
func (q *Queue) Len() int {
	n := 0
	for cur := q.head.Load().next.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}
