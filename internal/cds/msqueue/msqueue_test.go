package msqueue

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialFIFO(t *testing.T) {
	cdstest.QueueSequential(t, New(), 5000)
}

func TestConcurrentConservation(t *testing.T) {
	q := New()
	cdstest.QueueStress(t,
		func() cdstest.Queue { return q },
		4, 4, 5000)
}

func TestLenAtQuiescence(t *testing.T) {
	q := New()
	for i := int64(0); i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Errorf("len = %d, want 10", q.Len())
	}
	q.Dequeue()
	q.Dequeue()
	if q.Len() != 8 {
		t.Errorf("len = %d, want 8", q.Len())
	}
}
