// Package seqlist implements a sequential sorted linked-list set with
// integer keys. It is the data structure a flat-combining combiner (or,
// in the simulator, a PIM core) manipulates on behalf of all threads,
// and it supports the paper's combining optimization: applying a whole
// batch of operations in a single traversal (Section 4.1).
package seqlist

import "sort"

// OpKind is the kind of a set operation.
type OpKind uint8

// The three set operations of Section 4.
const (
	Contains OpKind = iota
	Add
	Remove
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case Contains:
		return "contains"
	case Add:
		return "add"
	case Remove:
		return "remove"
	default:
		return "unknown"
	}
}

// Op is one set operation request.
type Op struct {
	Kind OpKind
	Key  int64
}

type node struct {
	key  int64
	next *node
}

// List is a sorted singly-linked list with a dummy head sentinel. The
// zero value is not ready to use; call New.
type List struct {
	head *node // dummy sentinel, key irrelevant
	size int

	// steps counts node visits (pointer dereferences past the
	// sentinel) so tests and the simulator can charge traversal
	// costs; reset with ResetSteps.
	steps uint64
}

// New returns an empty list.
func New() *List {
	return &List{head: &node{}}
}

// Len returns the number of keys in the list.
func (l *List) Len() int { return l.size }

// Steps returns the number of node visits since the last ResetSteps.
func (l *List) Steps() uint64 { return l.steps }

// ResetSteps zeroes the visit counter.
func (l *List) ResetSteps() { l.steps = 0 }

// find returns the last node with key < k, starting from from (which
// must already satisfy from.key < k or be the sentinel).
func (l *List) find(from *node, k int64) *node {
	pred := from
	for pred.next != nil && pred.next.key < k {
		pred = pred.next
		l.steps++
	}
	if pred.next != nil {
		l.steps++ // inspected the stopping node too
	}
	return pred
}

// ContainsKey reports whether k is in the list.
func (l *List) ContainsKey(k int64) bool {
	pred := l.find(l.head, k)
	return pred.next != nil && pred.next.key == k
}

// AddKey inserts k and reports whether it was absent.
func (l *List) AddKey(k int64) bool {
	pred := l.find(l.head, k)
	if pred.next != nil && pred.next.key == k {
		return false
	}
	pred.next = &node{key: k, next: pred.next}
	l.size++
	return true
}

// RemoveKey deletes k and reports whether it was present.
func (l *List) RemoveKey(k int64) bool {
	pred := l.find(l.head, k)
	if pred.next == nil || pred.next.key != k {
		return false
	}
	pred.next = pred.next.next
	l.size--
	return true
}

// Apply executes a single operation and returns its result.
func (l *List) Apply(op Op) bool {
	switch op.Kind {
	case Contains:
		return l.ContainsKey(op.Key)
	case Add:
		return l.AddKey(op.Key)
	case Remove:
		return l.RemoveKey(op.Key)
	default:
		return false
	}
}

// ApplyBatch executes a batch of operations in one traversal — the
// combining optimization of Section 4.1. Operations are served in
// ascending key order (ties in batch order), so the whole batch costs
// one walk to the largest requested key instead of one walk per
// operation. Results are returned in the batch's original order.
//
// Reordering operations with distinct keys is linearizable: the batch
// is concurrent, so any serialization is legal; same-key operations
// keep their relative order.
func (l *List) ApplyBatch(ops []Op) []bool {
	results := make([]bool, len(ops))
	if len(ops) == 0 {
		return results
	}
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ops[idx[a]].Key < ops[idx[b]].Key })

	pred := l.head
	for _, i := range idx {
		op := ops[i]
		pred = l.find(pred, op.Key)
		switch op.Kind {
		case Contains:
			results[i] = pred.next != nil && pred.next.key == op.Key
		case Add:
			if pred.next != nil && pred.next.key == op.Key {
				results[i] = false
			} else {
				pred.next = &node{key: op.Key, next: pred.next}
				l.size++
				results[i] = true
			}
		case Remove:
			if pred.next != nil && pred.next.key == op.Key {
				pred.next = pred.next.next
				l.size--
				results[i] = true
			} else {
				results[i] = false
			}
		}
	}
	return results
}

// Keys returns the keys in ascending order (for tests).
func (l *List) Keys() []int64 {
	keys := make([]int64, 0, l.size)
	for n := l.head.next; n != nil; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}
