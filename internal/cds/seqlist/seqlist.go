// Package seqlist implements a sequential sorted linked-list set with
// integer keys. It is the data structure a flat-combining combiner (or,
// in the simulator, a PIM core) manipulates on behalf of all threads,
// and it supports the paper's combining optimization: applying a whole
// batch of operations in a single traversal (Section 4.1).
package seqlist

// OpKind is the kind of a set operation.
type OpKind uint8

// The three set operations of Section 4, plus the ordered operations
// the sorted list serves natively: range scans, neighbor queries and
// extremum pops.
const (
	Contains OpKind = iota
	Add
	Remove

	// RangeScan collects up to Limit keys in [Key, Hi), ascending.
	RangeScan
	// Pred finds the largest key strictly less than Key.
	Pred
	// Succ finds the smallest key strictly greater than Key.
	Succ
	// PopMin removes and returns the smallest key.
	PopMin
	// PopMax removes and returns the largest key.
	PopMax
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case Contains:
		return "contains"
	case Add:
		return "add"
	case Remove:
		return "remove"
	case RangeScan:
		return "scan"
	case Pred:
		return "pred"
	case Succ:
		return "succ"
	case PopMin:
		return "popmin"
	case PopMax:
		return "popmax"
	default:
		return "unknown"
	}
}

// Op is one set operation request. Hi and Limit are RangeScan's
// exclusive upper bound and result cap (Limit ≤ 0 = unlimited); other
// kinds ignore them.
type Op struct {
	Kind  OpKind
	Key   int64
	Hi    int64
	Limit int
}

// OpResult is one outcome of an ordered batch. For RangeScan, Scan is
// true and [Start, Start+N) is the op's segment of the shared values
// arena; Value is the pagination cursor (the scan is complete when
// cursor ≥ Hi). For Pred/Succ/PopMin/PopMax, OK reports whether a key
// existed and Value carries it.
type OpResult struct {
	OK    bool
	Value int64
	Start int
	N     int
	Scan  bool
}

type node struct {
	key  int64
	next *node
}

// List is a sorted singly-linked list with a dummy head sentinel. The
// zero value is not ready to use; call New.
//
// The list recycles removed nodes through a free list and keeps batch
// scratch inside itself, so in steady state (removals feeding later
// insertions, batch sizes stabilized) ApplyBatchInto runs without
// heap allocation — a List is owned by one combiner, which must not
// stall on GC while every published op on its shard waits.
type List struct {
	head *node // dummy sentinel, key irrelevant
	size int

	// free chains removed nodes for reuse by the next insertion.
	free *node

	// idx/tmp are ApplyBatchInto's sort scratch, grown to the largest
	// batch seen.
	idx, tmp []int

	// steps counts node visits (pointer dereferences past the
	// sentinel) so tests and the simulator can charge traversal
	// costs; reset with ResetSteps.
	steps uint64
}

// New returns an empty list.
func New() *List {
	return &List{head: &node{}}
}

// Len returns the number of keys in the list.
func (l *List) Len() int { return l.size }

// Steps returns the number of node visits since the last ResetSteps.
func (l *List) Steps() uint64 { return l.steps }

// ResetSteps zeroes the visit counter.
func (l *List) ResetSteps() { l.steps = 0 }

// newNode takes a node from the free list, or allocates when the list
// has never shrunk below its current size.
func (l *List) newNode(key int64, next *node) *node {
	if n := l.free; n != nil {
		l.free = n.next
		n.key, n.next = key, next
		return n
	}
	return &node{key: key, next: next} //pimvet:allow allocfree: only net growth allocates; removed nodes are recycled through the free list
}

// freeNode recycles a node just unlinked from the list.
func (l *List) freeNode(n *node) {
	n.next = l.free
	l.free = n
}

// find returns the last node with key < k, starting from from (which
// must already satisfy from.key < k or be the sentinel).
func (l *List) find(from *node, k int64) *node {
	pred := from
	for pred.next != nil && pred.next.key < k {
		pred = pred.next
		l.steps++
	}
	if pred.next != nil {
		l.steps++ // inspected the stopping node too
	}
	return pred
}

// ContainsKey reports whether k is in the list.
func (l *List) ContainsKey(k int64) bool {
	pred := l.find(l.head, k)
	return pred.next != nil && pred.next.key == k
}

// AddKey inserts k and reports whether it was absent.
func (l *List) AddKey(k int64) bool {
	pred := l.find(l.head, k)
	if pred.next != nil && pred.next.key == k {
		return false
	}
	pred.next = l.newNode(k, pred.next)
	l.size++
	return true
}

// RemoveKey deletes k and reports whether it was present.
func (l *List) RemoveKey(k int64) bool {
	pred := l.find(l.head, k)
	if pred.next == nil || pred.next.key != k {
		return false
	}
	gone := pred.next
	pred.next = gone.next
	l.freeNode(gone)
	l.size--
	return true
}

// Apply executes a single operation and returns its result.
func (l *List) Apply(op Op) bool {
	switch op.Kind {
	case Contains:
		return l.ContainsKey(op.Key)
	case Add:
		return l.AddKey(op.Key)
	case Remove:
		return l.RemoveKey(op.Key)
	default:
		return false
	}
}

// ApplyBatch executes a batch of operations in one traversal — the
// combining optimization of Section 4.1. Operations are served in
// ascending key order (ties in batch order), so the whole batch costs
// one walk to the largest requested key instead of one walk per
// operation. Results are returned in the batch's original order.
//
// Reordering operations with distinct keys is linearizable: the batch
// is concurrent, so any serialization is legal; same-key operations
// keep their relative order.
func (l *List) ApplyBatch(ops []Op) []bool {
	results := make([]bool, len(ops))
	l.ApplyBatchInto(ops, results)
	return results
}

// ApplyBatchInto is ApplyBatch writing into a caller-provided results
// slice (len(results) must equal len(ops)): the allocation-free form a
// combiner calls every pass. Sort scratch and freed nodes are recycled
// inside the List, so a batch no larger than any before it, against a
// list no larger than its high-water mark, allocates nothing.
//
//pimvet:allocfree //pimvet:nonblocking
func (l *List) ApplyBatchInto(ops []Op, results []bool) {
	if len(ops) == 0 {
		return
	}
	if cap(l.idx) < len(ops) {
		l.idx = make([]int, len(ops)) //pimvet:allow allocfree: amortized grow to the largest batch; steady state reuses
		l.tmp = make([]int, len(ops)) //pimvet:allow allocfree: amortized grow to the largest batch; steady state reuses
	}
	idx := l.idx[:len(ops)]
	for i := range idx {
		idx[i] = i
	}
	stableSortByKey(ops, idx, l.tmp[:len(ops)])

	pred := l.head
	for _, i := range idx {
		op := ops[i]
		pred = l.find(pred, op.Key)
		switch op.Kind {
		case Contains:
			results[i] = pred.next != nil && pred.next.key == op.Key
		case Add:
			if pred.next != nil && pred.next.key == op.Key {
				results[i] = false
			} else {
				pred.next = l.newNode(op.Key, pred.next)
				l.size++
				results[i] = true
			}
		case Remove:
			if pred.next != nil && pred.next.key == op.Key {
				gone := pred.next
				pred.next = gone.next
				l.freeNode(gone)
				l.size--
				results[i] = true
			} else {
				results[i] = false
			}
		}
	}
}

// PopMinKey removes and returns the smallest key (ok=false on empty).
func (l *List) PopMinKey() (int64, bool) {
	n := l.head.next
	if n == nil {
		return 0, false
	}
	l.steps++
	l.head.next = n.next
	k := n.key
	l.freeNode(n)
	l.size--
	return k, true
}

// PopMaxKey removes and returns the largest key (ok=false on empty).
func (l *List) PopMaxKey() (int64, bool) {
	if l.head.next == nil {
		return 0, false
	}
	pred := l.head
	l.steps++
	for pred.next.next != nil {
		pred = pred.next
		l.steps++
	}
	gone := pred.next
	pred.next = nil
	k := gone.key
	l.freeNode(gone)
	l.size--
	return k, true
}

// ApplyOrderedBatchInto executes a batch that may mix point ops with
// the ordered kinds, in one shared traversal, appending scan keys to
// arena and returning the (possibly grown) arena. len(res) must equal
// len(ops). The serialization it answers for is: all PopMin/PopMax in
// batch order first, then the remaining ops in ascending key order
// (ties in batch order) — legal for a concurrent batch, where any
// serialization is linearizable. The keyed ops share one finger walk
// exactly like ApplyBatchInto: a scan's descent to lo rides the
// finger, and only its own span walk is private.
//
// A scan with Hi ≤ Key is a legal empty scan (complete, cursor = Hi).
// When a scan hits its limit, the cursor is the first unreturned key,
// so paginating clients resume exactly there.
//
//pimvet:allocfree //pimvet:nonblocking
func (l *List) ApplyOrderedBatchInto(ops []Op, res []OpResult, arena []int64) []int64 {
	if len(ops) == 0 {
		return arena
	}
	// Extremum pops go first: they touch the ends of the list, not a
	// key position, so serving them before the sweep keeps the finger
	// invariant (monotone key order) intact.
	keyed := 0
	for i := range ops {
		switch ops[i].Kind {
		case PopMin:
			v, ok := l.PopMinKey()
			res[i] = OpResult{OK: ok, Value: v}
		case PopMax:
			v, ok := l.PopMaxKey()
			res[i] = OpResult{OK: ok, Value: v}
		default:
			keyed++
		}
	}
	if keyed == 0 {
		return arena
	}
	if cap(l.idx) < len(ops) {
		l.idx = make([]int, len(ops)) //pimvet:allow allocfree: amortized grow to the largest batch; steady state reuses
		l.tmp = make([]int, len(ops)) //pimvet:allow allocfree: amortized grow to the largest batch; steady state reuses
	}
	idx := l.idx[:keyed]
	j := 0
	for i := range ops {
		if ops[i].Kind != PopMin && ops[i].Kind != PopMax {
			idx[j] = i
			j++
		}
	}
	stableSortByKey(ops, idx, l.tmp[:keyed])

	pred := l.head
	for _, i := range idx {
		op := ops[i]
		pred = l.find(pred, op.Key)
		switch op.Kind {
		case Contains:
			res[i] = OpResult{OK: pred.next != nil && pred.next.key == op.Key}
		case Add:
			if pred.next != nil && pred.next.key == op.Key {
				res[i] = OpResult{OK: false}
			} else {
				pred.next = l.newNode(op.Key, pred.next)
				l.size++
				res[i] = OpResult{OK: true}
			}
		case Remove:
			if pred.next != nil && pred.next.key == op.Key {
				gone := pred.next
				pred.next = gone.next
				l.freeNode(gone)
				l.size--
				res[i] = OpResult{OK: true}
			} else {
				res[i] = OpResult{OK: false}
			}
		case Pred:
			if pred != l.head {
				res[i] = OpResult{OK: true, Value: pred.key}
			} else {
				res[i] = OpResult{OK: false}
			}
		case Succ:
			n := pred.next
			if n != nil && n.key == op.Key {
				n = n.next
				l.steps++
			}
			if n != nil {
				res[i] = OpResult{OK: true, Value: n.key}
			} else {
				res[i] = OpResult{OK: false}
			}
		case RangeScan:
			start := len(arena)
			cursor := op.Hi
			count := 0
			for cur := pred.next; cur != nil && cur.key < op.Hi; cur = cur.next {
				if op.Limit > 0 && count == op.Limit {
					cursor = cur.key
					break
				}
				arena = append(arena, cur.key) //pimvet:allow allocfree: amortized arena grow to the largest scan pass; steady state reuses
				count++
				l.steps++
			}
			res[i] = OpResult{OK: true, Value: cursor, Start: start, N: count, Scan: true}
		}
	}
	return arena
}

// stableSortByKey sorts idx so that ops[idx[i]].Key ascends, preserving
// batch order between equal keys: bottom-up merge sort into tmp,
// taking from the left run on ties. Equivalent ordering to
// sort.SliceStable with a key comparison, without boxing the slice
// into an interface or allocating the comparison closure per call.
func stableSortByKey(ops []Op, idx, tmp []int) {
	n := len(idx)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			copy(tmp[lo:hi], idx[lo:hi])
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				switch {
				case i >= mid:
					idx[k] = tmp[j]
					j++
				case j >= hi:
					idx[k] = tmp[i]
					i++
				case ops[tmp[j]].Key < ops[tmp[i]].Key:
					idx[k] = tmp[j]
					j++
				default:
					idx[k] = tmp[i]
					i++
				}
			}
		}
	}
}

// Keys returns the keys in ascending order (for tests).
func (l *List) Keys() []int64 {
	keys := make([]int64, 0, l.size)
	for n := l.head.next; n != nil; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}
