package seqlist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	l := New()
	if l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if l.ContainsKey(5) {
		t.Error("empty list contains 5")
	}
	if !l.AddKey(5) || !l.AddKey(3) || !l.AddKey(8) {
		t.Error("fresh adds should succeed")
	}
	if l.AddKey(5) {
		t.Error("duplicate add should fail")
	}
	if !l.ContainsKey(3) || !l.ContainsKey(5) || !l.ContainsKey(8) {
		t.Error("added keys missing")
	}
	if l.ContainsKey(4) {
		t.Error("absent key found")
	}
	if !l.RemoveKey(5) {
		t.Error("remove of present key failed")
	}
	if l.RemoveKey(5) {
		t.Error("double remove succeeded")
	}
	if got := l.Keys(); len(got) != 2 || got[0] != 3 || got[1] != 8 {
		t.Errorf("keys = %v, want [3 8]", got)
	}
	if l.Len() != 2 {
		t.Errorf("len = %d, want 2", l.Len())
	}
}

func TestApplyDispatch(t *testing.T) {
	l := New()
	if !l.Apply(Op{Kind: Add, Key: 1}) {
		t.Error("apply add failed")
	}
	if !l.Apply(Op{Kind: Contains, Key: 1}) {
		t.Error("apply contains failed")
	}
	if !l.Apply(Op{Kind: Remove, Key: 1}) {
		t.Error("apply remove failed")
	}
	if l.Apply(Op{Kind: OpKind(99), Key: 1}) {
		t.Error("unknown op should return false")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		Contains: "contains", Add: "add", Remove: "remove", OpKind(9): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestAgainstMap checks list semantics against map semantics on random
// operation streams.
func TestAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		l := New()
		ref := make(map[int64]bool)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			k := rng.Int63n(50)
			switch rng.Intn(3) {
			case 0:
				if l.AddKey(k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if l.RemoveKey(k) != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if l.ContainsKey(k) != ref[k] {
					return false
				}
			}
		}
		return l.Len() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBatchEquivalence: ApplyBatch must return exactly what applying
// the ops one at a time in ascending-key (stable) order returns, and
// leave the same final contents.
func TestBatchEquivalence(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Start both lists with identical contents.
		batched, serial := New(), New()
		for i := 0; i < 30; i++ {
			k := rng.Int63n(40)
			batched.AddKey(k)
			serial.AddKey(k)
		}
		ops := make([]Op, int(nOps%24)+1)
		for i := range ops {
			ops[i] = Op{Kind: OpKind(rng.Intn(3)), Key: rng.Int63n(40)}
		}

		gotResults := batched.ApplyBatch(ops)

		idx := make([]int, len(ops))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return ops[idx[a]].Key < ops[idx[b]].Key })
		wantResults := make([]bool, len(ops))
		for _, i := range idx {
			wantResults[i] = serial.Apply(ops[i])
		}

		for i := range ops {
			if gotResults[i] != wantResults[i] {
				return false
			}
		}
		bk, sk := batched.Keys(), serial.Keys()
		if len(bk) != len(sk) {
			return false
		}
		for i := range bk {
			if bk[i] != sk[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	l := New()
	if got := l.ApplyBatch(nil); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}

// TestBatchSingleTraversal: a batch's traversal cost is bounded by the
// position of its largest key, not the sum of positions — the whole
// point of the combining optimization.
func TestBatchSingleTraversal(t *testing.T) {
	l := New()
	for k := int64(0); k < 1000; k++ {
		l.AddKey(k)
	}
	l.ResetSteps()
	ops := []Op{
		{Kind: Contains, Key: 900}, {Kind: Contains, Key: 100}, {Kind: Contains, Key: 500},
		{Kind: Contains, Key: 901}, {Kind: Contains, Key: 101}, {Kind: Contains, Key: 501},
	}
	l.ApplyBatch(ops)
	batchSteps := l.Steps()

	l.ResetSteps()
	for _, op := range ops {
		l.Apply(op)
	}
	serialSteps := l.Steps()

	// Serial: ~2900+ visits. Batch: ~905 visits.
	if batchSteps >= serialSteps/2 {
		t.Errorf("batch took %d steps, serial %d; combining should be far cheaper", batchSteps, serialSteps)
	}
	if batchSteps > 1000 {
		t.Errorf("batch steps = %d, want ≤ list length (single traversal)", batchSteps)
	}
}

// TestBatchSameKeyOrder: same-key ops keep their batch order.
func TestBatchSameKeyOrder(t *testing.T) {
	l := New()
	res := l.ApplyBatch([]Op{{Kind: Add, Key: 7}, {Kind: Remove, Key: 7}, {Kind: Add, Key: 7}, {Kind: Contains, Key: 7}})
	want := []bool{true, true, true, true}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("results = %v, want %v", res, want)
		}
	}
	if !l.ContainsKey(7) {
		t.Error("7 should survive add-remove-add")
	}
}
