package seqlist_test

import (
	"testing"

	"pimds/internal/cds/seqlist"
	"pimds/internal/testenv"
)

// TestApplyBatchIntoSteadyStateAllocs pins ApplyBatchInto's
// //pimvet:allocfree annotation: once the sort scratch has grown to the
// batch size and the free list holds recycled nodes, a size-stable
// batch (every Remove paired with an Add) must not touch the heap.
func TestApplyBatchIntoSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	l := seqlist.New()
	for k := int64(0); k < 128; k += 2 {
		l.AddKey(k)
	}
	// Same-key Remove→Add pairs keep their batch order through the
	// stable sort, so every insertion reuses the node the removal just
	// freed.
	var ops []seqlist.Op
	for k := int64(0); k < 128; k += 2 {
		ops = append(ops,
			seqlist.Op{Kind: seqlist.Remove, Key: k},
			seqlist.Op{Kind: seqlist.Add, Key: k},
		)
	}
	results := make([]bool, len(ops))
	l.ApplyBatchInto(ops, results) // warm the sort scratch
	avg := testing.AllocsPerRun(100, func() {
		l.ApplyBatchInto(ops, results)
	})
	if avg != 0 {
		t.Errorf("ApplyBatchInto steady state: %.1f allocs/op, want 0", avg)
	}
	for i, ok := range results {
		if !ok {
			t.Fatalf("op %d (%+v) unexpectedly failed", i, ops[i])
		}
	}
	if got := l.Len(); got != 64 {
		t.Fatalf("list length %d after steady-state batches, want 64", got)
	}
}
