package seqlist

import (
	"math/rand"
	"sort"
	"testing"
)

func fill(t *testing.T, keys ...int64) *List {
	t.Helper()
	l := New()
	for _, k := range keys {
		if !l.AddKey(k) {
			t.Fatalf("duplicate key %d in fixture", k)
		}
	}
	return l
}

func applyOne(l *List, op Op) (OpResult, []int64) {
	res := make([]OpResult, 1)
	arena := l.ApplyOrderedBatchInto([]Op{op}, res, nil)
	r := res[0]
	if !r.Scan {
		return r, nil
	}
	return r, arena[r.Start : r.Start+r.N]
}

func TestRangeScanEdgeCases(t *testing.T) {
	l := fill(t, 10, 20, 30, 40, 50)

	// Plain scan over the middle.
	r, keys := applyOne(l, Op{Kind: RangeScan, Key: 15, Hi: 45})
	if want := []int64{20, 30, 40}; !int64sEq(keys, want) {
		t.Errorf("scan [15,45): got %v, want %v", keys, want)
	}
	if r.Value != 45 {
		t.Errorf("complete scan cursor: got %d, want 45", r.Value)
	}

	// Bounds are half-open: lo inclusive, hi exclusive.
	_, keys = applyOne(l, Op{Kind: RangeScan, Key: 20, Hi: 40})
	if want := []int64{20, 30}; !int64sEq(keys, want) {
		t.Errorf("scan [20,40): got %v, want %v", keys, want)
	}

	// Empty interval: lo == hi.
	r, keys = applyOne(l, Op{Kind: RangeScan, Key: 30, Hi: 30})
	if len(keys) != 0 || r.Value != 30 || !r.Scan {
		t.Errorf("empty scan: keys %v, cursor %d, scan %v", keys, r.Value, r.Scan)
	}

	// Inverted interval: lo > hi is a legal empty scan, complete.
	r, keys = applyOne(l, Op{Kind: RangeScan, Key: 50, Hi: 10})
	if len(keys) != 0 || r.Value != 10 {
		t.Errorf("inverted scan: keys %v, cursor %d", keys, r.Value)
	}

	// Interval with no matching keys inside the population.
	r, keys = applyOne(l, Op{Kind: RangeScan, Key: 21, Hi: 29})
	if len(keys) != 0 || r.Value != 29 {
		t.Errorf("hole scan: keys %v, cursor %d", keys, r.Value)
	}

	// Limit 0 means unlimited.
	_, keys = applyOne(l, Op{Kind: RangeScan, Key: 0, Hi: 100, Limit: 0})
	if len(keys) != 5 {
		t.Errorf("limit 0: got %d keys, want 5", len(keys))
	}

	// Limit truncates and the cursor points at the first unreturned key.
	r, keys = applyOne(l, Op{Kind: RangeScan, Key: 0, Hi: 100, Limit: 2})
	if want := []int64{10, 20}; !int64sEq(keys, want) {
		t.Errorf("limited scan: got %v, want %v", keys, want)
	}
	if r.Value != 30 {
		t.Errorf("limited scan cursor: got %d, want 30", r.Value)
	}
	// Resuming from the cursor completes the range with no gaps.
	r, keys = applyOne(l, Op{Kind: RangeScan, Key: r.Value, Hi: 100, Limit: 100})
	if want := []int64{30, 40, 50}; !int64sEq(keys, want) {
		t.Errorf("resumed scan: got %v, want %v", keys, want)
	}
	if r.Value != 100 {
		t.Errorf("resumed scan cursor: got %d, want 100", r.Value)
	}

	// Scanning an empty list.
	empty := New()
	r, keys = applyOne(empty, Op{Kind: RangeScan, Key: 0, Hi: 100})
	if len(keys) != 0 || r.Value != 100 {
		t.Errorf("scan of empty list: keys %v, cursor %d", keys, r.Value)
	}
}

func TestPredSuccEdgeCases(t *testing.T) {
	l := fill(t, 10, 20, 30)
	for _, tc := range []struct {
		kind OpKind
		key  int64
		ok   bool
		val  int64
	}{
		{Pred, 25, true, 20},
		{Pred, 20, true, 10}, // strict: pred of a present key is its left neighbor
		{Pred, 10, false, 0},
		{Pred, 5, false, 0},
		{Pred, 1000, true, 30},
		{Succ, 15, true, 20},
		{Succ, 20, true, 30}, // strict
		{Succ, 30, false, 0},
		{Succ, -5, true, 10},
	} {
		r, _ := applyOne(l, Op{Kind: tc.kind, Key: tc.key})
		if r.OK != tc.ok || (tc.ok && r.Value != tc.val) {
			t.Errorf("%v(%d): got ok=%v val=%d, want ok=%v val=%d",
				tc.kind, tc.key, r.OK, r.Value, tc.ok, tc.val)
		}
	}
}

func TestPopMinPopMaxEdgeCases(t *testing.T) {
	l := fill(t, 7, 3, 9)
	if v, ok := l.PopMinKey(); !ok || v != 3 {
		t.Fatalf("PopMin: got %d,%v", v, ok)
	}
	if v, ok := l.PopMaxKey(); !ok || v != 9 {
		t.Fatalf("PopMax: got %d,%v", v, ok)
	}
	if v, ok := l.PopMinKey(); !ok || v != 7 {
		t.Fatalf("PopMin: got %d,%v", v, ok)
	}
	// Pops on an empty structure fail cleanly.
	if _, ok := l.PopMinKey(); ok {
		t.Error("PopMin on empty list reported ok")
	}
	if _, ok := l.PopMaxKey(); ok {
		t.Error("PopMax on empty list reported ok")
	}
	if l.Len() != 0 {
		t.Errorf("len after draining: %d", l.Len())
	}
	// And through the batch path too.
	r, _ := applyOne(l, Op{Kind: PopMin})
	if r.OK {
		t.Error("batched PopMin on empty list reported ok")
	}
}

// TestOrderedBatchMatchesSerialExecution drives random mixed batches
// through ApplyOrderedBatchInto and through one-op-at-a-time execution
// in the serialization the batch documents (pops in batch order first,
// then remaining ops sorted by key, ties in batch order); the results
// and final contents must agree exactly.
func TestOrderedBatchMatchesSerialExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	batched, serial := New(), New()
	for i := int64(0); i < 64; i += 2 {
		batched.AddKey(i)
		serial.AddKey(i)
	}
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(12)
		ops := make([]Op, n)
		for i := range ops {
			kind := OpKind(rng.Intn(8))
			op := Op{Kind: kind, Key: int64(rng.Intn(80))}
			if kind == RangeScan {
				op.Hi = op.Key + int64(rng.Intn(40))
				op.Limit = rng.Intn(6) // 0 = unlimited
			}
			ops[i] = op
		}
		res := make([]OpResult, n)
		arena := batched.ApplyOrderedBatchInto(ops, res, nil)

		// Serial reference: same serialization, one op at a time.
		order := make([]int, 0, n)
		for i, op := range ops {
			if op.Kind == PopMin || op.Kind == PopMax {
				order = append(order, i)
			}
		}
		keyed := make([]int, 0, n)
		for i, op := range ops {
			if op.Kind != PopMin && op.Kind != PopMax {
				keyed = append(keyed, i)
			}
		}
		sort.SliceStable(keyed, func(a, b int) bool { return ops[keyed[a]].Key < ops[keyed[b]].Key })
		order = append(order, keyed...)

		for _, i := range order {
			want := make([]OpResult, 1)
			wantArena := serial.ApplyOrderedBatchInto(ops[i:i+1], want, nil)
			got, w := res[i], want[0]
			if got.OK != w.OK || got.Value != w.Value || got.N != w.N || got.Scan != w.Scan {
				t.Fatalf("round %d op %d (%+v): batch %+v, serial %+v", round, i, ops[i], got, w)
			}
			if got.Scan && !int64sEq(arena[got.Start:got.Start+got.N], wantArena) {
				t.Fatalf("round %d op %d scan keys: batch %v, serial %v",
					round, i, arena[got.Start:got.Start+got.N], wantArena)
			}
		}
		if !int64sEq(batched.Keys(), serial.Keys()) {
			t.Fatalf("round %d: contents diverged:\nbatch:  %v\nserial: %v",
				round, batched.Keys(), serial.Keys())
		}
	}
}

func int64sEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
