package faaqueue

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialFIFO(t *testing.T) {
	cdstest.QueueSequential(t, New(), 5000)
}

func TestConcurrentConservation(t *testing.T) {
	q := New()
	cdstest.QueueStress(t,
		func() cdstest.Queue { return q },
		4, 4, 5000)
}

func TestCrossesSegmentBoundaries(t *testing.T) {
	q := New()
	const n = 3 * segSize
	for i := int64(0); i < n; i++ {
		q.Enqueue(i)
	}
	if q.Len() != n {
		t.Fatalf("len = %d, want %d", q.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue #%d = (%d,%v)", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Errorf("len = %d after drain, want 0", q.Len())
	}
}

func TestNegativeValuePanics(t *testing.T) {
	q := New()
	defer func() {
		if recover() == nil {
			t.Error("negative enqueue should panic")
		}
	}()
	q.Enqueue(-1)
}

func TestFindSegmentAdvancesHint(t *testing.T) {
	q := New()
	s := q.findSegment(&q.tailSeg, 5)
	if s.id != 5 {
		t.Fatalf("segment id = %d, want 5", s.id)
	}
	if q.tailSeg.Load().id != 5 {
		t.Errorf("hint id = %d, want 5", q.tailSeg.Load().id)
	}
}

// TestFindSegmentStaleTicket is the regression test for the hint
// overtaking a slow thread's ticket: a lookup older than the hint must
// fall back to the root and return the *correct* segment, not the
// hint's.
func TestFindSegmentStaleTicket(t *testing.T) {
	q := New()
	if s := q.findSegment(&q.tailSeg, 7); s.id != 7 {
		t.Fatalf("advance: id = %d, want 7", s.id)
	}
	// The hint now points at segment 7; a stale ticket in segment 2
	// must still resolve correctly.
	if s := q.findSegment(&q.tailSeg, 2); s.id != 2 {
		t.Fatalf("stale lookup: id = %d, want 2", s.id)
	}
	// And the hint must not have moved backwards.
	if q.tailSeg.Load().id != 7 {
		t.Errorf("hint id = %d, want 7", q.tailSeg.Load().id)
	}
}
