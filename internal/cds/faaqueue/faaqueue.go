// Package faaqueue implements a fetch-and-add-based FIFO queue in the
// style of Morrison and Afek's LCRQ (PPoPP 2013), the paper's fastest
// CPU-side queue baseline ("F&A queue [41]").
//
// Substitution note (see DESIGN.md): LCRQ proper needs a double-width
// CAS, which Go does not expose. This queue keeps LCRQ's defining
// performance property — each operation performs exactly one F&A on a
// shared head or tail counter, so p concurrent operations serialize on
// that counter — which is precisely what the paper's model charges
// (throughput ≤ 1/Latomic). Tickets index into an unbounded array of
// cells realized as a linked list of fixed-size segments.
package faaqueue

import (
	"sync/atomic"
)

// segSize is the number of cells per segment; a power of two so the
// ticket→cell mapping is a shift and mask.
const segSize = 1 << 10

// Cell states: a cell starts empty; an enqueuer CASes empty→value; a
// dequeuer that finds its cell still empty after a bounded wait CASes
// empty→poisoned, forcing the (slow) enqueuer to retry with a fresh
// ticket.
const (
	cellEmpty    uint64 = 0
	cellPoisoned uint64 = 1
	valueOffset  uint64 = 2 // stored value = v + valueOffset
)

type segment struct {
	id    uint64 // segment index: covers tickets [id*segSize, (id+1)*segSize)
	cells [segSize]atomic.Uint64
	next  atomic.Pointer[segment]
}

// Queue is a FIFO queue of int64 values (v must satisfy v+2 ≥ 2 when
// encoded, i.e. v ≥ 0; see Enqueue). Create one with New. All methods
// are safe for concurrent use.
type Queue struct {
	head atomic.Uint64 // next ticket to dequeue
	tail atomic.Uint64 // next ticket to enqueue

	// root is the immutable first segment: the fallback start for
	// lookups whose ticket is older than a hint.
	root *segment

	// headSeg/tailSeg are hints that usually point at (or before) the
	// segment containing the respective ticket; they only move
	// forward. A hint can overtake a slow thread's ticket — lookups
	// must fall back to root in that case, never trust the hint
	// blindly (a hint-ahead-of-ticket lookup once caused a livelock:
	// the thread read a poisoned cell in a too-new segment forever).
	headSeg atomic.Pointer[segment]
	tailSeg atomic.Pointer[segment]
}

// New returns an empty queue.
func New() *Queue {
	q := &Queue{root: &segment{}}
	q.headSeg.Store(q.root)
	q.tailSeg.Store(q.root)
	return q
}

// findSegment walks (and extends) the segment list to the segment with
// the given id, starting from hint when it has not yet passed id and
// from the root otherwise, then advances the hint.
func (q *Queue) findSegment(hint *atomic.Pointer[segment], id uint64) *segment {
	s := hint.Load()
	if s.id > id {
		s = q.root
	}
	for s.id < id {
		next := s.next.Load()
		if next == nil {
			next = &segment{id: s.id + 1}
			if !s.next.CompareAndSwap(nil, next) {
				next = s.next.Load()
			}
		}
		s = next
	}
	// Advance the hint; a failed CAS just means someone else advanced
	// it further.
	if h := hint.Load(); h.id < s.id {
		hint.CompareAndSwap(h, s)
	}
	return s
}

// Enqueue appends v (which must be non-negative; the two low encodings
// are reserved for cell states) to the queue.
func (q *Queue) Enqueue(v int64) {
	if v < 0 {
		panic("faaqueue: negative values are reserved")
	}
	enc := uint64(v) + valueOffset
	for {
		t := q.tail.Add(1) - 1 // F&A: the single contended atomic
		s := q.findSegment(&q.tailSeg, t/segSize)
		cell := &s.cells[t%segSize]
		if cell.CompareAndSwap(cellEmpty, enc) {
			return
		}
		// Cell was poisoned by an impatient dequeuer; retry with a
		// fresh ticket.
	}
}

// maxSpin bounds how long a dequeuer waits for a slow enqueuer before
// poisoning the cell.
const maxSpin = 128

// Dequeue removes and returns the oldest value; ok is false if the
// queue was observed empty.
func (q *Queue) Dequeue() (v int64, ok bool) {
	for {
		// Standard emptiness check: if head has caught up with
		// tail, the queue was empty at the moment of the loads.
		if q.head.Load() >= q.tail.Load() {
			return 0, false
		}
		h := q.head.Add(1) - 1 // F&A: the single contended atomic
		s := q.findSegment(&q.headSeg, h/segSize)
		cell := &s.cells[h%segSize]
		for spin := 0; ; spin++ {
			val := cell.Load()
			if val >= valueOffset {
				return int64(val - valueOffset), true
			}
			if val == cellPoisoned {
				// Terminal: no value will ever land here. Should be
				// unreachable (only this ticket's owner poisons this
				// cell), but retrying beats spinning forever if the
				// invariant is ever broken.
				break
			}
			if spin >= maxSpin {
				if cell.CompareAndSwap(cellEmpty, cellPoisoned) {
					// The matching enqueuer will retry; so do we.
					break
				}
				// CAS failed ⇒ the value just arrived.
			}
		}
	}
}

// Len returns an instantaneous estimate of the queue length.
func (q *Queue) Len() int {
	h, t := q.head.Load(), q.tail.Load()
	if t <= h {
		return 0
	}
	return int(t - h)
}
