package fcqueue

import (
	"testing"

	"pimds/internal/cds/cdstest"
)

func TestSequentialFIFO(t *testing.T) {
	q := New()
	cdstest.QueueSequential(t, q.NewHandle(), 1000)
}

func TestConcurrentConservation(t *testing.T) {
	q := New()
	cdstest.QueueStress(t,
		func() cdstest.Queue { return q.NewHandle() },
		4, 4, 5000)
}

func TestInterleavedEnqDeq(t *testing.T) {
	q := New()
	h := q.NewHandle()
	for i := int64(0); i < 100; i++ {
		h.Enqueue(i)
		if i%2 == 1 {
			v, ok := h.Dequeue()
			if !ok || v != i/2 {
				t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i/2)
			}
		}
	}
	if q.Len() != 50 {
		t.Errorf("len = %d, want 50", q.Len())
	}
	drained := q.Drain()
	if len(drained) != 50 {
		t.Fatalf("drained %d values, want 50", len(drained))
	}
	for i, v := range drained {
		if v != int64(50+i) {
			t.Fatalf("drain[%d] = %d, want %d", i, v, 50+i)
		}
	}
}

func TestEmptyDequeue(t *testing.T) {
	q := New()
	h := q.NewHandle()
	if _, ok := h.Dequeue(); ok {
		t.Error("dequeue on empty queue reported ok")
	}
	h.Enqueue(42)
	if v, ok := h.Dequeue(); !ok || v != 42 {
		t.Errorf("got (%d,%v), want (42,true)", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Error("dequeue after drain reported ok")
	}
}
