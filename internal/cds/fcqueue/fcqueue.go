// Package fcqueue implements the flat-combining FIFO queue the paper
// compares against in Section 5 (based on Hendler et al. [25], with the
// paper's modification): two combiner locks, one for enqueues and one
// for dequeues, so an enqueue combiner and a dequeue combiner run in
// parallel, like the two-lock queue of Michael and Scott.
//
// The queue is a linked list with a dummy head. The enqueue side owns
// the tail pointer, the dequeue side owns the head pointer; the only
// field both sides touch is a node's next pointer (when the queue is
// near-empty), which is atomic.
package fcqueue

import (
	"sync/atomic"

	"pimds/internal/cds/flatcombining"
	"pimds/internal/obs"
)

type node struct {
	val  int64
	next atomic.Pointer[node]
}

// Queue is a flat-combining FIFO queue of int64 values. Create one with
// New; each goroutine needs its own Handle.
type Queue struct {
	head *node // owned by the dequeue combiner; dummy node
	tail *node // owned by the enqueue combiner

	enqFC *flatcombining.FC
	deqFC *flatcombining.FC
}

// deqResult is the result of one dequeue.
type deqResult struct {
	val int64
	ok  bool
}

// New returns an empty queue.
func New() *Queue {
	dummy := &node{}
	q := &Queue{head: dummy, tail: dummy}
	q.enqFC = flatcombining.New(q.applyEnqs)
	q.deqFC = flatcombining.New(q.applyDeqs)
	return q
}

func (q *Queue) applyEnqs(batch []*flatcombining.Record) {
	for _, rec := range batch {
		n := &node{val: rec.Op().(int64)}
		q.tail.next.Store(n)
		q.tail = n
		rec.Finish(true)
	}
}

func (q *Queue) applyDeqs(batch []*flatcombining.Record) {
	for _, rec := range batch {
		next := q.head.next.Load()
		if next == nil {
			rec.Finish(deqResult{})
			continue
		}
		q.head = next
		rec.Finish(deqResult{val: next.val, ok: true})
	}
}

// Instrument exports combining metrics for both combiner locks into
// reg, under the "fcqueue/enq" and "fcqueue/deq" prefixes.
func (q *Queue) Instrument(reg *obs.Registry) {
	q.enqFC.Instrument(reg, "fcqueue/enq")
	q.deqFC.Instrument(reg, "fcqueue/deq")
}

// Handle is a per-goroutine access handle (one publication record per
// side).
type Handle struct {
	q      *Queue
	enqRec *flatcombining.Record
	deqRec *flatcombining.Record
}

// NewHandle registers a goroutine with the queue.
func (q *Queue) NewHandle() *Handle {
	return &Handle{q: q, enqRec: q.enqFC.NewRecord(), deqRec: q.deqFC.NewRecord()}
}

// Enqueue appends v to the queue.
func (h *Handle) Enqueue(v int64) {
	h.q.enqFC.Do(h.enqRec, v)
}

// Dequeue removes and returns the oldest value; ok is false if the
// queue was observed empty.
func (h *Handle) Dequeue() (v int64, ok bool) {
	r := h.q.deqFC.Do(h.deqRec, nil).(deqResult)
	return r.val, r.ok
}

// Len returns the queue length at quiescence (tests).
func (q *Queue) Len() int {
	n := 0
	for cur := q.head.next.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}

// Drain removes all values at quiescence and returns them in FIFO
// order (tests).
func (q *Queue) Drain() []int64 {
	var vals []int64
	for cur := q.head.next.Load(); cur != nil; cur = cur.next.Load() {
		vals = append(vals, cur.val)
		q.head = cur
	}
	return vals
}
