package pimhash

import (
	"math/rand"
	"testing"

	"pimds/internal/model"
	"pimds/internal/sim"
)

func testConfig() sim.Config {
	return sim.ConfigFromParams(model.DefaultParams())
}

// TestSequentialEquivalence: one client's ops must match map semantics.
func TestSequentialEquivalence(t *testing.T) {
	e := sim.NewEngine(testConfig())
	m := New(e, 4)

	rng := rand.New(rand.NewSource(5))
	var issued []Op
	cl := m.NewClient(func(uint64) Op {
		var op Op
		k := rng.Int63n(128)
		switch rng.Intn(3) {
		case 0:
			op = Op{Kind: MsgGet, Key: k}
		case 1:
			op = Op{Kind: MsgPut, Key: k, Val: rng.Int63n(1000)}
		default:
			op = Op{Kind: MsgDel, Key: k}
		}
		issued = append(issued, op)
		return op
	})
	cl.Start()
	e.RunUntil(2 * sim.Millisecond)

	ref := make(map[int64]int64)
	for i := uint64(0); i < cl.Completed; i++ {
		op := issued[i]
		switch op.Kind {
		case MsgPut:
			ref[op.Key] = op.Val
		case MsgDel:
			delete(ref, op.Key)
		}
	}
	if got, want := m.TotalLen(), len(ref); got != want && got != want+1 && got != want-1 {
		// ±1 for the in-flight op at the horizon.
		t.Errorf("TotalLen = %d, want ≈ %d", got, want)
	}
	if cl.Completed < 1000 {
		t.Errorf("only %d ops completed", cl.Completed)
	}
}

func TestPreloadAndRouting(t *testing.T) {
	e := sim.NewEngine(testConfig())
	m := New(e, 8)
	kv := map[int64]int64{}
	for k := int64(0); k < 1000; k++ {
		kv[k] = k * 3
	}
	m.Preload(kv)
	if m.TotalLen() != 1000 {
		t.Fatalf("TotalLen = %d, want 1000", m.TotalLen())
	}
	// Hash routing should spread keys across all partitions.
	for i, p := range m.parts {
		if p.table.Len() == 0 {
			t.Errorf("partition %d empty", i)
		}
		if p.table.Len() > 1000/8*2 {
			t.Errorf("partition %d has %d keys; hash badly skewed", i, p.table.Len())
		}
	}
	if m.Partitions() != 8 || len(m.Cores()) != 8 {
		t.Error("partition accessors broken")
	}
}

// TestScalesWithVaults: k vaults serve ≈ k× the throughput under
// saturation.
func TestScalesWithVaults(t *testing.T) {
	run := func(k int) float64 {
		e := sim.NewEngine(testConfig())
		m := New(e, k)
		kv := map[int64]int64{}
		for kk := int64(0); kk < 4096; kk++ {
			kv[kk] = kk
		}
		m.Preload(kv)
		var clients []*sim.Client
		for i := 0; i < 8*k; i++ {
			rng := rand.New(rand.NewSource(int64(100 + i)))
			clients = append(clients, m.NewClient(func(uint64) Op {
				k := rng.Int63n(4096)
				if rng.Intn(2) == 0 {
					return Op{Kind: MsgGet, Key: k}
				}
				return Op{Kind: MsgPut, Key: k, Val: 1}
			}))
		}
		meter := &sim.Meter{Engine: e, Clients: clients}
		_, ops := meter.Run(200*sim.Microsecond, 2*sim.Millisecond)
		return ops
	}
	t1, t4 := run(1), run(4)
	if ratio := t4 / t1; ratio < 3.3 || ratio > 4.7 {
		t.Errorf("4-vault speedup = %.2f, want ≈ 4", ratio)
	}
}

// TestBeatsShardedCPUBaseline: at equal saturation the PIM hash map
// should beat the lock-sharded CPU map whenever k is reasonably sized,
// since ρ·Lpim + pipelined messaging < ρ·Lcpu + lock serialization.
func TestBeatsShardedCPUBaseline(t *testing.T) {
	const p = 16
	const k = 8
	e1 := sim.NewEngine(testConfig())
	m := New(e1, k)
	kv := map[int64]int64{}
	for kk := int64(0); kk < 4096; kk++ {
		kv[kk] = kk
	}
	m.Preload(kv)
	var clients []*sim.Client
	for i := 0; i < p; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		clients = append(clients, m.NewClient(func(uint64) Op {
			return Op{Kind: MsgGet, Key: rng.Int63n(4096)}
		}))
	}
	meter := &sim.Meter{Engine: e1, Clients: clients}
	_, pimOps := meter.Run(200*sim.Microsecond, 2*sim.Millisecond)

	e2 := sim.NewEngine(testConfig())
	gens := make([]*rand.Rand, p)
	for i := range gens {
		gens[i] = rand.New(rand.NewSource(int64(50 + i)))
	}
	base := NewSimShardedCPU(e2, p, k, func(cpu int, _ uint64) Op {
		return Op{Kind: MsgGet, Key: gens[cpu].Int63n(4096)}
	})
	base.Preload(kv)
	_, cpuOps := sim.Measure(e2, func() {}, base.Ops(), 200*sim.Microsecond, 2*sim.Millisecond)

	if pimOps <= cpuOps {
		t.Errorf("PIM hash map (%.3g) should beat sharded CPU map (%.3g) at k=%d, p=%d",
			pimOps, cpuOps, k, p)
	}
}

func TestBadConstructionPanics(t *testing.T) {
	e := sim.NewEngine(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	New(e, 0)
}
