package pimhash

import (
	"fmt"

	"pimds/internal/obs"
)

// KindName maps the hash-map protocol's message kinds to symbolic names
// for metric paths and trace events (install with
// sim.Engine.SetKindNamer).
func KindName(kind int) string {
	switch kind {
	case MsgGet:
		return "Get"
	case MsgPut:
		return "Put"
	case MsgDel:
		return "Del"
	case MsgResp:
		return "Resp"
	}
	return fmt.Sprintf("kind_%02d", kind)
}

// instrument wires the map into the engine's metrics registry (nil
// registry = no-op hooks): served-batch sizes record per pass, and a
// snapshot-time collector exports per-partition load so hash-routing
// imbalance (max/mean partition size) is visible next to the
// skip-list's directory-routed equivalent.
func (m *Map) instrument() {
	reg := m.eng.Metrics()
	m.batchSize = reg.Histogram("pimhash/batch_size")
	reg.AddCollector(func(r *obs.Registry) {
		total, max := 0, 0
		for i, p := range m.parts {
			n := p.table.Len()
			total += n
			if n > max {
				max = n
			}
			pre := fmt.Sprintf("pimhash/part/%03d/", i)
			r.Gauge(pre + "size").Set(int64(n))
			r.Gauge(pre + "served").Set(int64(p.Served))
		}
		imbalance := 0.0
		if total > 0 {
			imbalance = float64(max) * float64(len(m.parts)) / float64(total)
		}
		r.FloatGauge("pimhash/imbalance").Set(imbalance)
		r.Gauge("pimhash/total_len").Set(int64(total))
	})
}
