// Package pimhash extends the paper's designs with a PIM-managed hash
// map — the "other types of PIM-managed data structures" its conclusion
// invites. Keys are routed to vaults by hash, so unlike the skip-list
// no range directory or rebalancing is needed: the hash spreads load
// uniformly by construction, and each vault's PIM core serves O(1)
// probes per operation.
//
// The analysis mirrors Table 2 with β replaced by the expected probe
// count ρ ≈ 2:
//
//	PIM hash map, k vaults:  k / (ρ·Lpim + Lmessage)
//	CPU sharded hash map:    p / (ρ·Lcpu + Latomic·r3')   (lock per shard)
//
// Because ρ is tiny, the PIM hash map is message-latency-bound — the
// regime where pipelining matters most; its core therefore serves its
// whole buffer per pass like the combining linked-list.
package pimhash

import (
	"fmt"
	"sort"

	"pimds/internal/cds/seqhash"
	"pimds/internal/obs"
	"pimds/internal/sim"
)

// Message kinds for the hash-map protocol.
const (
	MsgGet  = iota + 1 // Key = key
	MsgPut             // Key = key, Val = value
	MsgDel             // Key = key
	MsgResp            // OK = found/new/removed, Val = value (Get)
)

// Map is a PIM-managed hash map partitioned across k vaults by key
// hash.
type Map struct {
	eng   *sim.Engine
	parts []*partition

	batchSize *obs.Histogram // served-batch sizes (nil = disabled)
}

type partition struct {
	m     *Map
	core  *sim.PIMCore
	table *seqhash.Table

	Served uint64
}

// New creates a PIM hash map over k fresh PIM cores.
func New(e *sim.Engine, k int) *Map {
	if k < 1 {
		panic(fmt.Sprintf("pimhash: need k >= 1, got %d", k))
	}
	m := &Map{eng: e}
	for i := 0; i < k; i++ {
		p := &partition{m: m, table: seqhash.New(64)}
		p.core = e.NewPIMCore(p.handle)
		m.parts = append(m.parts, p)
	}
	m.instrument()
	return m
}

// Partitions returns k.
func (m *Map) Partitions() int { return len(m.parts) }

// Cores returns the PIM cores (stats).
func (m *Map) Cores() []*sim.PIMCore {
	cores := make([]*sim.PIMCore, len(m.parts))
	for i, p := range m.parts {
		cores[i] = p.core
	}
	return cores
}

// routeHash is the client-side vault-selection hash (splitmix64
// finalizer); it must be stateless and cheap — a pure register
// computation, charged as Epsilon. Routing uses the HIGH 32 bits while
// the per-vault table indexes buckets with the low bits of the same
// finalizer: using the same bits for both once left every vault with
// only 1/k of its buckets populated and k× longer chains.
func routeHash(k int64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ z>>31) >> 32
}

// coreFor returns the core owning key k.
func (m *Map) coreFor(k int64) sim.CoreID {
	return m.parts[routeHash(k)%uint64(len(m.parts))].core.ID()
}

// Preload stores key→value pairs at no simulated cost. Insertion runs
// in sorted key order: hash-chain order determines later probe counts
// (Steps), so inserting in map-iteration order would make charged
// latencies vary run to run.
func (m *Map) Preload(kv map[int64]int64) {
	for _, k := range sortedKeys(kv) {
		m.parts[routeHash(k)%uint64(len(m.parts))].table.Put(k, kv[k])
	}
}

// sortedKeys returns kv's keys in increasing order, detaching preload
// from map iteration order.
func sortedKeys(kv map[int64]int64) []int64 {
	keys := make([]int64, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TotalLen returns the number of stored keys.
func (m *Map) TotalLen() int {
	total := 0
	for _, p := range m.parts {
		total += p.table.Len()
	}
	return total
}

// handle serves every buffered request in one pass (each is O(1), so
// batching amortizes nothing structural, but replies pipeline).
func (p *partition) handle(c *sim.PIMCore, m sim.Message) {
	batch := c.TakeQueued([]sim.Message{m}, -1)
	p.m.batchSize.Observe(int64(len(batch)))
	for _, req := range batch {
		p.table.ResetSteps()
		var resp sim.Message
		switch req.Kind {
		case MsgGet:
			v, ok := p.table.Get(req.Key)
			resp = sim.Message{To: req.From, Kind: MsgResp, Key: req.Key, Val: v, OK: ok}
		case MsgPut:
			fresh := p.table.Put(req.Key, req.Val)
			resp = sim.Message{To: req.From, Kind: MsgResp, Key: req.Key, OK: fresh}
		case MsgDel:
			removed := p.table.Delete(req.Key)
			resp = sim.Message{To: req.From, Kind: MsgResp, Key: req.Key, OK: removed}
		default:
			panic("pimhash: unknown request kind")
		}
		c.ReadN(int(p.table.Steps()))
		if req.Kind != MsgGet {
			c.Write()
		}
		c.Send(resp)
		c.CountOp()
		p.Served++
	}
}

// Op is one hash-map operation for client streams.
type Op struct {
	Kind int // MsgGet, MsgPut or MsgDel
	Key  int64
	Val  int64
}

// NewClient returns a closed-loop client issuing the stream produced
// by next.
func (m *Map) NewClient(next func(seq uint64) Op) *sim.Client {
	return sim.NewClient(m.eng, func(c *sim.CPU, seq uint64) sim.Message {
		op := next(seq)
		return sim.Message{To: m.coreFor(op.Key), Kind: op.Kind, Key: op.Key, Val: op.Val}
	})
}

// SimShardedCPU simulates the strongest simple CPU-side baseline: a
// hash map sharded across s locks, p threads. Each operation pays the
// probe walk at Lcpu plus one atomic for the shard lock; concurrent
// operations on the same shard serialize on that lock's cache line.
type SimShardedCPU struct {
	cpus   []*sim.CPU
	tables []*seqhash.Table
	locks  []*sim.AtomicLine
}

// NewSimShardedCPU creates the baseline with p threads over s shards,
// driven by per-thread op streams.
func NewSimShardedCPU(e *sim.Engine, p, s int, next func(cpu int, seq uint64) Op) *SimShardedCPU {
	b := &SimShardedCPU{}
	for i := 0; i < s; i++ {
		b.tables = append(b.tables, seqhash.New(64))
		b.locks = append(b.locks, &sim.AtomicLine{})
	}
	for i := 0; i < p; i++ {
		i := i
		cpu := e.NewCPU(nil)
		var seq uint64
		sim.Loop(cpu, func(c *sim.CPU) {
			op := next(i, seq)
			seq++
			shard := int(routeHash(op.Key) % uint64(len(b.tables)))
			c.Atomic(b.locks[shard]) // lock acquire (contended line)
			tbl := b.tables[shard]
			tbl.ResetSteps()
			switch op.Kind {
			case MsgGet:
				tbl.Get(op.Key)
			case MsgPut:
				tbl.Put(op.Key, op.Val)
			case MsgDel:
				tbl.Delete(op.Key)
			}
			c.MemReadN(int(tbl.Steps()))
			if op.Kind != MsgGet {
				c.MemWrite()
			}
			c.CountOp()
		})
		b.cpus = append(b.cpus, cpu)
	}
	return b
}

// Ops returns the snapshot function for sim.Measure.
func (b *SimShardedCPU) Ops() func() uint64 { return sim.OpsOfCPUs(b.cpus) }

// Preload stores pairs at no cost, in sorted key order for the same
// chain-order determinism reason as Map.Preload.
func (b *SimShardedCPU) Preload(kv map[int64]int64) {
	for _, k := range sortedKeys(kv) {
		b.tables[routeHash(k)%uint64(len(b.tables))].Put(k, kv[k])
	}
}
