package pimstack

import (
	"fmt"

	"pimds/internal/obs"
)

// KindName maps the stack protocol's message kinds to symbolic names
// for metric paths and trace events (install with
// sim.Engine.SetKindNamer).
func KindName(kind int) string {
	switch kind {
	case MsgPush:
		return "Push"
	case MsgPop:
		return "Pop"
	case MsgPushOK:
		return "PushOK"
	case MsgPopOK:
		return "PopOK"
	case MsgPopEmpty:
		return "PopEmpty"
	case MsgPushFail:
		return "PushFail"
	case MsgPopFail:
		return "PopFail"
	case MsgNewTopSeg:
		return "NewTopSeg"
	case MsgRevertTop:
		return "RevertTop"
	case MsgTopOwner:
		return "TopOwner"
	case MsgFindTop:
		return "FindTop"
	case MsgFindResp:
		return "FindResp"
	}
	return fmt.Sprintf("kind_%02d", kind)
}

// instrument registers a snapshot-time collector exporting the
// segment-protocol counters per core and the clients' retry and
// rediscovery totals. A nil registry makes this a no-op.
func (s *Stack) instrument() {
	reg := s.eng.Metrics()
	reg.AddCollector(func(r *obs.Registry) {
		for i, sc := range s.cores {
			pre := fmt.Sprintf("pimstack/core/%03d/", i)
			r.Gauge(pre + "pushes").Set(int64(sc.Pushes))
			r.Gauge(pre + "pops").Set(int64(sc.Pops))
			r.Gauge(pre + "overflows").Set(int64(sc.Overflows))
			r.Gauge(pre + "reverts").Set(int64(sc.Reverts))
			r.Gauge(pre + "failed").Set(int64(sc.Failed))
			r.Gauge(pre + "empty_pops").Set(int64(sc.EmptyPops))
		}
		var retries, discovered uint64
		for _, cl := range s.clients {
			retries += cl.Retries
			discovered += cl.Discovered
		}
		r.Gauge("pimstack/client_retries").Set(int64(retries))
		r.Gauge("pimstack/rediscoveries").Set(int64(discovered))
		r.Gauge("pimstack/len").Set(int64(s.Len()))
	})
}
