package pimstack

import (
	"testing"

	"pimds/internal/model"
	"pimds/internal/sim"
)

func testConfig() sim.Config {
	return sim.ConfigFromParams(model.DefaultParams())
}

func startAll(cls []*Client) {
	for _, cl := range cls {
		cl.Start()
	}
}

func stopAndDrain(e *sim.Engine, cls []*Client) {
	for _, cl := range cls {
		cl.Stop()
	}
	e.Run()
}

// TestSingleClientLIFO: alternating push/pop on one core returns each
// pushed value immediately (classic stack behaviour).
func TestSingleClientLIFO(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 1, 1<<30)
	cl := s.NewClient(Mixed)
	var got []int64
	cl.OnPop = func(v int64) { got = append(got, v) }
	cl.Start()
	e.RunUntil(100 * sim.Microsecond)
	stopAndDrain(e, []*Client{cl})

	if len(got) < 50 {
		t.Fatalf("only %d pops", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("pop #%d = %d, want %d", i, v, i)
		}
	}
	if s.Len() > 1 {
		t.Errorf("stack depth %d at quiescence", s.Len())
	}
}

// TestLIFOAcrossSegments: push a run, then pop everything through one
// popper: values must come back in exact reverse order across segment
// boundaries (overflows up, reverts down).
func TestLIFOAcrossSegments(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 4, 16)
	pusher := s.NewClient(Pusher)
	pusher.Start()
	e.RunUntil(100 * sim.Microsecond)
	pusher.Stop()
	e.Run()

	var overflows uint64
	for _, sc := range s.Cores() {
		overflows += sc.Overflows
	}
	if overflows == 0 {
		t.Fatal("no overflow handoffs with threshold 16")
	}
	pushed := int64(pusher.Pushed)
	if int64(s.Len()) != pushed {
		t.Fatalf("len = %d, pushed = %d", s.Len(), pushed)
	}

	popper := s.NewClient(Popper)
	var got []int64
	popper.OnPop = func(v int64) { got = append(got, v) }
	popper.Start()
	e.RunUntil(5 * sim.Millisecond)
	popper.Stop()
	e.Run()

	if int64(len(got)) != pushed {
		t.Fatalf("popped %d, want %d", len(got), pushed)
	}
	for i, v := range got {
		if v != pushed-1-int64(i) {
			t.Fatalf("pop #%d = %d, want %d (LIFO)", i, v, pushed-1-int64(i))
		}
	}
	var reverts uint64
	for _, sc := range s.Cores() {
		reverts += sc.Reverts
	}
	if reverts == 0 {
		t.Error("no revert handoffs while draining")
	}
	if s.TopOwner() != 0 {
		t.Errorf("top owner = %d after full drain, want 0 (bottom)", s.TopOwner())
	}
}

// TestDrainMatchesPops: Drain at quiescence reports exactly the resident
// values, top-first.
func TestDrainMatchesPops(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 3, 8)
	pusher := s.NewClient(Pusher)
	pusher.Start()
	e.RunUntil(30 * sim.Microsecond)
	pusher.Stop()
	e.Run()

	vals := s.Drain()
	if uint64(len(vals)) != pusher.Pushed {
		t.Fatalf("drained %d, pushed %d", len(vals), pusher.Pushed)
	}
	for i, v := range vals {
		want := int64(pusher.Pushed) - 1 - int64(i)
		if v != want {
			t.Fatalf("drain[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestConservationUnderConcurrency: every acknowledged pushed value is
// popped at most once, and popped ∪ resident = pushed exactly.
func TestConservationUnderConcurrency(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 4, 32)
	var cls []*Client
	seen := map[int64]int{}
	for i := 0; i < 3; i++ {
		cls = append(cls, s.NewClient(Pusher))
	}
	for i := 0; i < 3; i++ {
		cl := s.NewClient(Popper)
		cl.OnPop = func(v int64) { seen[v]++ }
		cls = append(cls, cl)
	}
	startAll(cls)
	e.RunUntil(2 * sim.Millisecond)
	stopAndDrain(e, cls)

	for _, v := range s.Drain() {
		seen[v]++
	}
	var pushed uint64
	for _, cl := range cls[:3] {
		pushed += cl.Pushed
		for q := int64(0); q < int64(cl.Pushed); q++ {
			v := int64(cl.idx)<<32 | q
			if seen[v] != 1 {
				t.Fatalf("value (client %d, seq %d) seen %d times", cl.idx, q, seen[v])
			}
		}
	}
	if uint64(len(seen)) != pushed {
		t.Fatalf("%d distinct values for %d pushes", len(seen), pushed)
	}
}

// TestEmptyPop: poppers on an empty stack see MsgPopEmpty.
func TestEmptyPop(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 2, 8)
	cl := s.NewClient(Popper)
	cl.Start()
	e.RunUntil(10 * sim.Microsecond)
	if cl.Empty == 0 || cl.Popped != 0 {
		t.Errorf("empty=%d popped=%d", cl.Empty, cl.Popped)
	}
}

// TestThroughputMatchesModel: the pipelined PIM stack sustains ≈
// 1/Lpim combined ops — beating both CPU-side stack bounds, mirroring
// §5.2.
func TestThroughputMatchesModel(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 2, 1<<30)
	var cls []*Client
	var cpus []*sim.CPU
	for i := 0; i < 6; i++ {
		p := s.NewClient(Pusher)
		q := s.NewClient(Popper)
		cls = append(cls, p, q)
		cpus = append(cpus, p.CPU(), q.CPU())
	}
	start := func() { startAll(cls) }
	_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 500*sim.Microsecond)
	// 1/Lpim = 33.3M; empty-pop fast-paths can push it slightly higher.
	if want := 1e9 / 30; ops < want*0.9 || ops > want*1.3 {
		t.Errorf("throughput = %.4g, want ≈ %.4g (1/Lpim)", ops, want)
	}
	// And it must beat the modeled Treiber (1/Latomic) and FC stack
	// (1/(2·Lllc)) bounds.
	if ops <= 1e9/90 || ops <= 1e9/60 {
		t.Errorf("PIM stack (%.4g) should beat 1/Latomic and 1/(2Lllc)", ops)
	}
}

// TestPipeliningAblation mirrors the queue's.
func TestPipeliningAblation(t *testing.T) {
	run := func(pipelining bool) float64 {
		e := sim.NewEngine(testConfig())
		s := New(e, 2, 1<<30)
		s.Pipelining = pipelining
		var cls []*Client
		var cpus []*sim.CPU
		for i := 0; i < 12; i++ {
			cl := s.NewClient(Pusher)
			cls = append(cls, cl)
			cpus = append(cpus, cl.CPU())
		}
		start := func() { startAll(cls) }
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 500*sim.Microsecond)
		return ops
	}
	on, off := run(true), run(false)
	if ratio := on / off; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("pipelining speedup = %.2f, want ≈ 4 (1 + Lmessage/Lpim)", ratio)
	}
}

// TestDeterminism: identical runs, identical results.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, sim.Time) {
		e := sim.NewEngine(testConfig())
		s := New(e, 3, 16)
		var cls []*Client
		for i := 0; i < 2; i++ {
			cls = append(cls, s.NewClient(Pusher), s.NewClient(Popper))
		}
		startAll(cls)
		e.RunUntil(500 * sim.Microsecond)
		var pu, po uint64
		for _, cl := range cls {
			pu += cl.Pushed
			po += cl.Popped
		}
		return pu, po, e.Now()
	}
	a1, b1, t1 := run()
	a2, b2, t2 := run()
	if a1 != a2 || b1 != b2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%d,%v) vs (%d,%d,%v)", a1, b1, t1, a2, b2, t2)
	}
}

func TestBadConstructionPanics(t *testing.T) {
	e := sim.NewEngine(testConfig())
	for _, c := range []struct{ n, th int }{{0, 5}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", c.n, c.th)
				}
			}()
			New(e, c.n, c.th)
		}()
	}
}
