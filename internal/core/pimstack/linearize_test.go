package pimstack

import (
	"testing"

	"pimds/internal/linearize"
	"pimds/internal/sim"
)

// TestLinearizability records a real simulated stack history across
// overflow and revert handoffs and checks it against the sequential
// LIFO specification.
func TestLinearizability(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 3, 8) // tiny threshold: overflow and revert traffic

	var history []linearize.Op
	record := func(client int) func(start, end sim.Time, kind int, v int64, ok bool) {
		return func(start, end sim.Time, kind int, v int64, ok bool) {
			op := linearize.Op{Start: int64(start), End: int64(end), Client: client, OK: ok}
			if kind == MsgPush {
				op.Action = linearize.ActPush
				op.Input = v
			} else {
				op.Action = linearize.ActPop
				op.Output = v
			}
			history = append(history, op)
		}
	}
	var cls []*Client
	for i := 0; i < 2; i++ {
		pu := s.NewClient(Pusher)
		pu.OnComplete = record(len(cls))
		po := s.NewClient(Popper)
		po.OnComplete = record(len(cls) + 1)
		cls = append(cls, pu, po)
	}
	startAll(cls)
	e.RunUntil(60 * sim.Microsecond)
	stopAndDrain(e, cls)

	if len(history) < 100 {
		t.Fatalf("only %d ops recorded", len(history))
	}
	if !linearize.Check(linearize.StackSpec{}, history) {
		t.Errorf("stack history of %d ops is not linearizable", len(history))
	}
}
