// Package pimstack applies the paper's Section 5 recipe to the other
// contended structure its introduction names — the stack ("operations
// compete for … the top pointer of a stack"). The design transplants
// Algorithm 1: the stack is a chain of segments across vaults, the core
// holding the *top* segment serves both pushes and pops (LIFO has only
// one hot end, so unlike the queue there is no two-core parallelism —
// the stack permanently lives in the paper's "short queue" regime), and
// replies are pipelined.
//
// Under the Section 3 model the comparison mirrors §5.2:
//
//	Treiber stack (CAS on top):   ≤ 1/Latomic
//	FC stack (combiner):          ≤ 1/(2·Lllc)
//	PIM stack (pipelined):        ≈ 1/Lpim
//
// so the PIM stack wins by r1·r3 and 2·r1/r2, exactly like the queue.
package pimstack

import (
	"fmt"

	"pimds/internal/sim"
	"pimds/internal/stats"
)

// Message kinds for the stack protocol.
const (
	MsgPush = iota + 1 // Key = value
	MsgPop
	MsgPushOK
	MsgPopOK    // Key = value
	MsgPopEmpty // whole stack empty
	MsgPushFail // not the top owner: rediscover and retry
	MsgPopFail
	MsgNewTopSeg // overflow handoff: receiver creates a fresh top segment
	MsgRevertTop // underflow handoff: receiver's newest segment is top again
	MsgTopOwner  // notification to clients: From owns the top
	MsgFindTop   // client → every core
	MsgFindResp  // OK = I own the top
)

// segment is one contiguous chunk of the stack in its creator's vault.
type segment struct {
	vals       []int64
	prevSegCid sim.CoreID // core holding the segment underneath, NoCore at the bottom
}

// StackCore is one PIM core participating in the stack.
type StackCore struct {
	s    *Stack
	idx  int
	core *sim.PIMCore

	topSeg *segment
	segs   []*segment // this core's segments, newest last

	// Stats.
	Pushes    uint64
	Pops      uint64
	Overflows uint64 // handoffs up (new segment elsewhere)
	Reverts   uint64 // handoffs down (top returned here)
	Failed    uint64
	EmptyPops uint64
}

// Core exposes the underlying PIM core.
func (sc *StackCore) Core() *sim.PIMCore { return sc.core }

// Stack is the PIM-managed LIFO stack.
type Stack struct {
	eng     *sim.Engine
	cores   []*StackCore
	clients []*Client

	// Threshold is the segment length that triggers an overflow
	// handoff to the next core.
	Threshold int

	// Pipelining, as in pimqueue: when false the core stalls one
	// Lmessage after every reply.
	Pipelining bool
}

// New creates a PIM stack over n fresh PIM cores; core 0 starts with
// the (empty) bottom segment as top.
func New(e *sim.Engine, n, threshold int) *Stack {
	if n < 1 || threshold < 1 {
		panic(fmt.Sprintf("pimstack: need n (%d) >= 1 and threshold (%d) >= 1", n, threshold))
	}
	s := &Stack{eng: e, Threshold: threshold, Pipelining: true}
	for i := 0; i < n; i++ {
		sc := &StackCore{s: s, idx: i}
		sc.core = e.NewPIMCore(sc.handle)
		s.cores = append(s.cores, sc)
	}
	bottom := &segment{}
	s.cores[0].topSeg = bottom
	s.cores[0].segs = append(s.cores[0].segs, bottom)
	s.instrument()
	return s
}

// Cores returns the participating cores (stats, tests).
func (s *Stack) Cores() []*StackCore { return s.cores }

// TopOwner returns the index of the core holding the top segment, or
// -1 mid-handoff.
func (s *Stack) TopOwner() int {
	for i, sc := range s.cores {
		if sc.topSeg != nil {
			return i
		}
	}
	return -1
}

// Len returns the total number of stacked values (quiescence).
func (s *Stack) Len() int {
	total := 0
	for _, sc := range s.cores {
		for _, seg := range sc.segs {
			total += len(seg.vals)
		}
	}
	return total
}

// Drain returns all values top-first without charging simulation cost
// (quiescence, tests). It follows the prevSegCid chain over shadow
// copies of each core's segment list: a revert always resumes a core's
// newest not-yet-visited segment.
func (s *Stack) Drain() []int64 {
	owner := s.TopOwner()
	if owner < 0 {
		return nil
	}
	shadow := make(map[*StackCore][]*segment, len(s.cores))
	for _, sc := range s.cores {
		shadow[sc] = append([]*segment(nil), sc.segs...)
	}
	top := s.cores[owner]
	shadow[top] = shadow[top][:len(shadow[top])-1] // topSeg is its newest
	seg := top.topSeg

	var out []int64
	for seg != nil {
		for i := len(seg.vals) - 1; i >= 0; i-- {
			out = append(out, seg.vals[i])
		}
		if seg.prevSegCid == sim.NoCore {
			break
		}
		prevCore := s.coreByID(seg.prevSegCid)
		segs := shadow[prevCore]
		seg = segs[len(segs)-1]
		shadow[prevCore] = segs[:len(segs)-1]
	}
	return out
}

func (s *Stack) coreByID(id sim.CoreID) *StackCore {
	for _, sc := range s.cores {
		if sc.core.ID() == id {
			return sc
		}
	}
	return nil
}

// reply sends a response, honoring the pipelining switch.
func (sc *StackCore) reply(c *sim.PIMCore, m sim.Message) {
	c.Send(m)
	if !sc.s.Pipelining {
		c.Compute(sc.s.eng.Config().Lmessage)
	}
}

// handle is the PIM-core program.
func (sc *StackCore) handle(c *sim.PIMCore, m sim.Message) {
	switch m.Kind {
	case MsgPush:
		sc.handlePush(c, m)
	case MsgPop:
		sc.handlePop(c, m)
	case MsgNewTopSeg:
		// Overflow from m.From: create a fresh top segment chained
		// beneath to the sender.
		seg := &segment{prevSegCid: m.From}
		sc.topSeg = seg
		sc.segs = append(sc.segs, seg)
		sc.core.Vault().RecordAlloc()
		c.Write()
		sc.notifyClients(c)
	case MsgRevertTop:
		// Underflow: this core's newest segment is the top again.
		if len(sc.segs) == 0 {
			panic(fmt.Sprintf("pimstack: core %d asked to revert with no segments", sc.idx))
		}
		sc.topSeg = sc.segs[len(sc.segs)-1]
		c.Local()
		sc.notifyClients(c)
	case MsgFindTop:
		c.Local()
		sc.reply(c, sim.Message{To: m.From, Kind: MsgFindResp, OK: sc.topSeg != nil})
	default:
		panic(fmt.Sprintf("pimstack: core %d: unknown message kind %d", sc.idx, m.Kind))
	}
}

func (sc *StackCore) handlePush(c *sim.PIMCore, m sim.Message) {
	if sc.topSeg == nil {
		c.Local()
		sc.Failed++
		sc.reply(c, sim.Message{To: m.From, Kind: MsgPushFail})
		return
	}
	// One vault write for the value, two L1 accesses for the top
	// index — the same accounting as the queue's enqueue.
	sc.topSeg.vals = append(sc.topSeg.vals, m.Key)
	c.Write()
	c.Local()
	c.Local()
	sc.Pushes++
	c.CountOp()
	sc.reply(c, sim.Message{To: m.From, Kind: MsgPushOK})

	if len(sc.topSeg.vals) > sc.s.Threshold {
		next := sc.s.cores[(sc.idx+1)%len(sc.s.cores)]
		c.Send(sim.Message{To: next.core.ID(), Kind: MsgNewTopSeg})
		sc.topSeg = nil
		sc.Overflows++
		c.Local()
	}
}

func (sc *StackCore) handlePop(c *sim.PIMCore, m sim.Message) {
	if sc.topSeg == nil {
		c.Local()
		sc.Failed++
		sc.reply(c, sim.Message{To: m.From, Kind: MsgPopFail})
		return
	}
	if n := len(sc.topSeg.vals); n > 0 {
		v := sc.topSeg.vals[n-1]
		sc.topSeg.vals = sc.topSeg.vals[:n-1]
		c.Read()
		c.Local()
		c.Local()
		sc.Pops++
		c.CountOp()
		sc.reply(c, sim.Message{To: m.From, Kind: MsgPopOK, Key: v})
		return
	}
	prev := sc.topSeg.prevSegCid
	if prev == sim.NoCore {
		// Bottom segment empty: the stack is empty.
		c.Local()
		sc.EmptyPops++
		c.CountOp()
		sc.reply(c, sim.Message{To: m.From, Kind: MsgPopEmpty})
		return
	}
	// Underflow: discard this segment and return the top role to the
	// core underneath; the client retries there.
	sc.retireTopSeg()
	c.Send(sim.Message{To: prev, Kind: MsgRevertTop})
	sc.topSeg = nil
	sc.Reverts++
	c.Local()
	sc.Failed++
	sc.reply(c, sim.Message{To: m.From, Kind: MsgPopFail})
}

func (sc *StackCore) retireTopSeg() {
	for i := len(sc.segs) - 1; i >= 0; i-- {
		if sc.segs[i] == sc.topSeg {
			sc.segs = append(sc.segs[:i], sc.segs[i+1:]...)
			sc.core.Vault().RecordFree()
			return
		}
	}
}

func (sc *StackCore) notifyClients(c *sim.PIMCore) {
	for _, cl := range sc.s.clients {
		c.Send(sim.Message{To: cl.cpu.ID(), Kind: MsgTopOwner})
	}
}

// Role selects a stack client's behaviour.
type Role int

// Client roles.
const (
	Pusher Role = iota
	Popper
	Mixed // alternates push / pop
)

// Client is a closed-loop CPU client of the PIM stack, with the same
// owner-tracking / rediscovery scheme as the queue client.
type Client struct {
	s    *Stack
	cpu  *sim.CPU
	idx  int
	role Role

	topOwner  sim.CoreID
	nextPush  bool
	seq       int64
	searching bool
	negatives int
	stopped   bool
	issuedAt  sim.Time

	// Latency records response times in picoseconds.
	Latency *stats.Histogram

	// Stats and hooks.
	Pushed     uint64
	Popped     uint64
	Empty      uint64
	Retries    uint64
	Discovered uint64
	OnPop      func(v int64)

	// OnComplete, if set, observes every completed operation with its
	// virtual-time interval (linearizability tests).
	OnComplete func(start, end sim.Time, kind int, value int64, ok bool)
}

// NewClient registers a closed-loop client. Call Start to begin.
func (s *Stack) NewClient(role Role) *Client {
	cl := &Client{s: s, idx: len(s.clients), role: role, Latency: stats.NewHistogram(16)}
	cl.cpu = s.eng.NewCPU(cl.onMessage)
	cl.topOwner = s.cores[0].core.ID()
	s.clients = append(s.clients, cl)
	return cl
}

// CPU exposes the client's CPU (stats).
func (cl *Client) CPU() *sim.CPU { return cl.cpu }

// Start issues the client's first request.
func (cl *Client) Start() {
	cl.cpu.Exec(func(c *sim.CPU) { cl.issue(c) })
}

// Stop quiesces the client after its in-flight request.
func (cl *Client) Stop() { cl.stopped = true }

func (cl *Client) nextValue() int64 {
	v := int64(cl.idx)<<32 | cl.seq
	cl.seq++
	return v
}

func (cl *Client) issue(c *sim.CPU) {
	if cl.stopped {
		return
	}
	cl.issuedAt = c.Clock()
	c.ProfOpStart()
	push := false
	switch cl.role {
	case Pusher:
		push = true
	case Popper:
		push = false
	case Mixed:
		push = cl.nextPush
		cl.nextPush = !cl.nextPush
	}
	if push {
		c.Send(sim.Message{To: cl.topOwner, Kind: MsgPush, Key: cl.nextValue()})
	} else {
		c.Send(sim.Message{To: cl.topOwner, Kind: MsgPop})
	}
}

func (cl *Client) retryPush(c *sim.CPU) {
	if cl.stopped {
		return
	}
	cl.seq--
	c.Send(sim.Message{To: cl.topOwner, Kind: MsgPush, Key: cl.nextValue()})
}

func (cl *Client) retryPop(c *sim.CPU) {
	if cl.stopped {
		return
	}
	c.Send(sim.Message{To: cl.topOwner, Kind: MsgPop})
}

func (cl *Client) onMessage(c *sim.CPU, m sim.Message) {
	switch m.Kind {
	case MsgPushOK:
		cl.Pushed++
		c.CountOp()
		c.ProfOpEnd()
		cl.Latency.Add(int64(c.Clock() - cl.issuedAt))
		cl.s.eng.RecordOpLatency(MsgPush, c.Clock()-cl.issuedAt)
		if cl.OnComplete != nil {
			cl.OnComplete(cl.issuedAt, c.Clock(), MsgPush, int64(cl.idx)<<32|(cl.seq-1), true)
		}
		cl.issue(c)
	case MsgPopOK:
		cl.Popped++
		c.CountOp()
		c.ProfOpEnd()
		cl.Latency.Add(int64(c.Clock() - cl.issuedAt))
		cl.s.eng.RecordOpLatency(MsgPop, c.Clock()-cl.issuedAt)
		if cl.OnPop != nil {
			cl.OnPop(m.Key)
		}
		if cl.OnComplete != nil {
			cl.OnComplete(cl.issuedAt, c.Clock(), MsgPop, m.Key, true)
		}
		cl.issue(c)
	case MsgPopEmpty:
		cl.Empty++
		c.CountOp()
		c.ProfOpEnd()
		if cl.OnComplete != nil {
			cl.OnComplete(cl.issuedAt, c.Clock(), MsgPop, 0, false)
		}
		cl.issue(c)
	case MsgPushFail:
		cl.Retries++
		if m.From != cl.topOwner {
			cl.retryPush(c)
			return
		}
		cl.startSearch(c, true)
	case MsgPopFail:
		cl.Retries++
		if m.From != cl.topOwner {
			cl.retryPop(c)
			return
		}
		cl.startSearch(c, false)
	case MsgTopOwner:
		cl.topOwner = m.From
		c.Local()
		if cl.searching {
			cl.searching = false
			cl.Discovered++
			cl.retryLast(c)
		}
	case MsgFindResp:
		cl.handleFindResp(c, m)
	default:
		panic(fmt.Sprintf("pimstack: client %d: unknown message kind %d", cl.idx, m.Kind))
	}
}

// lastWasPush remembers which request failed so a discovery can retry
// it; Mixed alternation means the *pending* op is the inverse of
// nextPush.
func (cl *Client) lastWasPush() bool {
	switch cl.role {
	case Pusher:
		return true
	case Popper:
		return false
	default:
		return !cl.nextPush
	}
}

func (cl *Client) retryLast(c *sim.CPU) {
	if cl.lastWasPush() {
		cl.retryPush(c)
	} else {
		cl.retryPop(c)
	}
}

func (cl *Client) startSearch(c *sim.CPU, _ bool) {
	cl.searching = true
	cl.negatives = 0
	for _, sc := range cl.s.cores {
		c.Send(sim.Message{To: sc.core.ID(), Kind: MsgFindTop})
	}
}

func (cl *Client) handleFindResp(c *sim.CPU, m sim.Message) {
	if !cl.searching {
		return
	}
	if m.OK {
		cl.topOwner = m.From
		cl.searching = false
		cl.Discovered++
		cl.retryLast(c)
		return
	}
	cl.negatives++
	if cl.negatives >= len(cl.s.cores) && !cl.stopped {
		cl.startSearch(c, false)
	}
}
