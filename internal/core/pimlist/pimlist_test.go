package pimlist

import (
	"math/rand"
	"testing"

	"pimds/internal/cds/seqlist"
	"pimds/internal/model"
	"pimds/internal/sim"
)

func testConfig() sim.Config {
	return sim.ConfigFromParams(model.DefaultParams())
}

// uniformOps returns a deterministic op generator: uniform keys in
// [0, space), mix of 25% contains / 37.5% add / 37.5% remove.
func uniformOps(seed int64, space int64) func(seq uint64) seqlist.Op {
	rng := rand.New(rand.NewSource(seed))
	return func(uint64) seqlist.Op {
		k := rng.Int63n(space)
		switch rng.Intn(8) {
		case 0, 1:
			return seqlist.Op{Kind: seqlist.Contains, Key: k}
		case 2, 3, 4:
			return seqlist.Op{Kind: seqlist.Add, Key: k}
		default:
			return seqlist.Op{Kind: seqlist.Remove, Key: k}
		}
	}
}

// TestSequentialEquivalence replays a single client's operations against
// a reference map: the PIM list must return exactly the sequential
// results.
func TestSequentialEquivalence(t *testing.T) {
	for _, combining := range []bool{false, true} {
		e := sim.NewEngine(testConfig())
		l := New(e, combining)

		var issued []seqlist.Op
		gen := uniformOps(5, 64)
		next := func(seq uint64) seqlist.Op {
			op := gen(seq)
			issued = append(issued, op)
			return op
		}
		cl := l.NewClient(e, next)
		cl.Start()
		e.RunUntil(2 * sim.Millisecond)

		// Replay against a map. The client is closed-loop, so ops
		// complete in issue order; the last issued op may still be in
		// flight.
		ref := make(map[int64]bool)
		completed := int(cl.Completed)
		if completed < 100 {
			t.Fatalf("only %d ops completed", completed)
		}
		for i := 0; i < completed; i++ {
			op := issued[i]
			switch op.Kind {
			case seqlist.Add:
				ref[op.Key] = true
			case seqlist.Remove:
				delete(ref, op.Key)
			}
		}
		if got, want := l.Len(), len(ref); got != want {
			t.Errorf("combining=%v: len = %d, want %d", combining, got, want)
		}
		for _, k := range l.Keys() {
			if !ref[k] {
				t.Errorf("combining=%v: unexpected key %d", combining, k)
			}
		}
	}
}

func TestPreloadAndKeys(t *testing.T) {
	e := sim.NewEngine(testConfig())
	l := New(e, true)
	l.Preload([]int64{5, 1, 3})
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	keys := l.Keys()
	want := []int64{1, 3, 5}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

// TestNaiveThroughputHandChecked pins the naive PIM list's cycle time:
// a Contains(maxKey) on an n-node list of keys 0..n-1 visits n nodes,
// so one closed-loop op takes Lmessage + n·Lpim + Lmessage.
func TestNaiveThroughputHandChecked(t *testing.T) {
	e := sim.NewEngine(testConfig())
	l := New(e, false)
	const n = 10
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	l.Preload(keys)
	cl := l.NewClient(e, func(uint64) seqlist.Op {
		return seqlist.Op{Kind: seqlist.Contains, Key: n - 1}
	})
	m := &sim.Meter{Engine: e, Clients: []*sim.Client{cl}}
	// Cycle = 90 + 10×30 + 90 = 480ns.
	completed, _ := m.Run(0, 480*100*sim.Nanosecond)
	if completed != 100 {
		t.Errorf("completed = %d, want 100", completed)
	}
}

// TestCombiningBeatsNaive: with many clients, the combining list must
// deliver strictly higher throughput than the naive list — Table 1's
// row 5 vs row 3.
func TestCombiningBeatsNaive(t *testing.T) {
	run := func(combining bool) float64 {
		e := sim.NewEngine(testConfig())
		l := New(e, combining)
		var keys []int64
		for i := int64(0); i < 400; i += 2 {
			keys = append(keys, i)
		}
		l.Preload(keys)
		var clients []*sim.Client
		for i := 0; i < 8; i++ {
			clients = append(clients, l.NewClient(e, uniformOps(int64(100+i), 400)))
		}
		m := &sim.Meter{Engine: e, Clients: clients}
		_, ops := m.Run(200*sim.Microsecond, 2*sim.Millisecond)
		return ops
	}
	naive, combining := run(false), run(true)
	if combining <= naive*2 {
		t.Errorf("combining = %.0f ops/s, naive = %.0f ops/s; want ≥ 2× speedup at p=8", combining, naive)
	}
}

// TestBatchLimitOneActsNaive: BatchLimit=1 must serve one request per
// traversal even in combining mode.
func TestBatchLimitOneActsNaive(t *testing.T) {
	e := sim.NewEngine(testConfig())
	l := New(e, true)
	l.BatchLimit = 1
	var keys []int64
	for i := int64(0); i < 100; i++ {
		keys = append(keys, i)
	}
	l.Preload(keys)
	var clients []*sim.Client
	for i := 0; i < 4; i++ {
		clients = append(clients, l.NewClient(e, uniformOps(int64(i), 100)))
	}
	m := &sim.Meter{Engine: e, Clients: clients}
	m.Run(0, 500*sim.Microsecond)
	if l.Batches != l.Served {
		t.Errorf("batches = %d, served = %d; BatchLimit=1 must not batch", l.Batches, l.Served)
	}
}

// TestCombiningBatches: with unlimited batching and saturating clients,
// batches must be shared (served > batches).
func TestCombiningBatches(t *testing.T) {
	e := sim.NewEngine(testConfig())
	l := New(e, true)
	var keys []int64
	for i := int64(0); i < 500; i++ {
		keys = append(keys, i)
	}
	l.Preload(keys)
	var clients []*sim.Client
	for i := 0; i < 16; i++ {
		clients = append(clients, l.NewClient(e, uniformOps(int64(i), 500)))
	}
	m := &sim.Meter{Engine: e, Clients: clients}
	m.Run(0, 1*sim.Millisecond)
	if l.Served <= l.Batches {
		t.Errorf("served = %d, batches = %d; want batching", l.Served, l.Batches)
	}
}

// TestSimulationMatchesTable1 cross-checks the simulator against the
// analytical model for all five Table 1 rows at p = 8. The workload is
// the model's: uniform keys, balanced add/remove, steady-state size
// n ≈ keyspace/2. Tolerances are loose (35%) because the simulator
// executes real traversals over a random list while the model uses
// expectations, and the PIM/naive rows include message latency the
// closed-form drops.
func TestSimulationMatchesTable1(t *testing.T) {
	const keySpace = 400
	const nSteady = keySpace / 2
	const p = 8
	pr := model.DefaultParams()
	cfg := sim.ConfigFromParams(pr)
	lc := model.ListConfig{N: nSteady, P: p}

	// Balanced add/remove only (the model's workload).
	balanced := func(seed int64) func(uint64) seqlist.Op {
		rng := rand.New(rand.NewSource(seed))
		return func(uint64) seqlist.Op {
			k := rng.Int63n(keySpace)
			if rng.Intn(2) == 0 {
				return seqlist.Op{Kind: seqlist.Add, Key: k}
			}
			return seqlist.Op{Kind: seqlist.Remove, Key: k}
		}
	}
	preload := func() []int64 {
		var keys []int64
		for i := int64(0); i < keySpace; i += 2 {
			keys = append(keys, i)
		}
		return keys
	}

	check := func(name string, got, want float64, tol float64) {
		if got < want*(1-tol) || got > want*(1+tol) {
			t.Errorf("%s: simulated %.3g ops/s vs model %.3g ops/s (tolerance %.0f%%)",
				name, got, want, tol*100)
		}
	}

	// Rows 3 and 5: PIM list without/with combining.
	for _, combining := range []bool{false, true} {
		e := sim.NewEngine(cfg)
		l := New(e, combining)
		l.Preload(preload())
		var clients []*sim.Client
		for i := 0; i < p; i++ {
			clients = append(clients, l.NewClient(e, balanced(int64(1000+i))))
		}
		m := &sim.Meter{Engine: e, Clients: clients}
		_, ops := m.Run(500*sim.Microsecond, 5*sim.Millisecond)
		if combining {
			check("PIM combining", ops, model.ListPIMCombining(pr, lc), 0.35)
		} else {
			check("PIM naive", ops, model.ListPIMNoCombining(pr, lc), 0.35)
		}
	}

	// Row 1: fine-grained locks.
	{
		e := sim.NewEngine(cfg)
		gens := make([]func(uint64) seqlist.Op, p)
		for i := range gens {
			gens[i] = balanced(int64(2000 + i))
		}
		s := NewSimFineGrained(e, p, func(cpu int, seq uint64) seqlist.Op {
			return gens[cpu](seq)
		})
		s.Preload(preload())
		_, ops := sim.Measure(e, func() {}, s.Ops(), 500*sim.Microsecond, 5*sim.Millisecond)
		check("fine-grained", ops, model.ListFineGrainedLocks(pr, lc), 0.35)
	}

	// Rows 2 and 4: FC without/with combining.
	for _, combining := range []bool{false, true} {
		e := sim.NewEngine(cfg)
		s := NewSimFCList(e, p, combining, balanced(3000))
		s.Preload(preload())
		_, ops := sim.Measure(e, func() {}, s.Ops(), 500*sim.Microsecond, 5*sim.Millisecond)
		if combining {
			check("FC combining", ops, model.ListFCCombining(pr, lc), 0.35)
		} else {
			check("FC naive", ops, model.ListFCNoCombining(pr, lc), 0.35)
		}
	}
}

// TestPaperOrderingClaims verifies the paper's qualitative Figure 2
// ordering in the simulator at p = 8, r1 = 3:
//
//	PIM+combining > fine-grained > 3×? … specifically:
//	PIM+combining > fine-grained > PIM naive > FC naive,
//	and FC+combining > FC naive.
func TestPaperOrderingClaims(t *testing.T) {
	const keySpace = 400
	const p = 8
	cfg := testConfig()
	balanced := func(seed int64) func(uint64) seqlist.Op {
		rng := rand.New(rand.NewSource(seed))
		return func(uint64) seqlist.Op {
			k := rng.Int63n(keySpace)
			if rng.Intn(2) == 0 {
				return seqlist.Op{Kind: seqlist.Add, Key: k}
			}
			return seqlist.Op{Kind: seqlist.Remove, Key: k}
		}
	}
	preload := func() []int64 {
		var keys []int64
		for i := int64(0); i < keySpace; i += 2 {
			keys = append(keys, i)
		}
		return keys
	}

	runPIM := func(combining bool) float64 {
		e := sim.NewEngine(cfg)
		l := New(e, combining)
		l.Preload(preload())
		var clients []*sim.Client
		for i := 0; i < p; i++ {
			clients = append(clients, l.NewClient(e, balanced(int64(10+i))))
		}
		m := &sim.Meter{Engine: e, Clients: clients}
		_, ops := m.Run(500*sim.Microsecond, 4*sim.Millisecond)
		return ops
	}
	runFGL := func() float64 {
		e := sim.NewEngine(cfg)
		gens := make([]func(uint64) seqlist.Op, p)
		for i := range gens {
			gens[i] = balanced(int64(20 + i))
		}
		s := NewSimFineGrained(e, p, func(cpu int, seq uint64) seqlist.Op {
			return gens[cpu](seq)
		})
		s.Preload(preload())
		_, ops := sim.Measure(e, func() {}, s.Ops(), 500*sim.Microsecond, 4*sim.Millisecond)
		return ops
	}
	runFC := func(combining bool) float64 {
		e := sim.NewEngine(cfg)
		s := NewSimFCList(e, p, combining, balanced(30))
		s.Preload(preload())
		_, ops := sim.Measure(e, func() {}, s.Ops(), 500*sim.Microsecond, 4*sim.Millisecond)
		return ops
	}

	pimC, pimN := runPIM(true), runPIM(false)
	fgl := runFGL()
	fcC, fcN := runFC(true), runFC(false)

	if !(pimC > fgl) {
		t.Errorf("PIM+combining (%.3g) should beat fine-grained locks (%.3g)", pimC, fgl)
	}
	if !(fgl > pimN) {
		t.Errorf("fine-grained locks (%.3g) should beat naive PIM at p=8 (%.3g)", fgl, pimN)
	}
	if !(pimN > fcN) {
		t.Errorf("naive PIM (%.3g) should beat naive FC (%.3g)", pimN, fcN)
	}
	if !(fcC > fcN) {
		t.Errorf("FC+combining (%.3g) should beat FC naive (%.3g)", fcC, fcN)
	}
	// The paper's 1.5× claim at r1 = 3.
	if pimC < 1.5*fgl*0.9 {
		t.Errorf("PIM+combining (%.3g) should be ≈1.5× fine-grained (%.3g)", pimC, fgl)
	}
}

func TestUnknownRequestKindPanics(t *testing.T) {
	e := sim.NewEngine(testConfig())
	l := New(e, false)
	cpu := e.NewCPU(func(c *sim.CPU, m sim.Message) {})
	cpu.Exec(func(c *sim.CPU) {
		c.Send(sim.Message{To: l.CoreID(), Kind: 999})
	})
	defer func() {
		if recover() == nil {
			t.Error("unknown request kind should panic")
		}
	}()
	e.Run()
}
