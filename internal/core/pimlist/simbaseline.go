package pimlist

import (
	"pimds/internal/cds/seqlist"
	"pimds/internal/sim"
)

// This file provides the CPU-side linked-list baselines of Table 1 as
// virtual-time simulations, so that all five rows can be measured under
// the identical workload and latency model. They charge exactly the
// costs the analytical model counts: one Lcpu per traversed node for
// CPU threads, plus (for flat combining) two Lllc publication-list
// accesses per served request, which the paper's closed forms neglect
// as lower-order terms.

// SimFineGrained simulates the linked-list with fine-grained locks
// (Table 1 row 1): p CPU threads traverse a shared list in parallel at
// Lcpu per node. Matching the model, lock handoffs and contention are
// not charged.
type SimFineGrained struct {
	seq  *seqlist.List
	cpus []*sim.CPU
}

// NewSimFineGrained creates the baseline with p client CPUs issuing the
// operation streams produced by next (one generator per CPU).
func NewSimFineGrained(e *sim.Engine, p int, next func(cpu int, seq uint64) seqlist.Op) *SimFineGrained {
	s := &SimFineGrained{seq: seqlist.New()}
	for i := 0; i < p; i++ {
		i := i
		cpu := e.NewCPU(nil)
		var seq uint64
		sim.Loop(cpu, func(c *sim.CPU) {
			op := next(i, seq)
			seq++
			s.seq.ResetSteps()
			result := s.seq.Apply(op)
			c.MemReadN(int(s.seq.Steps()))
			if (op.Kind == seqlist.Add || op.Kind == seqlist.Remove) && result {
				c.MemWrite()
			}
			c.CountOp()
		})
		s.cpus = append(s.cpus, cpu)
	}
	return s
}

// Preload inserts keys at no cost before the simulation starts.
func (s *SimFineGrained) Preload(keys []int64) {
	for _, k := range keys {
		s.seq.AddKey(k)
	}
}

// Ops returns the snapshot function for sim.Measure.
func (s *SimFineGrained) Ops() func() uint64 { return sim.OpsOfCPUs(s.cpus) }

// Len returns the number of stored keys.
func (s *SimFineGrained) Len() int { return s.seq.Len() }

// SimFCList simulates the flat-combining linked-list (Table 1 rows 2
// and 4): a single combiner CPU repeatedly serves a batch of p pending
// requests — one per client thread, all of which are assumed blocked
// publishing (the saturated regime of Figure 2). Each served request
// costs two last-level-cache accesses (read the slot, write the
// result); traversal nodes cost Lcpu each. With combining, the batch is
// served in one traversal; without, each request gets its own.
type SimFCList struct {
	seq       *seqlist.List
	combiner  *sim.CPU
	combining bool
	batch     int

	ops []seqlist.Op
}

// NewSimFCList creates the baseline. p is the number of client threads
// (hence the batch size); next produces the combined operation stream.
func NewSimFCList(e *sim.Engine, p int, combining bool, next func(seq uint64) seqlist.Op) *SimFCList {
	s := &SimFCList{seq: seqlist.New(), combining: combining, batch: p}
	var seq uint64
	s.combiner = e.NewCPU(nil)
	sim.Loop(s.combiner, func(c *sim.CPU) {
		s.ops = s.ops[:0]
		for i := 0; i < s.batch; i++ {
			s.ops = append(s.ops, next(seq))
			seq++
		}
		s.seq.ResetSteps()
		var results []bool
		if s.combining {
			results = s.seq.ApplyBatch(s.ops)
		} else {
			results = results[:0]
			for _, op := range s.ops {
				results = append(results, s.seq.Apply(op))
			}
		}
		c.MemReadN(int(s.seq.Steps()))
		for i := range s.ops {
			c.LLCRead()  // read the publication slot
			c.LLCWrite() // write the result back
			if (s.ops[i].Kind == seqlist.Add || s.ops[i].Kind == seqlist.Remove) && results[i] {
				c.MemWrite()
			}
			c.CountOp()
		}
	})
	return s
}

// Preload inserts keys at no cost before the simulation starts.
func (s *SimFCList) Preload(keys []int64) {
	for _, k := range keys {
		s.seq.AddKey(k)
	}
}

// Ops returns the snapshot function for sim.Measure.
func (s *SimFCList) Ops() func() uint64 {
	return sim.OpsOfCPUs([]*sim.CPU{s.combiner})
}

// Len returns the number of stored keys.
func (s *SimFCList) Len() int { return s.seq.Len() }
