package pimlist

import (
	"fmt"

	"pimds/internal/obs"
	"pimds/internal/sim"
)

// KindName maps the list protocol's message kinds to symbolic names for
// metric paths and trace events (install with sim.Engine.SetKindNamer).
func KindName(kind int) string {
	switch kind {
	case MsgContains:
		return "Contains"
	case MsgAdd:
		return "Add"
	case MsgRemove:
		return "Remove"
	case MsgResp:
		return "Resp"
	}
	return fmt.Sprintf("kind_%02d", kind)
}

// instrument wires the list into the engine's metrics registry. With
// metrics disabled every hook degrades to a nil no-op, so the hot path
// stays untouched. Combined-batch sizes (the paper's key combining
// statistic) record per traversal; totals and the current length export
// through a snapshot-time collector.
func (l *List) instrument(e *sim.Engine) {
	reg := e.Metrics()
	l.batchSize = reg.Histogram("pimlist/batch_size")
	pre := fmt.Sprintf("pimlist/%03d/", l.core.ID())
	reg.AddCollector(func(r *obs.Registry) {
		r.Gauge(pre + "batches").Set(int64(l.Batches))
		r.Gauge(pre + "served").Set(int64(l.Served))
		r.Gauge(pre + "len").Set(int64(l.seq.Len()))
	})
}
