// Package pimlist implements the PIM-managed linked-list of Section
// 4.1 on the discrete-event simulator: the list lives in one vault; CPU
// clients send operation requests to the vault's PIM core, which
// traverses the list locally and replies. Two variants are provided:
//
//   - naive: the core serves one request per traversal (Table 1 row 3);
//   - combining: the core drains its message buffer and serves the
//     whole batch in a single traversal, the flat-combining-inspired
//     optimization the paper proposes (Table 1 row 5).
//
// The package also provides virtual-time CPU baselines (fine-grained
// locks and flat combining) so simulations can reproduce all five rows
// of Table 1 and Figure 2 under identical workloads.
package pimlist

import (
	"pimds/internal/cds/seqlist"
	"pimds/internal/obs"
	"pimds/internal/sim"
)

// Message kinds for the list protocol.
const (
	MsgContains = iota + 1 // request: Key = key
	MsgAdd
	MsgRemove
	MsgResp // response: OK = result, Key echoed
)

// List is a PIM-managed linked-list living in a single vault.
type List struct {
	core      *sim.PIMCore
	seq       *seqlist.List
	combining bool

	// BatchLimit caps how many buffered requests one traversal may
	// serve when combining; 0 means unlimited. The paper's combiner
	// serves "all concurrent requests"; the cap exists for the
	// ablation study.
	BatchLimit int

	// Batches and Served count combining statistics.
	Batches uint64
	Served  uint64

	batchSize *obs.Histogram // combined-batch sizes (nil = disabled)

	ops  []seqlist.Op  // scratch
	msgs []sim.Message // scratch
}

// New creates a PIM-managed list on a fresh PIM core of e. If combining
// is true the core serves batches in single traversals, waiting just
// over one client round trip (2·Lmessage) before each pass so the whole
// set of closed-loop clients lands in the batch (see
// sim.PIMCore.ServiceDelay).
func New(e *sim.Engine, combining bool) *List {
	l := &List{seq: seqlist.New(), combining: combining}
	l.core = e.NewPIMCore(l.handle)
	if combining {
		l.core.ServiceDelay = 2*e.Config().Lmessage + sim.Nanosecond
	}
	l.instrument(e)
	return l
}

// CoreID returns the PIM core clients must send requests to.
func (l *List) CoreID() sim.CoreID { return l.core.ID() }

// Core exposes the underlying PIM core (stats, vault counters).
func (l *List) Core() *sim.PIMCore { return l.core }

// Len returns the number of keys currently stored.
func (l *List) Len() int { return l.seq.Len() }

// Keys returns the stored keys in ascending order (tests).
func (l *List) Keys() []int64 { return l.seq.Keys() }

// Preload inserts keys without charging simulation cost (initial
// population, before the simulation starts).
func (l *List) Preload(keys []int64) {
	for _, k := range keys {
		l.seq.AddKey(k)
	}
}

// opFor converts a request message to a sequential-list operation.
func opFor(m sim.Message) (seqlist.Op, bool) {
	switch m.Kind {
	case MsgContains:
		return seqlist.Op{Kind: seqlist.Contains, Key: m.Key}, true
	case MsgAdd:
		return seqlist.Op{Kind: seqlist.Add, Key: m.Key}, true
	case MsgRemove:
		return seqlist.Op{Kind: seqlist.Remove, Key: m.Key}, true
	default:
		return seqlist.Op{}, false
	}
}

// handle serves one request (naive) or one batch (combining).
func (l *List) handle(c *sim.PIMCore, m sim.Message) {
	l.msgs = l.msgs[:0]
	l.msgs = append(l.msgs, m)
	if l.combining {
		limit := l.BatchLimit - 1
		if l.BatchLimit == 0 {
			limit = -1
		}
		l.msgs = c.TakeQueued(l.msgs, limit)
	}

	l.ops = l.ops[:0]
	for _, req := range l.msgs {
		op, ok := opFor(req)
		if !ok {
			panic("pimlist: unknown request kind")
		}
		l.ops = append(l.ops, op)
	}

	l.seq.ResetSteps()
	var results []bool
	if l.combining {
		results = l.seq.ApplyBatch(l.ops)
	} else {
		results = []bool{l.seq.Apply(l.ops[0])}
	}

	// Charge the traversal: every node visit is one vault read.
	c.ReadN(int(l.seq.Steps()))
	for i, req := range l.msgs {
		// Mutations pay one vault write for the pointer splice.
		if (l.ops[i].Kind == seqlist.Add || l.ops[i].Kind == seqlist.Remove) && results[i] {
			c.Write()
		}
		c.Send(sim.Message{To: req.From, Kind: MsgResp, Key: req.Key, OK: results[i]})
		c.CountOp()
	}
	l.Batches++
	l.Served += uint64(len(l.msgs))
	l.batchSize.Observe(int64(len(l.msgs)))
}

// NewClient returns a closed-loop client that issues the operation
// stream produced by next (called once per request).
func (l *List) NewClient(e *sim.Engine, next func(seq uint64) seqlist.Op) *sim.Client {
	return sim.NewClient(e, func(c *sim.CPU, seq uint64) sim.Message {
		op := next(seq)
		kind := MsgContains
		switch op.Kind {
		case seqlist.Add:
			kind = MsgAdd
		case seqlist.Remove:
			kind = MsgRemove
		}
		return sim.Message{To: l.core.ID(), Kind: kind, Key: op.Key}
	})
}
