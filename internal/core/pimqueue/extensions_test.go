package pimqueue

import (
	"testing"

	"pimds/internal/sim"
)

// TestFatNodesCorrectness: with enqueue combining on, FIFO semantics
// and exactly-once delivery must be unchanged.
func TestFatNodesCorrectness(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 3, 64)
	q.FatNodes = true
	var enqs []*Client
	for i := 0; i < 4; i++ {
		enqs = append(enqs, q.NewClient(Enqueuer))
	}
	deq := q.NewClient(Dequeuer)
	var got []int64
	deq.OnDequeue = func(v int64) { got = append(got, v) }
	startAll(append(append([]*Client{}, enqs...), deq))
	e.RunUntil(1 * sim.Millisecond)
	for _, cl := range append(enqs, deq) {
		cl.Stop()
	}
	e.Run()

	seen := make(map[int64]int)
	for _, v := range got {
		seen[v]++
	}
	for _, v := range q.Drain() {
		seen[v]++
	}
	var total uint64
	for ci, cl := range enqs {
		total += cl.Enqueued
		for s := int64(0); s < int64(cl.Enqueued); s++ {
			if seen[int64(ci)<<32|s] != 1 {
				t.Fatalf("value (client %d, seq %d) seen %d times", ci, s, seen[int64(ci)<<32|s])
			}
		}
	}
	if uint64(len(seen)) != total {
		t.Fatalf("%d distinct values for %d enqueues", len(seen), total)
	}
	// Per-producer order at the single dequeuer.
	last := map[int64]int64{}
	for _, v := range got {
		p, s := v>>32, v&0xffffffff
		if prev, ok := last[p]; ok && s < prev {
			t.Fatalf("producer %d out of order: %d after %d", p, s, prev)
		}
		last[p] = s
	}
}

// TestFatNodesReduceWrites: combining must cut vault writes per enqueue
// when many enqueues are buffered.
func TestFatNodesReduceWrites(t *testing.T) {
	run := func(fat bool) float64 {
		e := sim.NewEngine(testConfig())
		q := New(e, 2, 1<<30)
		q.FatNodes = fat
		// Many enqueuers on one core ⇒ deep buffer ⇒ big fat nodes.
		var cls []*Client
		for i := 0; i < 12; i++ {
			cls = append(cls, q.NewClient(Enqueuer))
		}
		startAll(cls)
		e.RunUntil(500 * sim.Microsecond)
		qc := q.cores[0]
		return float64(qc.core.Vault().Writes) / float64(qc.Enqueues)
	}
	plain, fat := run(false), run(true)
	if plain < 0.99 {
		t.Errorf("plain writes/enq = %.2f, want ≈ 1", plain)
	}
	if fat > plain/2 {
		t.Errorf("fat writes/enq = %.2f, want well below plain %.2f", fat, plain)
	}
}

// TestFatNodesThroughput: cheaper enqueues mean the enqueue core
// sustains more ops per second.
func TestFatNodesThroughput(t *testing.T) {
	run := func(fat bool) float64 {
		e := sim.NewEngine(testConfig())
		q := New(e, 2, 1<<30)
		q.FatNodes = fat
		var cls []*Client
		var cpus []*sim.CPU
		for i := 0; i < 12; i++ {
			cl := q.NewClient(Enqueuer)
			cls = append(cls, cl)
			cpus = append(cpus, cl.CPU())
		}
		start := func() { startAll(cls) }
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 500*sim.Microsecond)
		return ops
	}
	plain, fat := run(false), run(true)
	if fat <= plain {
		t.Errorf("fat-node throughput %.4g should beat plain %.4g", fat, plain)
	}
}

// TestCPUDecidedSplit: footnote-4 mode — splits happen at the client's
// cadence even with an infinite core-side threshold.
func TestCPUDecidedSplit(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 4, 1<<30) // core itself would never split
	enq := q.NewClient(Enqueuer)
	enq.SplitEvery = 50
	enq.Start()
	e.RunUntil(300 * sim.Microsecond)
	enq.Stop()
	e.Run()

	var handoffs uint64
	for _, qc := range q.Cores() {
		handoffs += qc.Handoffs
	}
	if handoffs == 0 {
		t.Fatal("no handoffs despite SplitEvery=50")
	}
	// FIFO must survive the CPU-driven splits.
	vals := q.Drain()
	if uint64(len(vals)) != enq.Enqueued {
		t.Fatalf("drained %d, enqueued %d", len(vals), enq.Enqueued)
	}
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("FIFO violated at %d: %d", i, v)
		}
	}
	// Roughly one handoff per SplitEvery enqueues (notifications can
	// lag, so allow slack).
	want := enq.Enqueued / 50
	if handoffs < want/2 || handoffs > want*2 {
		t.Errorf("handoffs = %d for %d enqueues, want ≈ %d", handoffs, enq.Enqueued, want)
	}
}

// TestSplitMessageToNonOwnerIsIgnored: a stray MsgSplit must not panic
// or split anything at a non-owner.
func TestSplitMessageToNonOwnerIsIgnored(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 2, 1<<30)
	cpu := e.NewCPU(func(c *sim.CPU, m sim.Message) {})
	cpu.Exec(func(c *sim.CPU) {
		c.Send(sim.Message{To: q.cores[1].core.ID(), Kind: MsgSplit})
	})
	e.Run()
	if q.cores[1].Handoffs != 0 {
		t.Error("non-owner split should be a no-op")
	}
}

// TestSlowCPUOnlyHurtsBlockingScheme injects one client with delayed
// acknowledgements: the blocking notification scheme must lose
// substantial throughput while the non-blocking scheme is unaffected —
// the §5.1 argument for the non-blocking design.
func TestSlowCPUOnlyHurtsBlockingScheme(t *testing.T) {
	run := func(blocking bool, ackDelay sim.Time) float64 {
		e := sim.NewEngine(testConfig())
		q := New(e, 4, 64)
		q.BlockingNotify = blocking
		var enqs, deqs []*Client
		var cpus []*sim.CPU
		for i := 0; i < 6; i++ {
			enq := q.NewClient(Enqueuer)
			deq := q.NewClient(Dequeuer)
			enqs = append(enqs, enq)
			deqs = append(deqs, deq)
			cpus = append(cpus, enq.CPU(), deq.CPU())
		}
		enqs[0].AckDelay = ackDelay
		start := func() {
			startAll(enqs)
			e.After(100*sim.Microsecond, func() { startAll(deqs) })
		}
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), 200*sim.Microsecond, 1*sim.Millisecond)
		return ops
	}

	nbFast, nbSlow := run(false, 0), run(false, 10*sim.Microsecond)
	blFast, blSlow := run(true, 0), run(true, 10*sim.Microsecond)

	if nbSlow < nbFast*0.95 {
		t.Errorf("non-blocking scheme degraded by a slow CPU: %.4g vs %.4g", nbSlow, nbFast)
	}
	if blSlow > blFast/2 {
		t.Errorf("blocking scheme should collapse under a slow CPU: %.4g vs %.4g", blSlow, blFast)
	}
}
