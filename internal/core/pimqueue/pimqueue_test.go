package pimqueue

import (
	"testing"
	"time"

	"pimds/internal/model"
	"pimds/internal/sim"
)

func testConfig() sim.Config {
	return sim.ConfigFromParams(model.DefaultParams())
}

// startAll starts every client.
func startAll(cls []*Client) {
	for _, cl := range cls {
		cl.Start()
	}
}

func TestSingleClientFIFO(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 1, 1<<30) // one core, never splits
	cl := q.NewClient(Mixed)
	var got []int64
	cl.OnDequeue = func(v int64) { got = append(got, v) }
	cl.Start()
	e.RunUntil(100 * sim.Microsecond)
	cl.Stop()
	e.Run() // quiesce

	// Mixed alternates enq/deq on an initially empty queue, so every
	// dequeue returns the value enqueued just before it: values arrive
	// in sequence order.
	if len(got) < 50 {
		t.Fatalf("only %d dequeues completed", len(got))
	}
	for i, v := range got {
		if v != int64(i) { // client 0: value = seq
			t.Fatalf("dequeue #%d = %d (client %d seq %d), want seq %d",
				i, v, v>>32, v&0xffffffff, i)
		}
	}
	if q.Len() > 1 {
		t.Errorf("queue length %d at quiescence, want ≤ 1", q.Len())
	}
}

func TestEmptyDequeue(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 2, 8)
	cl := q.NewClient(Dequeuer)
	cl.Start()
	e.RunUntil(10 * sim.Microsecond)
	if cl.Empty == 0 {
		t.Error("dequeuer on empty queue never saw MsgDeqEmpty")
	}
	if cl.Dequeued != 0 {
		t.Error("dequeuer got values from an empty queue")
	}
}

// TestSegmentHandoff: a small threshold must spread segments over
// cores and move the enqueue owner; FIFO order must survive across
// segment boundaries.
func TestSegmentHandoff(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 4, 10)
	enq := q.NewClient(Enqueuer)
	enq.Start()
	e.RunUntil(200 * sim.Microsecond)
	enq.Stop()
	e.Run() // quiesce

	var handoffs uint64
	for _, qc := range q.Cores() {
		handoffs += qc.Handoffs
	}
	if handoffs == 0 {
		t.Fatal("no segment handoffs with threshold 10")
	}
	if enq.Retries == 0 && enq.Discovered == 0 {
		t.Log("note: no retries — owner notifications always arrived in time")
	}

	vals := q.Drain()
	if uint64(len(vals)) != enq.Enqueued {
		t.Fatalf("drained %d values, enqueued %d", len(vals), enq.Enqueued)
	}
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("FIFO violated at %d: got value %d", i, v)
		}
	}
}

// TestExactlyOnceUnderConcurrency: several enqueuers and dequeuers with
// segment handoffs; every successfully enqueued value must be dequeued
// or still queued exactly once, and per-producer order must hold.
func TestExactlyOnceUnderConcurrency(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		e := sim.NewEngine(testConfig())
		q := New(e, 4, 16)
		q.BlockingNotify = blocking

		var enqs, deqs []*Client
		type obs struct{ vals []int64 }
		var observed []*obs
		for i := 0; i < 3; i++ {
			enqs = append(enqs, q.NewClient(Enqueuer))
		}
		for i := 0; i < 3; i++ {
			cl := q.NewClient(Dequeuer)
			o := &obs{}
			cl.OnDequeue = func(v int64) { o.vals = append(o.vals, v) }
			deqs = append(deqs, cl)
			observed = append(observed, o)
		}
		startAll(enqs)
		startAll(deqs)
		e.RunUntil(2 * sim.Millisecond)
		for _, cl := range append(append([]*Client{}, enqs...), deqs...) {
			cl.Stop()
		}
		e.Run() // quiesce

		// Count every value exactly once across observers + residue.
		seen := make(map[int64]int)
		for _, o := range observed {
			for _, v := range o.vals {
				seen[v]++
			}
		}
		for _, v := range q.Drain() {
			seen[v]++
		}
		var totalEnq uint64
		for ci, cl := range enqs {
			totalEnq += cl.Enqueued
			for s := int64(0); s < int64(cl.Enqueued); s++ {
				v := int64(ci)<<32 | s
				if seen[v] != 1 {
					t.Errorf("blocking=%v: value (client %d, seq %d) seen %d times", blocking, ci, s, seen[v])
				}
			}
		}
		if uint64(len(seen)) != totalEnq {
			t.Errorf("blocking=%v: %d distinct values for %d enqueues", blocking, len(seen), totalEnq)
		}
		// Per-producer order within each dequeuer.
		for di, o := range observed {
			last := map[int64]int64{}
			for _, v := range o.vals {
				p, s := v>>32, v&0xffffffff
				if prev, ok := last[p]; ok && s < prev {
					t.Errorf("blocking=%v: dequeuer %d saw producer %d seq %d after %d", blocking, di, p, s, prev)
				}
				last[p] = s
			}
		}
		if blocking {
			var stashed uint64
			for _, qc := range q.Cores() {
				stashed += qc.Stashed
			}
			if stashed == 0 {
				t.Log("note: blocking scheme never had to stash (acks won every race)")
			}
		}
	}
}

// TestGlobalFIFOWithSingleDequeuer: one dequeuer observes the global
// FIFO order: the exact prefix of enqueue completion order. With one
// enqueuer this is total order.
func TestGlobalFIFOWithSingleDequeuer(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 3, 8)
	enq := q.NewClient(Enqueuer)
	deq := q.NewClient(Dequeuer)
	var got []int64
	deq.OnDequeue = func(v int64) { got = append(got, v) }
	enq.Start()
	e.RunUntil(50 * sim.Microsecond) // build a backlog
	deq.Start()
	e.RunUntil(1 * sim.Millisecond)

	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
	if len(got) < 100 {
		t.Fatalf("only %d dequeues", len(got))
	}
}

// TestPipelinedThroughputHandChecked pins the Section 5.2 analysis: in
// the long-queue regime with saturating dequeuers, the dequeue core
// sustains one op per Lpim (33.3M ops/s at default parameters); without
// pipelining it drops to one per Lpim + Lmessage.
func TestPipelinedThroughputHandChecked(t *testing.T) {
	run := func(pipelining bool) float64 {
		e := sim.NewEngine(testConfig())
		q := New(e, 2, 1<<30)
		q.Pipelining = pipelining
		vals := make([]int64, 1<<20)
		for i := range vals {
			vals[i] = int64(i)
		}
		q.Preload(vals)
		var cls []*Client
		for i := 0; i < 12; i++ {
			cls = append(cls, q.NewClient(Dequeuer))
		}
		startAll(cls)
		var cpus []*sim.CPU
		for _, cl := range cls {
			cpus = append(cpus, cl.CPU())
		}
		_, ops := sim.Measure(e, func() {}, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 500*sim.Microsecond)
		return ops
	}

	pip := run(true)
	if want := 1e9 / 30; pip < want*0.95 || pip > want*1.05 {
		t.Errorf("pipelined throughput = %.4g ops/s, want ≈ %.4g (1/Lpim)", pip, want)
	}
	nopip := run(false)
	if want := 1e9 / 120; nopip < want*0.9 || nopip > want*1.1 {
		t.Errorf("non-pipelined throughput = %.4g ops/s, want ≈ %.4g (1/(Lpim+Lmessage))", nopip, want)
	}
}

// TestShortQueueHalvesThroughput: when one segment serves both ends,
// enqueues and dequeues share one core and total throughput is half the
// long-queue case (end of Section 5.2).
func TestShortQueueHalvesThroughput(t *testing.T) {
	run := func(cores int) float64 {
		e := sim.NewEngine(testConfig())
		q := New(e, cores, 1<<30) // never splits: single segment
		// With 2+ cores Preload moves the enqueue segment away (long
		// queue); with 1 core both ends share the segment (short).
		vals := make([]int64, 1<<20)
		for i := range vals {
			vals[i] = int64(i)
		}
		q.Preload(vals)
		var cls []*Client
		for i := 0; i < 10; i++ {
			cls = append(cls, q.NewClient(Enqueuer))
			cls = append(cls, q.NewClient(Dequeuer))
		}
		startAll(cls)
		var cpus []*sim.CPU
		for _, cl := range cls {
			cpus = append(cpus, cl.CPU())
		}
		_, ops := sim.Measure(e, func() {}, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 500*sim.Microsecond)
		return ops
	}
	long, short := run(2), run(1)
	ratio := long / short
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("long/short ratio = %.2f (long %.4g, short %.4g), want ≈ 2", ratio, long, short)
	}
}

// TestSimulationMatchesQueueAnalysis: the three Section 5.2 throughput
// bounds, measured in virtual time. PIM ≈ 2× FC ≈ 3× F&A.
func TestSimulationMatchesQueueAnalysis(t *testing.T) {
	pr := model.DefaultParams()
	cfg := sim.ConfigFromParams(pr)

	// PIM queue, dequeue side saturated (the paper analyzes one side).
	pimOps := func() float64 {
		e := sim.NewEngine(cfg)
		q := New(e, 2, 1<<30)
		vals := make([]int64, 1<<20)
		for i := range vals {
			vals[i] = int64(i)
		}
		q.Preload(vals)
		var cls []*Client
		for i := 0; i < 12; i++ {
			cls = append(cls, q.NewClient(Dequeuer))
		}
		startAll(cls)
		var cpus []*sim.CPU
		for _, cl := range cls {
			cpus = append(cpus, cl.CPU())
		}
		_, ops := sim.Measure(e, func() {}, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 500*sim.Microsecond)
		return ops
	}()

	faaOps := func() float64 {
		e := sim.NewEngine(cfg)
		// Dequeue side only, like the PIM measurement.
		s := NewSimFAAQueue(e, 1, false)
		_, ops := sim.Measure(e, func() {}, s.Ops(), 50*sim.Microsecond, 500*sim.Microsecond)
		return ops
	}()

	fcOps := func() float64 {
		e := sim.NewEngine(cfg)
		s := NewSimFCQueue(e, 24, false)
		_, ops := sim.Measure(e, func() {}, s.Ops(), 50*sim.Microsecond, 500*sim.Microsecond)
		// Both sides run; the paper's bound is per side.
		return ops / 2
	}()

	if got, want := pimOps, model.QueuePIM(pr, model.QueueConfig{P: 12}); got < want*0.9 || got > want*1.1 {
		t.Errorf("PIM queue: %.4g ops/s, model %.4g", got, want)
	}
	if got, want := faaOps, model.QueueFAA(pr, model.QueueConfig{P: 12}); got < want*0.9 || got > want*1.1 {
		t.Errorf("F&A queue: %.4g ops/s, model %.4g", got, want)
	}
	if got, want := fcOps, model.QueueFC(pr, model.QueueConfig{P: 24}); got < want*0.9 || got > want*1.1 {
		t.Errorf("FC queue: %.4g ops/s, model %.4g", got, want)
	}
	if r := pimOps / fcOps; r < 1.8 || r > 2.2 {
		t.Errorf("PIM/FC = %.2f, want ≈ 2", r)
	}
	if r := pimOps / faaOps; r < 2.7 || r > 3.3 {
		t.Errorf("PIM/F&A = %.2f, want ≈ 3", r)
	}
}

func TestBadConstructionPanics(t *testing.T) {
	e := sim.NewEngine(testConfig())
	for _, c := range []struct{ n, th int }{{0, 5}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) should panic", c.n, c.th)
				}
			}()
			New(e, c.n, c.th)
		}()
	}
}

// TestDeterminism: the whole queue protocol is deterministic.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, sim.Time) {
		e := sim.NewEngine(testConfig())
		q := New(e, 4, 16)
		var cls []*Client
		for i := 0; i < 3; i++ {
			cls = append(cls, q.NewClient(Enqueuer), q.NewClient(Dequeuer))
		}
		startAll(cls)
		e.RunUntil(1 * sim.Millisecond)
		var enq, deq uint64
		for _, cl := range cls {
			enq += cl.Enqueued
			deq += cl.Dequeued
		}
		return enq, deq, e.Now()
	}
	e1, d1, t1 := run()
	e2, d2, t2 := run()
	if e1 != e2 || d1 != d2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%d,%v) vs (%d,%d,%v)", e1, d1, t1, e2, d2, t2)
	}
}

// TestLatencyMatchesClosedForm: the measured queue latency under
// saturation matches the model's p·Lpim round-robin prediction.
func TestLatencyMatchesClosedForm(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 2, 1<<30)
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = int64(i)
	}
	q.Preload(vals)
	var cls []*Client
	var cpus []*sim.CPU
	for i := 0; i < 12; i++ {
		cl := q.NewClient(Dequeuer)
		cls = append(cls, cl)
		cpus = append(cpus, cl.CPU())
	}
	start := func() { startAll(cls) }
	sim.Measure(e, start, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 200*sim.Microsecond)

	want := model.QueueLatency(model.DefaultParams(), model.QueueConfig{P: 12})
	for i, cl := range cls[:3] {
		mean := time.Duration(cl.Latency.Mean()/1000) * time.Nanosecond
		if mean < want*9/10 || mean > want*11/10 {
			t.Errorf("client %d mean latency = %v, model %v", i, mean, want)
		}
	}
}
