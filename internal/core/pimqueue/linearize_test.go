package pimqueue

import (
	"testing"

	"pimds/internal/linearize"
	"pimds/internal/sim"
)

// TestLinearizability records a real simulated history — concurrent
// enqueuers and dequeuers across segment handoffs, rejections and
// rediscovery — and verifies it against the sequential FIFO
// specification with the Wing & Gong checker.
func TestLinearizability(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		e := sim.NewEngine(testConfig())
		q := New(e, 3, 8) // tiny threshold: lots of handoffs
		q.BlockingNotify = blocking

		var history []linearize.Op
		record := func(client int) func(start, end sim.Time, k int, v int64, ok bool) {
			return func(start, end sim.Time, k int, v int64, ok bool) {
				action := linearize.ActEnqueue
				if k == MsgDeq {
					action = linearize.ActDequeue
				}
				op := linearize.Op{Start: int64(start), End: int64(end), Client: client, Action: action, OK: ok}
				if action == linearize.ActEnqueue {
					op.Input = v
				} else {
					op.Output = v
				}
				history = append(history, op)
			}
		}
		var cls []*Client
		for i := 0; i < 2; i++ {
			enq := q.NewClient(Enqueuer)
			enq.OnComplete = record(len(cls))
			deq := q.NewClient(Dequeuer)
			deq.OnComplete = record(len(cls) + 1)
			cls = append(cls, enq, deq)
		}
		startAll(cls)
		e.RunUntil(60 * sim.Microsecond)
		for _, cl := range cls {
			cl.Stop()
		}
		e.Run()

		if len(history) < 100 {
			t.Fatalf("blocking=%v: only %d ops recorded", blocking, len(history))
		}
		if !linearize.Check(linearize.QueueSpec{}, history) {
			t.Errorf("blocking=%v: history of %d ops is not linearizable", blocking, len(history))
		}
	}
}

// TestLinearizabilityCheckerCatchesCorruption: mutate one recorded
// response and the checker must reject — guarding against a vacuously
// passing checker.
func TestLinearizabilityCheckerCatchesCorruption(t *testing.T) {
	e := sim.NewEngine(testConfig())
	q := New(e, 2, 16)
	var history []linearize.Op
	enq := q.NewClient(Enqueuer)
	enq.OnComplete = func(start, end sim.Time, k int, v int64, ok bool) {
		history = append(history, linearize.Op{
			Start: int64(start), End: int64(end), Client: 1,
			Action: linearize.ActEnqueue, Input: v, OK: ok,
		})
	}
	deq := q.NewClient(Dequeuer)
	deq.OnComplete = func(start, end sim.Time, k int, v int64, ok bool) {
		history = append(history, linearize.Op{
			Start: int64(start), End: int64(end), Client: 2,
			Action: linearize.ActDequeue, Output: v, OK: ok,
		})
	}
	enq.Start()
	deq.Start()
	e.RunUntil(40 * sim.Microsecond)
	enq.Stop()
	deq.Stop()
	e.Run()

	if !linearize.Check(linearize.QueueSpec{}, history) {
		t.Fatal("clean history should linearize")
	}
	// Corrupt: swap the outputs of the two last successful dequeues.
	var idx []int
	for i, op := range history {
		if op.Action == linearize.ActDequeue && op.OK {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		t.Skip("not enough dequeues to corrupt")
	}
	a, b := idx[len(idx)-2], idx[len(idx)-1]
	if history[a].Output == history[b].Output {
		t.Fatal("test needs distinct outputs")
	}
	history[a].Output, history[b].Output = history[b].Output, history[a].Output
	if linearize.Check(linearize.QueueSpec{}, history) {
		t.Error("corrupted history should not linearize")
	}
}
