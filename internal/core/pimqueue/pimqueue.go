// Package pimqueue implements the PIM-managed FIFO queue of Section 5
// (Algorithm 1) on the discrete-event simulator: the queue is a chain
// of segments spread across vaults; one PIM core holds the enqueue
// segment and one holds the dequeue segment, so the two ends proceed in
// parallel, and each core pipelines its replies (Section 5.2) — it
// starts the next request without waiting for the previous reply to be
// delivered.
//
// The package includes both CPU-notification schemes the paper
// discusses for segment handoff (blocking acknowledgements vs.
// non-blocking notify-and-continue with client re-discovery), the
// segment-length threshold, and a pipelining on/off switch, all as
// ablations. Virtual-time CPU baselines (F&A queue and flat-combining
// queue) reproduce the Section 5.2 comparison.
package pimqueue

import (
	"fmt"
	"sort"

	"pimds/internal/obs"
	"pimds/internal/sim"
)

// Message kinds for the queue protocol.
const (
	MsgEnq = iota + 1 // request: Key = value
	MsgDeq
	MsgEnqOK    // response
	MsgEnqFail  // not the enqueue-segment owner: rediscover and retry
	MsgDeqOK    // response: Key = value
	MsgDeqEmpty // queue was empty
	MsgDeqFail  // not the dequeue-segment owner: rediscover and retry
	MsgNewEnqSeg
	MsgNewDeqSeg
	MsgEnqOwner // notification: From now owns the enqueue segment
	MsgDeqOwner // notification: From now owns the dequeue segment
	MsgOwnerAck // client → core, blocking scheme only
	MsgFindEnq  // client → every core: who owns the enqueue segment?
	MsgFindDeq
	MsgFindResp // core → client: OK = I own it; Val = 1 enq / 2 deq
	MsgSplit    // client → core: hand off the enqueue segment now (footnote 4)
)

// segment is one contiguous chunk of the queue, resident in its
// creating core's vault. seqno is a global creation counter: segments
// are consumed in exactly the order they were created, which Drain and
// the tests rely on.
type segment struct {
	seqno      uint64
	vals       []int64
	head       int // index of the oldest un-dequeued value
	nextSegCid sim.CoreID
}

func (s *segment) count() int { return len(s.vals) - s.head }

// QueueCore is one PIM core participating in the queue.
type QueueCore struct {
	q    *Queue
	idx  int
	core *sim.PIMCore

	enqSeg *segment
	deqSeg *segment
	segs   []*segment // local FIFO of segments created by this core

	// Blocking notification scheme state: while waiting for acks the
	// core stashes its data requests instead of serving them.
	acksWanted int
	acksGot    int
	stash      []sim.Message

	// Stats.
	Enqueues  uint64
	Dequeues  uint64
	Handoffs  uint64
	Failed    uint64
	Stashed   uint64
	SegsMade  uint64
	EmptyDeqs uint64
}

// Core exposes the underlying PIM core.
func (qc *QueueCore) Core() *sim.PIMCore { return qc.core }

// Queue is the PIM-managed FIFO queue.
type Queue struct {
	eng     *sim.Engine
	cores   []*QueueCore
	clients []*Client

	// Threshold is the segment length at which the enqueue segment is
	// handed to the next core (Algorithm 1 line 13).
	Threshold int

	// Pipelining enables the Section 5.2 optimization. When false,
	// the core stalls for one message latency after every reply,
	// modeling a core that waits for delivery before proceeding.
	Pipelining bool

	// BlockingNotify selects the notification scheme for segment
	// handoff: true = notify CPUs and wait for all acknowledgements
	// before serving further requests; false (default) = notify and
	// continue, clients re-discover the owner on failure.
	BlockingNotify bool

	// FatNodes enables the §5.1 enqueue-combining optimization: the
	// core drains all buffered enqueue requests and stores their
	// values as one "fat" array node, paying one vault write per
	// cache line (FatNodeWidth values) instead of one per value.
	FatNodes bool

	// FatNodeWidth is how many values share one vault write when
	// FatNodes is on (default 8 — a 64-byte line of int64s).
	FatNodeWidth int

	segSeq uint64 // creation counter for segment seqnos

	batchSize *obs.Histogram // fat-node combined-batch sizes (nil = disabled)
}

// New creates a PIM queue spread over n fresh PIM cores. The queue
// starts with one empty segment on core 0 acting as both the enqueue
// and the dequeue segment. threshold is the segment-split length.
func New(e *sim.Engine, n, threshold int) *Queue {
	if n < 1 || threshold < 1 {
		panic(fmt.Sprintf("pimqueue: need n (%d) >= 1 and threshold (%d) >= 1", n, threshold))
	}
	q := &Queue{eng: e, Threshold: threshold, Pipelining: true}
	for i := 0; i < n; i++ {
		qc := &QueueCore{q: q, idx: i}
		qc.core = e.NewPIMCore(qc.handle)
		q.cores = append(q.cores, qc)
	}
	first := &segment{}
	q.segSeq++
	q.cores[0].enqSeg = first
	q.cores[0].deqSeg = first
	q.cores[0].segs = append(q.cores[0].segs, first)
	q.instrument()
	return q
}

// Preload fills the queue with vals at no simulated cost, putting them
// all in the initial segment. With two or more cores it also moves the
// enqueue segment to core 1, establishing the paper's long-queue regime
// in which the two ends are served by different cores. Call before the
// simulation starts.
func (q *Queue) Preload(vals []int64) {
	first := q.cores[0].segs[0]
	first.vals = append(first.vals, vals...)
	if len(q.cores) >= 2 {
		next := q.cores[1]
		first.nextSegCid = next.core.ID()
		q.cores[0].enqSeg = nil
		seg := &segment{seqno: q.segSeq}
		q.segSeq++
		next.enqSeg = seg
		next.segs = append(next.segs, seg)
		for _, cl := range q.clients {
			cl.enqOwner = next.core.ID()
		}
	}
}

// Cores returns the participating cores (stats, tests).
func (q *Queue) Cores() []*QueueCore { return q.cores }

// EnqOwner returns the index of the core currently holding the enqueue
// segment, or -1 mid-handoff (tests, at quiescence).
func (q *Queue) EnqOwner() int {
	for i, qc := range q.cores {
		if qc.enqSeg != nil {
			return i
		}
	}
	return -1
}

// DeqOwner is the dequeue-side analogue of EnqOwner.
func (q *Queue) DeqOwner() int {
	for i, qc := range q.cores {
		if qc.deqSeg != nil {
			return i
		}
	}
	return -1
}

// Len returns the total number of queued values (quiescence).
func (q *Queue) Len() int {
	total := 0
	for _, qc := range q.cores {
		for _, s := range qc.segs {
			total += s.count()
		}
	}
	return total
}

// Drain returns all queued values in FIFO order without charging
// simulation cost (quiescence, tests). Segments are consumed in
// creation order, so sorting live segments by seqno yields FIFO order.
func (q *Queue) Drain() []int64 {
	var live []*segment
	for _, qc := range q.cores {
		live = append(live, qc.segs...)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seqno < live[j].seqno })
	var out []int64
	for _, s := range live {
		out = append(out, s.vals[s.head:]...)
	}
	return out
}

// reply sends a response and applies the pipelining switch.
func (qc *QueueCore) reply(c *sim.PIMCore, m sim.Message) {
	c.Send(m)
	if !qc.q.Pipelining {
		// Without pipelining the core blocks until the reply is
		// delivered.
		c.Compute(qc.q.eng.Config().Lmessage)
	}
}

// handle is the PIM-core program: Algorithm 1 plus notifications.
func (qc *QueueCore) handle(c *sim.PIMCore, m sim.Message) {
	switch m.Kind {
	case MsgEnq, MsgDeq, MsgFindEnq, MsgFindDeq:
		if qc.acksWanted > qc.acksGot {
			// Blocking scheme: hold data traffic until every client
			// acknowledged the ownership change.
			qc.stash = append(qc.stash, m)
			qc.Stashed++
			return
		}
	}
	switch m.Kind {
	case MsgEnq:
		qc.handleEnq(c, m)
	case MsgDeq:
		qc.handleDeq(c, m)
	case MsgSplit:
		// The paper's footnote-4 alternative: a CPU, not the core's
		// own threshold, decides when to create a new segment.
		c.Local()
		if qc.enqSeg != nil {
			qc.splitEnqSeg(c)
		}
	case MsgNewEnqSeg:
		qc.handleNewEnqSeg(c)
	case MsgNewDeqSeg:
		qc.handleNewDeqSeg(c)
	case MsgOwnerAck:
		qc.acksGot++
		if qc.acksGot == qc.acksWanted {
			qc.acksWanted, qc.acksGot = 0, 0
			stash := qc.stash
			qc.stash = nil
			for _, sm := range stash {
				qc.handle(c, sm)
			}
		}
	case MsgFindEnq:
		c.Local()
		qc.reply(c, sim.Message{To: m.From, Kind: MsgFindResp, Val: 1, OK: qc.enqSeg != nil})
	case MsgFindDeq:
		c.Local()
		qc.reply(c, sim.Message{To: m.From, Kind: MsgFindResp, Val: 2, OK: qc.deqSeg != nil})
	default:
		panic(fmt.Sprintf("pimqueue: core %d: unknown message kind %d", qc.idx, m.Kind))
	}
}

// handleEnq is Algorithm 1's enq(cid, u).
func (qc *QueueCore) handleEnq(c *sim.PIMCore, m sim.Message) {
	if qc.enqSeg == nil {
		c.Local()
		qc.Failed++
		qc.reply(c, sim.Message{To: m.From, Kind: MsgEnqFail})
		return
	}
	if qc.q.FatNodes {
		qc.handleEnqFat(c, m)
	} else {
		// Append the node: one vault write for the node, two L1
		// accesses to read and update the segment's head pointer and
		// count.
		qc.enqSeg.vals = append(qc.enqSeg.vals, m.Key)
		c.Write()
		c.Local()
		c.Local()
		qc.Enqueues++
		c.CountOp()
		qc.reply(c, sim.Message{To: m.From, Kind: MsgEnqOK})
	}

	if qc.enqSeg != nil && qc.enqSeg.count() > qc.q.Threshold {
		qc.splitEnqSeg(c)
	}
}

// splitEnqSeg hands the enqueue segment to the next core (round robin)
// — Algorithm 1 lines 13-17.
func (qc *QueueCore) splitEnqSeg(c *sim.PIMCore) {
	next := qc.q.cores[(qc.idx+1)%len(qc.q.cores)]
	c.Send(sim.Message{To: next.core.ID(), Kind: MsgNewEnqSeg})
	qc.enqSeg.nextSegCid = next.core.ID()
	c.Local()
	qc.enqSeg = nil
	qc.Handoffs++
}

// handleEnqFat serves m plus every buffered enqueue as one fat node
// (§5.1): all values are appended together, paying one vault write per
// FatNodeWidth values. Buffered non-enqueue messages are re-dispatched
// afterwards in arrival order.
func (qc *QueueCore) handleEnqFat(c *sim.PIMCore, m sim.Message) {
	batch := c.TakeQueued([]sim.Message{m}, -1)
	width := qc.q.FatNodeWidth
	if width < 1 {
		width = 8
	}
	var others []sim.Message
	values := 0
	for _, bm := range batch {
		if bm.Kind != MsgEnq {
			others = append(others, bm)
			continue
		}
		qc.enqSeg.vals = append(qc.enqSeg.vals, bm.Key)
		values++
		if (values-1)%width == 0 { // first value of each fat node
			c.Write()
		}
		qc.Enqueues++
		c.CountOp()
		qc.reply(c, sim.Message{To: bm.From, Kind: MsgEnqOK})
	}
	qc.q.batchSize.Observe(int64(values))
	c.Local()
	c.Local()
	for _, om := range others {
		qc.handle(c, om)
	}
}

// handleDeq is Algorithm 1's deq(cid).
func (qc *QueueCore) handleDeq(c *sim.PIMCore, m sim.Message) {
	if qc.deqSeg == nil {
		c.Local()
		qc.Failed++
		qc.reply(c, sim.Message{To: m.From, Kind: MsgDeqFail})
		return
	}
	if qc.deqSeg.count() > 0 {
		// One vault read for the node, two L1 accesses for the tail
		// pointer (Section 5.2's cost accounting).
		v := qc.deqSeg.vals[qc.deqSeg.head]
		qc.deqSeg.head++
		c.Read()
		c.Local()
		c.Local()
		qc.Dequeues++
		c.CountOp()
		qc.reply(c, sim.Message{To: m.From, Kind: MsgDeqOK, Key: v})
		return
	}
	if qc.deqSeg == qc.enqSeg {
		// The whole queue is empty (Algorithm 1 line 31).
		c.Local()
		qc.EmptyDeqs++
		c.CountOp()
		qc.reply(c, sim.Message{To: m.From, Kind: MsgDeqEmpty})
		return
	}
	// This segment is exhausted; pass the dequeue role to the core
	// holding the next segment and tell the client to retry.
	c.Send(sim.Message{To: qc.deqSeg.nextSegCid, Kind: MsgNewDeqSeg})
	qc.retireDeqSeg()
	qc.deqSeg = nil
	qc.Handoffs++
	c.Local()
	qc.Failed++
	qc.reply(c, sim.Message{To: m.From, Kind: MsgDeqFail})
}

// retireDeqSeg drops the exhausted dequeue segment from the local
// segment FIFO.
func (qc *QueueCore) retireDeqSeg() {
	for i, s := range qc.segs {
		if s == qc.deqSeg {
			qc.segs = append(qc.segs[:i], qc.segs[i+1:]...)
			qc.core.Vault().RecordFree()
			return
		}
	}
}

// handleNewEnqSeg is Algorithm 1's newEnqSeg().
func (qc *QueueCore) handleNewEnqSeg(c *sim.PIMCore) {
	qc.enqSeg = &segment{seqno: qc.q.segSeq}
	qc.q.segSeq++
	qc.segs = append(qc.segs, qc.enqSeg)
	qc.core.Vault().RecordAlloc()
	qc.SegsMade++
	c.Write() // allocate/initialize the segment in the vault
	qc.notifyClients(c, MsgEnqOwner)
}

// handleNewDeqSeg is Algorithm 1's newDeqSeg().
func (qc *QueueCore) handleNewDeqSeg(c *sim.PIMCore) {
	if len(qc.segs) == 0 {
		panic(fmt.Sprintf("pimqueue: core %d asked for a dequeue segment but has none", qc.idx))
	}
	qc.deqSeg = qc.segs[0]
	c.Local()
	qc.notifyClients(c, MsgDeqOwner)
}

// notifyClients tells every client CPU about an ownership change, and
// in the blocking scheme arms the ack barrier.
func (qc *QueueCore) notifyClients(c *sim.PIMCore, kind int) {
	for _, cl := range qc.q.clients {
		c.Send(sim.Message{To: cl.cpu.ID(), Kind: kind})
	}
	if qc.q.BlockingNotify {
		qc.acksWanted += len(qc.q.clients)
	}
}
