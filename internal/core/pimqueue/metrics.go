package pimqueue

import (
	"fmt"

	"pimds/internal/obs"
)

// KindName maps the queue protocol's message kinds to symbolic names
// for metric paths and trace events (install with
// sim.Engine.SetKindNamer).
func KindName(kind int) string {
	switch kind {
	case MsgEnq:
		return "Enq"
	case MsgDeq:
		return "Deq"
	case MsgEnqOK:
		return "EnqOK"
	case MsgEnqFail:
		return "EnqFail"
	case MsgDeqOK:
		return "DeqOK"
	case MsgDeqEmpty:
		return "DeqEmpty"
	case MsgDeqFail:
		return "DeqFail"
	case MsgNewEnqSeg:
		return "NewEnqSeg"
	case MsgNewDeqSeg:
		return "NewDeqSeg"
	case MsgEnqOwner:
		return "EnqOwner"
	case MsgDeqOwner:
		return "DeqOwner"
	case MsgOwnerAck:
		return "OwnerAck"
	case MsgFindEnq:
		return "FindEnq"
	case MsgFindDeq:
		return "FindDeq"
	case MsgFindResp:
		return "FindResp"
	case MsgSplit:
		return "Split"
	}
	return fmt.Sprintf("kind_%02d", kind)
}

// instrument wires the queue into the engine's metrics registry (nil
// registry = every hook is a no-op): fat-node combined-batch sizes
// record per pass, and a snapshot-time collector exports per-core
// segment-protocol counters plus the clients' retry/rediscovery
// totals.
func (q *Queue) instrument() {
	reg := q.eng.Metrics()
	q.batchSize = reg.Histogram("pimqueue/enq_batch")
	reg.AddCollector(func(r *obs.Registry) {
		for i, qc := range q.cores {
			pre := fmt.Sprintf("pimqueue/core/%03d/", i)
			r.Gauge(pre + "enqueues").Set(int64(qc.Enqueues))
			r.Gauge(pre + "dequeues").Set(int64(qc.Dequeues))
			r.Gauge(pre + "handoffs").Set(int64(qc.Handoffs))
			r.Gauge(pre + "failed").Set(int64(qc.Failed))
			r.Gauge(pre + "stashed").Set(int64(qc.Stashed))
			r.Gauge(pre + "segs_made").Set(int64(qc.SegsMade))
			r.Gauge(pre + "empty_deqs").Set(int64(qc.EmptyDeqs))
		}
		var retries, discovered uint64
		for _, cl := range q.clients {
			retries += cl.Retries
			discovered += cl.Discovered
		}
		r.Gauge("pimqueue/client_retries").Set(int64(retries))
		r.Gauge("pimqueue/rediscoveries").Set(int64(discovered))
		r.Gauge("pimqueue/len").Set(int64(q.Len()))
	})
}
