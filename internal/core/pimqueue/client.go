package pimqueue

import (
	"fmt"

	"pimds/internal/sim"
	"pimds/internal/stats"
)

// Role selects what a queue client does in its closed loop.
type Role int

// Client roles.
const (
	Enqueuer Role = iota // only enqueues
	Dequeuer             // only dequeues
	Mixed                // alternates enqueue / dequeue
)

// Client is a closed-loop CPU client of the PIM queue. It tracks its
// belief of which cores own the enqueue and dequeue segments, updated
// by owner notifications; when a request fails because the belief was
// stale, it either retries at the newly learned owner or broadcasts a
// discovery query to every core (the paper's non-blocking scheme).
type Client struct {
	q    *Queue
	cpu  *sim.CPU
	idx  int
	role Role

	enqOwner sim.CoreID
	deqOwner sim.CoreID

	nextEnq   bool  // Mixed role: alternate
	seq       int64 // per-client enqueue sequence number
	searching int   // 0 = no, 1 = enq, 2 = deq
	negatives int   // discovery replies saying "not me"
	stopped   bool

	// AckDelay, when positive, makes this client a "slow CPU": it
	// withholds ownership acknowledgements (blocking scheme) for this
	// long — the failure mode the paper gives for preferring the
	// non-blocking notification scheme ("if there is a slow CPU core
	// that doesn't reply in time, the PIM core has to wait for it and
	// therefore other CPUs cannot have their requests executed").
	AckDelay sim.Time

	// SplitEvery, when positive, implements the paper's footnote-4
	// alternative: this client asks the enqueue core to create a new
	// segment after every SplitEvery successful enqueues, instead of
	// relying on the core's own length threshold.
	SplitEvery int
	sinceSplit int

	issuedAt sim.Time

	// Latency records response times (first issue to success,
	// including failure/rediscovery retries) in picoseconds.
	Latency *stats.Histogram

	// Stats and test hooks.
	Enqueued   uint64
	Dequeued   uint64
	Empty      uint64
	Retries    uint64
	Discovered uint64

	// OnDequeue, if set, observes every dequeued value (tests).
	OnDequeue func(v int64)

	// OnComplete, if set, observes every completed operation with its
	// virtual-time interval: kind is the request kind (MsgEnq/MsgDeq),
	// value the enqueued/dequeued value, ok false for empty dequeues.
	// Used by the linearizability tests.
	OnComplete func(start, end sim.Time, kind int, value int64, ok bool)
}

// NewClient registers a closed-loop client with the given role. Call
// Start to begin issuing requests.
func (q *Queue) NewClient(role Role) *Client {
	cl := &Client{q: q, idx: len(q.clients), role: role, Latency: stats.NewHistogram(16)}
	cl.cpu = q.eng.NewCPU(cl.onMessage)
	// Seed owner beliefs from the current owners (Preload may already
	// have moved the enqueue segment off core 0); -1 mid-handoff falls
	// back to core 0 and the failure/rediscovery path corrects it.
	cl.enqOwner = q.cores[0].core.ID()
	cl.deqOwner = q.cores[0].core.ID()
	if i := q.EnqOwner(); i >= 0 {
		cl.enqOwner = q.cores[i].core.ID()
	}
	if i := q.DeqOwner(); i >= 0 {
		cl.deqOwner = q.cores[i].core.ID()
	}
	q.clients = append(q.clients, cl)
	return cl
}

// CPU exposes the client's CPU (stats).
func (cl *Client) CPU() *sim.CPU { return cl.cpu }

// Value encodes (client, seq) so tests can check exactly-once delivery
// and per-producer FIFO order.
func (cl *Client) nextValue() int64 {
	v := int64(cl.idx)<<32 | cl.seq
	cl.seq++
	return v
}

// Start issues the client's first request.
func (cl *Client) Start() {
	cl.cpu.Exec(func(c *sim.CPU) { cl.issue(c) })
}

// Stop makes the client finish its in-flight request and then go
// quiet, so tests can quiesce the system by running the engine dry.
func (cl *Client) Stop() { cl.stopped = true }

func (cl *Client) issue(c *sim.CPU) {
	if cl.stopped {
		return
	}
	cl.issuedAt = c.Clock()
	c.ProfOpStart()
	enq := false
	switch cl.role {
	case Enqueuer:
		enq = true
	case Dequeuer:
		enq = false
	case Mixed:
		enq = cl.nextEnq
		cl.nextEnq = !cl.nextEnq
	}
	if enq {
		c.Send(sim.Message{To: cl.enqOwner, Kind: MsgEnq, Key: cl.nextValue()})
	} else {
		c.Send(sim.Message{To: cl.deqOwner, Kind: MsgDeq})
	}
}

// retry re-sends the failed request. The failed enqueue's value was
// never stored (the core rejected it), so re-encoding the same value
// requires rolling the sequence back.
func (cl *Client) retryEnq(c *sim.CPU) {
	if cl.stopped {
		return
	}
	cl.seq--
	c.Send(sim.Message{To: cl.enqOwner, Kind: MsgEnq, Key: cl.nextValue()})
}

// retryDeq re-sends a dequeue at the current believed owner.
func (cl *Client) retryDeq(c *sim.CPU) {
	if cl.stopped {
		return
	}
	c.Send(sim.Message{To: cl.deqOwner, Kind: MsgDeq})
}

func (cl *Client) onMessage(c *sim.CPU, m sim.Message) {
	switch m.Kind {
	case MsgEnqOK:
		cl.Enqueued++
		c.CountOp()
		c.ProfOpEnd()
		cl.Latency.Add(int64(c.Clock() - cl.issuedAt))
		cl.q.eng.RecordOpLatency(MsgEnq, c.Clock()-cl.issuedAt)
		if cl.OnComplete != nil {
			cl.OnComplete(cl.issuedAt, c.Clock(), MsgEnq, int64(cl.idx)<<32|(cl.seq-1), true)
		}
		if cl.SplitEvery > 0 {
			cl.sinceSplit++
			if cl.sinceSplit >= cl.SplitEvery {
				cl.sinceSplit = 0
				c.Send(sim.Message{To: cl.enqOwner, Kind: MsgSplit})
			}
		}
		cl.issue(c)
	case MsgDeqOK:
		cl.Dequeued++
		c.CountOp()
		c.ProfOpEnd()
		cl.Latency.Add(int64(c.Clock() - cl.issuedAt))
		cl.q.eng.RecordOpLatency(MsgDeq, c.Clock()-cl.issuedAt)
		if cl.OnDequeue != nil {
			cl.OnDequeue(m.Key)
		}
		if cl.OnComplete != nil {
			cl.OnComplete(cl.issuedAt, c.Clock(), MsgDeq, m.Key, true)
		}
		cl.issue(c)
	case MsgDeqEmpty:
		cl.Empty++
		c.CountOp()
		c.ProfOpEnd()
		if cl.OnComplete != nil {
			cl.OnComplete(cl.issuedAt, c.Clock(), MsgDeq, 0, false)
		}
		cl.issue(c)
	case MsgEnqFail:
		cl.Retries++
		if m.From != cl.enqOwner {
			// A notification already updated our belief; retry there.
			cl.retryEnq(c)
			return
		}
		cl.startSearch(c, 1)
	case MsgDeqFail:
		cl.Retries++
		if m.From != cl.deqOwner {
			cl.retryDeq(c)
			return
		}
		cl.startSearch(c, 2)
	case MsgEnqOwner:
		cl.enqOwner = m.From
		c.Local()
		if cl.q.BlockingNotify {
			cl.sendAck(c, m.From)
		}
		if cl.searching == 1 {
			cl.searching = 0
			cl.Discovered++
			cl.retryEnq(c)
		}
	case MsgDeqOwner:
		cl.deqOwner = m.From
		c.Local()
		if cl.q.BlockingNotify {
			cl.sendAck(c, m.From)
		}
		if cl.searching == 2 {
			cl.searching = 0
			cl.Discovered++
			cl.retryDeq(c)
		}
	case MsgFindResp:
		cl.handleFindResp(c, m)
	default:
		panic(fmt.Sprintf("pimqueue: client %d: unknown message kind %d", cl.idx, m.Kind))
	}
}

// sendAck acknowledges an ownership notification, stalling first when
// the client is configured as a slow CPU.
func (cl *Client) sendAck(c *sim.CPU, to sim.CoreID) {
	if cl.AckDelay > 0 {
		c.Compute(cl.AckDelay)
	}
	c.Send(sim.Message{To: to, Kind: MsgOwnerAck})
}

// startSearch broadcasts a discovery query to every core (Section 5.1:
// "it needs to send messages to all PIM cores to ask which PIM core is
// currently in charge").
func (cl *Client) startSearch(c *sim.CPU, what int) {
	cl.searching = what
	cl.negatives = 0
	kind := MsgFindEnq
	if what == 2 {
		kind = MsgFindDeq
	}
	for _, qc := range cl.q.cores {
		c.Send(sim.Message{To: qc.core.ID(), Kind: kind})
	}
}

func (cl *Client) handleFindResp(c *sim.CPU, m sim.Message) {
	if cl.searching == 0 || int(m.Val) != cl.searching {
		return // stale response from an earlier search
	}
	if m.OK {
		cl.Discovered++
		if cl.searching == 1 {
			cl.enqOwner = m.From
			cl.searching = 0
			cl.retryEnq(c)
		} else {
			cl.deqOwner = m.From
			cl.searching = 0
			cl.retryDeq(c)
		}
		return
	}
	cl.negatives++
	if cl.negatives >= len(cl.q.cores) && !cl.stopped {
		// Every core denied ownership: the handoff message is still
		// in flight. Ask again.
		cl.startSearch(c, cl.searching)
	}
}
