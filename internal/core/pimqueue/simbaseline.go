package pimqueue

import (
	"pimds/internal/sim"
)

// Virtual-time CPU baselines for the Section 5.2 queue comparison,
// charging exactly what the paper's bounds count.

// SimFAAQueue simulates the F&A-based queue: every operation performs
// one fetch-and-add on a shared variable (one line for enqueues, one
// for dequeues), so concurrent operations serialize at Latomic each —
// the 1/Latomic bound. Matching the paper's generous accounting, the
// cell access is free unless ChargeMemory is set.
type SimFAAQueue struct {
	cpus []*sim.CPU
}

// NewSimFAAQueue creates the baseline: half of the p CPUs enqueue, half
// dequeue (p=1 gets one mixed client charged per the enqueue path).
func NewSimFAAQueue(e *sim.Engine, p int, chargeMemory bool) *SimFAAQueue {
	s := &SimFAAQueue{}
	enqLine := &sim.AtomicLine{}
	deqLine := &sim.AtomicLine{}
	for i := 0; i < p; i++ {
		line := enqLine
		if i%2 == 1 {
			line = deqLine
		}
		cpu := e.NewCPU(nil)
		sim.Loop(cpu, func(c *sim.CPU) {
			c.Atomic(line) // the F&A on the shared head/tail counter
			if chargeMemory {
				c.MemWrite() // the cell access LCRQ performs afterwards
			}
			c.CountOp()
		})
		s.cpus = append(s.cpus, cpu)
	}
	return s
}

// Ops returns the snapshot function for sim.Measure.
func (s *SimFAAQueue) Ops() func() uint64 { return sim.OpsOfCPUs(s.cpus) }

// SimFCQueue simulates the flat-combining queue with separate enqueue
// and dequeue combiner locks: each side's combiner serves its p/2
// blocked clients, paying two last-level-cache accesses per request
// (read the publication slot, write the result) — the 1/(2·Lllc)
// bound per side. ChargeMemory additionally charges the queue-node
// memory access the paper notes it ignores "in favor of" the baseline.
type SimFCQueue struct {
	combiners []*sim.CPU
}

// NewSimFCQueue creates the baseline for p client threads.
func NewSimFCQueue(e *sim.Engine, p int, chargeMemory bool) *SimFCQueue {
	s := &SimFCQueue{}
	batch := p / 2
	if batch < 1 {
		batch = 1
	}
	for side := 0; side < 2; side++ {
		comb := e.NewCPU(nil)
		sim.Loop(comb, func(c *sim.CPU) {
			for j := 0; j < batch; j++ {
				c.LLCRead()
				c.LLCWrite()
				if chargeMemory {
					c.MemRead()
				}
				c.CountOp()
			}
		})
		s.combiners = append(s.combiners, comb)
	}
	return s
}

// Ops returns the snapshot function for sim.Measure.
func (s *SimFCQueue) Ops() func() uint64 { return sim.OpsOfCPUs(s.combiners) }
