package pimskip

import (
	"fmt"

	"pimds/internal/sim"
	"pimds/internal/stats"
)

// Partitioned range queries over the PIM skip-list. A client issues
// RangeScan(lo, hi, limit) to the core its directory says owns lo; the
// core answers with every present key in [lo, hi∧bound) where bound is
// the upper edge of its owned range, in ascending order, plus a
// pagination cursor. The client follows the cursor — re-routing through
// its directory at every hop — until the cursor reaches hi, so one
// logical scan walks as many vaults as its window spans without the
// client ever knowing the partition layout. Each page is served
// atomically by one core (a single sweep of its sequential skip-list);
// the multi-page whole is a cursor-consistent scan, the same contract
// the network server's sharded scans expose.

// RangeChunk is the number of keys per MsgRangeResp message: eight
// 8-byte keys fill the paper's cache-line message bound, so a page of
// n keys costs ⌈n/8⌉ response messages — the quantity the analytical
// model charges as R/chunk·Lmessage.
const RangeChunk = 8

// handleRange serves one range page. Cost accounting: one descent to lo
// plus one bottom-level step per visited node (both via seq.Steps), one
// message per RangeChunk of result keys. Rejections (stale directory,
// or the window overlaps an outgoing migration whose nodes are split
// between source and target) bounce the client back to its directory,
// exactly like point ops.
func (p *Partition) handleRange(c *sim.PIMCore, m sim.Message) {
	lo, hi := m.Key, m.Val
	limit, _ := m.Payload.(int)
	if p.mig != nil && p.mig.rng.Low < hi && lo < p.mig.rng.High {
		c.Local()
		c.Send(sim.Message{To: m.From, Kind: MsgReject, Key: lo})
		p.Rejected++
		return
	}
	// Clamp the page to the owned range containing lo; keys beyond it
	// live in another vault and the cursor walks the client there.
	end := int64(-1)
	for _, r := range p.owns {
		if r.contains(lo) {
			end = r.High
			break
		}
	}
	if end < 0 {
		c.Local()
		c.Send(sim.Message{To: m.From, Kind: MsgReject, Key: lo})
		p.Rejected++
		return
	}
	if end > hi {
		end = hi
	}

	p.seq.ResetSteps()
	var n int
	var cursor int64
	p.arena, n, cursor = p.seq.RangeScanInto(lo, end, limit, p.arena[:0])
	c.ReadN(int(p.seq.Steps()))
	for i := 0; i < n; i += RangeChunk {
		j := i + RangeChunk
		if j > n {
			j = n
		}
		msg := sim.Message{To: m.From, Kind: MsgRangeResp, Key: lo,
			Payload: append([]int64(nil), p.arena[i:j]...)}
		if j == n {
			msg.OK, msg.Val = true, cursor
		}
		c.Send(msg)
	}
	if n == 0 {
		c.Send(sim.Message{To: m.From, Kind: MsgRangeResp, Key: lo, OK: true, Val: cursor})
	}
	p.RangesServed++
	c.CountOp()
}

// RangeOp is one client-issued range query: scan [Lo, Hi) returning at
// most Limit keys per page (0 = unlimited pages bounded only by
// partition edges).
type RangeOp struct {
	Lo, Hi int64
	Limit  int
}

// RangeClient is a closed-loop CPU client issuing paginated range
// scans: it keeps one scan in flight, following cursors across
// partitions, and like the point-op Client holds a private directory
// copy, retries rejections, and participates in the migration
// handshake.
type RangeClient struct {
	s    *SkipList
	cpu  *sim.CPU
	dir  *Directory
	next func(seq uint64) RangeOp

	seq      uint64
	cur      RangeOp
	cursor   int64
	keys     []int64
	stopped  bool
	issuedAt sim.Time

	// Latency records full-scan response times (first page issued to
	// final cursor, including rejection retries) in picoseconds.
	Latency *stats.Histogram

	// Stats.
	Completed    uint64 // fully paginated scans
	Pages        uint64 // pages received (one per serving core visit)
	KeysReturned uint64
	Rejections   uint64
	DirUpdates   uint64

	// OnScan, if set, observes every completed scan and its keys in
	// completion order (tests). The slice is reused by the next scan.
	OnScan func(op RangeOp, keys []int64)

	// OnComplete additionally reports the scan's virtual-time interval.
	OnComplete func(start, end sim.Time, op RangeOp, keys []int64)
}

// NewRangeClient registers a closed-loop range-scan client issuing the
// query stream produced by next. Call Start to begin.
func (s *SkipList) NewRangeClient(next func(seq uint64) RangeOp) *RangeClient {
	rc := &RangeClient{s: s, dir: s.auth.Clone(), next: next, Latency: stats.NewHistogram(16)}
	rc.cpu = s.eng.NewCPU(rc.onMessage)
	s.rclients = append(s.rclients, rc)
	return rc
}

// CPU exposes the client's CPU (stats).
func (rc *RangeClient) CPU() *sim.CPU { return rc.cpu }

// Start issues the client's first scan.
func (rc *RangeClient) Start() {
	rc.cpu.Exec(func(c *sim.CPU) {
		rc.issueScan(c, rc.next(rc.seq))
	})
}

// Stop lets the in-flight scan finish its remaining pages and then
// goes quiet, so running the engine dry quiesces with complete scans.
func (rc *RangeClient) Stop() { rc.stopped = true }

// issueScan validates and starts one scan from its low edge.
func (rc *RangeClient) issueScan(c *sim.CPU, op RangeOp) {
	if op.Lo >= op.Hi || op.Lo < 0 || op.Hi > rc.s.keySpace {
		panic(fmt.Sprintf("pimskip: range scan [%d, %d) outside key space [0, %d)",
			op.Lo, op.Hi, rc.s.keySpace))
	}
	rc.cur = op
	rc.cursor = op.Lo
	rc.keys = rc.keys[:0]
	rc.issuedAt = c.Clock()
	c.ProfOpStart()
	rc.issuePage(c)
}

// issuePage sends the next page request to the partition the directory
// says owns the cursor. One last-level-cache access for the lookup,
// as with point ops.
func (rc *RangeClient) issuePage(c *sim.CPU) {
	c.LLCRead()
	c.Send(sim.Message{
		To: rc.dir.Lookup(rc.cursor), Kind: MsgRange,
		Key: rc.cursor, Val: rc.cur.Hi, Payload: rc.cur.Limit,
	})
}

func (rc *RangeClient) onMessage(c *sim.CPU, m sim.Message) {
	switch m.Kind {
	case MsgRangeResp:
		if chunk, ok := m.Payload.([]int64); ok {
			rc.keys = append(rc.keys, chunk...)
			rc.KeysReturned += uint64(len(chunk))
		}
		if !m.OK {
			return // more chunks of this page in flight
		}
		rc.Pages++
		rc.cursor = m.Val
		if rc.cursor < rc.cur.Hi {
			rc.issuePage(c)
			return
		}
		rc.Completed++
		c.CountOp()
		c.ProfOpEnd()
		d := c.Clock() - rc.issuedAt
		rc.Latency.Add(int64(d))
		rc.s.eng.RecordOpLatency(MsgRange, d)
		if rc.OnScan != nil {
			rc.OnScan(rc.cur, rc.keys)
		}
		if rc.OnComplete != nil {
			rc.OnComplete(rc.issuedAt, c.Clock(), rc.cur, rc.keys)
		}
		rc.seq++
		if !rc.stopped {
			rc.issueScan(c, rc.next(rc.seq))
		}
	case MsgReject:
		// Stale directory (or a migration in progress at the serving
		// core): re-read the directory and resend the current page.
		rc.Rejections++
		rc.issuePage(c)
	case MsgDirUpdate:
		rc.DirUpdates++
		c.LLCWrite()
		rc.dir.Update(m.Key, m.Val, m.Payload.(sim.CoreID))
		c.Send(sim.Message{To: m.From, Kind: MsgDirAck})
	default:
		panic("pimskip: range client received unknown message kind")
	}
}
