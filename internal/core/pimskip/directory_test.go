package pimskip

import (
	"testing"
	"testing/quick"

	"pimds/internal/sim"
)

func dirCores(n int) []sim.CoreID {
	cores := make([]sim.CoreID, n)
	for i := range cores {
		cores[i] = sim.CoreID(i + 1)
	}
	return cores
}

func TestDirectoryInitialLayout(t *testing.T) {
	d := NewDirectory(100, dirCores(4))
	cases := map[int64]sim.CoreID{0: 1, 24: 1, 25: 2, 49: 2, 50: 3, 74: 3, 75: 4, 99: 4}
	for k, want := range cases {
		if got := d.Lookup(k); got != want {
			t.Errorf("Lookup(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestDirectoryLookupOutOfRangePanics(t *testing.T) {
	d := NewDirectory(100, dirCores(4))
	for _, k := range []int64{-1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Lookup(%d) should panic", k)
				}
			}()
			d.Lookup(k)
		}()
	}
}

func TestDirectoryBadConstructionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDirectory with no cores should panic")
		}
	}()
	NewDirectory(100, nil)
}

func TestDirectoryUpdateSplitsRange(t *testing.T) {
	d := NewDirectory(100, dirCores(4))
	// Move [30, 40) (inside core 2's [25,50)) to core 1.
	d.Update(30, 40, 1)
	cases := map[int64]sim.CoreID{25: 2, 29: 2, 30: 1, 39: 1, 40: 2, 49: 2, 50: 3}
	for k, want := range cases {
		if got := d.Lookup(k); got != want {
			t.Errorf("after split: Lookup(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestDirectoryUpdateAcrossBoundaries(t *testing.T) {
	d := NewDirectory(100, dirCores(4))
	// Move [20, 60) — spans parts of cores 1, 2 and 3 — to core 4.
	d.Update(20, 60, 4)
	cases := map[int64]sim.CoreID{0: 1, 19: 1, 20: 4, 59: 4, 60: 3, 74: 3, 75: 4}
	for k, want := range cases {
		if got := d.Lookup(k); got != want {
			t.Errorf("after span: Lookup(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestDirectoryUpdateToEnd(t *testing.T) {
	d := NewDirectory(100, dirCores(2))
	d.Update(80, 100, 1)
	if got := d.Lookup(99); got != 1 {
		t.Errorf("Lookup(99) = %d, want 1", got)
	}
	if got := d.Lookup(79); got != 2 {
		t.Errorf("Lookup(79) = %d, want 2", got)
	}
}

func TestDirectoryNormalizeMerges(t *testing.T) {
	d := NewDirectory(100, dirCores(2))
	// Give core 1 everything; directory should collapse to one range.
	d.Update(50, 100, 1)
	starts, cores := d.Ranges()
	if len(starts) != 1 || cores[0] != 1 {
		t.Errorf("ranges = %v / %v, want single range owned by 1", starts, cores)
	}
}

func TestDirectoryBadUpdatePanics(t *testing.T) {
	d := NewDirectory(100, dirCores(2))
	for _, c := range [][2]int64{{30, 30}, {50, 20}, {-5, 10}, {90, 101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Update(%d, %d) should panic", c[0], c[1])
				}
			}()
			d.Update(c[0], c[1], 1)
		}()
	}
}

func TestDirectoryClone(t *testing.T) {
	d := NewDirectory(100, dirCores(2))
	c := d.Clone()
	c.Update(0, 50, 2)
	if d.Lookup(0) != 1 {
		t.Error("Clone is not independent")
	}
	if c.Lookup(0) != 2 {
		t.Error("Clone update lost")
	}
}

// TestDirectoryUpdateProperty: after any sequence of random updates,
// lookup agrees with a flat reference array.
func TestDirectoryUpdateProperty(t *testing.T) {
	f := func(opsRaw []uint16) bool {
		const space = 64
		d := NewDirectory(space, dirCores(4))
		var ref [space]sim.CoreID
		for i := range ref {
			ref[i] = d.Lookup(int64(i))
		}
		for _, raw := range opsRaw {
			low := int64(raw % space)
			high := low + 1 + int64((raw>>6)%8)
			if high > space {
				high = space
			}
			core := sim.CoreID(raw>>13%4 + 1)
			d.Update(low, high, core)
			for i := low; i < high; i++ {
				ref[i] = core
			}
		}
		for i := range ref {
			if d.Lookup(int64(i)) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
