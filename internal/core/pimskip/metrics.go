package pimskip

import (
	"fmt"

	"pimds/internal/obs"
)

// KindName maps the skip-list protocol's message kinds to symbolic
// names for metric paths and trace events (install with
// sim.Engine.SetKindNamer).
func KindName(kind int) string {
	switch kind {
	case MsgContains:
		return "Contains"
	case MsgAdd:
		return "Add"
	case MsgRemove:
		return "Remove"
	case MsgResp:
		return "Resp"
	case MsgReject:
		return "Reject"
	case MsgMigCmd:
		return "MigCmd"
	case MsgMigStep:
		return "MigStep"
	case MsgMigStart:
		return "MigStart"
	case MsgMigAdd:
		return "MigAdd"
	case MsgMigOwn:
		return "MigOwn"
	case MsgDirUpdate:
		return "DirUpdate"
	case MsgDirAck:
		return "DirAck"
	case MsgMigEnd:
		return "MigEnd"
	case MsgSizeReq:
		return "SizeReq"
	case MsgSizeResp:
		return "SizeResp"
	case MsgRange:
		return "Range"
	case MsgRangeResp:
		return "RangeResp"
	}
	return fmt.Sprintf("kind_%02d", kind)
}

// instrument registers a snapshot-time collector exporting partition
// sizes and imbalance (max/mean size — the quantity the §4.2.1
// rebalancing schemes try to keep near 1), the migration protocol's
// per-partition counters, and the clients' retry/directory traffic. A
// nil registry makes this a no-op.
func (s *SkipList) instrument() {
	reg := s.eng.Metrics()
	reg.AddCollector(func(r *obs.Registry) {
		total, max := 0, 0
		var moved uint64
		for i, p := range s.parts {
			n := p.seq.Len()
			total += n
			if n > max {
				max = n
			}
			pre := fmt.Sprintf("pimskip/part/%03d/", i)
			r.Gauge(pre + "size").Set(int64(n))
			r.Gauge(pre + "forwarded").Set(int64(p.Forwarded))
			r.Gauge(pre + "rejected").Set(int64(p.Rejected))
			r.Gauge(pre + "migrations").Set(int64(p.Migrations))
			r.Gauge(pre + "cmds_dropped").Set(int64(p.CmdsDropped))
			r.Gauge(pre + "ranges_served").Set(int64(p.RangesServed))
			if p.mig != nil {
				moved += p.mig.NodesMoved
			}
		}
		imbalance := 0.0
		if total > 0 {
			imbalance = float64(max) * float64(len(s.parts)) / float64(total)
		}
		r.FloatGauge("pimskip/imbalance").Set(imbalance)
		r.Gauge("pimskip/total_len").Set(int64(total))
		r.Gauge("pimskip/nodes_in_flight").Set(int64(moved))

		var retries, dirUpdates uint64
		for _, cl := range s.clients {
			retries += cl.Rejections
			dirUpdates += cl.DirUpdates
		}
		var scans, scanKeys, scanPages uint64
		for _, rc := range s.rclients {
			retries += rc.Rejections
			dirUpdates += rc.DirUpdates
			scans += rc.Completed
			scanKeys += rc.KeysReturned
			scanPages += rc.Pages
		}
		r.Gauge("pimskip/client_retries").Set(int64(retries))
		r.Gauge("pimskip/dir_updates").Set(int64(dirUpdates))
		r.Gauge("pimskip/scans").Set(int64(scans))
		r.Gauge("pimskip/scan_keys").Set(int64(scanKeys))
		r.Gauge("pimskip/scan_pages").Set(int64(scanPages))
	})
}
