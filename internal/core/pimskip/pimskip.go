// Package pimskip implements the PIM-managed skip-list of Section 4.2:
// the key space is partitioned across k vaults, each managed by its PIM
// core; CPU clients keep a cached directory of sentinel ranges and send
// each request to the owning core. It includes the non-blocking node
// migration protocol of Section 4.2.1 for rebalancing partitions, with
// the paper's mid-migration request handling (serve locally if the key
// has not been moved yet, forward to the target if it has) and the
// CPU-notification/acknowledgement handshake.
//
// The package also provides virtual-time CPU baselines (lock-free
// skip-list and partitioned flat-combining skip-list) so simulations
// can reproduce all five rows of Table 2 and Figure 4.
package pimskip

import (
	"fmt"
	"sort"

	"pimds/internal/cds/seqskip"
	"pimds/internal/sim"
)

// Message kinds for the skip-list protocol.
const (
	MsgContains = iota + 1 // request: Key = key; Val = reply-to CID when forwarded
	MsgAdd
	MsgRemove
	MsgResp   // response: OK = result, Key echoed
	MsgReject // wrong partition: client must re-look-up and resend
	MsgMigCmd // control → core: migrate [Key, Val) to Payload.(sim.CoreID)
	MsgMigStep
	MsgMigStart  // source → target: Key=low, Val=high
	MsgMigAdd    // source → target: Payload = []int64 keys, ascending
	MsgMigOwn    // source → target: ownership of [Key, Val) transfers
	MsgDirUpdate // source → client CPU: [Key, Val) now owned by Payload.(sim.CoreID)
	MsgDirAck    // client CPU → source
	MsgMigEnd    // source → target: protocol complete, range unlocked
	MsgSizeReq   // control → core: reply with partition size
	MsgSizeResp  // core → control: Val = size
	MsgRange     // request: Key = lo, Val = hi, Payload = limit (int)
	MsgRangeResp // response chunk: Payload = []int64 keys; final chunk has OK = true, Val = cursor
)

// keyRange is a half-open key interval [Low, High).
type keyRange struct{ Low, High int64 }

func (r keyRange) contains(k int64) bool { return k >= r.Low && k < r.High }

// rangeSet is a small set of disjoint ranges.
type rangeSet []keyRange

func (rs rangeSet) containsKey(k int64) bool {
	for _, r := range rs {
		if r.contains(k) {
			return true
		}
	}
	return false
}

func (rs rangeSet) covers(low, high int64) bool {
	for _, r := range rs {
		if low >= r.Low && high <= r.High {
			return true
		}
	}
	return false
}

func (rs rangeSet) overlaps(low, high int64) bool {
	for _, r := range rs {
		if low < r.High && high > r.Low {
			return true
		}
	}
	return false
}

// remove cuts [low, high) out of the set; it must be covered by a
// single range. A split produces more ranges than it consumes, so the
// result is built in a fresh slice — reusing the input's backing array
// would overwrite elements not yet visited.
func (rs rangeSet) remove(low, high int64) rangeSet {
	out := make(rangeSet, 0, len(rs)+1)
	for _, r := range rs {
		if low >= r.Low && high <= r.High {
			if r.Low < low {
				out = append(out, keyRange{r.Low, low})
			}
			if high < r.High {
				out = append(out, keyRange{high, r.High})
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// add inserts [low, high), merging adjacent ranges.
func (rs rangeSet) add(low, high int64) rangeSet {
	out := append(rs, keyRange{low, high})
	sort.Slice(out, func(i, j int) bool { return out[i].Low < out[j].Low })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && merged[n-1].High >= r.Low {
			if r.High > merged[n-1].High {
				merged[n-1].High = r.High
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// migration is the source-side state of one outgoing migration.
type migration struct {
	rng    keyRange
	next   int64 // smallest key not yet moved
	target sim.CoreID
	phase  int // migCopy or migNotify

	acksWanted int
	acksGot    int
	NodesMoved uint64
}

const (
	migCopy = iota
	migNotify
)

// Partition is one vault's share of the skip-list, managed by its PIM
// core.
type Partition struct {
	s    *SkipList
	idx  int
	core *sim.PIMCore
	seq  *seqskip.List

	owns     rangeSet // ranges this core currently serves
	locked   rangeSet // ranges received by migration, not yet released
	incoming rangeSet // ranges announced by MsgMigStart, nodes still arriving

	mig *migration // outgoing migration, or nil

	// arena is reused scratch for range-scan results between requests.
	arena []int64

	// Stats.
	Forwarded    uint64
	Rejected     uint64
	Migrations   uint64
	CmdsDropped  uint64
	RangesServed uint64 // range pages answered (rejections excluded)
}

// Core exposes the partition's PIM core.
func (p *Partition) Core() *sim.PIMCore { return p.core }

// Len returns the partition's current size.
func (p *Partition) Len() int { return p.seq.Len() }

// Owns reports whether the partition currently owns key k.
func (p *Partition) Owns(k int64) bool { return p.owns.containsKey(k) }

// SkipList is the PIM-managed partitioned skip-list.
type SkipList struct {
	eng      *sim.Engine
	keySpace int64
	parts    []*Partition
	clients  []*Client
	rclients []*RangeClient
	control  *sim.CPU

	// auth tracks authoritative ownership for Preload and tests; the
	// protocol itself uses only per-client directories and per-core
	// range sets.
	auth *Directory

	// MigBatch is the number of keys per migration message (the paper
	// sends nodes one by one; up to ~8 keys fit the cache-line-sized
	// message bound). One MsgMigStep moves one batch.
	MigBatch int

	// Rebalance, when non-nil, enables automatic splitting: after an
	// add that leaves a partition larger than MaxLen, the core moves
	// the upper half of its largest owned range to the currently
	// smallest partition.
	Rebalance *RebalanceConfig

	// RemoteMigration transfers nodes by direct remote-vault writes
	// instead of MsgMigAdd messages — the alternative architecture of
	// Section 2 footnote 2. Requires the engine's LpimRemote to be
	// positive; the control handshake (start / ownership / directory
	// updates / end) is unchanged.
	RemoteMigration bool
}

// RebalanceConfig tunes automatic rebalancing — the two schemes of
// §4.2.1: split a partition that grew past MaxLen, and merge a
// partition that shrank below MinLen into the neighbor owning the
// adjacent key range (if that neighbor is also small).
type RebalanceConfig struct {
	// MaxLen, when positive, splits a partition larger than this.
	MaxLen int
	// MinLen, when positive, merges a partition smaller than this
	// into an adjacent partition that is also below MinLen.
	MinLen int
}

// New builds a PIM skip-list over [0, keySpace) with k partitions, each
// on its own fresh PIM core.
func New(e *sim.Engine, keySpace int64, k int, seed uint64) *SkipList {
	if k < 1 || keySpace < int64(k) {
		panic(fmt.Sprintf("pimskip: need 1 <= k (%d) <= keySpace (%d)", k, keySpace))
	}
	s := &SkipList{eng: e, keySpace: keySpace, MigBatch: 1}
	cores := make([]sim.CoreID, k)
	for i := 0; i < k; i++ {
		p := &Partition{s: s, idx: i, seq: seqskip.New(seed + uint64(i)*0x9e3779b9)}
		p.core = e.NewPIMCore(p.handle)
		low := int64(i) * keySpace / int64(k)
		high := int64(i+1) * keySpace / int64(k)
		p.owns = p.owns.add(low, high)
		s.parts = append(s.parts, p)
		cores[i] = p.core.ID()
	}
	s.auth = NewDirectory(keySpace, cores)
	s.control = e.NewCPU(func(c *sim.CPU, m sim.Message) {})
	s.instrument()
	return s
}

// Partitions returns the partitions (tests, stats).
func (s *SkipList) Partitions() []*Partition { return s.parts }

// Preload inserts keys at no simulated cost, routing by the *initial*
// partition layout (auth is not updated by migrations). Call before
// the simulation starts and before any migration.
func (s *SkipList) Preload(keys []int64) {
	for _, k := range keys {
		core := s.auth.Lookup(k)
		for _, p := range s.parts {
			if p.core.ID() == core {
				p.seq.AddKey(k)
				break
			}
		}
	}
}

// TotalLen returns the number of keys across all partitions.
func (s *SkipList) TotalLen() int {
	total := 0
	for _, p := range s.parts {
		total += p.seq.Len()
	}
	return total
}

// Keys returns all keys in ascending order at quiescence (tests).
func (s *SkipList) Keys() []int64 {
	var keys []int64
	for _, p := range s.parts {
		keys = append(keys, p.seq.Keys()...)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TriggerMigration instructs partition fromIdx (via a control-plane
// message) to migrate [low, high) to partition toIdx. The core drops
// the command if it does not currently own the whole range, is already
// migrating, or the range is locked by an unfinished inbound migration.
func (s *SkipList) TriggerMigration(fromIdx int, low, high int64, toIdx int) {
	from := s.parts[fromIdx]
	target := s.parts[toIdx].core.ID()
	s.control.Exec(func(c *sim.CPU) {
		c.Send(sim.Message{
			To: from.core.ID(), Kind: MsgMigCmd,
			Key: low, Val: high, Payload: target,
		})
	})
}

// partByCore maps a core ID back to its partition.
func (s *SkipList) partByCore(id sim.CoreID) *Partition {
	for _, p := range s.parts {
		if p.core.ID() == id {
			return p
		}
	}
	return nil
}

// handle is the PIM-core program: the full Section 4.2 protocol.
func (p *Partition) handle(c *sim.PIMCore, m sim.Message) {
	switch m.Kind {
	case MsgContains, MsgAdd, MsgRemove:
		p.handleOp(c, m)
	case MsgRange:
		p.handleRange(c, m)
	case MsgMigCmd:
		p.handleMigCmd(c, m)
	case MsgMigStep:
		p.migStep(c)
	case MsgMigStart:
		c.Local()
		p.incoming = p.incoming.add(m.Key, m.Val)
	case MsgMigAdd:
		for _, k := range m.Payload.([]int64) {
			p.seq.ResetSteps()
			if p.seq.AddKey(k) {
				c.Write()
			}
			c.ReadN(int(p.seq.Steps()))
		}
	case MsgMigOwn:
		c.Local()
		p.incoming = p.incoming.remove(m.Key, m.Val)
		p.owns = p.owns.add(m.Key, m.Val)
		p.locked = p.locked.add(m.Key, m.Val)
	case MsgMigEnd:
		c.Local()
		p.locked = p.locked.remove(m.Key, m.Val)
	case MsgDirAck:
		p.handleDirAck(c)
	case MsgSizeReq:
		c.Local()
		c.Send(sim.Message{To: m.From, Kind: MsgSizeResp, Val: int64(p.seq.Len())})
	default:
		panic(fmt.Sprintf("pimskip: partition %d: unknown message kind %d", p.idx, m.Kind))
	}
}

// replyTo returns the CPU a response should go to: the forwarder
// records the original requester in Val.
func replyTo(m sim.Message) sim.CoreID {
	if m.Val != 0 {
		return sim.CoreID(m.Val)
	}
	return m.From
}

func (p *Partition) handleOp(c *sim.PIMCore, m sim.Message) {
	k := m.Key
	if p.mig != nil && p.mig.rng.contains(k) {
		if k < p.mig.next {
			// Node (if any) already moved: forward to the target,
			// which replies to the requester directly (§4.2.1).
			fwd := m
			fwd.To = p.mig.target
			if fwd.Val == 0 {
				fwd.Val = int64(m.From)
			}
			c.Local()
			c.Send(fwd)
			p.Forwarded++
			return
		}
		// Not yet moved: serve locally below.
	} else if !p.owns.containsKey(k) && !p.incoming.containsKey(k) {
		// Stale client directory: reject so it re-looks-up (§4.2.1).
		c.Local()
		c.Send(sim.Message{To: replyTo(m), Kind: MsgReject, Key: k})
		p.Rejected++
		return
	}

	p.seq.ResetSteps()
	var result bool
	mutated := false
	switch m.Kind {
	case MsgContains:
		result = p.seq.ContainsKey(k)
	case MsgAdd:
		result = p.seq.AddKey(k)
		mutated = result
	case MsgRemove:
		result = p.seq.RemoveKey(k)
		mutated = result
	}
	c.ReadN(int(p.seq.Steps()))
	if mutated {
		c.Write()
	}
	c.Send(sim.Message{To: replyTo(m), Kind: MsgResp, Key: k, OK: result})
	c.CountOp()

	if m.Kind == MsgAdd && result {
		p.maybeAutoSplit(c)
	}
	if m.Kind == MsgRemove && result {
		p.maybeAutoMerge(c)
	}
}

func (p *Partition) handleMigCmd(c *sim.PIMCore, m sim.Message) {
	low, high := m.Key, m.Val
	target := m.Payload.(sim.CoreID)
	c.Local()
	if p.mig != nil || low >= high || !p.owns.covers(low, high) ||
		p.locked.overlaps(low, high) || target == p.core.ID() {
		p.CmdsDropped++
		return
	}
	p.beginMigration(c, keyRange{low, high}, target)
}

// beginMigration arms the outgoing-migration state and kicks the
// incremental copy loop with a self-message, so request service
// interleaves with migration steps. Callers must have validated
// ownership and locking.
func (p *Partition) beginMigration(c *sim.PIMCore, rng keyRange, target sim.CoreID) {
	p.mig = &migration{rng: rng, next: rng.Low, target: target}
	p.Migrations++
	c.Send(sim.Message{To: target, Kind: MsgMigStart, Key: rng.Low, Val: rng.High})
	c.Send(sim.Message{To: p.core.ID(), Kind: MsgMigStep})
}

// migStep moves one batch of nodes, then either reschedules itself or
// finishes the copy phase: transfer ownership, notify every client CPU
// and wait for their acks.
func (p *Partition) migStep(c *sim.PIMCore) {
	mig := p.mig
	if mig == nil || mig.phase != migCopy {
		return // stale step message
	}
	batch := p.s.MigBatch
	if batch < 1 {
		batch = 1
	}
	var keys []int64
	for len(keys) < batch {
		p.seq.ResetSteps()
		k, ok := p.seq.Successor(mig.next)
		c.ReadN(int(p.seq.Steps()))
		if !ok || k >= mig.rng.High {
			break
		}
		p.seq.ResetSteps()
		p.seq.RemoveKey(k)
		c.ReadN(int(p.seq.Steps()))
		c.Write()
		keys = append(keys, k)
		mig.next = k + 1
		mig.NodesMoved++
	}
	if len(keys) > 0 {
		if p.s.RemoteMigration {
			// Footnote-2 mode: insert directly into the target vault
			// at remote latency instead of messaging the keys over.
			tp := p.s.partByCore(mig.target)
			for _, k := range keys {
				tp.seq.ResetSteps()
				added := tp.seq.AddKey(k)
				for i := uint64(0); i < tp.seq.Steps(); i++ {
					c.RemoteRead(tp.core.Vault())
				}
				if added {
					c.RemoteWrite(tp.core.Vault())
				}
			}
		} else {
			c.Send(sim.Message{To: mig.target, Kind: MsgMigAdd, Payload: keys})
		}
	}
	if len(keys) == batch {
		// Possibly more nodes; take another step after serving any
		// queued requests.
		c.Send(sim.Message{To: p.core.ID(), Kind: MsgMigStep})
		return
	}

	// Copy phase done: everything in the range is at the target.
	mig.next = mig.rng.High
	p.owns = p.owns.remove(mig.rng.Low, mig.rng.High)
	c.Send(sim.Message{To: mig.target, Kind: MsgMigOwn, Key: mig.rng.Low, Val: mig.rng.High})
	mig.phase = migNotify
	mig.acksWanted = len(p.s.clients) + len(p.s.rclients)
	if mig.acksWanted == 0 {
		p.finishMigration(c)
		return
	}
	for _, cl := range p.s.clients {
		c.Send(sim.Message{
			To: cl.cpu.ID(), Kind: MsgDirUpdate,
			Key: mig.rng.Low, Val: mig.rng.High, Payload: mig.target,
		})
	}
	for _, rc := range p.s.rclients {
		c.Send(sim.Message{
			To: rc.cpu.ID(), Kind: MsgDirUpdate,
			Key: mig.rng.Low, Val: mig.rng.High, Payload: mig.target,
		})
	}
}

func (p *Partition) handleDirAck(c *sim.PIMCore) {
	c.Local()
	mig := p.mig
	if mig == nil || mig.phase != migNotify {
		return
	}
	mig.acksGot++
	if mig.acksGot == mig.acksWanted {
		p.finishMigration(c)
	}
}

func (p *Partition) finishMigration(c *sim.PIMCore) {
	mig := p.mig
	c.Send(sim.Message{To: mig.target, Kind: MsgMigEnd, Key: mig.rng.Low, Val: mig.rng.High})
	p.mig = nil
}

// maybeAutoSplit initiates a split when this partition has grown past
// the configured bound. Picking the lightest target partition is a
// control-plane decision; a deployment would make it on a CPU-side
// supervisor from size queries (MsgSizeReq), which tests exercise
// explicitly. The migration itself runs entirely through the message
// protocol.
func (p *Partition) maybeAutoSplit(c *sim.PIMCore) {
	cfg := p.s.Rebalance
	if cfg == nil || cfg.MaxLen <= 0 || p.mig != nil || p.seq.Len() <= cfg.MaxLen {
		return
	}
	// Largest owned range.
	var best keyRange
	for _, r := range p.owns {
		if r.High-r.Low > best.High-best.Low {
			best = r
		}
	}
	mid := best.Low + (best.High-best.Low)/2
	if mid <= best.Low || p.locked.overlaps(mid, best.High) {
		return
	}
	// Lightest other partition.
	var target *Partition
	for _, q := range p.s.parts {
		if q == p {
			continue
		}
		if target == nil || q.seq.Len() < target.seq.Len() {
			target = q
		}
	}
	if target == nil {
		return
	}
	p.beginMigration(c, keyRange{mid, best.High}, target.core.ID())
}

// maybeAutoMerge initiates the second §4.2.1 scheme: when this
// partition and the partition owning the adjacent key range are both
// small, move one of this partition's ranges there, emptying it over
// time. Neighbor-size inspection is the same control-plane shortcut as
// in maybeAutoSplit.
func (p *Partition) maybeAutoMerge(c *sim.PIMCore) {
	cfg := p.s.Rebalance
	if cfg == nil || cfg.MinLen <= 0 || p.mig != nil ||
		p.seq.Len() >= cfg.MinLen || len(p.owns) == 0 {
		return
	}
	r := p.owns[0]
	if p.locked.overlaps(r.Low, r.High) {
		return
	}
	var neighbor *Partition
	if r.High < p.s.keySpace {
		neighbor = p.s.partOwning(r.High)
	}
	if neighbor == nil && r.Low > 0 {
		neighbor = p.s.partOwning(r.Low - 1)
	}
	if neighbor == nil || neighbor == p || neighbor.seq.Len() >= cfg.MinLen {
		return
	}
	p.beginMigration(c, r, neighbor.core.ID())
}

// partOwning returns the partition currently owning key k, or nil
// mid-migration.
func (s *SkipList) partOwning(k int64) *Partition {
	for _, p := range s.parts {
		if p.owns.containsKey(k) {
			return p
		}
	}
	return nil
}
