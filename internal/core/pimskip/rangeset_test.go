package pimskip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimds/internal/cds/seqskip"
	"pimds/internal/sim"
)

// TestRangeSetAgainstBitmap: add/remove/containsKey/covers/overlaps
// agree with a brute-force bitmap reference under random operations.
func TestRangeSetAgainstBitmap(t *testing.T) {
	const space = 64
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rs rangeSet
		var ref [space]bool

		for step := 0; step < 40; step++ {
			low := rng.Int63n(space)
			high := low + 1 + rng.Int63n(space-low)
			if rng.Intn(2) == 0 {
				rs = rs.add(low, high)
				for i := low; i < high; i++ {
					ref[i] = true
				}
			} else {
				// remove requires single-range coverage; only apply
				// when the reference says the whole span is set (a
				// conservative approximation of the precondition).
				if rs.covers(low, high) {
					rs = rs.remove(low, high)
					for i := low; i < high; i++ {
						ref[i] = false
					}
				}
			}

			// Invariants: disjoint, sorted, non-empty ranges.
			for i := range rs {
				if rs[i].Low >= rs[i].High {
					return false
				}
				if i > 0 && rs[i-1].High >= rs[i].Low {
					return false
				}
			}
			// Point membership agrees with the reference.
			for k := int64(0); k < space; k++ {
				if rs.containsKey(k) != ref[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeSetCoversAndOverlaps(t *testing.T) {
	var rs rangeSet
	rs = rs.add(10, 20)
	rs = rs.add(30, 40)
	if !rs.covers(10, 20) || !rs.covers(12, 18) || rs.covers(10, 25) || rs.covers(15, 35) {
		t.Error("covers broken")
	}
	if !rs.overlaps(19, 31) || rs.overlaps(20, 30) || !rs.overlaps(5, 11) || rs.overlaps(40, 50) {
		t.Error("overlaps broken")
	}
	// Adjacent adds merge.
	rs = rs.add(20, 30)
	if len(rs) != 1 || rs[0].Low != 10 || rs[0].High != 40 {
		t.Errorf("merge broken: %v", rs)
	}
}

// TestRandomMigrationStorm: random sequences of migrations under load
// never lose, duplicate or strand keys, and every migration completes.
func TestRandomMigrationStorm(t *testing.T) {
	f := func(seed int64) bool {
		const space = 256
		const k = 4
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(testConfig())
		s := New(e, space, k, uint64(seed)+1)
		s.MigBatch = 1 + rng.Intn(4)
		var keys []int64
		for key := int64(0); key < space; key += 3 {
			keys = append(keys, key)
		}
		s.Preload(keys)

		adds := make([]int64, space)
		removes := make([]int64, space)
		var clients []*Client
		for i := 0; i < 4; i++ {
			cl := s.NewClient(balancedOps(seed+int64(i), space))
			cl.OnResult = func(op seqskip.Op, ok bool) {
				if !ok {
					return
				}
				if op.Kind == seqskip.Add {
					adds[op.Key]++
				} else if op.Kind == seqskip.Remove {
					removes[op.Key]++
				}
			}
			cl.Start()
			clients = append(clients, cl)
		}

		// Fire 5 random migration commands at random times; invalid
		// ones (not owned / locked / busy) are dropped by the core.
		for i := 0; i < 5; i++ {
			e.RunFor(sim.Time(rng.Intn(100)) * sim.Microsecond)
			from := rng.Intn(k)
			to := rng.Intn(k)
			low := rng.Int63n(space - 1)
			high := low + 1 + rng.Int63n(space-low)
			s.TriggerMigration(from, low, high, to)
		}
		e.RunFor(3 * sim.Millisecond)
		for _, cl := range clients {
			cl.Stop()
		}
		e.Run()

		// All migrations done, nothing locked or incoming.
		for _, p := range s.parts {
			if p.mig != nil || len(p.locked) != 0 || len(p.incoming) != 0 {
				return false
			}
		}
		// Ownership covers the whole space exactly once.
		covered := make([]int, space)
		for _, p := range s.parts {
			for _, r := range p.owns {
				for i := r.Low; i < r.High && i < space; i++ {
					covered[i]++
				}
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		// Conservation.
		present := map[int64]bool{}
		for _, key := range s.Keys() {
			if present[key] {
				return false
			}
			present[key] = true
		}
		preloaded := map[int64]bool{}
		for _, key := range keys {
			preloaded[key] = true
		}
		for key := int64(0); key < space; key++ {
			bal := adds[key] - removes[key]
			if preloaded[key] {
				bal++
			}
			want := int64(0)
			if present[key] {
				want = 1
			}
			if bal != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
