package pimskip

import (
	"pimds/internal/cds/seqskip"
	"pimds/internal/sim"
)

// Virtual-time CPU baselines for Table 2 / Figure 4, charging exactly
// what the analytical model counts (β memory accesses per operation at
// the appropriate latency, plus the flat-combining publication-list
// accesses the model neglects).

// SimLockFree simulates the lock-free skip-list (Table 2 row 1): p CPU
// threads traverse a shared skip-list in parallel at Lcpu per node
// visited. Matching the model, CAS costs are ignored unless ChargeCAS
// is set, which adds one Latomic per successful mutation — the paper's
// "their actual performance could be even worse" remark, kept as an
// ablation.
type SimLockFree struct {
	seq  *seqskip.List
	cpus []*sim.CPU
}

// NewSimLockFree creates the baseline with p client CPUs issuing the
// streams produced by next.
func NewSimLockFree(e *sim.Engine, p int, chargeCAS bool, next func(cpu int, seq uint64) seqskip.Op) *SimLockFree {
	s := &SimLockFree{seq: seqskip.New(0xA5A5)}
	for i := 0; i < p; i++ {
		i := i
		cpu := e.NewCPU(nil)
		var seq uint64
		line := &sim.AtomicLine{} // per-thread: uncontended CAS cost only
		sim.Loop(cpu, func(c *sim.CPU) {
			op := next(i, seq)
			seq++
			s.seq.ResetSteps()
			result := s.seq.Apply(op)
			c.MemReadN(int(s.seq.Steps()))
			if (op.Kind == seqskip.Add || op.Kind == seqskip.Remove) && result {
				c.MemWrite()
				if chargeCAS {
					c.Atomic(line)
				}
			}
			c.CountOp()
		})
		s.cpus = append(s.cpus, cpu)
	}
	return s
}

// Preload inserts keys at no cost before the simulation starts.
func (s *SimLockFree) Preload(keys []int64) {
	for _, k := range keys {
		s.seq.AddKey(k)
	}
}

// Ops returns the snapshot function for sim.Measure.
func (s *SimLockFree) Ops() func() uint64 { return sim.OpsOfCPUs(s.cpus) }

// Len returns the number of stored keys.
func (s *SimLockFree) Len() int { return s.seq.Len() }

// SimFCSkip simulates the flat-combining skip-list with k partitions
// (Table 2 rows 2 and 4): k combiner CPUs each serve a disjoint key
// range. The p client threads' pending requests are spread over the
// partitions by key, so each combiner pass serves the requests routed
// to it; each served request costs two Lllc publication accesses plus
// its traversal at Lcpu per node.
type SimFCSkip struct {
	combiners []*sim.CPU
	seqs      []*seqskip.List
}

// NewSimFCSkip creates the baseline: k partitions over [0, keySpace),
// p client threads, operation streams produced per partition by next
// (the harness routes a shared stream by key).
func NewSimFCSkip(e *sim.Engine, keySpace int64, k, p int, next func(part int, seq uint64) seqskip.Op) *SimFCSkip {
	if k < 1 || p < 1 {
		panic("pimskip: need k >= 1 and p >= 1")
	}
	s := &SimFCSkip{}
	// Each combiner's batch is its share of the p blocked clients.
	batch := p / k
	if batch < 1 {
		batch = 1
	}
	// A combiner is one of the p client threads, so at most min(k, p)
	// partitions are being combined at any moment.
	lanes := k
	if p < lanes {
		lanes = p
	}
	for i := 0; i < k; i++ {
		s.seqs = append(s.seqs, seqskip.New(0xBEEF+uint64(i)))
	}
	for i := 0; i < lanes; i++ {
		i := i
		seq := s.seqs[i]
		comb := e.NewCPU(nil)
		var n uint64
		sim.Loop(comb, func(c *sim.CPU) {
			for j := 0; j < batch; j++ {
				op := next(i, n)
				n++
				seq.ResetSteps()
				result := seq.Apply(op)
				c.MemReadN(int(seq.Steps()))
				c.LLCRead()  // publication slot
				c.LLCWrite() // result
				if (op.Kind == seqskip.Add || op.Kind == seqskip.Remove) && result {
					c.MemWrite()
				}
				c.CountOp()
			}
		})
		s.combiners = append(s.combiners, comb)
	}
	return s
}

// PreloadPartition inserts keys into partition i at no cost.
func (s *SimFCSkip) PreloadPartition(i int, keys []int64) {
	for _, k := range keys {
		s.seqs[i].AddKey(k)
	}
}

// Ops returns the snapshot function for sim.Measure.
func (s *SimFCSkip) Ops() func() uint64 { return sim.OpsOfCPUs(s.combiners) }

// Len returns the total number of stored keys.
func (s *SimFCSkip) Len() int {
	total := 0
	for _, seq := range s.seqs {
		total += seq.Len()
	}
	return total
}
