package pimskip

import (
	"math/rand"
	"testing"

	"pimds/internal/sim"
)

// TestRangeScanSweepsPartitions: a full-space scan must return exactly
// the preloaded keys in order, visiting one page per partition.
func TestRangeScanSweepsPartitions(t *testing.T) {
	const space, parts = 256, 4
	e := sim.NewEngine(testConfig())
	s := New(e, space, parts, 7)
	var want []int64
	for k := int64(0); k < space; k += 3 {
		want = append(want, k)
	}
	s.Preload(want)

	var got [][]int64
	rc := s.NewRangeClient(func(uint64) RangeOp {
		return RangeOp{Lo: 0, Hi: space}
	})
	rc.OnScan = func(op RangeOp, keys []int64) {
		got = append(got, append([]int64(nil), keys...))
	}
	rc.Start()
	e.RunUntil(sim.Millisecond)
	rc.Stop()
	e.Run()

	if len(got) == 0 {
		t.Fatal("no scans completed")
	}
	for i, keys := range got {
		if len(keys) != len(want) {
			t.Fatalf("scan %d returned %d keys, want %d", i, len(keys), len(want))
		}
		for j := range keys {
			if keys[j] != want[j] {
				t.Fatalf("scan %d: keys[%d] = %d, want %d", i, j, keys[j], want[j])
			}
		}
	}
	if rc.Pages < rc.Completed*parts {
		t.Errorf("%d pages for %d full-space scans over %d partitions, want ≥ %d",
			rc.Pages, rc.Completed, parts, rc.Completed*parts)
	}
	// Cost accounting: the serving cores walked every returned node in
	// their vaults — vault reads must at least cover the keys returned.
	var reads uint64
	for _, p := range s.Partitions() {
		reads += p.Core().Vault().Reads
	}
	if reads < rc.KeysReturned {
		t.Errorf("%d vault reads for %d returned keys; bottom-level walk not charged", reads, rc.KeysReturned)
	}
}

// TestRangeScanLimitPaginates: a tight per-page limit still reaches
// every key via cursors, in more pages.
func TestRangeScanLimitPaginates(t *testing.T) {
	const space = 128
	e := sim.NewEngine(testConfig())
	s := New(e, space, 2, 9)
	var want []int64
	for k := int64(0); k < space; k += 2 {
		want = append(want, k)
	}
	s.Preload(want)

	done := false
	rc := s.NewRangeClient(func(uint64) RangeOp {
		return RangeOp{Lo: 0, Hi: space, Limit: 5}
	})
	rc.OnScan = func(op RangeOp, keys []int64) {
		if done {
			return
		}
		done = true
		if len(keys) != len(want) {
			t.Errorf("limited scan returned %d keys, want %d", len(keys), len(want))
		}
	}
	rc.Start()
	e.RunUntil(sim.Millisecond)
	rc.Stop()
	e.Run()
	if !done {
		t.Fatal("no scan completed")
	}
	// 64 keys at ≤5 per page needs ≥13 pages per scan.
	if rc.Pages < rc.Completed*13 {
		t.Errorf("%d pages for %d limit-5 scans, want ≥ %d", rc.Pages, rc.Completed, rc.Completed*13)
	}
}

// TestRangeScanEmptyWindow: a window with no keys completes with zero
// keys (and still pays the descent).
func TestRangeScanEmptyWindow(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 256, 2, 3)
	s.Preload([]int64{10, 250})
	rc := s.NewRangeClient(func(uint64) RangeOp {
		return RangeOp{Lo: 64, Hi: 96}
	})
	rc.Start()
	e.RunUntil(100 * sim.Microsecond)
	rc.Stop()
	e.Run()
	if rc.Completed == 0 {
		t.Fatal("no scans completed")
	}
	if rc.KeysReturned != 0 {
		t.Errorf("empty window returned %d keys", rc.KeysReturned)
	}
}

// TestRangeScanDuringMigration: scans racing the migration protocol
// must still return exactly the present keys — pages overlapping the
// moving range are rejected and retried until the hand-off settles.
func TestRangeScanDuringMigration(t *testing.T) {
	const space = 256
	e := sim.NewEngine(testConfig())
	s := New(e, space, 2, 5)
	var want []int64
	for k := int64(0); k < space; k++ {
		want = append(want, k)
	}
	s.Preload(want)

	bad := 0
	rc := s.NewRangeClient(func(uint64) RangeOp {
		return RangeOp{Lo: 0, Hi: space}
	})
	rc.OnScan = func(op RangeOp, keys []int64) {
		// The workload is read-only, so every scan must see all keys
		// regardless of where the migration has moved them.
		if len(keys) != len(want) {
			bad++
		}
	}
	rc.Start()
	// Move the top half of partition 0's range to partition 1 while
	// scans are in flight.
	s.TriggerMigration(0, 64, 128, 1)
	e.RunUntil(2 * sim.Millisecond)
	rc.Stop()
	e.Run()

	if rc.Completed == 0 {
		t.Fatal("no scans completed")
	}
	if bad != 0 {
		t.Fatalf("%d of %d scans lost or duplicated keys during migration", bad, rc.Completed)
	}
	if got := s.Partitions()[0].Len(); got != 64 {
		t.Errorf("partition 0 has %d keys after migrating [64,128) away, want 64", got)
	}
}

// TestRangeScanDeterminism: the same seed and workload must replay to
// the identical virtual end time and stats — the property resume and
// regression comparisons rely on.
func TestRangeScanDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64, uint64) {
		e := sim.NewEngine(testConfig())
		s := New(e, 512, 4, 21)
		var keys []int64
		for k := int64(1); k < 512; k += 2 {
			keys = append(keys, k)
		}
		s.Preload(keys)
		rng := rand.New(rand.NewSource(99))
		rc := s.NewRangeClient(func(uint64) RangeOp {
			lo := rng.Int63n(448)
			return RangeOp{Lo: lo, Hi: lo + 64, Limit: 7}
		})
		cl := s.NewClient(balancedOps(17, 512))
		rc.Start()
		cl.Start()
		e.RunUntil(sim.Millisecond)
		rc.Stop()
		cl.Stop()
		e.Run()
		return e.Now(), rc.Completed, rc.KeysReturned, rc.Pages
	}
	t1, c1, k1, p1 := run()
	t2, c2, k2, p2 := run()
	if t1 != t2 || c1 != c2 || k1 != k2 || p1 != p2 {
		t.Fatalf("replay diverged: (%v, %d, %d, %d) vs (%v, %d, %d, %d)",
			t1, c1, k1, p1, t2, c2, k2, p2)
	}
	if c1 == 0 || k1 == 0 {
		t.Fatalf("degenerate run: %d scans, %d keys", c1, k1)
	}
}
