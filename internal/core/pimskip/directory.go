package pimskip

import (
	"fmt"
	"sort"

	"pimds/internal/sim"
)

// Directory is a CPU-side copy of the sentinel nodes: a sorted mapping
// from range-start keys to the PIM core owning the range (Section 4.2,
// Figure 3). Every client CPU holds its own copy in regular DRAM; the
// paper argues sentinels are few and hot, so lookups hit the CPU cache
// (we charge one Lllc per lookup at the call sites).
//
// A Directory is plain data manipulated from simulator callbacks; it
// needs no synchronization because the simulator is single-threaded.
type Directory struct {
	starts []int64      // ascending; starts[0] is the key-space low bound
	cores  []sim.CoreID // cores[i] owns [starts[i], starts[i+1])
	high   int64        // exclusive upper bound of the key space
}

// NewDirectory builds the initial directory: k equal ranges of
// [0, keySpace), range i starting at i·keySpace/k and owned by cores[i]
// — the paper's initial fake-sentinel layout.
func NewDirectory(keySpace int64, cores []sim.CoreID) *Directory {
	k := len(cores)
	if k == 0 || keySpace < int64(k) {
		panic(fmt.Sprintf("pimskip: need 1 <= k (%d) <= keySpace (%d)", k, keySpace))
	}
	d := &Directory{high: keySpace}
	for i := 0; i < k; i++ {
		d.starts = append(d.starts, int64(i)*keySpace/int64(k))
		d.cores = append(d.cores, cores[i])
	}
	return d
}

// Clone returns an independent copy (each client CPU owns one).
func (d *Directory) Clone() *Directory {
	return &Directory{
		starts: append([]int64(nil), d.starts...),
		cores:  append([]sim.CoreID(nil), d.cores...),
		high:   d.high,
	}
}

// Lookup returns the core owning key k.
func (d *Directory) Lookup(k int64) sim.CoreID {
	if k < d.starts[0] || k >= d.high {
		panic(fmt.Sprintf("pimskip: key %d outside [%d, %d)", k, d.starts[0], d.high))
	}
	// Largest start ≤ k.
	i := sort.Search(len(d.starts), func(i int) bool { return d.starts[i] > k }) - 1
	return d.cores[i]
}

// Update reassigns the range [low, high) to core, splitting boundary
// entries as needed. It is how a client applies a migration
// notification.
func (d *Directory) Update(low, high int64, core sim.CoreID) {
	if low >= high || low < d.starts[0] || high > d.high {
		panic(fmt.Sprintf("pimskip: bad directory update [%d, %d)", low, high))
	}
	// Owner of the point just past the range, preserved on the far
	// side of the split.
	var tailOwner sim.CoreID
	if high < d.high {
		tailOwner = d.Lookup(high)
	}

	newStarts := make([]int64, 0, len(d.starts)+2)
	newCores := make([]sim.CoreID, 0, len(d.cores)+2)
	for i, s := range d.starts {
		if s < low {
			newStarts = append(newStarts, s)
			newCores = append(newCores, d.cores[i])
		}
	}
	newStarts = append(newStarts, low)
	newCores = append(newCores, core)
	if high < d.high {
		newStarts = append(newStarts, high)
		newCores = append(newCores, tailOwner)
	}
	for i, s := range d.starts {
		if s > high {
			newStarts = append(newStarts, s)
			newCores = append(newCores, d.cores[i])
		}
	}
	d.starts = newStarts
	d.cores = newCores
	d.normalize()
}

// normalize merges adjacent ranges with the same owner.
func (d *Directory) normalize() {
	outS := d.starts[:0]
	outC := d.cores[:0]
	for i := range d.starts {
		if len(outC) > 0 && outC[len(outC)-1] == d.cores[i] {
			continue
		}
		outS = append(outS, d.starts[i])
		outC = append(outC, d.cores[i])
	}
	d.starts = outS
	d.cores = outC
}

// Ranges returns the directory contents as (start, owner) pairs, for
// tests and debugging.
func (d *Directory) Ranges() ([]int64, []sim.CoreID) {
	return append([]int64(nil), d.starts...), append([]sim.CoreID(nil), d.cores...)
}
