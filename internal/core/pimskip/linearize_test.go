package pimskip

import (
	"testing"

	"pimds/internal/cds/seqskip"
	"pimds/internal/linearize"
	"pimds/internal/sim"
)

// TestLinearizability records a simulated set history — including a
// node migration with mid-flight forwarding and directory updates —
// and checks it against the sequential set specification. This is the
// property the paper emphasizes is hard ("operations … have to
// correctly synchronize with one another in all possible execution
// scenarios").
func TestLinearizability(t *testing.T) {
	const space = 64 // small space: plenty of key collisions
	e := sim.NewEngine(testConfig())
	s := New(e, space, 2, 3)
	s.MigBatch = 2
	s.Preload([]int64{4, 8, 12, 16, 20, 24, 28})

	var history []linearize.Op
	var cls []*Client
	for i := 0; i < 4; i++ {
		client := i + 1
		cl := s.NewClient(mixedOps(int64(30+i), space))
		cl.OnComplete = func(start, end sim.Time, op seqskip.Op, ok bool) {
			lop := linearize.Op{
				Start: int64(start), End: int64(end), Client: client,
				Input: op.Key, OK: ok,
			}
			switch op.Kind {
			case seqskip.Add:
				lop.Action = linearize.ActAdd
			case seqskip.Remove:
				lop.Action = linearize.ActRemove
			default:
				lop.Action = linearize.ActContains
			}
			history = append(history, lop)
		}
		cl.Start()
		cls = append(cls, cl)
	}
	// Kick a migration mid-run so forwards and rejections are part of
	// the recorded history.
	e.RunUntil(10 * sim.Microsecond)
	s.TriggerMigration(0, 0, 32, 1)
	e.RunUntil(80 * sim.Microsecond)
	for _, cl := range cls {
		cl.Stop()
	}
	e.Run()

	if s.parts[0].mig != nil {
		t.Fatal("migration did not complete")
	}
	if len(history) < 150 {
		t.Fatalf("only %d ops recorded", len(history))
	}
	// The initial preload is prior state: seed the spec by prepending
	// sequential successful adds before time zero.
	var seeded []linearize.Op
	for i, k := range []int64{4, 8, 12, 16, 20, 24, 28} {
		seeded = append(seeded, linearize.Op{
			Start: int64(-100 + 2*i), End: int64(-99 + 2*i),
			Client: 99, Action: linearize.ActAdd, Input: k, OK: true,
		})
	}
	seeded = append(seeded, history...)
	if !linearize.Check(linearize.SetSpec{}, seeded) {
		t.Errorf("set history of %d ops (with migration) is not linearizable", len(history))
	}
}
