package pimskip

import (
	"testing"

	"pimds/internal/cds/seqskip"
	"pimds/internal/sim"
)

// TestAutoMergeDrainsSmallPartition: with a remove-heavy workload that
// empties the low part of the key space, the merge scheme (§4.2.1
// scheme 2) should migrate the shrunken partition's range to its
// neighbor.
func TestAutoMergeDrainsSmallPartition(t *testing.T) {
	const space = 1024
	e := sim.NewEngine(testConfig())
	s := New(e, space, 4, 19)
	s.Rebalance = &RebalanceConfig{MinLen: 40}
	s.MigBatch = 4

	// Preload only partitions 0 and 1 lightly: both below MinLen.
	var keys []int64
	for k := int64(0); k < 512; k += 16 {
		keys = append(keys, k)
	}
	s.Preload(keys)

	// A client removing keys from partition 0's range triggers the
	// merge check.
	i := int64(0)
	cl := s.NewClient(func(uint64) seqskip.Op {
		i++
		return seqskip.Op{Kind: seqskip.Remove, Key: (i * 16) % 256}
	})
	cl.Start()
	e.RunUntil(2 * sim.Millisecond)
	cl.Stop()
	e.Run()

	if s.parts[0].Migrations == 0 {
		t.Fatal("no merge migration happened")
	}
	// Partition 0 should no longer own its original range start.
	if s.parts[0].Owns(300) {
		t.Error("partition 0 still owns its range after merging away")
	}
	// Keys must be conserved (no duplicates, all in range).
	seen := map[int64]bool{}
	for _, k := range s.Keys() {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

// TestMergeRespectsBusyNeighbor: no merge happens into a partition
// that is itself above MinLen.
func TestMergeRespectsBusyNeighbor(t *testing.T) {
	const space = 1024
	e := sim.NewEngine(testConfig())
	s := New(e, space, 2, 21)
	s.Rebalance = &RebalanceConfig{MinLen: 10}

	// Partition 1 is big; partition 0 small but its only neighbor is
	// too large to merge with.
	var keys []int64
	for k := int64(512); k < 1024; k += 2 {
		keys = append(keys, k)
	}
	s.Preload(keys)
	s.Preload([]int64{5})

	cl := s.NewClient(func(uint64) seqskip.Op {
		return seqskip.Op{Kind: seqskip.Remove, Key: 5}
	})
	cl.Start()
	e.RunUntil(100 * sim.Microsecond)
	cl.Stop()
	e.Run()

	if s.parts[0].Migrations != 0 {
		t.Error("merge should not trigger into a large neighbor")
	}
}

// TestPartOwning maps keys back to partitions.
func TestPartOwning(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 100, 4, 3)
	for i, p := range s.parts {
		lo := int64(i) * 25
		if got := s.partOwning(lo); got != p {
			t.Errorf("partOwning(%d) = partition %v, want %d", lo, got, i)
		}
	}
}

// TestRemoteMigrationEquivalent: migrating by direct remote-vault
// writes (footnote 2) moves the same keys as the message protocol and
// keeps the structure consistent under load.
func TestRemoteMigrationEquivalent(t *testing.T) {
	cfg := testConfig()
	cfg.LpimRemote = 60 * sim.Nanosecond
	e := sim.NewEngine(cfg)
	s := New(e, 512, 2, 13)
	s.RemoteMigration = true
	s.MigBatch = 4
	var keys []int64
	for k := int64(0); k < 256; k += 2 {
		keys = append(keys, k)
	}
	s.Preload(keys)

	cl := s.NewClient(func(seq uint64) seqskip.Op {
		return seqskip.Op{Kind: seqskip.Contains, Key: int64(seq*7) % 512}
	})
	cl.Start()
	e.RunUntil(50 * sim.Microsecond)
	s.TriggerMigration(0, 0, 256, 1)
	e.RunUntil(5 * sim.Millisecond)
	cl.Stop()
	e.Run()

	if s.parts[0].Len() != 0 {
		t.Errorf("source still holds %d keys", s.parts[0].Len())
	}
	if s.parts[1].Len() != len(keys) {
		t.Errorf("target holds %d keys, want %d", s.parts[1].Len(), len(keys))
	}
	if !s.parts[1].Owns(0) || s.parts[0].Owns(0) {
		t.Error("ownership did not transfer")
	}
	if got := s.parts[1].Core().Vault().Writes; got < uint64(len(keys)) {
		t.Errorf("target vault writes = %d, want ≥ %d (remote inserts)", got, len(keys))
	}
}
