package pimskip

import (
	"pimds/internal/cds/seqskip"
	"pimds/internal/sim"
	"pimds/internal/stats"
)

// Client is a closed-loop CPU client of the PIM skip-list. It owns a
// private copy of the sentinel directory (Section 4.2: "CPUs also store
// a copy of each sentinel node in regular DRAM"), routes each request
// by directory lookup, retries rejected requests after re-reading the
// directory, and participates in the migration protocol by applying
// directory updates and acknowledging them.
type Client struct {
	s    *SkipList
	cpu  *sim.CPU
	dir  *Directory
	next func(seq uint64) seqskip.Op

	seq      int64 // next request number (int64: also used as op id)
	cur      seqskip.Op
	stopped  bool
	issuedAt sim.Time

	// Latency records response times (first issue to final response,
	// including rejection retries) in picoseconds.
	Latency *stats.Histogram

	// Stats.
	Completed  uint64
	Rejections uint64
	DirUpdates uint64

	// OnResult, if set, observes every completed operation and its
	// result in completion order (tests).
	OnResult func(op seqskip.Op, ok bool)

	// OnComplete, if set, additionally reports the operation's
	// virtual-time interval (linearizability tests).
	OnComplete func(start, end sim.Time, op seqskip.Op, ok bool)
}

// NewClient registers a closed-loop client issuing the operation stream
// produced by next. Call Start (or use a harness) to begin.
func (s *SkipList) NewClient(next func(seq uint64) seqskip.Op) *Client {
	cl := &Client{s: s, dir: s.auth.Clone(), next: next, Latency: stats.NewHistogram(16)}
	cl.cpu = s.eng.NewCPU(cl.onMessage)
	s.clients = append(s.clients, cl)
	return cl
}

// CPU exposes the client's CPU (stats).
func (cl *Client) CPU() *sim.CPU { return cl.cpu }

// Directory exposes the client's private directory copy (tests).
func (cl *Client) Directory() *Directory { return cl.dir }

// Start issues the client's first request.
func (cl *Client) Start() {
	cl.cpu.Exec(func(c *sim.CPU) {
		cl.issue(c, cl.next(uint64(cl.seq)))
	})
}

// Stop makes the client finish its in-flight request and then go
// quiet. Running the engine dry after stopping every client quiesces
// the system so tests can check exact invariants.
func (cl *Client) Stop() { cl.stopped = true }

// issue sends op to the partition the client believes owns the key.
// The directory lookup is one last-level-cache access (the sentinels
// are hot). Latency is measured from the first issue, so rejection
// retries count toward the same operation.
func (cl *Client) issue(c *sim.CPU, op seqskip.Op) {
	if cl.cur != op || cl.Completed+cl.Rejections == 0 {
		cl.issuedAt = c.Clock()
		c.ProfOpStart()
	}
	cl.cur = op
	c.LLCRead()
	kind := MsgContains
	switch op.Kind {
	case seqskip.Add:
		kind = MsgAdd
	case seqskip.Remove:
		kind = MsgRemove
	}
	c.Send(sim.Message{To: cl.dir.Lookup(op.Key), Kind: kind, Key: op.Key})
}

func (cl *Client) onMessage(c *sim.CPU, m sim.Message) {
	switch m.Kind {
	case MsgResp:
		cl.Completed++
		c.CountOp()
		c.ProfOpEnd()
		d := c.Clock() - cl.issuedAt
		cl.Latency.Add(int64(d))
		kind := MsgContains
		switch cl.cur.Kind {
		case seqskip.Add:
			kind = MsgAdd
		case seqskip.Remove:
			kind = MsgRemove
		}
		cl.s.eng.RecordOpLatency(kind, d)
		if cl.OnResult != nil {
			cl.OnResult(cl.cur, m.OK)
		}
		if cl.OnComplete != nil {
			cl.OnComplete(cl.issuedAt, c.Clock(), cl.cur, m.OK)
		}
		cl.seq++
		if !cl.stopped {
			cl.issue(c, cl.next(uint64(cl.seq)))
		}
	case MsgReject:
		// Our directory was stale; by now the MsgDirUpdate has been
		// applied (it arrived before this rejection or will shortly);
		// re-read the directory and resend.
		cl.Rejections++
		if !cl.stopped {
			cl.issue(c, cl.cur)
		}
	case MsgDirUpdate:
		cl.DirUpdates++
		c.LLCWrite()
		cl.dir.Update(m.Key, m.Val, m.Payload.(sim.CoreID))
		c.Send(sim.Message{To: m.From, Kind: MsgDirAck})
	default:
		panic("pimskip: client received unknown message kind")
	}
}
