package pimskip

import (
	"math/rand"
	"testing"

	"pimds/internal/cds/seqskip"
	"pimds/internal/model"
	"pimds/internal/sim"
)

func testConfig() sim.Config {
	return sim.ConfigFromParams(model.DefaultParams())
}

// mixedOps returns a deterministic generator over [0, space):
// 50% contains, 25% add, 25% remove.
func mixedOps(seed int64, space int64) func(seq uint64) seqskip.Op {
	rng := rand.New(rand.NewSource(seed))
	return func(uint64) seqskip.Op {
		k := rng.Int63n(space)
		switch rng.Intn(4) {
		case 0:
			return seqskip.Op{Kind: seqskip.Add, Key: k}
		case 1:
			return seqskip.Op{Kind: seqskip.Remove, Key: k}
		default:
			return seqskip.Op{Kind: seqskip.Contains, Key: k}
		}
	}
}

// balancedOps returns a 50/50 add/remove generator (the paper's
// size-stable workload).
func balancedOps(seed int64, space int64) func(seq uint64) seqskip.Op {
	rng := rand.New(rand.NewSource(seed))
	return func(uint64) seqskip.Op {
		k := rng.Int63n(space)
		if rng.Intn(2) == 0 {
			return seqskip.Op{Kind: seqskip.Add, Key: k}
		}
		return seqskip.Op{Kind: seqskip.Remove, Key: k}
	}
}

// TestSequentialEquivalence: a single client's completed operations
// must return exactly the results of a sequential map replay.
func TestSequentialEquivalence(t *testing.T) {
	for _, k := range []int{1, 4} {
		e := sim.NewEngine(testConfig())
		s := New(e, 256, k, 7)
		gen := mixedOps(3, 256)
		cl := s.NewClient(gen)

		ref := make(map[int64]bool)
		var checked int
		cl.OnResult = func(op seqskip.Op, ok bool) {
			var want bool
			switch op.Kind {
			case seqskip.Contains:
				want = ref[op.Key]
			case seqskip.Add:
				want = !ref[op.Key]
				ref[op.Key] = true
			case seqskip.Remove:
				want = ref[op.Key]
				delete(ref, op.Key)
			}
			if ok != want {
				t.Errorf("k=%d: op %v key %d: got %v, want %v", k, op.Kind, op.Key, ok, want)
			}
			checked++
		}
		cl.Start()
		e.RunUntil(2 * sim.Millisecond)
		cl.Stop()
		e.Run() // quiesce: finish the in-flight request
		if checked < 500 {
			t.Fatalf("k=%d: only %d ops completed", k, checked)
		}
		if got, want := s.TotalLen(), len(ref); got != want {
			t.Errorf("k=%d: TotalLen = %d, want %d", k, got, want)
		}
	}
}

// TestMultiClientConservation: with several concurrent clients, the
// per-key conservation law must hold at quiescence.
func TestMultiClientConservation(t *testing.T) {
	const space = 128
	e := sim.NewEngine(testConfig())
	s := New(e, space, 4, 11)
	adds := make([]int64, space)
	removes := make([]int64, space)
	var clients []*Client
	for i := 0; i < 6; i++ {
		cl := s.NewClient(mixedOps(int64(40+i), space))
		cl.OnResult = func(op seqskip.Op, ok bool) {
			if !ok {
				return
			}
			switch op.Kind {
			case seqskip.Add:
				adds[op.Key]++
			case seqskip.Remove:
				removes[op.Key]++
			}
		}
		cl.Start()
		clients = append(clients, cl)
	}
	e.RunUntil(3 * sim.Millisecond)
	for _, cl := range clients {
		cl.Stop()
	}
	e.Run() // quiesce

	present := make(map[int64]bool)
	for _, k := range s.Keys() {
		present[k] = true
	}
	for k := int64(0); k < space; k++ {
		bal := adds[k] - removes[k]
		want := int64(0)
		if present[k] {
			want = 1
		}
		if bal != want {
			t.Errorf("key %d: adds-removes = %d, want %d", k, bal, want)
		}
	}
}

// TestRequestsRouteToAllPartitions: uniform keys must reach every
// partition.
func TestRequestsRouteToAllPartitions(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 1024, 8, 5)
	cl := s.NewClient(mixedOps(9, 1024))
	cl.Start()
	e.RunUntil(1 * sim.Millisecond)
	for i, p := range s.Partitions() {
		if p.core.Stats.Ops == 0 {
			t.Errorf("partition %d served no operations", i)
		}
	}
}

// TestMigrationMovesKeysAndOwnership: a full migration must move the
// key set, flip ownership, update every client directory, and unlock.
func TestMigrationMovesKeysAndOwnership(t *testing.T) {
	e := sim.NewEngine(testConfig())
	s := New(e, 100, 2, 3)
	// Preload only keys in [0,50) — partition 0.
	var keys []int64
	for k := int64(0); k < 50; k += 2 {
		keys = append(keys, k)
	}
	s.Preload(keys)
	// An idle client that must still receive the directory update.
	cl := s.NewClient(mixedOps(1, 100))

	before0, before1 := s.parts[0].Len(), s.parts[1].Len()
	if before0 != 25 || before1 != 0 {
		t.Fatalf("preload: sizes %d/%d, want 25/0", before0, before1)
	}
	cl.Start()
	s.TriggerMigration(0, 20, 50, 1)
	e.RunUntil(3 * sim.Millisecond)

	p0, p1 := s.parts[0], s.parts[1]
	if p0.mig != nil {
		t.Fatal("migration still active")
	}
	if p0.Owns(20) || p0.Owns(49) {
		t.Error("source still owns migrated range")
	}
	if !p1.Owns(20) || !p1.Owns(49) {
		t.Error("target does not own migrated range")
	}
	if len(p1.locked) != 0 {
		t.Errorf("target range still locked: %v", p1.locked)
	}
	if got := cl.Directory().Lookup(30); got != p1.core.ID() {
		t.Errorf("client directory lookup(30) = %d, want %d", got, p1.core.ID())
	}
	if cl.DirUpdates == 0 {
		t.Error("client saw no directory update")
	}
	if p0.Migrations != 1 {
		t.Errorf("source migrations = %d, want 1", p0.Migrations)
	}
	// Conservation: all preloaded keys still present exactly once
	// modulo the client's own add/removes — the client only touched
	// keys via mixedOps; simplest check: key multiset is consistent
	// (sorted unique) and sizes sum correctly.
	seen := map[int64]bool{}
	for _, k := range s.Keys() {
		if seen[k] {
			t.Fatalf("duplicate key %d after migration", k)
		}
		seen[k] = true
	}
}

// TestMigrationUnderLoad: many clients hammer the structure while a
// large range migrates; results must stay sequentially consistent per
// client and keys conserved. Forwarding must actually occur.
func TestMigrationUnderLoad(t *testing.T) {
	const space = 512
	e := sim.NewEngine(testConfig())
	s := New(e, space, 4, 13)
	s.MigBatch = 2
	var keys []int64
	for k := int64(0); k < space; k += 2 {
		keys = append(keys, k)
	}
	s.Preload(keys)

	adds := make([]int64, space)
	removes := make([]int64, space)
	var clients []*Client
	for i := 0; i < 8; i++ {
		cl := s.NewClient(balancedOps(int64(60+i), space))
		cl.OnResult = func(op seqskip.Op, ok bool) {
			if !ok {
				return
			}
			switch op.Kind {
			case seqskip.Add:
				adds[op.Key]++
			case seqskip.Remove:
				removes[op.Key]++
			}
		}
		cl.Start()
		clients = append(clients, cl)
	}
	// Start the workload, then trigger migrations at staggered times:
	// move partition 0's whole range to partition 1, then a slice of
	// partition 2's to partition 3.
	e.RunUntil(100 * sim.Microsecond)
	s.TriggerMigration(0, 0, 128, 1)
	e.RunUntil(150 * sim.Microsecond)
	s.TriggerMigration(2, 300, 350, 3)
	e.RunUntil(6 * sim.Millisecond)
	for _, cl := range clients {
		cl.Stop()
	}
	e.Run() // quiesce

	if s.parts[0].mig != nil || s.parts[2].mig != nil {
		t.Fatal("migrations did not complete")
	}
	totalForwarded := s.parts[0].Forwarded + s.parts[2].Forwarded
	if totalForwarded == 0 {
		t.Error("no requests were forwarded mid-migration")
	}
	if s.parts[0].Len() != 0 {
		t.Errorf("partition 0 still holds %d keys after migrating everything", s.parts[0].Len())
	}

	present := make(map[int64]bool)
	for _, k := range s.Keys() {
		if present[k] {
			t.Fatalf("duplicate key %d", k)
		}
		present[k] = true
	}
	preloaded := make(map[int64]bool)
	for _, k := range keys {
		preloaded[k] = true
	}
	for k := int64(0); k < space; k++ {
		bal := adds[k] - removes[k]
		if preloaded[k] {
			bal++
		}
		want := int64(0)
		if present[k] {
			want = 1
		}
		if bal != want {
			t.Errorf("key %d: balance = %d, want %d", k, bal, want)
		}
	}
}

// TestAutoRebalance: a skewed workload on one partition must trigger
// automatic splits that spread keys across partitions.
func TestAutoRebalance(t *testing.T) {
	const space = 1024
	e := sim.NewEngine(testConfig())
	s := New(e, space, 4, 17)
	s.Rebalance = &RebalanceConfig{MaxLen: 100}
	s.MigBatch = 4

	// All clients add keys only in [0, 256) — partition 0's range.
	for i := 0; i < 4; i++ {
		rng := rand.New(rand.NewSource(int64(80 + i)))
		cl := s.NewClient(func(uint64) seqskip.Op {
			return seqskip.Op{Kind: seqskip.Add, Key: rng.Int63n(256)}
		})
		cl.Start()
	}
	e.RunUntil(10 * sim.Millisecond)

	if s.parts[0].Migrations == 0 {
		t.Fatal("no automatic migration happened")
	}
	// The hot range must now be spread: someone other than partition 0
	// holds keys.
	others := 0
	for _, p := range s.parts[1:] {
		others += p.Len()
	}
	if others == 0 {
		t.Error("rebalancing moved no keys off the hot partition")
	}
	// And the structure is still a set.
	seen := map[int64]bool{}
	for _, k := range s.Keys() {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
		if k >= 256 {
			t.Fatalf("key %d outside workload range", k)
		}
	}
}

// TestSimulationMatchesTable2: the PIM skip-list's simulated throughput
// must track k/(β·Lpim + Lmessage) with β measured from the actual
// traversals, and the partitioned FC baseline must track k/(β·Lcpu).
func TestSimulationMatchesTable2(t *testing.T) {
	const space = 1 << 14
	const p = 16
	pr := model.DefaultParams()
	cfg := sim.ConfigFromParams(pr)

	for _, k := range []int{2, 4} {
		e := sim.NewEngine(cfg)
		s := New(e, space, k, 23)
		var keys []int64
		for i := int64(0); i < space; i += 2 {
			keys = append(keys, i)
		}
		s.Preload(keys)
		for i := 0; i < p; i++ {
			s.NewClient(balancedOps(int64(90+i), space)).Start()
		}
		_, ops := sim.Measure(e, func() {}, func() uint64 {
			var total uint64
			for _, part := range s.Partitions() {
				total += part.core.Stats.Ops
			}
			return total
		}, 1*sim.Millisecond, 10*sim.Millisecond)

		// Measure β from the vault counters: reads per op (writes are
		// the splice, not the traversal).
		var reads, opsN uint64
		for _, part := range s.Partitions() {
			reads += part.core.Vault().Reads
			opsN += part.core.Stats.Ops
		}
		beta := float64(reads) / float64(opsN)
		want := model.SkipPIMPartitioned(pr, model.SkipConfig{N: space / 2, P: p, K: k, BetaOverride: beta})
		if ops < want*0.7 || ops > want*1.3 {
			t.Errorf("k=%d: simulated %.3g ops/s vs model %.3g ops/s (β=%.1f)", k, ops, want, beta)
		}
	}
}

// TestPIMSkipBeatsFCSkipByR1: at equal partition counts the PIM
// skip-list should be ≈ β·r1/(β+r1) ≈ r1 times the FC skip-list
// (Section 4.2).
func TestPIMSkipBeatsFCSkipByR1(t *testing.T) {
	const space = 1 << 14
	const p = 16
	const k = 4
	pr := model.DefaultParams()
	cfg := sim.ConfigFromParams(pr)

	runPIM := func() float64 {
		e := sim.NewEngine(cfg)
		s := New(e, space, k, 29)
		var keys []int64
		for i := int64(0); i < space; i += 2 {
			keys = append(keys, i)
		}
		s.Preload(keys)
		for i := 0; i < p; i++ {
			s.NewClient(balancedOps(int64(200+i), space)).Start()
		}
		_, ops := sim.Measure(e, func() {}, func() uint64 {
			var total uint64
			for _, part := range s.Partitions() {
				total += part.core.Stats.Ops
			}
			return total
		}, 1*sim.Millisecond, 8*sim.Millisecond)
		return ops
	}
	runFC := func() float64 {
		e := sim.NewEngine(cfg)
		gens := make([]func(uint64) seqskip.Op, k)
		for i := range gens {
			lo := int64(i) * space / k
			hi := int64(i+1) * space / k
			rng := rand.New(rand.NewSource(int64(300 + i)))
			gens[i] = func(uint64) seqskip.Op {
				key := lo + rng.Int63n(hi-lo)
				if rng.Intn(2) == 0 {
					return seqskip.Op{Kind: seqskip.Add, Key: key}
				}
				return seqskip.Op{Kind: seqskip.Remove, Key: key}
			}
		}
		s := NewSimFCSkip(e, space, k, p, func(part int, seq uint64) seqskip.Op {
			return gens[part](seq)
		})
		for i := 0; i < k; i++ {
			lo := int64(i) * space / k
			var keys []int64
			for j := lo; j < int64(i+1)*space/k; j += 2 {
				keys = append(keys, j)
			}
			s.PreloadPartition(i, keys)
		}
		_, ops := sim.Measure(e, func() {}, s.Ops(), 1*sim.Millisecond, 8*sim.Millisecond)
		return ops
	}

	pim, fc := runPIM(), runFC()
	ratio := pim / fc
	if ratio < 1.8 || ratio > 3.2 {
		t.Errorf("PIM/FC ratio = %.2f (pim %.3g, fc %.3g), want ≈ r1 = 3 (β/(β+r1) adjusted)", ratio, pim, fc)
	}
}

// TestSimLockFreeScalesWithThreads: the simulated lock-free baseline
// must scale linearly in p (the model's row 1).
func TestSimLockFreeScalesWithThreads(t *testing.T) {
	const space = 1 << 12
	run := func(p int) float64 {
		e := sim.NewEngine(testConfig())
		gens := make([]func(uint64) seqskip.Op, p)
		for i := range gens {
			gens[i] = balancedOps(int64(400+i), space)
		}
		s := NewSimLockFree(e, p, false, func(cpu int, seq uint64) seqskip.Op {
			return gens[cpu](seq)
		})
		var keys []int64
		for i := int64(0); i < space; i += 2 {
			keys = append(keys, i)
		}
		s.Preload(keys)
		_, ops := sim.Measure(e, func() {}, s.Ops(), 500*sim.Microsecond, 5*sim.Millisecond)
		return ops
	}
	t1, t8 := run(1), run(8)
	if ratio := t8 / t1; ratio < 7 || ratio > 9 {
		t.Errorf("8-thread speedup = %.2f, want ≈ 8", ratio)
	}
}

// TestChargeCASSlowsLockFree: the ChargeCAS ablation must cost
// throughput.
func TestChargeCASSlowsLockFree(t *testing.T) {
	const space = 1 << 12
	run := func(chargeCAS bool) float64 {
		e := sim.NewEngine(testConfig())
		gens := make([]func(uint64) seqskip.Op, 4)
		for i := range gens {
			gens[i] = balancedOps(int64(500+i), space)
		}
		s := NewSimLockFree(e, 4, chargeCAS, func(cpu int, seq uint64) seqskip.Op {
			return gens[cpu](seq)
		})
		_, ops := sim.Measure(e, func() {}, s.Ops(), 200*sim.Microsecond, 2*sim.Millisecond)
		return ops
	}
	if with, without := run(true), run(false); with >= without {
		t.Errorf("ChargeCAS (%.3g) should be slower than without (%.3g)", with, without)
	}
}
