package linearize

import (
	"fmt"
	"sort"
	"strings"
)

// Action codes shared by the bundled specifications.
const (
	ActEnqueue  = iota + 1 // Input = value; OK ignored
	ActDequeue             // Output = value if OK, empty if !OK
	ActPush                // Input = value
	ActPop                 // Output = value if OK, empty if !OK
	ActAdd                 // Input = key; OK = was absent
	ActRemove              // Input = key; OK = was present
	ActContains            // Input = key; OK = present
)

// QueueSpec is the sequential FIFO queue specification.
type QueueSpec struct{}

// Init returns the empty queue state.
func (QueueSpec) Init() State { return queueState{} }

// queueState is an immutable FIFO queue (persistent slice semantics:
// Apply always copies).
type queueState struct {
	vals string // encoded values, comma separated (ints)
}

func encodeSeq(vals []int64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func decodeSeq(s string) []int64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	vals := make([]int64, len(parts))
	for i, p := range parts {
		fmt.Sscan(p, &vals[i])
	}
	return vals
}

// Apply implements State.
func (q queueState) Apply(op Op) (State, bool) {
	switch op.Action {
	case ActEnqueue:
		vals := decodeSeq(q.vals)
		return queueState{vals: encodeSeq(append(vals, op.Input))}, true
	case ActDequeue:
		vals := decodeSeq(q.vals)
		if !op.OK {
			return q, len(vals) == 0
		}
		if len(vals) == 0 || vals[0] != op.Output {
			return q, false
		}
		return queueState{vals: encodeSeq(vals[1:])}, true
	}
	return q, false
}

// Key implements State.
func (q queueState) Key() string { return q.vals }

// StackSpec is the sequential LIFO stack specification.
type StackSpec struct{}

// Init returns the empty stack state.
func (StackSpec) Init() State { return stackState{} }

type stackState struct {
	vals string
}

// Apply implements State.
func (s stackState) Apply(op Op) (State, bool) {
	switch op.Action {
	case ActPush:
		vals := decodeSeq(s.vals)
		return stackState{vals: encodeSeq(append(vals, op.Input))}, true
	case ActPop:
		vals := decodeSeq(s.vals)
		if !op.OK {
			return s, len(vals) == 0
		}
		if len(vals) == 0 || vals[len(vals)-1] != op.Output {
			return s, false
		}
		return stackState{vals: encodeSeq(vals[:len(vals)-1])}, true
	}
	return s, false
}

// Key implements State.
func (s stackState) Key() string { return s.vals }

// SetSpec is the sequential integer-set specification (add/remove/
// contains with the usual boolean results).
type SetSpec struct{}

// Init returns the empty set state.
func (SetSpec) Init() State { return setState{} }

type setState struct {
	keys string // sorted, comma separated
}

// Apply implements State.
func (s setState) Apply(op Op) (State, bool) {
	keys := decodeSeq(s.keys)
	idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= op.Input })
	present := idx < len(keys) && keys[idx] == op.Input
	switch op.Action {
	case ActContains:
		return s, op.OK == present
	case ActAdd:
		if op.OK == present {
			return s, false
		}
		if !op.OK {
			return s, true // failed add: present, state unchanged
		}
		keys = append(keys[:idx], append([]int64{op.Input}, keys[idx:]...)...)
		return setState{keys: encodeSeq(keys)}, true
	case ActRemove:
		if op.OK != present {
			return s, false
		}
		if !op.OK {
			return s, true // failed remove: absent, state unchanged
		}
		keys = append(keys[:idx], keys[idx+1:]...)
		return setState{keys: encodeSeq(keys)}, true
	}
	return s, false
}

// Key implements State.
func (s setState) Key() string { return s.keys }
