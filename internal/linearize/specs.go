package linearize

import (
	"fmt"
	"sort"
	"strings"
)

// Action codes shared by the bundled specifications.
const (
	ActEnqueue  = iota + 1 // Input = value; OK ignored
	ActDequeue             // Output = value if OK, empty if !OK
	ActPush                // Input = value
	ActPop                 // Output = value if OK, empty if !OK
	ActAdd                 // Input = key; OK = was absent
	ActRemove              // Input = key; OK = was present
	ActContains            // Input = key; OK = present
	ActScan                // Input = lo, Input2 = hi, Limit = cap; Outputs = keys, Output = cursor
	ActPred                // Input = key; OK = a smaller key exists, Output = largest such
	ActSucc                // Input = key; OK = a larger key exists, Output = smallest such
	ActPopMin              // OK = set non-empty, Output = smallest key (removed)
	ActPopMax              // OK = set non-empty, Output = largest key (removed)
)

// QueueSpec is the sequential FIFO queue specification.
type QueueSpec struct{}

// Init returns the empty queue state.
func (QueueSpec) Init() State { return queueState{} }

// queueState is an immutable FIFO queue (persistent slice semantics:
// Apply always copies).
type queueState struct {
	vals string // encoded values, comma separated (ints)
}

func encodeSeq(vals []int64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func decodeSeq(s string) []int64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	vals := make([]int64, len(parts))
	for i, p := range parts {
		fmt.Sscan(p, &vals[i])
	}
	return vals
}

// Apply implements State.
func (q queueState) Apply(op Op) (State, bool) {
	switch op.Action {
	case ActEnqueue:
		vals := decodeSeq(q.vals)
		return queueState{vals: encodeSeq(append(vals, op.Input))}, true
	case ActDequeue:
		vals := decodeSeq(q.vals)
		if !op.OK {
			return q, len(vals) == 0
		}
		if len(vals) == 0 || vals[0] != op.Output {
			return q, false
		}
		return queueState{vals: encodeSeq(vals[1:])}, true
	}
	return q, false
}

// Key implements State.
func (q queueState) Key() string { return q.vals }

// StackSpec is the sequential LIFO stack specification.
type StackSpec struct{}

// Init returns the empty stack state.
func (StackSpec) Init() State { return stackState{} }

type stackState struct {
	vals string
}

// Apply implements State.
func (s stackState) Apply(op Op) (State, bool) {
	switch op.Action {
	case ActPush:
		vals := decodeSeq(s.vals)
		return stackState{vals: encodeSeq(append(vals, op.Input))}, true
	case ActPop:
		vals := decodeSeq(s.vals)
		if !op.OK {
			return s, len(vals) == 0
		}
		if len(vals) == 0 || vals[len(vals)-1] != op.Output {
			return s, false
		}
		return stackState{vals: encodeSeq(vals[:len(vals)-1])}, true
	}
	return s, false
}

// Key implements State.
func (s stackState) Key() string { return s.vals }

// SetSpec is the sequential ordered-set specification: add/remove/
// contains with the usual boolean results, plus the ordered operations
// (range scan with pagination cursor, strict predecessor/successor,
// extremum pops) that the sorted structures serve.
type SetSpec struct{}

// Init returns the empty set state.
func (SetSpec) Init() State { return setState{} }

type setState struct {
	keys string // sorted, comma separated
}

// Apply implements State.
func (s setState) Apply(op Op) (State, bool) {
	keys := decodeSeq(s.keys)
	switch op.Action {
	case ActScan:
		return s, s.scanLegal(keys, op)
	case ActPred:
		for i := len(keys) - 1; i >= 0; i-- {
			if keys[i] < op.Input {
				return s, op.OK && op.Output == keys[i]
			}
		}
		return s, !op.OK
	case ActSucc:
		for _, k := range keys {
			if k > op.Input {
				return s, op.OK && op.Output == k
			}
		}
		return s, !op.OK
	case ActPopMin:
		if len(keys) == 0 {
			return s, !op.OK
		}
		if !op.OK || op.Output != keys[0] {
			return s, false
		}
		return setState{keys: encodeSeq(keys[1:])}, true
	case ActPopMax:
		if len(keys) == 0 {
			return s, !op.OK
		}
		if !op.OK || op.Output != keys[len(keys)-1] {
			return s, false
		}
		return setState{keys: encodeSeq(keys[:len(keys)-1])}, true
	}
	idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= op.Input })
	present := idx < len(keys) && keys[idx] == op.Input
	switch op.Action {
	case ActContains:
		return s, op.OK == present
	case ActAdd:
		if op.OK == present {
			return s, false
		}
		if !op.OK {
			return s, true // failed add: present, state unchanged
		}
		keys = append(keys[:idx], append([]int64{op.Input}, keys[idx:]...)...)
		return setState{keys: encodeSeq(keys)}, true
	case ActRemove:
		if op.OK != present {
			return s, false
		}
		if !op.OK {
			return s, true // failed remove: absent, state unchanged
		}
		keys = append(keys[:idx], keys[idx+1:]...)
		return setState{keys: encodeSeq(keys)}, true
	}
	return s, false
}

// scanLegal reports whether a recorded range scan is the answer this
// state gives for [Input, Input2) with the recorded Limit: the keys in
// the interval in ascending order, truncated at Limit, with the cursor
// at Input2 when the interval was exhausted or at the first unreturned
// key when the limit bit. Scans never mutate the state.
func (setState) scanLegal(keys []int64, op Op) bool {
	if !op.OK {
		return false // scans always succeed; a failed one is no scan
	}
	want := keys[:0:0]
	cursor := op.Input2
	for i, k := range keys {
		if k < op.Input || k >= op.Input2 {
			continue
		}
		if op.Limit > 0 && len(want) == op.Limit {
			cursor = keys[i]
			break
		}
		want = append(want, k)
	}
	if op.Output != cursor || len(op.Outputs) != len(want) {
		return false
	}
	for i := range want {
		if op.Outputs[i] != want[i] {
			return false
		}
	}
	return true
}

// Key implements State.
func (s setState) Key() string { return s.keys }
