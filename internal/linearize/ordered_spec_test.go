package linearize

import "testing"

// seqOps builds a strictly sequential history (no concurrency): op i
// occupies [i, i], so the only legal order is the given one.
func seqOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	for i, op := range ops {
		op.Start, op.End, op.Client = int64(i), int64(i), 0
		out[i] = op
	}
	return out
}

func TestSetSpecScanLegal(t *testing.T) {
	h := seqOps([]Op{
		{Action: ActAdd, Input: 10, OK: true},
		{Action: ActAdd, Input: 20, OK: true},
		{Action: ActAdd, Input: 30, OK: true},
		// Complete scan: cursor lands on hi.
		{Action: ActScan, Input: 5, Input2: 25, Limit: 16, Output: 25, Outputs: []int64{10, 20}, OK: true},
		// Truncated scan: cursor is the first unreturned key.
		{Action: ActScan, Input: 0, Input2: 100, Limit: 2, Output: 30, Outputs: []int64{10, 20}, OK: true},
		// Empty scan of a hole.
		{Action: ActScan, Input: 11, Input2: 19, Limit: 16, Output: 19, Outputs: nil, OK: true},
		// Inverted interval: legal, empty, complete.
		{Action: ActScan, Input: 50, Input2: 40, Limit: 16, Output: 40, Outputs: nil, OK: true},
	})
	if !Check(SetSpec{}, h) {
		t.Fatal("legal scan history rejected")
	}
}

func TestSetSpecScanIllegal(t *testing.T) {
	base := []Op{
		{Action: ActAdd, Input: 10, OK: true},
		{Action: ActAdd, Input: 20, OK: true},
	}
	for name, scan := range map[string]Op{
		"missing key":   {Action: ActScan, Input: 0, Input2: 100, Limit: 16, Output: 100, Outputs: []int64{10}, OK: true},
		"phantom key":   {Action: ActScan, Input: 0, Input2: 100, Limit: 16, Output: 100, Outputs: []int64{10, 15, 20}, OK: true},
		"wrong order":   {Action: ActScan, Input: 0, Input2: 100, Limit: 16, Output: 100, Outputs: []int64{20, 10}, OK: true},
		"out of range":  {Action: ActScan, Input: 15, Input2: 100, Limit: 16, Output: 100, Outputs: []int64{10, 20}, OK: true},
		"wrong cursor":  {Action: ActScan, Input: 0, Input2: 100, Limit: 16, Output: 20, Outputs: []int64{10, 20}, OK: true},
		"over limit":    {Action: ActScan, Input: 0, Input2: 100, Limit: 1, Output: 100, Outputs: []int64{10, 20}, OK: true},
		"failed status": {Action: ActScan, Input: 0, Input2: 100, Limit: 16, Output: 100, Outputs: []int64{10, 20}, OK: false},
	} {
		h := seqOps(append(append([]Op(nil), base...), scan))
		if Check(SetSpec{}, h) {
			t.Errorf("%s: illegal scan history accepted", name)
		}
	}
}

func TestSetSpecNeighborsAndPops(t *testing.T) {
	h := seqOps([]Op{
		{Action: ActAdd, Input: 10, OK: true},
		{Action: ActAdd, Input: 20, OK: true},
		{Action: ActAdd, Input: 30, OK: true},
		{Action: ActPred, Input: 25, Output: 20, OK: true},
		{Action: ActPred, Input: 10, OK: false},
		{Action: ActSucc, Input: 20, Output: 30, OK: true},
		{Action: ActSucc, Input: 30, OK: false},
		{Action: ActPopMin, Output: 10, OK: true},
		{Action: ActPopMax, Output: 30, OK: true},
		{Action: ActPopMin, Output: 20, OK: true},
		{Action: ActPopMin, OK: false},
		{Action: ActPopMax, OK: false},
	})
	if !Check(SetSpec{}, h) {
		t.Fatal("legal neighbor/pop history rejected")
	}

	for name, bad := range map[string][]Op{
		"pop wrong min":    {{Action: ActAdd, Input: 5, OK: true}, {Action: ActAdd, Input: 7, OK: true}, {Action: ActPopMin, Output: 7, OK: true}},
		"pop empty ok":     {{Action: ActPopMin, Output: 0, OK: true}},
		"pop nonempty !ok": {{Action: ActAdd, Input: 5, OK: true}, {Action: ActPopMax, OK: false}},
		"pred not strict":  {{Action: ActAdd, Input: 5, OK: true}, {Action: ActPred, Input: 5, Output: 5, OK: true}},
		"succ wrong":       {{Action: ActAdd, Input: 5, OK: true}, {Action: ActAdd, Input: 9, OK: true}, {Action: ActSucc, Input: 5, Output: 5, OK: true}},
	} {
		if Check(SetSpec{}, seqOps(bad)) {
			t.Errorf("%s: illegal history accepted", name)
		}
	}
}

// TestScanObservesConcurrentRemove: a scan concurrent with a remove may
// or may not see the removed key — both answers must be accepted, and
// an answer consistent with neither order must not.
func TestScanObservesConcurrentRemove(t *testing.T) {
	base := []Op{
		{Start: 0, End: 1, Client: 0, Action: ActAdd, Input: 10, OK: true},
		{Start: 2, End: 3, Client: 0, Action: ActAdd, Input: 20, OK: true},
		{Start: 10, End: 20, Client: 1, Action: ActRemove, Input: 10, OK: true},
	}
	sees := Op{Start: 12, End: 18, Client: 2, Action: ActScan, Input: 0, Input2: 100, Limit: 16, Output: 100, Outputs: []int64{10, 20}, OK: true}
	missed := sees
	missed.Outputs = []int64{20}
	phantom := sees
	phantom.Outputs = []int64{10, 15, 20}
	if !Check(SetSpec{}, append(append([]Op(nil), base...), sees)) {
		t.Error("scan ordered before the remove rejected")
	}
	if !Check(SetSpec{}, append(append([]Op(nil), base...), missed)) {
		t.Error("scan ordered after the remove rejected")
	}
	if Check(SetSpec{}, append(append([]Op(nil), base...), phantom)) {
		t.Error("scan with a phantom key accepted")
	}
}
