// Package linearize implements a Wing & Gong style linearizability
// checker for operation histories with real-time intervals — the
// correctness condition the paper requires of its data structures
// ("designing concurrent data structures with correctness guarantees,
// like linearizability, very challenging", Section 6).
//
// The deterministic simulator makes the checker practical: every
// client records (invocation, response) in exact virtual time, and the
// checker searches for a legal sequential order consistent with those
// intervals. Complexity is exponential in the worst case but the
// effective branching factor equals the number of concurrent clients,
// and memoization over (linearized-set, state) keeps realistic
// histories (hundreds of operations, ≤ tens of clients) fast.
package linearize

import (
	"fmt"
	"math"
	"sort"
)

// Op is one completed operation. Input2, Limit and Outputs matter only
// to actions that use them (ActScan's hi bound, result cap and
// returned keys); point actions leave them zero.
type Op struct {
	Start   int64 // invocation time (exclusive precedence boundary)
	End     int64 // response time
	Client  int   // issuing client: ops of one client are program-ordered
	Action  int   // spec-defined operation code
	Input   int64
	Input2  int64   // second input (a scan's exclusive hi bound)
	Limit   int     // result cap (≤ 0 = unlimited)
	Output  int64   // primary output (a scan's pagination cursor)
	Outputs []int64 // variable-length output (a scan's keys)
	OK      bool    // spec-defined success flag of the response
}

// Spec is a sequential specification: Apply returns (successor state,
// true) if op's recorded response is legal from state, or (_, false).
// States must be immutable; Key must uniquely fingerprint a state.
type Spec interface {
	Init() State
}

// State is one immutable sequential-specification state.
type State interface {
	Apply(op Op) (State, bool)
	Key() string
}

// window is the maximum number of operations an interval may overlap
// in start order; it bounds the memoization bitmask. Closed-loop
// clients overlap at most #clients ops, far below this.
const window = 64

// Check reports whether history is linearizable with respect to spec.
// Precedence is the union of real-time order (A.End < B.Start) and
// per-client program order (closed-loop clients produce back-to-back
// operations whose response and next invocation carry the *same*
// virtual timestamp; the Client field keeps them ordered). Check
// panics if any operation interval is malformed or if more than 64
// operations are pairwise concurrent (raise window if that ever
// matters).
func Check(spec Spec, history []Op) bool {
	if len(history) == 0 {
		return true
	}
	ops := append([]Op(nil), history...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
	for _, op := range ops {
		if op.End < op.Start {
			panic(fmt.Sprintf("linearize: inverted interval %+v", op))
		}
	}

	c := &checker{ops: ops, memo: make(map[string]bool)}
	return c.search(0, 0, spec.Init())
}

type checker struct {
	ops  []Op
	memo map[string]bool
}

// search: ops[0:base) are all linearized; mask marks additionally
// linearized ops among ops[base : base+window).
func (c *checker) search(base int, mask uint64, st State) bool {
	// Normalize: advance base over completed low bits.
	for mask&1 == 1 {
		base++
		mask >>= 1
	}
	if base == len(c.ops) {
		return true
	}

	key := fmt.Sprintf("%d/%x/%s", base, mask, st.Key())
	if done, ok := c.memo[key]; ok {
		return done
	}

	// An op can be linearized next iff it is pending and no other
	// pending op finished before it started. The earliest End among
	// pending ops bounds which candidates are eligible.
	limit := len(c.ops) - base
	if limit > window {
		limit = window
	}
	minEnd := int64(math.MaxInt64)
	for i := 0; i < limit; i++ {
		if mask&(1<<i) != 0 {
			continue
		}
		if e := c.ops[base+i].End; e < minEnd {
			minEnd = e
		}
	}
	// Ops beyond the memoization window must not be eligible yet; with
	// closed-loop clients the window (64) far exceeds any realistic
	// concurrency, so this is a safety check, not a practical limit.
	if len(c.ops)-base > window && c.ops[base+window].Start <= minEnd {
		panic("linearize: concurrency window exceeded")
	}
	ok := false
	for i := 0; i < limit; i++ {
		if mask&(1<<i) != 0 {
			continue
		}
		op := c.ops[base+i]
		if op.Start > minEnd {
			// Every later op (sorted by Start) starts even later:
			// all are preceded by the min-End pending op.
			break
		}
		// Program order: an earlier pending op of the same client must
		// linearize first. The stable sort keeps a client's ops in
		// history order, so scanning lower indices suffices.
		blocked := false
		for j := 0; j < i; j++ {
			if mask&(1<<j) == 0 && c.ops[base+j].Client == op.Client {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		next, legal := st.Apply(op)
		if !legal {
			continue
		}
		if c.search(base, mask|1<<i, next) {
			ok = true
			break
		}
	}
	c.memo[key] = ok
	return ok
}
