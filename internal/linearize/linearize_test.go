package linearize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyHistory(t *testing.T) {
	if !Check(QueueSpec{}, nil) {
		t.Error("empty history must be linearizable")
	}
}

func TestSequentialQueueHistory(t *testing.T) {
	// enq(1) enq(2) deq→1 deq→2, strictly sequential.
	h := []Op{
		{Start: 0, End: 1, Action: ActEnqueue, Input: 1},
		{Start: 2, End: 3, Action: ActEnqueue, Input: 2},
		{Start: 4, End: 5, Action: ActDequeue, Output: 1, OK: true},
		{Start: 6, End: 7, Action: ActDequeue, Output: 2, OK: true},
	}
	if !Check(QueueSpec{}, h) {
		t.Error("sequential FIFO history must be linearizable")
	}
	// Swap dequeue outputs: no longer FIFO.
	h[2].Output, h[3].Output = 2, 1
	if Check(QueueSpec{}, h) {
		t.Error("LIFO-order dequeues must not linearize as a queue")
	}
}

func TestConcurrentReorderAllowed(t *testing.T) {
	// Two concurrent enqueues then two dequeues in "wrong" order vs
	// invocation order: allowed because the enqueues overlap.
	h := []Op{
		{Start: 0, End: 10, Client: 1, Action: ActEnqueue, Input: 1},
		{Start: 1, End: 9, Client: 2, Action: ActEnqueue, Input: 2},
		{Start: 20, End: 21, Client: 3, Action: ActDequeue, Output: 2, OK: true},
		{Start: 22, End: 23, Client: 3, Action: ActDequeue, Output: 1, OK: true},
	}
	if !Check(QueueSpec{}, h) {
		t.Error("concurrent enqueues may linearize in either order")
	}
	// Make the enqueues sequential: now the order is fixed.
	h[0].End = 1
	h[1].Start = 2
	h[1].End = 3
	if Check(QueueSpec{}, h) {
		t.Error("sequential enqueues must dequeue in order")
	}
}

func TestDequeueEmptyLegality(t *testing.T) {
	// deq→empty concurrent with an enqueue: legal (linearize deq first).
	h := []Op{
		{Start: 0, End: 10, Client: 1, Action: ActEnqueue, Input: 5},
		{Start: 1, End: 9, Client: 2, Action: ActDequeue, OK: false},
	}
	if !Check(QueueSpec{}, h) {
		t.Error("empty dequeue concurrent with enqueue is linearizable")
	}
	// deq→empty strictly after a completed enqueue with no dequeue in
	// between: illegal.
	h = []Op{
		{Start: 0, End: 1, Action: ActEnqueue, Input: 5},
		{Start: 2, End: 3, Action: ActDequeue, OK: false},
	}
	if Check(QueueSpec{}, h) {
		t.Error("empty dequeue after completed enqueue must fail")
	}
}

func TestStackSpec(t *testing.T) {
	h := []Op{
		{Start: 0, End: 1, Action: ActPush, Input: 1},
		{Start: 2, End: 3, Action: ActPush, Input: 2},
		{Start: 4, End: 5, Action: ActPop, Output: 2, OK: true},
		{Start: 6, End: 7, Action: ActPop, Output: 1, OK: true},
	}
	if !Check(StackSpec{}, h) {
		t.Error("LIFO history must linearize as a stack")
	}
	h[2].Output, h[3].Output = 1, 2
	if Check(StackSpec{}, h) {
		t.Error("FIFO-order pops must not linearize as a stack")
	}
}

func TestSetSpec(t *testing.T) {
	h := []Op{
		{Start: 0, End: 1, Action: ActAdd, Input: 7, OK: true},
		{Start: 2, End: 3, Action: ActAdd, Input: 7, OK: false},
		{Start: 4, End: 5, Action: ActContains, Input: 7, OK: true},
		{Start: 6, End: 7, Action: ActRemove, Input: 7, OK: true},
		{Start: 8, End: 9, Action: ActContains, Input: 7, OK: false},
	}
	if !Check(SetSpec{}, h) {
		t.Error("legal set history rejected")
	}
	// A contains that sees a key that was never added.
	bad := []Op{{Start: 0, End: 1, Action: ActContains, Input: 9, OK: true}}
	if Check(SetSpec{}, bad) {
		t.Error("phantom contains accepted")
	}
	// Two successful adds of the same key with no remove between.
	bad = []Op{
		{Start: 0, End: 1, Action: ActAdd, Input: 3, OK: true},
		{Start: 2, End: 3, Action: ActAdd, Input: 3, OK: true},
	}
	if Check(SetSpec{}, bad) {
		t.Error("double successful add accepted")
	}
}

// TestRandomSequentialHistoriesAlwaysLinearizable: histories generated
// by actually running a sequential queue are always accepted, even
// after intervals are widened to overlap (a legal witness still
// exists).
func TestRandomSequentialHistoriesAlwaysLinearizable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q []int64
		var h []Op
		now := int64(0)
		for i := 0; i < 60; i++ {
			now += 2
			if rng.Intn(2) == 0 {
				v := rng.Int63n(100)
				q = append(q, v)
				h = append(h, Op{Start: now, End: now + 1, Action: ActEnqueue, Input: v})
			} else if len(q) > 0 {
				v := q[0]
				q = q[1:]
				h = append(h, Op{Start: now, End: now + 1, Action: ActDequeue, Output: v, OK: true})
			} else {
				h = append(h, Op{Start: now, End: now + 1, Action: ActDequeue, OK: false})
			}
		}
		if !Check(QueueSpec{}, h) {
			return false
		}
		// Widen every interval by a random amount: with every op on
		// one client, program order pins the sequential witness, which
		// remains legal.
		for i := range h {
			h[i].Start -= rng.Int63n(3)
			h[i].End += rng.Int63n(3)
		}
		return Check(QueueSpec{}, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInvertedIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted interval should panic")
		}
	}()
	Check(QueueSpec{}, []Op{{Start: 5, End: 1, Action: ActEnqueue}})
}
