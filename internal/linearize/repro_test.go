package linearize

import "testing"

// Regression scaffold: sequential same-producer enqueues must force
// FIFO output order even when dequeues overlap other operations.
func TestRepro(t *testing.T) {
	h := []Op{
		{Start: 0, End: 1, Action: ActEnqueue, Input: 10},
		{Start: 2, End: 3, Action: ActEnqueue, Input: 11},
		{Start: 2, End: 5, Action: ActDequeue, Output: 11, OK: true},
		{Start: 6, End: 7, Action: ActDequeue, Output: 10, OK: true},
	}
	if Check(QueueSpec{}, h) {
		t.Error("expected rejection: 11 cannot dequeue before 10 — wait, deq(11) overlaps enq(11)? Start=2..5 overlaps 2..3; enq(10) ended at 1 before enq(11): FIFO forces 10 first. Reject.")
	}
}
