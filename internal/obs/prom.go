package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format export. The registry's slash-separated metric
// names are mapped to Prometheus metric families by a PromNamer;
// counters become counter families, gauges and float gauges become
// gauge families, and histograms become summary families (quantile
// series plus _sum, _count and a _max gauge). The output follows the
// Prometheus text exposition format version 0.0.4, one family per
// HELP/TYPE block, families and series in sorted order so successive
// scrapes of the same state are byte-identical.

// PromNamer maps a registry metric name to a Prometheus family name
// and a (possibly empty) set of labels. Implementations must return a
// valid metric name ([a-zA-Z_:][a-zA-Z0-9_:]*); labels must have valid
// label names. Returning ok=false drops the metric from the export.
type PromNamer func(name string) (family string, labels []PromLabel, ok bool)

// PromLabel is one name="value" pair on an exported series.
type PromLabel struct {
	Name  string
	Value string
}

var promInvalid = regexp.MustCompile(`[^a-zA-Z0-9_:]`)

// PromSanitize is the default namer: every run of characters that is
// illegal in a Prometheus metric name becomes one underscore
// ("server/ops/total" → "server_ops_total"), and a leading digit gets
// an underscore prefix. No labels are produced.
func PromSanitize(name string) (string, []PromLabel, bool) {
	s := promInvalid.ReplaceAllString(name, "_")
	if s == "" {
		return "", nil, false
	}
	if s[0] >= '0' && s[0] <= '9' {
		s = "_" + s
	}
	return s, nil, true
}

// promSeries is one sample line within a family.
type promSeries struct {
	labels string // rendered {…} block, "" for none
	value  string
}

// promFamily accumulates the series of one family.
type promFamily struct {
	typ    string // counter | gauge | summary
	series []promSeries
}

// renderLabels joins labels (plus extras) into a {…} block.
func renderLabels(labels []PromLabel, extra ...PromLabel) string {
	all := append(append([]PromLabel(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus exports the registry's current state in Prometheus
// text format. namer maps registry names to families and labels; nil
// uses PromSanitize. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer, namer PromNamer) error {
	if r == nil {
		return nil
	}
	if namer == nil {
		namer = PromSanitize
	}
	snap := r.Snapshot()
	fams := make(map[string]*promFamily)
	add := func(name, typ string, extra []PromLabel, value string) {
		fam, labels, ok := namer(name)
		if !ok {
			return
		}
		f := fams[fam]
		if f == nil {
			f = &promFamily{typ: typ}
			fams[fam] = f
		}
		f.series = append(f.series, promSeries{labels: renderLabels(labels, extra...), value: value})
	}

	for name, v := range snap.Counters {
		add(name, "counter", nil, strconv.FormatUint(v, 10))
	}
	for name, v := range snap.Gauges {
		add(name, "gauge", nil, strconv.FormatInt(v, 10))
	}
	for name, v := range snap.Floats {
		add(name, "gauge", nil, promFloat(v))
	}
	for name, h := range snap.Histograms {
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			add(name, "summary", []PromLabel{{"quantile", q.q}}, strconv.FormatInt(q.v, 10))
		}
		add(name+"_sum", "counter", nil, strconv.FormatInt(h.Sum, 10))
		add(name+"_count", "counter", nil, strconv.FormatUint(h.Count, 10))
		add(name+"_max", "gauge", nil, strconv.FormatInt(h.Max, 10))
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := fams[name]
		// _sum/_count of a summary are implied by the family; only
		// standalone families get TYPE lines.
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if base != name {
			if bf, ok := fams[base]; ok && bf.typ == "summary" {
				f.typ = ""
			}
		}
		if f.typ != "" {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", name, f.typ)
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			fmt.Fprintf(&sb, "%s%s %s\n", name, s.labels, s.value)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
