package obs

import (
	"math/rand"
	"sync"
	"testing"
)

// TestHistogramMergePercentileBracket is the merge property test: fold
// several independently (and concurrently) recorded histograms into
// one, and the merged percentiles must bracket the per-source
// percentiles — a mixture's q-quantile can never undercut every
// source's q-quantile nor exceed every source's, and with a shared
// bucket layout the same holds for the bucketized values.
func TestHistogramMergePercentileBracket(t *testing.T) {
	const (
		sources   = 5
		writers   = 4
		perWriter = 2000
		quantiles = 3
	)
	qs := [quantiles]float64{0.50, 0.95, 0.99}

	srcs := make([]*Histogram, sources)
	var wg sync.WaitGroup
	for i := range srcs {
		srcs[i] = &Histogram{}
		// Each source records from several goroutines at once: the
		// property must hold for histograms built under contention,
		// and -race checks the recording path itself.
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(h *Histogram, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for k := 0; k < perWriter; k++ {
					// Spread sources over different octaves so their
					// percentiles genuinely differ.
					h.Observe(1 + rng.Int63n(1000)<<(uint(seed)%7))
				}
			}(srcs[i], int64(i*writers+w+1))
		}
	}
	wg.Wait()

	merged := &Histogram{}
	var wantN uint64
	for _, src := range srcs {
		merged.Merge(src)
		wantN += src.N()
	}
	if merged.N() != wantN {
		t.Fatalf("merged count %d, want %d", merged.N(), wantN)
	}
	var wantSum int64
	for _, src := range srcs {
		wantSum += src.sum.Load()
	}
	if got := merged.sum.Load(); got != wantSum {
		t.Fatalf("merged sum %d, want %d", got, wantSum)
	}

	for _, q := range qs {
		lo, hi := srcs[0].Quantile(q), srcs[0].Quantile(q)
		for _, src := range srcs[1:] {
			v := src.Quantile(q)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		got := merged.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("q=%.2f: merged %d outside per-source bracket [%d, %d]", q, got, lo, hi)
		}
	}

	// Max must be the max of the sources.
	var wantMax int64
	for _, src := range srcs {
		if m := src.Max(); m > wantMax {
			wantMax = m
		}
	}
	if merged.Max() != wantMax {
		t.Errorf("merged max %d, want %d", merged.Max(), wantMax)
	}
}

func TestHistogramMergeNilSafe(t *testing.T) {
	var nilH *Histogram
	nilH.Merge(&Histogram{}) // must not panic
	h := &Histogram{}
	h.Observe(5)
	h.Merge(nil)
	if h.N() != 1 {
		t.Fatalf("merge(nil) changed the histogram: n=%d", h.N())
	}
}

// TestHistogramSnapshotConsistent hammers a histogram with concurrent
// observers while snapshotting: every snapshot must be internally
// consistent — its quantiles computed from exactly the bucket state
// its count reflects, so p50 ≤ p95 ≤ p99 ≤ max and a nonzero count
// implies nonzero quantiles.
func TestHistogramSnapshotConsistent(t *testing.T) {
	h := &Histogram{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(1 + rng.Int63n(1<<20))
				}
			}
		}(int64(w + 1))
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if s.P50 == 0 || s.P95 == 0 || s.P99 == 0 {
			t.Fatalf("snapshot with count %d has zero quantile: %+v", s.Count, s)
		}
		if s.P50 > s.P95 || s.P95 > s.P99 {
			t.Fatalf("quantiles not monotone: %+v", s)
		}
		if s.P99 > s.Max {
			t.Fatalf("p99 %d above max %d", s.P99, s.Max)
		}
	}
	close(stop)
	wg.Wait()

	// At quiescence the snapshot must agree with the accessors.
	s := h.Snapshot()
	if s.Count != h.N() || s.Max != h.Max() {
		t.Fatalf("quiescent snapshot %+v disagrees with N=%d Max=%d", s, h.N(), h.Max())
	}
	p50, p95, p99 := h.Percentiles()
	if s.P50 != p50 || s.P95 != p95 || s.P99 != p99 {
		t.Fatalf("quiescent snapshot %+v disagrees with percentiles %d/%d/%d", s, p50, p95, p99)
	}
}
