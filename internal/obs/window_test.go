package obs

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"
)

// --- HistogramSnapshot.Sub edge cases (delta/merge algebra) ---

func TestSubOfIdenticalSnapshotsIsZero(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 37)
	}
	s := h.Snapshot()
	d := s.Sub(s)
	if d.Count != 0 || d.Sum != 0 || d.Mean != 0 || d.Max != 0 ||
		d.P50 != 0 || d.P95 != 0 || d.P99 != 0 {
		t.Fatalf("Sub(self) not zero: %+v", d)
	}
	if d.Buckets != nil {
		t.Fatalf("Sub(self) kept buckets: %d", len(d.Buckets))
	}
}

func TestSubRoundTripsThroughMerge(t *testing.T) {
	// Phase 1 observations in h1; phase 2 observations in h2; total =
	// h1 merged with h2. Then total.Sub(phase1) must equal h2's own
	// snapshot on every summary field — Sub is Merge's inverse under
	// wraparound-free growth.
	h1, h2 := &Histogram{}, &Histogram{}
	for i := int64(0); i < 500; i++ {
		h1.Observe(1 + i%100)
	}
	for i := int64(0); i < 300; i++ {
		h2.Observe(5000 + i*13)
	}
	s1 := h1.Snapshot()
	total := &Histogram{}
	total.Merge(h1)
	total.Merge(h2)
	d := total.Snapshot().Sub(s1)
	want := h2.Snapshot()
	if d.Count != want.Count || d.Sum != want.Sum || d.Mean != want.Mean {
		t.Fatalf("delta count/sum/mean = %d/%d/%g, want %d/%d/%g",
			d.Count, d.Sum, d.Mean, want.Count, want.Sum, want.Mean)
	}
	if d.P50 != want.P50 || d.P95 != want.P95 || d.P99 != want.P99 {
		t.Fatalf("delta quantiles p50/p95/p99 = %d/%d/%d, want %d/%d/%d",
			d.P50, d.P95, d.P99, want.P50, want.P95, want.P99)
	}
	// The merge raised the running max (phase 2 values exceed phase
	// 1's), so the delta max is exact.
	if d.Max != want.Max {
		t.Fatalf("delta max = %d, want %d", d.Max, want.Max)
	}
	if !reflect.DeepEqual(d.Buckets, want.Buckets) {
		t.Fatal("delta buckets differ from phase-2 buckets")
	}
}

func TestSubEmptyDeltaQuantilesDefined(t *testing.T) {
	// A window interval during which nothing was observed: quantiles,
	// mean and max of the delta are all zero — never NaN, never a
	// panic.
	h := &Histogram{}
	for i := int64(1); i <= 64; i++ {
		h.Observe(i)
	}
	s1 := h.Snapshot()
	s2 := h.Snapshot() // no observations in between
	d := s2.Sub(s1)
	if d.Count != 0 {
		t.Fatalf("empty delta count = %d", d.Count)
	}
	for name, v := range map[string]float64{"mean": d.Mean} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("empty delta %s = %v", name, v)
		}
	}
	if d.P50 != 0 || d.P95 != 0 || d.P99 != 0 || d.Max != 0 {
		t.Fatalf("empty delta quantiles not zero: %+v", d)
	}
	// Same through the zero value entirely.
	z := HistogramSnapshot{}.Sub(HistogramSnapshot{})
	if z.Count != 0 || z.Sum != 0 || z.Mean != 0 || z.Max != 0 ||
		z.P50 != 0 || z.P95 != 0 || z.P99 != 0 || z.Buckets != nil {
		t.Fatalf("zero Sub zero = %+v", z)
	}
}

func TestSubMaxFallsBackToBucketBound(t *testing.T) {
	// When the interval does not raise the running maximum, the delta
	// max degrades to the bucket lower bound of the interval's largest
	// observation — same granularity as the quantiles.
	h := &Histogram{}
	h.Observe(1 << 20) // the all-time max, recorded before the interval
	s1 := h.Snapshot()
	h.Observe(1000)
	d := h.Snapshot().Sub(s1)
	if d.Count != 1 {
		t.Fatalf("delta count = %d", d.Count)
	}
	low := bucketLow(bucketIndex(1000))
	if d.Max != low {
		t.Fatalf("delta max = %d, want bucket bound %d", d.Max, low)
	}
}

func TestSubWithoutBucketsSubtractsSummariesOnly(t *testing.T) {
	prev := HistogramSnapshot{Count: 10, Sum: 100}
	cur := HistogramSnapshot{Count: 30, Sum: 400}
	d := cur.Sub(prev)
	if d.Count != 20 || d.Sum != 300 || d.Mean != 15 {
		t.Fatalf("summary-only delta: %+v", d)
	}
	if d.P50 != 0 || d.Buckets != nil {
		t.Fatalf("summary-only delta must not invent quantiles: %+v", d)
	}
}

// --- Window rotation ---

func TestWindowTiersAndDeltas(t *testing.T) {
	reg := NewRegistry()
	ops := reg.Counter("ops")
	depth := reg.Gauge("depth")
	lat := reg.Histogram("lat")

	w, err := NewWindow(reg, []Tier{
		{Name: "fine", Interval: time.Second, Size: 4},
		{Name: "coarse", Interval: 3 * time.Second, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Six rotations with 10 ops and one 100ns observation each.
	for r := 1; r <= 6; r++ {
		ops.Add(10)
		depth.Set(int64(r))
		lat.Observe(100)
		w.Rotate()
	}

	h := w.History()
	if h.Seq != 6 {
		t.Fatalf("seq = %d, want 6", h.Seq)
	}
	if len(h.Tiers) != 2 {
		t.Fatalf("tiers = %d, want 2", len(h.Tiers))
	}
	fine := h.Tier("fine")
	if len(fine.Samples) != 4 {
		t.Fatalf("fine ring holds %d samples, want 4 (size-bounded)", len(fine.Samples))
	}
	for i, s := range fine.Samples {
		if s.Counters["ops"] != 10 {
			t.Errorf("fine sample %d ops delta = %d, want 10", i, s.Counters["ops"])
		}
		if hs := s.Histograms["lat"]; hs.Count != 1 || hs.P50 != bucketLow(bucketIndex(100)) {
			t.Errorf("fine sample %d lat delta: %+v", i, hs)
		}
		if s.DurNS != time.Second.Nanoseconds() {
			t.Errorf("fine sample %d dur = %d", i, s.DurNS)
		}
	}
	// Oldest retained fine sample closed at seq 3 (seqs 1, 2 evicted).
	if got := fine.Samples[0].Seq; got != 3 {
		t.Errorf("oldest fine seq = %d, want 3", got)
	}
	if got := fine.Latest().Seq; got != 6 {
		t.Errorf("latest fine seq = %d, want 6", got)
	}
	// Gauges are instantaneous: the latest fine sample saw depth=6.
	if got := fine.Latest().Gauges["depth"]; got != 6 {
		t.Errorf("latest depth = %d, want 6", got)
	}

	coarse := h.Tier("coarse")
	if len(coarse.Samples) != 2 {
		t.Fatalf("coarse ring holds %d samples, want 2", len(coarse.Samples))
	}
	for i, s := range coarse.Samples {
		if s.Counters["ops"] != 30 {
			t.Errorf("coarse sample %d ops delta = %d, want 30 (3 rotations)", i, s.Counters["ops"])
		}
		if hs := s.Histograms["lat"]; hs.Count != 3 {
			t.Errorf("coarse sample %d lat count = %d, want 3", i, hs.Count)
		}
	}
	if got := coarse.Latest().Seq; got != 6 {
		t.Errorf("latest coarse seq = %d, want 6", got)
	}
}

func TestWindowJSONDeterministic(t *testing.T) {
	// Two windows shown the same registry-state sequence produce
	// byte-identical history documents: no wall-clock, no map-order
	// jitter.
	run := func() []byte {
		reg := NewRegistry()
		w, err := NewWindow(reg, nil) // default tiers
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 90; r++ {
			reg.Counter("server/ops/total").Add(uint64(7 + r%3))
			reg.Gauge("server/shard/000/queue_depth").Set(int64(r % 5))
			reg.Histogram("server/op_latency_ns").Observe(int64(1000 + r*17))
			reg.FloatGauge("imbalance").Set(float64(r) / 90)
			w.Rotate()
		}
		var buf bytes.Buffer
		if err := w.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("history JSON differs across identical registry-state sequences:\n%s\n---\n%s", a, b)
	}
}

func TestWindowValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := NewWindow(reg, []Tier{{Name: "x", Interval: time.Second, Size: 0}}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewWindow(reg, []Tier{
		{Name: "a", Interval: 2 * time.Second, Size: 4},
		{Name: "b", Interval: 3 * time.Second, Size: 4},
	}); err == nil {
		t.Error("non-multiple tier interval accepted")
	}
	if _, err := NewWindow(reg, []Tier{{Name: "x", Interval: 0, Size: 1}}); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestWindowNilSafety(t *testing.T) {
	var w *Window
	w.Rotate()
	if w.Seq() != 0 {
		t.Error("nil window seq")
	}
	h := w.History()
	if len(h.Tiers) != 0 {
		t.Error("nil window has tiers")
	}
	if h.Tier("") != nil {
		t.Error("empty history hands out a tier")
	}
	var th *TierHistory
	if th.Latest() != nil {
		t.Error("nil tier has a latest sample")
	}
}
