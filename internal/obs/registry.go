package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Registry is a named collection of metrics. Metric getters return the
// existing metric or create it, so independent subsystems can share one
// metric by name. A nil *Registry hands out nil metrics, which makes
// disabling observability as simple as not creating a registry.
//
// Names are flat, slash-separated paths ("vault/003/reads",
// "latency/MsgAdd"); the snapshot sorts them, so numeric path segments
// should be zero-padded to keep related metrics adjacent.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	floats     map[string]*FloatGauge
	hists      map[string]*Histogram
	collectors []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed (nil through
// a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it if needed.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.floats[name]
	if g == nil {
		g = &FloatGauge{}
		r.floats[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddCollector registers fn to run at the start of every Snapshot.
// Collectors export state that is cheaper to read once at snapshot time
// than to track per event (vault counters, partition sizes, …); they
// run in registration order, which keeps snapshots deterministic.
func (r *Registry) AddCollector(fn func(*Registry)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// HistogramSnapshot is the exported summary of one histogram.
//
// Buckets, when present, holds the cumulative per-bucket counts the
// summary fields were derived from. It is carried outside the JSON
// document (the snapshot wire format is unchanged) purely so snapshots
// can be subtracted: Sub recomputes exact delta quantiles from the
// bucket difference. Call Compact to drop it once no further
// subtraction is needed (e.g. before retaining samples in a ring).
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	Sum   int64   `json:"sum"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`

	Buckets []uint64 `json:"-"`
}

// Sub returns the delta histogram between two cumulative snapshots of
// the same histogram: the observations recorded after prev was taken
// and up to s. Counts, sums and quantiles are exact (recomputed from
// the per-bucket difference); Max is exact when the interval raised the
// running maximum and otherwise falls back to the bucket lower bound of
// the largest delta observation — the same granularity the quantiles
// already have. Subtracting a snapshot from itself yields the zero
// snapshot, and an empty delta has defined (zero) quantiles and mean.
// Snapshots taken without bucket counts subtract on the summary fields
// only, with quantiles zeroed (they cannot be recomputed).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{}
	if s.Count >= prev.Count {
		d.Count = s.Count - prev.Count
	}
	if d.Count == 0 {
		return d
	}
	if s.Sum >= prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	d.Mean = float64(d.Sum) / float64(d.Count)
	if len(s.Buckets) == 0 {
		// No buckets to diff (hand-built or foreign snapshot): summary
		// deltas only.
		return d
	}
	pb := prev.Buckets
	if len(pb) != len(s.Buckets) {
		if len(pb) == 0 && prev.Count == 0 {
			// prev predates the metric (e.g. the zero snapshot a window's
			// first interval subtracts): an empty baseline is all-zero
			// buckets.
			pb = nil
		} else {
			return d
		}
	}
	counts := make([]uint64, len(s.Buckets))
	top := -1
	for i := range counts {
		var p uint64
		if pb != nil {
			p = pb[i]
		}
		if c := s.Buckets[i]; c > p {
			counts[i] = c - p
			top = i
		}
	}
	d.Buckets = counts
	d.P50 = quantileFromBuckets(counts, d.Count, 0.50)
	d.P95 = quantileFromBuckets(counts, d.Count, 0.95)
	d.P99 = quantileFromBuckets(counts, d.Count, 0.99)
	if s.Max > prev.Max {
		d.Max = s.Max // the interval set a new running maximum: exact
	} else if top >= 0 {
		d.Max = bucketLow(top)
	}
	return d
}

// Compact returns the snapshot without its bucket array, for retention
// in rings and documents where only the summary matters.
func (s HistogramSnapshot) Compact() HistogramSnapshot {
	s.Buckets = nil
	return s
}

// Snapshot is a point-in-time copy of every metric. encoding/json
// serializes map keys in sorted order, so the document is stable for a
// given set of metric values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Floats     map[string]float64           `json:"floats"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot runs the collectors and copies every metric's current value
// (nil registry yields an empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Floats:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	collectors := make([]func(*Registry), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(r)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.floats {
		s.Floats[name] = g.Value()
	}
	for name, h := range r.hists {
		// One consistent read per histogram: scrapes racing live
		// recorders (or a graceful drain) must never see quantiles
		// that disagree with their own count.
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
