// Package health is a rule-driven health engine over windowed metrics:
// declarative rules evaluate an obs.History — the tiered per-interval
// delta document an obs.Window maintains — into an ok/degraded/failing
// verdict with per-rule reasons. The server caches the verdict on
// every window rotation and serves it at /healthz; nothing here runs
// on a request path.
//
// Rules read *windows*, not cumulative totals, because health is about
// dynamics: a p99 ceiling is breached by the last second's latency,
// not the lifetime aggregate; queue depth matters when it grows
// monotonically, not when it once spiked; combining-factor collapse is
// the flat-combining engine degrading under current load. Metric
// fields accept a single-segment wildcard ("server/shard/*/batch_size")
// so per-shard series aggregate into one verdict.
package health

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"pimds/internal/obs"
)

// State orders health severities: the engine's overall state is the
// worst any rule reports.
type State int

const (
	Ok State = iota
	Degraded
	Failing
)

// String returns the wire form served at /healthz.
func (s State) String() string {
	switch s {
	case Degraded:
		return "degraded"
	case Failing:
		return "failing"
	default:
		return "ok"
	}
}

// MarshalJSON encodes the state as its string form.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string form, so /healthz documents
// round-trip into clients (pimtop decodes them).
func (s *State) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "ok":
		*s = Ok
	case "degraded":
		*s = Degraded
	case "failing":
		*s = Failing
	default:
		return fmt.Errorf("health: unknown state %q", str)
	}
	return nil
}

// RuleResult is one rule's verdict.
type RuleResult struct {
	Rule   string  `json:"rule"`
	State  State   `json:"state"`
	Reason string  `json:"reason"`
	Value  float64 `json:"value"`
}

// Rule evaluates one health invariant over a window history.
type Rule interface {
	Name() string
	Eval(h *obs.History) RuleResult
}

// Verdict is the engine's aggregate answer: the worst rule state plus
// every rule's individual result, in rule-registration order.
type Verdict struct {
	State State        `json:"state"`
	Rules []RuleResult `json:"rules"`
}

// Engine evaluates a fixed rule set.
type Engine struct {
	rules []Rule
}

// NewEngine builds an engine over rules (order is preserved in
// verdicts).
func NewEngine(rules ...Rule) *Engine {
	return &Engine{rules: rules}
}

// Evaluate runs every rule over h and folds the worst state. A nil
// engine or empty rule set is ok. Evaluation belongs next to window
// rotation (the ticker goroutine); request handlers read the cached
// verdict.
func (e *Engine) Evaluate(h *obs.History) Verdict {
	v := Verdict{State: Ok, Rules: []RuleResult{}}
	if e == nil {
		return v
	}
	for _, r := range e.rules {
		res := r.Eval(h)
		if res.Rule == "" {
			res.Rule = r.Name()
		}
		if res.State > v.State {
			v.State = res.State
		}
		v.Rules = append(v.Rules, res)
	}
	return v
}

// matchMetric reports whether name matches pattern, where one "*"
// pattern segment matches exactly one name segment.
func matchMetric(pattern, name string) bool {
	if !strings.Contains(pattern, "*") {
		return pattern == name
	}
	ps := strings.Split(pattern, "/")
	ns := strings.Split(name, "/")
	if len(ps) != len(ns) {
		return false
	}
	for i := range ps {
		if ps[i] != "*" && ps[i] != ns[i] {
			return false
		}
	}
	return true
}

// latest returns the newest sample of the named tier ("" = finest), or
// nil when the window has not closed one yet.
func latest(h *obs.History, tier string) *obs.WindowSample {
	return h.Tier(tier).Latest()
}

// grade maps a value against warn/fail thresholds where larger is
// worse (invert the comparison before calling for floors).
func grade(v, warn, fail float64) State {
	switch {
	case fail > 0 && v >= fail:
		return Failing
	case warn > 0 && v >= warn:
		return Degraded
	default:
		return Ok
	}
}

// noSamples is the shared idle answer before the first rotation.
func noSamples(name string) RuleResult {
	return RuleResult{Rule: name, State: Ok, Reason: "no window samples yet"}
}

// QuantileCeiling flags a latency quantile of the latest window
// exceeding its ceiling: the "p99 over budget right now" rule. With a
// wildcard Metric the worst matching series decides. Intervals with
// fewer than MinCount observations are reported ok ("idle") so an
// unloaded server is healthy by definition.
type QuantileCeiling struct {
	RuleName string
	Metric   string        // histogram name or single-* pattern
	Quantile float64       // 0.50, 0.95 or 0.99 (nearest snapshot field)
	Tier     string        // "" = finest
	Warn     time.Duration // degraded at or above; 0 disables
	Fail     time.Duration // failing at or above; 0 disables
	MinCount uint64        // skip intervals with fewer observations
}

// Name implements Rule.
func (r QuantileCeiling) Name() string { return r.RuleName }

// Eval implements Rule.
func (r QuantileCeiling) Eval(h *obs.History) RuleResult {
	s := latest(h, r.Tier)
	if s == nil {
		return noSamples(r.RuleName)
	}
	var worst int64
	var worstName string
	var n uint64
	for name, hs := range s.Histograms {
		if !matchMetric(r.Metric, name) {
			continue
		}
		n += hs.Count
		q := hs.P99
		switch {
		case r.Quantile <= 0.50:
			q = hs.P50
		case r.Quantile <= 0.95:
			q = hs.P95
		}
		if q > worst {
			worst, worstName = q, name
		}
	}
	if n < r.MinCount {
		return RuleResult{Rule: r.RuleName, State: Ok,
			Reason: fmt.Sprintf("idle: %d observations in window (min %d)", n, r.MinCount)}
	}
	st := grade(float64(worst), float64(r.Warn.Nanoseconds()), float64(r.Fail.Nanoseconds()))
	reason := fmt.Sprintf("p%d(%s) = %s over the last window (warn %s, fail %s)",
		int(r.Quantile*100), worstName, time.Duration(worst), r.Warn, r.Fail)
	if st == Ok {
		reason = fmt.Sprintf("p%d = %s within ceiling", int(r.Quantile*100), time.Duration(worst))
	}
	return RuleResult{Rule: r.RuleName, State: st, Reason: reason, Value: float64(worst)}
}

// GaugeGrowth flags a gauge (summed across wildcard matches) growing
// monotonically across the last Lookback samples — the queue-depth
// onset-of-overload signal: depth bouncing around is backpressure
// working, depth only ever rising is a combiner falling behind.
type GaugeGrowth struct {
	RuleName string
	Metric   string // gauge name or single-* pattern
	Tier     string
	Lookback int     // samples to examine (≥ 2)
	Warn     float64 // degraded when latest ≥ Warn × oldest; 0 disables
	Fail     float64 // failing threshold on the same ratio; 0 disables
	MinValue int64   // ignore growth below this absolute depth
}

// Name implements Rule.
func (r GaugeGrowth) Name() string { return r.RuleName }

// Eval implements Rule.
func (r GaugeGrowth) Eval(h *obs.History) RuleResult {
	t := h.Tier(r.Tier)
	if t == nil || len(t.Samples) == 0 {
		return noSamples(r.RuleName)
	}
	look := r.Lookback
	if look < 2 {
		look = 2
	}
	if len(t.Samples) < look {
		return RuleResult{Rule: r.RuleName, State: Ok,
			Reason: fmt.Sprintf("warming up: %d of %d samples", len(t.Samples), look)}
	}
	sum := func(s *obs.WindowSample) int64 {
		var v int64
		for name, g := range s.Gauges {
			if matchMetric(r.Metric, name) {
				v += g
			}
		}
		return v
	}
	window := t.Samples[len(t.Samples)-look:]
	prev := sum(&window[0])
	first := prev
	rising := true
	for i := 1; i < len(window); i++ {
		cur := sum(&window[i])
		if cur <= prev {
			rising = false
			break
		}
		prev = cur
	}
	last := sum(&window[len(window)-1])
	if !rising || last < r.MinValue {
		return RuleResult{Rule: r.RuleName, State: Ok,
			Reason: fmt.Sprintf("depth %d not monotonically growing over %d samples", last, look),
			Value:  float64(last)}
	}
	ratio := float64(last)
	if first > 0 {
		ratio = float64(last) / float64(first)
	}
	st := grade(ratio, r.Warn, r.Fail)
	return RuleResult{Rule: r.RuleName, State: st, Value: float64(last),
		Reason: fmt.Sprintf("depth grew %d → %d monotonically over %d samples (×%.1f)",
			first, last, look, ratio)}
}

// RatioFloor flags a histogram-derived mean falling under a floor —
// the combining-factor collapse rule: mean batch size across the
// latest window dropping toward 1 means flat combining has degraded
// into one-op-per-pass serving. The mean aggregates exactly across
// wildcard matches (Σ sum / Σ count). Intervals with fewer than
// MinCount observations are idle, not unhealthy.
type RatioFloor struct {
	RuleName string
	Metric   string // histogram name or single-* pattern
	Tier     string
	Warn     float64 // degraded at or below; 0 disables
	Fail     float64 // failing at or below; 0 disables
	MinCount uint64
}

// Name implements Rule.
func (r RatioFloor) Name() string { return r.RuleName }

// Eval implements Rule.
func (r RatioFloor) Eval(h *obs.History) RuleResult {
	s := latest(h, r.Tier)
	if s == nil {
		return noSamples(r.RuleName)
	}
	var count uint64
	var sum int64
	for name, hs := range s.Histograms {
		if matchMetric(r.Metric, name) {
			count += hs.Count
			sum += hs.Sum
		}
	}
	if count < r.MinCount || count == 0 {
		return RuleResult{Rule: r.RuleName, State: Ok,
			Reason: fmt.Sprintf("idle: %d observations in window (min %d)", count, r.MinCount)}
	}
	mean := float64(sum) / float64(count)
	st := Ok
	if r.Fail > 0 && mean <= r.Fail {
		st = Failing
	} else if r.Warn > 0 && mean <= r.Warn {
		st = Degraded
	}
	return RuleResult{Rule: r.RuleName, State: st, Value: mean,
		Reason: fmt.Sprintf("mean %.2f over the last window (warn ≤%.2f, fail ≤%.2f)",
			mean, r.Warn, r.Fail)}
}

// ErrorRate flags the fraction err/total of the latest window
// exceeding thresholds. Both counters aggregate across wildcard
// matches; windows with fewer than MinOps total are idle.
type ErrorRate struct {
	RuleName string
	Err      string // counter name or single-* pattern
	Total    string
	Tier     string
	Warn     float64 // degraded at or above this fraction; 0 disables
	Fail     float64
	MinOps   uint64
}

// Name implements Rule.
func (r ErrorRate) Name() string { return r.RuleName }

// Eval implements Rule.
func (r ErrorRate) Eval(h *obs.History) RuleResult {
	s := latest(h, r.Tier)
	if s == nil {
		return noSamples(r.RuleName)
	}
	var errs, total uint64
	for name, v := range s.Counters {
		if matchMetric(r.Err, name) {
			errs += v
		}
		if matchMetric(r.Total, name) {
			total += v
		}
	}
	if total < r.MinOps || total == 0 {
		return RuleResult{Rule: r.RuleName, State: Ok,
			Reason: fmt.Sprintf("idle: %d ops in window (min %d)", total, r.MinOps)}
	}
	frac := float64(errs) / float64(total)
	st := grade(frac, r.Warn, r.Fail)
	return RuleResult{Rule: r.RuleName, State: st, Value: frac,
		Reason: fmt.Sprintf("%d/%d errors (%.2f%%) over the last window (warn %.2f%%, fail %.2f%%)",
			errs, total, frac*100, r.Warn*100, r.Fail*100)}
}

// SLOBurn estimates how fast a p99 latency SLO's 1% error budget is
// being consumed, from the latest window's quantile staircase: p99
// over budget means at least 1% of requests were over (burn ≥ 1×), p95
// over means ≥ 5% (burn ≥ 5×), p50 over means ≥ 50% (burn ≥ 50×). The
// estimate is a lower bound at quantile granularity — exactly the
// direction an alert should err.
type SLOBurn struct {
	RuleName string
	Metric   string // histogram name or single-* pattern
	Tier     string
	Budget   time.Duration // the p99 budget
	Warn     float64       // degraded at or above this burn; 0 disables
	Fail     float64
	MinCount uint64
}

// Name implements Rule.
func (r SLOBurn) Name() string { return r.RuleName }

// Eval implements Rule.
func (r SLOBurn) Eval(h *obs.History) RuleResult {
	s := latest(h, r.Tier)
	if s == nil {
		return noSamples(r.RuleName)
	}
	budget := r.Budget.Nanoseconds()
	var burn float64
	var n uint64
	for name, hs := range s.Histograms {
		if !matchMetric(r.Metric, name) {
			continue
		}
		n += hs.Count
		var b float64
		switch {
		case hs.P50 > budget:
			b = 50
		case hs.P95 > budget:
			b = 5
		case hs.P99 > budget:
			b = 1
		}
		if b > burn {
			burn = b
		}
	}
	if n < r.MinCount {
		return RuleResult{Rule: r.RuleName, State: Ok,
			Reason: fmt.Sprintf("idle: %d observations in window (min %d)", n, r.MinCount)}
	}
	st := grade(burn, r.Warn, r.Fail)
	return RuleResult{Rule: r.RuleName, State: st, Value: burn,
		Reason: fmt.Sprintf("burning ≥%.0f× the p99≤%s error budget over the last window", burn, r.Budget)}
}
