package health

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pimds/internal/obs"
)

// histRecord builds a window history by driving a real registry and
// window: rounds[i] mutates the registry, then the window rotates.
func buildHistory(t *testing.T, size int, rounds []func(*obs.Registry)) *obs.History {
	t.Helper()
	reg := obs.NewRegistry()
	w, err := obs.NewWindow(reg, []obs.Tier{{Name: "1s", Interval: time.Second, Size: size}})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range rounds {
		fn(reg)
		w.Rotate()
	}
	return w.History()
}

func TestQuantileCeiling(t *testing.T) {
	rule := QuantileCeiling{
		RuleName: "p99", Metric: "lat", Quantile: 0.99,
		Warn: 10 * time.Millisecond, Fail: 100 * time.Millisecond, MinCount: 10,
	}

	// Fast window: ok.
	h := buildHistory(t, 4, []func(*obs.Registry){func(r *obs.Registry) {
		for i := 0; i < 100; i++ {
			r.Histogram("lat").Observe(int64(time.Millisecond))
		}
	}})
	if res := rule.Eval(h); res.State != Ok {
		t.Fatalf("fast window: %+v", res)
	}

	// Slow tail in the *latest* window only: degraded, even though the
	// first window was fine (cumulative metrics would dilute this).
	h = buildHistory(t, 4, []func(*obs.Registry){
		func(r *obs.Registry) {
			for i := 0; i < 100; i++ {
				r.Histogram("lat").Observe(int64(time.Millisecond))
			}
		},
		func(r *obs.Registry) {
			for i := 0; i < 100; i++ {
				r.Histogram("lat").Observe(int64(50 * time.Millisecond))
			}
		},
	})
	if res := rule.Eval(h); res.State != Degraded {
		t.Fatalf("slow latest window: %+v", res)
	}

	// Catastrophic latest window: failing.
	h = buildHistory(t, 4, []func(*obs.Registry){func(r *obs.Registry) {
		for i := 0; i < 100; i++ {
			r.Histogram("lat").Observe(int64(500 * time.Millisecond))
		}
	}})
	if res := rule.Eval(h); res.State != Failing {
		t.Fatalf("catastrophic window: %+v", res)
	}

	// Idle window: ok regardless of the single slow observation.
	h = buildHistory(t, 4, []func(*obs.Registry){func(r *obs.Registry) {
		r.Histogram("lat").Observe(int64(time.Second))
	}})
	if res := rule.Eval(h); res.State != Ok || !strings.Contains(res.Reason, "idle") {
		t.Fatalf("idle window: %+v", res)
	}

	// No samples at all.
	if res := rule.Eval(&obs.History{}); res.State != Ok {
		t.Fatalf("empty history: %+v", res)
	}
}

func TestGaugeGrowth(t *testing.T) {
	rule := GaugeGrowth{
		RuleName: "queue-growth", Metric: "server/shard/*/queue_depth",
		Lookback: 4, Warn: 2, Fail: 8, MinValue: 8,
	}
	set := func(d0, d1 int64) func(*obs.Registry) {
		return func(r *obs.Registry) {
			r.Gauge("server/shard/000/queue_depth").Set(d0)
			r.Gauge("server/shard/001/queue_depth").Set(d1)
		}
	}

	// Monotone growth across shards, ×8 over the lookback: failing.
	h := buildHistory(t, 8, []func(*obs.Registry){
		set(2, 2), set(4, 4), set(8, 8), set(16, 16),
	})
	if res := rule.Eval(h); res.State != Failing {
		t.Fatalf("monotone growth: %+v", res)
	}

	// Bouncing depth is backpressure working: ok.
	h = buildHistory(t, 8, []func(*obs.Registry){
		set(10, 10), set(2, 2), set(12, 12), set(4, 4),
	})
	if res := rule.Eval(h); res.State != Ok {
		t.Fatalf("bouncing depth: %+v", res)
	}

	// Growing but tiny (below MinValue): ok.
	h = buildHistory(t, 8, []func(*obs.Registry){
		set(0, 0), set(1, 0), set(1, 1), set(2, 1),
	})
	if res := rule.Eval(h); res.State != Ok {
		t.Fatalf("tiny depth: %+v", res)
	}

	// Not enough samples yet: warming up, ok.
	h = buildHistory(t, 8, []func(*obs.Registry){set(1, 1), set(2, 2)})
	if res := rule.Eval(h); res.State != Ok || !strings.Contains(res.Reason, "warming up") {
		t.Fatalf("warmup: %+v", res)
	}
}

func TestRatioFloorCombiningCollapse(t *testing.T) {
	rule := RatioFloor{
		RuleName: "combining", Metric: "server/shard/*/batch_size",
		Warn: 1.5, Fail: 1.05, MinCount: 10,
	}
	observe := func(batch int64, n int) func(*obs.Registry) {
		return func(r *obs.Registry) {
			for i := 0; i < n; i++ {
				r.Histogram("server/shard/000/batch_size").Observe(batch)
			}
		}
	}

	// Healthy combining factor ~8.
	h := buildHistory(t, 4, []func(*obs.Registry){observe(8, 100)})
	if res := rule.Eval(h); res.State != Ok {
		t.Fatalf("factor 8: %+v", res)
	}

	// Collapse to one-op-per-pass in the latest window: failing.
	h = buildHistory(t, 4, []func(*obs.Registry){observe(8, 100), observe(1, 100)})
	if res := rule.Eval(h); res.State != Failing {
		t.Fatalf("collapsed factor: %+v", res)
	}

	// Idle shard: ok.
	h = buildHistory(t, 4, []func(*obs.Registry){observe(1, 2)})
	if res := rule.Eval(h); res.State != Ok || !strings.Contains(res.Reason, "idle") {
		t.Fatalf("idle: %+v", res)
	}
}

func TestErrorRate(t *testing.T) {
	rule := ErrorRate{
		RuleName: "errors", Err: "server/ops/rejected", Total: "server/ops/total",
		Warn: 0.01, Fail: 0.10, MinOps: 100,
	}
	round := func(errs, total uint64) func(*obs.Registry) {
		return func(r *obs.Registry) {
			r.Counter("server/ops/rejected").Add(errs)
			r.Counter("server/ops/total").Add(total)
		}
	}

	h := buildHistory(t, 4, []func(*obs.Registry){round(0, 1000)})
	if res := rule.Eval(h); res.State != Ok {
		t.Fatalf("clean window: %+v", res)
	}

	// 5% errors in the latest window: degraded. The first (clean)
	// window no longer matters — that is the point of windowing.
	h = buildHistory(t, 4, []func(*obs.Registry){round(0, 10000), round(50, 1000)})
	if res := rule.Eval(h); res.State != Degraded {
		t.Fatalf("5%% errors: %+v", res)
	}

	// 20% errors: failing.
	h = buildHistory(t, 4, []func(*obs.Registry){round(200, 1000)})
	if res := rule.Eval(h); res.State != Failing {
		t.Fatalf("20%% errors: %+v", res)
	}

	// Idle: ok.
	h = buildHistory(t, 4, []func(*obs.Registry){round(1, 2)})
	if res := rule.Eval(h); res.State != Ok {
		t.Fatalf("idle: %+v", res)
	}
}

func TestSLOBurn(t *testing.T) {
	rule := SLOBurn{
		RuleName: "slo", Metric: "lat", Budget: 10 * time.Millisecond,
		Warn: 1, Fail: 5, MinCount: 10,
	}
	mixed := func(fast, slow int) func(*obs.Registry) {
		return func(r *obs.Registry) {
			for i := 0; i < fast; i++ {
				r.Histogram("lat").Observe(int64(time.Millisecond))
			}
			for i := 0; i < slow; i++ {
				r.Histogram("lat").Observe(int64(100 * time.Millisecond))
			}
		}
	}

	// All fast: burn 0, ok.
	h := buildHistory(t, 4, []func(*obs.Registry){mixed(100, 0)})
	if res := rule.Eval(h); res.State != Ok || res.Value != 0 {
		t.Fatalf("no burn: %+v", res)
	}

	// ~2% over budget: p99 over, p95 under → burn 1, degraded.
	h = buildHistory(t, 4, []func(*obs.Registry){mixed(98, 2)})
	if res := rule.Eval(h); res.State != Degraded || res.Value != 1 {
		t.Fatalf("burn 1: %+v", res)
	}

	// ~10% over: p95 over → burn 5, failing.
	h = buildHistory(t, 4, []func(*obs.Registry){mixed(90, 10)})
	if res := rule.Eval(h); res.State != Failing || res.Value != 5 {
		t.Fatalf("burn 5: %+v", res)
	}

	// Majority over: burn 50, failing.
	h = buildHistory(t, 4, []func(*obs.Registry){mixed(10, 90)})
	if res := rule.Eval(h); res.State != Failing || res.Value != 50 {
		t.Fatalf("burn 50: %+v", res)
	}
}

func TestEngineWorstStateWins(t *testing.T) {
	h := buildHistory(t, 4, []func(*obs.Registry){func(r *obs.Registry) {
		for i := 0; i < 1000; i++ {
			r.Histogram("lat").Observe(int64(time.Millisecond))
		}
		r.Counter("errs").Add(500)
		r.Counter("total").Add(1000)
	}})
	e := NewEngine(
		QuantileCeiling{RuleName: "p99", Metric: "lat", Quantile: 0.99,
			Warn: time.Second, Fail: 2 * time.Second, MinCount: 1},
		ErrorRate{RuleName: "errors", Err: "errs", Total: "total",
			Warn: 0.01, Fail: 0.10, MinOps: 1},
	)
	v := e.Evaluate(h)
	if v.State != Failing {
		t.Fatalf("verdict state = %v, want failing (worst rule wins): %+v", v.State, v)
	}
	if len(v.Rules) != 2 {
		t.Fatalf("verdict carries %d rules, want 2", len(v.Rules))
	}
	if v.Rules[0].Rule != "p99" || v.Rules[0].State != Ok {
		t.Errorf("rule 0: %+v", v.Rules[0])
	}
	if v.Rules[1].Rule != "errors" || v.Rules[1].State != Failing {
		t.Errorf("rule 1: %+v", v.Rules[1])
	}

	// JSON form uses string states.
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"state":"failing"`) {
		t.Fatalf("verdict JSON: %s", b)
	}

	// Nil engine and empty engine are ok.
	var nilE *Engine
	if v := nilE.Evaluate(h); v.State != Ok {
		t.Errorf("nil engine: %+v", v)
	}
	if v := NewEngine().Evaluate(h); v.State != Ok || len(v.Rules) != 0 {
		t.Errorf("empty engine: %+v", v)
	}
}

func TestMatchMetric(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/d", false},
		{"server/shard/*/batch_size", "server/shard/007/batch_size", true},
		{"server/shard/*/batch_size", "server/shard/007/queue_depth", false},
		{"server/shard/*/batch_size", "server/shard/a/b/batch_size", false},
		{"*", "anything", true},
		{"*", "two/segments", false},
	}
	for _, c := range cases {
		if got := matchMetric(c.pattern, c.name); got != c.want {
			t.Errorf("matchMetric(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}
