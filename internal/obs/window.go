package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Windowed time-series collection. A Window rotates Registry snapshots
// on a fixed cadence into tiered fixed-size rings and keeps, for every
// interval, the *delta* each metric moved by: counter increments,
// histogram observations recorded within the interval (exact bucket
// subtraction via HistogramSnapshot.Sub), and instantaneous gauge
// values at the interval's close. Cumulative-since-start telemetry
// answers "how much"; the window answers "how fast, right now, and
// trending which way" — the substrate the health engine and pimtop
// read.
//
// The Window never touches the hot path: whoever owns it calls Rotate
// from a dedicated ticker goroutine (in pimserve, rotation is
// ticker-only and pimvet's obssafety analyzer enforces that), and a
// rotation reads the registry exactly the way a /metrics scrape does.
// Nothing here reads a wall clock: samples are identified by rotation
// sequence number and nominal duration, so the history document is a
// pure function of the registry states the window was shown —
// byte-identical JSON for identical rotations.

// Tier describes one retention ring: Size samples of Interval each.
// Interval is nominal — the Window trusts its caller's ticker cadence —
// and every tier's Interval must be a whole multiple of the first
// (finest) tier's, because coarser tiers close on the finest tier's
// rotation beat.
type Tier struct {
	Name     string        // label in the history document ("1s", "1m")
	Interval time.Duration // nominal width of one sample
	Size     int           // ring capacity (samples retained)
}

// DefaultTiers is the standard two-tier retention — a minute of
// per-second deltas and an hour of per-minute deltas — scaled so that
// tick is the finest interval.
func DefaultTiers(tick time.Duration) []Tier {
	return []Tier{
		{Name: tick.String(), Interval: tick, Size: 60},
		{Name: (60 * tick).String(), Interval: 60 * tick, Size: 60},
	}
}

// WindowSample is one closed interval of one tier. Counters hold the
// per-interval increments, Histograms the per-interval observation
// deltas (summary only; quantiles were computed from exact bucket
// differences before compaction), and Gauges/Floats the instantaneous
// values at the close. Seq is the finest-tier rotation count at the
// close, so rates derive as delta/DurNS without any wall-clock in the
// document.
type WindowSample struct {
	Seq        uint64                       `json:"seq"`
	DurNS      int64                        `json:"dur_ns"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Floats     map[string]float64           `json:"floats"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// TierHistory is one tier's retained samples, oldest first.
type TierHistory struct {
	Name       string         `json:"name"`
	IntervalNS int64          `json:"interval_ns"`
	Size       int            `json:"size"`
	Samples    []WindowSample `json:"samples"`
}

// History is the full windowed document served at /metrics/history.
type History struct {
	Seq   uint64        `json:"seq"` // rotations completed
	Tiers []TierHistory `json:"tiers"`
}

// Tier returns the named tier, or the finest when name is "" and nil
// when absent.
func (h *History) Tier(name string) *TierHistory {
	if h == nil || len(h.Tiers) == 0 {
		return nil
	}
	if name == "" {
		return &h.Tiers[0]
	}
	for i := range h.Tiers {
		if h.Tiers[i].Name == name {
			return &h.Tiers[i]
		}
	}
	return nil
}

// Latest returns the most recent sample of the tier, or nil when none
// has closed yet.
func (t *TierHistory) Latest() *WindowSample {
	if t == nil || len(t.Samples) == 0 {
		return nil
	}
	return &t.Samples[len(t.Samples)-1]
}

// tierState is one tier's ring plus the cumulative snapshot its next
// delta will subtract from.
type tierState struct {
	cfg   Tier
	every uint64 // finest-tier rotations per sample
	prev  *Snapshot
	ring  []WindowSample
	next  int
	full  bool
}

func (t *tierState) push(s WindowSample) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.full = true
}

// samples returns the ring contents oldest first.
func (t *tierState) samples() []WindowSample {
	if !t.full {
		return append([]WindowSample(nil), t.ring...)
	}
	out := make([]WindowSample, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Window rotates registry snapshots into tiered delta rings. Safe for
// concurrent use: Rotate and History serialize on one mutex (rotation
// is expected from a single ticker goroutine; readers are scrapes).
type Window struct {
	reg *Registry

	mu    sync.Mutex
	seq   uint64
	tiers []*tierState
}

// NewWindow builds a window over reg with the given tiers (nil tiers
// means DefaultTiers(time.Second)). The registry's state at creation
// is the baseline every first sample subtracts from.
func NewWindow(reg *Registry, tiers []Tier) (*Window, error) {
	if len(tiers) == 0 {
		tiers = DefaultTiers(time.Second)
	}
	base := tiers[0].Interval
	if base <= 0 {
		return nil, fmt.Errorf("obs: window tier %q has non-positive interval", tiers[0].Name)
	}
	w := &Window{reg: reg}
	first := reg.Snapshot()
	for _, tc := range tiers {
		if tc.Size <= 0 {
			return nil, fmt.Errorf("obs: window tier %q has non-positive size %d", tc.Name, tc.Size)
		}
		if tc.Interval <= 0 || tc.Interval%base != 0 {
			return nil, fmt.Errorf("obs: window tier %q interval %v is not a multiple of the finest tier's %v",
				tc.Name, tc.Interval, base)
		}
		w.tiers = append(w.tiers, &tierState{
			cfg:   tc,
			every: uint64(tc.Interval / base),
			prev:  first,
			ring:  make([]WindowSample, 0, tc.Size),
		})
	}
	return w, nil
}

// Rotate closes one finest-tier interval: it snapshots the registry
// once and, for every tier whose beat has come due, subtracts the
// tier's previous cumulative snapshot into a delta sample and advances
// the ring. Called from the owner's ticker goroutine only — never from
// request-handling or combiner code (obssafety enforces this in the
// server).
func (w *Window) Rotate() {
	if w == nil {
		return
	}
	snap := w.reg.Snapshot()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	for _, t := range w.tiers {
		if w.seq%t.every != 0 {
			continue
		}
		t.push(deltaSample(t.prev, snap, w.seq, t.cfg.Interval))
		t.prev = snap
	}
}

// deltaSample subtracts prev from cur into one closed sample.
func deltaSample(prev, cur *Snapshot, seq uint64, interval time.Duration) WindowSample {
	s := WindowSample{
		Seq:        seq,
		DurNS:      interval.Nanoseconds(),
		Counters:   make(map[string]uint64, len(cur.Counters)),
		Gauges:     make(map[string]int64, len(cur.Gauges)),
		Floats:     make(map[string]float64, len(cur.Floats)),
		Histograms: make(map[string]HistogramSnapshot, len(cur.Histograms)),
	}
	for name, v := range cur.Counters {
		if p := prev.Counters[name]; v >= p {
			s.Counters[name] = v - p
		} else {
			s.Counters[name] = 0
		}
	}
	for name, v := range cur.Gauges {
		s.Gauges[name] = v
	}
	for name, v := range cur.Floats {
		s.Floats[name] = v
	}
	for name, h := range cur.Histograms {
		// Compact: the ring keeps summaries, not 4KB bucket arrays per
		// histogram per sample; the exact quantiles are already baked in.
		s.Histograms[name] = h.Sub(prev.Histograms[name]).Compact()
	}
	return s
}

// Seq returns the number of completed rotations.
func (w *Window) Seq() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// History copies the current state of every tier, oldest samples
// first. Samples are shared immutable values; callers must not mutate
// their maps. A nil window yields an empty history.
func (w *Window) History() *History {
	h := &History{}
	if w == nil {
		return h
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	h.Seq = w.seq
	for _, t := range w.tiers {
		h.Tiers = append(h.Tiers, TierHistory{
			Name:       t.cfg.Name,
			IntervalNS: t.cfg.Interval.Nanoseconds(),
			Size:       t.cfg.Size,
			Samples:    t.samples(),
		})
	}
	return h
}

// WriteJSON writes the history as indented JSON. encoding/json sorts
// map keys, and samples carry no wall-clock state, so the document is
// byte-identical for identical registry-state sequences.
func (w *Window) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w.History())
}
