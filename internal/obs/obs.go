// Package obs is the simulator-wide observability layer: atomic
// counters, gauges and log-bucketed latency histograms, grouped in a
// Registry that snapshots to a stable JSON document.
//
// Every metric type is safe for concurrent use (the flat-combining host
// structures record from many goroutines) and safe to use through a nil
// pointer: methods on a nil *Counter, *Gauge, *FloatGauge or *Histogram
// are no-ops, and a nil *Registry hands out nil metrics. Code therefore
// instruments itself unconditionally and pays a single pointer test per
// event when observability is disabled — the recording path never
// branches on a configuration flag.
//
// Metrics observe the simulation; they never feed back into it. Nothing
// in this package touches virtual time, so enabling a Registry changes
// simulated results by exactly zero (the determinism tests check this).
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Calling through a nil counter is a no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 through nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. SetMax turns it into a
// high-watermark (e.g. the deepest message queue seen).
type Gauge struct {
	v atomic.Int64
}

// Set stores x. Calling through a nil gauge is a no-op.
func (g *Gauge) Set(x int64) {
	if g == nil {
		return
	}
	g.v.Store(x)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to x if x is larger.
func (g *Gauge) SetMax(x int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if x <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Value returns the current value (0 through nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 value, used for derived ratios such
// as per-vault utilization or partition imbalance.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores x. Calling through a nil gauge is a no-op.
func (g *FloatGauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Value returns the current value (0 through nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a lock-free log-bucketed histogram of positive int64
// observations (latencies in picoseconds, batch sizes, …): each octave
// [2^b, 2^(b+1)) is split into histSub linear sub-buckets, giving a
// worst-case relative quantile error of 1/histSub ≈ 12%.
type Histogram struct {
	counts [64 * histSub]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// histSub is the per-octave linear resolution.
const histSub = 8

// bucketIndex maps a positive observation to its bucket.
func bucketIndex(v int64) int {
	b := 63 - bits.LeadingZeros64(uint64(v))
	low := int64(1) << b
	s := int((v - low) * histSub / low)
	if s >= histSub {
		s = histSub - 1
	}
	return b*histSub + s
}

// bucketLow returns the lower bound of bucket index i.
func bucketLow(i int) int64 {
	b := i / histSub
	low := int64(1) << b
	return low + int64(i%histSub)*low/histSub
}

// Observe records one observation; values below 1 count as 1. Calling
// through a nil histogram is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 1 {
		v = 1
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// N returns the number of observations (0 through nil).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.total.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.total.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the lower bound of the sub-bucket holding the
// q-quantile observation (0 when empty; q is clamped to [0, 1]).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			return bucketLow(i)
		}
	}
	return 0
}

// Percentiles returns the p50, p95 and p99 observations.
func (h *Histogram) Percentiles() (p50, p95, p99 int64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// Merge folds o's observations into h. Both histograms share the same
// bucket layout, so merging is exact. Merge is safe to call while
// either histogram is still receiving Observe calls (all accesses are
// atomic), but a merge concurrent with recording naturally captures
// only the observations that landed before it read each bucket; merge
// quiescent sources when an exact fold matters. A nil h or o is a
// no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Snapshot summarizes the histogram under one consistent read: the
// bucket array is copied once and the count and quantiles are derived
// from that single copy, so a snapshot taken while recorders are
// observing can never report quantiles that disagree with its own
// count (the per-method accessors each re-read shared state and can).
// The copied buckets ride along in the snapshot (outside its JSON
// form) so two snapshots of the same histogram can be subtracted into
// an interval delta with exact per-bucket counts; see
// HistogramSnapshot.Sub.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	counts := make([]uint64, 64*histSub)
	var total uint64
	// Observe increments the bucket before the total, so a full bucket
	// scan sees at least every observation a prior total read covers.
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	snap := HistogramSnapshot{
		Count:   total,
		Max:     h.max.Load(),
		Sum:     h.sum.Load(),
		Buckets: counts,
	}
	if total == 0 {
		return snap
	}
	snap.Mean = float64(snap.Sum) / float64(total)
	snap.P50 = quantileFromBuckets(counts, total, 0.50)
	snap.P95 = quantileFromBuckets(counts, total, 0.95)
	snap.P99 = quantileFromBuckets(counts, total, 0.99)
	return snap
}

// quantileFromBuckets returns the lower bound of the sub-bucket holding
// the q-quantile observation of a copied bucket array (0 when empty).
func quantileFromBuckets(counts []uint64, total uint64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total-1))
	var seen uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			return bucketLow(i)
		}
	}
	return 0
}
