package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one sample line of the text exposition format:
// name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+$`)

func TestWritePrometheusParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("server/ops/total").Add(42)
	r.Gauge("server/conns/open").Set(7)
	r.FloatGauge("vault/imbalance").Set(1.25)
	h := r.Histogram("server/op_latency_ns")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 100)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
	}

	for fam, typ := range map[string]string{
		"server_ops_total":         "counter",
		"server_conns_open":        "gauge",
		"vault_imbalance":          "gauge",
		"server_op_latency_ns":     "summary",
		"server_op_latency_ns_max": "gauge",
	} {
		if types[fam] != typ {
			t.Errorf("family %s: TYPE %q, want %q", fam, types[fam], typ)
		}
	}
	// Summary components carry no TYPE of their own.
	if _, ok := types["server_op_latency_ns_sum"]; ok {
		t.Error("summary _sum must not get its own TYPE line")
	}
	for _, want := range []string{
		"server_ops_total 42\n",
		"server_conns_open 7\n",
		"vault_imbalance 1.25\n",
		`server_op_latency_ns{quantile="0.5"} `,
		"server_op_latency_ns_count 1000\n",
		"server_op_latency_ns_sum ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Determinism: a second export of the same state is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2, nil); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("two exports of the same state differ")
	}
}

func TestWritePrometheusCustomNamer(t *testing.T) {
	r := NewRegistry()
	r.Counter("server/shard/007/combines").Add(3)
	r.Counter("server/shard/012/combines").Add(5)
	r.Counter("private/thing").Inc()
	namer := func(name string) (string, []PromLabel, bool) {
		if strings.HasPrefix(name, "private/") {
			return "", nil, false
		}
		if rest, ok := strings.CutPrefix(name, "server/shard/"); ok {
			shard, metric, _ := strings.Cut(rest, "/")
			fam, _, _ := PromSanitize("server/shard/" + metric)
			return fam, []PromLabel{{"shard", strings.TrimLeft(shard, "0")}}, true
		}
		return PromSanitize(name)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, namer); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `server_shard_combines{shard="7"} 3`) ||
		!strings.Contains(out, `server_shard_combines{shard="12"} 5`) {
		t.Errorf("labelled series missing:\n%s", out)
	}
	if strings.Count(out, "# TYPE server_shard_combines counter") != 1 {
		t.Errorf("labelled family must share one TYPE line:\n%s", out)
	}
	if strings.Contains(out, "private") {
		t.Errorf("dropped metric leaked:\n%s", out)
	}
}

func TestChromeWriterValidJSON(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf)
	cw.ThreadName(1, 3, "shard 3")
	cw.Complete("apply", "span", 10.5, 2.25, 1, 3, map[string]interface{}{"trace": "0xabc"})
	cw.Emit(TraceEvent{Name: "msg", Ph: "b", Ts: 1, Pid: 1, Tid: 2, ID: "0x1"})
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[1]["ph"] != "X" || events[1]["dur"] != 2.25 {
		t.Errorf("complete slice malformed: %+v", events[1])
	}
}

func TestChromeWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewChromeWriter(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%q", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty writer produced %d events", len(events))
	}
}
