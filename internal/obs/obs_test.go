package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		f *FloatGauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	g.SetMax(9)
	f.Set(0.5)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.N() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.FloatGauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.AddCollector(func(*Registry) { t.Fatal("collector on nil registry must not run") })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.SetMax(3) // lower: no change
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after SetMax = %d, want 11", got)
	}
	f := r.FloatGauge("util")
	f.Set(0.25)
	if got := f.Value(); got != 0.25 {
		t.Fatalf("float gauge = %v, want 0.25", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d, want 1000", h.N())
	}
	p50, p95, p99 := h.Percentiles()
	check := func(name string, got, want int64) {
		lo, hi := want-want/6, want+want/6 // log-bucket resolution
		if got < lo || got > hi {
			t.Errorf("%s = %d, want within [%d, %d]", name, got, lo, hi)
		}
	}
	check("p50", p50, 500)
	check("p95", p95, 950)
	check("p99", p99, 990)
	if h.Max() != 1000 {
		t.Fatalf("Max = %d, want 1000", h.Max())
	}
	if m := h.Mean(); m < 499 || m > 502 {
		t.Fatalf("Mean = %v, want ≈ 500.5", m)
	}
	// Non-positive observations clamp to 1.
	var h2 Histogram
	h2.Observe(0)
	h2.Observe(-5)
	if h2.Quantile(1) != 1 {
		t.Fatalf("clamped quantile = %d, want 1", h2.Quantile(1))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.N() != 8000 {
		t.Fatalf("N = %d, want 8000", h.N())
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b/count").Add(2)
	r.Counter("a/count").Add(1)
	r.Gauge("depth").Set(4)
	r.FloatGauge("util").Set(0.5)
	r.Histogram("lat").Observe(128)
	collected := 0
	r.AddCollector(func(reg *Registry) {
		collected++
		reg.Gauge("collected").Set(int64(collected))
	})

	var buf1, buf2 bytes.Buffer
	if err := r.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if collected != 2 {
		t.Fatalf("collector ran %d times, want 2", collected)
	}
	// Identical metric values → byte-identical documents, except the
	// collector-updated gauge; normalize it and compare.
	n1 := strings.ReplaceAll(buf1.String(), `"collected": 1`, `"collected": N`)
	n2 := strings.ReplaceAll(buf2.String(), `"collected": 2`, `"collected": N`)
	if n1 != n2 {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", n1, n2)
	}

	var s Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["a/count"] != 1 || s.Counters["b/count"] != 2 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Histograms["lat"].Count != 1 || s.Histograms["lat"].P50 != 128 {
		t.Fatalf("histogram snapshot = %+v", s.Histograms["lat"])
	}
}
