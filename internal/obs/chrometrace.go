package obs

import (
	"encoding/json"
	"io"
)

// ChromeWriter streams Chrome trace-event JSON (the format
// chrome://tracing and Perfetto load) to an io.Writer. It owns only
// the event encoding and the enclosing JSON array; what the events
// mean is the caller's business — the simulator's virtual-time tracer
// (sim.ChromeTracer) and pimserve's wall-clock span exporter both
// emit through it, which is what lets simulator and server traces
// open in the same viewer.
//
// The writer buffers nothing: events stream to W as they fire. Call
// Close to terminate the JSON array. Timestamps and durations are in
// trace microseconds (the format's unit); the caller picks the clock.
type ChromeWriter struct {
	w   io.Writer
	n   int // events written
	err error
}

// NewChromeWriter returns a writer streaming trace events to w.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	return &ChromeWriter{w: w}
}

// TraceEvent is one Chrome trace event. Fields follow the trace-event
// format; Ts and Dur are microseconds.
type TraceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Emit writes one event, managing the enclosing JSON array. Errors are
// sticky and reported by Close.
func (t *ChromeWriter) Emit(ev TraceEvent) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	sep := ",\n"
	if t.n == 0 {
		sep = "[\n"
	}
	if _, err := io.WriteString(t.w, sep); err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Complete emits a complete ("X") slice of dur microseconds starting
// at ts on the pid/tid track.
func (t *ChromeWriter) Complete(name, cat string, ts, dur float64, pid, tid int, args map[string]interface{}) {
	t.Emit(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: &dur, Pid: pid, Tid: tid, Args: args})
}

// ThreadName emits a thread_name metadata event naming the pid/tid
// track. Callers deduplicate; the writer emits unconditionally.
func (t *ChromeWriter) ThreadName(pid, tid int, name string) {
	t.Emit(TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]interface{}{"name": name}})
}

// Close terminates the JSON array and reports any write error. The
// writer is unusable afterwards.
func (t *ChromeWriter) Close() error {
	if t.err != nil {
		return t.err
	}
	open := "[\n"
	if t.n > 0 {
		open = ""
	}
	_, err := io.WriteString(t.w, open+"\n]\n")
	return err
}
