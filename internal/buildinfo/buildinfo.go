// Package buildinfo surfaces what exact build of pimds is running:
// the release version (stamped at link time), the git revision and
// dirty bit (read from the binary's embedded VCS metadata), and the Go
// toolchain. Every binary answers -version with one line of it, and
// pimserve serves the full document at the ops endpoint's /buildinfo —
// the first question of any regression triage is "which build", and
// the answer should come from the process itself, not from deploy
// records.
package buildinfo

import (
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
)

// Version is the release version, overridden at link time:
//
//	go build -ldflags "-X pimds/internal/buildinfo.Version=v1.2.3"
//
// Unstamped builds report "dev".
var Version = "dev"

// Info describes one binary's build.
type Info struct {
	Version   string `json:"version"`
	GitSHA    string `json:"git_sha,omitempty"`
	GitTime   string `json:"git_time,omitempty"`
	GitDirty  bool   `json:"git_dirty,omitempty"`
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
}

// Get reads the running binary's build information. Fields missing
// from the embedded metadata (e.g. a non-VCS build) stay empty.
func Get() Info {
	info := Info{
		Version:   Version,
		GoVersion: runtime.Version(),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.GitSHA = s.Value
		case "vcs.time":
			info.GitTime = s.Value
		case "vcs.modified":
			info.GitDirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line form the -version flags print.
func (i Info) String() string {
	s := i.Version
	if sha := i.GitSHA; sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		if i.GitDirty {
			sha += "-dirty"
		}
		s += " (" + sha + ")"
	}
	return s + " " + i.GoVersion
}

// Line is the full -version output for the named command.
func Line(cmd string) string {
	return cmd + " " + Get().String()
}

// WriteJSON writes the build document as indented JSON (the
// /buildinfo ops endpoint body).
func WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Get())
}
