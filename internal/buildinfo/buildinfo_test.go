package buildinfo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGetReportsToolchain(t *testing.T) {
	i := Get()
	if i.Version == "" {
		t.Error("empty version")
	}
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("go version %q", i.GoVersion)
	}
	// Test binaries embed build info with the module path.
	if i.Module != "pimds" {
		t.Errorf("module %q, want pimds", i.Module)
	}
}

func TestStringForms(t *testing.T) {
	i := Info{Version: "v1.2.3", GoVersion: "go1.22.0"}
	if got := i.String(); got != "v1.2.3 go1.22.0" {
		t.Errorf("no-vcs string %q", got)
	}
	i.GitSHA = "0123456789abcdef0123"
	i.GitDirty = true
	if got := i.String(); got != "v1.2.3 (0123456789ab-dirty) go1.22.0" {
		t.Errorf("vcs string %q", got)
	}
	if got := Line("pimserve"); !strings.HasPrefix(got, "pimserve ") {
		t.Errorf("line %q", got)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var i Info
	if err := json.Unmarshal(buf.Bytes(), &i); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if i.GoVersion == "" || i.Version == "" {
		t.Errorf("round-trip lost fields: %+v", i)
	}
}
