package model

import (
	"math"
	"time"
)

// Closed-form operation latencies for the PIM structures — an
// extension of the paper's throughput-only model. All results are mean
// response times for a closed-loop client.
//
// The generic form is
//
//	latency = Lmessage + queueing + service + Lmessage
//
// where service is the structure's per-operation vault work and
// queueing is the wait behind other clients' requests at the core: a
// saturated core serves p closed-loop clients round-robin, so each
// waits (p−1) service times, giving latency ≈ max(round trip, p·service).

func secToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s*1e9)) * time.Nanosecond
}

// ListLatencyNaive is the naive PIM list's mean response time: two
// message transfers plus an expected (n+1)/2-node traversal, scaled by
// queueing when p clients share the core.
func ListLatencyNaive(pr Params, c ListConfig) time.Duration {
	service := float64(c.N+1) / 2 * pr.lpimSec()
	return latencyOf(pr, service, c.P)
}

// SkipLatency is the partitioned PIM skip-list's mean response time
// with β-node traversals and p/k clients per partition on average.
func SkipLatency(pr Params, c SkipConfig) time.Duration {
	perCore := c.P
	if c.K > 1 {
		perCore = (c.P + c.K - 1) / c.K
	}
	service := c.beta() * pr.lpimSec()
	return latencyOf(pr, service, perCore)
}

// QueueLatency is the pipelined PIM queue's mean response time for one
// side served by one core with p closed-loop clients: a single vault
// access of service, so under saturation latency ≈ p·Lpim.
func QueueLatency(pr Params, c QueueConfig) time.Duration {
	return latencyOf(pr, pr.lpimSec(), c.P)
}

// latencyOf combines the round trip with round-robin queueing at a
// single core: below saturation the round trip dominates; at
// saturation each client waits p service times.
func latencyOf(pr Params, serviceSec float64, p int) time.Duration {
	if p < 1 {
		p = 1
	}
	roundTrip := 2*pr.lmsgSec() + serviceSec
	saturated := float64(p) * serviceSec
	if saturated > roundTrip {
		return secToDuration(saturated)
	}
	return secToDuration(roundTrip)
}
