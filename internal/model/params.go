// Package model implements the analytical performance model of
// Liu, Calciu, Herlihy and Mutlu, "Concurrent Data Structures for
// Near-Memory Computing" (SPAA 2017), Section 3.
//
// The model expresses the cost of every operation of a concurrent data
// structure in terms of four primitive latencies:
//
//	Lcpu     — a memory access by a CPU core
//	Lpim     — a local vault access by a PIM core
//	Lllc     — a last-level-cache access by a CPU core
//	Latomic  — an atomic operation (CAS, F&A) by a CPU core
//
// related by three ratios,
//
//	Lcpu = r1·Lpim = r2·Lllc,   Latomic = r3·Lcpu,
//
// with the paper's headline assumption r1 = r2 = 3 and r3 = 1. Message
// transfer between any two cores costs Lmessage = Lcpu. When k atomic
// operations contend for one cache line they serialize and complete at
// times Latomic, 2·Latomic, …, k·Latomic.
//
// All throughput functions in this package return operations per second.
package model

import (
	"fmt"
	"time"
)

// Default latency ratios assumed throughout the paper (Section 3).
const (
	DefaultR1 = 3.0 // Lcpu / Lpim
	DefaultR2 = 3.0 // Lcpu / Lllc
	DefaultR3 = 1.0 // Latomic / Lcpu
)

// DefaultLcpu is the default absolute latency of a CPU memory access.
// The paper reasons only about ratios; an absolute anchor is needed to
// report throughput in operations per second. 90 ns is in line with the
// DRAM access latencies of the Xeon E7 generation used in the paper's
// evaluation and divides evenly by r1 = r2 = 3.
const DefaultLcpu = 90 * time.Nanosecond

// Params fixes the latency model. The zero value is not useful; use
// DefaultParams or fill every field.
type Params struct {
	// Lcpu is the latency of a memory access from a CPU core.
	Lcpu time.Duration
	// R1 is Lcpu/Lpim: how much faster a PIM core reaches its vault
	// than a CPU core reaches memory.
	R1 float64
	// R2 is Lcpu/Lllc: how much faster the last-level cache is than
	// memory for a CPU core.
	R2 float64
	// R3 is Latomic/Lcpu: the relative cost of an atomic operation,
	// charged even on a cache hit.
	R3 float64
}

// DefaultParams returns the paper's parameters: r1 = r2 = 3, r3 = 1,
// anchored at Lcpu = DefaultLcpu.
func DefaultParams() Params {
	return Params{Lcpu: DefaultLcpu, R1: DefaultR1, R2: DefaultR2, R3: DefaultR3}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	if p.Lcpu <= 0 {
		return fmt.Errorf("model: Lcpu must be positive, got %v", p.Lcpu)
	}
	if p.R1 <= 0 || p.R2 <= 0 || p.R3 <= 0 {
		return fmt.Errorf("model: ratios must be positive, got r1=%v r2=%v r3=%v", p.R1, p.R2, p.R3)
	}
	return nil
}

// Lpim is the latency of a local vault access from a PIM core.
func (p Params) Lpim() time.Duration {
	return time.Duration(float64(p.Lcpu) / p.R1)
}

// Lllc is the latency of a last-level cache access from a CPU core.
func (p Params) Lllc() time.Duration {
	return time.Duration(float64(p.Lcpu) / p.R2)
}

// Latomic is the latency of an uncontended atomic operation by a CPU.
func (p Params) Latomic() time.Duration {
	return time.Duration(p.R3 * float64(p.Lcpu))
}

// Lmessage is the transfer latency of one message between any two cores
// (CPU↔PIM or PIM↔PIM). The paper conservatively sets it equal to Lcpu.
func (p Params) Lmessage() time.Duration { return p.Lcpu }

// seconds converts a duration to float64 seconds for throughput math.
func seconds(d time.Duration) float64 { return d.Seconds() }

// The throughput formulas use these float-second accessors rather than
// the Duration methods above: deriving Lpim etc. as a time.Duration
// truncates to whole nanoseconds, which perturbs the exact ratio
// algebra (e.g. 2·r1/r2) the paper's conclusions rest on.

func (p Params) lcpuSec() float64    { return seconds(p.Lcpu) }
func (p Params) lpimSec() float64    { return seconds(p.Lcpu) / p.R1 }
func (p Params) lllcSec() float64    { return seconds(p.Lcpu) / p.R2 }
func (p Params) latomicSec() float64 { return p.R3 * seconds(p.Lcpu) }
func (p Params) lmsgSec() float64    { return seconds(p.Lcpu) }

// perSecond converts a per-operation cost into operations per second.
// It returns 0 for non-positive costs to keep callers' math safe.
func perSecond(cost float64) float64 {
	if cost <= 0 {
		return 0
	}
	return 1 / cost
}
