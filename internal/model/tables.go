package model

import "fmt"

// Row is one line of a reproduced table: an algorithm label, its
// closed-form throughput formula rendered as text, and the numeric
// throughput (operations per second) at the chosen parameters.
type Row struct {
	Algorithm string
	Formula   string
	OpsPerSec float64
}

// Table1 evaluates every row of Table 1 (linked-lists) at params pr and
// workload c, in the paper's row order.
func Table1(pr Params, c ListConfig) []Row {
	formulas := []string{
		"2p / ((n+1)·Lcpu)",
		"2 / ((n+1)·Lcpu)",
		"2 / ((n+1)·Lpim)",
		"p / ((n−Sp)·Lcpu)",
		"p / ((n−Sp)·Lpim)",
	}
	rows := make([]Row, 0, len(formulas))
	for i, a := range ListAlgorithms() {
		rows = append(rows, Row{
			Algorithm: a.String(),
			Formula:   formulas[i],
			OpsPerSec: ListThroughput(a, pr, c),
		})
	}
	return rows
}

// Table2 evaluates every row of Table 2 (skip-lists) at params pr and
// workload c, in the paper's row order.
func Table2(pr Params, c SkipConfig) []Row {
	formulas := []string{
		"p / (β·Lcpu)",
		"1 / (β·Lcpu)",
		"1 / (β·Lpim + Lmessage)",
		"k / (β·Lcpu)",
		"k / (β·Lpim + Lmessage)",
	}
	rows := make([]Row, 0, len(formulas))
	for i, a := range SkipAlgorithms() {
		rows = append(rows, Row{
			Algorithm: a.String(),
			Formula:   formulas[i],
			OpsPerSec: SkipThroughput(a, pr, c),
		})
	}
	return rows
}

// QueueTable evaluates the Section 5.2 FIFO-queue bounds at params pr
// and workload c.
func QueueTable(pr Params, c QueueConfig) []Row {
	formulas := []string{
		"1 / Latomic",
		"1 / (2·Lllc)",
		"≈ 1 / Lpim",
	}
	rows := make([]Row, 0, len(formulas))
	for i, a := range QueueAlgorithms() {
		rows = append(rows, Row{
			Algorithm: a.String(),
			Formula:   formulas[i],
			OpsPerSec: QueueThroughput(a, pr, c),
		})
	}
	return rows
}

// FormatOps renders a throughput as a compact human-readable string,
// e.g. "12.3M ops/s".
func FormatOps(ops float64) string {
	switch {
	case ops >= 1e9:
		return fmt.Sprintf("%.2fG ops/s", ops/1e9)
	case ops >= 1e6:
		return fmt.Sprintf("%.2fM ops/s", ops/1e6)
	case ops >= 1e3:
		return fmt.Sprintf("%.2fK ops/s", ops/1e3)
	default:
		return fmt.Sprintf("%.2f ops/s", ops)
	}
}
