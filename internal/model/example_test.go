package model_test

import (
	"fmt"

	"pimds/internal/model"
)

// Example reproduces the paper's headline queue ratios from the model.
func Example() {
	pr := model.DefaultParams() // r1 = r2 = 3, r3 = 1
	fmt.Printf("PIM queue vs FC queue:  %.0f×\n", model.PIMQueueVsFCSpeedup(pr))
	fmt.Printf("PIM queue vs F&A queue: %.0f×\n", model.PIMQueueVsFAASpeedup(pr))
	// Output:
	// PIM queue vs FC queue:  2×
	// PIM queue vs F&A queue: 3×
}

// ExampleTable1 prints the paper's Table 1 for a 1000-node list and 28
// threads.
func ExampleTable1() {
	rows := model.Table1(model.DefaultParams(), model.ListConfig{N: 1000, P: 28})
	for _, r := range rows {
		fmt.Printf("%s: %s\n", r.Algorithm, model.FormatOps(r.OpsPerSec))
	}
	// Output:
	// Linked-list with fine-grained locks: 621.60K ops/s
	// Flat-combining linked-list without combining: 22.20K ops/s
	// PIM-managed linked-list without combining: 66.60K ops/s
	// Flat-combining linked-list with combining: 322.07K ops/s
	// PIM-managed linked-list with combining: 966.20K ops/s
}

// ExampleMinKForPIMSkipWin shows the "k > p/r1" crossover for the PIM
// skip-list at the paper's evaluation scale.
func ExampleMinKForPIMSkipWin() {
	pr := model.DefaultParams()
	sc := model.SkipConfig{N: 1 << 16, P: 28}
	fmt.Printf("partitions needed to beat %d lock-free threads: %d\n",
		sc.P, model.MinKForPIMSkipWin(pr, sc))
	// Output:
	// partitions needed to beat 28 lock-free threads: 11
}
