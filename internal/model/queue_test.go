package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestQueueHandChecked(t *testing.T) {
	pr := DefaultParams() // Lcpu=90ns, Lpim=Lllc=30ns, Latomic=90ns
	c := QueueConfig{P: 16}

	// F&A: 1/90ns ≈ 11.1M ops/s.
	if got := QueueFAA(pr, c); !almostEqual(got, 1e9/90, 1e-9) {
		t.Errorf("faa = %v, want %v", got, 1e9/90.0)
	}
	// FC: 1/(2·30ns) ≈ 16.7M ops/s.
	if got := QueueFC(pr, c); !almostEqual(got, 1e9/60, 1e-9) {
		t.Errorf("fc = %v, want %v", got, 1e9/60.0)
	}
	// PIM pipelined: 1/30ns ≈ 33.3M ops/s.
	if got := QueuePIM(pr, c); !almostEqual(got, 1e9/30, 1e-9) {
		t.Errorf("pim = %v, want %v", got, 1e9/30.0)
	}
}

// TestQueuePaperRatios reproduces the paper's headline: at r1 = r2 = 3
// and r3 = 1, the PIM queue is 2× the FC queue and 3× the F&A queue.
func TestQueuePaperRatios(t *testing.T) {
	pr := DefaultParams()
	c := QueueConfig{P: 8}
	if got := QueuePIM(pr, c) / QueueFC(pr, c); !almostEqual(got, 2, 1e-9) {
		t.Errorf("PIM/FC = %v, want 2", got)
	}
	if got := QueuePIM(pr, c) / QueueFAA(pr, c); !almostEqual(got, 3, 1e-9) {
		t.Errorf("PIM/F&A = %v, want 3", got)
	}
	if !PIMQueueWins(pr) {
		t.Error("PIMQueueWins should hold at default params")
	}
}

// TestQueueWinCondition checks the paper's win condition: the PIM queue
// wins iff 2·r1/r2 > 1 and r1·r3 > 1.
func TestQueueWinCondition(t *testing.T) {
	f := func(r1Raw, r2Raw, r3Raw uint8) bool {
		pr := Params{
			Lcpu: 90 * time.Nanosecond,
			R1:   0.25 + float64(r1Raw%40)/4,
			R2:   0.25 + float64(r2Raw%40)/4,
			R3:   0.25 + float64(r3Raw%8)/4,
		}
		c := QueueConfig{P: 8}
		wins := QueuePIM(pr, c) > QueueFC(pr, c)*(1+1e-12) && QueuePIM(pr, c) > QueueFAA(pr, c)*(1+1e-12)
		predicted := 2*pr.R1/pr.R2 > 1+1e-12 && pr.R1*pr.R3 > 1+1e-12
		return wins == predicted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQueueShortHalvesPIM: the single-segment regime halves the PIM
// queue's throughput but the paper claims it is still at least as good
// as both baselines at the default parameters.
func TestQueueShortHalvesPIM(t *testing.T) {
	pr := DefaultParams()
	long := QueuePIM(pr, QueueConfig{P: 8})
	short := QueuePIM(pr, QueueConfig{P: 8, ShortQueue: true})
	if !almostEqual(short, long/2, 1e-9) {
		t.Errorf("short = %v, want %v", short, long/2)
	}
	if short < QueueFAA(pr, QueueConfig{P: 8}) {
		t.Error("short PIM queue should still be at least the F&A bound")
	}
	if short < QueueFC(pr, QueueConfig{P: 8})*(1-1e-9) {
		t.Error("short PIM queue should still match the FC bound")
	}
}

func TestQueueDispatchAndLabels(t *testing.T) {
	pr := DefaultParams()
	c := QueueConfig{P: 4}
	direct := []float64{QueueFAA(pr, c), QueueFC(pr, c), QueuePIM(pr, c)}
	for i, a := range QueueAlgorithms() {
		if got := QueueThroughput(a, pr, c); got != direct[i] {
			t.Errorf("dispatch mismatch for %v", a)
		}
		if a.String() == "unknown FIFO queue algorithm" {
			t.Errorf("missing label for %d", a)
		}
	}
	if QueueThroughput(QueueAlgorithm(9), pr, c) != 0 {
		t.Error("unknown algorithm should yield 0")
	}
	if QueueAlgorithm(9).String() != "unknown FIFO queue algorithm" {
		t.Error("fallback label missing")
	}
}

func TestTablesHaveAllRows(t *testing.T) {
	pr := DefaultParams()
	t1 := Table1(pr, ListConfig{N: 1000, P: 8})
	if len(t1) != 5 {
		t.Fatalf("Table1 rows = %d, want 5", len(t1))
	}
	t2 := Table2(pr, SkipConfig{N: 1 << 16, P: 8, K: 8})
	if len(t2) != 5 {
		t.Fatalf("Table2 rows = %d, want 5", len(t2))
	}
	qt := QueueTable(pr, QueueConfig{P: 8})
	if len(qt) != 3 {
		t.Fatalf("QueueTable rows = %d, want 3", len(qt))
	}
	for _, rows := range [][]Row{t1, t2, qt} {
		for _, r := range rows {
			if r.Algorithm == "" || r.Formula == "" || r.OpsPerSec <= 0 {
				t.Errorf("incomplete row %+v", r)
			}
		}
	}
}

func TestFormatOps(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.5e9, "2.50G ops/s"},
		{3.2e6, "3.20M ops/s"},
		{1.5e3, "1.50K ops/s"},
		{12, "12.00 ops/s"},
	}
	for _, c := range cases {
		if got := FormatOps(c.in); got != c.want {
			t.Errorf("FormatOps(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
