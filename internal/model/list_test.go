package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSpKnownValues(t *testing.T) {
	// p = 1: Sp = Σ i/(n+1) = n/2 exactly.
	for _, n := range []int{1, 2, 10, 100, 1000} {
		got := Sp(n, 1)
		want := float64(n) / 2
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("Sp(%d, 1) = %v, want %v", n, got, want)
		}
	}
	// n = 1: Sp = (1/2)^p.
	for p := 1; p <= 10; p++ {
		got := Sp(1, p)
		want := math.Pow(0.5, float64(p))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("Sp(1, %d) = %v, want %v", p, got, want)
		}
	}
}

func TestSpDegenerateInputs(t *testing.T) {
	if Sp(0, 5) != 0 {
		t.Errorf("Sp(0,5) = %v, want 0", Sp(0, 5))
	}
	if Sp(5, 0) != 0 {
		t.Errorf("Sp(5,0) = %v, want 0", Sp(5, 0))
	}
	if Sp(-3, 2) != 0 || Sp(3, -2) != 0 {
		t.Error("negative inputs should yield 0")
	}
}

// TestSpBounds checks the paper's stated bound 0 < Sp ≤ n/2.
func TestSpBounds(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := int(pRaw%64) + 1
		s := Sp(n, p)
		return s > 0 && s <= float64(n)/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSpMonotonicInP checks Sp strictly decreases as p grows (each term
// (i/(n+1))^p shrinks), which drives the combining speedup.
func TestSpMonotonicInP(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := int(pRaw%63) + 1
		return Sp(n, p+1) < Sp(n, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultParamsDerivedLatencies(t *testing.T) {
	pr := DefaultParams()
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := pr.Lpim(), 30*time.Nanosecond; got != want {
		t.Errorf("Lpim = %v, want %v", got, want)
	}
	if got, want := pr.Lllc(), 30*time.Nanosecond; got != want {
		t.Errorf("Lllc = %v, want %v", got, want)
	}
	if got, want := pr.Latomic(), 90*time.Nanosecond; got != want {
		t.Errorf("Latomic = %v, want %v", got, want)
	}
	if got, want := pr.Lmessage(), 90*time.Nanosecond; got != want {
		t.Errorf("Lmessage = %v, want %v", got, want)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{Lcpu: 0, R1: 3, R2: 3, R3: 1},
		{Lcpu: time.Nanosecond, R1: 0, R2: 3, R3: 1},
		{Lcpu: time.Nanosecond, R1: 3, R2: -1, R3: 1},
		{Lcpu: time.Nanosecond, R1: 3, R2: 3, R3: 0},
	}
	for _, pr := range cases {
		if err := pr.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", pr)
		}
	}
}

func TestTable1HandChecked(t *testing.T) {
	// n = 999, p = 1, Lcpu = 100ns, r1 = 2: hand-checkable numbers.
	pr := Params{Lcpu: 100 * time.Nanosecond, R1: 2, R2: 2, R3: 1}
	c := ListConfig{N: 999, P: 1}

	// Fine-grained locks: 2·1/(1000·100ns) = 20000 ops/s.
	if got := ListFineGrainedLocks(pr, c); !almostEqual(got, 20000, 1e-9) {
		t.Errorf("fine-grained = %v, want 20000", got)
	}
	// FC without combining equals fine-grained at p = 1.
	if got := ListFCNoCombining(pr, c); !almostEqual(got, 20000, 1e-9) {
		t.Errorf("fc no-combining = %v, want 20000", got)
	}
	// PIM without combining is r1× the FC value.
	if got := ListPIMNoCombining(pr, c); !almostEqual(got, 40000, 1e-9) {
		t.Errorf("pim no-combining = %v, want 40000", got)
	}
	// With p = 1 combining serves 1 request per traversal of n−S1 =
	// 999−499.5 = 499.5 nodes: 1/(499.5·100ns) ≈ 20020 ops/s.
	if got := ListFCCombining(pr, c); !almostEqual(got, 1/(499.5*100e-9), 1e-9) {
		t.Errorf("fc combining = %v", got)
	}
}

// TestListClaimNaivePIMLosesAtR1Threads reproduces the Section 1/4.1
// claim: even at r1 = 2, a sequential PIM list is slower than the
// concurrent list with only three CPU threads (p = 3 ≥ r1).
func TestListClaimNaivePIMLosesAtR1Threads(t *testing.T) {
	pr := DefaultParams()
	pr.R1 = 2
	c := ListConfig{N: 1000, P: 3}
	if ListPIMNoCombining(pr, c) >= ListFineGrainedLocks(pr, c) {
		t.Error("naive PIM list should lose to fine-grained locks at p=3, r1=2")
	}
}

// TestListClaimCombiningWinsAtR1Two reproduces "the PIM-managed
// linked-list can outperform the linked-list with fine-grained locks as
// long as r1 ≥ 2".
func TestListClaimCombiningWinsAtR1Two(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw%5000) + 10
		p := int(pRaw%64) + 1
		pr := DefaultParams()
		pr.R1 = 2
		c := ListConfig{N: n, P: p}
		return ListPIMCombining(pr, c) >= ListFineGrainedLocks(pr, c)*(1-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestListClaim15xAtR1Three reproduces "if r1 = 3 the PIM list with
// combining is at least 1.5× the fine-grained-lock list".
func TestListClaim15xAtR1Three(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw%5000) + 10
		p := int(pRaw%64) + 1
		pr := DefaultParams() // r1 = 3
		c := ListConfig{N: n, P: p}
		return ListPIMCombining(pr, c) >= 1.5*ListFineGrainedLocks(pr, c)*(1-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPIMListIsR1TimesFC reproduces "the PIM-managed linked-list is
// expected to be r1 times better than the flat-combining linked-list,
// with or without the combining optimization applied to both".
func TestPIMListIsR1TimesFC(t *testing.T) {
	pr := DefaultParams()
	c := ListConfig{N: 1234, P: 8}
	if got := ListPIMCombining(pr, c) / ListFCCombining(pr, c); !almostEqual(got, pr.R1, 1e-9) {
		t.Errorf("combining ratio = %v, want %v", got, pr.R1)
	}
	if got := ListPIMNoCombining(pr, c) / ListFCNoCombining(pr, c); !almostEqual(got, pr.R1, 1e-9) {
		t.Errorf("no-combining ratio = %v, want %v", got, pr.R1)
	}
}

func TestMinR1ForPIMListWinBelowTwo(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		c := ListConfig{N: int(nRaw%5000) + 1, P: int(pRaw%64) + 1}
		r1 := MinR1ForPIMListWin(c)
		return r1 > 0 && r1 < 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxThreadsNaivePIMListWins(t *testing.T) {
	pr := DefaultParams() // r1 = 3
	if got := MaxThreadsNaivePIMListWins(pr); got != 2 {
		t.Errorf("got %d, want 2 (naive PIM wins only below p = r1 = 3)", got)
	}
	pr.R1 = 2.5
	if got := MaxThreadsNaivePIMListWins(pr); got != 2 {
		t.Errorf("got %d, want 2 for r1 = 2.5", got)
	}
}

// TestListThroughputMonotonicInThreads: parallel algorithms scale with
// p; single-combiner algorithms must not.
func TestListThroughputMonotonicInThreads(t *testing.T) {
	pr := DefaultParams()
	for p := 1; p < 32; p++ {
		a := ListFineGrainedLocks(pr, ListConfig{N: 500, P: p})
		b := ListFineGrainedLocks(pr, ListConfig{N: 500, P: p + 1})
		if b <= a {
			t.Fatalf("fine-grained throughput not increasing at p=%d: %v -> %v", p, a, b)
		}
		fc1 := ListFCNoCombining(pr, ListConfig{N: 500, P: p})
		fc2 := ListFCNoCombining(pr, ListConfig{N: 500, P: p + 1})
		if fc1 != fc2 {
			t.Fatalf("fc-no-combining depends on p: %v vs %v", fc1, fc2)
		}
	}
}

func TestListAlgorithmString(t *testing.T) {
	if FineGrainedLockList.String() != "Linked-list with fine-grained locks" {
		t.Error("unexpected label for FineGrainedLockList")
	}
	if ListAlgorithm(99).String() != "unknown linked-list algorithm" {
		t.Error("out-of-range algorithm should have fallback label")
	}
	if len(ListAlgorithms()) != 5 {
		t.Error("Table 1 must have 5 rows")
	}
}

func TestListThroughputDispatchMatchesDirect(t *testing.T) {
	pr := DefaultParams()
	c := ListConfig{N: 777, P: 7}
	direct := []float64{
		ListFineGrainedLocks(pr, c),
		ListFCNoCombining(pr, c),
		ListPIMNoCombining(pr, c),
		ListFCCombining(pr, c),
		ListPIMCombining(pr, c),
	}
	for i, a := range ListAlgorithms() {
		if got := ListThroughput(a, pr, c); got != direct[i] {
			t.Errorf("dispatch mismatch for %v: %v != %v", a, got, direct[i])
		}
	}
	if got := ListThroughput(ListAlgorithm(99), pr, c); got != 0 {
		t.Errorf("unknown algorithm throughput = %v, want 0", got)
	}
}
