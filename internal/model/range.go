package model

// Partitioned range queries (the ordered-op extension of the Table 2
// skip-list rows). A range scan of window width S over a K-partitioned
// structure of N keys in key space U:
//
//   - returns R = S·N/U keys in expectation (the window's share of the
//     uniformly spread keys);
//   - touches Q = 1 + S·K/U partitions in expectation (capped at K):
//     the partition owning the low edge plus one per range boundary the
//     window straddles — each touched partition serves one page;
//   - each page costs one descent to the page's low edge (β vault
//     accesses), the pages together walk R bottom-level nodes, and the
//     results return in cache-line-sized chunks of Chunk keys, so the
//     messaging bill is Q requests answered by R/Chunk response chunks.
//
// Per scan, on PIM cores:
//
//	T_range = Q·β·Lpim + R·Lpim + (Q + R/Chunk)·Lmessage
//
// At S = 0 this collapses to Q = 1, R = 0, T = β·Lpim + Lmessage —
// exactly the point-op row — so the range rows reduce to Table 2 as the
// window shrinks, and the scan's advantage over R separate point
// lookups (R·(β·Lpim + Lmessage)) is the shared traversal: one descent
// per partition instead of one per key.
type RangeConfig struct {
	SkipConfig
	// KeySpace is the key universe size U the N keys are drawn from.
	KeySpace int64
	// Span is the width S of one query window [lo, lo+S).
	Span int64
	// Chunk is the number of keys per response message; 0 means the
	// cache-line default of 8 (eight 8-byte keys).
	Chunk int
}

func (c RangeConfig) chunk() float64 {
	if c.Chunk > 0 {
		return float64(c.Chunk)
	}
	return 8
}

// ExpectedKeys returns R, the expected number of keys one window holds.
func (c RangeConfig) ExpectedKeys() float64 {
	if c.KeySpace <= 0 || c.Span <= 0 {
		return 0
	}
	return float64(c.Span) * float64(c.N) / float64(c.KeySpace)
}

// ExpectedPages returns Q, the expected number of partitions (= pages)
// one window touches, in [1, K].
func (c RangeConfig) ExpectedPages() float64 {
	if c.KeySpace <= 0 || c.Span <= 0 {
		return 1
	}
	q := 1 + float64(c.Span)*c.partitions()/float64(c.KeySpace)
	if k := c.partitions(); q > k {
		q = k
	}
	return q
}

// SkipPIMRangeSeconds returns the modeled PIM-side service time of one
// range scan (see the package comment above RangeConfig).
func SkipPIMRangeSeconds(pr Params, c RangeConfig) float64 {
	r := c.ExpectedKeys()
	q := c.ExpectedPages()
	return q*c.beta()*pr.lpimSec() + r*pr.lpimSec() + (q+r/c.chunk())*pr.lmsgSec()
}

// SkipPIMPartitionedRange returns scans per second for the PIM-managed
// skip-list with k partitions: the k cores' aggregate service capacity
// divided by one scan's bill. At Span = 0 it equals SkipPIMPartitioned.
func SkipPIMPartitionedRange(pr Params, c RangeConfig) float64 {
	return perSecond(SkipPIMRangeSeconds(pr, c) / c.partitions())
}

// SkipFCPartitionedRange is the CPU flat-combining baseline: the same
// shared traversal (Q descents + R bottom-level steps) at CPU memory
// latency, with no messaging. At Span = 0 it equals SkipFCPartitioned.
func SkipFCPartitionedRange(pr Params, c RangeConfig) float64 {
	cost := (c.ExpectedPages()*c.beta() + c.ExpectedKeys()) * pr.lcpuSec()
	return perSecond(cost / c.partitions())
}

// RangeVsPointScans returns the modeled speedup of one R-key range scan
// over fetching the same R keys with independent point lookups on the
// same partitioned PIM structure: R·(β·Lpim + Lmessage) / T_range. It
// approaches β·Lpim/(Lpim + Lmessage/chunk) for wide windows — the
// shared-traversal payoff that motivates serving scans in the combiner.
func RangeVsPointScans(pr Params, c RangeConfig) float64 {
	r := c.ExpectedKeys()
	if r < 1 {
		r = 1
	}
	point := r * (c.beta()*pr.lpimSec() + pr.lmsgSec())
	return point / SkipPIMRangeSeconds(pr, c)
}
