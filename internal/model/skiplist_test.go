package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBeta(t *testing.T) {
	if got := Beta(1024); !almostEqual(got, 20, 1e-12) {
		t.Errorf("Beta(1024) = %v, want 20", got)
	}
	if got := Beta(1); got != 1 {
		t.Errorf("Beta(1) = %v, want 1", got)
	}
	if got := Beta(0); got != 1 {
		t.Errorf("Beta(0) = %v, want 1", got)
	}
}

func TestSkipConfigOverrides(t *testing.T) {
	c := SkipConfig{N: 1024, P: 1, K: 0, BetaOverride: 7}
	if got := c.beta(); got != 7 {
		t.Errorf("beta override = %v, want 7", got)
	}
	if got := c.partitions(); got != 1 {
		t.Errorf("partitions with K=0 = %v, want 1", got)
	}
}

func TestTable2HandChecked(t *testing.T) {
	// β = 10 (override), Lcpu = 100ns, r1 = 2 so Lpim = 50ns,
	// Lmessage = 100ns.
	pr := Params{Lcpu: 100 * time.Nanosecond, R1: 2, R2: 2, R3: 1}
	c := SkipConfig{N: 1 << 10, P: 4, K: 8, BetaOverride: 10}

	// Lock-free: 4/(10·100ns) = 4e6 ops/s.
	if got := SkipLockFree(pr, c); !almostEqual(got, 4e6, 1e-9) {
		t.Errorf("lock-free = %v, want 4e6", got)
	}
	// FC: 1/(10·100ns) = 1e6 ops/s.
	if got := SkipFC(pr, c); !almostEqual(got, 1e6, 1e-9) {
		t.Errorf("fc = %v, want 1e6", got)
	}
	// PIM: 1/(10·50ns + 100ns) = 1/600ns ≈ 1.6667e6.
	if got := SkipPIM(pr, c); !almostEqual(got, 1e9/600, 1e-9) {
		t.Errorf("pim = %v, want %v", got, 1e9/600.0)
	}
	// Partitioned versions are k× the single versions.
	if got := SkipFCPartitioned(pr, c); !almostEqual(got, 8e6, 1e-9) {
		t.Errorf("fc k-part = %v, want 8e6", got)
	}
	if got := SkipPIMPartitioned(pr, c); !almostEqual(got, 8e9/600, 1e-9) {
		t.Errorf("pim k-part = %v, want %v", got, 8e9/600.0)
	}
}

// TestSkipClaimKOverR1Suffices reproduces "k > p/r1 should suffice" for
// the PIM skip-list to beat the lock-free skip-list: we verify that the
// exact crossover MinKForPIMSkipWin never exceeds p/r1 + p/β + 1 and
// that at k = MinK the PIM skip-list indeed wins.
func TestSkipClaimKOverR1Suffices(t *testing.T) {
	pr := DefaultParams()
	f := func(pRaw, nRaw uint8) bool {
		p := int(pRaw%64) + 1
		n := 1 << (nRaw%16 + 4)
		c := SkipConfig{N: n, P: p}
		k := MinKForPIMSkipWin(pr, c)
		c.K = k
		// Tolerate floating-point ties exactly at the crossover.
		if SkipPIMPartitioned(pr, c) < SkipLockFree(pr, c)*(1-1e-9) {
			return false
		}
		beta := Beta(n)
		bound := float64(p)/pr.R1 + float64(p)/beta + 1
		return float64(k) <= bound+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSkipPaperExample checks the Figure 4 conclusion against the pure
// model. With k = 16 partitions the model itself predicts the PIM
// skip-list beats the lock-free skip-list at 28 threads. With k = 8 the
// pure model predicts a crossover near p = k·β·r1/(β+r1) ≈ 21 threads;
// the paper's k = 8 win at 28 threads additionally relies on the CAS
// and contention costs of the lock-free skip-list that the model
// explicitly ignores ("their actual performance could be even worse").
func TestSkipPaperExample(t *testing.T) {
	pr := DefaultParams()
	if c := (SkipConfig{N: 1 << 16, P: 28, K: 16}); SkipPIMPartitioned(pr, c) <= SkipLockFree(pr, c) {
		t.Error("PIM skip-list with k=16 should beat 28-thread lock-free skip-list")
	}
	// k = 8 crossover: wins at 20 threads, model-loses at 28.
	if c := (SkipConfig{N: 1 << 16, P: 20, K: 8}); SkipPIMPartitioned(pr, c) <= SkipLockFree(pr, c) {
		t.Error("PIM skip-list with k=8 should beat 20-thread lock-free skip-list")
	}
}

// TestPIMSkipVsFCSpeedup checks the β·r1/(β+r1) ≈ r1 claim.
func TestPIMSkipVsFCSpeedup(t *testing.T) {
	pr := DefaultParams()
	c := SkipConfig{N: 1 << 20, P: 8, K: 4}
	want := SkipPIMPartitioned(pr, c) / SkipFCPartitioned(pr, c)
	if got := PIMSkipVsFCSpeedup(pr, c); !almostEqual(got, want, 1e-9) {
		t.Errorf("speedup = %v, want %v", got, want)
	}
	if got := PIMSkipVsFCSpeedup(pr, c); got <= 2 || got >= pr.R1 {
		t.Errorf("speedup %v should approach but not reach r1 = %v", got, pr.R1)
	}
}

func TestSkipThroughputDispatchMatchesDirect(t *testing.T) {
	pr := DefaultParams()
	c := SkipConfig{N: 4096, P: 6, K: 4}
	direct := []float64{
		SkipLockFree(pr, c),
		SkipFC(pr, c),
		SkipPIM(pr, c),
		SkipFCPartitioned(pr, c),
		SkipPIMPartitioned(pr, c),
	}
	for i, a := range SkipAlgorithms() {
		if got := SkipThroughput(a, pr, c); got != direct[i] {
			t.Errorf("dispatch mismatch for %v", a)
		}
	}
	if SkipThroughput(SkipAlgorithm(99), pr, c) != 0 {
		t.Error("unknown algorithm should yield 0")
	}
	if SkipAlgorithm(99).String() != "unknown skip-list algorithm" {
		t.Error("out-of-range algorithm should have fallback label")
	}
}

// TestSkipPartitionedScalesLinearlyInK: partitioning multiplies
// throughput by exactly k in the model.
func TestSkipPartitionedScalesLinearlyInK(t *testing.T) {
	pr := DefaultParams()
	f := func(kRaw uint8) bool {
		k := int(kRaw%32) + 1
		base := SkipConfig{N: 1 << 14, P: 16, K: 1}
		part := base
		part.K = k
		return almostEqual(SkipPIMPartitioned(pr, part), float64(k)*SkipPIMPartitioned(pr, base), 1e-9) &&
			almostEqual(SkipFCPartitioned(pr, part), float64(k)*SkipFCPartitioned(pr, base), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinKAtLeastOne(t *testing.T) {
	pr := DefaultParams()
	pr.R1 = 1000 // extremely fast PIM: one partition should do for p=1
	if got := MinKForPIMSkipWin(pr, SkipConfig{N: 1 << 20, P: 1}); got < 1 {
		t.Errorf("MinK = %d, want >= 1", got)
	}
}
