package model

import (
	"testing"
	"time"
)

func TestListLatencyNaiveLowLoad(t *testing.T) {
	pr := DefaultParams()
	// n = 200, p = 1: 180ns messages + 100.5 × 30ns traversal ≈ 3.2µs.
	got := ListLatencyNaive(pr, ListConfig{N: 200, P: 1})
	want := 3195 * time.Nanosecond
	if got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
}

func TestQueueLatencyRegimes(t *testing.T) {
	pr := DefaultParams()
	// p = 1: round trip dominates: 2×90 + 30 = 210ns.
	if got := QueueLatency(pr, QueueConfig{P: 1}); got != 210*time.Nanosecond {
		t.Errorf("p=1 latency = %v, want 210ns", got)
	}
	// p = 12: saturation: 12 × 30ns = 360ns.
	if got := QueueLatency(pr, QueueConfig{P: 12}); got != 360*time.Nanosecond {
		t.Errorf("p=12 latency = %v, want 360ns", got)
	}
	// Crossover at p = 7 (210/30).
	if got := QueueLatency(pr, QueueConfig{P: 7}); got != 210*time.Nanosecond {
		t.Errorf("p=7 latency = %v, want 210ns (still round-trip bound)", got)
	}
	if got := QueueLatency(pr, QueueConfig{P: 8}); got != 240*time.Nanosecond {
		t.Errorf("p=8 latency = %v, want 240ns", got)
	}
}

func TestSkipLatencySpreadsOverPartitions(t *testing.T) {
	pr := DefaultParams()
	c := SkipConfig{N: 1 << 13, P: 16, K: 8, BetaOverride: 20}
	// 2 clients per partition; service = 20×30 = 600ns < round trip
	// 780ns, and 2×600 = 1200ns > 780ns → saturated regime.
	if got := SkipLatency(pr, c); got != 1200*time.Nanosecond {
		t.Errorf("latency = %v, want 1.2µs", got)
	}
	c.K = 16 // one client per partition: round trip bound
	if got := SkipLatency(pr, c); got != 780*time.Nanosecond {
		t.Errorf("latency = %v, want 780ns", got)
	}
}

func TestLatencyDegenerateP(t *testing.T) {
	pr := DefaultParams()
	if QueueLatency(pr, QueueConfig{P: 0}) != QueueLatency(pr, QueueConfig{P: 1}) {
		t.Error("p=0 should clamp to 1")
	}
}
