package model

// FIFO queue analysis of Section 5.2. The paper derives upper bounds on
// the throughput of the two baselines and the (near-exact) pipelined
// throughput of the PIM-managed queue, for p threads issuing closed-loop
// dequeue (or enqueue) requests against a long queue.

// QueueConfig describes the FIFO-queue workload of Section 5.
type QueueConfig struct {
	P int // number of CPU threads issuing requests

	// ShortQueue marks the single-segment regime in which the same
	// PIM core must serve both enqueues and dequeues, halving the
	// PIM-managed queue's throughput (end of Section 5.2).
	ShortQueue bool
}

// QueueFAA bounds the F&A-based queue (Morrison–Afek [41]): every
// operation performs one F&A on a shared variable; the p concurrent
// F&As serialize, so
//
//	throughput ≤ 1 / Latomic.
func QueueFAA(pr Params, _ QueueConfig) float64 {
	return perSecond(pr.latomicSec())
}

// QueueFC bounds the flat-combining queue [25]: the combiner makes two
// last-level-cache accesses per publication-list slot (read request,
// write result), so for large p
//
//	throughput ≤ 1 / (2·Lllc).
func QueueFC(pr Params, _ QueueConfig) float64 {
	return perSecond(2 * pr.lllcSec())
}

// QueuePIM is the pipelined PIM-managed queue (Algorithm 1 with the
// pipelining optimization): the PIM core overlaps the reply-message
// transfer of request i with the vault accesses of request i+1, so the
// steady-state cost per request is a single vault access:
//
//	throughput ≈ (1 − 2·Lmessage)/(Lpim + ε) ≈ 1 / Lpim,
//
// halved when the queue is short enough that one segment serves both
// ends.
func QueuePIM(pr Params, c QueueConfig) float64 {
	t := perSecond(pr.lpimSec())
	if c.ShortQueue {
		t /= 2
	}
	return t
}

// QueueAlgorithm names one line of the Section 5.2 comparison.
type QueueAlgorithm int

// The three FIFO-queue variants compared in Section 5.2.
const (
	FAAQueue QueueAlgorithm = iota
	FCQueue
	PIMQueue
)

var queueAlgoNames = [...]string{
	"F&A-based FIFO queue",
	"Flat-combining FIFO queue",
	"PIM-managed FIFO queue (pipelined)",
}

// String returns the label used in the Section 5.2 comparison.
func (a QueueAlgorithm) String() string {
	if a < 0 || int(a) >= len(queueAlgoNames) {
		return "unknown FIFO queue algorithm"
	}
	return queueAlgoNames[a]
}

// QueueAlgorithms lists the Section 5.2 queue variants in order.
func QueueAlgorithms() []QueueAlgorithm {
	return []QueueAlgorithm{FAAQueue, FCQueue, PIMQueue}
}

// QueueThroughput dispatches to the Section 5.2 bound for a.
func QueueThroughput(a QueueAlgorithm, pr Params, c QueueConfig) float64 {
	switch a {
	case FAAQueue:
		return QueueFAA(pr, c)
	case FCQueue:
		return QueueFC(pr, c)
	case PIMQueue:
		return QueuePIM(pr, c)
	}
	return 0
}

// PIMQueueVsFCSpeedup is the modeled ratio of the pipelined PIM queue
// over the flat-combining queue: 2·Lllc/Lpim = 2·r1/r2 (= 2 at the
// paper's r1 = r2 = 3).
func PIMQueueVsFCSpeedup(pr Params) float64 {
	return 2 * pr.R1 / pr.R2
}

// PIMQueueVsFAASpeedup is the modeled ratio of the pipelined PIM queue
// over the F&A queue: Latomic/Lpim = r1·r3 (= 3 at r1 = 3, r3 = 1).
func PIMQueueVsFAASpeedup(pr Params) float64 {
	return pr.R1 * pr.R3
}

// PIMQueueWins reports whether the model predicts the pipelined PIM
// queue to beat both baselines: 2·r1/r2 > 1 and r1·r3 > 1.
func PIMQueueWins(pr Params) bool {
	return PIMQueueVsFCSpeedup(pr) > 1 && PIMQueueVsFAASpeedup(pr) > 1
}
