package model

// Stack analysis — this repository's application of the paper's §5
// method to the other contended structure Section 5 names ("the top
// pointer of a stack"). The bounds are derived exactly like the queue
// bounds: Treiber's stack CASes one shared top pointer, the FC stack
// pays two LLC accesses per served request, and the PIM stack's core
// pipelines replies, paying one vault access per operation. A stack
// has only one hot end, so there is no long-queue doubling: the PIM
// stack always runs in the single-segment regime.

// StackConfig describes the stack workload: p threads in a closed
// push/pop loop.
type StackConfig struct {
	P int
}

// StackTreiber bounds Treiber's lock-free stack: every operation CASes
// the top pointer, serializing at Latomic:
//
//	throughput ≤ 1 / Latomic.
func StackTreiber(pr Params, _ StackConfig) float64 {
	return perSecond(pr.latomicSec())
}

// StackFC bounds the flat-combining stack: the combiner pays two
// last-level-cache accesses per served request:
//
//	throughput ≤ 1 / (2·Lllc).
func StackFC(pr Params, _ StackConfig) float64 {
	return perSecond(2 * pr.lllcSec())
}

// StackPIM is the pipelined PIM-managed stack: one vault access per
// operation at the top-segment core:
//
//	throughput ≈ 1 / Lpim.
func StackPIM(pr Params, _ StackConfig) float64 {
	return perSecond(pr.lpimSec())
}

// StackTable evaluates the three stack bounds.
func StackTable(pr Params, c StackConfig) []Row {
	return []Row{
		{Algorithm: "Treiber lock-free stack", Formula: "1 / Latomic", OpsPerSec: StackTreiber(pr, c)},
		{Algorithm: "Flat-combining stack", Formula: "1 / (2·Lllc)", OpsPerSec: StackFC(pr, c)},
		{Algorithm: "PIM-managed stack (pipelined)", Formula: "≈ 1 / Lpim", OpsPerSec: StackPIM(pr, c)},
	}
}
