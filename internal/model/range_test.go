package model

import (
	"math"
	"testing"
)

func TestRangeReducesToPointRowsAtSpanZero(t *testing.T) {
	pr := DefaultParams()
	c := RangeConfig{
		SkipConfig: SkipConfig{N: 1 << 20, P: 16, K: 8},
		KeySpace:   1 << 21,
		Span:       0,
	}
	if got, want := SkipPIMPartitionedRange(pr, c), SkipPIMPartitioned(pr, c.SkipConfig); got != want {
		t.Errorf("PIM range at span 0 = %g, want the point row %g", got, want)
	}
	if got, want := SkipFCPartitionedRange(pr, c), SkipFCPartitioned(pr, c.SkipConfig); got != want {
		t.Errorf("FC range at span 0 = %g, want the point row %g", got, want)
	}
	if q := c.ExpectedPages(); q != 1 {
		t.Errorf("span 0 expected pages = %g, want 1", q)
	}
	if r := c.ExpectedKeys(); r != 0 {
		t.Errorf("span 0 expected keys = %g, want 0", r)
	}
}

func TestRangeThroughputMonotonicInSpan(t *testing.T) {
	pr := DefaultParams()
	c := RangeConfig{
		SkipConfig: SkipConfig{N: 1 << 20, P: 16, K: 8},
		KeySpace:   1 << 21,
	}
	prev := math.Inf(1)
	for _, span := range []int64{0, 16, 256, 4096, 1 << 16, 1 << 20} {
		c.Span = span
		got := SkipPIMPartitionedRange(pr, c)
		if got <= 0 || got >= prev {
			t.Errorf("span %d: %g scans/s, want positive and below %g (wider windows cost more)", span, got, prev)
		}
		prev = got
	}
}

func TestRangePagesCappedAtPartitions(t *testing.T) {
	c := RangeConfig{
		SkipConfig: SkipConfig{N: 1 << 16, K: 4},
		KeySpace:   1 << 16,
		Span:       1 << 16, // full-space sweep
	}
	if q := c.ExpectedPages(); q != 4 {
		t.Errorf("full-space sweep expected pages = %g, want K = 4", q)
	}
}

func TestRangeBeatsPointLookupsOnWideWindows(t *testing.T) {
	pr := DefaultParams()
	c := RangeConfig{
		SkipConfig: SkipConfig{N: 1 << 20, P: 16, K: 8},
		KeySpace:   1 << 21,
		Span:       1 << 12,
	}
	if s := RangeVsPointScans(pr, c); s <= 1 {
		t.Errorf("shared traversal speedup %g, want > 1 for a %d-wide window", s, c.Span)
	}
	// The asymptote: for very wide windows the per-key bill approaches
	// Lpim + Lmessage/chunk, so the speedup approaches β·Lpim over that.
	c.Span = 1 << 20
	beta := c.beta()
	asym := (beta*pr.lpimSec() + pr.lmsgSec()) / (pr.lpimSec() + pr.lmsgSec()/c.chunk())
	if s := RangeVsPointScans(pr, c); s < asym*0.5 || s > asym*1.5 {
		t.Errorf("wide-window speedup %g, want near asymptote %g", s, asym)
	}
}
