package model

import "testing"

func TestStackBoundsMirrorQueue(t *testing.T) {
	pr := DefaultParams()
	c := StackConfig{P: 8}
	// The stack bounds coincide with the queue's per-side bounds.
	if StackTreiber(pr, c) != QueueFAA(pr, QueueConfig{P: 8}) {
		t.Error("Treiber bound should equal the F&A bound (one atomic per op)")
	}
	if StackFC(pr, c) != QueueFC(pr, QueueConfig{P: 8}) {
		t.Error("FC stack bound should equal the FC queue bound")
	}
	if StackPIM(pr, c) != QueuePIM(pr, QueueConfig{P: 8}) {
		t.Error("PIM stack bound should equal the long-queue PIM bound per side")
	}
}

func TestStackTableRows(t *testing.T) {
	rows := StackTable(DefaultParams(), StackConfig{P: 4})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Algorithm == "" || r.Formula == "" || r.OpsPerSec <= 0 {
			t.Errorf("incomplete row %+v", r)
		}
	}
	// PIM on top, Treiber at the bottom at default params.
	if !(rows[2].OpsPerSec > rows[1].OpsPerSec && rows[1].OpsPerSec > rows[0].OpsPerSec) {
		t.Errorf("ordering wrong: %+v", rows)
	}
}
