package model

import "math"

// Sp computes S_p = Σ_{i=1..n} (i/(n+1))^p, the correction term in the
// combining rows of Table 1. n−Sp is the expected number of pointers a
// combiner (or PIM core) traverses to serve a batch of p uniformly
// random requests in a single pass: it is the expected position of the
// largest of p uniform keys in an (n+1)-slot list.
//
// The paper notes 0 < Sp ≤ n/2 for p ≥ 1 (Sp = n/2 exactly at p = 1).
func Sp(n, p int) float64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	// Direct summation is O(n) and numerically stable: terms are in
	// (0,1] and increase monotonically, so summing small-to-large
	// keeps relative error tiny.
	s := 0.0
	np1 := float64(n + 1)
	for i := 1; i <= n; i++ {
		s += math.Pow(float64(i)/np1, float64(p))
	}
	return s
}

// ListConfig describes the linked-list workload of Section 4.1: a list
// holding n nodes with keys uniform in [1,N], accessed by p CPU threads
// issuing closed-loop requests with uniformly random keys and a balanced
// add/delete mix (so the size stays near n).
type ListConfig struct {
	N int // list size (number of nodes, excluding the dummy head)
	P int // number of CPU threads issuing requests
}

// Table 1 rows. Each function returns the expected throughput in
// operations per second under params pr.

// ListFineGrainedLocks is the linked-list with fine-grained locks
// (row 1 of Table 1): each of p threads traverses (n+1)/2 nodes per
// operation at CPU latency, all p in parallel:
//
//	throughput = 2p / ((n+1)·Lcpu)
func ListFineGrainedLocks(pr Params, c ListConfig) float64 {
	return perSecond(float64(c.N+1) * pr.lcpuSec() / (2 * float64(c.P)))
}

// ListFCNoCombining is the flat-combining linked-list without the
// combining optimization (row 2): a single combiner traverses (n+1)/2
// nodes per request at CPU latency:
//
//	throughput = 2 / ((n+1)·Lcpu)
func ListFCNoCombining(pr Params, c ListConfig) float64 {
	return perSecond(float64(c.N+1) * pr.lcpuSec() / 2)
}

// ListPIMNoCombining is the naive PIM-managed linked-list (row 3): the
// PIM core serves one request per traversal at PIM latency:
//
//	throughput = 2 / ((n+1)·Lpim)
func ListPIMNoCombining(pr Params, c ListConfig) float64 {
	return perSecond(float64(c.N+1) * pr.lpimSec() / 2)
}

// ListFCCombining is the flat-combining linked-list with the combining
// optimization (row 4): the combiner serves a batch of p requests in one
// traversal of expected length n − Sp:
//
//	throughput = p / ((n−Sp)·Lcpu)
func ListFCCombining(pr Params, c ListConfig) float64 {
	walk := float64(c.N) - Sp(c.N, c.P)
	return perSecond(walk * pr.lcpuSec() / float64(c.P))
}

// ListPIMCombining is the PIM-managed linked-list with combining
// (row 5, the paper's proposal):
//
//	throughput = p / ((n−Sp)·Lpim)
func ListPIMCombining(pr Params, c ListConfig) float64 {
	walk := float64(c.N) - Sp(c.N, c.P)
	return perSecond(walk * pr.lpimSec() / float64(c.P))
}

// ListAlgorithm names one row of Table 1.
type ListAlgorithm int

// The five linked-list variants of Table 1, in row order.
const (
	FineGrainedLockList ListAlgorithm = iota
	FCListNoCombining
	PIMListNoCombining
	FCListCombining
	PIMListCombining
)

var listAlgoNames = [...]string{
	"Linked-list with fine-grained locks",
	"Flat-combining linked-list without combining",
	"PIM-managed linked-list without combining",
	"Flat-combining linked-list with combining",
	"PIM-managed linked-list with combining",
}

// String returns the row label used in Table 1.
func (a ListAlgorithm) String() string {
	if a < 0 || int(a) >= len(listAlgoNames) {
		return "unknown linked-list algorithm"
	}
	return listAlgoNames[a]
}

// ListAlgorithms lists the Table 1 rows in order.
func ListAlgorithms() []ListAlgorithm {
	return []ListAlgorithm{FineGrainedLockList, FCListNoCombining, PIMListNoCombining, FCListCombining, PIMListCombining}
}

// ListThroughput dispatches to the Table 1 row for a.
func ListThroughput(a ListAlgorithm, pr Params, c ListConfig) float64 {
	switch a {
	case FineGrainedLockList:
		return ListFineGrainedLocks(pr, c)
	case FCListNoCombining:
		return ListFCNoCombining(pr, c)
	case PIMListNoCombining:
		return ListPIMNoCombining(pr, c)
	case FCListCombining:
		return ListFCCombining(pr, c)
	case PIMListCombining:
		return ListPIMCombining(pr, c)
	}
	return 0
}

// MinR1ForPIMListWin returns the smallest r1 = Lcpu/Lpim at which the
// PIM-managed linked-list with combining matches the linked-list with
// fine-grained locks (the strongest baseline): r1 = 2(n−Sp)/(n+1).
// Since 0 < Sp ≤ n/2, the result is always below 2, which is the
// paper's "r1 ≥ 2 always suffices" claim.
func MinR1ForPIMListWin(c ListConfig) float64 {
	return 2 * (float64(c.N) - Sp(c.N, c.P)) / float64(c.N+1)
}

// MaxThreadsNaivePIMListWins returns the largest thread count p at which
// the naive (no combining) PIM list still beats fine-grained locks:
// p < r1, so the answer is ceil(r1)−1.
func MaxThreadsNaivePIMListWins(pr Params) int {
	p := int(math.Ceil(pr.R1)) - 1
	if p < 0 {
		p = 0
	}
	return p
}
