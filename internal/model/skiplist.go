package model

import "math"

// Beta returns β, the expected number of nodes a skip-list operation
// inspects to locate its key. For a skip-list of size N with level
// probability 1/2 the standard bound is β ≈ 2·log2 N (each of the
// ~log2 N levels contributes an expected two horizontal steps). The
// paper only states β = Θ(log N); the constant cancels in every ratio
// the paper derives, so any fixed constant reproduces its conclusions.
func Beta(n int) float64 {
	if n < 2 {
		return 1
	}
	return 2 * math.Log2(float64(n))
}

// SkipConfig describes the skip-list workload of Section 4.2: a
// skip-list of size N accessed by P CPU threads with uniformly random
// keys and a balanced add/remove mix, optionally divided into K
// partitions of disjoint key ranges (one per vault / combiner).
type SkipConfig struct {
	N int // skip-list size
	P int // number of CPU threads issuing requests
	K int // number of partitions (1 = unpartitioned)

	// BetaOverride, when positive, replaces Beta(N) so that callers
	// can plug a measured path length into the model.
	BetaOverride float64
}

func (c SkipConfig) beta() float64 {
	if c.BetaOverride > 0 {
		return c.BetaOverride
	}
	return Beta(c.N)
}

func (c SkipConfig) partitions() float64 {
	if c.K < 1 {
		return 1
	}
	return float64(c.K)
}

// Table 2 rows. Each returns operations per second.

// SkipLockFree is the lock-free skip-list (row 1): p threads run fully
// in parallel, each paying β CPU memory accesses per operation:
//
//	throughput = p / (β·Lcpu)
func SkipLockFree(pr Params, c SkipConfig) float64 {
	return perSecond(c.beta() * pr.lcpuSec() / float64(c.P))
}

// SkipFC is the flat-combining skip-list without partitioning (row 2):
// a single combiner serves requests one at a time:
//
//	throughput = 1 / (β·Lcpu)
func SkipFC(pr Params, c SkipConfig) float64 {
	return perSecond(c.beta() * pr.lcpuSec())
}

// SkipPIM is the PIM-managed skip-list in a single vault (row 3): the
// PIM core pays β vault accesses plus one reply message per operation:
//
//	throughput = 1 / (β·Lpim + Lmessage)
func SkipPIM(pr Params, c SkipConfig) float64 {
	return perSecond(c.beta()*pr.lpimSec() + pr.lmsgSec())
}

// SkipFCPartitioned is the flat-combining skip-list with k partitions
// (row 4): k combiners serve disjoint key ranges in parallel:
//
//	throughput = k / (β·Lcpu)
func SkipFCPartitioned(pr Params, c SkipConfig) float64 {
	return perSecond(c.beta() * pr.lcpuSec() / c.partitions())
}

// SkipPIMPartitioned is the PIM-managed skip-list with k partitions
// (row 5, the paper's proposal): k PIM cores serve disjoint key ranges:
//
//	throughput = k / (β·Lpim + Lmessage)
func SkipPIMPartitioned(pr Params, c SkipConfig) float64 {
	return perSecond((c.beta()*pr.lpimSec() + pr.lmsgSec()) / c.partitions())
}

// SkipAlgorithm names one row of Table 2.
type SkipAlgorithm int

// The five skip-list variants of Table 2, in row order.
const (
	LockFreeSkip SkipAlgorithm = iota
	FCSkip
	PIMSkip
	FCSkipPartitioned
	PIMSkipPartitioned
)

var skipAlgoNames = [...]string{
	"Lock-free skip-list",
	"Flat-combining skip-list",
	"PIM-managed skip-list",
	"Flat-combining skip-list with k partitions",
	"PIM-managed skip-list with k partitions",
}

// String returns the row label used in Table 2.
func (a SkipAlgorithm) String() string {
	if a < 0 || int(a) >= len(skipAlgoNames) {
		return "unknown skip-list algorithm"
	}
	return skipAlgoNames[a]
}

// SkipAlgorithms lists the Table 2 rows in order.
func SkipAlgorithms() []SkipAlgorithm {
	return []SkipAlgorithm{LockFreeSkip, FCSkip, PIMSkip, FCSkipPartitioned, PIMSkipPartitioned}
}

// SkipThroughput dispatches to the Table 2 row for a.
func SkipThroughput(a SkipAlgorithm, pr Params, c SkipConfig) float64 {
	switch a {
	case LockFreeSkip:
		return SkipLockFree(pr, c)
	case FCSkip:
		return SkipFC(pr, c)
	case PIMSkip:
		return SkipPIM(pr, c)
	case FCSkipPartitioned:
		return SkipFCPartitioned(pr, c)
	case PIMSkipPartitioned:
		return SkipPIMPartitioned(pr, c)
	}
	return 0
}

// MinKForPIMSkipWin returns the smallest integer partition count k at
// which the PIM-managed skip-list overtakes the lock-free skip-list
// accessed by c.P threads:
//
//	k > p·(β·Lpim + Lmessage) / (β·Lcpu)
//
// With Lmessage = Lcpu = r1·Lpim and β = Θ(log N) this is roughly
// p/r1 + p/β, which is the paper's "k > p/r1 should suffice".
func MinKForPIMSkipWin(pr Params, c SkipConfig) int {
	beta := c.beta()
	threshold := float64(c.P) * (beta*pr.lpimSec() + pr.lmsgSec()) / (beta * pr.lcpuSec())
	k := int(math.Floor(threshold)) + 1
	if k < 1 {
		k = 1
	}
	return k
}

// PIMSkipVsFCSpeedup returns the modeled throughput ratio of the
// PIM-managed skip-list over the flat-combining skip-list at equal
// partition counts: β·r1 / (β + r1) ≈ r1 for large β.
func PIMSkipVsFCSpeedup(pr Params, c SkipConfig) float64 {
	beta := c.beta()
	return beta * pr.R1 / (beta + pr.R1)
}
