// Package testenv exposes build-time facts tests need to decide what
// they can meaningfully assert. Its one current export is whether the
// race detector is compiled in: -race boxes allocations for shadow
// tracking, so testing.AllocsPerRun pins (asserting 0 allocs/op on
// //pimvet:allocfree paths) are skipped under it — the static analyzer
// still enforces the property on every build.
package testenv

// RaceEnabled reports whether the binary was built with -race; set by
// the build-tagged files race.go / norace.go.
const RaceEnabled = raceEnabled
