//go:build race

package testenv

const raceEnabled = true
