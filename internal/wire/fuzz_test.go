package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary byte streams through the full read
// path (ReadFrame, then both decoders). The decoders must never panic
// or hand back more records than the payload can hold; whatever they
// accept must re-encode to the identical payload.
func FuzzDecodeFrame(f *testing.F) {
	seed1, _ := AppendRequest(nil, []Op{{ID: 1, Kind: Add, Key: 7}, {ID: 2, Kind: Remove, Key: -7}})
	seed2, _ := AppendResponse(nil, []Result{{ID: 3, Status: StatusOK, OK: true, Value: 9}})
	seed3, _ := AppendRequest(nil, nil)
	seed4, _ := AppendRequestTraced(nil, []Op{{ID: 4, Kind: Contains, Key: 11}}, TraceContext{TraceID: 0xfeedface, Sampled: true})
	seed5, _ := AppendRequestTraced(nil, nil, TraceContext{TraceID: 1})
	seed6, _ := AppendRequestV2(nil, []Op{
		{ID: 5, Kind: RangeScan, Key: 3, Hi: 900, Limit: 32},
		{ID: 6, Kind: PopMin},
	}, TraceContext{})
	seed7, _ := AppendRequestV2(nil, []Op{{ID: 7, Kind: Succ, Key: -1}}, TraceContext{TraceID: 0xabc, Sampled: true})
	seed8, _ := AppendResponseVar(nil, []Result{
		{ID: 8, Status: StatusOK, OK: true, Value: 40, Values: []int64{12, 17, 39}},
		{ID: 9, Status: StatusOK, OK: false, Value: 0},
	})
	seed9, _ := AppendResponseVar(nil, nil)
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add(seed4)
	f.Add(seed5)
	f.Add(seed6)
	f.Add(seed7)
	f.Add(seed8)
	f.Add(seed9)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{3, 0, 0, 0, FrameRequest, 0, 0})
	// Traced frame with zero trace id: well-framed but non-canonical.
	f.Add([]byte{12, 0, 0, 0, FrameRequestTraced, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Var response declaring one record but carrying no body: truncated.
	f.Add([]byte{3, 0, 0, 0, FrameResponseVar, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		if ops, err := DecodeRequest(payload, nil); err == nil {
			re, err := AppendRequest(nil, ops)
			if err != nil {
				t.Fatalf("accepted frame fails to re-encode: %v", err)
			}
			if !bytes.Equal(re[4:], payload) {
				t.Fatalf("request round-trip mismatch:\n in: %x\nout: %x", payload, re[4:])
			}
		}
		if ops, tc, err := DecodeRequestAny(payload, nil); err == nil {
			var re []byte
			switch payload[0] {
			case FrameRequestV2:
				re, err = AppendRequestV2(nil, ops, tc)
			case FrameRequestTraced:
				re, err = AppendRequestTraced(nil, ops, tc)
			default:
				re, err = AppendRequest(nil, ops)
			}
			if err != nil {
				t.Fatalf("accepted frame fails to re-encode: %v", err)
			}
			if !bytes.Equal(re[4:], payload) {
				t.Fatalf("request-any round-trip mismatch:\n in: %x\nout: %x", payload, re[4:])
			}
		}
		if results, err := DecodeResponse(payload, nil); err == nil {
			re, err := AppendResponse(nil, results)
			if err != nil {
				t.Fatalf("accepted frame fails to re-encode: %v", err)
			}
			if !bytes.Equal(re[4:], payload) {
				t.Fatalf("response round-trip mismatch:\n in: %x\nout: %x", payload, re[4:])
			}
		}
		if results, _, err := DecodeResponseAny(payload, nil, nil); err == nil {
			var re []byte
			if payload[0] == FrameResponseVar {
				re, err = AppendResponseVar(nil, results)
			} else {
				re, err = AppendResponse(nil, results)
			}
			if err != nil {
				t.Fatalf("accepted frame fails to re-encode: %v", err)
			}
			if !bytes.Equal(re[4:], payload) {
				t.Fatalf("response-any round-trip mismatch:\n in: %x\nout: %x", payload, re[4:])
			}
		}
	})
}

// FuzzRequestRoundTrip drives structured requests through
// encode→frame→decode and checks exact reproduction.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), int64(5), uint64(2), uint8(3), int64(-9))
	f.Add(uint64(0), uint8(255), int64(0), uint64(1<<63), uint8(6), int64(1<<62))

	f.Fuzz(func(t *testing.T, id1 uint64, k1 uint8, key1 int64, id2 uint64, k2 uint8, key2 int64) {
		ops := []Op{
			{ID: id1, Kind: OpKind(k1), Key: key1},
			{ID: id2, Kind: OpKind(k2), Key: key2},
		}
		buf, err := AppendRequest(nil, ops)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
			t.Fatalf("round trip: got %+v, want %+v", got, ops)
		}
		// The stream must end on a clean frame boundary.
		r := bytes.NewReader(buf)
		if _, err := ReadFrame(r, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFrame(r, nil); err != io.EOF {
			t.Fatalf("want io.EOF at stream end, got %v", err)
		}
	})
}
