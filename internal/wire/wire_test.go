package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	ops := []Op{
		{ID: 0, Kind: Contains, Key: 0},
		{ID: 1, Kind: Add, Key: -5},
		{ID: math.MaxUint64, Kind: Pop, Key: math.MaxInt64},
		{ID: 42, Kind: Enqueue, Key: math.MinInt64},
	}
	buf, err := AppendRequest(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("op %d: got %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	results := []Result{
		{ID: 7, Status: StatusOK, OK: true, Value: 99},
		{ID: 8, Status: StatusBadKind, OK: false, Value: 0},
		{ID: 9, Status: StatusBadKey, OK: false, Value: -1},
	}
	buf, err := AppendResponse(nil, results)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("decoded %d results, want %d", len(got), len(results))
	}
	for i := range results {
		if !resultEq(got[i], results[i]) {
			t.Errorf("result %d: got %+v, want %+v", i, got[i], results[i])
		}
	}
}

// resultEq compares results field-wise; Result carries a slice and is
// no longer ==-comparable. A nil Values equals an empty one — the wire
// does not distinguish them.
func resultEq(a, b Result) bool {
	if a.ID != b.ID || a.Status != b.Status || a.OK != b.OK || a.Value != b.Value {
		return false
	}
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func TestRequestV2RoundTrip(t *testing.T) {
	ops := []Op{
		{ID: 1, Kind: RangeScan, Key: 10, Hi: 500, Limit: 16},
		{ID: 2, Kind: Contains, Key: -4},
		{ID: 3, Kind: PopMin},
		{ID: 4, Kind: Pred, Key: math.MaxInt64},
		{ID: 5, Kind: RangeScan, Key: math.MinInt64, Hi: math.MaxInt64, Limit: math.MaxUint16},
	}
	for _, tc := range []TraceContext{
		{},
		{TraceID: 99},
		{TraceID: 0xfeed, Sampled: true},
	} {
		buf, err := AppendRequestV2(nil, ops, tc)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, gotTC, err := DecodeRequestAny(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotTC != tc {
			t.Errorf("trace context: got %+v, want %+v", gotTC, tc)
		}
		if len(got) != len(ops) {
			t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
		}
		for i := range ops {
			if got[i] != ops[i] {
				t.Errorf("op %d: got %+v, want %+v", i, got[i], ops[i])
			}
		}
		// Accepted payloads re-encode byte-identically.
		again, err := AppendRequestV2(nil, got, gotTC)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, buf) {
			t.Error("V2 decode/re-encode is not canonical")
		}
	}
}

func TestFixedEncodersRejectOrderedFields(t *testing.T) {
	ops := []Op{{ID: 1, Kind: RangeScan, Key: 1, Hi: 10}}
	if _, err := AppendRequest(nil, ops); !errors.Is(err, ErrNeedsV2) {
		t.Errorf("AppendRequest with Hi: got %v, want ErrNeedsV2", err)
	}
	if _, err := AppendRequestTraced(nil, ops, TraceContext{TraceID: 1}); !errors.Is(err, ErrNeedsV2) {
		t.Errorf("AppendRequestTraced with Hi: got %v, want ErrNeedsV2", err)
	}
	limited := []Op{{ID: 1, Kind: RangeScan, Key: 1, Limit: 5}}
	if _, err := AppendRequest(nil, limited); !errors.Is(err, ErrNeedsV2) {
		t.Errorf("AppendRequest with Limit: got %v, want ErrNeedsV2", err)
	}
	if _, err := AppendResponse(nil, []Result{{ID: 1, Values: []int64{}}}); !errors.Is(err, ErrNeedsVar) {
		t.Errorf("AppendResponse with Values: got %v, want ErrNeedsVar", err)
	}
}

func TestRequestV2CanonicalTraceSlot(t *testing.T) {
	// A sampled context with a zero id is rejected at encode time…
	if _, err := AppendRequestV2(nil, nil, TraceContext{Sampled: true}); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("got %v, want ErrBadTrace", err)
	}
	// …and on the wire.
	buf, err := AppendRequestV2(nil, nil, TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), payload...)
	bad[11] = 1 // sampled flag on a zero trace id
	if _, _, err := DecodeRequestAny(bad, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("sampled zero-id V2 frame: got %v, want ErrMalformed", err)
	}
	// Undefined flag bits are rejected.
	for _, flags := range []byte{2, 0x80, 0xff} {
		bad := append([]byte(nil), payload...)
		bad[11] = flags
		if _, _, err := DecodeRequestAny(bad, nil); !errors.Is(err, ErrMalformed) {
			t.Fatalf("flags %#x: got %v, want ErrMalformed", flags, err)
		}
	}
}

func TestResponseVarRoundTrip(t *testing.T) {
	results := []Result{
		{ID: 1, Status: StatusOK, OK: true, Value: 640, Values: []int64{10, 20, 630}},
		{ID: 2, Status: StatusOK, OK: true, Value: 5},
		{ID: 3, Status: StatusOK, OK: true, Value: 9, Values: []int64{}},
		{ID: 4, Status: StatusBadKind},
		{ID: 5, Status: StatusOK, OK: false, Value: math.MinInt64, Values: []int64{math.MaxInt64, math.MinInt64}},
	}
	buf, err := AppendResponseVar(nil, results)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeResponseAny(payload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("decoded %d results, want %d", len(got), len(results))
	}
	for i := range results {
		if !resultEq(got[i], results[i]) {
			t.Errorf("result %d: got %+v, want %+v", i, got[i], results[i])
		}
	}
	// Accepted payloads re-encode byte-identically.
	again, err := AppendResponseVar(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, buf) {
		t.Error("var response decode/re-encode is not canonical")
	}
}

func TestDecodeResponseAnyAcceptsFixedFrames(t *testing.T) {
	buf, err := AppendResponse(nil, []Result{{ID: 6, Status: StatusOK, OK: true, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, vals, err := DecodeResponseAny(payload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 6 || got[0].Values != nil {
		t.Fatalf("got %+v", got)
	}
	if vals != nil {
		t.Fatalf("fixed frame touched the arena: %v", vals)
	}
}

func TestDecodeResponseVarRejectsMalformed(t *testing.T) {
	buf, err := AppendResponseVar(nil, []Result{
		{ID: 1, Status: StatusOK, OK: true, Value: 3, Values: []int64{1, 2}},
		{ID: 2, Status: StatusOK, OK: true, Value: 0, Values: []int64{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating anywhere inside the body must be caught.
	for cut := headerSize; cut < len(payload); cut++ {
		if _, _, err := DecodeResponseAny(payload[:cut], nil, nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("truncated at %d: got %v, want ErrMalformed", cut, err)
		}
	}
	// Trailing bytes after the last record must be caught.
	trailing := append(append([]byte(nil), payload...), 0)
	if _, _, err := DecodeResponseAny(trailing, nil, nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing byte: got %v, want ErrMalformed", err)
	}
	// An inflated per-record value count must be caught.
	inflated := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint16(inflated[headerSize+18:], 1000)
	if _, _, err := DecodeResponseAny(inflated, nil, nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("inflated nvals: got %v, want ErrMalformed", err)
	}
	// Bad status / ok bytes are rejected, same as the fixed decoder.
	badStatus := append([]byte(nil), payload...)
	badStatus[headerSize+8] = 200
	if _, _, err := DecodeResponseAny(badStatus, nil, nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad status: got %v, want ErrMalformed", err)
	}
	badOK := append([]byte(nil), payload...)
	badOK[headerSize+9] = 7
	if _, _, err := DecodeResponseAny(badOK, nil, nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad ok byte: got %v, want ErrMalformed", err)
	}
}

func TestAppendResponseVarLimits(t *testing.T) {
	// One record with more values than the uint16 prefix can hold.
	big := []Result{{ID: 1, Values: make([]int64, 1<<16)}}
	if _, err := AppendResponseVar(nil, big); !errors.Is(err, ErrTooManyValues) {
		t.Fatalf("got %v, want ErrTooManyValues", err)
	}
	// A batch whose encoding exceeds MaxPayload is refused whole.
	results := make([]Result, MaxOpsPerFrame)
	for i := range results {
		results[i] = Result{ID: uint64(i), Values: make([]int64, MaxScanLimit)}
	}
	if _, err := AppendResponseVar(nil, results); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// A full frame of MaxScanLimit-sized scans under the budget round-trips.
	n := (MaxPayload - headerSize) / (varBaseSize + 8*MaxScanLimit)
	fit, err := AppendResponseVar(nil, results[:n])
	if err != nil {
		t.Fatalf("frame of %d max scans: %v", n, err)
	}
	payload, err := ReadFrame(bytes.NewReader(fit), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeResponseAny(payload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("decoded %d results, want %d", len(got), n)
	}
}

func TestArenaReuseAcrossDecodes(t *testing.T) {
	buf, err := AppendResponseVar(nil, []Result{{ID: 1, Status: StatusOK, OK: true, Value: 4, Values: []int64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]int64, 0, 64)
	res, arena, err := DecodeResponseAny(payload, nil, arena)
	if err != nil {
		t.Fatal(err)
	}
	if len(arena) != 3 || len(res[0].Values) != 3 {
		t.Fatalf("arena %v, values %v", arena, res[0].Values)
	}
	// Resetting the arena (keeping capacity) is how clients reuse it.
	res2, arena2, err := DecodeResponseAny(payload, nil, arena[:0])
	if err != nil {
		t.Fatal(err)
	}
	if &arena2[0] != &arena[:1][0] {
		t.Error("arena was reallocated despite spare capacity")
	}
	if !resultEq(res2[0], res[0]) {
		t.Errorf("got %+v, want %+v", res2[0], res[0])
	}
}

func TestTracedRequestRoundTrip(t *testing.T) {
	ops := []Op{
		{ID: 1, Kind: Add, Key: 5},
		{ID: 2, Kind: Contains, Key: -9},
	}
	for _, tc := range []TraceContext{
		{TraceID: 1, Sampled: false},
		{TraceID: math.MaxUint64, Sampled: true},
		{TraceID: 0xdeadbeefcafe, Sampled: true},
	} {
		buf, err := AppendRequestTraced(nil, ops, tc)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, gotTC, err := DecodeRequestAny(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotTC != tc {
			t.Errorf("trace context: got %+v, want %+v", gotTC, tc)
		}
		if len(got) != len(ops) {
			t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
		}
		for i := range ops {
			if got[i] != ops[i] {
				t.Errorf("op %d: got %+v, want %+v", i, got[i], ops[i])
			}
		}
		// A traced frame must not decode through the plain path.
		if _, err := DecodeRequest(payload, nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("plain DecodeRequest accepted a traced frame: %v", err)
		}
	}
}

func TestDecodeRequestAnyAcceptsPlainFrames(t *testing.T) {
	buf, err := AppendRequest(nil, []Op{{ID: 3, Kind: Remove, Key: 2}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	ops, tc, err := DecodeRequestAny(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Valid() {
		t.Errorf("plain frame produced trace context %+v", tc)
	}
	if len(ops) != 1 || ops[0].ID != 3 {
		t.Fatalf("got %+v", ops)
	}
}

func TestTracedRequestCanonicalEncoding(t *testing.T) {
	// Zero trace id is not encodable.
	if _, err := AppendRequestTraced(nil, nil, TraceContext{}); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("zero trace id: got %v, want ErrBadTrace", err)
	}
	// Zero trace id on the wire is rejected.
	buf, err := AppendRequestTraced(nil, nil, TraceContext{TraceID: 1})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	zeroed := append([]byte(nil), payload...)
	for i := 3; i < 11; i++ {
		zeroed[i] = 0
	}
	if _, _, err := DecodeRequestAny(zeroed, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero trace id on the wire: got %v, want ErrMalformed", err)
	}
	// Undefined flag bits are rejected.
	for _, flags := range []byte{2, 3, 0x80, 0xff} {
		bad := append([]byte(nil), payload...)
		bad[11] = flags
		if _, _, err := DecodeRequestAny(bad, nil); !errors.Is(err, ErrMalformed) {
			t.Fatalf("flags %#x: got %v, want ErrMalformed", flags, err)
		}
	}
	// Too many ops is rejected at encode time.
	ops := make([]Op, MaxOpsPerFrame+1)
	if _, err := AppendRequestTraced(nil, ops, TraceContext{TraceID: 1}); !errors.Is(err, ErrTooManyOps) {
		t.Fatalf("got %v, want ErrTooManyOps", err)
	}
	// A max-size traced frame stays within MaxPayload.
	full, err := AppendRequestTraced(nil, make([]Op, MaxOpsPerFrame), TraceContext{TraceID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(full), nil); err != nil {
		t.Fatalf("max traced frame: %v", err)
	}
}

func TestEmptyFrames(t *testing.T) {
	buf, err := AppendRequest(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := DecodeRequest(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("decoded %d ops from empty frame", len(ops))
	}
}

func TestMultipleFramesOneStream(t *testing.T) {
	var stream []byte
	var err error
	for i := 0; i < 10; i++ {
		stream, err = AppendRequest(stream, []Op{{ID: uint64(i), Kind: Add, Key: int64(i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := 0; i < 10; i++ {
		payload, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = payload[:0]
		ops, err := DecodeRequest(payload, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(ops) != 1 || ops[0].ID != uint64(i) {
			t.Fatalf("frame %d: got %+v", i, ops)
		}
	}
	if _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("want clean io.EOF after last frame, got %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full, err := AppendRequest(nil, []Op{{ID: 1, Kind: Add, Key: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix (except the empty one) must yield
	// io.ErrUnexpectedEOF — a peer died mid-frame.
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil)
		if err != io.ErrUnexpectedEOF {
			t.Errorf("prefix of %d bytes: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// The empty prefix is a clean close.
	if _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxPayload+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsUndersizedLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1) // below the 3-byte header
	stream := append(hdr[:], 0)
	_, err := ReadFrame(bytes.NewReader(stream), nil)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}

func TestDecodeRejectsCountMismatch(t *testing.T) {
	buf, err := AppendRequest(nil, []Op{{ID: 1, Kind: Add, Key: 2}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the declared count without adding bytes.
	binary.LittleEndian.PutUint16(payload[1:], 2)
	if _, err := DecodeRequest(payload, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}

func TestDecodeRejectsWrongFrameType(t *testing.T) {
	buf, err := AppendResponse(nil, []Result{{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(payload, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decoding a response as a request: got %v, want ErrMalformed", err)
	}
}

func TestEncodeRejectsTooManyOps(t *testing.T) {
	ops := make([]Op, MaxOpsPerFrame+1)
	if _, err := AppendRequest(nil, ops); !errors.Is(err, ErrTooManyOps) {
		t.Fatalf("got %v, want ErrTooManyOps", err)
	}
	results := make([]Result, MaxOpsPerFrame+1)
	if _, err := AppendResponse(nil, results); !errors.Is(err, ErrTooManyOps) {
		t.Fatalf("got %v, want ErrTooManyOps", err)
	}
}

func TestMaxOpsFrameRoundTrips(t *testing.T) {
	ops := make([]Op, MaxOpsPerFrame)
	for i := range ops {
		ops[i] = Op{ID: uint64(i), Kind: OpKind(i % int(numKinds)), Key: int64(i * 31)}
	}
	buf, err := AppendRequest(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxOpsPerFrame {
		t.Fatalf("decoded %d ops, want %d", len(got), MaxOpsPerFrame)
	}
}

func TestKindAndStatusStrings(t *testing.T) {
	for k := Contains; k < numKinds; k++ {
		if !k.Valid() {
			t.Errorf("kind %d should be valid", k)
		}
		if s := k.String(); s == "" || s[0] == 'O' {
			t.Errorf("kind %d has no name: %q", k, s)
		}
	}
	if numKinds.Valid() {
		t.Error("sentinel kind must be invalid")
	}
	for _, s := range []Status{StatusOK, StatusBadKind, StatusBadKey} {
		if s.String() == "" {
			t.Errorf("status %d has no name", s)
		}
	}
}
