// Package wire defines the compact length-prefixed binary protocol
// spoken between pimload (or any client) and pimserve. It is the
// network analogue of the flat-combining publication list: a client
// publishes a *batch* of operations in one request frame, and the
// server answers with one or more response frames carrying the results
// tagged by request id, so responses for one frame may arrive split
// (the server groups them by combiner pass) or interleaved with other
// frames' results.
//
// Frame layout (all integers little-endian):
//
//	uint32  payload length (bytes that follow; ≤ MaxPayload)
//	uint8   frame type (FrameRequest | FrameResponse | FrameRequestTraced)
//	uint16  record count (≤ MaxOpsPerFrame)
//	...     trace context (FrameRequestTraced only): trace id uint64 | flags uint8
//	...     count fixed-size records
//
// Request record (17 bytes):  id uint64 | kind uint8 | key int64
// Response record (18 bytes): id uint64 | status uint8 | ok uint8 | value int64
//
// Request ids are chosen by the client and echoed verbatim; the server
// never interprets them beyond matching a result to its op. Decoding
// is strict: a frame whose payload length does not exactly match its
// declared record count is rejected, so a desynchronized stream fails
// fast instead of smearing garbage into later frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// OpKind is the operation selector carried on the wire. The set kinds
// (Contains/Add/Remove) drive the list, skip and hash structures; the
// queue and stack kinds drive their respective structures.
type OpKind uint8

// Wire operation kinds.
const (
	Contains OpKind = iota
	Add
	Remove
	Enqueue
	Dequeue
	Push
	Pop

	numKinds // sentinel, not a valid kind
)

// Valid reports whether k is a defined operation kind.
func (k OpKind) Valid() bool { return k < numKinds }

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case Contains:
		return "contains"
	case Add:
		return "add"
	case Remove:
		return "remove"
	case Enqueue:
		return "enqueue"
	case Dequeue:
		return "dequeue"
	case Push:
		return "push"
	case Pop:
		return "pop"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Status is the per-operation result code.
type Status uint8

// Response status codes.
const (
	// StatusOK: the operation executed; OK/Value carry its result.
	StatusOK Status = iota
	// StatusBadKind: the kind is undefined or not supported by the
	// structure the server is serving (e.g. Push to a queue server).
	StatusBadKind
	// StatusBadKey: the key is outside the server's key space.
	StatusBadKey
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadKind:
		return "bad-kind"
	case StatusBadKey:
		return "bad-key"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Frame types.
const (
	FrameRequest  uint8 = 1
	FrameResponse uint8 = 2
	// FrameRequestTraced is a request frame carrying a trace context
	// (trace ID + flags) between the record count and the records, so
	// clients can originate distributed traces that the server's span
	// recorder picks up. Encoding is canonical: a traced frame with a
	// zero trace ID or undefined flag bits is rejected — trace-less
	// requests must use FrameRequest.
	FrameRequestTraced uint8 = 3
)

// TraceContext is the per-frame trace context a client attaches to a
// traced request frame. The zero TraceContext means "no trace".
type TraceContext struct {
	// TraceID identifies the trace. Zero is reserved for "no trace"
	// and is not encodable.
	TraceID uint64
	// Sampled asks the server to record a span breakdown for every
	// operation in the frame. An unsampled context still propagates
	// the ID (for log correlation) without span cost.
	Sampled bool
}

// Valid reports whether tc can be carried on the wire.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// flags encodes the context's flag byte (bit 0 = sampled; the rest
// must be zero).
func (tc TraceContext) flags() byte {
	if tc.Sampled {
		return 1
	}
	return 0
}

// Op is one client operation. For Enqueue/Push, Key is the value; for
// Dequeue/Pop it is ignored.
type Op struct {
	ID   uint64
	Kind OpKind
	Key  int64
}

// Result is one operation outcome. OK is the structure's boolean
// answer (present / was-absent / pop-nonempty …); Value carries the
// dequeued or popped value when applicable.
type Result struct {
	ID     uint64
	Status Status
	OK     bool
	Value  int64
}

// Record and frame size constants.
const (
	opSize     = 8 + 1 + 8     // id, kind, key
	resultSize = 8 + 1 + 1 + 8 // id, status, ok, value
	headerSize = 1 + 2         // type, count
	traceSize  = 8 + 1         // trace id, flags (traced requests only)

	// MaxOpsPerFrame bounds the records in one frame; larger batches
	// must be split across frames.
	MaxOpsPerFrame = 4096

	// MaxPayload is the largest legal frame payload. A peer announcing
	// more is desynchronized or hostile and the connection should be
	// dropped.
	MaxPayload = headerSize + MaxOpsPerFrame*resultSize
)

// Protocol errors.
var (
	// ErrFrameTooLarge: the length prefix exceeds MaxPayload.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxPayload")
	// ErrMalformed: the payload contradicts its own header.
	ErrMalformed = errors.New("wire: malformed frame")
	// ErrTooManyOps: an encoder was handed more than MaxOpsPerFrame
	// records.
	ErrTooManyOps = errors.New("wire: too many records for one frame")
	// ErrBadTrace: an encoder was handed an invalid (zero-ID) trace
	// context for a traced frame.
	ErrBadTrace = errors.New("wire: traced frame requires a nonzero trace id")
)

// Static pre-wrapped malformed-frame errors. The decode paths are
// marked //pimvet:allocfree, and building these with fmt.Errorf at the
// rejection site allocates; constructing them once here keeps rejection
// as cheap as acceptance (a desynchronized peer can hit these at frame
// rate). The offending byte values the old messages interpolated are
// recoverable from the frame itself; callers match with errors.Is.
var (
	errShortPayload    = fmt.Errorf("%w: payload length below header size", ErrMalformed)
	errTruncatedHeader = fmt.Errorf("%w: truncated header", ErrMalformed)
	errWrongFrameType  = fmt.Errorf("%w: unexpected frame type", ErrMalformed)
	errCountRange      = fmt.Errorf("%w: record count exceeds MaxOpsPerFrame", ErrMalformed)
	errSizeMismatch    = fmt.Errorf("%w: payload size does not match the declared record count", ErrMalformed)
	errBadTraceFlags   = fmt.Errorf("%w: trace flags byte must be 0 or 1", ErrMalformed)
	errZeroTraceID     = fmt.Errorf("%w: traced frame with zero trace id", ErrMalformed)
	errBadStatus       = fmt.Errorf("%w: undefined status byte", ErrMalformed)
	errBadOKByte       = fmt.Errorf("%w: ok byte must be 0 or 1", ErrMalformed)
)

// AppendRequest appends one request frame carrying ops to buf and
// returns the extended slice. len(ops) must be in [0, MaxOpsPerFrame].
// Zero-alloc when buf has capacity: clients reuse one buffer per
// connection.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendRequest(buf []byte, ops []Op) ([]byte, error) {
	if len(ops) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	payload := headerSize + len(ops)*opSize
	buf = appendFrameHeader(buf, payload, FrameRequest, len(ops))
	for _, op := range ops {
		buf = binary.LittleEndian.AppendUint64(buf, op.ID)
		buf = append(buf, byte(op.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Key))
	}
	return buf, nil
}

// AppendRequestTraced appends one traced request frame carrying ops and
// the trace context tc to buf. tc must be Valid (nonzero trace ID);
// callers without a trace use AppendRequest.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendRequestTraced(buf []byte, ops []Op, tc TraceContext) ([]byte, error) {
	if len(ops) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	if !tc.Valid() {
		return buf, ErrBadTrace
	}
	payload := headerSize + traceSize + len(ops)*opSize
	buf = appendFrameHeader(buf, payload, FrameRequestTraced, len(ops))
	buf = binary.LittleEndian.AppendUint64(buf, tc.TraceID)
	buf = append(buf, tc.flags())
	for _, op := range ops {
		buf = binary.LittleEndian.AppendUint64(buf, op.ID)
		buf = append(buf, byte(op.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Key))
	}
	return buf, nil
}

// AppendResponse appends one response frame carrying results to buf
// and returns the extended slice. Zero-alloc when buf has capacity: the
// server's writer goroutines reuse one buffer per connection.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendResponse(buf []byte, results []Result) ([]byte, error) {
	if len(results) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	payload := headerSize + len(results)*resultSize
	buf = appendFrameHeader(buf, payload, FrameResponse, len(results))
	for _, res := range results {
		buf = binary.LittleEndian.AppendUint64(buf, res.ID)
		buf = append(buf, byte(res.Status))
		ok := byte(0)
		if res.OK {
			ok = 1
		}
		buf = append(buf, ok)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(res.Value))
	}
	return buf, nil
}

//pimvet:allocfree //pimvet:nonblocking
func appendFrameHeader(buf []byte, payload int, typ uint8, count int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(count))
	return buf
}

// ReadFrame reads one length-prefixed payload from r, reusing buf when
// it is large enough. It returns io.EOF only on a clean frame
// boundary; a stream that dies mid-frame yields io.ErrUnexpectedEOF.
// The returned slice aliases buf (or its replacement) and is valid
// until the next call with the same buffer. (Not //pimvet:nonblocking:
// reading from r parks on the socket by design — this is the reader
// goroutine's blocking point.)
//
//pimvet:allocfree
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	// The length prefix is read into the reusable buffer rather than a
	// local array: a stack [4]byte sliced into an io.Reader argument
	// escapes and costs one heap allocation per frame (invisible to the
	// static analyzer, pinned by TestReadFrameSteadyStateAllocs).
	if cap(buf) < 4 {
		buf = make([]byte, 4) //pimvet:allow allocfree: one-time seed of the reusable buffer
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, unexpectedEOF(err)
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxPayload {
		return nil, ErrFrameTooLarge
	}
	if n < headerSize {
		return nil, errShortPayload
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n) //pimvet:allow allocfree: amortized grow to the largest frame seen; steady state reuses the buffer
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	return buf, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// DecodeRequest decodes a request-frame payload (as returned by
// ReadFrame), appending the ops to dst. Kinds are not validated here —
// the server answers undefined kinds with StatusBadKind rather than
// tearing down the connection. Zero-alloc when dst has capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeRequest(payload []byte, dst []Op) ([]Op, error) {
	body, count, err := checkHeader(payload, FrameRequest, opSize)
	if err != nil {
		return dst, err
	}
	for i := 0; i < count; i++ {
		rec := body[i*opSize:]
		dst = append(dst, Op{
			ID:   binary.LittleEndian.Uint64(rec),
			Kind: OpKind(rec[8]),
			Key:  int64(binary.LittleEndian.Uint64(rec[9:])),
		})
	}
	return dst, nil
}

// DecodeRequestAny decodes a request-frame payload of either type,
// returning the ops and the frame's trace context (the zero
// TraceContext for plain FrameRequest). Traced frames are validated
// strictly: a zero trace ID or undefined flag bits is ErrMalformed, so
// every accepted payload re-encodes byte-identically. Zero-alloc when
// dst has capacity: this is the server reader goroutine's per-frame
// fast path.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeRequestAny(payload []byte, dst []Op) ([]Op, TraceContext, error) {
	if len(payload) >= 1 && payload[0] == FrameRequest {
		ops, err := DecodeRequest(payload, dst)
		return ops, TraceContext{}, err
	}
	body, count, err := checkHeaderSized(payload, FrameRequestTraced, opSize, traceSize)
	if err != nil {
		return dst, TraceContext{}, err
	}
	tc := TraceContext{TraceID: binary.LittleEndian.Uint64(body)}
	switch body[8] {
	case 0:
	case 1:
		tc.Sampled = true
	default:
		return dst, TraceContext{}, errBadTraceFlags
	}
	if tc.TraceID == 0 {
		return dst, TraceContext{}, errZeroTraceID
	}
	body = body[traceSize:]
	for i := 0; i < count; i++ {
		rec := body[i*opSize:]
		dst = append(dst, Op{
			ID:   binary.LittleEndian.Uint64(rec),
			Kind: OpKind(rec[8]),
			Key:  int64(binary.LittleEndian.Uint64(rec[9:])),
		})
	}
	return dst, tc, nil
}

// DecodeResponse decodes a response-frame payload, appending the
// results to dst. Records are validated strictly — an undefined status
// or a non-canonical ok byte (anything but 0/1) is ErrMalformed — so
// every accepted payload re-encodes byte-identically. Zero-alloc when
// dst has capacity: this is the client reader's per-frame fast path.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeResponse(payload []byte, dst []Result) ([]Result, error) {
	body, count, err := checkHeader(payload, FrameResponse, resultSize)
	if err != nil {
		return dst, err
	}
	for i := 0; i < count; i++ {
		rec := body[i*resultSize:]
		if rec[8] > uint8(StatusBadKey) {
			return dst, errBadStatus
		}
		if rec[9] > 1 {
			return dst, errBadOKByte
		}
		dst = append(dst, Result{
			ID:     binary.LittleEndian.Uint64(rec),
			Status: Status(rec[8]),
			OK:     rec[9] == 1,
			Value:  int64(binary.LittleEndian.Uint64(rec[10:])),
		})
	}
	return dst, nil
}

// checkHeader validates the frame type and that the payload length
// matches the declared record count exactly.
//
//pimvet:allocfree //pimvet:nonblocking
func checkHeader(payload []byte, wantType uint8, recSize int) (body []byte, count int, err error) {
	return checkHeaderSized(payload, wantType, recSize, 0)
}

// checkHeaderSized is checkHeader for frame types carrying extra bytes
// of fixed-size per-frame state (the trace context) before the records;
// the returned body starts at that state.
//
//pimvet:allocfree //pimvet:nonblocking
func checkHeaderSized(payload []byte, wantType uint8, recSize, extra int) (body []byte, count int, err error) {
	if len(payload) < headerSize {
		return nil, 0, errTruncatedHeader
	}
	if payload[0] != wantType {
		return nil, 0, errWrongFrameType
	}
	count = int(binary.LittleEndian.Uint16(payload[1:]))
	if count > MaxOpsPerFrame {
		return nil, 0, errCountRange
	}
	body = payload[headerSize:]
	if len(body) != extra+count*recSize {
		return nil, 0, errSizeMismatch
	}
	return body, count, nil
}
