// Package wire defines the compact length-prefixed binary protocol
// spoken between pimload (or any client) and pimserve. It is the
// network analogue of the flat-combining publication list: a client
// publishes a *batch* of operations in one request frame, and the
// server answers with one or more response frames carrying the results
// tagged by request id, so responses for one frame may arrive split
// (the server groups them by combiner pass) or interleaved with other
// frames' results.
//
// Frame layout (all integers little-endian):
//
//	uint32  payload length (bytes that follow; ≤ MaxPayload)
//	uint8   frame type
//	uint16  record count (≤ MaxOpsPerFrame)
//	...     trace context (FrameRequestTraced, FrameRequestV2): trace id uint64 | flags uint8
//	...     count records
//
// Request record (17 bytes):     id uint64 | kind uint8 | key int64
// Request V2 record (27 bytes):  id uint64 | kind uint8 | key int64 | hi int64 | limit uint16
// Response record (18 bytes):    id uint64 | status uint8 | ok uint8 | value int64
// Var response record (20+8n):   id uint64 | status uint8 | ok uint8 | value int64 |
//
//	nvals uint16 | nvals × int64
//
// The fixed-size frames (FrameRequest/FrameRequestTraced/FrameResponse)
// are the point-op fast path and carry only Kind+Key per op. Ordered
// operations (RangeScan/Pred/Succ/PopMin/PopMax) need the extra lo..hi
// bound and result cardinality, so batches containing them travel in
// FrameRequestV2 (which always carries a trace-context slot; the zero
// trace id means untraced) and come back in FrameResponseVar, whose
// records are count-prefixed and variable-length.
//
// Request ids are chosen by the client and echoed verbatim; the server
// never interprets them beyond matching a result to its op. Decoding
// is strict: a frame whose payload length does not exactly match its
// declared record count (walking variable records one by one for
// FrameResponseVar) is rejected, so a desynchronized stream fails
// fast instead of smearing garbage into later frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// OpKind is the operation selector carried on the wire. The set kinds
// (Contains/Add/Remove) drive the list, skip and hash structures; the
// queue and stack kinds drive their respective structures; the ordered
// kinds (RangeScan/Pred/Succ/PopMin/PopMax) drive structures that keep
// their keys sorted (list, skip).
type OpKind uint8

// Wire operation kinds.
const (
	Contains OpKind = iota
	Add
	Remove
	Enqueue
	Dequeue
	Push
	Pop

	// RangeScan returns up to Limit keys in the half-open interval
	// [Key, Hi), in ascending order. The result's Value is the resume
	// cursor: the scan is complete when cursor ≥ Hi, otherwise the
	// client paginates by re-issuing with Key = cursor. On a
	// range-partitioned server a single scan never crosses a shard
	// boundary — Hi is clamped to the owning shard's upper bound and
	// the cursor walks the client into the next shard naturally.
	RangeScan
	// Pred returns the largest key strictly less than Key (OK=false
	// when none exists).
	Pred
	// Succ returns the smallest key strictly greater than Key
	// (OK=false when none exists).
	Succ
	// PopMin removes and returns the smallest key (OK=false on empty).
	PopMin
	// PopMax removes and returns the largest key (OK=false on empty).
	PopMax

	numKinds // sentinel, not a valid kind
)

// NumKinds is the number of defined operation kinds; capability tables
// index by kind.
const NumKinds = int(numKinds)

// Valid reports whether k is a defined operation kind.
func (k OpKind) Valid() bool { return k < numKinds }

// Ordered reports whether k is an ordered-structure operation: one
// that needs the V2 request encoding (Hi/Limit) or returns
// variable-length results.
func (k OpKind) Ordered() bool { return k >= RangeScan && k < numKinds }

// Mutating reports whether k can change structure state. Only mutating
// ops need to reach a write-ahead log: Contains/RangeScan/Pred/Succ
// leave the structure untouched, and the conditional mutators (a failed
// Add, a Pop on empty) replay as deterministic no-ops.
func (k OpKind) Mutating() bool {
	switch k {
	case Add, Remove, Enqueue, Dequeue, Push, Pop, PopMin, PopMax:
		return true
	}
	return false
}

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case Contains:
		return "contains"
	case Add:
		return "add"
	case Remove:
		return "remove"
	case Enqueue:
		return "enqueue"
	case Dequeue:
		return "dequeue"
	case Push:
		return "push"
	case Pop:
		return "pop"
	case RangeScan:
		return "scan"
	case Pred:
		return "pred"
	case Succ:
		return "succ"
	case PopMin:
		return "popmin"
	case PopMax:
		return "popmax"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Status is the per-operation result code.
type Status uint8

// Response status codes.
const (
	// StatusOK: the operation executed; OK/Value carry its result.
	StatusOK Status = iota
	// StatusBadKind: the kind is undefined or not supported by the
	// structure the server is serving (e.g. Push to a queue server).
	StatusBadKind
	// StatusBadKey: the key is outside the server's key space.
	StatusBadKey
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadKind:
		return "bad-kind"
	case StatusBadKey:
		return "bad-key"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Frame types.
const (
	FrameRequest  uint8 = 1
	FrameResponse uint8 = 2
	// FrameRequestTraced is a request frame carrying a trace context
	// (trace ID + flags) between the record count and the records, so
	// clients can originate distributed traces that the server's span
	// recorder picks up. Encoding is canonical: a traced frame with a
	// zero trace ID or undefined flag bits is rejected — trace-less
	// requests must use FrameRequest.
	FrameRequestTraced uint8 = 3
	// FrameRequestV2 is the extended request frame for batches carrying
	// ordered ops: 27-byte records with the Hi bound and result Limit,
	// plus an always-present trace-context slot (trace id 0 = untraced;
	// a set sampled bit with a zero id is rejected, so every accepted
	// payload re-encodes byte-identically).
	FrameRequestV2 uint8 = 4
	// FrameResponseVar is the variable-length response frame: each
	// record carries a uint16 value count followed by that many int64
	// values (a range scan's keys). Servers use it for combiner passes
	// whose results carry values; fixed-size results keep travelling in
	// FrameResponse.
	FrameResponseVar uint8 = 5
)

// TraceContext is the per-frame trace context a client attaches to a
// traced request frame. The zero TraceContext means "no trace".
type TraceContext struct {
	// TraceID identifies the trace. Zero is reserved for "no trace"
	// and is not encodable.
	TraceID uint64
	// Sampled asks the server to record a span breakdown for every
	// operation in the frame. An unsampled context still propagates
	// the ID (for log correlation) without span cost.
	Sampled bool
}

// Valid reports whether tc can be carried on the wire.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// flags encodes the context's flag byte (bit 0 = sampled; the rest
// must be zero).
func (tc TraceContext) flags() byte {
	if tc.Sampled {
		return 1
	}
	return 0
}

// Op is one client operation. For Enqueue/Push, Key is the value; for
// Dequeue/Pop it is ignored. For RangeScan, Key is the inclusive lower
// bound, Hi the exclusive upper bound, and Limit caps the result
// cardinality (0 = server default). Hi and Limit travel only in
// FrameRequestV2; the fixed-size encoders reject ops that set them.
type Op struct {
	ID    uint64
	Kind  OpKind
	Key   int64
	Hi    int64
	Limit uint16
}

// Result is one operation outcome. OK is the structure's boolean
// answer (present / was-absent / pop-nonempty …); Value carries the
// dequeued or popped value when applicable — for RangeScan it is the
// pagination cursor. Values carries a scan's keys; a non-nil Values
// (even empty) routes the result through FrameResponseVar, and the
// fixed-size encoder rejects it.
type Result struct {
	ID     uint64
	Status Status
	OK     bool
	Value  int64
	Values []int64
}

// Record and frame size constants.
const (
	opSize      = 8 + 1 + 8         // id, kind, key
	opV2Size    = 8 + 1 + 8 + 8 + 2 // id, kind, key, hi, limit
	resultSize  = 8 + 1 + 1 + 8     // id, status, ok, value
	varBaseSize = resultSize + 2    // fixed prefix of a var record (before the values)
	headerSize  = 1 + 2             // type, count
	traceSize   = 8 + 1             // trace id, flags (traced and V2 requests)

	// maxValsPerRecord is what the uint16 count prefix can express.
	maxValsPerRecord = 1<<16 - 1

	// MaxOpsPerFrame bounds the records in one frame; larger batches
	// must be split across frames.
	MaxOpsPerFrame = 4096

	// OpRecordSize is the encoded size of one op record as produced by
	// AppendOp — the same 27-byte layout FrameRequestV2 carries.
	// Exported so other framings (the WAL's batch records) can size
	// buffers and index records without re-deriving the layout.
	OpRecordSize = opV2Size

	// MaxScanLimit is the largest result cardinality the server will
	// serve for one RangeScan; a request Limit of 0 (or anything
	// larger) is clamped to it. Bounding per-op results keeps combiner
	// passes and response frames small — clients page through bigger
	// ranges with the cursor.
	MaxScanLimit = 512

	// MaxPayload is the largest legal frame payload. A peer announcing
	// more is desynchronized or hostile and the connection should be
	// dropped. Variable-length response frames are additionally bounded
	// by it at encode time: AppendResponseVar refuses a batch whose
	// encoding would exceed it, and writers split such batches.
	MaxPayload = 1 << 20
)

// VarResultSize returns the encoded size in bytes of one variable
// response record, for writers packing results into frames under the
// MaxPayload budget.
//
//pimvet:allocfree //pimvet:nonblocking
func VarResultSize(r Result) int { return varBaseSize + 8*len(r.Values) }

// Protocol errors.
var (
	// ErrFrameTooLarge: the length prefix exceeds MaxPayload.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxPayload")
	// ErrMalformed: the payload contradicts its own header.
	ErrMalformed = errors.New("wire: malformed frame")
	// ErrTooManyOps: an encoder was handed more than MaxOpsPerFrame
	// records.
	ErrTooManyOps = errors.New("wire: too many records for one frame")
	// ErrBadTrace: an encoder was handed an invalid (zero-ID) trace
	// context for a traced frame.
	ErrBadTrace = errors.New("wire: traced frame requires a nonzero trace id")
	// ErrNeedsV2: a fixed-size request encoder was handed an op with
	// ordered fields (Hi/Limit) that the 17-byte record cannot carry.
	ErrNeedsV2 = errors.New("wire: op carries ordered fields; use AppendRequestV2")
	// ErrNeedsVar: the fixed-size response encoder was handed a result
	// carrying Values; use AppendResponseVar.
	ErrNeedsVar = errors.New("wire: result carries values; use AppendResponseVar")
	// ErrTooManyValues: one result carries more values than the uint16
	// count prefix can express.
	ErrTooManyValues = errors.New("wire: too many values for one record")
)

// Static pre-wrapped malformed-frame errors. The decode paths are
// marked //pimvet:allocfree, and building these with fmt.Errorf at the
// rejection site allocates; constructing them once here keeps rejection
// as cheap as acceptance (a desynchronized peer can hit these at frame
// rate). The offending byte values the old messages interpolated are
// recoverable from the frame itself; callers match with errors.Is.
var (
	errShortPayload    = fmt.Errorf("%w: payload length below header size", ErrMalformed)
	errTruncatedHeader = fmt.Errorf("%w: truncated header", ErrMalformed)
	errWrongFrameType  = fmt.Errorf("%w: unexpected frame type", ErrMalformed)
	errCountRange      = fmt.Errorf("%w: record count exceeds MaxOpsPerFrame", ErrMalformed)
	errSizeMismatch    = fmt.Errorf("%w: payload size does not match the declared record count", ErrMalformed)
	errBadTraceFlags   = fmt.Errorf("%w: trace flags byte must be 0 or 1", ErrMalformed)
	errZeroTraceID     = fmt.Errorf("%w: traced frame with zero trace id", ErrMalformed)
	errBadStatus       = fmt.Errorf("%w: undefined status byte", ErrMalformed)
	errBadOKByte       = fmt.Errorf("%w: ok byte must be 0 or 1", ErrMalformed)
	errVarTruncated    = fmt.Errorf("%w: variable record truncated", ErrMalformed)
	errVarTrailing     = fmt.Errorf("%w: trailing bytes after the last variable record", ErrMalformed)
	errOpTruncated     = fmt.Errorf("%w: op record truncated", ErrMalformed)
	errBadOpKind       = fmt.Errorf("%w: undefined op kind", ErrMalformed)
)

// AppendOp appends the canonical 27-byte encoding of one op — the V2
// record layout — and returns the extended slice. This is the unit
// encoding shared by FrameRequestV2 and the WAL's batch records.
// Zero-alloc when buf has capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendOp(buf []byte, op Op) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, op.ID)
	buf = append(buf, byte(op.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Key))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Hi))
	buf = binary.LittleEndian.AppendUint16(buf, op.Limit)
	return buf
}

// DecodeOp decodes one op record produced by AppendOp from the front
// of b. Strict: the kind byte must name a defined op, so every accepted
// record re-encodes byte-identically. Zero-alloc.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeOp(b []byte) (Op, error) {
	if len(b) < OpRecordSize {
		return Op{}, errOpTruncated
	}
	op := Op{
		ID:    binary.LittleEndian.Uint64(b),
		Kind:  OpKind(b[8]),
		Key:   int64(binary.LittleEndian.Uint64(b[9:])),
		Hi:    int64(binary.LittleEndian.Uint64(b[17:])),
		Limit: binary.LittleEndian.Uint16(b[25:]),
	}
	if !op.Kind.Valid() {
		return Op{}, errBadOpKind
	}
	return op, nil
}

// AppendRequest appends one request frame carrying ops to buf and
// returns the extended slice. len(ops) must be in [0, MaxOpsPerFrame].
// Zero-alloc when buf has capacity: clients reuse one buffer per
// connection.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendRequest(buf []byte, ops []Op) ([]byte, error) {
	if len(ops) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	for _, op := range ops {
		if op.Hi != 0 || op.Limit != 0 {
			return buf, ErrNeedsV2
		}
	}
	payload := headerSize + len(ops)*opSize
	buf = appendFrameHeader(buf, payload, FrameRequest, len(ops))
	for _, op := range ops {
		buf = binary.LittleEndian.AppendUint64(buf, op.ID)
		buf = append(buf, byte(op.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Key))
	}
	return buf, nil
}

// AppendRequestTraced appends one traced request frame carrying ops and
// the trace context tc to buf. tc must be Valid (nonzero trace ID);
// callers without a trace use AppendRequest.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendRequestTraced(buf []byte, ops []Op, tc TraceContext) ([]byte, error) {
	if len(ops) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	if !tc.Valid() {
		return buf, ErrBadTrace
	}
	for _, op := range ops {
		if op.Hi != 0 || op.Limit != 0 {
			return buf, ErrNeedsV2
		}
	}
	payload := headerSize + traceSize + len(ops)*opSize
	buf = appendFrameHeader(buf, payload, FrameRequestTraced, len(ops))
	buf = binary.LittleEndian.AppendUint64(buf, tc.TraceID)
	buf = append(buf, tc.flags())
	for _, op := range ops {
		buf = binary.LittleEndian.AppendUint64(buf, op.ID)
		buf = append(buf, byte(op.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Key))
	}
	return buf, nil
}

// AppendRequestV2 appends one extended request frame carrying ops and
// the (possibly zero) trace context tc. The V2 record carries the
// ordered fields (Hi, Limit) every fixed record drops, so batches
// containing ordered ops must travel here. A zero tc encodes as trace
// id 0 ("untraced"); a sampled context with a zero id is rejected so
// decode/re-encode stays canonical. Zero-alloc when buf has capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendRequestV2(buf []byte, ops []Op, tc TraceContext) ([]byte, error) {
	if len(ops) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	if tc.TraceID == 0 && tc.Sampled {
		return buf, ErrBadTrace
	}
	payload := headerSize + traceSize + len(ops)*opV2Size
	buf = appendFrameHeader(buf, payload, FrameRequestV2, len(ops))
	buf = binary.LittleEndian.AppendUint64(buf, tc.TraceID)
	buf = append(buf, tc.flags())
	for _, op := range ops {
		buf = AppendOp(buf, op)
	}
	return buf, nil
}

// AppendResponse appends one response frame carrying results to buf
// and returns the extended slice. Zero-alloc when buf has capacity: the
// server's writer goroutines reuse one buffer per connection.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendResponse(buf []byte, results []Result) ([]byte, error) {
	if len(results) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	for _, res := range results {
		if res.Values != nil {
			return buf, ErrNeedsVar
		}
	}
	payload := headerSize + len(results)*resultSize
	buf = appendFrameHeader(buf, payload, FrameResponse, len(results))
	for _, res := range results {
		buf = binary.LittleEndian.AppendUint64(buf, res.ID)
		buf = append(buf, byte(res.Status))
		ok := byte(0)
		if res.OK {
			ok = 1
		}
		buf = append(buf, ok)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(res.Value))
	}
	return buf, nil
}

// AppendResponseVar appends one variable-length response frame carrying
// results (scan results with their Values, or any mix — a result
// without values encodes with nvals 0). The encoding must fit in
// MaxPayload; writers split larger batches, tracking size with
// VarResultSize. Zero-alloc when buf has capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendResponseVar(buf []byte, results []Result) ([]byte, error) {
	if len(results) > MaxOpsPerFrame {
		return buf, ErrTooManyOps
	}
	payload := headerSize
	for _, res := range results {
		if len(res.Values) > maxValsPerRecord {
			return buf, ErrTooManyValues
		}
		payload += VarResultSize(res)
	}
	if payload > MaxPayload {
		return buf, ErrFrameTooLarge
	}
	buf = appendFrameHeader(buf, payload, FrameResponseVar, len(results))
	for _, res := range results {
		buf = binary.LittleEndian.AppendUint64(buf, res.ID)
		buf = append(buf, byte(res.Status))
		ok := byte(0)
		if res.OK {
			ok = 1
		}
		buf = append(buf, ok)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(res.Value))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(res.Values)))
		for _, v := range res.Values {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	return buf, nil
}

// AppendResponses encodes results into as many response frames as
// needed, appended back to back to buf, and reports how many frames it
// wrote. Chunks where no result carries values use the fixed encoding
// (the point-op fast path, resultSize bytes per record); a chunk with
// any values uses the variable encoding. Chunks are split so no frame
// exceeds MaxPayload or MaxOpsPerFrame records. Zero-alloc when buf has
// capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func AppendResponses(buf []byte, results []Result) ([]byte, int, error) {
	frames := 0
	for len(results) > 0 {
		max := len(results)
		if max > MaxOpsPerFrame {
			max = MaxOpsPerFrame
		}
		size := headerSize
		hasVals := false
		end := 0
		for end < max {
			rs := VarResultSize(results[end])
			if size+rs > MaxPayload {
				break
			}
			if len(results[end].Values) > maxValsPerRecord {
				return buf, frames, ErrTooManyValues
			}
			size += rs
			if results[end].Values != nil {
				hasVals = true
			}
			end++
		}
		if end == 0 {
			// A single record larger than MaxPayload; unreachable while
			// maxValsPerRecord values fit, but fail loudly if the bounds
			// ever diverge.
			return buf, frames, ErrFrameTooLarge
		}
		var err error
		if hasVals {
			buf, err = AppendResponseVar(buf, results[:end])
		} else {
			buf, err = AppendResponse(buf, results[:end])
		}
		if err != nil {
			return buf, frames, err
		}
		frames++
		results = results[end:]
	}
	return buf, frames, nil
}

//pimvet:allocfree //pimvet:nonblocking
func appendFrameHeader(buf []byte, payload int, typ uint8, count int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(count))
	return buf
}

// ReadFrame reads one length-prefixed payload from r, reusing buf when
// it is large enough. It returns io.EOF only on a clean frame
// boundary; a stream that dies mid-frame yields io.ErrUnexpectedEOF.
// The returned slice aliases buf (or its replacement) and is valid
// until the next call with the same buffer. (Not //pimvet:nonblocking:
// reading from r parks on the socket by design — this is the reader
// goroutine's blocking point.)
//
//pimvet:allocfree
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	// The length prefix is read into the reusable buffer rather than a
	// local array: a stack [4]byte sliced into an io.Reader argument
	// escapes and costs one heap allocation per frame (invisible to the
	// static analyzer, pinned by TestReadFrameSteadyStateAllocs).
	if cap(buf) < 4 {
		buf = make([]byte, 4) //pimvet:allow allocfree: one-time seed of the reusable buffer
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, unexpectedEOF(err)
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxPayload {
		return nil, ErrFrameTooLarge
	}
	if n < headerSize {
		return nil, errShortPayload
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n) //pimvet:allow allocfree: amortized grow to the largest frame seen; steady state reuses the buffer
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	return buf, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// DecodeRequest decodes a request-frame payload (as returned by
// ReadFrame), appending the ops to dst. Kinds are not validated here —
// the server answers undefined kinds with StatusBadKind rather than
// tearing down the connection. Zero-alloc when dst has capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeRequest(payload []byte, dst []Op) ([]Op, error) {
	body, count, err := checkHeader(payload, FrameRequest, opSize)
	if err != nil {
		return dst, err
	}
	for i := 0; i < count; i++ {
		rec := body[i*opSize:]
		dst = append(dst, Op{
			ID:   binary.LittleEndian.Uint64(rec),
			Kind: OpKind(rec[8]),
			Key:  int64(binary.LittleEndian.Uint64(rec[9:])),
		})
	}
	return dst, nil
}

// DecodeRequestAny decodes a request-frame payload of any request
// type, returning the ops and the frame's trace context (the zero
// TraceContext for plain FrameRequest). Traced frames are validated
// strictly: a zero trace ID or undefined flag bits is ErrMalformed, so
// every accepted payload re-encodes byte-identically. Zero-alloc when
// dst has capacity: this is the server reader goroutine's per-frame
// fast path.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeRequestAny(payload []byte, dst []Op) ([]Op, TraceContext, error) {
	if len(payload) >= 1 && payload[0] == FrameRequest {
		ops, err := DecodeRequest(payload, dst)
		return ops, TraceContext{}, err
	}
	if len(payload) >= 1 && payload[0] == FrameRequestV2 {
		return DecodeRequestV2(payload, dst)
	}
	body, count, err := checkHeaderSized(payload, FrameRequestTraced, opSize, traceSize)
	if err != nil {
		return dst, TraceContext{}, err
	}
	tc := TraceContext{TraceID: binary.LittleEndian.Uint64(body)}
	switch body[8] {
	case 0:
	case 1:
		tc.Sampled = true
	default:
		return dst, TraceContext{}, errBadTraceFlags
	}
	if tc.TraceID == 0 {
		return dst, TraceContext{}, errZeroTraceID
	}
	body = body[traceSize:]
	for i := 0; i < count; i++ {
		rec := body[i*opSize:]
		dst = append(dst, Op{
			ID:   binary.LittleEndian.Uint64(rec),
			Kind: OpKind(rec[8]),
			Key:  int64(binary.LittleEndian.Uint64(rec[9:])),
		})
	}
	return dst, tc, nil
}

// DecodeRequestV2 decodes an extended request-frame payload, appending
// the ops (with their Hi/Limit fields) to dst. The trace-context slot
// is always present: trace id 0 with a zero flags byte means untraced;
// a sampled flag with a zero id is ErrMalformed, keeping accepted
// payloads canonical. Zero-alloc when dst has capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeRequestV2(payload []byte, dst []Op) ([]Op, TraceContext, error) {
	body, count, err := checkHeaderSized(payload, FrameRequestV2, opV2Size, traceSize)
	if err != nil {
		return dst, TraceContext{}, err
	}
	tc := TraceContext{TraceID: binary.LittleEndian.Uint64(body)}
	switch body[8] {
	case 0:
	case 1:
		tc.Sampled = true
	default:
		return dst, TraceContext{}, errBadTraceFlags
	}
	if tc.Sampled && tc.TraceID == 0 {
		return dst, TraceContext{}, errZeroTraceID
	}
	body = body[traceSize:]
	for i := 0; i < count; i++ {
		rec := body[i*opV2Size:]
		dst = append(dst, Op{
			ID:    binary.LittleEndian.Uint64(rec),
			Kind:  OpKind(rec[8]),
			Key:   int64(binary.LittleEndian.Uint64(rec[9:])),
			Hi:    int64(binary.LittleEndian.Uint64(rec[17:])),
			Limit: binary.LittleEndian.Uint16(rec[25:]),
		})
	}
	return dst, tc, nil
}

// DecodeResponse decodes a response-frame payload, appending the
// results to dst. Records are validated strictly — an undefined status
// or a non-canonical ok byte (anything but 0/1) is ErrMalformed — so
// every accepted payload re-encodes byte-identically. Zero-alloc when
// dst has capacity: this is the client reader's per-frame fast path.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeResponse(payload []byte, dst []Result) ([]Result, error) {
	body, count, err := checkHeader(payload, FrameResponse, resultSize)
	if err != nil {
		return dst, err
	}
	for i := 0; i < count; i++ {
		rec := body[i*resultSize:]
		if rec[8] > uint8(StatusBadKey) {
			return dst, errBadStatus
		}
		if rec[9] > 1 {
			return dst, errBadOKByte
		}
		dst = append(dst, Result{
			ID:     binary.LittleEndian.Uint64(rec),
			Status: Status(rec[8]),
			OK:     rec[9] == 1,
			Value:  int64(binary.LittleEndian.Uint64(rec[10:])),
		})
	}
	return dst, nil
}

// DecodeResponseAny decodes a response-frame payload of either type,
// appending the results to dst. For FrameResponseVar, each record's
// values are appended to the vals arena and the result's Values field
// is a subslice of it, so callers reuse one arena per connection; the
// returned arena replaces vals. Validation
// is strict: the variable records must walk the payload exactly — a
// truncated record, trailing bytes, or a record-count mismatch is
// ErrMalformed — so every accepted payload re-encodes byte-identically.
// Zero-alloc when dst and vals have capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func DecodeResponseAny(payload []byte, dst []Result, vals []int64) ([]Result, []int64, error) {
	if len(payload) >= 1 && payload[0] == FrameResponse {
		dst, err := DecodeResponse(payload, dst)
		return dst, vals, err
	}
	if len(payload) < headerSize {
		return dst, vals, errTruncatedHeader
	}
	if payload[0] != FrameResponseVar {
		return dst, vals, errWrongFrameType
	}
	count := int(binary.LittleEndian.Uint16(payload[1:]))
	if count > MaxOpsPerFrame {
		return dst, vals, errCountRange
	}
	// Pass 1: validate the record walk and total the values, so the
	// arena grows at most once — appending mid-decode could move the
	// arena and dangle the Values subslices already handed out.
	body := payload[headerSize:]
	total, off := 0, 0
	for i := 0; i < count; i++ {
		if len(body)-off < varBaseSize {
			return dst, vals, errVarTruncated
		}
		rec := body[off:]
		if rec[8] > uint8(StatusBadKey) {
			return dst, vals, errBadStatus
		}
		if rec[9] > 1 {
			return dst, vals, errBadOKByte
		}
		n := int(binary.LittleEndian.Uint16(rec[18:]))
		if len(body)-off-varBaseSize < 8*n {
			return dst, vals, errVarTruncated
		}
		total += n
		off += varBaseSize + 8*n
	}
	if off != len(body) {
		return dst, vals, errVarTrailing
	}
	if cap(vals)-len(vals) < total {
		grown := make([]int64, len(vals), len(vals)+total) //pimvet:allow allocfree: amortized arena grow to the largest response seen; steady state reuses the arena
		copy(grown, vals)
		vals = grown
	}
	// Pass 2: decode. The arena has capacity, so the subslices are
	// stable.
	off = 0
	for i := 0; i < count; i++ {
		rec := body[off:]
		n := int(binary.LittleEndian.Uint16(rec[18:]))
		start := len(vals)
		for j := 0; j < n; j++ {
			vals = append(vals, int64(binary.LittleEndian.Uint64(rec[varBaseSize+8*j:])))
		}
		dst = append(dst, Result{
			ID:     binary.LittleEndian.Uint64(rec),
			Status: Status(rec[8]),
			OK:     rec[9] == 1,
			Value:  int64(binary.LittleEndian.Uint64(rec[10:])),
			Values: vals[start:len(vals):len(vals)],
		})
		off += varBaseSize + 8*n
	}
	return dst, vals, nil
}

// checkHeader validates the frame type and that the payload length
// matches the declared record count exactly.
//
//pimvet:allocfree //pimvet:nonblocking
func checkHeader(payload []byte, wantType uint8, recSize int) (body []byte, count int, err error) {
	return checkHeaderSized(payload, wantType, recSize, 0)
}

// checkHeaderSized is checkHeader for frame types carrying extra bytes
// of fixed-size per-frame state (the trace context) before the records;
// the returned body starts at that state.
//
//pimvet:allocfree //pimvet:nonblocking
func checkHeaderSized(payload []byte, wantType uint8, recSize, extra int) (body []byte, count int, err error) {
	if len(payload) < headerSize {
		return nil, 0, errTruncatedHeader
	}
	if payload[0] != wantType {
		return nil, 0, errWrongFrameType
	}
	count = int(binary.LittleEndian.Uint16(payload[1:]))
	if count > MaxOpsPerFrame {
		return nil, 0, errCountRange
	}
	body = payload[headerSize:]
	if len(body) != extra+count*recSize {
		return nil, 0, errSizeMismatch
	}
	return body, count, nil
}
