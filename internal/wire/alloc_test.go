package wire_test

import (
	"bytes"
	"testing"

	"pimds/internal/testenv"
	"pimds/internal/wire"
)

// These tests pin the //pimvet:allocfree annotations on the wire fast
// paths with the runtime's own allocation counter: encode and decode of
// full frames must not allocate once the reusable buffers have grown to
// size. Skipped under -race (allocation accounting differs); the static
// analyzer still checks the property on every build.

func skipIfRace(t *testing.T) {
	t.Helper()
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
}

func benchOps(n int) []wire.Op {
	ops := make([]wire.Op, n)
	for i := range ops {
		ops[i] = wire.Op{ID: uint64(i), Kind: wire.Add, Key: int64(i * 3)}
	}
	return ops
}

func benchResults(n int) []wire.Result {
	results := make([]wire.Result, n)
	for i := range results {
		results[i] = wire.Result{ID: uint64(i), Status: wire.StatusOK, OK: i%2 == 0, Value: int64(i)}
	}
	return results
}

func TestRequestRoundTripAllocs(t *testing.T) {
	skipIfRace(t)
	ops := benchOps(64)
	buf := make([]byte, 0, 1<<14)
	dst := make([]wire.Op, 0, 64)
	var err error
	avg := testing.AllocsPerRun(200, func() {
		buf, err = wire.AppendRequest(buf[:0], ops)
		if err != nil {
			return
		}
		dst, _, err = wire.DecodeRequestAny(buf[4:], dst[:0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("request encode+decode: %.1f allocs/op, want 0", avg)
	}
}

func TestTracedRequestRoundTripAllocs(t *testing.T) {
	skipIfRace(t)
	ops := benchOps(64)
	tc := wire.TraceContext{TraceID: 0xfeed, Sampled: true}
	buf := make([]byte, 0, 1<<14)
	dst := make([]wire.Op, 0, 64)
	var err error
	avg := testing.AllocsPerRun(200, func() {
		buf, err = wire.AppendRequestTraced(buf[:0], ops, tc)
		if err != nil {
			return
		}
		dst, _, err = wire.DecodeRequestAny(buf[4:], dst[:0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("traced request encode+decode: %.1f allocs/op, want 0", avg)
	}
}

func TestResponseRoundTripAllocs(t *testing.T) {
	skipIfRace(t)
	results := benchResults(64)
	buf := make([]byte, 0, 1<<14)
	dst := make([]wire.Result, 0, 64)
	var err error
	avg := testing.AllocsPerRun(200, func() {
		buf, err = wire.AppendResponse(buf[:0], results)
		if err != nil {
			return
		}
		dst, err = wire.DecodeResponse(buf[4:], dst[:0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("response encode+decode: %.1f allocs/op, want 0", avg)
	}
}

func TestRequestV2RoundTripAllocs(t *testing.T) {
	skipIfRace(t)
	ops := benchOps(64)
	for i := range ops {
		if i%4 == 0 {
			ops[i].Kind = wire.RangeScan
			ops[i].Hi = ops[i].Key + 100
			ops[i].Limit = 16
		}
	}
	tc := wire.TraceContext{TraceID: 0xfeed, Sampled: true}
	buf := make([]byte, 0, 1<<14)
	dst := make([]wire.Op, 0, 64)
	var err error
	avg := testing.AllocsPerRun(200, func() {
		buf, err = wire.AppendRequestV2(buf[:0], ops, tc)
		if err != nil {
			return
		}
		dst, _, err = wire.DecodeRequestAny(buf[4:], dst[:0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("V2 request encode+decode: %.1f allocs/op, want 0", avg)
	}
}

func TestResponseVarRoundTripAllocs(t *testing.T) {
	skipIfRace(t)
	results := benchResults(64)
	scanKeys := make([]int64, 8)
	for i := range scanKeys {
		scanKeys[i] = int64(i * 5)
	}
	for i := range results {
		if i%4 == 0 {
			results[i].Values = scanKeys
		}
	}
	buf := make([]byte, 0, 1<<14)
	dst := make([]wire.Result, 0, 64)
	arena := make([]int64, 0, 1024)
	var err error
	avg := testing.AllocsPerRun(200, func() {
		buf, err = wire.AppendResponseVar(buf[:0], results)
		if err != nil {
			return
		}
		dst, arena, err = wire.DecodeResponseAny(buf[4:], dst[:0], arena[:0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("var response encode+decode: %.1f allocs/op, want 0", avg)
	}
}

func TestReadFrameSteadyStateAllocs(t *testing.T) {
	skipIfRace(t)
	frame, err := wire.AppendRequest(nil, benchOps(64))
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	buf := make([]byte, len(frame)) // already at the high-water mark
	avg := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		var rerr error
		buf, rerr = wire.ReadFrame(r, buf)
		if rerr != nil {
			err = rerr
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("ReadFrame steady state: %.1f allocs/op, want 0", avg)
	}
}
