package benchfmt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"34.1M", 34.1e6, true},
		{"2.5K", 2500, true},
		{"1.2G", 1.2e9, true},
		{"16", 16, true},
		{"0.97", 0.97, true},
		{"1.234µs", 1234, true}, // durations parse in time.Duration ns units
		{"90ns", 90, true},
		{"42.1%", 0.421, true},
		{"—", 0, false},
		{"pim list", 0, false},
		{"", 0, false},
		{"enq+deq", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseCell(c.in)
		if ok != c.ok {
			t.Errorf("ParseCell(%q) ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("ParseCell(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func report(ops, p99 string) *Report {
	return &Report{
		Name:   "pimbench",
		Params: Params{R1: 3, R2: 3, R3: 1, LcpuNS: 90, Seed: 1},
		Experiments: []ExperimentResult{{
			ID: "latency",
			Tables: []Table{{
				Title:   "Latency breakdown",
				Columns: []string{"structure", "clients", "ops/s", "p99", "mem%"},
				Rows: [][]string{
					{"pim list", "16", ops, p99, "40.0%"},
					{"pim skip", "16", "20.0M", "2µs", "55.0%"},
				},
			}},
		}},
	}
}

func TestCompareCleanWithinThreshold(t *testing.T) {
	old := report("10.0M", "1µs")
	new := report("10.5M", "1.05µs") // +5%, below 10%
	if fs := Compare(old, new, CompareOptions{ThresholdPct: 10}); len(fs) != 0 {
		t.Fatalf("expected no findings, got %v", fs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := report("10.0M", "1µs")
	new := report("8.0M", "1.5µs") // -20% throughput, +50% p99
	fs := Compare(old, new, CompareOptions{ThresholdPct: 10})
	var reg int
	for _, f := range fs {
		if f.Severity == SevRegression {
			reg++
		}
	}
	if reg != 2 {
		t.Fatalf("expected 2 regressions (ops/s down, p99 up), got %d in %v", reg, fs)
	}
}

func TestCompareFlagsImprovementAndDrift(t *testing.T) {
	old := report("10.0M", "1µs")
	new := report("20.0M", "1µs")
	new.Experiments[0].Tables[0].Rows[0][4] = "60.0%" // share drift
	fs := Compare(old, new, CompareOptions{ThresholdPct: 10})
	var imp, drift int
	for _, f := range fs {
		switch f.Severity {
		case SevImprovement:
			imp++
		case SevDrift:
			drift++
		case SevRegression:
			t.Fatalf("unexpected regression: %v", f)
		}
	}
	if imp != 1 || drift != 1 {
		t.Fatalf("expected 1 improvement + 1 drift, got %d/%d in %v", imp, drift, fs)
	}
}

func TestCompareAllocColumnsTighterThreshold(t *testing.T) {
	mk := func(allocs, bytes string) *Report {
		return &Report{
			Name: "pimload",
			Experiments: []ExperimentResult{{ID: "pimload", Tables: []Table{{
				Title:   "pimload — set workload",
				Columns: []string{"conns", "ops/s", "allocs/op", "B/op"},
				Rows:    [][]string{{"64", "10.0M", allocs, bytes}},
			}}}},
		}
	}
	// +6% allocations: invisible at the 10% timing threshold, but the
	// 5% alloc threshold must flag it — as a regression, because more
	// allocations per op is always the wrong direction.
	old, new := mk("10.00", "512"), mk("10.60", "512")
	fs := Compare(old, new, CompareOptions{ThresholdPct: 10, AllocThresholdPct: 5})
	if len(fs) != 1 || fs[0].Severity != SevRegression || fs[0].Column != "allocs/op" {
		t.Fatalf("expected one allocs/op regression, got %v", fs)
	}
	// Without the override the same delta stays under the gate.
	if fs := Compare(old, new, CompareOptions{ThresholdPct: 10}); len(fs) != 0 {
		t.Fatalf("expected no findings at timing threshold, got %v", fs)
	}
	// Fewer bytes per op beyond threshold is an improvement.
	fs = Compare(mk("10.00", "512"), mk("10.00", "400"), CompareOptions{ThresholdPct: 10, AllocThresholdPct: 5})
	if len(fs) != 1 || fs[0].Severity != SevImprovement || fs[0].Column != "B/op" {
		t.Fatalf("expected one B/op improvement, got %v", fs)
	}
}

func TestCompareStructuralMismatch(t *testing.T) {
	old := report("10.0M", "1µs")
	new := report("10.0M", "1µs")
	new.Experiments[0].ID = "renamed"
	fs := Compare(old, new, CompareOptions{})
	if len(fs) != 2 { // missing + only-in-new
		t.Fatalf("expected 2 structural findings, got %v", fs)
	}
	for _, f := range fs {
		if f.Severity != SevStructure {
			t.Fatalf("expected structure severity, got %v", f)
		}
	}

	diffParams := report("10.0M", "1µs")
	diffParams.Params.Seed = 2
	fs = Compare(old, diffParams, CompareOptions{})
	if len(fs) != 1 || fs[0].Severity != SevStructure {
		t.Fatalf("expected params mismatch finding, got %v", fs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := report("10.0M", "1µs")
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	a := buf.String()
	got, err := Read(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rep.Name || got.Params != rep.Params ||
		len(got.Experiments) != 1 || got.Experiments[0].Tables[0].Rows[0][2] != "10.0M" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	buf.Reset()
	if err := got.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != a {
		t.Fatal("Write is not stable across a round trip")
	}
}
