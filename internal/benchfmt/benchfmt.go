// Package benchfmt defines the machine-readable benchmark format
// written by `pimbench -json` and the comparison logic behind
// `benchdiff`: it parses the human-oriented table cells (throughput
// suffixes, virtual-time durations, percentage shares) back into
// numbers and flags relative changes beyond a threshold.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Table is one rendered experiment table, mirroring harness.Table.
type Table struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// ExperimentResult is the output of one experiment run.
type ExperimentResult struct {
	ID          string  `json:"id"`
	Description string  `json:"description,omitempty"`
	Tables      []Table `json:"tables"`
}

// Params records the model knobs a report was generated with, so a
// diff across different configurations can be rejected loudly.
type Params struct {
	R1     float64 `json:"r1"`
	R2     float64 `json:"r2"`
	R3     float64 `json:"r3"`
	LcpuNS float64 `json:"lcpu_ns"`
	Seed   int64   `json:"seed"`
	Quick  bool    `json:"quick"`
}

// Report is a full `pimbench -json` run.
type Report struct {
	Name        string             `json:"name"`
	Params      Params             `json:"params"`
	Experiments []ExperimentResult `json:"experiments"`
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Read parses a report written by Write.
func Read(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return &rep, nil
}

// Severity classifies a finding.
type Severity string

const (
	// SevRegression: a metric moved beyond threshold in the bad
	// direction (throughput down, latency up).
	SevRegression Severity = "regression"
	// SevImprovement: beyond threshold in the good direction.
	SevImprovement Severity = "improvement"
	// SevDrift: beyond threshold in a column with no known better
	// direction (e.g. attribution shares).
	SevDrift Severity = "drift"
	// SevStructure: experiments, tables, rows or labels differ, so
	// cells could not be compared.
	SevStructure Severity = "structure"
)

// Finding is one compared cell (or structural mismatch).
type Finding struct {
	Severity Severity `json:"severity"`
	Exp      string   `json:"exp"`
	Table    string   `json:"table,omitempty"`
	Row      string   `json:"row,omitempty"`
	Column   string   `json:"column,omitempty"`
	Old      string   `json:"old,omitempty"`
	New      string   `json:"new,omitempty"`
	DeltaPct float64  `json:"delta_pct,omitempty"`
	Detail   string   `json:"detail,omitempty"`
}

func (f Finding) String() string {
	loc := f.Exp
	if f.Table != "" {
		loc += " / " + f.Table
	}
	if f.Row != "" {
		loc += " / " + f.Row
	}
	if f.Column != "" {
		loc += " / " + f.Column
	}
	if f.Detail != "" {
		return fmt.Sprintf("%-11s %s: %s", f.Severity, loc, f.Detail)
	}
	return fmt.Sprintf("%-11s %s: %s -> %s (%+.1f%%)", f.Severity, loc, f.Old, f.New, f.DeltaPct)
}

// direction returns +1 when higher is better (throughput), -1 when
// lower is better (latency, allocations, error-budget burn), 0 when
// unknown.
func direction(column string) int {
	c := strings.ToLower(column)
	switch {
	case strings.Contains(c, "ops/s"), strings.Contains(c, "throughput"), strings.Contains(c, "speedup"):
		return +1
	case strings.Contains(c, "p50"), strings.Contains(c, "p95"), strings.Contains(c, "p99"),
		strings.Contains(c, "latency"),
		strings.Contains(c, "burn"),
		allocColumn(c):
		return -1
	default:
		return 0
	}
}

// allocColumn reports whether a (lowercased) column header is an
// allocation metric: allocs/op or B/op as emitted by pimload and the
// testing package's benchmark output.
func allocColumn(c string) bool {
	return strings.Contains(c, "allocs/op") || strings.Contains(c, "b/op") || strings.Contains(c, "alloc")
}

// ParseCell parses a table cell rendered by the harness back into a
// number: plain numbers, K/M/G-suffixed throughputs, Go duration
// strings (virtual times), and percentages (as fractions). The second
// return is false for labels and placeholders.
func ParseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" || s == "—" {
		return 0, false
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, true
	}
	if strings.HasSuffix(s, "%") {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64); err == nil {
			return v / 100, true
		}
		return 0, false
	}
	if n := len(s); n > 1 {
		if mult, ok := map[byte]float64{'K': 1e3, 'M': 1e6, 'G': 1e9}[s[n-1]]; ok {
			if v, err := strconv.ParseFloat(s[:n-1], 64); err == nil {
				return v * mult, true
			}
		}
	}
	if d, err := time.ParseDuration(s); err == nil {
		return float64(d), true
	}
	return 0, false
}

// CompareOptions tunes Compare.
type CompareOptions struct {
	// ThresholdPct is the relative change (percent) beyond which a
	// numeric cell is reported. Default 10.
	ThresholdPct float64
	// AllocThresholdPct overrides ThresholdPct for allocation columns
	// (allocs/op, B/op). Allocation counts are far less noisy than
	// wall-clock throughput, so a tighter gate catches allocation
	// regressions that would hide inside the timing threshold. Zero
	// inherits ThresholdPct.
	AllocThresholdPct float64
}

// Compare aligns two reports and returns findings for every numeric
// cell whose relative change exceeds the threshold, plus structural
// mismatches. Rows are aligned by index with their first (label) cell
// checked, which is sound because the harness emits rows in a fixed
// deterministic order.
func Compare(old, new *Report, opt CompareOptions) []Finding {
	if opt.ThresholdPct <= 0 {
		opt.ThresholdPct = 10
	}
	var out []Finding
	if old.Params != new.Params {
		out = append(out, Finding{
			Severity: SevStructure, Exp: "(params)",
			Detail: fmt.Sprintf("reports were generated with different parameters: %+v vs %+v", old.Params, new.Params),
		})
	}

	newExps := make(map[string]*ExperimentResult, len(new.Experiments))
	for i := range new.Experiments {
		newExps[new.Experiments[i].ID] = &new.Experiments[i]
	}
	seen := make(map[string]bool, len(old.Experiments))
	for i := range old.Experiments {
		oe := &old.Experiments[i]
		seen[oe.ID] = true
		ne, ok := newExps[oe.ID]
		if !ok {
			out = append(out, Finding{Severity: SevStructure, Exp: oe.ID, Detail: "experiment missing from new report"})
			continue
		}
		out = append(out, compareExperiment(oe, ne, opt)...)
	}
	for i := range new.Experiments {
		if !seen[new.Experiments[i].ID] {
			out = append(out, Finding{Severity: SevStructure, Exp: new.Experiments[i].ID, Detail: "experiment only in new report"})
		}
	}
	return out
}

func compareExperiment(oe, ne *ExperimentResult, opt CompareOptions) []Finding {
	var out []Finding
	newTabs := make(map[string]*Table, len(ne.Tables))
	for i := range ne.Tables {
		newTabs[ne.Tables[i].Title] = &ne.Tables[i]
	}
	for i := range oe.Tables {
		ot := &oe.Tables[i]
		nt, ok := newTabs[ot.Title]
		if !ok {
			out = append(out, Finding{Severity: SevStructure, Exp: oe.ID, Table: ot.Title, Detail: "table missing from new report"})
			continue
		}
		out = append(out, compareTable(oe.ID, ot, nt, opt)...)
	}
	return out
}

func compareTable(exp string, ot, nt *Table, opt CompareOptions) []Finding {
	var out []Finding
	if len(ot.Rows) != len(nt.Rows) {
		out = append(out, Finding{
			Severity: SevStructure, Exp: exp, Table: ot.Title,
			Detail: fmt.Sprintf("row count changed: %d vs %d", len(ot.Rows), len(nt.Rows)),
		})
		return out
	}
	for r := range ot.Rows {
		orow, nrow := ot.Rows[r], nt.Rows[r]
		label := rowLabel(orow, r)
		if len(orow) != len(nrow) || rowLabel(nrow, r) != label {
			out = append(out, Finding{
				Severity: SevStructure, Exp: exp, Table: ot.Title, Row: label,
				Detail: fmt.Sprintf("row shape/label changed: %v vs %v", orow, nrow),
			})
			continue
		}
		for c := range orow {
			ov, oNum := ParseCell(orow[c])
			nv, nNum := ParseCell(nrow[c])
			if !oNum || !nNum {
				continue
			}
			col := ""
			if c < len(ot.Columns) {
				col = ot.Columns[c]
			}
			threshold := opt.ThresholdPct
			if opt.AllocThresholdPct > 0 && allocColumn(strings.ToLower(col)) {
				threshold = opt.AllocThresholdPct
			}
			delta := deltaPct(ov, nv)
			if math.Abs(delta) <= threshold {
				continue
			}
			sev := SevDrift
			switch direction(col) {
			case +1:
				sev = SevImprovement
				if nv < ov {
					sev = SevRegression
				}
			case -1:
				sev = SevImprovement
				if nv > ov {
					sev = SevRegression
				}
			}
			out = append(out, Finding{
				Severity: sev, Exp: exp, Table: ot.Title, Row: label, Column: col,
				Old: orow[c], New: nrow[c], DeltaPct: delta,
			})
		}
	}
	return out
}

// rowLabel identifies a row by its non-numeric cells (structure and
// variant names); purely numeric rows fall back to their index. Rows
// are matched positionally — the harness emits them in a fixed order —
// so the label is for display and a sanity check, not a join key.
func rowLabel(row []string, idx int) string {
	var parts []string
	for _, cell := range row {
		if _, num := ParseCell(cell); !num {
			parts = append(parts, cell)
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("row %d", idx)
	}
	return strings.Join(parts, " ")
}

func deltaPct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / math.Abs(old) * 100
}
