// Package prof is a virtual-time profiler for the simulator: it
// reconstructs, per injected request, where every picosecond of
// end-to-end latency went — memory accesses, message hops, queueing at
// cores, combiner-batch waits, atomics, or handler service time — and
// exports an aggregate attribution report, folded-stack flamegraphs,
// and top-N slowest-request drill-downs.
//
// The profiler attaches to an engine through the sim.Profiler hook
// interface and is strictly observational: simulated code never reads
// profiler state, so attaching one changes simulated results by
// exactly zero (pinned by test, like the metrics layer).
//
// # Attribution model
//
// Clients are closed-loop: each client CPU has at most one logical
// operation in flight, so a request is identified by its client's
// CoreID between the client's ProfOpStart and ProfOpEnd marks. Each
// in-flight request carries a cursor (lastT) that sweeps monotonically
// from issue time to completion time; every profiler event advances
// the cursor and charges the traversed interval to exactly one
// component. Because the intervals tile [issue, completion] with no
// gaps or overlaps, the per-component breakdown sums *exactly* to the
// request's end-to-end virtual latency — this is a property of the
// construction, and the test suite asserts it for every request of
// every structure.
//
// When a core serves a combined batch (messages drained via
// TakeQueued), every request in the batch is located at that core, so
// shared batch work (the combiner's single traversal) appears in the
// critical path of every batch member. That is the honest accounting:
// each member's latency really does include that traversal.
package prof

import (
	"pimds/internal/sim"
	"pimds/internal/stats"
)

// Component is a latency-model component to which virtual time is
// attributed.
type Component uint8

const (
	// CompMemory: vault/DRAM/LLC accesses (Lpim, LpimRemote, Lcpu, Lllc).
	CompMemory Component = iota
	// CompMessage: time on the wire, at most Lmessage per hop.
	CompMessage
	// CompAtomic: the serialized atomic operations themselves (Latomic).
	CompAtomic
	// CompQueueing: waiting — in a core's buffer behind other
	// messages, for injection bandwidth, for an atomic line to free
	// up, parked inside a core awaiting a protocol barrier, or at the
	// client awaiting an unsolicited continuation.
	CompQueueing
	// CompCombiner: waiting in a combiner's buffer to be picked up by
	// a batch (TakeQueued), the cost the combining optimization trades
	// against per-message handling.
	CompCombiner
	// CompService: handler bookkeeping — Epsilon steps, Compute time,
	// send overhead, and client-side work between ops.
	CompService

	numComponents = 6
)

var compNames = [numComponents]string{
	"memory", "message", "atomic", "queueing", "combiner_wait", "service",
}

// String returns the component's stable snake_case name as used in
// reports and folded stacks.
func (c Component) String() string {
	if int(c) < len(compNames) {
		return compNames[c]
	}
	return "unknown"
}

// Components lists all component names in declaration order.
func Components() []string {
	out := make([]string, numComponents)
	copy(out, compNames[:])
	return out
}

// reqState is the profiler's view of where a request currently is.
type reqState uint8

const (
	// stClientActive: the client CPU is executing on the request's
	// behalf (building it, or processing its response).
	stClientActive reqState = iota
	// stNetRequest: one or more request messages are in flight toward
	// serving cores.
	stNetRequest
	// stServing: a core's handler is executing with this request
	// located at it.
	stServing
	// stParked: a core finished a handler run holding this request
	// without replying (e.g. stashed behind a handoff barrier).
	stParked
	// stNetReply: the reply is in flight back to the client.
	stNetReply
	// stClientWait: the client processed a message for this request
	// but neither completed it nor sent anything — it is waiting for
	// an unsolicited continuation (e.g. an ownership notification).
	stClientWait
)

// request is one in-flight logical operation.
type request struct {
	client sim.CoreID
	kind   int // message kind of the first request send; -1 until known
	issued sim.Time
	lastT  sim.Time // attribution cursor; [issued, lastT] is fully attributed
	state  reqState
	loc    sim.CoreID // serving/parking core while stServing/stParked

	replyID uint64
	comp    [numComponents]int64
	spans   []Span

	msgs     int // messages sent on this request's behalf
	hops     int // times a core picked the request up
	combined bool
	batch    int // largest batch the request was served in
	done     bool
}

// msgState tracks one in-flight tracked message.
type msgState struct {
	req         *request
	reply       bool
	deliveredAt sim.Time
	delivered   bool
}

// handlerRun tracks one core's current handler run for batch-size
// accounting.
type handlerRun struct {
	members []*request
	count   int // messages consumed this run, tracked or not
}

// Options configures a Profiler.
type Options struct {
	// Structure names the data structure under test; it becomes the
	// middle frame of folded stacks.
	Structure string
	// KindName maps message kinds to names (e.g. engine.KindName).
	// Nil falls back to "kind_NN".
	KindName func(kind int) string
	// TopN bounds the slowest-request drill-down list (default 5).
	TopN int
	// SpanCap bounds the span trail kept per request (default 64).
	SpanCap int
}

// Profiler implements sim.Profiler. It must be attached with
// Engine.SetProfiler before clients start. Not safe for concurrent
// use; the simulation is single-goroutine.
type Profiler struct {
	cfg sim.Config
	opt Options

	active  map[sim.CoreID]*request   // in-flight request per client CPU
	msgs    map[uint64]*msgState      // tracked in-flight messages
	located map[sim.CoreID][]*request // requests at a serving core
	runs    map[sim.CoreID]*handlerRun

	kinds      map[int]*kindAgg
	slowest    []*Record // kept sorted, len <= TopN
	completedN uint64

	// OnComplete, when set, is invoked with every completed request's
	// record. It exists for tests (e.g. the exact-sum property test);
	// simulated code must never install or read it.
	OnComplete func(*Record)
}

// kindAgg aggregates completed requests of one kind.
type kindAgg struct {
	count    uint64
	totalPS  int64
	lat      *stats.Histogram
	comp     [numComponents]int64
	combined uint64
	batchSum uint64
	msgSum   uint64
	hopSum   uint64
}

// New creates a profiler for e's configuration. Attach it with
// e.SetProfiler(p) before starting clients.
func New(e *sim.Engine, opt Options) *Profiler {
	if opt.TopN <= 0 {
		opt.TopN = 5
	}
	if opt.SpanCap <= 0 {
		opt.SpanCap = 64
	}
	if opt.KindName == nil {
		opt.KindName = e.KindName
	}
	return &Profiler{
		cfg:     e.Config(),
		opt:     opt,
		active:  make(map[sim.CoreID]*request),
		msgs:    make(map[uint64]*msgState),
		located: make(map[sim.CoreID][]*request),
		runs:    make(map[sim.CoreID]*handlerRun),
		kinds:   make(map[int]*kindAgg),
	}
}

// --- cursor helpers ---------------------------------------------------

// span extends the request's span trail with [from, to] on core,
// merging into the previous span when contiguous and like-labelled.
func (r *request) span(comp Component, core sim.CoreID, from, to sim.Time, cap int) {
	if to <= from {
		return
	}
	if n := len(r.spans); n > 0 {
		last := &r.spans[n-1]
		if last.Component == comp.String() && last.Core == int(core) && last.EndPS == int64(from) {
			last.EndPS = int64(to)
			return
		}
	}
	if len(r.spans) >= cap {
		return
	}
	r.spans = append(r.spans, Span{
		Component: comp.String(), Core: int(core),
		StartPS: int64(from), EndPS: int64(to),
	})
}

// advanceTo attributes [lastT, at] to comp and moves the cursor.
func (p *Profiler) advanceTo(r *request, at sim.Time, comp Component, core sim.CoreID) {
	if at <= r.lastT {
		return
	}
	r.comp[comp] += int64(at - r.lastT)
	r.span(comp, core, r.lastT, at, p.opt.SpanCap)
	r.lastT = at
}

// chargeTo attributes a clock charge of d ending at at. Any uncovered
// gap before the charge (clock advanced by means the profiler cannot
// see — there are none today) is conservatively booked as service.
func (p *Profiler) chargeTo(r *request, at sim.Time, comp Component, d sim.Time, core sim.CoreID) {
	start := at - d
	if start > r.lastT {
		p.advanceTo(r, start, CompService, core)
	}
	p.advanceTo(r, at, comp, core)
}

// splitHop attributes the interval [lastT, deliveredAt] of one message
// hop: up to Lmessage is wire time, any excess (injection backpressure,
// FIFO clamping) is queueing.
func (p *Profiler) splitHop(r *request, deliveredAt sim.Time, core sim.CoreID) {
	if deliveredAt <= r.lastT {
		return
	}
	wire := deliveredAt - r.lastT
	if wire > p.cfg.Lmessage {
		wire = p.cfg.Lmessage
	}
	p.advanceTo(r, deliveredAt-wire, CompQueueing, core)
	p.advanceTo(r, deliveredAt, CompMessage, core)
}

func (p *Profiler) unlocate(r *request) {
	list := p.located[r.loc]
	for i, q := range list {
		if q == r {
			p.located[r.loc] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func mapCost(k sim.CostKind) Component {
	switch k {
	case sim.CostMemory:
		return CompMemory
	case sim.CostAtomic:
		return CompAtomic
	case sim.CostAtomicWait:
		return CompQueueing
	default:
		return CompService
	}
}

// --- sim.Profiler hooks ----------------------------------------------

// OpStart begins tracking a logical operation for client cpu.
func (p *Profiler) OpStart(at sim.Time, cpu sim.CoreID) {
	if old := p.active[cpu]; old != nil {
		old.done = true // defensive: a client restarted without OpEnd
	}
	p.active[cpu] = &request{
		client: cpu, kind: -1, issued: at, lastT: at, state: stClientActive,
	}
}

// OpEnd completes cpu's in-flight operation and folds it into the
// aggregates.
func (p *Profiler) OpEnd(at sim.Time, cpu sim.CoreID) {
	r := p.active[cpu]
	if r == nil || r.done {
		return
	}
	switch r.state {
	case stClientActive:
		p.advanceTo(r, at, CompService, cpu)
	case stServing:
		p.unlocate(r)
		p.advanceTo(r, at, CompQueueing, cpu)
	default:
		p.advanceTo(r, at, CompQueueing, cpu)
	}
	r.done = true
	delete(p.active, cpu)
	p.finalize(r, at)
}

// Charge attributes a local-clock advance on core.
func (p *Profiler) Charge(at sim.Time, core sim.CoreID, kind sim.CostKind, d sim.Time) {
	comp := mapCost(kind)
	if r := p.active[core]; r != nil && !r.done && r.state == stClientActive {
		p.chargeTo(r, at, comp, d, core)
	}
	for _, r := range p.located[core] {
		if !r.done {
			p.chargeTo(r, at, comp, d, core)
		}
	}
}

// MsgSent classifies an outbound message: a request send from a client
// with an active op, or a reply toward a client whose op is located at
// the sender.
func (p *Profiler) MsgSent(at sim.Time, id uint64, m sim.Message) {
	if r := p.active[m.From]; r != nil && !r.done {
		switch r.state {
		case stClientActive:
			p.advanceTo(r, at, CompService, m.From)
			if r.kind < 0 {
				r.kind = m.Kind
			}
			r.state = stNetRequest
			r.msgs++
			p.msgs[id] = &msgState{req: r}
			return
		case stNetRequest:
			// Additional fan-out (e.g. a discovery broadcast).
			r.msgs++
			p.msgs[id] = &msgState{req: r}
			return
		}
	}
	if r := p.active[m.To]; r != nil && !r.done {
		switch {
		case r.state == stServing && m.From == r.loc:
			p.unlocate(r)
			p.advanceTo(r, at, CompService, m.From)
		case r.state == stParked && m.From == r.loc:
			p.advanceTo(r, at, CompQueueing, m.From)
		case r.state == stClientWait:
			p.advanceTo(r, at, CompQueueing, m.From)
		default:
			return
		}
		r.state = stNetReply
		r.replyID = id
		p.msgs[id] = &msgState{req: r, reply: true}
	}
}

// MsgDelivered records the delivery time of a tracked message.
func (p *Profiler) MsgDelivered(at sim.Time, id uint64, m sim.Message) {
	if ms := p.msgs[id]; ms != nil {
		ms.delivered = true
		ms.deliveredAt = at
	}
}

// MsgConsumed advances a request when one of its messages is picked up
// by a core, and tracks handler-run batch membership.
func (p *Profiler) MsgConsumed(at sim.Time, id uint64, core sim.CoreID, combined bool) {
	run := p.runs[core]
	if !combined || run == nil {
		run = &handlerRun{}
		p.runs[core] = run
	}
	run.count++

	ms := p.msgs[id]
	if ms == nil {
		return
	}
	delete(p.msgs, id)
	r := ms.req
	if r.done {
		return
	}

	if ms.reply {
		if r.state != stNetReply || id != r.replyID || core != r.client {
			return
		}
		deliveredAt := at
		if ms.delivered && ms.deliveredAt < at {
			deliveredAt = ms.deliveredAt
		}
		p.splitHop(r, deliveredAt, core)
		p.advanceTo(r, at, CompQueueing, core)
		r.state = stClientActive
		return
	}

	// A request message reached a core.
	switch r.state {
	case stNetRequest:
		deliveredAt := at
		if ms.delivered && ms.deliveredAt < at {
			deliveredAt = ms.deliveredAt
		}
		p.splitHop(r, deliveredAt, core)
		if combined {
			p.advanceTo(r, at, CompCombiner, core)
			r.combined = true
		} else {
			p.advanceTo(r, at, CompQueueing, core)
		}
	case stParked, stClientWait:
		// The protocol re-routed the request (e.g. after a handoff or
		// an ownership update): the whole detour was waiting.
		p.advanceTo(r, at, CompQueueing, core)
		if combined {
			r.combined = true
		}
	default:
		return
	}
	r.state = stServing
	r.loc = core
	r.hops++
	p.located[core] = append(p.located[core], r)
	run.members = append(run.members, r)
}

// HandlerEnd closes a core's handler run: batch sizes are assigned to
// every member, still-located requests park, and a client that went
// idle without completing or sending transitions to waiting.
func (p *Profiler) HandlerEnd(at sim.Time, core sim.CoreID) {
	if run := p.runs[core]; run != nil {
		for _, r := range run.members {
			if run.count > r.batch {
				r.batch = run.count
			}
		}
		delete(p.runs, core)
	}
	if list := p.located[core]; len(list) > 0 {
		for _, r := range list {
			if !r.done {
				p.advanceTo(r, at, CompService, core)
				r.state = stParked
			}
		}
		p.located[core] = list[:0]
	}
	if r := p.active[core]; r != nil && !r.done && r.state == stClientActive {
		p.advanceTo(r, at, CompService, core)
		r.state = stClientWait
	}
}

// --- completion -------------------------------------------------------

func (p *Profiler) kindName(kind int) string {
	if kind < 0 {
		return "unsent"
	}
	return p.opt.KindName(kind)
}

func (p *Profiler) finalize(r *request, end sim.Time) {
	p.completedN++
	agg := p.kinds[r.kind]
	if agg == nil {
		agg = &kindAgg{lat: stats.NewHistogram(16)}
		p.kinds[r.kind] = agg
	}
	total := int64(end - r.issued)
	agg.count++
	agg.totalPS += total
	agg.lat.Add(total)
	for i := range r.comp {
		agg.comp[i] += r.comp[i]
	}
	if r.combined {
		agg.combined++
	}
	batch := r.batch
	if batch == 0 {
		batch = 1
	}
	agg.batchSum += uint64(batch)
	agg.msgSum += uint64(r.msgs)
	agg.hopSum += uint64(r.hops)

	keep := len(p.slowest) < p.opt.TopN ||
		total > p.slowest[len(p.slowest)-1].LatencyPS
	if keep || p.OnComplete != nil {
		rec := p.record(r, end, total)
		if keep {
			p.insertSlowest(rec)
		}
		if p.OnComplete != nil {
			p.OnComplete(rec)
		}
	}
}

func (p *Profiler) record(r *request, end sim.Time, total int64) *Record {
	comps := make(map[string]int64, numComponents)
	for i, v := range r.comp {
		if v != 0 {
			comps[Component(i).String()] = v
		}
	}
	batch := r.batch
	if batch == 0 {
		batch = 1
	}
	return &Record{
		Kind:         p.kindName(r.kind),
		Client:       int(r.client),
		IssuedPS:     int64(r.issued),
		LatencyPS:    total,
		ComponentsPS: comps,
		Combined:     r.combined,
		Batch:        batch,
		Messages:     r.msgs,
		Hops:         r.hops,
		Spans:        r.spans,
	}
}

// insertSlowest keeps p.slowest sorted by descending latency (ties:
// earlier completion kept first), truncated to TopN.
func (p *Profiler) insertSlowest(rec *Record) {
	i := len(p.slowest)
	for i > 0 && p.slowest[i-1].LatencyPS < rec.LatencyPS {
		i--
	}
	p.slowest = append(p.slowest, nil)
	copy(p.slowest[i+1:], p.slowest[i:])
	p.slowest[i] = rec
	if len(p.slowest) > p.opt.TopN {
		p.slowest = p.slowest[:p.opt.TopN]
	}
}

// Completed returns the number of requests profiled to completion.
func (p *Profiler) Completed() uint64 { return p.completedN }

// InFlight returns the number of requests still being tracked.
func (p *Profiler) InFlight() int { return len(p.active) }
