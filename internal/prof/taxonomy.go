package prof

// The six-component latency taxonomy is shared between the two
// profilers in this repo: the virtual-time profiler in this package
// (which partitions a simulated request's picoseconds) and pimserve's
// wall-clock span recorder in internal/server (which partitions a
// network request's nanoseconds). Both produce breakdowns with the
// same shape — six mutually exclusive components that tile the
// request's lifetime, so each breakdown sums exactly to the measured
// end-to-end latency — and each wall-clock component has a
// virtual-time analogue that absorbs the same cause of delay. This
// file is the single declaration of that correspondence; server code
// imports these names rather than redeclaring them, so the two
// taxonomies cannot drift apart silently.

// ServerComponent indexes the wall-clock taxonomy pimserve's span
// recorder attributes request latency to. Declaration order is the
// order a request traverses the server.
type ServerComponent uint8

const (
	// SrvReadDecode: reader-side time — frame decode plus, for ops
	// late in a frame, waiting behind earlier ops' (possibly blocking)
	// publication. Analogue of CompService: per-request handling
	// overhead outside the structure itself.
	SrvReadDecode ServerComponent = iota
	// SrvQueueWait: waiting in the shard's bounded publication queue
	// for the combiner to drain it. Analogue of CompQueueing.
	SrvQueueWait
	// SrvCombineWait: picked up by the combiner but waiting while the
	// batch finishes gathering (greedy drain + CombineWait linger) —
	// the cost combining trades against per-op dispatch. Analogue of
	// CompCombiner.
	SrvCombineWait
	// SrvApply: the combiner's batch executing against the sequential
	// structure; shared batch work appears in every member's critical
	// path, exactly like the simulator's combined-batch accounting.
	// Analogue of CompMemory + CompAtomic: the structure work proper.
	SrvApply
	// SrvRespEncode: from batch completion to the response frame being
	// encoded, including waiting in the connection's writer queue.
	// Analogue of CompService on the reply path.
	SrvRespEncode
	// SrvWriteFlush: the encoded frame flushing to the socket — the
	// wall-clock analogue of CompMessage, time on the wire's doorstep.
	SrvWriteFlush

	// NumServerComponents is the taxonomy's cardinality; it equals the
	// virtual-time taxonomy's by construction.
	NumServerComponents = 6
)

var srvCompNames = [NumServerComponents]string{
	"read_decode", "queue_wait", "combine_wait", "apply", "resp_encode", "write_flush",
}

// String returns the component's stable snake_case name as used in
// metric names, span exports and reports.
func (c ServerComponent) String() string {
	if int(c) < len(srvCompNames) {
		return srvCompNames[c]
	}
	return "unknown"
}

// ServerComponents lists all wall-clock component names in traversal
// order.
func ServerComponents() []string {
	out := make([]string, NumServerComponents)
	copy(out, srvCompNames[:])
	return out
}

// Analog returns the virtual-time component that absorbs the same
// cause of latency in the simulator's attribution.
func (c ServerComponent) Analog() Component {
	switch c {
	case SrvReadDecode, SrvRespEncode:
		return CompService
	case SrvQueueWait:
		return CompQueueing
	case SrvCombineWait:
		return CompCombiner
	case SrvApply:
		return CompMemory
	case SrvWriteFlush:
		return CompMessage
	}
	return CompService
}
