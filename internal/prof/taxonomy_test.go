package prof

import "testing"

func TestTaxonomiesShareCardinality(t *testing.T) {
	if NumServerComponents != numComponents {
		t.Fatalf("server taxonomy has %d components, virtual-time taxonomy has %d; they must stay in lockstep",
			NumServerComponents, numComponents)
	}
	if len(ServerComponents()) != len(Components()) {
		t.Fatal("component name lists differ in length")
	}
}

func TestServerComponentNamesStableAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumServerComponents; i++ {
		c := ServerComponent(i)
		name := c.String()
		if name == "" || name == "unknown" {
			t.Errorf("component %d has no name", i)
		}
		if seen[name] {
			t.Errorf("duplicate component name %q", name)
		}
		seen[name] = true
	}
	if ServerComponent(NumServerComponents).String() != "unknown" {
		t.Error("out-of-range component must stringify as unknown")
	}
}

func TestEveryServerComponentHasAnAnalog(t *testing.T) {
	// Every virtual-time component that models a wait or work phase a
	// real server also has must be claimed by at least one wall-clock
	// component; the mapping documents the correspondence, and this
	// pins it against silent drift when either side grows.
	covered := map[Component]bool{}
	for i := 0; i < NumServerComponents; i++ {
		covered[ServerComponent(i).Analog()] = true
	}
	for _, want := range []Component{CompService, CompQueueing, CompCombiner, CompMemory, CompMessage} {
		if !covered[want] {
			t.Errorf("virtual-time component %s has no wall-clock analogue", want)
		}
	}
}
