package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is one merged interval of a request's critical path: the
// request spent [StartPS, EndPS] on core Core doing Component work.
type Span struct {
	Component string `json:"component"`
	Core      int    `json:"core"`
	StartPS   int64  `json:"start_ps"`
	EndPS     int64  `json:"end_ps"`
}

// Record is one completed request's drill-down: its exact component
// breakdown and span trail. ComponentsPS sums exactly to LatencyPS.
type Record struct {
	Kind         string           `json:"kind"`
	Client       int              `json:"client"`
	IssuedPS     int64            `json:"issued_ps"`
	LatencyPS    int64            `json:"latency_ps"`
	ComponentsPS map[string]int64 `json:"components_ps"`
	Combined     bool             `json:"combined"`
	Batch        int              `json:"batch"`
	Messages     int              `json:"messages"`
	Hops         int              `json:"hops"`
	Spans        []Span           `json:"spans,omitempty"`
}

// Quantiles summarizes a latency distribution in picoseconds.
type Quantiles struct {
	MeanPS float64 `json:"mean_ps"`
	P50PS  int64   `json:"p50_ps"`
	P95PS  int64   `json:"p95_ps"`
	P99PS  int64   `json:"p99_ps"`
}

// KindReport is the aggregate attribution for one request kind.
type KindReport struct {
	Count        uint64             `json:"count"`
	Latency      Quantiles          `json:"latency"`
	ComponentsPS map[string]int64   `json:"components_ps"`
	Shares       map[string]float64 `json:"shares"`
	Dominant     string             `json:"dominant"`
	Combined     uint64             `json:"combined"`
	MeanBatch    float64            `json:"mean_batch"`
	MeanMessages float64            `json:"mean_messages"`
	MeanHops     float64            `json:"mean_hops"`
}

// Report is the profiler's stable-JSON attribution report. All maps
// serialize with sorted keys and all values are deterministic
// functions of the simulation, so two runs with the same seed produce
// byte-identical reports.
type Report struct {
	Structure    string                `json:"structure"`
	Requests     uint64                `json:"requests"`
	InFlight     int                   `json:"in_flight"`
	TotalPS      int64                 `json:"total_ps"`
	ComponentsPS map[string]int64      `json:"components_ps"`
	Shares       map[string]float64    `json:"shares"`
	Kinds        map[string]KindReport `json:"kinds"`
	Slowest      []*Record             `json:"slowest"`
}

// Report builds the aggregate attribution report.
func (p *Profiler) Report() *Report {
	rep := &Report{
		Structure:    p.opt.Structure,
		Requests:     p.completedN,
		InFlight:     len(p.active),
		ComponentsPS: make(map[string]int64, numComponents),
		Shares:       make(map[string]float64, numComponents),
		Kinds:        make(map[string]KindReport, len(p.kinds)),
		Slowest:      p.slowest,
	}
	if rep.Slowest == nil {
		rep.Slowest = []*Record{}
	}
	var global [numComponents]int64
	for kind, agg := range p.kinds {
		kr := KindReport{
			Count: agg.count,
			Latency: Quantiles{
				MeanPS: agg.lat.Mean(),
			},
			ComponentsPS: make(map[string]int64, numComponents),
			Shares:       make(map[string]float64, numComponents),
			Combined:     agg.combined,
			MeanBatch:    float64(agg.batchSum) / float64(agg.count),
			MeanMessages: float64(agg.msgSum) / float64(agg.count),
			MeanHops:     float64(agg.hopSum) / float64(agg.count),
		}
		kr.Latency.P50PS, kr.Latency.P95PS, kr.Latency.P99PS = agg.lat.Percentiles()
		dominant := Component(0)
		for i, v := range agg.comp {
			global[i] += v
			if v == 0 {
				continue
			}
			kr.ComponentsPS[Component(i).String()] = v
			if agg.totalPS > 0 {
				kr.Shares[Component(i).String()] = float64(v) / float64(agg.totalPS)
			}
			if v > agg.comp[dominant] {
				dominant = Component(i)
			}
		}
		kr.Dominant = dominant.String()
		rep.Kinds[p.kindName(kind)] = kr
	}
	for i, v := range global {
		rep.TotalPS += v
		if v != 0 {
			rep.ComponentsPS[Component(i).String()] = v
		}
	}
	if rep.TotalPS > 0 {
		for i, v := range global {
			if v != 0 {
				rep.Shares[Component(i).String()] = float64(v) / float64(rep.TotalPS)
			}
		}
	}
	return rep
}

// Shares returns the global component shares (fractions of total
// attributed virtual time) across all completed requests. Post-run
// measurement code (e.g. benchmark tables) is the intended caller.
func (p *Profiler) Shares() map[string]float64 {
	var global [numComponents]int64
	var total int64
	for _, agg := range p.kinds {
		for i, v := range agg.comp {
			global[i] += v
			total += v
		}
	}
	out := make(map[string]float64, numComponents)
	for i, v := range global {
		if total > 0 {
			out[Component(i).String()] = float64(v) / float64(total)
		} else {
			out[Component(i).String()] = 0
		}
	}
	return out
}

// WriteJSON writes the indented stable-JSON attribution report.
func (p *Profiler) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(p.Report(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFolded writes folded-stack flamegraph lines in the form
//
//	component;structure;kind <virtual time in ps>
//
// loadable by speedscope or FlameGraph's flamegraph.pl. Lines are
// sorted lexicographically so output is deterministic.
func (p *Profiler) WriteFolded(w io.Writer) error {
	structure := p.opt.Structure
	if structure == "" {
		structure = "sim"
	}
	lines := make([]string, 0, len(p.kinds)*numComponents)
	for kind, agg := range p.kinds {
		name := p.kindName(kind)
		for i, v := range agg.comp {
			if v > 0 {
				lines = append(lines,
					fmt.Sprintf("%s;%s;%s %d", Component(i).String(), structure, name, v))
			}
		}
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := io.WriteString(w, ln+"\n"); err != nil {
			return err
		}
	}
	return nil
}
