package prof_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"testing"

	"pimds/internal/cds/seqlist"
	"pimds/internal/core/pimhash"
	"pimds/internal/core/pimlist"
	"pimds/internal/core/pimqueue"
	"pimds/internal/core/pimskip"
	"pimds/internal/core/pimstack"
	"pimds/internal/harness"
	"pimds/internal/model"
	"pimds/internal/obs"
	"pimds/internal/prof"
	"pimds/internal/sim"
	"pimds/internal/stats"
)

// scenario builds one profiled simulation and runs it to completion of
// the measurement window. It returns the engine and total completed
// operations, with the profiler (possibly nil) already attached before
// any client started.
type scenario struct {
	name     string
	kindName func(int) string
	run      func(e *sim.Engine, seed int64) uint64
}

const (
	testWarmup  = 20 * sim.Microsecond
	testMeasure = 150 * sim.Microsecond
)

func scenarios() []scenario {
	return []scenario{
		{"list-naive", pimlist.KindName, func(e *sim.Engine, seed int64) uint64 {
			return runList(e, seed, false, 4)
		}},
		{"list-combining", pimlist.KindName, func(e *sim.Engine, seed int64) uint64 {
			return runList(e, seed, true, 16)
		}},
		{"skiplist", pimskip.KindName, func(e *sim.Engine, seed int64) uint64 {
			s := pimskip.New(e, 1024, 4, 23)
			s.Preload(harness.PreloadKeys(1024))
			for i := 0; i < 8; i++ {
				g := harness.NewGenerator(seed+int64(i), harness.Uniform{N: 1024}, harness.Balanced())
				s.NewClient(g.SkipStream()).Start()
			}
			snapshot := func() uint64 {
				var total uint64
				for _, p := range s.Partitions() {
					total += p.Core().Stats.Ops
				}
				return total
			}
			c, _ := sim.Measure(e, func() {}, snapshot, testWarmup, testMeasure)
			return c
		}},
		{"queue", pimqueue.KindName, func(e *sim.Engine, seed int64) uint64 {
			return runQueue(e, false)
		}},
		{"queue-blocking", pimqueue.KindName, func(e *sim.Engine, seed int64) uint64 {
			return runQueue(e, true)
		}},
		{"stack", pimstack.KindName, func(e *sim.Engine, seed int64) uint64 {
			s := pimstack.New(e, 4, 16)
			var cpus []*sim.CPU
			var clients []*pimstack.Client
			for i := 0; i < 8; i++ {
				role := pimstack.Pusher
				if i%2 == 1 {
					role = pimstack.Popper
				}
				cl := s.NewClient(role)
				clients = append(clients, cl)
				cpus = append(cpus, cl.CPU())
			}
			start := func() {
				for _, cl := range clients {
					cl.Start()
				}
			}
			c, _ := sim.Measure(e, start, sim.OpsOfCPUs(cpus), testWarmup, testMeasure)
			return c
		}},
		{"hashmap", pimhash.KindName, func(e *sim.Engine, seed int64) uint64 {
			m := pimhash.New(e, 4)
			kv := map[int64]int64{}
			for k := int64(0); k < 256; k += 2 {
				kv[k] = k
			}
			m.Preload(kv)
			var clients []*sim.Client
			for i := 0; i < 8; i++ {
				g := harness.NewGenerator(seed+int64(i), harness.Uniform{N: 256}, harness.Balanced())
				next := g.ListStream()
				clients = append(clients, m.NewClient(func(seq uint64) pimhash.Op {
					op := next(seq)
					switch op.Kind {
					case seqlist.Add:
						return pimhash.Op{Kind: pimhash.MsgPut, Key: op.Key, Val: op.Key}
					case seqlist.Remove:
						return pimhash.Op{Kind: pimhash.MsgDel, Key: op.Key}
					default:
						return pimhash.Op{Kind: pimhash.MsgGet, Key: op.Key}
					}
				}))
			}
			meter := &sim.Meter{Engine: e, Clients: clients}
			c, _ := meter.Run(testWarmup, testMeasure)
			return c
		}},
	}
}

func runList(e *sim.Engine, seed int64, combining bool, p int) uint64 {
	l := pimlist.New(e, combining)
	l.Preload(harness.PreloadKeys(128))
	var clients []*sim.Client
	for i := 0; i < p; i++ {
		g := harness.NewGenerator(seed+int64(i), harness.Uniform{N: 128}, harness.Balanced())
		clients = append(clients, l.NewClient(e, g.ListStream()))
	}
	m := &sim.Meter{Engine: e, Clients: clients}
	c, _ := m.Run(testWarmup, testMeasure)
	return c
}

func runQueue(e *sim.Engine, blocking bool) uint64 {
	q := pimqueue.New(e, 4, 16)
	q.BlockingNotify = blocking
	var cpus []*sim.CPU
	var clients []*pimqueue.Client
	for i := 0; i < 12; i++ {
		role := pimqueue.Enqueuer
		if i%2 == 1 {
			role = pimqueue.Dequeuer
		}
		cl := q.NewClient(role)
		clients = append(clients, cl)
		cpus = append(cpus, cl.CPU())
	}
	start := func() {
		for _, cl := range clients {
			cl.Start()
		}
	}
	c, _ := sim.Measure(e, start, sim.OpsOfCPUs(cpus), testWarmup, testMeasure)
	return c
}

func testConfig() sim.Config {
	return sim.ConfigFromParams(model.DefaultParams())
}

// TestBreakdownSumsExactly is the acceptance property: for every
// completed request of every structure, the per-component breakdown
// sums exactly to the request's end-to-end virtual latency.
func TestBreakdownSumsExactly(t *testing.T) {
	for _, sc := range scenarios() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				e := sim.NewEngine(testConfig())
				p := prof.New(e, prof.Options{Structure: sc.name, KindName: sc.kindName})
				checked := 0
				p.OnComplete = func(r *prof.Record) {
					var sum int64
					for _, v := range r.ComponentsPS {
						sum += v
					}
					if sum != r.LatencyPS {
						t.Fatalf("request %d (kind %s, client %d): components sum to %d ps, latency %d ps\n%+v",
							checked, r.Kind, r.Client, sum, r.LatencyPS, r.ComponentsPS)
					}
					checked++
				}
				e.SetProfiler(p)
				completed := sc.run(e, seed)
				if completed == 0 {
					t.Fatal("scenario completed no operations")
				}
				if p.Completed() == 0 {
					t.Fatal("profiler saw no completed requests")
				}
				if checked == 0 {
					t.Fatal("OnComplete never fired")
				}
			})
		}
	}
}

// TestProfilerDoesNotPerturb pins the observational contract: enabling
// the profiler changes simulated results by exactly zero.
func TestProfilerDoesNotPerturb(t *testing.T) {
	for _, sc := range scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			type outcome struct {
				completed uint64
				processed uint64
				now       sim.Time
			}
			run := func(profiled bool) outcome {
				e := sim.NewEngine(testConfig())
				if profiled {
					e.SetProfiler(prof.New(e, prof.Options{Structure: sc.name, KindName: sc.kindName}))
				}
				c := sc.run(e, 1)
				return outcome{completed: c, processed: e.Processed(), now: e.Now()}
			}
			plain, profiled := run(false), run(true)
			if plain != profiled {
				t.Fatalf("profiling perturbed the simulation:\nplain    %+v\nprofiled %+v", plain, profiled)
			}
		})
	}
}

// TestCombiningBatchesObserved asserts the profiler sees combined
// batches on the combining list: requests served in batches > 1 with
// combiner-wait time attributed.
func TestCombiningBatchesObserved(t *testing.T) {
	e := sim.NewEngine(testConfig())
	p := prof.New(e, prof.Options{Structure: "list", KindName: pimlist.KindName})
	var batched, combinerWait int
	p.OnComplete = func(r *prof.Record) {
		if r.Batch > 1 {
			batched++
		}
		if r.ComponentsPS["combiner_wait"] > 0 {
			combinerWait++
		}
	}
	e.SetProfiler(p)
	if c := runList(e, 1, true, 16); c == 0 {
		t.Fatal("no operations completed")
	}
	if batched == 0 {
		t.Error("no request was attributed to a batch > 1 on the combining list")
	}
	if combinerWait == 0 {
		t.Error("no request accrued combiner_wait time on the combining list")
	}
}

// TestEchoExactComponents pins the attribution of a fully predictable
// request: one client, one echo core that does one vault read and
// replies. Every op must attribute exactly Lpim to memory, 2·Lmessage
// to message, the two send Epsilons to service, and nothing else.
func TestEchoExactComponents(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := sim.NewEngine(cfg)
	p := prof.New(e, prof.Options{Structure: "echo"})
	var records []*prof.Record
	p.OnComplete = func(r *prof.Record) { records = append(records, r) }
	e.SetProfiler(p)

	core := e.NewPIMCore(nil)
	core.SetHandler(func(c *sim.PIMCore, m sim.Message) {
		c.Read()
		c.Send(sim.Message{To: m.From, Kind: 1, OK: true})
	})
	cl := sim.NewClient(e, func(c *sim.CPU, seq uint64) sim.Message {
		return sim.Message{To: core.ID(), Kind: 0, Key: int64(seq)}
	})
	cl.Start()
	e.RunUntil(50 * sim.Microsecond)

	if len(records) == 0 {
		t.Fatal("no requests completed")
	}
	want := map[string]int64{
		"memory":  int64(cfg.Lpim),
		"message": int64(2 * cfg.Lmessage),
	}
	if eps := int64(2 * cfg.Epsilon); eps > 0 {
		want["service"] = eps
	}
	for i, r := range records {
		if len(r.ComponentsPS) != len(want) {
			t.Fatalf("record %d: components %v, want exactly %v", i, r.ComponentsPS, want)
		}
		for k, v := range want {
			if r.ComponentsPS[k] != v {
				t.Fatalf("record %d: component %s = %d ps, want %d (all: %v)",
					i, k, r.ComponentsPS[k], v, r.ComponentsPS)
			}
		}
		if wantLat := int64(cfg.Lpim + 2*cfg.Lmessage + 2*cfg.Epsilon); r.LatencyPS != wantLat {
			t.Fatalf("record %d: latency %d ps, want %d", i, r.LatencyPS, wantLat)
		}
		if r.Batch != 1 || r.Combined {
			t.Fatalf("record %d: batch=%d combined=%v, want 1/false", i, r.Batch, r.Combined)
		}
	}
}

var foldedLine = regexp.MustCompile(`^(memory|message|atomic|queueing|combiner_wait|service);[a-z0-9_-]+;[A-Za-z0-9_]+ \d+$`)

// TestReportAndFoldedOutput smoke-tests the exports: valid JSON with
// sorted keys, well-formed folded stacks, bounded ordered top-N.
func TestReportAndFoldedOutput(t *testing.T) {
	e := sim.NewEngine(testConfig())
	p := prof.New(e, prof.Options{Structure: "list-combining", KindName: pimlist.KindName, TopN: 7})
	e.SetProfiler(p)
	runList(e, 1, true, 8)

	rep := p.Report()
	if rep.Requests == 0 || rep.TotalPS == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	var sum int64
	for _, v := range rep.ComponentsPS {
		sum += v
	}
	if sum != rep.TotalPS {
		t.Fatalf("report components sum %d != total %d", sum, rep.TotalPS)
	}
	if len(rep.Slowest) == 0 || len(rep.Slowest) > 7 {
		t.Fatalf("slowest has %d entries, want 1..7", len(rep.Slowest))
	}
	for i := 1; i < len(rep.Slowest); i++ {
		if rep.Slowest[i].LatencyPS > rep.Slowest[i-1].LatencyPS {
			t.Fatalf("slowest not sorted: %d ps after %d ps",
				rep.Slowest[i].LatencyPS, rep.Slowest[i-1].LatencyPS)
		}
	}
	var js bytes.Buffer
	if err := p.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(folded.Bytes()), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("folded output is empty")
	}
	for _, ln := range lines {
		if !foldedLine.Match(ln) {
			t.Fatalf("malformed folded line: %q", ln)
		}
	}
}

// TestSnapshotsDeterministic asserts byte-identical -metrics and
// -profile snapshots across two runs with the same seed (the pimsim
// flag contract).
func TestSnapshotsDeterministic(t *testing.T) {
	type snaps struct{ metrics, profile, folded []byte }
	capture := func(sc scenario, seed int64) snaps {
		e := sim.NewEngine(testConfig())
		reg := obs.NewRegistry()
		e.SetMetrics(reg)
		p := prof.New(e, prof.Options{Structure: sc.name, KindName: sc.kindName})
		e.SetProfiler(p)
		sc.run(e, seed)
		var m, j, f bytes.Buffer
		if err := reg.WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteFolded(&f); err != nil {
			t.Fatal(err)
		}
		return snaps{m.Bytes(), j.Bytes(), f.Bytes()}
	}
	for _, sc := range []string{"list-combining", "queue"} {
		var scen scenario
		for _, s := range scenarios() {
			if s.name == sc {
				scen = s
			}
		}
		t.Run(sc, func(t *testing.T) {
			a, b := capture(scen, 1), capture(scen, 1)
			if !bytes.Equal(a.metrics, b.metrics) {
				t.Error("metrics snapshots differ between identical seeded runs")
			}
			if !bytes.Equal(a.profile, b.profile) {
				t.Error("profile snapshots differ between identical seeded runs")
			}
			if !bytes.Equal(a.folded, b.folded) {
				t.Error("folded flamegraph output differs between identical seeded runs")
			}
		})
	}
}

// TestLatencyMatchesClientHistogram cross-checks the profiler against
// the client-side latency accounting: the profiler's per-request
// latencies, pushed into a histogram, must match the clients'.
func TestLatencyMatchesClientHistogram(t *testing.T) {
	e := sim.NewEngine(testConfig())
	p := prof.New(e, prof.Options{Structure: "list", KindName: pimlist.KindName})
	mine := stats.NewHistogram(16)
	p.OnComplete = func(r *prof.Record) { mine.Add(r.LatencyPS) }
	e.SetProfiler(p)

	l := pimlist.New(e, true)
	l.Preload(harness.PreloadKeys(128))
	agg := stats.NewHistogram(16)
	var clients []*sim.Client
	for i := 0; i < 8; i++ {
		g := harness.NewGenerator(1+int64(i), harness.Uniform{N: 128}, harness.Balanced())
		cl := l.NewClient(e, g.ListStream())
		cl.Latency = agg
		clients = append(clients, cl)
	}
	m := &sim.Meter{Engine: e, Clients: clients}
	m.Run(testWarmup, testMeasure)

	if mine.N() != agg.N() {
		t.Fatalf("profiler saw %d completions, clients recorded %d", mine.N(), agg.N())
	}
	mp50, mp95, mp99 := mine.Percentiles()
	ap50, ap95, ap99 := agg.Percentiles()
	if mp50 != ap50 || mp95 != ap95 || mp99 != ap99 {
		t.Fatalf("latency distributions differ: profiler (%d,%d,%d) vs clients (%d,%d,%d)",
			mp50, mp95, mp99, ap50, ap95, ap99)
	}
}
