package server

import (
	"strings"

	"pimds/internal/wire"
)

// Capability declares which wire operations one structure serves and
// how they route. It is the single source of truth shared by the
// reader's per-op validation, pimload's op-mix validation, and error
// messages — adding an operation means adding one table row, not
// hunting down switch statements.
type Capability struct {
	// Name is the Config.Structure string.
	Name string

	// supports, keyed and serial are bitmasks indexed by wire.OpKind.
	supports uint32
	keyed    uint32
	serial   uint32
}

// kindBit builds a mask from kinds; NumKinds ≤ 32 keeps uint32 enough
// (the compile-time shift below fails to build otherwise).
func kindBit(kinds ...wire.OpKind) uint32 {
	var _ [32 - wire.NumKinds]struct{}
	var m uint32
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Operation groups shared by the table rows.
var (
	pointSetKinds = []wire.OpKind{wire.Contains, wire.Add, wire.Remove}
	orderedKinds  = []wire.OpKind{wire.RangeScan, wire.Pred, wire.Succ, wire.PopMin, wire.PopMax}
	// globalKinds answer questions about the whole key space (smallest
	// key, nearest neighbor) that a range partition cannot answer
	// locally, so they require Shards == 1. RangeScan is not among them:
	// its Hi is clamped to the owning shard's bound and the pagination
	// cursor walks clients across shards.
	globalKinds = []wire.OpKind{wire.Pred, wire.Succ, wire.PopMin, wire.PopMax}
)

// capabilities is the structure table. keyed kinds are validated
// against [0, KeySpace) and routed to the key's range partition;
// serial kinds additionally require a single shard.
var capabilities = []Capability{
	{
		Name:     StructList,
		supports: kindBit(pointSetKinds...) | kindBit(orderedKinds...),
		keyed:    kindBit(pointSetKinds...) | kindBit(wire.RangeScan, wire.Pred, wire.Succ),
		serial:   kindBit(globalKinds...),
	},
	{
		Name:     StructSkip,
		supports: kindBit(pointSetKinds...) | kindBit(orderedKinds...),
		keyed:    kindBit(pointSetKinds...) | kindBit(wire.RangeScan, wire.Pred, wire.Succ),
		serial:   kindBit(globalKinds...),
	},
	{
		// Hashing destroys key order, so the hash structure serves only
		// the point ops.
		Name:     StructHash,
		supports: kindBit(pointSetKinds...),
		keyed:    kindBit(pointSetKinds...),
	},
	{
		Name:     StructQueue,
		supports: kindBit(wire.Enqueue, wire.Dequeue),
	},
	{
		Name:     StructStack,
		supports: kindBit(wire.Push, wire.Pop),
	},
}

// LookupCapability returns the capability row for a structure name.
func LookupCapability(structure string) (Capability, bool) {
	for _, c := range capabilities {
		if c.Name == structure {
			return c, true
		}
	}
	return Capability{}, false
}

// Structures lists the known structure names in table order.
func Structures() []string {
	names := make([]string, len(capabilities))
	for i, c := range capabilities {
		names[i] = c.Name
	}
	return names
}

// Supports reports whether the structure serves kind k.
//
//pimvet:allocfree //pimvet:nonblocking
func (c Capability) Supports(k wire.OpKind) bool {
	return k.Valid() && c.supports&(1<<k) != 0
}

// Keyed reports whether kind k is validated against the key space and
// routed to the key's range partition.
//
//pimvet:allocfree //pimvet:nonblocking
func (c Capability) Keyed(k wire.OpKind) bool {
	return k.Valid() && c.keyed&(1<<k) != 0
}

// SerialOnly reports whether kind k answers a global question and so
// requires a single-shard server.
//
//pimvet:allocfree //pimvet:nonblocking
func (c Capability) SerialOnly(k wire.OpKind) bool {
	return k.Valid() && c.serial&(1<<k) != 0
}

// Kinds returns the supported kinds in ascending order.
func (c Capability) Kinds() []wire.OpKind {
	kinds := make([]wire.OpKind, 0, wire.NumKinds)
	for k := wire.OpKind(0); k.Valid(); k++ {
		if c.Supports(k) {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// KindNames renders the supported kinds for error messages, e.g.
// "contains|add|remove|scan|pred|succ|popmin|popmax".
func (c Capability) KindNames() string {
	var b strings.Builder
	for i, k := range c.Kinds() {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(k.String())
	}
	return b.String()
}
