package server

import (
	"net/http"

	"pimds/internal/obs"
)

// MetricsHandler serves the registry's JSON snapshot — the same
// document pimsim -metrics writes — at any path. cmd/pimserve mounts
// it on the -metrics listener; tests hit it in-process.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
