package server_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pimds/internal/obs"
	"pimds/internal/prof"
	"pimds/internal/server"
	"pimds/internal/wire"
)

// sendTraced sends one traced request frame carrying tc.
func (c *client) sendTraced(t *testing.T, tc wire.TraceContext, ops ...wire.Op) {
	t.Helper()
	buf, err := wire.AppendRequestTraced(nil, ops, tc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.bw.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanComponentsSumToE2E is the acceptance test for the span
// recorder's telescoping stamps: for every sampled request, the six
// components must sum EXACTLY to the measured end-to-end latency — no
// rounding slop, no unattributed residue.
func TestSpanComponentsSumToE2E(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 4, KeySpace: 1 << 10,
		TraceSample: 1, Reg: reg,
	})
	const n = 100
	c := dial(t, addr)
	ops := make([]wire.Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, wire.Op{ID: uint64(i + 1), Kind: wire.Add, Key: int64(i * 7 % 1024)})
	}
	// Several frames so spans cross shard and flush boundaries.
	for i := 0; i < n; i += 10 {
		c.send(t, ops[i:i+10]...)
		c.recv(t, 10)
	}
	c.nc.Close()   // let the server close without waiting out the FIN grace
	srv.Shutdown() // quiesce so every span has finished

	spans := srv.TraceSpans()
	if len(spans) != n {
		t.Fatalf("got %d spans, want %d (sample rate 1 must trace everything)", len(spans), n)
	}
	names := prof.ServerComponents()
	for _, sp := range spans {
		if sp.E2ENS <= 0 {
			t.Fatalf("span %+v has non-positive e2e", sp)
		}
		var sum int64
		for _, name := range names {
			v, ok := sp.ComponentsNS[name]
			if !ok {
				t.Fatalf("span missing component %q: %+v", name, sp)
			}
			if v < 0 {
				t.Fatalf("negative component %s=%d: %+v", name, v, sp)
			}
			sum += v
		}
		if sum != sp.E2ENS {
			t.Fatalf("components sum %d ≠ e2e %d: %+v", sum, sp.E2ENS, sp)
		}
		if len(sp.ComponentsNS) != len(names) {
			t.Fatalf("span has %d components, want %d: %+v", len(sp.ComponentsNS), len(names), sp)
		}
	}
	if got := reg.Snapshot().Counters["server/trace/sampled"]; got != n {
		t.Errorf("sampled counter %d, want %d", got, n)
	}
}

// TestClientOriginatedTrace: with local sampling off, only frames the
// client marks Sampled produce spans, and the client's trace ID rides
// through to the span record.
func TestClientOriginatedTrace(t *testing.T) {
	srv, addr := startServer(t, server.Config{Structure: server.StructHash, KeySpace: 1 << 10})
	c := dial(t, addr)

	c.send(t, wire.Op{ID: 1, Kind: wire.Add, Key: 1}, wire.Op{ID: 2, Kind: wire.Add, Key: 2})
	c.recv(t, 2)
	c.sendTraced(t, wire.TraceContext{TraceID: 0xdeadbeef, Sampled: true},
		wire.Op{ID: 3, Kind: wire.Contains, Key: 1})
	c.recv(t, 1)
	// Trace context present but not sampled: no span.
	c.sendTraced(t, wire.TraceContext{TraceID: 0x77, Sampled: false},
		wire.Op{ID: 4, Kind: wire.Contains, Key: 2})
	c.recv(t, 1)
	c.nc.Close()
	srv.Shutdown()

	spans := srv.TraceSpans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want exactly the client-sampled op: %+v", len(spans), spans)
	}
	sp := spans[0]
	if sp.TraceID != "0x00000000deadbeef" || sp.OpID != 3 || sp.Kind != "contains" {
		t.Fatalf("span identity wrong: %+v", sp)
	}
}

// TestSlowRequestLog: with a 1ns threshold every sampled request
// qualifies, so the slow log and /slow endpoint must surface them.
func TestSlowRequestLog(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructList, KeySpace: 1 << 10,
		TraceSample: 1, SlowThreshold: time.Nanosecond, Reg: reg,
	})
	c := dial(t, addr)
	for i := int64(1); i <= 3; i++ {
		c.do(t, wire.Add, i)
	}

	ts := httptest.NewServer(srv.OpsHandler())
	defer ts.Close()
	c.nc.Close()
	srv.Shutdown()

	slow := srv.SlowRequests()
	if len(slow) != 3 {
		t.Fatalf("slow log has %d entries, want 3: %+v", len(slow), slow)
	}
	if got := reg.Snapshot().Counters["server/trace/slow"]; got != 3 {
		t.Errorf("slow counter %d, want 3", got)
	}

	resp, err := ts.Client().Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		ThresholdNS int64               `json:"threshold_ns"`
		Spans       []server.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.ThresholdNS != 1 || len(doc.Spans) != 3 {
		t.Fatalf("/slow returned threshold=%d spans=%d", doc.ThresholdNS, len(doc.Spans))
	}
}

// TestWriteChromeTraceValid: the exported trace must be a valid Chrome
// trace-event JSON array whose request slices are tiled by exactly six
// component slices each.
func TestWriteChromeTraceValid(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 2, KeySpace: 1 << 10, TraceSample: 1,
	})
	c := dial(t, addr)
	for i := int64(0); i < 8; i++ {
		c.do(t, wire.Add, i*100)
	}
	c.nc.Close()
	srv.Shutdown()

	var buf strings.Builder
	if err := srv.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var reqs, comps, metas int
	for _, ev := range events {
		switch ev["cat"] {
		case "request":
			reqs++
			if ev["ph"] != "X" || ev["args"].(map[string]interface{})["trace_id"] == "" {
				t.Fatalf("malformed request slice: %+v", ev)
			}
		case "component":
			comps++
		default:
			if ev["ph"] == "M" {
				metas++
			}
		}
	}
	if reqs != 8 || comps != 8*prof.NumServerComponents || metas == 0 {
		t.Fatalf("got %d request slices, %d component slices, %d metadata events; want 8/%d/>0",
			reqs, comps, metas, 8*prof.NumServerComponents)
	}
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+$`)

// TestOpsEndpoint exercises the full introspection surface over HTTP:
// Prometheus text at /metrics (with per-shard series folded into
// labelled families), JSON at /metrics.json, pprof, and /trace.
func TestOpsEndpoint(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 2, KeySpace: 1 << 10, TraceSample: 1,
		Reg: obs.NewRegistry(),
	})
	c := dial(t, addr)
	for i := int64(0); i < 6; i++ {
		c.do(t, wire.Add, i*128)
	}
	ts := httptest.NewServer(srv.OpsHandler())
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	prom := get("/metrics")
	if strings.TrimSpace(prom) == "" {
		t.Fatal("/metrics returned nothing")
	}
	for _, line := range strings.Split(strings.TrimSpace(prom), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable Prometheus line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE server_ops_total counter",
		"server_ops_total 6",
		`server_shard_combines{shard="0"}`,
		`server_shard_combines{shard="1"}`,
		"# TYPE server_trace_e2e_ns summary",
		`server_trace_e2e_ns{quantile="0.99"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}

	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counters["server/ops/total"] != 6 {
		t.Errorf("JSON snapshot ops/total = %d, want 6", snap.Counters["server/ops/total"])
	}

	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(get("/trace")), &events); err != nil {
		t.Fatalf("/trace not valid Chrome JSON: %v", err)
	}
	if strings.TrimSpace(get("/debug/pprof/cmdline")) == "" {
		t.Error("pprof cmdline empty")
	}
	_ = srv
}

// TestMetricsScrapeDuringDrain races live scrapes (both the JSON
// snapshot and the Prometheus text export) against traffic and a
// graceful shutdown; under -race this pins the consistent-snapshot
// guarantee for concurrent scrape + drain.
func TestMetricsScrapeDuringDrain(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructHash, Shards: 4, KeySpace: 1 << 12,
		TraceSample: 0.5, Reg: reg,
	})
	ops := srv.OpsHandler()
	jsonH := server.MetricsHandler(reg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			// Raw client (no test helpers: t.Fatal is main-goroutine
			// only); errors here just mean the drain won the race.
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer nc.Close()
			br := bufio.NewReader(nc)
			var out, in []byte
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				out, _ = wire.AppendRequest(out[:0], []wire.Op{{ID: uint64(i + 1), Kind: wire.Add, Key: (id*1000 + i) % 4096}})
				if _, err := nc.Write(out); err != nil {
					return
				}
				if in, err = wire.ReadFrame(br, in[:0]); err != nil {
					return // drain closed the conn; fine
				}
			}
		}(int64(w))
	}
	// Scrapers hammer both endpoints before, during and after Shutdown.
	scrape := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			rec := httptest.NewRecorder()
			ops.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != 200 {
				t.Errorf("scrape %d: status %d", i, rec.Code)
			}
			rec = httptest.NewRecorder()
			jsonH.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
			var snap obs.Snapshot
			if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
				t.Errorf("scrape %d: bad JSON: %v", i, err)
			}
			if i == 50 {
				close(scrape) // mid-scrape: trigger the drain
			}
		}
	}()
	<-scrape
	srv.Shutdown()
	close(stop)
	wg.Wait()

	// Post-drain the snapshot is quiescent and internally consistent.
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["server/trace/e2e_ns"]; ok && h.Count > 0 {
		if h.P50 > h.P99 || h.P99 > h.Max {
			t.Errorf("quiescent histogram inconsistent: %+v", h)
		}
	}
}

// TestSamplingRateAndOverhead sends single-op frames at a 1% sample
// rate: the sampled count must be statistically plausible, and (gated
// on SERVE_E2E_FLOOR, set by CI on dedicated runners) throughput must
// hold the 100k ops/s floor with sampling enabled.
func TestSamplingRateAndOverhead(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 4, KeySpace: 1 << 12,
		TraceSample: 0.01, Reg: reg,
	})
	const frames = 4000
	c := dial(t, addr)
	t0 := time.Now()
	const window = 64 // cap on in-flight ops
	// The server batches results into response frames as it pleases, so
	// count results per frame rather than assuming one frame per op.
	var payload []byte
	var results []wire.Result
	outstanding := 0
	drain := func(floor int) {
		var err error
		for outstanding > floor {
			if payload, err = wire.ReadFrame(c.br, payload[:0]); err != nil {
				t.Fatal(err)
			}
			if results, err = wire.DecodeResponse(payload, results[:0]); err != nil {
				t.Fatal(err)
			}
			outstanding -= len(results)
		}
	}
	for i := 0; i < frames; i++ {
		c.send(t, wire.Op{ID: uint64(i + 1), Kind: wire.Add, Key: int64(i % 4096)})
		outstanding++
		drain(window)
	}
	drain(0)
	elapsed := time.Since(t0)
	c.nc.Close()
	srv.Shutdown()

	sampled := reg.Snapshot().Counters["server/trace/sampled"]
	// Binomial(4000, 0.01): mean 40, σ≈6.3. [5, 200] is > 5σ slack on
	// both sides; outside it the sampler is broken, not unlucky.
	if sampled < 5 || sampled > 200 {
		t.Errorf("sampled %d of %d frames at p=0.01; sampler is off", sampled, frames)
	}
	for _, sp := range srv.TraceSpans() {
		var sum int64
		for _, v := range sp.ComponentsNS {
			sum += v
		}
		if sum != sp.E2ENS {
			t.Fatalf("sampled span breakdown broken: %+v", sp)
		}
	}
	if os.Getenv("SERVE_E2E_FLOOR") != "" {
		opsPerSec := float64(frames) / elapsed.Seconds()
		if opsPerSec < 100_000 {
			t.Errorf("throughput %.0f ops/s under the 100k floor with 1%% sampling", opsPerSec)
		}
	}
}
