package server

import (
	"fmt"
	"sort"

	"pimds/internal/cds/seqhash"
	"pimds/internal/cds/seqlist"
	"pimds/internal/cds/seqskip"
	"pimds/internal/wire"
)

// A backend is one shard's sequential structure. It is only ever
// touched by that shard's combiner goroutine, so — exactly as in flat
// combining — it needs no synchronization of its own: the dispatch
// loop is the combiner lock.
//
// ApplyBatch executes ops[i] and writes its outcome to out[i]; kinds
// have already been validated against the structure's capability row by
// the reader, so a backend only sees kinds it supports. Range scans
// append their keys to arena and slice out[i].Values from the returned
// (possibly grown) arena — every Values field is valid only until the
// next pass reuses the arena, so the combiner copies them out before
// delivery.
//
// ApplyBatch runs inside the combining window (Server.applyBatch, which
// is //pimvet:nonblocking), so every implementation must be marked
// //pimvet:nonblocking — pimvet cannot see through the interface call,
// so the contract is enforced on each implementation instead. The
// list/queue/stack backends are additionally //pimvet:allocfree; skip
// and hash structures allocate on insert by nature (towers, chain
// entries) and carry only the nonblocking mark.
type backend interface {
	// ApplyBatch serves one combiner pass. len(out) == len(ops).
	ApplyBatch(ops []wire.Op, out []wire.Result, arena []int64) []int64
	// Len returns the element count (used at quiescence by tests and
	// the metrics collector).
	Len() int

	SnapshotterBackend
}

// SnapshotterBackend is the serialization contract snapshots need from
// every structure. AppendState appends a canonical dump — a fixed,
// implementation-independent order (sets ascending, queue front→back,
// stack bottom→top) so equal states always dump byte-identically, the
// property the replay-determinism tests pin. RestoreState rebuilds the
// structure from such a dump; both run outside the combining window
// (snapshot dumps in combiner context between batches, restores before
// the server accepts), so they may allocate freely.
type SnapshotterBackend interface {
	AppendState(dst []int64) []int64
	RestoreState(vals []int64)
}

// restoreState rebuilds a backend from its canonical dump by replaying
// synthetic unconditional-insert batches through the backend's own
// ApplyBatch — the same code path recovery replays log records
// through, so a restored structure is bit-for-bit what replaying the
// inserts would build (skip towers included: they draw from the
// seeded per-shard generator in insertion order either way).
func restoreState(be backend, kind wire.OpKind, vals []int64) {
	const chunk = 512
	ops := make([]wire.Op, 0, chunk)
	out := make([]wire.Result, chunk)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		ops = ops[:0]
		for _, v := range vals[:n] {
			ops = append(ops, wire.Op{Kind: kind, Key: v})
		}
		be.ApplyBatch(ops, out[:n], nil)
		vals = vals[n:]
	}
}

// Structure names accepted by Config.Structure.
const (
	StructList  = "list"
	StructSkip  = "skip"
	StructHash  = "hash"
	StructQueue = "queue"
	StructStack = "stack"
)

// newBackend builds shard i of n for the named structure.
func newBackend(structure string, shard int, seed int64) (backend, error) {
	switch structure {
	case StructList:
		return &listBackend{
			l:   seqlist.New(),
			ops: make([]seqlist.Op, 0, wire.MaxOpsPerFrame),
			oks: make([]bool, wire.MaxOpsPerFrame),
			res: make([]seqlist.OpResult, wire.MaxOpsPerFrame),
		}, nil
	case StructSkip:
		return &skipBackend{
			l:      seqskip.New(uint64(seed) + uint64(shard)*0x9e3779b97f4a7c15),
			starts: make([]int, wire.MaxOpsPerFrame),
			counts: make([]int, wire.MaxOpsPerFrame),
		}, nil
	case StructHash:
		return &hashBackend{t: seqhash.New(1 << 10)}, nil
	case StructQueue:
		return &queueBackend{}, nil
	case StructStack:
		return &stackBackend{}, nil
	}
	return nil, fmt.Errorf("server: unknown structure %q (want %s|%s|%s|%s|%s)",
		structure, StructList, StructSkip, StructHash, StructQueue, StructStack)
}

// listKinds maps wire kinds onto seqlist kinds; the numeric values
// diverge (the wire enum interleaves queue/stack kinds), so the
// translation is explicit.
var listKinds = [wire.NumKinds]seqlist.OpKind{
	wire.Contains:  seqlist.Contains,
	wire.Add:       seqlist.Add,
	wire.Remove:    seqlist.Remove,
	wire.RangeScan: seqlist.RangeScan,
	wire.Pred:      seqlist.Pred,
	wire.Succ:      seqlist.Succ,
	wire.PopMin:    seqlist.PopMin,
	wire.PopMax:    seqlist.PopMax,
}

// listBackend serves set ops on a sorted linked list, using the
// paper's combining optimization: the whole batch is sorted and served
// in one traversal. A batch of point ops takes the original
// ApplyBatchInto path; a batch containing ordered ops takes
// ApplyOrderedBatchInto, which shares a single finger walk between
// point ops, neighbor queries and range scans. ops/oks/res are
// preallocated at the frame cap so translation in and out of wire types
// allocates nothing.
type listBackend struct {
	l   *seqlist.List
	ops []seqlist.Op       // scratch
	oks []bool             // scratch (point-only path)
	res []seqlist.OpResult // scratch (ordered path)
}

//pimvet:allocfree //pimvet:nonblocking
//pimvet:window
func (b *listBackend) ApplyBatch(ops []wire.Op, out []wire.Result, arena []int64) []int64 {
	b.ops = b.ops[:0]
	ordered := false
	for _, op := range ops {
		b.ops = append(b.ops, seqlist.Op{
			Kind: listKinds[op.Kind], Key: op.Key, Hi: op.Hi, Limit: int(op.Limit),
		})
		if op.Kind.Ordered() {
			ordered = true
		}
	}
	if !ordered {
		oks := b.oks[:len(ops)]
		b.l.ApplyBatchInto(b.ops, oks)
		for i, op := range ops {
			out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK, OK: oks[i]}
		}
		return arena
	}
	res := b.res[:len(ops)]
	arena = b.l.ApplyOrderedBatchInto(b.ops, res, arena)
	for i, op := range ops {
		r := res[i]
		out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK, OK: r.OK, Value: r.Value}
		if r.Scan {
			// Slice after the whole batch ran: the arena cannot grow
			// (and move) under an already-taken segment anymore.
			out[i].Values = arena[r.Start : r.Start+r.N : r.Start+r.N]
		}
	}
	return arena
}

func (b *listBackend) Len() int { return b.l.Len() }

func (b *listBackend) AppendState(dst []int64) []int64 { return append(dst, b.l.Keys()...) }
func (b *listBackend) RestoreState(vals []int64)       { restoreState(b, wire.Add, vals) }

// skipBackend serves set ops on a sequential skip-list, applying the
// batch in publication order (any serialization of a concurrent batch
// is linearizable). Adds allocate towers, so this backend is
// nonblocking but not allocfree. starts/counts park each scan's arena
// segment until the batch is done and the arena has stopped moving.
type skipBackend struct {
	l      *seqskip.List
	starts []int // scratch: scan arena offsets by op index
	counts []int // scratch: scan cardinalities by op index
}

//pimvet:nonblocking
//pimvet:window
func (b *skipBackend) ApplyBatch(ops []wire.Op, out []wire.Result, arena []int64) []int64 {
	scans := false
	for i, op := range ops {
		r := wire.Result{ID: op.ID, Status: wire.StatusOK}
		switch op.Kind {
		case wire.Contains:
			r.OK = b.l.ContainsKey(op.Key)
		case wire.Add:
			r.OK = b.l.AddKey(op.Key)
		case wire.Remove:
			r.OK = b.l.RemoveKey(op.Key)
		case wire.Pred:
			r.Value, r.OK = b.l.PredKey(op.Key)
		case wire.Succ:
			r.Value, r.OK = b.l.SuccKey(op.Key)
		case wire.PopMin:
			r.Value, r.OK = b.l.PopMinKey()
		case wire.PopMax:
			r.Value, r.OK = b.l.PopMaxKey()
		case wire.RangeScan:
			b.starts[i] = len(arena)
			arena, b.counts[i], r.Value = b.l.RangeScanInto(op.Key, op.Hi, int(op.Limit), arena)
			r.OK = true
			scans = true
		}
		out[i] = r
	}
	if scans {
		for i, op := range ops {
			if op.Kind == wire.RangeScan {
				out[i].Values = arena[b.starts[i] : b.starts[i]+b.counts[i] : b.starts[i]+b.counts[i]]
			}
		}
	}
	return arena
}

func (b *skipBackend) Len() int { return b.l.Len() }

func (b *skipBackend) AppendState(dst []int64) []int64 { return append(dst, b.l.Keys()...) }
func (b *skipBackend) RestoreState(vals []int64)       { restoreState(b, wire.Add, vals) }

// hashBackend serves set ops on a chained hash table (keys only; the
// stored value mirrors the key). Puts allocate chain entries, so this
// backend is nonblocking but not allocfree.
type hashBackend struct {
	t *seqhash.Table
}

//pimvet:nonblocking
//pimvet:window
func (b *hashBackend) ApplyBatch(ops []wire.Op, out []wire.Result, arena []int64) []int64 {
	for i, op := range ops {
		var ok bool
		switch op.Kind {
		case wire.Contains:
			_, ok = b.t.Get(op.Key)
		case wire.Add:
			ok = b.t.Put(op.Key, op.Key)
		case wire.Remove:
			ok = b.t.Delete(op.Key)
		}
		out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK, OK: ok}
	}
	return arena
}

func (b *hashBackend) Len() int { return b.t.Len() }

// AppendState sorts the dump: the table iterates in bucket order,
// which depends on table geometry, not on the abstract state.
func (b *hashBackend) AppendState(dst []int64) []int64 {
	start := len(dst)
	dst = append(dst, b.t.Keys()...)
	keys := dst[start:]
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return dst
}

func (b *hashBackend) RestoreState(vals []int64) { restoreState(b, wire.Add, vals) }

// queueBackend is a FIFO queue over a growable ring buffer. Enqueue
// always succeeds (OK=true); Dequeue reports OK=false on empty.
type queueBackend struct {
	buf        []int64
	head, size int
}

//pimvet:allocfree //pimvet:nonblocking
//pimvet:window
func (b *queueBackend) ApplyBatch(ops []wire.Op, out []wire.Result, arena []int64) []int64 {
	for i, op := range ops {
		switch op.Kind {
		case wire.Enqueue:
			b.push(op.Key)
			out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK, OK: true}
		case wire.Dequeue:
			v, ok := b.pop()
			out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK, OK: ok, Value: v}
		}
	}
	return arena
}

func (b *queueBackend) push(v int64) {
	if b.size == len(b.buf) {
		grown := make([]int64, 2*len(b.buf)+1) //pimvet:allow allocfree: amortized ring doubling to the high-water depth; steady state reuses
		for i := 0; i < b.size; i++ {
			grown[i] = b.buf[(b.head+i)%len(b.buf)]
		}
		b.buf, b.head = grown, 0
	}
	b.buf[(b.head+b.size)%len(b.buf)] = v
	b.size++
}

func (b *queueBackend) pop() (int64, bool) {
	if b.size == 0 {
		return 0, false
	}
	v := b.buf[b.head]
	b.head = (b.head + 1) % len(b.buf)
	b.size--
	return v, true
}

func (b *queueBackend) Len() int { return b.size }

// AppendState dumps front→back, so restoring by Enqueue preserves FIFO
// order.
func (b *queueBackend) AppendState(dst []int64) []int64 {
	for i := 0; i < b.size; i++ {
		dst = append(dst, b.buf[(b.head+i)%len(b.buf)])
	}
	return dst
}

func (b *queueBackend) RestoreState(vals []int64) { restoreState(b, wire.Enqueue, vals) }

// stackBackend is a LIFO stack over a slice. Pop reports OK=false on
// empty. Pushes append into receiver storage: amortized growth to the
// high-water depth, then allocation-free.
type stackBackend struct {
	vals []int64
}

//pimvet:allocfree //pimvet:nonblocking
//pimvet:window
func (b *stackBackend) ApplyBatch(ops []wire.Op, out []wire.Result, arena []int64) []int64 {
	for i, op := range ops {
		switch op.Kind {
		case wire.Push:
			b.vals = append(b.vals, op.Key)
			out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK, OK: true}
		case wire.Pop:
			if n := len(b.vals); n > 0 {
				out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK, OK: true, Value: b.vals[n-1]}
				b.vals = b.vals[:n-1]
			} else {
				out[i] = wire.Result{ID: op.ID, Status: wire.StatusOK}
			}
		}
	}
	return arena
}

func (b *stackBackend) Len() int { return len(b.vals) }

// AppendState dumps bottom→top, so restoring by Push rebuilds the same
// stack.
func (b *stackBackend) AppendState(dst []int64) []int64 { return append(dst, b.vals...) }
func (b *stackBackend) RestoreState(vals []int64)       { restoreState(b, wire.Push, vals) }
