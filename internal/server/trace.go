package server

// Wall-clock request tracing. A sampled request carries a *span through
// the server pipeline; each stage stamps the server clock as the
// request passes, and the writer finishes the span when the response
// frame reaches the socket. The seven stamps telescope — each component
// is the difference of adjacent stamps — so the six components sum
// EXACTLY to the measured end-to-end latency by construction (asserted
// in tests), with no residual "unattributed" bucket. The component
// taxonomy is declared once in internal/prof next to the virtual-time
// profiler's, so the two breakdowns stay in lockstep.
//
// Sampling is decided per frame in the reader goroutine with a
// per-connection xorshift64 generator (no shared state, no locks), or
// forced by the client via a traced frame's Sampled bit. Unsampled
// requests touch no tracing state at all beyond one nil check per
// stage; only the sampled path allocates (pimvet's obssafety analyzer
// enforces that discipline in this package's hot loops).

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pimds/internal/obs"
	"pimds/internal/prof"
	"pimds/internal/wire"
)

// span is one sampled request's timeline: seven clock stamps (ns since
// the server epoch) bracketing the six pipeline stages. It is written
// by three goroutines in strict succession — reader (start, pub),
// combiner (pick, applyStart, applied), writer (enc, flush) — with the
// shard channel and the connection's out channel as the
// happens-before edges between them, so no stamp needs atomics.
type span struct {
	traceID uint64
	opID    uint64
	kind    wire.OpKind
	conn    int
	shard   int

	start      int64 // reader: frame read complete, decode begins
	pub        int64 // reader: op published to the shard queue
	pick       int64 // combiner: op received from the queue
	applyStart int64 // combiner: batch apply begins
	applied    int64 // combiner: batch apply done
	enc        int64 // writer: response frame encoded
	flush      int64 // writer: response flushed to the socket
}

// SpanRecord is one finished span as exported by the ops endpoint and
// the Chrome trace: the identity of the request plus its six-component
// latency breakdown. ComponentsNS is keyed by prof.ServerComponent
// names and always sums exactly to E2ENS.
type SpanRecord struct {
	TraceID      string           `json:"trace_id"` // 0x-prefixed hex
	OpID         uint64           `json:"op_id"`
	Kind         string           `json:"kind"`
	Conn         int              `json:"conn"`
	Shard        int              `json:"shard"`
	StartNS      int64            `json:"start_ns"` // ns since server epoch
	E2ENS        int64            `json:"e2e_ns"`
	ComponentsNS map[string]int64 `json:"components_ns"`
}

// components returns the telescoped breakdown in taxonomy order. The
// array return lives in the caller's frame: subtraction only, no heap.
//
//pimvet:allocfree //pimvet:nonblocking
func (sp *span) components() [prof.NumServerComponents]int64 {
	return [prof.NumServerComponents]int64{
		prof.SrvReadDecode:  sp.pub - sp.start,
		prof.SrvQueueWait:   sp.pick - sp.pub,
		prof.SrvCombineWait: sp.applyStart - sp.pick,
		prof.SrvApply:       sp.applied - sp.applyStart,
		prof.SrvRespEncode:  sp.enc - sp.applied,
		prof.SrvWriteFlush:  sp.flush - sp.enc,
	}
}

func (sp *span) record() SpanRecord {
	comps := sp.components()
	m := make(map[string]int64, prof.NumServerComponents)
	for i, v := range comps {
		m[prof.ServerComponent(i).String()] = v
	}
	return SpanRecord{
		TraceID:      fmt.Sprintf("0x%016x", sp.traceID),
		OpID:         sp.opID,
		Kind:         sp.kind.String(),
		Conn:         sp.conn,
		Shard:        sp.shard,
		StartNS:      sp.start,
		E2ENS:        sp.flush - sp.start,
		ComponentsNS: m,
	}
}

// spanRing is a fixed-capacity ring of finished spans; one per shard so
// combiner-adjacent traffic never contends across shards. Push is
// O(1) under a short critical section.
type spanRing struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	full bool
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]SpanRecord, capacity)}
}

func (r *spanRing) push(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// snapshot returns the ring's contents, oldest first.
func (r *spanRing) snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// tracer owns the server's span machinery: per-shard rings, the
// slow-request log, the sampling threshold, and the per-component
// latency histograms.
type tracer struct {
	sampleThreshold uint64 // sample when rng() < threshold
	slowThreshold   int64  // ns; 0 disables the slow log
	rings           []*spanRing
	epoch           time.Time // server epoch, for wall-clock trace export

	slowMu   sync.Mutex
	slow     []SpanRecord  // bounded at slowLogCap, oldest evicted
	traceSeq atomic.Uint64 // server-generated trace IDs

	sampled   *obs.Counter
	slowCount *obs.Counter
	dropped   *obs.Counter // spans lost to failed connections
	e2e       *obs.Histogram
	comp      [prof.NumServerComponents]*obs.Histogram
}

// slowLogCap bounds the slow-request log; beyond it the oldest entry
// is evicted, keeping the most recent offenders.
const slowLogCap = 128

func newTracer(cfg Config, epoch time.Time) *tracer {
	tr := &tracer{
		slowThreshold: cfg.SlowThreshold.Nanoseconds(),
		epoch:         epoch,
		sampled:       cfg.Reg.Counter("server/trace/sampled"),
		slowCount:     cfg.Reg.Counter("server/trace/slow"),
		dropped:       cfg.Reg.Counter("server/trace/dropped"),
		e2e:           cfg.Reg.Histogram("server/trace/e2e_ns"),
	}
	if cfg.TraceSample > 0 {
		p := cfg.TraceSample
		if p >= 1 {
			tr.sampleThreshold = ^uint64(0)
		} else {
			tr.sampleThreshold = uint64(p * float64(1<<63) * 2)
		}
	}
	for i := range tr.comp {
		name := prof.ServerComponent(i).String()
		tr.comp[i] = cfg.Reg.Histogram("server/trace/" + name + "_ns")
	}
	ringCap := cfg.TraceRing
	if ringCap <= 0 {
		ringCap = 256
	}
	for i := 0; i < cfg.Shards; i++ {
		tr.rings = append(tr.rings, newSpanRing(ringCap))
	}
	return tr
}

// nextTraceID mints a server-originated trace ID for locally sampled
// requests. IDs are nonzero (zero is the wire's "no trace" value) and
// unique within the process.
func (tr *tracer) nextTraceID() uint64 {
	return tr.traceSeq.Add(1) | 1<<63
}

// finish closes a span at response flush: observe its breakdown into
// the histograms, push it onto its shard's ring, and log it if slow.
// Called only from the connection's writer goroutine.
func (tr *tracer) finish(sp *span) {
	rec := sp.record()
	tr.e2e.Observe(rec.E2ENS)
	for i, v := range sp.components() {
		tr.comp[i].Observe(v)
	}
	tr.rings[sp.shard].push(rec)
	if tr.slowThreshold > 0 && rec.E2ENS >= tr.slowThreshold {
		tr.slowCount.Inc()
		tr.slowMu.Lock()
		if len(tr.slow) == slowLogCap {
			copy(tr.slow, tr.slow[1:])
			tr.slow = tr.slow[:slowLogCap-1]
		}
		tr.slow = append(tr.slow, rec)
		tr.slowMu.Unlock()
	}
}

// drop accounts for spans whose responses never reached the client
// (failed connection); their timelines are incomplete and unusable.
func (tr *tracer) drop(n int) {
	if n > 0 {
		tr.dropped.Add(uint64(n))
	}
}

// TraceSpans returns the finished spans currently held in the per-shard
// rings, ordered by start time. The rings keep the most recent
// Config.TraceRing spans per shard.
func (s *Server) TraceSpans() []SpanRecord {
	var out []SpanRecord
	for _, r := range s.tr.rings {
		out = append(out, r.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// SlowRequests returns the slow-request log: the most recent spans
// (up to 128) whose end-to-end latency met Config.SlowThreshold,
// oldest first. Empty when no threshold is configured.
func (s *Server) SlowRequests() []SpanRecord {
	s.tr.slowMu.Lock()
	defer s.tr.slowMu.Unlock()
	return append([]SpanRecord(nil), s.tr.slow...)
}

// WriteChromeTrace exports the ring contents as Chrome trace-event
// JSON (chrome://tracing, Perfetto) through the same writer the
// virtual-time simulator's tracer uses, so server and simulator traces
// open in the same viewer. Each request is an enclosing slice on its
// shard's track with six child slices tiling it, one per component.
// Timestamps are wall-clock microseconds since the Unix epoch.
func (s *Server) WriteChromeTrace(w io.Writer) error {
	spans := s.TraceSpans()
	cw := obs.NewChromeWriter(w)
	epochUS := float64(s.tr.epoch.UnixNano()) / 1e3
	named := make(map[int]bool, len(s.tr.rings))
	for _, rec := range spans {
		if !named[rec.Shard] {
			cw.ThreadName(1, rec.Shard, fmt.Sprintf("shard %d", rec.Shard))
			named[rec.Shard] = true
		}
		ts := epochUS + float64(rec.StartNS)/1e3
		cw.Complete(rec.Kind, "request", ts, float64(rec.E2ENS)/1e3, 1, rec.Shard,
			map[string]interface{}{"trace_id": rec.TraceID, "op_id": rec.OpID, "conn": rec.Conn})
		at := ts
		for i := 0; i < prof.NumServerComponents; i++ {
			name := prof.ServerComponent(i).String()
			dur := float64(rec.ComponentsNS[name]) / 1e3
			cw.Complete(name, "component", at, dur, 1, rec.Shard, nil)
			at += dur
		}
	}
	return cw.Close()
}
