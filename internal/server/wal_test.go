package server_test

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimds/internal/linearize"
	"pimds/internal/server"
	"pimds/internal/wal"
	"pimds/internal/wal/snapshot"
	"pimds/internal/wire"
)

// TestWALDurableRestart: a clean stop/start cycle preserves every
// structure's state through the final snapshot + log.
func TestWALDurableRestart(t *testing.T) {
	t.Run("sets", func(t *testing.T) {
		for _, structure := range []string{server.StructList, server.StructSkip, server.StructHash} {
			t.Run(structure, func(t *testing.T) {
				dir := t.TempDir()
				cfg := server.Config{Structure: structure, Shards: 4, KeySpace: 1 << 10, WALDir: dir}
				srv, addr := startServer(t, cfg)
				c := dial(t, addr)
				for k := int64(0); k < 200; k++ {
					if r := c.do(t, wire.Add, k); !r.OK {
						t.Fatalf("add %d: %+v", k, r)
					}
				}
				for k := int64(0); k < 200; k += 2 {
					if r := c.do(t, wire.Remove, k); !r.OK {
						t.Fatalf("remove %d: %+v", k, r)
					}
				}
				c.nc.Close()
				srv.Shutdown()

				_, addr2 := startServer(t, cfg)
				c2 := dial(t, addr2)
				for k := int64(0); k < 200; k++ {
					want := k%2 == 1
					if r := c2.do(t, wire.Contains, k); r.OK != want {
						t.Fatalf("after restart, contains %d = %v, want %v", k, r.OK, want)
					}
				}
			})
		}
	})
	t.Run("queue", func(t *testing.T) {
		dir := t.TempDir()
		cfg := server.Config{Structure: server.StructQueue, WALDir: dir}
		srv, addr := startServer(t, cfg)
		c := dial(t, addr)
		for k := int64(1); k <= 50; k++ {
			c.do(t, wire.Enqueue, k)
		}
		for k := int64(1); k <= 10; k++ {
			if r := c.do(t, wire.Dequeue, 0); !r.OK || r.Value != k {
				t.Fatalf("dequeue = %+v, want %d", r, k)
			}
		}
		c.nc.Close()
		srv.Shutdown()

		_, addr2 := startServer(t, cfg)
		c2 := dial(t, addr2)
		for k := int64(11); k <= 50; k++ {
			if r := c2.do(t, wire.Dequeue, 0); !r.OK || r.Value != k {
				t.Fatalf("after restart, dequeue = %+v, want %d (FIFO order must survive)", r, k)
			}
		}
		if r := c2.do(t, wire.Dequeue, 0); r.OK {
			t.Fatalf("queue should be empty, got %+v", r)
		}
	})
	t.Run("stack", func(t *testing.T) {
		dir := t.TempDir()
		cfg := server.Config{Structure: server.StructStack, WALDir: dir}
		srv, addr := startServer(t, cfg)
		c := dial(t, addr)
		for k := int64(1); k <= 50; k++ {
			c.do(t, wire.Push, k)
		}
		for k := int64(50); k > 45; k-- {
			if r := c.do(t, wire.Pop, 0); !r.OK || r.Value != k {
				t.Fatalf("pop = %+v, want %d", r, k)
			}
		}
		c.nc.Close()
		srv.Shutdown()

		_, addr2 := startServer(t, cfg)
		c2 := dial(t, addr2)
		for k := int64(45); k > 0; k-- {
			if r := c2.do(t, wire.Pop, 0); !r.OK || r.Value != k {
				t.Fatalf("after restart, pop = %+v, want %d (LIFO order must survive)", r, k)
			}
		}
	})
}

// TestWALFsyncModes: every fsync policy serves and survives a clean
// restart (Close flushes even under FsyncOff).
func TestWALFsyncModes(t *testing.T) {
	for _, mode := range []string{server.FsyncAlways, server.FsyncBatch, server.FsyncOff} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			cfg := server.Config{Structure: server.StructList, KeySpace: 1 << 10, WALDir: dir, Fsync: mode}
			srv, addr := startServer(t, cfg)
			c := dial(t, addr)
			for k := int64(0); k < 32; k++ {
				if r := c.do(t, wire.Add, k); !r.OK {
					t.Fatalf("add %d under %s: %+v", k, mode, r)
				}
			}
			c.nc.Close()
			srv.Shutdown()
			_, addr2 := startServer(t, cfg)
			c2 := dial(t, addr2)
			for k := int64(0); k < 32; k++ {
				if r := c2.do(t, wire.Contains, k); !r.OK {
					t.Fatalf("key %d lost across %s restart", k, mode)
				}
			}
		})
	}
}

func TestWALRejectsUnknownFsync(t *testing.T) {
	_, err := server.New(server.Config{Structure: server.StructList, WALDir: t.TempDir(), Fsync: "sometimes"})
	if err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("New with bad fsync policy: err = %v, want fsync validation error", err)
	}
}

// TestHealthzRecovering: from New until recovery completes the server
// reports the distinct "recovering" state — 503, not ready, with the
// status as the JSON reason — then recovers to normal reporting.
func TestHealthzRecovering(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Structure: server.StructList, Shards: 2, KeySpace: 1 << 10, WALDir: dir}

	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h := srv.Health(); h.Status != "recovering" || h.Ready {
		t.Fatalf("before recovery: health = %+v, want status recovering, not ready", h)
	}
	ts := httptest.NewServer(srv.OpsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during recovery = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body.String(), `"recovering"`) {
		t.Fatalf("/healthz body %q does not cite recovering", body.String())
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	// An accepted connection proves Serve passed recovery.
	c := dial(t, ln.Addr().String())
	if r := c.do(t, wire.Add, 1); !r.OK {
		t.Fatalf("add after recovery: %+v", r)
	}
	if h := srv.Health(); h.Status == "recovering" || !h.Ready {
		t.Fatalf("after recovery: health = %+v, want ready", h)
	}
}

// TestReplayDeterminism: replaying one recorded op log twice — into two
// fresh servers — yields byte-identical state dumps for every
// structure. This is the property that makes the WAL a sound source of
// truth: recovery lands on one state, not one of several plausible
// ones (skip towers included — they draw from the seeded per-shard
// generator in insertion order on both runs).
func TestReplayDeterminism(t *testing.T) {
	cases := []struct {
		structure string
		kinds     []wire.OpKind
	}{
		{server.StructList, []wire.OpKind{wire.Add, wire.Add, wire.Add, wire.Remove, wire.PopMin, wire.PopMax}},
		{server.StructSkip, []wire.OpKind{wire.Add, wire.Add, wire.Add, wire.Remove, wire.PopMin}},
		{server.StructHash, []wire.OpKind{wire.Add, wire.Add, wire.Add, wire.Remove}},
		{server.StructQueue, []wire.OpKind{wire.Enqueue, wire.Enqueue, wire.Dequeue}},
		{server.StructStack, []wire.OpKind{wire.Push, wire.Push, wire.Pop}},
	}
	for _, tc := range cases {
		t.Run(tc.structure, func(t *testing.T) {
			master := t.TempDir()
			l, err := wal.Open(master, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			// A deterministic mixed op stream: conditional mutators
			// (failed adds, pops on empty) included on purpose — they
			// must replay as no-ops both times.
			rng := uint64(42)
			var id uint64
			for seq := uint64(1); seq <= 40; seq++ {
				var ops []wire.Op
				for i := 0; i < 8; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					id++
					kind := tc.kinds[rng%uint64(len(tc.kinds))]
					ops = append(ops, wire.Op{ID: id, Kind: kind, Key: int64((rng >> 33) % 64)})
				}
				if err := l.Append(wal.AppendRecord(nil, 0, seq, ops)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			replayDump := func() []byte {
				// Each replay gets its own copy of the recorded log: a
				// recovered server's shutdown snapshot must not feed the
				// next run.
				dir := t.TempDir()
				data, err := os.ReadFile(filepath.Join(master, wal.SegmentName(0)))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, wal.SegmentName(0)), data, 0o644); err != nil {
					t.Fatal(err)
				}
				srv, err := server.New(server.Config{Structure: tc.structure, KeySpace: 64, WALDir: dir})
				if err != nil {
					t.Fatal(err)
				}
				if err := srv.RecoverForTest(); err != nil {
					t.Fatal(err)
				}
				dumps := srv.StateDumps()
				seqs := srv.WALSeqs()
				srv.Shutdown()
				doc := &snapshot.Doc{}
				for i := range dumps {
					doc.Shards = append(doc.Shards, snapshot.Shard{Seq: seqs[i], State: dumps[i]})
				}
				return snapshot.Append(nil, doc)
			}

			first := replayDump()
			second := replayDump()
			if !bytes.Equal(first, second) {
				t.Fatalf("two replays of the same op log produced different state dumps (%d vs %d bytes)", len(first), len(second))
			}
			if len(first) == 0 {
				t.Fatal("empty dump — replay applied nothing")
			}
		})
	}
}

// TestSnapshotTruncatesLog: periodic snapshots prune the segments they
// supersede, and a restart from snapshot + tail reproduces the state.
func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Structure: server.StructList, Shards: 2, KeySpace: 1 << 12,
		WALDir: dir, SnapshotEvery: 25 * time.Millisecond,
	}
	srv, addr := startServer(t, cfg)
	c := dial(t, addr)
	deadline := time.Now().Add(300 * time.Millisecond)
	var k int64
	for time.Now().Before(deadline) {
		c.do(t, wire.Add, k%(1<<12))
		k++
	}
	c.nc.Close()
	srv.Shutdown()

	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	// The final (shutdown) snapshot prunes everything older.
	if len(snaps) != 1 {
		t.Fatalf("snapshot files after drain = %v, want exactly the final one", snaps)
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, snapSeg, ok, err := snapshot.Latest(dir)
	if err != nil || !ok {
		t.Fatalf("Latest: ok %v err %v", ok, err)
	}
	for _, seg := range segs {
		if seg < snapSeg {
			t.Fatalf("segment %d survived truncation below snapshot boundary %d", seg, snapSeg)
		}
	}
	total := 0
	for _, sh := range doc.Shards {
		total += len(sh.State)
	}
	want := int(k)
	if want > 1<<12 {
		want = 1 << 12
	}
	if total != want {
		t.Fatalf("snapshot carries %d keys, want %d", total, want)
	}

	_, addr2 := startServer(t, cfg)
	c2 := dial(t, addr2)
	for _, probe := range []int64{0, 1, int64(want) - 1} {
		if r := c2.do(t, wire.Contains, probe); !r.OK {
			t.Fatalf("key %d lost across snapshotted restart", probe)
		}
	}
}

// --- kill -9 crash recovery ---

const crashDirEnv = "PIMDS_CRASH_WAL_DIR"

// crashServerConfig is shared by the child process and the parent's
// post-crash restart: recovery must run with the same topology.
func crashServerConfig(dir string) server.Config {
	return server.Config{
		Structure: server.StructList, Shards: 4, KeySpace: 1 << 20,
		WALDir: dir, Fsync: server.FsyncBatch, SnapshotEvery: 75 * time.Millisecond,
	}
}

// TestCrashChild is not a test: it is the server half of the kill -9
// crash test, run in a subprocess so the parent can SIGKILL it
// mid-load. It serves until killed.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash-test child entry point; set " + crashDirEnv)
	}
	srv, err := server.New(crashServerConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("CHILD_ADDR=%s\n", ln.Addr().String())
	os.Stdout.Sync()
	if err := srv.Serve(ln); err != nil {
		t.Fatal(err)
	}
}

// crashClient drives one closed-loop connection of unique-key adds
// until the connection dies under it, recording every acknowledged op
// and the single op that was in flight when the crash hit.
type crashClient struct {
	id      int
	acked   []linearize.Op
	pending *linearize.Op // sent, never answered
}

// TestCrashRecoveryKill9 is the durability acceptance test: a server
// killed with SIGKILL mid-load must come back with every acknowledged
// op present, and the combined pre-crash/post-recovery history must
// linearize against the set spec. Ops that were in flight at the kill
// are resolved by observed presence — legal either way for add-only
// unique keys, since an unanswered op may or may not have executed.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	epoch := time.Now()
	now := func() int64 { return time.Since(epoch).Nanoseconds() }

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "CHILD_ADDR="); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("child exited without announcing an address: %v", sc.Err())
	}
	go func() {
		// Keep draining so the child never blocks on a full stdout pipe.
		for sc.Scan() {
		}
	}()

	const nClients = 6
	var ackedTotal atomic.Int64
	clients := make([]*crashClient, nClients)
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		cc := &crashClient{id: ci}
		clients[ci] = cc
		wg.Add(1)
		go func() {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer nc.Close()
			br, bw := bufio.NewReader(nc), bufio.NewWriter(nc)
			var buf, payload []byte
			var results []wire.Result
			for i := 0; ; i++ {
				// Unique keys, spread across the key space (odd
				// multiplier, so the map is a bijection mod 2^20) and
				// therefore across shards.
				key := int64(uint64(i*nClients+cc.id) * 7919 % (1 << 20))
				op := linearize.Op{
					Client: cc.id, Action: linearize.ActAdd, Input: key, Start: now(),
				}
				buf, err = wire.AppendRequest(buf[:0], []wire.Op{{ID: uint64(i + 1), Kind: wire.Add, Key: key}})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := bw.Write(buf); err != nil {
					cc.pending = &op
					return
				}
				if err := bw.Flush(); err != nil {
					cc.pending = &op
					return
				}
				payload, err = wire.ReadFrame(br, payload[:0])
				if err != nil {
					cc.pending = &op
					return
				}
				results, err = wire.DecodeResponse(payload, results[:0])
				if err != nil || len(results) != 1 {
					cc.pending = &op
					return
				}
				op.End = now()
				op.OK = results[0].OK
				cc.acked = append(cc.acked, op)
				ackedTotal.Add(1)
			}
		}()
	}

	// Let the load run long enough to cross snapshot boundaries, then
	// pull the plug mid-flight.
	killAt := time.Now().Add(5 * time.Second)
	for ackedTotal.Load() < 600 && time.Now().Before(killAt) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	wg.Wait()
	if ackedTotal.Load() == 0 {
		t.Fatal("no ops were acknowledged before the kill; the test exercised nothing")
	}
	t.Logf("killed server after %d acked ops", ackedTotal.Load())

	// Restart on the same directory: recovery = snapshot + log tail.
	_, addr2 := startServer(t, crashServerConfig(dir))
	c := dial(t, addr2)

	keys := make(map[int64]bool) // key → was acked
	var history []linearize.Op
	for _, cc := range clients {
		for _, op := range cc.acked {
			if !op.OK {
				// Keys are unique per client and attempted once; a failed
				// add would mean the server invented a duplicate.
				t.Fatalf("client %d: add(%d) acked with OK=false", cc.id, op.Input)
			}
			keys[op.Input] = true
			history = append(history, op)
		}
	}

	lost := 0
	for key, acked := range keys {
		r := c.do(t, wire.Contains, key)
		if acked && !r.OK {
			lost++
			if lost <= 10 {
				t.Errorf("acked add(%d) missing after recovery", key)
			}
		}
		history = append(history, linearize.Op{
			Client: nClients, Action: linearize.ActContains, Input: key,
			Start: now(), End: now() + 1, OK: r.OK,
		})
	}
	if lost > 0 {
		t.Fatalf("%d acknowledged ops lost by the crash (no-acked-loss violated)", lost)
	}

	// Resolve in-flight ops by observed presence: present means the op
	// executed before the kill (its linearization point lies inside
	// [Start, kill] ⊂ [Start, now]); absent means it never took effect
	// and is not part of the history.
	for _, cc := range clients {
		if cc.pending == nil {
			continue
		}
		r := c.do(t, wire.Contains, cc.pending.Input)
		if r.OK {
			op := *cc.pending
			op.End = now()
			op.OK = true
			history = append(history, op)
		}
	}

	sort.Slice(history, func(i, j int) bool { return history[i].Start < history[j].Start })
	if !linearize.Check(linearize.SetSpec{}, history) {
		t.Fatalf("recovered history of %d ops does not linearize against the set spec", len(history))
	}
	t.Logf("history of %d ops linearizes across the crash", len(history))
}
