package server_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimds/internal/linearize"
	"pimds/internal/obs"
	"pimds/internal/server"
	"pimds/internal/wire"
)

// startServer runs an in-process server on an ephemeral port and
// returns it with its address. Serve's return value is checked at
// cleanup: a drained server must return nil.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Shutdown, want nil", err)
		}
	})
	return srv, ln.Addr().String()
}

// client is a minimal synchronous wire client for tests.
type client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &client{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
}

func (c *client) send(t *testing.T, ops ...wire.Op) {
	t.Helper()
	buf, err := wire.AppendRequest(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.bw.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// recv reads results until n have arrived.
func (c *client) recv(t *testing.T, n int) map[uint64]wire.Result {
	t.Helper()
	out := make(map[uint64]wire.Result, n)
	var payload []byte
	var results []wire.Result
	var err error
	for len(out) < n {
		payload, err = wire.ReadFrame(c.br, payload[:0])
		if err != nil {
			t.Fatalf("after %d of %d results: %v", len(out), n, err)
		}
		results, err = wire.DecodeResponse(payload, results[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			out[r.ID] = r
		}
	}
	return out
}

// do runs one op synchronously.
func (c *client) do(t *testing.T, kind wire.OpKind, key int64) wire.Result {
	t.Helper()
	c.send(t, wire.Op{ID: 1, Kind: kind, Key: key})
	return c.recv(t, 1)[1]
}

func TestSetSemanticsOverTheWire(t *testing.T) {
	for _, structure := range []string{server.StructList, server.StructSkip, server.StructHash} {
		t.Run(structure, func(t *testing.T) {
			_, addr := startServer(t, server.Config{Structure: structure, Shards: 4, KeySpace: 1 << 10})
			c := dial(t, addr)

			if r := c.do(t, wire.Contains, 7); r.Status != wire.StatusOK || r.OK {
				t.Fatalf("contains on empty: %+v", r)
			}
			if r := c.do(t, wire.Add, 7); !r.OK {
				t.Fatalf("first add: %+v", r)
			}
			if r := c.do(t, wire.Add, 7); r.OK {
				t.Fatalf("second add should report present: %+v", r)
			}
			if r := c.do(t, wire.Contains, 7); !r.OK {
				t.Fatalf("contains after add: %+v", r)
			}
			if r := c.do(t, wire.Remove, 7); !r.OK {
				t.Fatalf("remove present: %+v", r)
			}
			if r := c.do(t, wire.Remove, 7); r.OK {
				t.Fatalf("remove absent: %+v", r)
			}
		})
	}
}

func TestQueueAndStackSemantics(t *testing.T) {
	_, qaddr := startServer(t, server.Config{Structure: server.StructQueue})
	q := dial(t, qaddr)
	q.do(t, wire.Enqueue, 10)
	q.do(t, wire.Enqueue, 20)
	if r := q.do(t, wire.Dequeue, 0); !r.OK || r.Value != 10 {
		t.Fatalf("queue is FIFO: %+v", r)
	}
	if r := q.do(t, wire.Dequeue, 0); !r.OK || r.Value != 20 {
		t.Fatalf("queue second dequeue: %+v", r)
	}
	if r := q.do(t, wire.Dequeue, 0); r.OK {
		t.Fatalf("dequeue empty: %+v", r)
	}

	_, saddr := startServer(t, server.Config{Structure: server.StructStack})
	s := dial(t, saddr)
	s.do(t, wire.Push, 10)
	s.do(t, wire.Push, 20)
	if r := s.do(t, wire.Pop, 0); !r.OK || r.Value != 20 {
		t.Fatalf("stack is LIFO: %+v", r)
	}
	if r := s.do(t, wire.Pop, 0); !r.OK || r.Value != 10 {
		t.Fatalf("stack second pop: %+v", r)
	}
	if r := s.do(t, wire.Pop, 0); r.OK {
		t.Fatalf("pop empty: %+v", r)
	}
}

func TestRejectsBadKindAndBadKey(t *testing.T) {
	_, addr := startServer(t, server.Config{Structure: server.StructSkip, KeySpace: 100})
	c := dial(t, addr)
	if r := c.do(t, wire.Push, 5); r.Status != wire.StatusBadKind {
		t.Fatalf("push to a set server: %+v", r)
	}
	if r := c.do(t, wire.Add, 100); r.Status != wire.StatusBadKey {
		t.Fatalf("key at the space bound: %+v", r)
	}
	if r := c.do(t, wire.Add, -1); r.Status != wire.StatusBadKey {
		t.Fatalf("negative key: %+v", r)
	}
	// The connection survives rejected ops.
	if r := c.do(t, wire.Add, 99); r.Status != wire.StatusOK || !r.OK {
		t.Fatalf("valid op after rejections: %+v", r)
	}
}

func TestQueueRefusesShards(t *testing.T) {
	if _, err := server.New(server.Config{Structure: server.StructQueue, Shards: 4}); err == nil {
		t.Fatal("queue with 4 shards must be rejected")
	}
	if _, err := server.New(server.Config{Structure: "btree"}); err == nil {
		t.Fatal("unknown structure must be rejected")
	}
}

// TestManyClientsRace is the -race e2e: many goroutine clients hammer
// a sharded set server with pipelined batches, and the final structure
// state must equal a sequential replay of the acknowledged ops.
func TestManyClientsRace(t *testing.T) {
	const (
		nClients = 16
		rounds   = 30
		pipeline = 8
		keySpace = 1 << 10
	)
	log := server.NewOpLog()
	reg := obs.NewRegistry()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 4, KeySpace: keySpace,
		Reg: reg, Log: log,
		// A live window rotating throughout the run: rotation snapshots
		// the registry while combiners hammer it, so -race covers the
		// scrape/record overlap, and the alloc pins prove the hot path
		// stays allocation-free with windowing on.
		WindowTick: 100 * time.Millisecond,
	})

	var wg sync.WaitGroup
	for cl := 0; cl < nClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			c := &client{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
			ops := make([]wire.Op, pipeline)
			var id uint64
			for r := 0; r < rounds; r++ {
				for i := range ops {
					k := int64((cl*31 + r*17 + i*7) % keySpace)
					kind := wire.Add
					switch (cl + r + i) % 3 {
					case 1:
						kind = wire.Remove
					case 2:
						kind = wire.Contains
					}
					ops[i] = wire.Op{ID: id, Kind: kind, Key: k}
					id++
				}
				c.send(t, ops...)
				got := c.recv(t, pipeline)
				for _, res := range got {
					if res.Status != wire.StatusOK {
						t.Errorf("client %d: unexpected status %v", cl, res.Status)
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	srv.Shutdown()

	// The op log must hold every op and replay to the server's final
	// state.
	ops := log.Ops()
	if want := nClients * rounds * pipeline; len(ops) != want {
		t.Fatalf("op log has %d ops, want %d", len(ops), want)
	}
	final := make(map[int64]bool)
	// Replay in End order: combiner passes are serial per shard and
	// keys are shard-disjoint, so End order is a legal serialization.
	ordered := make([]int, len(ops))
	for i := range ordered {
		ordered[i] = i
	}
	sort.Slice(ordered, func(a, b int) bool { return ops[ordered[a]].End < ops[ordered[b]].End })
	for _, i := range ordered {
		op := ops[i]
		switch op.Action {
		case linearize.ActAdd:
			if op.OK {
				final[op.Input] = true
			}
		case linearize.ActRemove:
			if op.OK {
				delete(final, op.Input)
			}
		}
	}
	var total int
	for _, n := range srv.ShardLens() {
		total += n
	}
	if total != len(final) {
		t.Errorf("server holds %d keys, sequential replay of acked ops holds %d", total, len(final))
	}

	// Under 16 pipelined clients the combiner must actually combine.
	snap := reg.Snapshot()
	var batchN, batchSum float64
	for name, h := range snap.Histograms {
		if strings.Contains(name, "batch_size") {
			batchN += float64(h.Count)
			batchSum += h.Mean * float64(h.Count)
		}
	}
	if batchN == 0 {
		t.Fatal("no batch-size observations recorded")
	}
	if factor := batchSum / batchN; factor <= 1.0 {
		t.Errorf("combining factor %.2f, want > 1 under %d pipelined clients", factor, nClients)
	}
	if snap.Counters["server/ops/total"] != uint64(len(ops)) {
		t.Errorf("ops counter %d != op log %d", snap.Counters["server/ops/total"], len(ops))
	}
}

// TestGracefulDrainLosesNoAckedOps shuts the server down while clients
// are mid-stream and asserts the drain contract: every response the
// clients receive corresponds to an applied op, every applied op's
// response reaches its client (acked set == applied set), and each
// connection's acked ids are exactly the ops of its fully-decoded
// frames — a prefix, no gaps.
func TestGracefulDrainLosesNoAckedOps(t *testing.T) {
	const (
		nClients = 8
		pipeline = 4
		keySpace = 1 << 10
	)
	log := server.NewOpLog()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 2, KeySpace: keySpace,
		QueueDepth: 16, Log: log,
	})

	type clientTally struct {
		ids map[uint64]bool
	}
	tallies := make([]clientTally, nClients)
	var ackedLive atomic.Int64
	var wg sync.WaitGroup
	stopSend := make(chan struct{})
	for cl := 0; cl < nClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			br := bufio.NewReader(nc)
			bw := bufio.NewWriter(nc)
			ids := make(map[uint64]bool)
			tallies[cl].ids = ids

			// Writer: stream frames until told to stop, then half-close.
			var id uint64
			done := make(chan struct{})
			go func() {
				defer close(done)
				var buf []byte
				ops := make([]wire.Op, pipeline)
				for {
					select {
					case <-stopSend:
						if tc, ok := nc.(*net.TCPConn); ok {
							tc.CloseWrite()
						}
						return
					default:
					}
					for i := range ops {
						ops[i] = wire.Op{ID: id, Kind: wire.Add, Key: int64(id % keySpace)}
						id++
					}
					buf, _ = wire.AppendRequest(buf[:0], ops)
					if _, err := bw.Write(buf); err != nil {
						return
					}
					if err := bw.Flush(); err != nil {
						return
					}
				}
			}()

			// Reader: collect every response until the server closes.
			var payload []byte
			var results []wire.Result
			for {
				payload, err = wire.ReadFrame(br, payload[:0])
				if err != nil {
					if err != io.EOF && err != io.ErrUnexpectedEOF {
						t.Errorf("client %d read: %v", cl, err)
					}
					break
				}
				results, err = wire.DecodeResponse(payload, results[:0])
				if err != nil {
					t.Errorf("client %d decode: %v", cl, err)
					break
				}
				for _, r := range results {
					if ids[r.ID] {
						t.Errorf("client %d: duplicate response for id %d", cl, r.ID)
					}
					ids[r.ID] = true
					ackedLive.Add(1)
				}
			}
			<-done
		}(cl)
	}

	// Let traffic build — wait for real round trips, not wall time, so
	// a loaded machine can't drain before anything was acknowledged —
	// then shut down concurrently with active senders.
	for deadline := time.Now().Add(5 * time.Second); ackedLive.Load() < nClients*pipeline; {
		if time.Now().After(deadline) {
			break // final acked==0 check will report it
		}
		time.Sleep(time.Millisecond)
	}
	go srv.Shutdown()
	time.Sleep(10 * time.Millisecond)
	// Mid-drain, /healthz must already report draining and not-ready —
	// the load balancer's cue to stop routing here.
	rec := httptest.NewRecorder()
	srv.OpsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), `"status": "draining"`) {
		t.Errorf("mid-drain healthz: code %d body %s", rec.Code, rec.Body.String())
	}
	close(stopSend)
	wg.Wait()

	var acked int
	for cl := range tallies {
		ids := tallies[cl].ids
		acked += len(ids)
		if len(ids)%pipeline != 0 {
			t.Errorf("client %d: %d acks is not a whole number of %d-op frames", cl, len(ids), pipeline)
		}
		// Acked ids must be the exact prefix [0, len(ids)).
		for i := uint64(0); i < uint64(len(ids)); i++ {
			if !ids[i] {
				t.Errorf("client %d: gap in acked ids at %d (%d acked)", cl, i, len(ids))
				break
			}
		}
	}
	applied := len(log.Ops())
	if acked != applied {
		t.Errorf("clients received %d acks but server applied %d ops — drain lost %d acknowledged ops",
			acked, applied, applied-acked)
	}
	if acked == 0 {
		t.Error("test produced no acknowledged ops; raise the sleep")
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("server/ops/total").Add(3)
	rec := httptest.NewRecorder()
	server.MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"server/ops/total": 3`) {
		t.Fatalf("snapshot missing counter: %s", body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
}

func TestShutdownIdempotentAndServeAfterDrain(t *testing.T) {
	srv, addr := startServer(t, server.Config{Structure: server.StructList})
	c := dial(t, addr)
	if r := c.do(t, wire.Add, 1); !r.OK {
		t.Fatalf("add: %+v", r)
	}
	srv.Shutdown()
	srv.Shutdown() // second call must not panic or hang
	// New dials are refused after drain.
	if nc, err := net.Dial("tcp", addr); err == nil {
		// A listener backlog race can accept; the conn must then be
		// closed immediately.
		nc.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := nc.Read(make([]byte, 1)); err == nil {
			t.Error("connection after shutdown still served")
		}
		nc.Close()
	}
}

func TestBackpressureBoundedQueues(t *testing.T) {
	// A tiny queue with a slow-to-read client must not panic or grow
	// unbounded; this exercises the blocking-publish path.
	_, addr := startServer(t, server.Config{
		Structure: server.StructHash, QueueDepth: 2, KeySpace: 1 << 10,
	})
	c := dial(t, addr)
	const n = 500
	var id uint64
	ops := make([]wire.Op, 0, 100)
	for i := 0; i < 5; i++ {
		ops = ops[:0]
		for j := 0; j < 100; j++ {
			ops = append(ops, wire.Op{ID: id, Kind: wire.Add, Key: int64(id % 1000)})
			id++
		}
		c.send(t, ops...)
	}
	got := c.recv(t, n)
	if len(got) != n {
		t.Fatalf("received %d results, want %d", len(got), n)
	}
}

func ExampleMetricsHandler() {
	reg := obs.NewRegistry()
	reg.Counter("server/conns/total").Inc()
	rec := httptest.NewRecorder()
	server.MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fmt.Println(rec.Code)
	// Output: 200
}
