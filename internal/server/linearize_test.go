package server_test

import (
	"sync"
	"testing"

	"pimds/internal/linearize"
	"pimds/internal/server"
	"pimds/internal/wire"
)

// runLoggedHistory drives nClients closed-loop clients (one op
// outstanding each, so the op log's per-connection program-order
// assumption holds) and returns the recorded history at quiescence.
func runLoggedHistory(t *testing.T, cfg server.Config, nClients, opsPerClient int, opFor func(cl, i int) wire.Op) []linearize.Op {
	t.Helper()
	log := server.NewOpLog()
	cfg.Log = log
	srv, addr := startServer(t, cfg)

	var wg sync.WaitGroup
	for cl := 0; cl < nClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := dialRaw(t, addr)
			defer c.nc.Close()
			for i := 0; i < opsPerClient; i++ {
				op := opFor(cl, i)
				op.ID = uint64(i)
				c.send(t, op)
				if res := c.recv(t, 1); len(res) != 1 {
					t.Errorf("client %d op %d: %d results", cl, i, len(res))
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	srv.Shutdown()
	return log.Ops()
}

// dialRaw is dial without t.Cleanup (clients close themselves so the
// history is complete before Shutdown).
func dialRaw(t *testing.T, addr string) *client {
	t.Helper()
	c := dial(t, addr)
	return c
}

func TestServerHistoryLinearizableSet(t *testing.T) {
	const nClients, perClient = 4, 40
	ops := runLoggedHistory(t,
		server.Config{Structure: server.StructSkip, Shards: 2, KeySpace: 64},
		nClients, perClient,
		func(cl, i int) wire.Op {
			k := int64((cl*13 + i*5) % 64)
			switch (cl + i) % 3 {
			case 0:
				return wire.Op{Kind: wire.Add, Key: k}
			case 1:
				return wire.Op{Kind: wire.Remove, Key: k}
			}
			return wire.Op{Kind: wire.Contains, Key: k}
		})
	if len(ops) != nClients*perClient {
		t.Fatalf("history has %d ops, want %d", len(ops), nClients*perClient)
	}
	if !linearize.Check(linearize.SetSpec{}, ops) {
		t.Fatal("server set history is not linearizable")
	}
}

func TestServerHistoryLinearizableQueue(t *testing.T) {
	const nClients, perClient = 4, 40
	ops := runLoggedHistory(t,
		server.Config{Structure: server.StructQueue},
		nClients, perClient,
		func(cl, i int) wire.Op {
			if i%2 == 0 {
				return wire.Op{Kind: wire.Enqueue, Key: int64(cl*1000 + i)}
			}
			return wire.Op{Kind: wire.Dequeue}
		})
	if !linearize.Check(linearize.QueueSpec{}, ops) {
		t.Fatal("server queue history is not linearizable")
	}
}

func TestServerHistoryLinearizableStack(t *testing.T) {
	const nClients, perClient = 3, 30
	ops := runLoggedHistory(t,
		server.Config{Structure: server.StructStack},
		nClients, perClient,
		func(cl, i int) wire.Op {
			if i%2 == 0 {
				return wire.Op{Kind: wire.Push, Key: int64(cl*1000 + i)}
			}
			return wire.Op{Kind: wire.Pop}
		})
	if !linearize.Check(linearize.StackSpec{}, ops) {
		t.Fatal("server stack history is not linearizable")
	}
}

// TestLinearizeCatchesCorruptedHistory guards the checker wiring: a
// history with a forged response must be rejected, proving the pass
// above is not vacuous.
func TestLinearizeCatchesCorruptedHistory(t *testing.T) {
	ops := runLoggedHistory(t,
		server.Config{Structure: server.StructQueue},
		2, 20,
		func(cl, i int) wire.Op {
			if i%2 == 0 {
				return wire.Op{Kind: wire.Enqueue, Key: int64(cl*100 + i)}
			}
			return wire.Op{Kind: wire.Dequeue}
		})
	// Forge the first successful dequeue's output.
	forged := false
	for i := range ops {
		if ops[i].Action == linearize.ActDequeue && ops[i].OK {
			ops[i].Output += 9999
			forged = true
			break
		}
	}
	if !forged {
		t.Skip("history had no successful dequeue to forge")
	}
	if linearize.Check(linearize.QueueSpec{}, ops) {
		t.Fatal("checker accepted a forged history")
	}
}
