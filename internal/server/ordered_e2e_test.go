package server_test

import (
	"math/rand"
	"sync"
	"testing"

	"pimds/internal/linearize"
	"pimds/internal/server"
	"pimds/internal/wire"
)

// sendV2 ships ops in a V2 request frame — the encoding that carries
// Hi/Limit, required for range scans.
func (c *client) sendV2(t *testing.T, ops ...wire.Op) {
	t.Helper()
	buf, err := wire.AppendRequestV2(nil, ops, wire.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.bw.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// recvAny reads results until n have arrived, accepting fixed and
// variable response frames. Each decode gets a fresh values arena, so
// the returned results' Values stay valid together.
func (c *client) recvAny(t *testing.T, n int) map[uint64]wire.Result {
	t.Helper()
	out := make(map[uint64]wire.Result, n)
	var payload []byte
	for len(out) < n {
		var err error
		payload, err = wire.ReadFrame(c.br, payload[:0])
		if err != nil {
			t.Fatalf("after %d of %d results: %v", len(out), n, err)
		}
		results, _, err := wire.DecodeResponseAny(payload, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			out[r.ID] = r
		}
	}
	return out
}

// doV2 runs one op synchronously over the V2 encoding.
func (c *client) doV2(t *testing.T, op wire.Op) wire.Result {
	t.Helper()
	op.ID = 1
	c.sendV2(t, op)
	return c.recvAny(t, 1)[1]
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOrderedOpsOverTheWire drives the full ordered surface — scans
// with pagination, neighbor queries, extremum pops — end to end against
// single-shard list and skip servers.
func TestOrderedOpsOverTheWire(t *testing.T) {
	for _, structure := range []string{server.StructList, server.StructSkip} {
		t.Run(structure, func(t *testing.T) {
			_, addr := startServer(t, server.Config{Structure: structure, KeySpace: 1 << 10})
			c := dial(t, addr)
			for _, k := range []int64{10, 20, 30, 40, 50} {
				if r := c.do(t, wire.Add, k); !r.OK {
					t.Fatalf("add %d: %+v", k, r)
				}
			}

			// A complete scan: cursor lands on Hi.
			r := c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: 15, Hi: 45})
			if !r.OK || r.Value != 45 || !int64sEqual(r.Values, []int64{20, 30, 40}) {
				t.Fatalf("scan [15,45): %+v", r)
			}

			// Limit truncation, then resumption from the cursor.
			r = c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: 0, Hi: 1024, Limit: 2})
			if r.Value != 30 || !int64sEqual(r.Values, []int64{10, 20}) {
				t.Fatalf("limited scan: %+v", r)
			}
			r = c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: r.Value, Hi: 1024})
			if r.Value != 1024 || !int64sEqual(r.Values, []int64{30, 40, 50}) {
				t.Fatalf("resumed scan: %+v", r)
			}

			// An inverted interval is a legal, complete, empty scan.
			r = c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: 900, Hi: 100})
			if !r.OK || r.Value != 100 || len(r.Values) != 0 {
				t.Fatalf("inverted scan: %+v", r)
			}

			// Neighbor queries are strict.
			if r = c.doV2(t, wire.Op{Kind: wire.Pred, Key: 25}); !r.OK || r.Value != 20 {
				t.Fatalf("pred(25): %+v", r)
			}
			if r = c.doV2(t, wire.Op{Kind: wire.Pred, Key: 10}); r.OK {
				t.Fatalf("pred(10) on min key: %+v", r)
			}
			if r = c.doV2(t, wire.Op{Kind: wire.Succ, Key: 30}); !r.OK || r.Value != 40 {
				t.Fatalf("succ(30): %+v", r)
			}
			if r = c.doV2(t, wire.Op{Kind: wire.Succ, Key: 50}); r.OK {
				t.Fatalf("succ(50) on max key: %+v", r)
			}

			// Pops drain the extremes.
			if r = c.doV2(t, wire.Op{Kind: wire.PopMin}); !r.OK || r.Value != 10 {
				t.Fatalf("popmin: %+v", r)
			}
			if r = c.doV2(t, wire.Op{Kind: wire.PopMax}); !r.OK || r.Value != 50 {
				t.Fatalf("popmax: %+v", r)
			}
			if r = c.do(t, wire.Contains, 10); r.OK {
				t.Fatalf("10 still present after popmin: %+v", r)
			}
		})
	}
}

// TestScanPaginationAcrossShards: on a range-partitioned server one
// scan never crosses a shard, but the cursor protocol pages a client
// through every partition without it knowing the boundaries.
func TestScanPaginationAcrossShards(t *testing.T) {
	const keySpace, shards = 64, 4
	_, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: shards, KeySpace: keySpace,
	})
	c := dial(t, addr)
	ops := make([]wire.Op, keySpace)
	for k := range ops {
		ops[k] = wire.Op{ID: uint64(k), Kind: wire.Add, Key: int64(k)}
	}
	c.send(t, ops...)
	c.recv(t, keySpace)

	for _, limit := range []uint16{0, 5} {
		var got []int64
		hops := 0
		for cursor := int64(0); cursor < keySpace; {
			r := c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: cursor, Hi: keySpace, Limit: limit})
			if !r.OK || r.Status != wire.StatusOK {
				t.Fatalf("scan page at %d: %+v", cursor, r)
			}
			// No response may cross the owning shard's bound.
			upper := (cursor/(keySpace/shards) + 1) * (keySpace / shards)
			for _, v := range r.Values {
				if v < cursor || v >= upper {
					t.Fatalf("limit %d: key %d outside shard window [%d,%d)", limit, v, cursor, upper)
				}
			}
			if r.Value > upper {
				t.Fatalf("limit %d: cursor %d beyond shard bound %d", limit, r.Value, upper)
			}
			if r.Value <= cursor {
				t.Fatalf("limit %d: cursor did not advance: %d -> %d", limit, cursor, r.Value)
			}
			got = append(got, r.Values...)
			cursor = r.Value
			hops++
		}
		if len(got) != keySpace {
			t.Fatalf("limit %d: paginated scan returned %d keys, want %d", limit, len(got), keySpace)
		}
		for i, v := range got {
			if v != int64(i) {
				t.Fatalf("limit %d: got[%d] = %d", limit, i, v)
			}
		}
		if hops < shards {
			t.Fatalf("limit %d: %d pages, want ≥ %d (one per shard)", limit, hops, shards)
		}
	}
}

// TestOrderedRejections: global kinds need a single shard, unordered
// structures reject the ordered surface, and scan keys are validated
// like any keyed op.
func TestOrderedRejections(t *testing.T) {
	_, sharded := startServer(t, server.Config{Structure: server.StructSkip, Shards: 4, KeySpace: 1 << 10})
	c := dial(t, sharded)
	for _, kind := range []wire.OpKind{wire.Pred, wire.Succ, wire.PopMin, wire.PopMax} {
		if r := c.doV2(t, wire.Op{Kind: kind, Key: 5}); r.Status != wire.StatusBadKind {
			t.Fatalf("%v on a 4-shard server: %+v", kind, r)
		}
	}
	// Scans still work sharded.
	if r := c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: 0, Hi: 10}); r.Status != wire.StatusOK {
		t.Fatalf("scan on a 4-shard server: %+v", r)
	}
	// Scan keys are validated against the key space.
	if r := c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: -1, Hi: 10}); r.Status != wire.StatusBadKey {
		t.Fatalf("scan with negative lo: %+v", r)
	}
	if r := c.doV2(t, wire.Op{Kind: wire.RangeScan, Key: 1 << 10, Hi: 1 << 11}); r.Status != wire.StatusBadKey {
		t.Fatalf("scan with lo at the space bound: %+v", r)
	}

	_, hash := startServer(t, server.Config{Structure: server.StructHash, KeySpace: 1 << 10})
	h := dial(t, hash)
	for _, kind := range []wire.OpKind{wire.RangeScan, wire.Pred, wire.PopMin} {
		if r := h.doV2(t, wire.Op{Kind: kind, Key: 5, Hi: 10}); r.Status != wire.StatusBadKind {
			t.Fatalf("%v on a hash server: %+v", kind, r)
		}
	}
}

// TestServerHistoryLinearizableOrdered is the -race e2e for the ordered
// surface: concurrent clients interleave scans, pops and neighbor
// queries with adds and removes, and the recorded history must satisfy
// the ordered-set spec — including every scan's exact key list and
// cursor.
func TestServerHistoryLinearizableOrdered(t *testing.T) {
	const nClients, perClient, keySpace = 4, 50, 64
	log := server.NewOpLog()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, KeySpace: keySpace, Log: log,
	})

	var wg sync.WaitGroup
	for cl := 0; cl < nClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := dialRaw(t, addr)
			defer c.nc.Close()
			rng := rand.New(rand.NewSource(int64(cl) + 42))
			for i := 0; i < perClient; i++ {
				k := int64(rng.Intn(keySpace))
				var op wire.Op
				switch rng.Intn(8) {
				case 0, 1, 2:
					op = wire.Op{Kind: wire.Add, Key: k}
				case 3:
					op = wire.Op{Kind: wire.Remove, Key: k}
				case 4:
					op = wire.Op{Kind: wire.Contains, Key: k}
				case 5:
					op = wire.Op{Kind: wire.RangeScan, Key: k, Hi: k + int64(rng.Intn(32)), Limit: uint16(rng.Intn(5))}
				case 6:
					if rng.Intn(2) == 0 {
						op = wire.Op{Kind: wire.Pred, Key: k}
					} else {
						op = wire.Op{Kind: wire.Succ, Key: k}
					}
				default:
					if rng.Intn(2) == 0 {
						op = wire.Op{Kind: wire.PopMin}
					} else {
						op = wire.Op{Kind: wire.PopMax}
					}
				}
				op.ID = uint64(i)
				c.sendV2(t, op)
				if res := c.recvAny(t, 1); len(res) != 1 {
					t.Errorf("client %d op %d: %d results", cl, i, len(res))
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	srv.Shutdown()

	ops := log.Ops()
	if want := nClients * perClient; len(ops) != want {
		t.Fatalf("history has %d ops, want %d", len(ops), want)
	}
	scans := 0
	for _, op := range ops {
		if op.Action == linearize.ActScan {
			scans++
		}
	}
	if scans == 0 {
		t.Fatal("history recorded no scans; fix the mix")
	}
	if !linearize.Check(linearize.SetSpec{}, ops) {
		t.Fatal("ordered server history is not linearizable")
	}
}
