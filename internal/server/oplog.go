package server

import (
	"sync"

	"pimds/internal/linearize"
	"pimds/internal/wire"
)

// OpLog optionally records every operation the server applies, as
// linearize.Op intervals suitable for internal/linearize: Start is
// stamped by the reader goroutine when the op is decoded (before it is
// published to a shard) and End by the combiner right after the batch
// executes, so the true linearization point always lies inside the
// recorded interval. Client is the connection id; with one outstanding
// op per connection (the closed-loop pattern the linearizability tests
// use) that matches the checker's per-client program-order assumption.
//
// The log exists for testing and auditing; recording takes a mutex per
// batch, so leave it nil in throughput runs.
type OpLog struct {
	mu  sync.Mutex
	ops []linearize.Op
}

// NewOpLog returns an empty log.
func NewOpLog() *OpLog { return &OpLog{} }

// record appends one applied batch. A nil log is a no-op.
func (l *OpLog) record(batch []pendingOp, results []wire.Result, end int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, p := range batch {
		res := results[i]
		op := linearize.Op{
			Start:  p.start,
			End:    end,
			Client: p.conn.id,
			Input:  p.op.Key,
			OK:     res.OK,
		}
		switch p.op.Kind {
		case wire.Contains:
			op.Action = linearize.ActContains
		case wire.Add:
			op.Action = linearize.ActAdd
		case wire.Remove:
			op.Action = linearize.ActRemove
		case wire.Enqueue:
			op.Action = linearize.ActEnqueue
		case wire.Dequeue:
			op.Action = linearize.ActDequeue
			op.Output = res.Value
		case wire.Push:
			op.Action = linearize.ActPush
		case wire.Pop:
			op.Action = linearize.ActPop
			op.Output = res.Value
		case wire.RangeScan:
			// p.op carries the reader-clamped Hi and Limit — the bounds
			// the scan actually ran with. Outputs aliases the combiner's
			// per-pass copy of the scan values, which is never mutated
			// after delivery.
			op.Action = linearize.ActScan
			op.Input2 = p.op.Hi
			op.Limit = int(p.op.Limit)
			op.Output = res.Value
			op.Outputs = res.Values
		case wire.Pred:
			op.Action = linearize.ActPred
			op.Output = res.Value
		case wire.Succ:
			op.Action = linearize.ActSucc
			op.Output = res.Value
		case wire.PopMin:
			op.Action = linearize.ActPopMin
			op.Output = res.Value
		case wire.PopMax:
			op.Action = linearize.ActPopMax
			op.Output = res.Value
		}
		l.ops = append(l.ops, op)
	}
}

// Ops returns a copy of the recorded history. Call at quiescence (after
// Shutdown) for a complete log.
func (l *OpLog) Ops() []linearize.Op {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]linearize.Op(nil), l.ops...)
}
