package server

import (
	"testing"
	"time"

	"pimds/internal/testenv"
	"pimds/internal/wire"
)

// These tests pin the //pimvet:allocfree annotations on the server's
// combining window with the runtime's allocation counter: once the
// shard scratch and structure free lists are warm, a combine pass over
// a size-stable batch must not touch the heap — a GC pause inside
// applyBatch stalls every published op on the shard.

func skipIfRace(t *testing.T) {
	t.Helper()
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
}

// steadyBatch builds Remove→Add pairs over even keys: size-stable
// against a list preloaded with the same keys, so node free lists
// recycle perfectly.
func steadyBatch(n int) []pendingOp {
	batch := make([]pendingOp, 0, 2*n)
	for i := 0; i < n; i++ {
		k := int64(2 * i)
		batch = append(batch,
			pendingOp{op: wire.Op{ID: uint64(2 * i), Kind: wire.Remove, Key: k}},
			pendingOp{op: wire.Op{ID: uint64(2*i + 1), Kind: wire.Add, Key: k}},
		)
	}
	return batch
}

func TestApplyBatchAllocs(t *testing.T) {
	skipIfRace(t)
	for _, structure := range []string{StructList, StructQueue, StructStack} {
		t.Run(structure, func(t *testing.T) {
			be, err := newBackend(structure, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			s := &Server{cfg: Config{}.withDefaults(), epoch: time.Now()}
			sh := &shard{
				be:      be,
				batch:   make([]pendingOp, 0, wire.MaxOpsPerFrame),
				ops:     make([]wire.Op, 0, wire.MaxOpsPerFrame),
				results: make([]wire.Result, wire.MaxOpsPerFrame),
			}
			switch structure {
			case StructList:
				sh.batch = append(sh.batch, steadyBatch(64)...)
				// Preload the even keys so removals in the steady batch
				// always find their node.
				pre := make([]wire.Op, 64)
				out := make([]wire.Result, 64)
				for i := range pre {
					pre[i] = wire.Op{Kind: wire.Add, Key: int64(2 * i)}
				}
				be.ApplyBatch(pre, out, nil)
			case StructQueue:
				for i := 0; i < 64; i++ {
					sh.batch = append(sh.batch,
						pendingOp{op: wire.Op{Kind: wire.Enqueue, Key: int64(i)}},
						pendingOp{op: wire.Op{Kind: wire.Dequeue}},
					)
				}
			case StructStack:
				for i := 0; i < 64; i++ {
					sh.batch = append(sh.batch,
						pendingOp{op: wire.Op{Kind: wire.Push, Key: int64(i)}},
						pendingOp{op: wire.Op{Kind: wire.Pop}},
					)
				}
			}
			s.applyBatch(sh, false) // warm scratch and free lists
			avg := testing.AllocsPerRun(100, func() {
				s.applyBatch(sh, false)
			})
			if avg != 0 {
				t.Errorf("applyBatch(%s) steady state: %.1f allocs/op, want 0", structure, avg)
			}
			for i := range sh.batch {
				if sh.results[i].Status != wire.StatusOK {
					t.Fatalf("op %d: status %v", i, sh.results[i].Status)
				}
			}
		})
	}
}

// TestApplyBatchOrderedAllocs pins the ordered combiner path: once the
// arena and sort scratch have grown to the batch's high-water mark, a
// pass mixing point ops, range scans and extremum pops must not
// allocate either — the scan values live in the shard arena, and the
// per-delivery copies happen outside the pinned window.
func TestApplyBatchOrderedAllocs(t *testing.T) {
	skipIfRace(t)
	be, err := newBackend(StructList, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{cfg: Config{}.withDefaults(), epoch: time.Now()}
	sh := &shard{
		be:      be,
		batch:   make([]pendingOp, 0, wire.MaxOpsPerFrame),
		ops:     make([]wire.Op, 0, wire.MaxOpsPerFrame),
		results: make([]wire.Result, wire.MaxOpsPerFrame),
	}
	pre := make([]wire.Op, 128)
	out := make([]wire.Result, 128)
	for i := range pre {
		pre[i] = wire.Op{Kind: wire.Add, Key: int64(2 * i)}
	}
	be.ApplyBatch(pre, out, nil)
	// Size-stable mix: each round pops the extremes and re-adds them,
	// with scans and neighbor queries interleaved.
	sh.batch = append(sh.batch,
		pendingOp{op: wire.Op{ID: 1, Kind: wire.PopMin}},
		pendingOp{op: wire.Op{ID: 2, Kind: wire.PopMax}},
		pendingOp{op: wire.Op{ID: 3, Kind: wire.Add, Key: 0}},
		pendingOp{op: wire.Op{ID: 4, Kind: wire.Add, Key: 254}},
		pendingOp{op: wire.Op{ID: 5, Kind: wire.RangeScan, Key: 10, Hi: 90, Limit: 16}},
		pendingOp{op: wire.Op{ID: 6, Kind: wire.Pred, Key: 100}},
		pendingOp{op: wire.Op{ID: 7, Kind: wire.Succ, Key: 100}},
		pendingOp{op: wire.Op{ID: 8, Kind: wire.RangeScan, Key: 100, Hi: 200, Limit: 32}},
		pendingOp{op: wire.Op{ID: 9, Kind: wire.Contains, Key: 50}},
	)
	s.applyBatch(sh, false) // warm arena and sort scratch
	avg := testing.AllocsPerRun(100, func() {
		s.applyBatch(sh, false)
	})
	if avg != 0 {
		t.Errorf("ordered applyBatch steady state: %.1f allocs/op, want 0", avg)
	}
	for i := range sh.batch {
		if sh.results[i].Status != wire.StatusOK {
			t.Fatalf("op %d: status %v", i, sh.results[i].Status)
		}
	}
	if n := len(sh.results[4].Values); n != 16 {
		t.Fatalf("scan returned %d values, want 16", n)
	}
}

func TestSampleHitAllocs(t *testing.T) {
	skipIfRace(t)
	c := &conn{rng: 0x9e3779b97f4a7c15}
	var hits int
	avg := testing.AllocsPerRun(1000, func() {
		if c.sampleHit(1 << 60) {
			hits++
		}
	})
	if avg != 0 {
		t.Errorf("sampleHit: %.1f allocs/op, want 0", avg)
	}
}

func TestSpanComponentsAllocs(t *testing.T) {
	skipIfRace(t)
	sp := &span{start: 1, pub: 2, pick: 3, applyStart: 4, applied: 5, enc: 6, flush: 7}
	var total int64
	avg := testing.AllocsPerRun(1000, func() {
		for _, v := range sp.components() {
			total += v
		}
	})
	if avg != 0 {
		t.Errorf("span.components: %.1f allocs/op, want 0", avg)
	}
}
