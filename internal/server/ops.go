package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"

	"pimds/internal/buildinfo"
	"pimds/internal/obs"
)

// OpsHandler is the server's live introspection surface, mounted by
// cmd/pimserve on the -ops-addr listener:
//
//	/metrics          Prometheus text exposition of the registry
//	/metrics.json     the JSON snapshot (same document as -metrics)
//	/metrics/history  windowed per-interval deltas (see Config.WindowTick)
//	/healthz          rule-driven health verdict; 503 when not ready
//	/buildinfo        version, git revision and toolchain of this binary
//	/slow             slow-request log as JSON (see Config.SlowThreshold)
//	/trace            finished spans as Chrome trace-event JSON
//	/debug/pprof/     the standard Go profiler endpoints
//
// Every endpoint sets an explicit Content-Type and reads a consistent
// snapshot; scraping during a graceful drain is safe and race-free
// (/healthz flips to "draining" with 503 for the drain's duration).
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := s.cfg.Reg.WritePrometheus(w, ShardPromNamer); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/metrics.json", MetricsHandler(s.cfg.Reg))
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.win.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		h := s.Health()
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := buildinfo.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			ThresholdNS int64        `json:"threshold_ns"`
			Spans       []SpanRecord `json:"spans"`
		}{s.tr.slowThreshold, s.SlowRequests()})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ShardPromNamer maps the registry's slash-separated names onto
// Prometheus families, folding the per-shard series
// server/shard/NNN/<metric> into one server_shard_<metric> family with
// a shard label so dashboards aggregate across shards naturally.
func ShardPromNamer(name string) (string, []obs.PromLabel, bool) {
	if rest, ok := strings.CutPrefix(name, "server/shard/"); ok {
		shard, metric, found := strings.Cut(rest, "/")
		if found {
			fam, _, _ := obs.PromSanitize("server/shard/" + metric)
			label := strings.TrimLeft(shard, "0")
			if label == "" {
				label = "0"
			}
			return fam, []obs.PromLabel{{Name: "shard", Value: label}}, true
		}
	}
	return obs.PromSanitize(name)
}
