package server

// RotateOnce forces one window rotation and health re-evaluation, so
// tests can close window intervals deterministically instead of
// waiting out the ticker.
//
//pimvet:rotator test-only deterministic rotation
func (s *Server) RotateOnce() { s.rotateOnce() }

// RecoverForTest runs WAL recovery (snapshot restore + log replay +
// pipeline start) without a listener, so tests can rebuild state and
// inspect it directly.
func (s *Server) RecoverForTest() error { return s.recoverWAL() }

// StateDumps returns every shard's canonical state dump. Only
// meaningful at quiescence (after Shutdown, or after RecoverForTest
// with no traffic).
func (s *Server) StateDumps() [][]int64 {
	dumps := make([][]int64, len(s.shards))
	for i, sh := range s.shards {
		dumps[i] = sh.be.AppendState(nil)
	}
	return dumps
}

// WALSeqs returns every shard's WAL sequence number, for tests
// asserting on snapshot/replay bookkeeping. Quiescence only.
func (s *Server) WALSeqs() []uint64 {
	seqs := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		seqs[i] = sh.walSeq
	}
	return seqs
}
