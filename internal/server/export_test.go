package server

// RotateOnce forces one window rotation and health re-evaluation, so
// tests can close window intervals deterministically instead of
// waiting out the ticker.
//
//pimvet:rotator test-only deterministic rotation
func (s *Server) RotateOnce() { s.rotateOnce() }
