package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pimds/internal/obs"
	"pimds/internal/server"
	"pimds/internal/wire"
)

// get scrapes one ops route in-process.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestOpsContentTypes asserts every ops route declares an explicit
// Content-Type: Prometheus exposition text on /metrics, JSON on the
// rest.
func TestOpsContentTypes(t *testing.T) {
	srv, _ := startServer(t, server.Config{
		Structure: server.StructSkip, Reg: obs.NewRegistry(),
		WindowTick: time.Hour, // rotation forced by tests, never by ticker
	})
	h := srv.OpsHandler()
	routes := map[string]string{
		"/metrics":         "text/plain; version=0.0.4",
		"/metrics.json":    "application/json",
		"/metrics/history": "application/json",
		"/healthz":         "application/json",
		"/buildinfo":       "application/json",
		"/slow":            "application/json",
		"/trace":           "application/json",
	}
	for path, want := range routes {
		rec := get(t, h, path)
		if ct := rec.Header().Get("Content-Type"); ct != want {
			t.Errorf("%s: Content-Type %q, want %q", path, ct, want)
		}
		if path != "/healthz" && rec.Code != http.StatusOK {
			t.Errorf("%s: status %d", path, rec.Code)
		}
	}
}

// TestMetricsHistoryEndpoint drives real traffic, forces rotations,
// and asserts the history document: at least two tiers, per-interval
// counter deltas in the finest tier, and byte-identical JSON across
// scrapes of the same window state.
func TestMetricsHistoryEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Shards: 2, KeySpace: 1 << 10,
		Reg: reg, WindowTick: time.Hour,
	})
	c := dial(t, addr)
	const perRound = 10
	for round := 0; round < 3; round++ {
		for i := 0; i < perRound; i++ {
			if r := c.do(t, wire.Add, int64(round*perRound+i)); r.Status != wire.StatusOK {
				t.Fatalf("add: %+v", r)
			}
		}
		srv.RotateOnce()
	}

	h := srv.OpsHandler()
	first := get(t, h, "/metrics/history")
	second := get(t, h, "/metrics/history")
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("identical window states served different /metrics/history bytes")
	}

	var doc obs.History
	if err := json.Unmarshal(first.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid history JSON: %v", err)
	}
	if doc.Seq != 3 {
		t.Errorf("history seq %d, want 3", doc.Seq)
	}
	if len(doc.Tiers) < 2 {
		t.Fatalf("history has %d tiers, want ≥ 2", len(doc.Tiers))
	}
	fine := doc.Tiers[0]
	if len(fine.Samples) != 3 {
		t.Fatalf("finest tier holds %d samples, want 3", len(fine.Samples))
	}
	for i, s := range fine.Samples {
		if got := s.Counters["server/ops/total"]; got != perRound {
			t.Errorf("sample %d: ops delta %d, want %d", i, got, perRound)
		}
		if hs := s.Histograms["server/op_latency_ns"]; hs.Count != perRound {
			t.Errorf("sample %d: latency delta count %d, want %d", i, hs.Count, perRound)
		}
	}
}

// healthDoc mirrors the /healthz JSON for assertions.
type healthDoc struct {
	Status    string `json:"status"`
	Ready     bool   `json:"ready"`
	WindowSeq uint64 `json:"window_seq"`
	Rules     []struct {
		Rule   string `json:"rule"`
		State  string `json:"state"`
		Reason string `json:"reason"`
	} `json:"rules"`
}

func scrapeHealth(t *testing.T, h http.Handler) (healthDoc, int) {
	t.Helper()
	rec := get(t, h, "/healthz")
	var doc healthDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid /healthz JSON: %v\n%s", err, rec.Body.Bytes())
	}
	return doc, rec.Code
}

// TestHealthzVerdictAndDrainFlip asserts the /healthz lifecycle: ok
// with the full default rule set while serving, and flipped to
// draining with 503 once Shutdown begins.
func TestHealthzVerdictAndDrainFlip(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Structure: server.StructSkip, Reg: obs.NewRegistry(),
		WindowTick: time.Hour,
	})
	h := srv.OpsHandler()

	c := dial(t, addr)
	for i := 0; i < 20; i++ {
		c.do(t, wire.Add, int64(i))
	}
	srv.RotateOnce()

	doc, code := scrapeHealth(t, h)
	if code != http.StatusOK || doc.Status != "ok" || !doc.Ready {
		t.Fatalf("serving healthz = %+v (code %d), want ok/ready/200", doc, code)
	}
	if doc.WindowSeq != 1 {
		t.Errorf("window seq %d, want 1", doc.WindowSeq)
	}
	if len(doc.Rules) != len(server.DefaultHealthRules(0)) {
		t.Fatalf("healthz carries %d rules, want %d", len(doc.Rules), len(server.DefaultHealthRules(0)))
	}
	for _, r := range doc.Rules {
		if r.State != "ok" {
			t.Errorf("rule %s = %s (%s), want ok on an idle server", r.Rule, r.State, r.Reason)
		}
	}

	srv.Shutdown()
	doc, code = scrapeHealth(t, h)
	if code != http.StatusServiceUnavailable || doc.Status != "draining" || doc.Ready {
		t.Fatalf("drained healthz = %+v (code %d), want draining/not-ready/503", doc, code)
	}
}

// TestHealthzWithoutWindow: WindowTick off still serves /healthz (ok,
// zero rules) and /metrics/history (empty history) — observability
// degrades to absent, never to a panic.
func TestHealthzWithoutWindow(t *testing.T) {
	srv, _ := startServer(t, server.Config{Structure: server.StructList})
	h := srv.OpsHandler()
	doc, code := scrapeHealth(t, h)
	if code != http.StatusOK || doc.Status != "ok" || !doc.Ready || len(doc.Rules) != 0 {
		t.Fatalf("windowless healthz = %+v (code %d)", doc, code)
	}
	rec := get(t, h, "/metrics/history")
	var hist obs.History
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatalf("invalid history JSON: %v", err)
	}
	if hist.Seq != 0 || len(hist.Tiers) != 0 {
		t.Errorf("windowless history = %+v, want empty", hist)
	}
}

// TestBuildinfoEndpoint asserts /buildinfo serves the binary's build
// document.
func TestBuildinfoEndpoint(t *testing.T) {
	srv, _ := startServer(t, server.Config{Structure: server.StructList})
	rec := get(t, srv.OpsHandler(), "/buildinfo")
	var doc struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
		Module    string `json:"module"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid /buildinfo JSON: %v", err)
	}
	if doc.Version == "" || doc.GoVersion == "" {
		t.Errorf("buildinfo missing fields: %+v", doc)
	}
	if doc.Module != "pimds" {
		t.Errorf("buildinfo module %q, want pimds", doc.Module)
	}
}
