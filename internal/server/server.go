// Package server is the networked data-structure server behind
// cmd/pimserve: it owns one sequential structure per shard and serves
// set/queue/stack operations over the wire protocol to many TCP
// clients at once.
//
// The concurrency design is flat combining (Hendler et al., SPAA
// 2010) transplanted onto a server: per-connection reader goroutines
// decode operations and *publish* them into a bounded per-shard queue
// (the publication list), and a single combiner goroutine per shard
// drains whole batches and executes them against the shard's
// sequential structure — no locks on the structures, one execution
// context per shard, exactly the pattern the paper's PIM structures
// use with one PIM core per vault. Backpressure is structural: when a
// shard queue fills, readers block, stop draining their sockets, and
// TCP pushes back on the clients.
//
// Shutdown is a drain, not an abort: accepted operations are executed
// and their responses flushed before connections close, so no
// acknowledged operation is ever lost (the e2e tests assert this).
package server

//pimvet:allow-file determinism: the network server runs on real wall-clock time by design — connection deadlines, combine windows and latency metrics measure the host, not simulated virtual time; nothing here feeds back into the simulator

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimds/internal/obs"
	"pimds/internal/obs/health"
	"pimds/internal/wal"
	"pimds/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Structure selects the data structure: list, skip, hash (sets
	// keyed in [0, KeySpace)), queue or stack.
	Structure string

	// Shards is the number of independent combiner shards. Sets are
	// range-partitioned across shards (shard i owns keys
	// [i·KeySpace/Shards, (i+1)·KeySpace/Shards)), mirroring the
	// paper's partitioned skip-list; queue and stack are inherently
	// serial and require Shards == 1. Default 1.
	Shards int

	// KeySpace is the exclusive key bound for set structures; keys
	// outside [0, KeySpace) get StatusBadKey. Default 1<<16.
	KeySpace int64

	// QueueDepth is the capacity of each shard's pending-op queue and
	// of each connection's response queue. A full shard queue blocks
	// readers (backpressure). Default 1024.
	QueueDepth int

	// BatchMax caps the operations one combiner pass executes.
	// Default wire.MaxOpsPerFrame.
	BatchMax int

	// CombineWait is how long a combiner lingers for more operations
	// after its greedy drain came up short of BatchMax. Zero (the
	// default) never waits: a pass serves whatever has accumulated,
	// which already yields batch sizes ≈ the number of concurrently
	// publishing connections under load. Setting a small window trades
	// latency for bigger batches on lightly loaded shards.
	CombineWait time.Duration

	// IdleTimeout closes connections with no complete frame for this
	// long. Zero disables the deadline.
	IdleTimeout time.Duration

	// WriteTimeout bounds one response-frame write to a slow client;
	// on expiry the connection is marked failed and its remaining
	// responses are discarded so combiners never stall on a dead peer.
	// Default 30s.
	WriteTimeout time.Duration

	// Seed perturbs the skip-list tower generators. Default 1.
	Seed int64

	// TraceSample is the fraction of request frames ([0, 1]) the server
	// samples for span recording on its own initiative. Zero traces
	// nothing locally, but clients can still force individual frames
	// into the sample via the traced-frame Sampled bit. Sampling is
	// decided per frame in the reader with a per-connection generator,
	// so the unsampled fast path costs one comparison.
	TraceSample float64

	// TraceRing is the per-shard capacity of the finished-span ring
	// buffers behind TraceSpans and the ops endpoint's /trace export.
	// Default 256.
	TraceRing int

	// SlowThreshold, when positive, logs every sampled request whose
	// end-to-end latency meets it into the slow-request log (bounded,
	// most recent kept) served at the ops endpoint's /slow.
	SlowThreshold time.Duration

	// Reg receives server metrics (nil disables instrumentation).
	Reg *obs.Registry

	// WindowTick enables windowed metrics and the health engine: a
	// dedicated ticker goroutine rotates Reg's state into tiered delta
	// rings (obs.DefaultTiers(WindowTick) unless WindowTiers overrides)
	// every WindowTick and re-evaluates the health rules on each
	// rotation. Zero disables the window: /metrics/history serves an
	// empty history and /healthz reports only drain state.
	WindowTick time.Duration

	// WindowTiers overrides the window's retention tiers. Nil selects
	// obs.DefaultTiers(WindowTick).
	WindowTiers []obs.Tier

	// HealthRules overrides the rule set evaluated on every rotation.
	// Nil selects DefaultHealthRules(0).
	HealthRules []health.Rule

	// Log, when non-nil, records every applied operation for
	// linearizability checking (testing/auditing only).
	Log *OpLog

	// WALDir enables durability: every combiner batch's mutating ops
	// are staged as one write-ahead-log record inside the combining
	// window, and the batch's acks are released only after the record
	// is durable under the Fsync policy. On start the server restores
	// the newest snapshot in the directory, replays the log tail, and
	// holds /healthz at "recovering" until done. Empty disables the
	// WAL entirely.
	WALDir string

	// Fsync selects when WAL records reach stable storage:
	// FsyncAlways (per record), FsyncBatch (per writer pass — the
	// default), or FsyncOff (kernel only). Meaningful only with WALDir.
	Fsync string

	// SnapshotEvery, when positive, takes a periodic snapshot of every
	// shard's state and truncates the log behind it. Zero snapshots
	// only at clean shutdown. Meaningful only with WALDir.
	SnapshotEvery time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax == 0 || c.BatchMax > wire.MaxOpsPerFrame {
		c.BatchMax = wire.MaxOpsPerFrame
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Fsync == "" {
		c.Fsync = FsyncBatch
	}
	return c
}

// pendingOp is one published operation awaiting its combiner.
type pendingOp struct {
	op    wire.Op
	conn  *conn
	start int64 // ns since server epoch, stamped at decode
	sp    *span // non-nil only for sampled requests
}

// delivery is one result handed from a combiner (or the reject path)
// to a connection's writer, carrying the span along so the writer can
// stamp encode/flush and finish it.
type delivery struct {
	res wire.Result
	sp  *span
}

// conn is one client connection. The reader publishes ops and tracks
// them in inflight; combiners deliver results into out; the writer
// drains out into response frames. out is closed (exactly once) only
// after the reader has exited and every inflight op has been
// delivered, which is what makes drain lossless.
type conn struct {
	id  int
	nc  net.Conn
	out chan delivery
	rng uint64 // trace-sampling xorshift64 state; reader goroutine only

	inflight sync.WaitGroup
	closeOut sync.Once
	failed   atomic.Bool // writer hit an error; discard further output
}

// deliver hands one result to the connection's writer. Blocks when the
// writer is behind (bounded by WriteTimeout failing the conn).
func (c *conn) deliver(d delivery) {
	c.out <- d
}

// sampleHit advances the connection's private xorshift64 state and
// reports whether this frame falls inside the sample. Only the reader
// goroutine calls it, so the state needs no synchronization; the
// unsampled path is three shifts and a compare, no allocation — this is
// the per-frame cost tracing adds to untraced traffic, so it is pinned.
//
//pimvet:allocfree //pimvet:nonblocking
func (c *conn) sampleHit(threshold uint64) bool {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x <= threshold
}

// Server is one pimserve instance. Create with New, run with Serve,
// stop with Shutdown.
type Server struct {
	cfg    Config
	caps   Capability
	shards []*shard
	epoch  time.Time
	tr     *tracer

	mu       sync.Mutex
	ln       net.Listener
	conns    []*conn
	draining atomic.Bool

	readers   sync.WaitGroup
	shardWG   sync.WaitGroup
	writers   sync.WaitGroup
	drainDone chan struct{}
	shutdown  sync.Once
	connSeq   atomic.Int64

	// durability (nil/false when Config.WALDir is empty)
	wal        *walState
	walOnce    sync.Once
	recovering atomic.Bool

	// windowed metrics + health (nil/idle when Config.WindowTick is 0)
	win        *obs.Window
	eng        *health.Engine
	healthMu   sync.Mutex
	verdict    health.Verdict
	windowStop chan struct{}
	windowDone chan struct{}

	// metrics (nil-safe through obs)
	connsOpen  *obs.Gauge
	connsTotal *obs.Counter
	framesIn   *obs.Counter
	framesOut  *obs.Counter
	opsTotal   *obs.Counter
	opsBad     *obs.Counter
	opLatency  *obs.Histogram
}

// shard is one combiner: a bounded publication queue plus the
// sequential structure only its loop touches. batch/ops/results are the
// combiner's scratch, preallocated at BatchMax in New so a combine pass
// allocates nothing; only the combiner goroutine touches them. arena is
// the pass-local store for range-scan values: backends append into it,
// results reference segments of it, and the combiner copies those
// segments out before the next pass truncates it, so its capacity
// amortizes to the largest scan pass.
type shard struct {
	idx int
	in  chan pendingOp
	be  backend

	batch   []pendingOp
	ops     []wire.Op
	results []wire.Result
	arena   []int64

	// durability (combiner goroutine only, except walFree's recycling
	// side; all nil/zero when the WAL is off)
	walSeq  uint64          // sequence of the last staged record
	stage   *walCommit      // commit being filled by the current pass
	walFree chan *walCommit // recycled commits, the staging backpressure
	ctl     chan func()     // combiner-context control (snapshot dumps)

	batchSize  *obs.Histogram
	queueDepth *obs.Gauge
	combines   *obs.Counter
	scanBatch  *obs.Histogram
}

// New builds a server from cfg.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("server: shards must be ≥ 1, got %d", cfg.Shards)
	}
	if (cfg.Structure == StructQueue || cfg.Structure == StructStack) && cfg.Shards != 1 {
		return nil, fmt.Errorf("server: structure %q is inherently serial; use shards=1, got %d", cfg.Structure, cfg.Shards)
	}
	if cfg.KeySpace < int64(cfg.Shards) {
		return nil, fmt.Errorf("server: key space %d smaller than %d shards", cfg.KeySpace, cfg.Shards)
	}
	caps, ok := LookupCapability(cfg.Structure)
	if !ok {
		return nil, fmt.Errorf("server: unknown structure %q (want %s)",
			cfg.Structure, strings.Join(Structures(), "|"))
	}
	s := &Server{
		cfg:       cfg,
		caps:      caps,
		epoch:     time.Now(),
		drainDone: make(chan struct{}),

		connsOpen:  cfg.Reg.Gauge("server/conns/open"),
		connsTotal: cfg.Reg.Counter("server/conns/total"),
		framesIn:   cfg.Reg.Counter("server/frames/in"),
		framesOut:  cfg.Reg.Counter("server/frames/out"),
		opsTotal:   cfg.Reg.Counter("server/ops/total"),
		opsBad:     cfg.Reg.Counter("server/ops/rejected"),
		opLatency:  cfg.Reg.Histogram("server/op_latency_ns"),
	}
	s.tr = newTracer(cfg, s.epoch)
	if cfg.WALDir != "" {
		w, err := newWALState(cfg)
		if err != nil {
			return nil, err
		}
		s.wal = w
		// Not ready until Serve's recovery pass completes: /healthz
		// reports "recovering" (503) from the very first scrape.
		s.recovering.Store(true)
	}
	for i := 0; i < cfg.Shards; i++ {
		be, err := newBackend(cfg.Structure, i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			idx:        i,
			in:         make(chan pendingOp, cfg.QueueDepth),
			be:         be,
			batch:      make([]pendingOp, 0, cfg.BatchMax),
			ops:        make([]wire.Op, 0, cfg.BatchMax),
			results:    make([]wire.Result, cfg.BatchMax),
			batchSize:  cfg.Reg.Histogram(fmt.Sprintf("server/shard/%03d/batch_size", i)),
			queueDepth: cfg.Reg.Gauge(fmt.Sprintf("server/shard/%03d/queue_depth", i)),
			combines:   cfg.Reg.Counter(fmt.Sprintf("server/shard/%03d/combines", i)),
			scanBatch:  cfg.Reg.Histogram(fmt.Sprintf("server/shard/%03d/scan_batch", i)),
		}
		if s.wal != nil {
			sh.ctl = make(chan func())
			sh.walFree = make(chan *walCommit, walCommitsPerShard)
			for j := 0; j < walCommitsPerShard; j++ {
				sh.walFree <- &walCommit{
					sh:      sh,
					buf:     make([]byte, 0, wal.RecordCap(cfg.BatchMax)),
					batch:   make([]pendingOp, 0, cfg.BatchMax),
					results: make([]wire.Result, 0, cfg.BatchMax),
				}
			}
		}
		s.shards = append(s.shards, sh)
		s.shardWG.Add(1)
		go s.combineLoop(sh)
	}
	if cfg.WindowTick > 0 {
		tiers := cfg.WindowTiers
		if tiers == nil {
			tiers = obs.DefaultTiers(cfg.WindowTick)
		}
		win, err := obs.NewWindow(cfg.Reg, tiers)
		if err != nil {
			return nil, err
		}
		rules := cfg.HealthRules
		if rules == nil {
			rules = DefaultHealthRules(0)
		}
		s.win = win
		s.eng = health.NewEngine(rules...)
		s.windowStop = make(chan struct{})
		s.windowDone = make(chan struct{})
		go s.rotateLoop(cfg.WindowTick)
	}
	return s, nil
}

// now returns nanoseconds since the server epoch (monotonic).
func (s *Server) now() int64 { return time.Since(s.epoch).Nanoseconds() }

// shardFor routes a set key (already validated in [0, KeySpace)) to
// its range partition.
func (s *Server) shardFor(key int64) *shard {
	i := int(key * int64(len(s.shards)) / s.cfg.KeySpace)
	return s.shards[i]
}

// shardUpper is the exclusive upper key bound of shard i's partition.
func (s *Server) shardUpper(i int) int64 {
	return int64(i+1) * s.cfg.KeySpace / int64(len(s.shards))
}

// Serve accepts connections on ln until Shutdown (returning nil after
// the drain completes) or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	draining := s.draining.Load()
	s.mu.Unlock()
	if draining {
		// Shutdown ran before Serve stored the listener and so could not
		// close it; close it here or Accept would block forever on a
		// drained server.
		ln.Close()
		<-s.drainDone
		return nil
	}
	// Recover before the first Accept: no client can connect — and so
	// no op can be published — until the restored state and the log
	// tail agree. /healthz (on the ops listener) serves "recovering"
	// meanwhile.
	if err := s.recoverWAL(); err != nil {
		return err
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				<-s.drainDone
				return nil
			}
			return err
		}
		c := &conn{
			id:  int(s.connSeq.Add(1)),
			nc:  nc,
			out: make(chan delivery, s.cfg.QueueDepth),
		}
		// Seed the sampler from the connection id via a splitmix64
		// round: distinct nonzero streams per connection without any
		// shared generator for readers to contend on.
		z := uint64(c.id)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		z ^= z >> 30
		z *= 0x94d049bb133111eb
		c.rng = z | 1
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns = append(s.conns, c)
		s.readers.Add(1)
		s.writers.Add(1)
		s.mu.Unlock()
		s.connsTotal.Inc()
		s.connsOpen.Add(1)
		go s.readLoop(c)
		go s.writeLoop(c)
	}
}

// Addr returns the listen address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// readLoop decodes request frames and publishes their ops to shards.
// It exits on connection error, idle timeout, malformed input, or
// drain; only complete frames ever publish ops, so a teardown
// mid-frame loses nothing that could have been acknowledged.
func (s *Server) readLoop(c *conn) {
	defer func() {
		s.readers.Done()
		// Close the response queue only after every published op has
		// been executed and delivered; the writer then flushes the
		// tail and closes the socket.
		go func() {
			c.inflight.Wait()
			c.closeOut.Do(func() { close(c.out) })
		}()
	}()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	var ops []wire.Op
	for {
		if s.draining.Load() {
			return
		}
		if t := s.cfg.IdleTimeout; t > 0 {
			c.nc.SetReadDeadline(time.Now().Add(t))
		}
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = payload[:0]
		tFrame := s.now()
		var tc wire.TraceContext
		ops, tc, err = wire.DecodeRequestAny(payload, ops[:0])
		if err != nil {
			return
		}
		s.framesIn.Inc()
		// One sampling decision per frame: the client's Sampled bit
		// forces it, otherwise the connection-local generator draws.
		// Everything span-shaped stays behind this flag.
		sampled := tc.Sampled
		if !sampled && s.tr.sampleThreshold > 0 {
			sampled = c.sampleHit(s.tr.sampleThreshold)
		}
		traceID := tc.TraceID
		if sampled && traceID == 0 {
			traceID = s.tr.nextTraceID()
		}
		start := s.now()
		for _, op := range ops {
			if !s.caps.Supports(op.Kind) {
				s.reject(c, wire.Result{ID: op.ID, Status: wire.StatusBadKind})
				continue
			}
			if s.caps.SerialOnly(op.Kind) && len(s.shards) > 1 {
				// Global queries (Pred/Succ/PopMin/PopMax) would need a
				// cross-shard merge; until that lands (ROADMAP item 5)
				// they are served only by single-shard servers.
				s.reject(c, wire.Result{ID: op.ID, Status: wire.StatusBadKind})
				continue
			}
			if s.caps.Keyed(op.Kind) && (op.Key < 0 || op.Key >= s.cfg.KeySpace) {
				s.reject(c, wire.Result{ID: op.ID, Status: wire.StatusBadKey})
				continue
			}
			sh := s.shards[0]
			if s.caps.Keyed(op.Kind) {
				sh = s.shardFor(op.Key)
			}
			if op.Kind == wire.RangeScan {
				// Clamp Hi to the owning shard's bound so one scan never
				// crosses a combiner — the pagination cursor (== the
				// clamped Hi on a complete scan) walks the client into
				// the next shard naturally — and bound the per-scan
				// cardinality (a Limit of 0 requests the maximum).
				if hi := s.shardUpper(sh.idx); op.Hi > hi {
					op.Hi = hi
				}
				if op.Limit == 0 || op.Limit > wire.MaxScanLimit {
					op.Limit = wire.MaxScanLimit
				}
			}
			var sp *span
			if sampled {
				sp = &span{traceID: traceID, opID: op.ID, kind: op.Kind,
					conn: c.id, shard: sh.idx, start: tFrame}
				s.tr.sampled.Inc()
			}
			c.inflight.Add(1)
			if sp != nil {
				sp.pub = s.now()
			}
			sh.in <- pendingOp{op: op, conn: c, start: start, sp: sp}
		}
	}
}

// reject answers an invalid op directly from the reader, bypassing the
// shards.
func (s *Server) reject(c *conn, res wire.Result) {
	s.opsBad.Inc()
	c.inflight.Add(1)
	c.deliver(delivery{res: res})
	c.inflight.Done()
}

// combineLoop is one shard's combiner: it blocks for the first pending
// op, greedily drains the rest of the queue (optionally lingering
// CombineWait), executes the whole batch against the sequential
// structure in one pass, and delivers the results.
func (s *Server) combineLoop(sh *shard) {
	defer s.shardWG.Done()
	traced := false // any span in the current batch
	// take admits one op to the batch, stamping sampled ops' pickup
	// time: everything before this instant is queue wait, everything
	// until the batch executes is combine wait.
	take := func(p pendingOp) {
		if p.sp != nil {
			p.sp.pick = s.now()
			traced = true
		}
		sh.batch = append(sh.batch, p)
	}
	for {
		var p pendingOp
		var ok bool
		if sh.ctl == nil {
			p, ok = <-sh.in
		} else {
			// Durability adds one combiner-context control channel: the
			// snapshot scheduler borrows the combiner between batches to
			// dump the shard's state at a consistent point in its serial
			// order.
			select {
			case p, ok = <-sh.in:
			case f := <-sh.ctl:
				f()
				continue
			}
		}
		if !ok {
			return
		}
		sh.batch, traced = sh.batch[:0], false
		take(p)
	gather:
		for len(sh.batch) < s.cfg.BatchMax {
			select {
			case p, ok := <-sh.in:
				if !ok {
					break gather
				}
				take(p)
			default:
				break gather
			}
		}
		if w := s.cfg.CombineWait; w > 0 && len(sh.batch) < s.cfg.BatchMax {
			timer := time.NewTimer(w)
		linger:
			for len(sh.batch) < s.cfg.BatchMax {
				select {
				case p, ok := <-sh.in:
					if !ok {
						break linger
					}
					take(p)
				case <-timer.C:
					break linger
				}
			}
			timer.Stop()
		}
		var cm *walCommit
		if s.wal != nil {
			// Acquire the staging commit before the pinned window fills
			// it. Blocking here — the writer holds both of the shard's
			// commits — is the WAL's backpressure, upstream of the window.
			cm = <-sh.walFree
			sh.stage = cm
		}
		end := s.applyBatch(sh, traced)
		sh.stage = nil

		// Scan results reference segments of the shard's arena, which
		// the next pass truncates and refills; copy them out here — in
		// the loop, not the pinned combining window, so the combiner has
		// already stamped completion and the copies are plain heap
		// slices the writer (and op log) can hold indefinitely. Point
		// results carry no values and skip this entirely.
		scans := int64(0)
		for i := range sh.results {
			if sh.results[i].Values != nil {
				sh.results[i].Values = append([]int64(nil), sh.results[i].Values...)
				scans++
			}
		}
		if scans > 0 {
			sh.scanBatch.Observe(scans)
		}

		s.cfg.Log.record(sh.batch, sh.results, end)
		sh.combines.Inc()
		sh.batchSize.Observe(int64(len(sh.batch)))
		sh.queueDepth.Set(int64(len(sh.in)))
		s.opsTotal.Add(uint64(len(sh.batch)))
		if cm != nil {
			// Durable path: the WAL writer releases the acks once the
			// staged record is on disk. Every batch rides the pipeline —
			// even one that staged nothing — so an ack for a read that
			// observed a write always follows that write's sync.
			s.commit(sh, cm, end)
			continue
		}
		for i := range sh.batch {
			p := &sh.batch[i]
			s.opLatency.Observe(end - p.start)
			if p.sp != nil {
				p.sp.applied = end
			}
			p.conn.deliver(delivery{res: sh.results[i], sp: p.sp})
			p.conn.inflight.Done()
		}
	}
}

// applyBatch executes the gathered batch against the shard's sequential
// structure: it stamps sampled ops' apply-start, packs the ops into the
// shard's scratch, runs one ApplyBatch pass, and returns the completion
// stamp. This is the combining window itself — every published op on
// the shard waits for it — so it must neither allocate (GC pauses here
// stall the whole shard) nor touch anything that can park the combiner
// goroutine; channel hand-offs stay in combineLoop on either side.
//
//pimvet:allocfree //pimvet:nonblocking
//pimvet:window
func (s *Server) applyBatch(sh *shard, traced bool) int64 {
	if traced {
		tApply := s.now()
		for i := range sh.batch {
			if sp := sh.batch[i].sp; sp != nil {
				sp.applyStart = tApply
			}
		}
	}
	sh.ops = sh.ops[:0]
	for i := range sh.batch {
		sh.ops = append(sh.ops, sh.batch[i].op)
	}
	sh.results = sh.results[:len(sh.batch)]
	sh.arena = sh.be.ApplyBatch(sh.ops, sh.results, sh.arena[:0])
	if sh.stage != nil {
		// Durability stages here, inside the window, but only as bytes
		// in a preallocated buffer: the file write and fsync belong to
		// the WAL writer goroutine (pimvet's window check enforces the
		// split).
		sh.stageRecord()
	}
	return s.now()
}

// closeGrace bounds how long a closing connection waits for the client
// to read its final responses and close its half of the socket.
const closeGrace = 5 * time.Second

// writeLoop drains a connection's results into batched response
// frames. After a write error the connection is failed: results keep
// draining (so combiners never block on a dead peer) but nothing more
// is sent.
func (s *Server) writeLoop(c *conn) {
	defer func() {
		// Close gracefully: a bare Close with unread request bytes in
		// the kernel buffer sends RST, which destroys responses still in
		// flight to the client — exactly the acknowledged-op loss the
		// drain contract forbids. Send FIN instead, then discard inbound
		// until the client closes (the reader has already exited, so the
		// socket is ours to drain).
		if cw, ok := c.nc.(interface{ CloseWrite() error }); ok && !c.failed.Load() {
			cw.CloseWrite()
			deadline := time.Now().Add(closeGrace)
			for {
				c.nc.SetReadDeadline(deadline)
				if _, err := io.Copy(io.Discard, c.nc); err == nil {
					break // client sent FIN
				} else if ne, ok := err.(net.Error); ok && ne.Timeout() && time.Now().Before(deadline) {
					continue // Shutdown poked the read deadline; re-arm ours
				}
				break
			}
		}
		c.nc.Close()
		s.connsOpen.Add(-1)
		s.writers.Done()
	}()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var buf []byte
	batch := make([]wire.Result, 0, wire.MaxOpsPerFrame)
	var spans, pending []*span // this frame's spans; encoded spans awaiting flush
	for {
		d, ok := <-c.out
		if !ok {
			// Tail flush: spans already encoded finish here iff their
			// bytes actually reached the socket.
			if err := bw.Flush(); err != nil || c.failed.Load() {
				s.tr.drop(len(pending))
			} else {
				s.finishFlushed(pending)
			}
			return
		}
		batch, spans = batch[:0], spans[:0]
		batch = append(batch, d.res)
		if d.sp != nil {
			spans = append(spans, d.sp)
		}
	gather:
		for len(batch) < wire.MaxOpsPerFrame {
			select {
			case d, ok := <-c.out:
				if !ok {
					break gather
				}
				batch = append(batch, d.res)
				if d.sp != nil {
					spans = append(spans, d.sp)
				}
			default:
				break gather
			}
		}
		if c.failed.Load() {
			s.tr.drop(len(spans) + len(pending))
			pending = pending[:0]
			continue
		}
		var nframes int
		buf, nframes, _ = wire.AppendResponses(buf[:0], batch)
		if len(spans) > 0 {
			tEnc := s.now()
			for _, sp := range spans {
				sp.enc = tEnc
			}
		}
		if t := s.cfg.WriteTimeout; t > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(t))
		}
		if _, err := bw.Write(buf); err != nil {
			c.failed.Store(true)
			s.tr.drop(len(spans) + len(pending))
			pending = pending[:0]
			continue
		}
		pending = append(pending, spans...)
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				c.failed.Store(true)
				s.tr.drop(len(pending))
				pending = pending[:0]
				continue
			}
			pending = s.finishFlushed(pending)
		}
		s.framesOut.Add(uint64(nframes))
	}
}

// finishFlushed closes every span whose response bytes just reached
// the socket, stamping one shared flush time, and returns the emptied
// reusable slice.
func (s *Server) finishFlushed(pending []*span) []*span {
	if len(pending) == 0 {
		return pending
	}
	tFlush := s.now()
	for _, sp := range pending {
		sp.flush = tFlush
		s.tr.finish(sp)
	}
	return pending[:0]
}

// Shutdown drains the server: it stops accepting, unblocks the
// readers, lets every shard execute its remaining queue, waits for the
// writers to flush every response, and only then closes the
// connections. Safe to call more than once; Serve returns nil once the
// drain completes.
func (s *Server) Shutdown() {
	s.shutdown.Do(func() {
		s.draining.Store(true)
		s.mu.Lock()
		ln := s.ln
		conns := append([]*conn(nil), s.conns...)
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		// Unblock readers stuck in Read; they exit without publishing
		// partial frames.
		for _, c := range conns {
			c.nc.SetReadDeadline(time.Now())
		}
		s.readers.Wait()
		// Stop the snapshot scheduler before the combiners: its dumps
		// borrow combiner context and its segment rolls ride the WAL
		// writer, so both peers must outlive it.
		s.mu.Lock()
		w := s.wal
		started := w != nil && w.started
		s.mu.Unlock()
		if started && w.snapStop != nil {
			close(w.snapStop)
			<-w.snapDone
		}
		// No more producers: close the publication queues, let the
		// combiners drain them dry.
		for _, sh := range s.shards {
			close(sh.in)
		}
		s.shardWG.Wait()
		// The combiners handed their last batches to the WAL writer;
		// close the commit pipeline and wait for the final sync — only
		// then has every op been acked and every conn's inflight count
		// reached zero.
		if started {
			close(w.commits)
			<-w.writerDone
		}
		// Every inflight op is delivered, so each conn's teardown
		// closes its out queue and its writer flushes and exits.
		s.writers.Wait()
		// Quiescent now: capture the drained state so the next start
		// restores a snapshot instead of replaying the whole log.
		if started {
			s.finalSnapshot()
		}
		// Stop window rotation last: /healthz and /metrics/history stay
		// scrape-safe for the whole drain (reporting "draining"), and no
		// rotation can race the registry once drainDone closes.
		if s.windowStop != nil {
			close(s.windowStop)
			<-s.windowDone
		}
		close(s.drainDone)
	})
}

// ShardLens returns each shard's element count. Only meaningful at
// quiescence (after Shutdown).
func (s *Server) ShardLens() []int {
	lens := make([]int, len(s.shards))
	for i, sh := range s.shards {
		lens[i] = sh.be.Len()
	}
	return lens
}
