package server

//pimvet:allow-file determinism: the rotation ticker paces observability collection on host wall-clock time by design; nothing here feeds back into simulated behaviour

import (
	"time"

	"pimds/internal/obs"
	"pimds/internal/obs/health"
)

// defaultP99Budget is the latency SLO the stock health rules assume
// when the caller does not set one: generous for a local structure
// server, tight enough that a stalled combiner or GC death-spiral
// trips it immediately.
const defaultP99Budget = 250 * time.Millisecond

// DefaultHealthRules is the stock rule set over the server's own
// metric names, evaluated on every window rotation:
//
//	p99-latency         server/op_latency_ns p99 over the last window
//	slo-burn            error-budget burn against the same p99 budget
//	queue-growth        per-shard queue depth growing monotonically
//	combining-collapse  mean batch size degrading to one op per pass
//	error-rate          rejected / total operations
//	wal-lag             p99 apply-to-durable-ack lag of the WAL pipeline
//
// p99Budget ≤ 0 selects the default budget. Idle windows evaluate ok
// on every rule — an unloaded server is healthy by definition.
func DefaultHealthRules(p99Budget time.Duration) []health.Rule {
	if p99Budget <= 0 {
		p99Budget = defaultP99Budget
	}
	return []health.Rule{
		health.QuantileCeiling{
			RuleName: "p99-latency", Metric: "server/op_latency_ns", Quantile: 0.99,
			Warn: p99Budget, Fail: 4 * p99Budget, MinCount: 50,
		},
		health.SLOBurn{
			RuleName: "slo-burn", Metric: "server/op_latency_ns", Budget: p99Budget,
			Warn: 1, Fail: 5, MinCount: 50,
		},
		health.GaugeGrowth{
			RuleName: "queue-growth", Metric: "server/shard/*/queue_depth",
			Lookback: 5, Warn: 2, Fail: 8, MinValue: 64,
		},
		health.RatioFloor{
			// Warn-only: a collapsed combining factor degrades service but
			// the server still answers; failing is reserved for latency and
			// error rules. MinCount keeps light traffic (where batches of
			// one are expected, not pathological) out of the rule.
			RuleName: "combining-collapse", Metric: "server/shard/*/batch_size",
			Warn: 1.02, MinCount: 2000,
		},
		health.ErrorRate{
			RuleName: "error-rate", Err: "server/ops/rejected", Total: "server/ops/total",
			Warn: 0.01, Fail: 0.10, MinOps: 100,
		},
		health.QuantileCeiling{
			// Commit-pipeline lag: apply-to-durable-ack time per batch. A
			// WAL writer that cannot keep up with the combiners shows here
			// before it shows in op latency. Idle (and WAL-off, where the
			// metric never observes) windows evaluate ok.
			RuleName: "wal-lag", Metric: "server/wal/lag_ns", Quantile: 0.99,
			Warn: 50 * time.Millisecond, Fail: 500 * time.Millisecond, MinCount: 50,
		},
	}
}

// HealthStatus is the /healthz document. Status is the health state
// string ("ok", "degraded", "failing") or "draining" once Shutdown has
// begun; Ready is the load-balancer bit (true only for ok/degraded
// while serving). Rules carries the most recent per-rule results.
type HealthStatus struct {
	Status    string              `json:"status"`
	Ready     bool                `json:"ready"`
	WindowSeq uint64              `json:"window_seq"`
	Rules     []health.RuleResult `json:"rules"`
}

// rotateLoop is the window's dedicated ticker goroutine — the only
// place rotation and health evaluation ever run. Readers, writers and
// combiners never rotate or evaluate (pimvet's obssafety analyzer
// enforces this); they, and the /healthz handler, read the cached
// verdict instead, so the hot path's allocation-free and non-blocking
// contracts are untouched by observability cadence.
//
//pimvet:rotator
func (s *Server) rotateLoop(tick time.Duration) {
	defer close(s.windowDone)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.windowStop:
			return
		case <-t.C:
			s.rotateOnce()
		}
	}
}

// rotateOnce closes one window interval and refreshes the cached
// verdict. Split from rotateLoop so tests can force a rotation without
// waiting out the ticker.
//
//pimvet:rotator
func (s *Server) rotateOnce() {
	s.win.Rotate()
	v := s.eng.Evaluate(s.win.History())
	s.healthMu.Lock()
	s.verdict = v
	s.healthMu.Unlock()
}

// History returns the windowed metrics document served at
// /metrics/history — empty (zero tiers) when Config.WindowTick is off.
func (s *Server) History() *obs.History {
	return s.win.History()
}

// Health returns the current health document: the verdict cached by
// the last rotation, overridden to draining (and not ready) once
// Shutdown begins. Reading it never evaluates rules and never touches
// the window, so /healthz stays cheap and drain-safe.
func (s *Server) Health() HealthStatus {
	s.healthMu.Lock()
	v := s.verdict
	s.healthMu.Unlock()
	h := HealthStatus{
		Status:    v.State.String(),
		Ready:     v.State != health.Failing,
		WindowSeq: s.win.Seq(),
		Rules:     v.Rules,
	}
	if h.Rules == nil {
		h.Rules = []health.RuleResult{}
	}
	if s.recovering.Load() {
		// WAL replay in progress: the data listener is not accepting yet
		// and the structures are mid-rebuild. Mirrors draining — a
		// distinct status string, not ready, 503 at the ops endpoint.
		h.Status = "recovering"
		h.Ready = false
	}
	if s.draining.Load() {
		h.Status = "draining"
		h.Ready = false
	}
	return h
}
