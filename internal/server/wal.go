package server

// This file is the durability side of the server: the WAL commit
// pipeline, periodic snapshots, and recovery. The design extends the
// paper's flat-combining argument to storage — the combiner already
// applies whole batches, so one log record and (in the default policy)
// one fsync cover every op the batch acknowledged: group commit falls
// out of the combining structure instead of needing its own batching
// timer.
//
// Ordering is the subtle part. Acks are released by a single WAL
// writer goroutine in combiner order, and *every* batch — including
// read-only ones that produce no record — rides the same FIFO. A read
// that observed a write therefore cannot be acknowledged before that
// write is durable; without this, a crash between the read's ack and
// the write's fsync would recover a state the already-acknowledged
// read contradicts, and the replayed history would not linearize.
//
//pimvet:allow-file determinism: the snapshot ticker and ack-latency stamps run on host wall-clock time by design; nothing here feeds back into simulated behaviour

import (
	"fmt"
	"time"

	"pimds/internal/obs"
	"pimds/internal/wal"
	"pimds/internal/wal/snapshot"
	"pimds/internal/wire"
)

// Fsync policies accepted by Config.Fsync.
const (
	// FsyncAlways forces every record to disk before its batch is
	// acknowledged: one fsync per combiner batch.
	FsyncAlways = "always"
	// FsyncBatch (the default) forces once per writer pass: the writer
	// greedily gathers every commit the combiners have produced, appends
	// their records, and fsyncs the group together — group commit on top
	// of group commit.
	FsyncBatch = "batch"
	// FsyncOff flushes records to the kernel but never fsyncs; a process
	// crash loses nothing, a machine crash can lose the tail.
	FsyncOff = "off"
)

// walCommitsPerShard is each shard's staging depth: one commit being
// filled by the combiner while one drains through the writer. A shard
// whose writer falls further behind blocks on its free list — the same
// structural backpressure the publication queues apply.
const walCommitsPerShard = 2

// walCommit carries one combiner batch through the commit pipeline:
// the staged record bytes plus everything the writer needs to release
// the batch's acks once those bytes are durable. A commit with a nil
// shard is a control item — fn runs on the writer after everything
// before it is synced and acked (snapshots use this to roll segments
// at a known point in the commit order).
type walCommit struct {
	sh      *shard
	buf     []byte        // staged record; empty when the batch mutated nothing
	batch   []pendingOp   // the batch, copied out of the shard's scratch
	results []wire.Result // matching results (scan values already copied out)
	end     int64         // apply-completion stamp
	fn      func()        // control item body (sh == nil)
}

// walState is the server's durability pipeline.
type walState struct {
	dir    string
	always bool // fsync per record
	off    bool // never fsync

	log     *wal.Log        // writer goroutine only (after recovery)
	commits chan *walCommit // combiners → writer, FIFO across shards
	ackq    []*walCommit    // writer-local: appended but not yet synced+acked
	pending int             // writer-local: records appended but not yet synced

	started    bool // writer goroutine launched (guarded by Server.mu)
	writerDone chan struct{}
	snapStop   chan struct{}
	snapDone   chan struct{}

	records  *obs.Counter
	bytes    *obs.Counter
	fsyncs   *obs.Counter
	snaps    *obs.Counter
	replayed *obs.Counter
	restored *obs.Counter
	lag      *obs.Histogram
	group    *obs.Histogram
}

// newWALState validates the durability config and builds the pipeline
// skeleton; the log itself is opened during recovery.
func newWALState(cfg Config) (*walState, error) {
	w := &walState{
		dir:     cfg.WALDir,
		commits: make(chan *walCommit, walCommitsPerShard*cfg.Shards+4),

		records:  cfg.Reg.Counter("server/wal/records"),
		bytes:    cfg.Reg.Counter("server/wal/bytes"),
		fsyncs:   cfg.Reg.Counter("server/wal/fsyncs"),
		snaps:    cfg.Reg.Counter("server/wal/snapshots"),
		replayed: cfg.Reg.Counter("server/wal/replayed_ops"),
		restored: cfg.Reg.Counter("server/wal/restored_keys"),
		lag:      cfg.Reg.Histogram("server/wal/lag_ns"),
		group:    cfg.Reg.Histogram("server/wal/group"),
	}
	switch cfg.Fsync {
	case FsyncAlways:
		w.always = true
	case FsyncBatch:
	case FsyncOff:
		w.off = true
	default:
		return nil, fmt.Errorf("server: unknown fsync policy %q (want %s|%s|%s)",
			cfg.Fsync, FsyncAlways, FsyncBatch, FsyncOff)
	}
	return w, nil
}

// stageRecord fills the acquired commit's record inside the combining
// window: header, then every mutating op in batch order, then the CRC
// seal. Read-only batches seal to an empty record — nothing to log,
// but the commit still rides the pipeline so its acks stay ordered
// after earlier durable writes. Part of the pinned window: stages
// bytes only, never touches a file.
//
//pimvet:allocfree //pimvet:nonblocking
//pimvet:window
func (sh *shard) stageRecord() {
	cm := sh.stage
	cm.buf = wal.BeginRecord(cm.buf[:0], uint16(sh.idx), sh.walSeq+1)
	n := 0
	for i := range sh.ops {
		if sh.ops[i].Kind.Mutating() {
			cm.buf = wire.AppendOp(cm.buf, sh.ops[i])
			n++
		}
	}
	cm.buf = wal.FinishRecord(cm.buf, n)
	if n > 0 {
		sh.walSeq++
	}
}

// commit hands the finished batch to the WAL writer, which will
// release the acks once the record is durable. The copies detach the
// batch from the shard's scratch, which the next combine pass reuses.
func (s *Server) commit(sh *shard, cm *walCommit, end int64) {
	cm.end = end
	cm.batch = append(cm.batch[:0], sh.batch...)
	cm.results = append(cm.results[:0], sh.results...)
	s.wal.commits <- cm
}

// walWriter is the dedicated writer goroutine: it gathers commits
// greedily (mirroring the combiners' own gather loop), appends their
// records through one buffered file, makes the group durable according
// to the fsync policy, and only then releases each batch's acks and
// recycles the commit to its shard's free list.
func (s *Server) walWriter() {
	w := s.wal
	defer close(w.writerDone)
	for {
		cm, ok := <-w.commits
		if !ok {
			return
		}
		s.walAdmit(cm)
	gather:
		for {
			select {
			case cm, ok := <-w.commits:
				if !ok {
					s.walRelease()
					return
				}
				s.walAdmit(cm)
			default:
				break gather
			}
		}
		s.walRelease()
	}
}

// walAdmit appends one commit's record (if any), counting it in
// w.pending, and queues its acks; control items first retire
// everything pending — including a real sync for any unsynced records
// appended earlier in this gather pass — then run. In FsyncAlways mode
// each admit retires immediately.
func (s *Server) walAdmit(cm *walCommit) {
	w := s.wal
	if cm.fn != nil {
		s.walRelease()
		cm.fn()
		return
	}
	if len(cm.buf) > 0 {
		if err := w.log.Append(cm.buf); err != nil {
			// Durability is the contract; a log the server cannot append
			// to means every future ack would be a lie. Fail stop.
			panic(fmt.Sprintf("server: wal append: %v", err))
		}
		w.records.Inc()
		w.bytes.Add(uint64(len(cm.buf)))
		w.pending++
	}
	w.ackq = append(w.ackq, cm)
	if w.always {
		s.walRelease()
	}
}

// walRelease makes every unsynced record durable and releases every
// queued ack. pending == 0 (only read-only batches queued) skips the
// sync: nothing new was appended, and everything those reads observed
// was covered by an earlier sync in the FIFO.
func (s *Server) walRelease() {
	w := s.wal
	if w.pending > 0 {
		if err := w.log.Sync(); err != nil {
			panic(fmt.Sprintf("server: wal sync: %v", err))
		}
		if !w.off {
			w.fsyncs.Inc()
		}
		w.group.Observe(int64(w.pending))
		w.pending = 0
	}
	if len(w.ackq) == 0 {
		return
	}
	tAck := s.now()
	for _, cm := range w.ackq {
		for i := range cm.batch {
			p := &cm.batch[i]
			s.opLatency.Observe(tAck - p.start)
			if p.sp != nil {
				p.sp.applied = cm.end
			}
			p.conn.deliver(delivery{res: cm.results[i], sp: p.sp})
			p.conn.inflight.Done()
		}
		w.lag.Observe(tAck - cm.end)
		cm.sh.walFree <- cm
	}
	w.ackq = w.ackq[:0]
}

// recoverWAL rebuilds state from the newest valid snapshot plus the
// log tail, opens the log for appending, and starts the writer (and
// the snapshot scheduler, when configured). Serve calls it before
// accepting connections; /healthz reports "recovering" (503, not
// ready) from New until it completes.
func (s *Server) recoverWAL() error {
	if s.wal == nil {
		return nil
	}
	var err error
	s.walOnce.Do(func() { err = s.doRecover() })
	return err
}

func (s *Server) doRecover() error {
	w := s.wal

	// Restore the newest valid snapshot: each shard's canonical dump
	// plus the per-shard WAL sequence number that dump includes.
	doc, snapSeg, haveSnap, err := snapshot.Latest(w.dir)
	if err != nil {
		return err
	}
	from := uint64(0)
	snapSeqs := make([]uint64, len(s.shards))
	if haveSnap {
		if len(doc.Shards) != len(s.shards) {
			return fmt.Errorf("server: snapshot in %s captures %d shards, server configured with %d",
				w.dir, len(doc.Shards), len(s.shards))
		}
		for i, sh := range s.shards {
			sh.be.RestoreState(doc.Shards[i].State)
			sh.walSeq = doc.Shards[i].Seq
			snapSeqs[i] = doc.Shards[i].Seq
			w.restored.Add(uint64(len(doc.Shards[i].State)))
		}
		from = snapSeg
	}

	// Replay the log tail. Records already folded into the snapshot
	// (seq ≤ the snapshot's per-shard sequence) are skipped — the
	// snapshot rolled to a fresh segment first, so only records in that
	// boundary segment can be duplicates. Replay itself truncates a
	// torn or corrupt tail.
	var out []wire.Result
	res, err := wal.Replay(w.dir, from, func(rec wal.Record) error {
		if int(rec.Shard) >= len(s.shards) {
			return fmt.Errorf("server: wal record for shard %d, server configured with %d shards",
				rec.Shard, len(s.shards))
		}
		sh := s.shards[rec.Shard]
		if rec.Seq <= snapSeqs[rec.Shard] {
			return nil
		}
		if rec.Seq != sh.walSeq+1 {
			return fmt.Errorf("server: wal shard %d sequence gap: have %d, next record is %d",
				rec.Shard, sh.walSeq, rec.Seq)
		}
		if cap(out) < len(rec.Ops) {
			out = make([]wire.Result, len(rec.Ops))
		}
		sh.arena = sh.be.ApplyBatch(rec.Ops, out[:len(rec.Ops)], sh.arena[:0])
		sh.walSeq = rec.Seq
		w.replayed.Add(uint64(len(rec.Ops)))
		return nil
	})
	if err != nil {
		return err
	}

	log, err := wal.Open(w.dir, res.NextSeg, !w.off)
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		// Shutdown won the race; the pipeline must not start.
		log.Close()
		return nil
	}
	w.log = log
	w.started = true
	w.writerDone = make(chan struct{})
	go s.walWriter()
	if s.cfg.SnapshotEvery > 0 {
		w.snapStop = make(chan struct{})
		w.snapDone = make(chan struct{})
		go s.snapLoop(s.cfg.SnapshotEvery)
	}
	s.recovering.Store(false)
	return nil
}

// snapLoop takes a snapshot every interval. It stops before the
// combiners do (Shutdown order), so its hand-offs to them and to the
// writer always have a live peer.
func (s *Server) snapLoop(interval time.Duration) {
	w := s.wal
	defer close(w.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.snapStop:
			return
		case <-t.C:
			if err := s.snapshotOnce(); err != nil {
				// A failed snapshot costs replay time, not correctness:
				// the log is still intact and still authoritative. Skip
				// the prune and try again next tick.
				continue
			}
		}
	}
}

// snapshotOnce rolls the log to a fresh segment, captures every
// shard's state in its own combiner (so each dump is a consistent
// point in that shard's serial order), writes the snapshot atomically,
// and prunes the log and snapshots it supersedes.
//
// Correctness of the truncation: the roll happens on the writer, in
// commit order, *before* the dumps are taken — so every record in a
// closed segment has seq ≤ the dump's sequence number for its shard
// and is covered by the snapshot. Records racing into the new boundary
// segment while the dumps are taken may or may not be covered; replay
// resolves this per record by comparing seq against the snapshot's,
// which is why duplicates in the boundary segment are harmless.
func (s *Server) snapshotOnce() error {
	w := s.wal

	rolled := make(chan uint64, 1)
	w.commits <- &walCommit{fn: func() {
		if err := w.log.Roll(); err != nil {
			panic(fmt.Sprintf("server: wal roll: %v", err))
		}
		rolled <- w.log.Seg()
	}}
	newSeg := <-rolled

	doc := &snapshot.Doc{Shards: make([]snapshot.Shard, len(s.shards))}
	for i, sh := range s.shards {
		i, sh := i, sh
		done := make(chan struct{})
		sh.ctl <- func() {
			doc.Shards[i] = snapshot.Shard{Seq: sh.walSeq, State: sh.be.AppendState(nil)}
			close(done)
		}
		<-done
	}

	if err := snapshot.Write(w.dir, newSeg, doc); err != nil {
		return err
	}
	w.snaps.Inc()
	if err := wal.Prune(w.dir, newSeg); err != nil {
		return err
	}
	return snapshot.Prune(w.dir, newSeg)
}

// finalSnapshot runs at quiescence, after the combiners and the WAL
// writer have exited: it captures the drained state directly, making
// the next start's recovery a pure snapshot restore with an empty log
// tail. Errors are swallowed — a missed final snapshot just means the
// next start replays the log instead.
func (s *Server) finalSnapshot() {
	w := s.wal
	defer w.log.Close()
	if err := w.log.Roll(); err != nil {
		return
	}
	doc := &snapshot.Doc{Shards: make([]snapshot.Shard, len(s.shards))}
	for i, sh := range s.shards {
		doc.Shards[i] = snapshot.Shard{Seq: sh.walSeq, State: sh.be.AppendState(nil)}
	}
	newSeg := w.log.Seg()
	if err := snapshot.Write(w.dir, newSeg, doc); err != nil {
		return
	}
	w.snaps.Inc()
	if wal.Prune(w.dir, newSeg) == nil {
		snapshot.Prune(w.dir, newSeg)
	}
}
