// Package stats provides the small statistics toolkit used by the
// harness and the simulator's latency instrumentation: streaming
// summaries and fixed-resolution histograms with percentile queries.
// It is dependency-free and deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/min/max/variance in one pass
// (Welford's algorithm).
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the running mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Var returns the sample variance (0 for fewer than 2 observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.Min(), s.Max(), s.Stddev())
}

// Histogram is a log-bucketed histogram for positive integer
// observations (e.g. latencies in picoseconds): bucket b holds values
// in [2^b, 2^(b+1)), with sub-bucket linear resolution.
type Histogram struct {
	// buckets[b][s]: b = floor(log2(v)), s = the subBuckets-resolution
	// linear sub-bucket within the octave.
	buckets map[int][]uint64
	total   uint64
	sum     float64
	subN    int
}

// NewHistogram returns a histogram with the given per-octave linear
// resolution (≥ 1; 16 gives ≈ 6% relative error).
func NewHistogram(subBuckets int) *Histogram {
	if subBuckets < 1 {
		subBuckets = 1
	}
	return &Histogram{buckets: make(map[int][]uint64), subN: subBuckets}
}

// Add records one positive observation; non-positive values count as 1.
func (h *Histogram) Add(v int64) {
	if v < 1 {
		v = 1
	}
	b := 63 - leadingZeros(uint64(v))
	bs := h.buckets[b]
	if bs == nil {
		bs = make([]uint64, h.subN)
		h.buckets[b] = bs
	}
	low := int64(1) << b
	idx := int((v - low) * int64(h.subN) / low)
	if idx >= h.subN {
		idx = h.subN - 1
	}
	bs[idx]++
	h.total++
	h.sum += float64(v)
}

func leadingZeros(v uint64) int {
	n := 0
	for mask := uint64(1) << 63; mask != 0 && v&mask == 0; mask >>= 1 {
		n++
	}
	return n
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.total }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the approximate q-quantile (0 ≤ q ≤ 1): the lower
// bound of the sub-bucket containing the q·N-th observation.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total-1))
	bs := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	var seen uint64
	for _, b := range bs {
		for s, c := range h.buckets[b] {
			if c == 0 {
				continue
			}
			seen += c
			if seen > rank {
				low := int64(1) << b
				return low + int64(s)*low/int64(h.subN)
			}
		}
	}
	return 0
}

// Percentiles returns the 50th, 95th, 99th percentiles — the trio the
// latency tables report.
func (h *Histogram) Percentiles() (p50, p95, p99 int64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// Merge folds o's observations into h; o is unchanged. Merging is
// exact when both histograms share the same sub-bucket resolution;
// with differing resolutions each of o's sub-buckets is re-binned at
// its lower bound, which preserves counts and quantile lower-bound
// semantics but loses o's finer in-octave placement. A nil or empty o
// is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for b, obs := range o.buckets {
		if o.subN == h.subN {
			bs := h.buckets[b]
			if bs == nil {
				bs = make([]uint64, h.subN)
				h.buckets[b] = bs
			}
			for s, c := range obs {
				bs[s] += c
			}
			continue
		}
		low := int64(1) << b
		for s, c := range obs {
			if c == 0 {
				continue
			}
			v := low + int64(s)*low/int64(o.subN)
			for i := uint64(0); i < c; i++ {
				h.addBinned(v)
			}
		}
	}
	h.total += o.total
	h.sum += o.sum
}

// addBinned records v in the bucket structure without touching the
// total/sum accumulators (Merge updates those from o's exact values).
func (h *Histogram) addBinned(v int64) {
	b := 63 - leadingZeros(uint64(v))
	bs := h.buckets[b]
	if bs == nil {
		bs = make([]uint64, h.subN)
		h.buckets[b] = bs
	}
	low := int64(1) << b
	idx := int((v - low) * int64(h.subN) / low)
	if idx >= h.subN {
		idx = h.subN - 1
	}
	bs[idx]++
}
