package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Error("empty summary should be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample variance of this classic dataset is 32/7.
	if got, want := s.Var(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("var = %v, want %v", got, want)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// TestSummaryMatchesDirectComputation on random data.
func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		rng := rand.New(rand.NewSource(seed))
		var s Summary
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			s.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-wantVar) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 || h.N() != 0 {
		t.Error("empty histogram should return 0")
	}
	// 1..1000 uniformly.
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
	if got, want := h.Mean(), 500.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	p50, p90, p99 := h.Percentiles()
	within := func(got, want int64, relTol float64) bool {
		return math.Abs(float64(got-want)) <= relTol*float64(want)
	}
	if !within(p50, 500, 0.10) || !within(p90, 900, 0.10) || !within(p99, 990, 0.10) {
		t.Errorf("p50/p90/p99 = %d/%d/%d, want ≈ 500/900/990", p50, p90, p99)
	}
}

// TestHistogramQuantileAccuracy: against exact order statistics of
// random data, the log-bucketed quantile must be within one sub-bucket
// (≈ 1/16 relative).
func TestHistogramQuantileAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(16)
		xs := make([]int64, 500)
		for i := range xs {
			xs[i] = rng.Int63n(1<<20) + 1
			h.Add(xs[i])
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := xs[int(q*float64(len(xs)-1))]
			got := h.Quantile(q)
			if got > exact || float64(got) < float64(exact)*(1-2.0/16) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(0) // clamps to 1 sub-bucket
	h.Add(0)             // clamps to 1
	h.Add(-5)            // clamps to 1
	h.Add(1)
	if h.N() != 3 {
		t.Errorf("n = %d, want 3", h.N())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("q50 = %d, want 1", q)
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) < h.Quantile(0) {
		t.Error("quantile clamping broken")
	}
}

func TestLeadingZeros(t *testing.T) {
	cases := map[uint64]int{1: 63, 2: 62, 1 << 63: 0, 3: 62}
	for v, want := range cases {
		if got := leadingZeros(v); got != want {
			t.Errorf("leadingZeros(%d) = %d, want %d", v, got, want)
		}
	}
}
