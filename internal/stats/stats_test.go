package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Error("empty summary should be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample variance of this classic dataset is 32/7.
	if got, want := s.Var(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("var = %v, want %v", got, want)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// TestSummaryMatchesDirectComputation on random data.
func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		rng := rand.New(rand.NewSource(seed))
		var s Summary
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			s.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-wantVar) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 || h.N() != 0 {
		t.Error("empty histogram should return 0")
	}
	// 1..1000 uniformly.
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
	if got, want := h.Mean(), 500.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	p50, p95, p99 := h.Percentiles()
	within := func(got, want int64, relTol float64) bool {
		return math.Abs(float64(got-want)) <= relTol*float64(want)
	}
	if !within(p50, 500, 0.10) || !within(p95, 950, 0.10) || !within(p99, 990, 0.10) {
		t.Errorf("p50/p95/p99 = %d/%d/%d, want ≈ 500/950/990", p50, p95, p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(16)
	if h.N() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should have zero count and mean")
	}
	p50, p95, p99 := h.Percentiles()
	if p50 != 0 || p95 != 0 || p99 != 0 {
		t.Errorf("empty percentiles = %d/%d/%d, want 0/0/0", p50, p95, p99)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram(16)
	h.Add(777)
	if h.N() != 1 || h.Mean() != 777 {
		t.Errorf("n/mean = %d/%v", h.N(), h.Mean())
	}
	// Every quantile of a single observation lands in its sub-bucket:
	// the reported value is the sub-bucket's lower bound, within one
	// sub-bucket width below the observation.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got > 777 || float64(got) < 777*(1-1.0/16) {
			t.Errorf("Quantile(%v) = %d, want within one sub-bucket of 777", q, got)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(16)
	// Exact powers of two are octave lower bounds: the quantile of a
	// point mass there must be exact, not off by one octave.
	for _, v := range []int64{1, 2, 4, 1024, 1 << 32} {
		h := NewHistogram(16)
		for i := 0; i < 10; i++ {
			h.Add(v)
		}
		if got := h.Quantile(0.5); got != v {
			t.Errorf("point mass at %d: q50 = %d", v, got)
		}
	}
	// The last value before an octave boundary stays in its octave.
	h.Add(1023)
	if got := h.Quantile(0.5); got < 512 || got > 1023 {
		t.Errorf("1023 binned outside its octave: q50 = %d", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(16), NewHistogram(16)
	ref := NewHistogram(16)
	for v := int64(1); v <= 500; v++ {
		a.Add(v)
		ref.Add(v)
	}
	for v := int64(501); v <= 1000; v++ {
		b.Add(v)
		ref.Add(v)
	}
	a.Merge(b)
	if a.N() != ref.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), ref.N())
	}
	if math.Abs(a.Mean()-ref.Mean()) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), ref.Mean())
	}
	// Same resolution ⇒ merge is exact: identical quantiles.
	for _, q := range []float64{0.1, 0.5, 0.95, 0.99} {
		if a.Quantile(q) != ref.Quantile(q) {
			t.Errorf("Quantile(%v): merged %d != direct %d", q, a.Quantile(q), ref.Quantile(q))
		}
	}
	// Merging nil or empty histograms is a no-op.
	n := a.N()
	a.Merge(nil)
	a.Merge(NewHistogram(16))
	if a.N() != n {
		t.Errorf("no-op merges changed n: %d -> %d", n, a.N())
	}
}

func TestHistogramMergeMixedResolution(t *testing.T) {
	a, b := NewHistogram(16), NewHistogram(4)
	for v := int64(1); v <= 100; v++ {
		b.Add(v * 3)
	}
	a.Merge(b)
	if a.N() != 100 {
		t.Fatalf("merged n = %d, want 100", a.N())
	}
	// Mean comes from exact sums even across resolutions.
	if math.Abs(a.Mean()-b.Mean()) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), b.Mean())
	}
	// Quantiles degrade at most to the coarser resolution's lower bound.
	for _, q := range []float64{0.5, 0.95} {
		got, want := a.Quantile(q), b.Quantile(q)
		if got > want || float64(got) < float64(want)*(1-1.0/4) {
			t.Errorf("Quantile(%v) = %d, want within a coarse sub-bucket of %d", q, got, want)
		}
	}
}

// TestHistogramQuantileAccuracy: against exact order statistics of
// random data, the log-bucketed quantile must be within one sub-bucket
// (≈ 1/16 relative).
func TestHistogramQuantileAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(16)
		xs := make([]int64, 500)
		for i := range xs {
			xs[i] = rng.Int63n(1<<20) + 1
			h.Add(xs[i])
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := xs[int(q*float64(len(xs)-1))]
			got := h.Quantile(q)
			if got > exact || float64(got) < float64(exact)*(1-2.0/16) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(0) // clamps to 1 sub-bucket
	h.Add(0)             // clamps to 1
	h.Add(-5)            // clamps to 1
	h.Add(1)
	if h.N() != 3 {
		t.Errorf("n = %d, want 3", h.N())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("q50 = %d, want 1", q)
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) < h.Quantile(0) {
		t.Error("quantile clamping broken")
	}
}

func TestLeadingZeros(t *testing.T) {
	cases := map[uint64]int{1: 63, 2: 62, 1 << 63: 0, 3: 62}
	for v, want := range cases {
		if got := leadingZeros(v); got != want {
			t.Errorf("leadingZeros(%d) = %d, want %d", v, got, want)
		}
	}
}
