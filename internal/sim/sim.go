// Package sim is a deterministic discrete-event simulator of the PIM
// (processing-in-memory) architecture assumed by Liu, Calciu, Herlihy
// and Mutlu, "Concurrent Data Structures for Near-Memory Computing"
// (SPAA 2017), Section 2:
//
//   - Memory is organized in vaults; each vault has one lightweight
//     in-order PIM core attached to it. A vault can be accessed only by
//     its local PIM core, and PIM cores perform plain reads and writes
//     only (no CAS / F&A).
//   - CPUs access ordinary memory (at Lcpu), the shared last-level
//     cache (at Lllc) and support atomic operations (CAS, F&A) that
//     cost Latomic each and serialize when contending for a cache line.
//   - All cores communicate by message passing. Messages from the same
//     sender to the same receiver arrive in FIFO order; messages from
//     different senders interleave arbitrarily. A message transfer
//     costs Lmessage.
//
// Every latency is charged in virtual time from the cost model of
// Section 3 (package model), so a simulation measures the throughput
// the paper's model predicts while executing the real algorithms —
// including segment handoff, node migration and pipelining, whose
// costs the paper's closed forms deliberately ignore.
//
// The simulator is sequential and deterministic: given the same
// configuration and seeds it produces the identical event trace, which
// the tests rely on.
package sim

import (
	"fmt"
	"math"
	"time"

	"pimds/internal/model"
)

// Time is virtual time in picoseconds. Picoseconds (rather than
// nanoseconds) keep derived latencies such as Lcpu/r1 exact for
// non-integer ratios.
type Time int64

// Common conversion constants.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FromDuration converts a wall-clock duration to virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) * Nanosecond }

// Seconds reports t as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (rounded down to nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t/Nanosecond) * time.Nanosecond }

// String formats t with a readable unit.
func (t Time) String() string { return t.Duration().String() }

// Config fixes the latencies charged by the simulator.
type Config struct {
	Lcpu     Time // CPU memory access
	Lpim     Time // PIM-core local vault access
	Lllc     Time // CPU last-level cache access
	Latomic  Time // CPU atomic operation (also the serialization unit)
	Lmessage Time // message transfer between any two cores
	Epsilon  Time // cost of a local L1 access / bookkeeping step on any core

	// LpimRemote is the latency of a PIM core accessing another
	// core's vault directly — the alternative architecture of the
	// paper's Section 2 footnote 2 ("such accesses are slower than
	// those to the local vault"). Zero (the default) disables remote
	// accesses entirely, which is the paper's primary model.
	LpimRemote Time

	// MessageGap is the minimum spacing between consecutive message
	// *injections* by one sender: a finite-bandwidth link can accept
	// one cache-line message per gap. Zero (the paper's model) means
	// infinite injection bandwidth. The sender does not block — its
	// messages queue at the link — but their delivery serializes, so
	// a pipelined core's reply stream throttles at 1/gap. Section 5.2
	// argues "bandwidth is unlikely to become a bottleneck"; the
	// bandwidth ablation (-exp bandwidth) checks exactly when that
	// holds: throughput is flat until the gap exceeds the per-request
	// service time Lpim.
	MessageGap Time
}

// ConfigFromParams derives simulator latencies from the analytical
// model's parameters, rounding to whole picoseconds.
func ConfigFromParams(p model.Params) Config {
	sec := func(s float64) Time { return Time(math.Round(s * 1e12)) }
	lcpu := p.Lcpu.Seconds()
	return Config{
		Lcpu:     sec(lcpu),
		Lpim:     sec(lcpu / p.R1),
		Lllc:     sec(lcpu / p.R2),
		Latomic:  sec(lcpu * p.R3),
		Lmessage: sec(lcpu),
		Epsilon:  0,
	}
}

// DefaultConfig returns the latencies for the paper's default
// parameters (r1 = r2 = 3, r3 = 1, Lcpu = 90ns).
func DefaultConfig() Config { return ConfigFromParams(model.DefaultParams()) }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Lcpu <= 0 || c.Lpim <= 0 || c.Lllc <= 0 || c.Latomic <= 0 || c.Lmessage <= 0 {
		return fmt.Errorf("sim: all latencies must be positive: %+v", c)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("sim: epsilon must be non-negative: %+v", c)
	}
	return nil
}
