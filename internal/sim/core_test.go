package sim

import (
	"testing"
	"testing/quick"
)

// echoHandler replies to every request after n vault reads.
func echoHandler(reads int) PIMHandler {
	return func(c *PIMCore, m Message) {
		c.ReadN(reads)
		c.Send(Message{To: m.From, Kind: m.Kind + 1, Key: m.Key, OK: true})
		c.CountOp()
	}
}

func TestPIMCoreChargesVaultLatency(t *testing.T) {
	e := NewEngine(testConfig())
	pim := e.NewPIMCore(echoHandler(4))

	var gotAt Time = -1
	var resp Message
	cpu := e.NewCPU(func(c *CPU, m Message) {
		gotAt = e.Now()
		resp = m
	})
	cpu.Exec(func(c *CPU) {
		c.Send(Message{To: pim.ID(), Kind: 7, Key: 42})
	})
	e.Run()

	// Timeline: send at 0, arrival at Lmessage=90ns, 4 reads ×30ns =
	// 120ns, reply sent at 210ns, arrival 300ns.
	if want := 300 * Nanosecond; gotAt != want {
		t.Errorf("response at %v, want %v", gotAt, want)
	}
	if resp.Kind != 8 || resp.Key != 42 || !resp.OK {
		t.Errorf("bad response %+v", resp)
	}
	if pim.Vault().Reads != 4 || pim.Vault().Writes != 0 {
		t.Errorf("vault counters = %d reads / %d writes", pim.Vault().Reads, pim.Vault().Writes)
	}
	if pim.Stats.Messages != 1 || pim.Stats.Ops != 1 {
		t.Errorf("stats = %+v", pim.Stats)
	}
	if pim.Stats.Busy != 120*Nanosecond {
		t.Errorf("busy = %v, want 120ns", pim.Stats.Busy)
	}
}

func TestPIMCoreServesFIFOAndSerially(t *testing.T) {
	e := NewEngine(testConfig())
	var served []int64
	pim := e.NewPIMCore(func(c *PIMCore, m Message) {
		c.ReadN(2) // 60ns each request
		served = append(served, m.Key)
	})
	// Two CPUs send at the same instant; per-channel FIFO plus
	// deterministic tie-breaking orders them by send sequence.
	for i := int64(1); i <= 3; i++ {
		i := i
		cpu := e.NewCPU(nil)
		cpu.Exec(func(c *CPU) {
			c.Send(Message{To: pim.ID(), Key: i})
			c.Send(Message{To: pim.ID(), Key: i * 10})
		})
	}
	e.Run()
	if len(served) != 6 {
		t.Fatalf("served %d messages, want 6", len(served))
	}
	// Same-sender messages must preserve order.
	pos := map[int64]int{}
	for i, k := range served {
		pos[k] = i
	}
	for _, base := range []int64{1, 2, 3} {
		if pos[base] > pos[base*10] {
			t.Errorf("messages from sender %d reordered: %v", base, served)
		}
	}
	// Core is sequential: total busy time = 6 × 60ns.
	if pim.Stats.Busy != 360*Nanosecond {
		t.Errorf("busy = %v, want 360ns", pim.Stats.Busy)
	}
}

func TestPIMPipelining(t *testing.T) {
	// A core that replies with no memory work should be able to serve
	// back-to-back requests without waiting for reply delivery: with
	// one read per request (Lpim = 30ns), 10 queued requests finish
	// in 10×30ns of core time, not 10×(30+90)ns.
	e := NewEngine(testConfig())
	pim := e.NewPIMCore(echoHandler(1))
	cpu := e.NewCPU(func(c *CPU, m Message) {})
	cpu.Exec(func(c *CPU) {
		for i := 0; i < 10; i++ {
			c.Send(Message{To: pim.ID(), Key: int64(i)})
		}
	})
	e.Run()
	// All requests arrive at 90ns; the core finishes its vault work at
	// 90 + 10×30 = 390ns; the final reply lands at 390+90 = 480ns.
	if e.Now() != 480*Nanosecond {
		t.Errorf("simulation ended at %v, want 480ns (pipelined)", e.Now())
	}
}

func TestCPUAtomicSerialization(t *testing.T) {
	e := NewEngine(testConfig())
	line := &AtomicLine{}
	var done []Time
	for i := 0; i < 4; i++ {
		cpu := e.NewCPU(nil)
		cpu.Exec(func(c *CPU) {
			c.Atomic(line)
			done = append(done, c.Clock())
		})
	}
	e.Run()
	if len(done) != 4 {
		t.Fatalf("completed %d atomics, want 4", len(done))
	}
	// k concurrent atomics complete at k·Latomic (Section 3).
	for i, d := range done {
		want := Time(i+1) * 90 * Nanosecond
		if d != want {
			t.Errorf("atomic %d done at %v, want %v", i, d, want)
		}
	}
	if line.Ops != 4 {
		t.Errorf("line.Ops = %d, want 4", line.Ops)
	}
}

func TestCPUMemoryCosts(t *testing.T) {
	e := NewEngine(testConfig())
	var clk Time
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		c.MemRead()   // 90
		c.MemWrite()  // 90
		c.LLCRead()   // 30
		c.LLCWrite()  // 30
		c.MemReadN(2) // 180
		c.Local()     // 0
		c.Compute(5 * Nanosecond)
		clk = c.Clock()
	})
	e.Run()
	if want := 425 * Nanosecond; clk != want {
		t.Errorf("clock = %v, want %v", clk, want)
	}
}

func TestChargingOutsideHandlerPanics(t *testing.T) {
	e := NewEngine(testConfig())
	pim := e.NewPIMCore(nil)
	cpu := e.NewCPU(nil)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s outside handler should panic", name)
			}
		}()
		fn()
	}
	mustPanic("PIMCore.Read", func() { pim.Read() })
	mustPanic("PIMCore.Send", func() { pim.Send(Message{To: cpu.ID()}) })
	mustPanic("CPU.MemRead", func() { cpu.MemRead() })
	mustPanic("CPU.Atomic", func() { cpu.Atomic(&AtomicLine{}) })
}

func TestMessageToUnknownCorePanics(t *testing.T) {
	e := NewEngine(testConfig())
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		defer func() {
			if recover() == nil {
				t.Error("send to unknown core should panic")
			}
		}()
		c.Send(Message{To: CoreID(999)})
	})
	e.Run()
}

func TestSendToNoCorePanics(t *testing.T) {
	e := NewEngine(testConfig())
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		defer func() {
			if recover() == nil {
				t.Error("send to NoCore should panic")
			}
		}()
		c.Send(Message{})
	})
	e.Run()
}

func TestVaultAccounting(t *testing.T) {
	v := &Vault{id: 3, owner: 7}
	if v.ID() != 3 || v.Owner() != 7 {
		t.Error("id/owner accessors broken")
	}
	v.RecordAlloc()
	v.RecordAlloc()
	v.RecordFree()
	if v.Allocs != 2 || v.Frees != 1 || v.LiveNodes != 1 {
		t.Errorf("alloc accounting: %+v", v)
	}
	v.Reads, v.Writes = 5, 7
	if v.Accesses() != 12 {
		t.Errorf("Accesses = %d, want 12", v.Accesses())
	}
}

// TestClosedLoopClientThroughput validates the Meter against a
// hand-computed closed loop: one client, one PIM core doing 2 reads per
// op. Cycle = Lmessage + 2·Lpim + Lmessage = 240ns per op.
func TestClosedLoopClientThroughput(t *testing.T) {
	e := NewEngine(testConfig())
	pim := e.NewPIMCore(echoHandler(2))
	cl := NewClient(e, func(c *CPU, seq uint64) Message {
		return Message{To: pim.ID(), Key: int64(seq)}
	})
	m := &Meter{Engine: e, Clients: []*Client{cl}}
	completed, ops := m.Run(24*Microsecond, 240*Microsecond)
	// 240µs window / 240ns per op = 1000 ops.
	if completed != 1000 {
		t.Errorf("completed = %d, want 1000", completed)
	}
	if want := 1000 / (240e-6); ops != want {
		t.Errorf("throughput = %v, want %v", ops, want)
	}
}

// TestEngineDeterminism: identical runs produce identical traces.
func TestEngineDeterminism(t *testing.T) {
	run := func() (Time, uint64, uint64) {
		e := NewEngine(testConfig())
		pims := make([]*PIMCore, 4)
		for i := range pims {
			pims[i] = e.NewPIMCore(echoHandler(i + 1))
		}
		clients := make([]*Client, 8)
		for i := range clients {
			i := i
			clients[i] = NewClient(e, func(c *CPU, seq uint64) Message {
				return Message{To: pims[(i+int(seq))%4].ID(), Key: int64(seq)}
			})
		}
		m := &Meter{Engine: e, Clients: clients}
		completed, _ := m.Run(10*Microsecond, 100*Microsecond)
		return e.Now(), e.Processed(), completed
	}
	t1, p1, c1 := run()
	t2, p2, c2 := run()
	if t1 != t2 || p1 != p2 || c1 != c2 {
		t.Errorf("nondeterministic runs: (%v,%d,%d) vs (%v,%d,%d)", t1, p1, c1, t2, p2, c2)
	}
}

// TestAtomicLineProperty: n serialized atomics always end exactly at
// n·Latomic when issued from time zero.
func TestAtomicLineProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%32) + 1
		line := &AtomicLine{}
		var last Time
		for i := 0; i < n; i++ {
			last = line.acquire(0, 90*Nanosecond)
		}
		return last == Time(n)*90*Nanosecond && line.Ops == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessagesSentCounter(t *testing.T) {
	e := NewEngine(testConfig())
	pim := e.NewPIMCore(echoHandler(1))
	cl := NewClient(e, func(c *CPU, seq uint64) Message {
		return Message{To: pim.ID()}
	})
	m := &Meter{Engine: e, Clients: []*Client{cl}}
	completed, _ := m.Run(0, 10*Microsecond)
	if got := e.MessagesSent(cl.CPU.ID(), pim.ID()); got < completed {
		t.Errorf("MessagesSent = %d, want >= %d", got, completed)
	}
	if got := e.MessagesSent(pim.ID(), CoreID(12345)); got != 0 {
		t.Errorf("MessagesSent to unknown = %d, want 0", got)
	}
}
