package sim

// CostKind classifies one virtual-time charge on a core's local clock
// for the profiler. It is deliberately coarser than the individual
// charge methods: the profiler maps kinds onto latency-model
// components, and the simulation never reads profiler state back.
type CostKind uint8

const (
	// CostMemory is a vault, DRAM or LLC access (Lpim, LpimRemote,
	// Lcpu, Lllc).
	CostMemory CostKind = iota
	// CostService is handler bookkeeping: Epsilon steps, Compute time
	// and send overhead.
	CostService
	// CostAtomic is the atomic operation itself (Latomic).
	CostAtomic
	// CostAtomicWait is time spent waiting for a contended atomic
	// line to serialize before the operation's own Latomic starts.
	CostAtomicWait
)

// Profiler observes fine-grained virtual-time events: per-charge cost
// attribution, message lifecycle (sent, delivered, consumed), handler
// boundaries, and logical operation boundaries marked by clients.
//
// Like Tracer and the metrics layer, a Profiler is strictly write-only
// from the simulation's point of view: the engine and cores call into
// it, never read from it, so an attached profiler changes simulated
// results by exactly zero. All hooks fire synchronously on the
// simulation goroutine in deterministic event order.
type Profiler interface {
	// OpStart marks the beginning of a logical data-structure
	// operation issued by the client CPU cpu at virtual time at.
	OpStart(at Time, cpu CoreID)
	// OpEnd marks the completion of cpu's in-flight operation.
	OpEnd(at Time, cpu CoreID)
	// Charge reports that core's local clock advanced by d, ending at
	// at, for a cost of the given kind.
	Charge(at Time, core CoreID, kind CostKind, d Time)
	// MsgSent fires when a message enters the network. id is a unique
	// engine-assigned message id (only stamped while profiling).
	MsgSent(at Time, id uint64, m Message)
	// MsgDelivered fires when the message reaches the receiver's
	// buffer.
	MsgDelivered(at Time, id uint64, m Message)
	// MsgConsumed fires when a core starts processing a buffered
	// message: combined=false for the message that triggered the
	// handler run, combined=true for messages drained mid-handler via
	// TakeQueued (combining).
	MsgConsumed(at Time, id uint64, core CoreID, combined bool)
	// HandlerEnd fires when a core's handler run finishes, at the
	// core's final local clock.
	HandlerEnd(at Time, core CoreID)
}

// SetProfiler attaches p to the engine (nil detaches). Attach before
// starting clients: requests already in flight are not profiled.
func (e *Engine) SetProfiler(p Profiler) { e.prof = p }

// ProfilerEnabled reports whether a profiler is attached.
func (e *Engine) ProfilerEnabled() bool { return e.prof != nil }

// ProfOpStart marks the start of a logical operation on this CPU for
// the attached profiler. Clients call it where they stamp their issue
// time. It is a no-op when no profiler is attached.
func (c *CPU) ProfOpStart() {
	if p := c.eng.prof; p != nil {
		c.mustRun("ProfOpStart")
		p.OpStart(c.clock, c.id)
	}
}

// ProfOpEnd marks the completion of this CPU's in-flight logical
// operation, adjacent to where the client records its latency. It is a
// no-op when no profiler is attached.
func (c *CPU) ProfOpEnd() {
	if p := c.eng.prof; p != nil {
		c.mustRun("ProfOpEnd")
		p.OpEnd(c.clock, c.id)
	}
}
