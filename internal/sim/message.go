package sim

import "fmt"

// CoreID identifies a message endpoint: a PIM core or a CPU. IDs are
// assigned by the engine at registration time and are unique within an
// engine.
type CoreID int

// NoCore is the zero CoreID meaning "no destination".
const NoCore CoreID = 0

// Message is one message between cores. The paper's model assumes a
// message fits in a cache line, so protocols keep payloads to a few
// words: a kind tag, two integer operands and an optional reference
// payload (used for batches during node migration).
//
// Messages are delivered to the receiver's buffer after Lmessage; the
// receiver processes its buffer in arrival order.
type Message struct {
	From CoreID
	To   CoreID
	Kind int   // protocol-defined request/response tag
	Key  int64 // first operand (key, value, CID, …)
	Val  int64 // second operand
	OK   bool  // success flag on responses
	// Payload carries protocol-defined extra data. Protocols that
	// need more than a cache line of payload (e.g. migration batches)
	// must send one message per cache-line-sized chunk instead.
	Payload interface{}

	// pid is the engine-assigned profiler message id. It is zero (and
	// never assigned) unless a profiler is attached, is invisible to
	// protocol code, and exists only so the profiler can correlate a
	// send with its delivery and consumption. Protocol code that
	// copies a message into a fresh reply naturally drops it, which is
	// exactly right: a reply is a new message.
	pid uint64
}

// endpoint is anything registered with the engine that can receive
// messages.
type endpoint interface {
	deliver(m Message)
	coreID() CoreID
}

// register assigns the next CoreID to ep. CoreID 0 is reserved as
// NoCore.
func (e *Engine) register(ep endpoint) CoreID {
	e.nextID++
	id := e.nextID
	e.endpoints[id] = ep
	return id
}

// Endpoint returns the registered endpoint for id, for tests and
// debugging.
func (e *Engine) lookup(id CoreID) endpoint {
	ep, ok := e.endpoints[id]
	if !ok {
		panic(fmt.Sprintf("sim: message to unknown core %d", id))
	}
	return ep
}

// send schedules delivery of m to m.To. sentAt is the virtual time at
// which the sender finished sending (its local clock); the message
// arrives at the receiver's buffer Lmessage later, after waiting for
// the sender's injection link if MessageGap is set. Per-channel FIFO
// is enforced: a message never arrives before an earlier message on
// the same (from, to) channel.
func (e *Engine) send(sentAt Time, m Message) {
	if m.To == NoCore {
		panic("sim: message with no destination")
	}
	injectAt := sentAt
	if e.cfg.MessageGap > 0 {
		if last, ok := e.lastInject[m.From]; ok && last+e.cfg.MessageGap > injectAt {
			injectAt = last + e.cfg.MessageGap
		}
		e.lastInject[m.From] = injectAt
	}
	key := channelKey{m.From, m.To}
	ch := e.channels[key]
	if ch == nil {
		ch = &channelState{}
		e.channels[key] = ch
	}
	arrival := injectAt + e.cfg.Lmessage
	if arrival < ch.lastArrival {
		arrival = ch.lastArrival
	}
	ch.lastArrival = arrival
	ch.sent++
	if e.met != nil {
		e.met.msgSent(m.Kind)
	}
	if e.tracer != nil {
		e.tracer.MessageSent(sentAt, m)
	}
	if e.prof != nil {
		e.profSeq++
		m.pid = e.profSeq
		e.prof.MsgSent(sentAt, m.pid, m)
	}
	dst := e.lookup(m.To)
	e.Schedule(arrival, func() {
		if e.tracer != nil {
			e.tracer.MessageDelivered(arrival, m)
		}
		if e.prof != nil && m.pid != 0 {
			e.prof.MsgDelivered(arrival, m.pid, m)
		}
		dst.deliver(m)
	})
}

// MessagesSent reports how many messages have been sent from one core
// to another, for tests and stats.
func (e *Engine) MessagesSent(from, to CoreID) uint64 {
	if ch := e.channels[channelKey{from, to}]; ch != nil {
		return ch.sent
	}
	return 0
}
