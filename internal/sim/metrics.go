package sim

import (
	"fmt"
	"sort"

	"pimds/internal/obs"
)

// simMetrics is the engine's recording state when a metrics registry is
// installed. All instrumentation is observational: nothing here touches
// virtual time, so an engine with metrics enabled produces bit-identical
// simulation results to one without (see TestMetricsDoNotPerturb).
//
// Hot-path events (message sends, queue depths, request latencies)
// record as they happen; cheap-to-read aggregate state (vault counters,
// core busy time, channel totals) is exported by a snapshot-time
// collector instead, so the simulation loop pays nothing for it.
type simMetrics struct {
	eng      *Engine
	reg      *obs.Registry
	sent     map[int]*obs.Counter   // messages sent, per protocol kind
	lat      map[int]*obs.Histogram // inject→reply latency, per request kind
	queueMax map[CoreID]*obs.Gauge  // deepest inbox seen, per core
}

// SetMetrics installs a metrics registry (nil disables metrics). The
// engine registers a snapshot-time collector exporting per-core busy
// time, per-vault access counts and utilization, and per-channel
// message totals; hot-path events record into reg as they happen.
// Install the registry before building data structures on the engine:
// structures capture the registry at construction time.
func (e *Engine) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		e.met = nil
		return
	}
	e.met = &simMetrics{
		eng:      e,
		reg:      reg,
		sent:     make(map[int]*obs.Counter),
		lat:      make(map[int]*obs.Histogram),
		queueMax: make(map[CoreID]*obs.Gauge),
	}
	reg.AddCollector(e.collectMetrics)
}

// Metrics returns the installed registry, or nil when metrics are
// disabled. Structures use it to create their own metrics; through a
// nil registry every obs getter returns a nil (no-op) metric.
func (e *Engine) Metrics() *obs.Registry {
	if e.met == nil {
		return nil
	}
	return e.met.reg
}

// SetKindNamer installs a protocol kind → symbolic name mapping used in
// metric names and Chrome trace events (nil falls back to "kind_NN").
func (e *Engine) SetKindNamer(fn func(kind int) string) { e.kindName = fn }

// KindName renders a protocol kind tag using the installed namer.
func (e *Engine) KindName(kind int) string {
	if e.kindName != nil {
		return e.kindName(kind)
	}
	return fmt.Sprintf("kind_%02d", kind)
}

// msgSent counts one sent message of the given kind.
func (m *simMetrics) msgSent(kind int) {
	c := m.sent[kind]
	if c == nil {
		c = m.reg.Counter("msg/sent/" + m.eng.KindName(kind))
		m.sent[kind] = c
	}
	c.Inc()
}

// opLatency records one end-to-end request latency (inject→reply, in
// picoseconds) for the given request kind.
func (m *simMetrics) opLatency(kind int, d Time) {
	h := m.lat[kind]
	if h == nil {
		h = m.reg.Histogram("latency/" + m.eng.KindName(kind))
		m.lat[kind] = h
	}
	h.Observe(int64(d))
}

// RecordOpLatency records one end-to-end request latency (inject→reply)
// under the given protocol kind. Structures whose clients run their own
// retry loops (skip-list rejections, queue/stack rediscoveries) call
// this on completion; no-op when metrics are disabled.
func (e *Engine) RecordOpLatency(kind int, d Time) {
	if e.met != nil {
		e.met.opLatency(kind, d)
	}
}

// queueDepth tracks the high watermark of a core's message inbox.
func (m *simMetrics) queueDepth(id CoreID, depth int) {
	g := m.queueMax[id]
	if g == nil {
		g = m.reg.Gauge(fmt.Sprintf("core/%03d/queue_max", id))
		m.queueMax[id] = g
	}
	g.SetMax(int64(depth))
}

// collectMetrics exports engine, core, vault and channel state into the
// registry; it runs at every Registry.Snapshot.
func (e *Engine) collectMetrics(r *obs.Registry) {
	r.Gauge("engine/now_ps").Set(int64(e.now))
	r.Gauge("engine/events_processed").Set(int64(e.processed))

	ids := make([]CoreID, 0, len(e.endpoints))
	for id := range e.endpoints {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	elapsed := float64(e.now)
	for _, id := range ids {
		switch c := e.endpoints[id].(type) {
		case *PIMCore:
			pre := fmt.Sprintf("core/%03d/", id)
			r.Gauge(pre + "busy_ps").Set(int64(c.Stats.Busy))
			r.Gauge(pre + "ops").Set(int64(c.Stats.Ops))
			r.Gauge(pre + "messages").Set(int64(c.Stats.Messages))
			r.Gauge(pre + "queue_len").Set(int64(c.QueueLen()))
			v := c.Vault()
			vp := fmt.Sprintf("vault/%03d/", v.ID())
			r.Gauge(vp + "reads").Set(int64(v.Reads))
			r.Gauge(vp + "writes").Set(int64(v.Writes))
			r.Gauge(vp + "allocs").Set(int64(v.Allocs))
			r.Gauge(vp + "frees").Set(int64(v.Frees))
			r.Gauge(vp + "live_nodes").Set(v.LiveNodes)
			r.Gauge(vp + "busy_ps").Set(int64(c.Stats.Busy))
			if elapsed > 0 {
				r.FloatGauge(vp + "utilization").Set(float64(c.Stats.Busy) / elapsed)
			}
		case *CPU:
			pre := fmt.Sprintf("cpu/%03d/", id)
			r.Gauge(pre + "busy_ps").Set(int64(c.Stats.Busy))
			r.Gauge(pre + "ops").Set(int64(c.Stats.Ops))
			r.Gauge(pre + "messages").Set(int64(c.Stats.Messages))
			if elapsed > 0 {
				r.FloatGauge(pre + "utilization").Set(float64(c.Stats.Busy) / elapsed)
			}
		}
	}

	keys := make([]channelKey, 0, len(e.channels))
	for k := range e.channels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		r.Gauge(fmt.Sprintf("channel/%03d-%03d/sent", k.from, k.to)).
			Set(int64(e.channels[k].sent))
	}
}
