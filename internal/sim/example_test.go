package sim_test

import (
	"fmt"

	"pimds/internal/sim"
)

// Example builds the smallest possible PIM system: one PIM core
// serving echo requests from one closed-loop CPU client, and measures
// its steady-state throughput in virtual time. With two vault reads per
// request, one operation takes Lmessage + 2·Lpim + Lmessage = 240 ns,
// so the client completes exactly 1000 operations in 240 µs.
func Example() {
	e := sim.NewEngine(sim.DefaultConfig())

	pim := e.NewPIMCore(func(c *sim.PIMCore, m sim.Message) {
		c.Read() // walk to the node
		c.Read() // read it
		c.Send(sim.Message{To: m.From, OK: true})
		c.CountOp()
	})

	client := sim.NewClient(e, func(c *sim.CPU, seq uint64) sim.Message {
		return sim.Message{To: pim.ID(), Key: int64(seq)}
	})

	meter := &sim.Meter{Engine: e, Clients: []*sim.Client{client}}
	completed, _ := meter.Run(0, 240*sim.Microsecond)
	fmt.Printf("completed %d ops\n", completed)
	fmt.Printf("core busy %v, vault reads %d\n", pim.Stats.Busy, pim.Vault().Reads)
	// Output:
	// completed 1000 ops
	// core busy 60µs, vault reads 2000
}
