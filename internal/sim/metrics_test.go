package sim

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"pimds/internal/obs"
)

// TestMetricsDoNotPerturb: enabling the metrics registry (and a Chrome
// tracer writing to a discard sink) must change simulated results by
// exactly zero — virtual time is cost-model driven, not wall-clock.
func TestMetricsDoNotPerturb(t *testing.T) {
	run := func(instrument bool) (Time, uint64, uint64) {
		e, clients := echoSim(t, 4)
		if instrument {
			e.SetMetrics(obs.NewRegistry())
			e.SetTracer(NewChromeTracer(io.Discard, e))
		}
		runEcho(e, clients, 5*Microsecond)
		var ops uint64
		for _, cl := range clients {
			ops += cl.Completed
		}
		return e.Now(), ops, e.Processed()
	}
	nowA, opsA, procA := run(false)
	nowB, opsB, procB := run(true)
	if nowA != nowB || opsA != opsB || procA != procB {
		t.Errorf("metrics perturbed the run: (%v,%d,%d) vs (%v,%d,%d)",
			nowA, opsA, procA, nowB, opsB, procB)
	}
}

func TestEngineMetricsSnapshot(t *testing.T) {
	e, clients := echoSim(t, 2)
	reg := obs.NewRegistry()
	e.SetMetrics(reg)
	e.SetKindNamer(func(k int) string {
		if k == 1 {
			return "Echo"
		}
		return "Resp"
	})
	if e.Metrics() != reg {
		t.Fatal("Metrics() should return the installed registry")
	}
	runEcho(e, clients, 5*Microsecond)

	s := reg.Snapshot()
	// Per-kind message counts from the send hook.
	if s.Counters["msg/sent/Echo"] == 0 || s.Counters["msg/sent/Resp"] == 0 {
		t.Fatalf("per-kind send counters missing: %v", s.Counters)
	}
	// Request latency histograms: requests are kind Echo; one round
	// trip is 2·Lmessage + Lpim = 210ns with the test config.
	lat, ok := s.Histograms["latency/Echo"]
	if !ok || lat.Count == 0 {
		t.Fatalf("latency histogram missing: %v", s.Histograms)
	}
	if lat.P50 < int64(150*Nanosecond) || lat.P50 > int64(600*Nanosecond) {
		t.Errorf("latency p50 = %d ps, expected a few hundred ns", lat.P50)
	}
	if lat.P99 < lat.P50 {
		t.Errorf("p99 (%d) < p50 (%d)", lat.P99, lat.P50)
	}
	// Collector-exported core/vault/channel state.
	if s.Gauges["vault/001/reads"] == 0 {
		t.Errorf("vault read counter missing: %v", s.Gauges)
	}
	if s.Gauges["core/001/busy_ps"] == 0 || s.Gauges["core/001/ops"] == 0 {
		t.Errorf("core gauges missing: %v", s.Gauges)
	}
	if u := s.Floats["vault/001/utilization"]; u <= 0 || u > 1 {
		t.Errorf("vault utilization = %v, want in (0, 1]", u)
	}
	if s.Gauges["engine/events_processed"] == 0 {
		t.Error("engine gauges missing")
	}
	foundChannel := false
	for name := range s.Gauges {
		if strings.HasPrefix(name, "channel/") {
			foundChannel = true
			break
		}
	}
	if !foundChannel {
		t.Errorf("no per-channel gauges in %v", s.Gauges)
	}

	// The document must be valid, stable JSON.
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	for _, section := range []string{"counters", "gauges", "floats", "histograms"} {
		if _, ok := doc[section]; !ok {
			t.Errorf("snapshot missing %q section", section)
		}
	}
}

// TestQueueDepthWatermark: the inbox high-watermark gauge sees bursts.
func TestQueueDepthWatermark(t *testing.T) {
	e := NewEngine(testConfig())
	reg := obs.NewRegistry()
	e.SetMetrics(reg)
	core := e.NewPIMCore(func(c *PIMCore, m Message) { c.Read() })
	cpu := e.NewCPU(func(c *CPU, m Message) {})
	cpu.Exec(func(c *CPU) {
		for i := 0; i < 5; i++ {
			c.Send(Message{To: core.ID(), Kind: 1})
		}
	})
	e.Run()
	s := reg.Snapshot()
	// All five messages arrive while the core can have served at most a
	// few; the watermark must be at least 2 and the queue empty now.
	if got := s.Gauges["core/001/queue_max"]; got < 2 {
		t.Errorf("queue_max = %d, want >= 2 (gauges: %v)", got, s.Gauges)
	}
	if got := s.Gauges["core/001/queue_len"]; got != 0 {
		t.Errorf("queue_len after drain = %d, want 0", got)
	}
}
