package sim

import (
	"strings"
	"testing"
)

// echoSim builds a one-core echo protocol with n closed-loop clients:
// kind 1 requests are served with one vault read and answered with kind
// 2 responses. It returns the engine and the clients.
func echoSim(t *testing.T, n int) (*Engine, []*Client) {
	t.Helper()
	e := NewEngine(testConfig())
	core := e.NewPIMCore(nil)
	core.SetHandler(func(c *PIMCore, m Message) {
		c.Read()
		c.Send(Message{To: m.From, Kind: 2, Key: m.Key, OK: true})
		c.CountOp()
	})
	var clients []*Client
	for i := 0; i < n; i++ {
		key := int64(i)
		cl := NewClient(e, func(c *CPU, seq uint64) Message {
			return Message{To: core.ID(), Kind: 1, Key: key}
		})
		clients = append(clients, cl)
	}
	return e, clients
}

func runEcho(e *Engine, clients []*Client, d Time) {
	for _, cl := range clients {
		cl.Start()
	}
	e.RunUntil(d)
}

func TestWriterTracerFormat(t *testing.T) {
	var sb strings.Builder
	e, clients := echoSim(t, 1)
	e.SetTracer(&WriterTracer{W: &sb, KindName: func(k int) string {
		if k == 1 {
			return "Echo"
		}
		return "Resp"
	}})
	runEcho(e, clients, 2*Microsecond)

	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected at least send/deliver/served lines, got:\n%s", out)
	}
	for _, want := range []string{"send", "deliver", "served"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q event:\n%s", want, out)
		}
	}
	// The symbolic kind namer must be used, and the default kind=%d
	// format must not leak through.
	if !strings.Contains(out, "Echo") || !strings.Contains(out, "Resp") {
		t.Errorf("trace output does not use KindName:\n%s", out)
	}
	if strings.Contains(out, "kind=") {
		t.Errorf("trace output fell back to numeric kinds:\n%s", out)
	}
	// Without a KindName the numeric form appears.
	sb.Reset()
	e2, clients2 := echoSim(t, 1)
	e2.SetTracer(&WriterTracer{W: &sb})
	runEcho(e2, clients2, 1*Microsecond)
	if !strings.Contains(sb.String(), "kind=1") {
		t.Errorf("default trace output should render kind=1:\n%s", sb.String())
	}
	// Every line carries a virtual timestamp and the key operand.
	for _, line := range lines {
		if !strings.Contains(line, "key=") {
			t.Errorf("trace line missing key operand: %q", line)
		}
	}
}

func TestCountingTracerTallies(t *testing.T) {
	e, clients := echoSim(t, 3)
	ct := NewCountingTracer()
	e.SetTracer(ct)
	runEcho(e, clients, 5*Microsecond)

	if ct.Sent == 0 || ct.Delivered == 0 || ct.Served == 0 {
		t.Fatalf("counting tracer saw nothing: %+v", ct)
	}
	// Every sent message is eventually delivered; the engine only
	// schedules deliveries, so by quiescence at the horizon the counts
	// can differ by at most the in-flight messages. Drain them.
	e.RunFor(Millisecond) // no new requests: clients are closed-loop... keep running
	if ct.Sent < ct.Served {
		t.Errorf("served (%d) cannot exceed sent (%d)", ct.Served, ct.Sent)
	}
	if got := ct.ByKind[1] + ct.ByKind[2]; got != ct.Sent {
		t.Errorf("ByKind sums to %d, want %d", got, ct.Sent)
	}
	if ct.ByKind[1] == 0 || ct.ByKind[2] == 0 {
		t.Errorf("both kinds should appear: %v", ct.ByKind)
	}
}

// TestNilTracerFastPath checks that an engine without a tracer runs the
// identical simulation (same virtual time, ops and message counts) —
// the nil check is the entire cost of the disabled path.
func TestNilTracerFastPath(t *testing.T) {
	run := func(traced bool) (Time, uint64, uint64) {
		e, clients := echoSim(t, 4)
		var ct *CountingTracer
		if traced {
			ct = NewCountingTracer()
			e.SetTracer(ct)
		}
		runEcho(e, clients, 3*Microsecond)
		var ops uint64
		for _, cl := range clients {
			ops += cl.Completed
		}
		return e.Now(), ops, e.Processed()
	}
	nowA, opsA, procA := run(false)
	nowB, opsB, procB := run(true)
	if nowA != nowB || opsA != opsB || procA != procB {
		t.Errorf("tracer perturbed the simulation: (%v,%d,%d) vs (%v,%d,%d)",
			nowA, opsA, procA, nowB, opsB, procB)
	}
}

func TestMultiTracer(t *testing.T) {
	e, clients := echoSim(t, 2)
	a := NewCountingTracer()
	b := NewCountingTracer()
	e.SetTracer(MultiTracer{a, b})
	runEcho(e, clients, 2*Microsecond)
	if a.Sent == 0 {
		t.Fatal("first tracer saw nothing")
	}
	if a.Sent != b.Sent || a.Delivered != b.Delivered || a.Served != b.Served {
		t.Errorf("tracers disagree: %+v vs %+v", a, b)
	}
}
