package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestTakeQueuedDrainsBatch: a handler can drain all already-arrived
// messages in one pass.
func TestTakeQueuedDrainsBatch(t *testing.T) {
	e := NewEngine(testConfig())
	var batches [][]int64
	pim := e.NewPIMCore(nil)
	pim.SetHandler(func(c *PIMCore, m Message) {
		msgs := c.TakeQueued([]Message{m}, -1)
		keys := make([]int64, len(msgs))
		for i, mm := range msgs {
			keys[i] = mm.Key
		}
		batches = append(batches, keys)
		c.ReadN(len(msgs)) // busy long enough for the next burst to pile up
	})
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		for i := int64(0); i < 6; i++ {
			c.Send(Message{To: pim.ID(), Key: i})
		}
	})
	e.Run()
	// All six arrive at the same instant: the first service pass must
	// see the whole burst.
	if len(batches) != 1 || len(batches[0]) != 6 {
		t.Fatalf("batches = %v, want one batch of 6", batches)
	}
	for i, k := range batches[0] {
		if k != int64(i) {
			t.Fatalf("batch out of order: %v", batches[0])
		}
	}
}

// TestTakeQueuedLimit: the limit argument caps the drain.
func TestTakeQueuedLimit(t *testing.T) {
	e := NewEngine(testConfig())
	var sizes []int
	pim := e.NewPIMCore(nil)
	pim.SetHandler(func(c *PIMCore, m Message) {
		msgs := c.TakeQueued([]Message{m}, 1) // at most 1 extra
		sizes = append(sizes, len(msgs))
	})
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		for i := int64(0); i < 5; i++ {
			c.Send(Message{To: pim.ID(), Key: i})
		}
	})
	e.Run()
	// 5 messages served in batches of ≤ 2: [2 2 1].
	if len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("batch sizes = %v, want [2 2 1]", sizes)
	}
}

// TestTakeQueuedOutsideHandlerPanics: inbox access is handler-only.
func TestTakeQueuedOutsideHandlerPanics(t *testing.T) {
	e := NewEngine(testConfig())
	pim := e.NewPIMCore(nil)
	defer func() {
		if recover() == nil {
			t.Error("TakeQueued outside handler should panic")
		}
	}()
	pim.TakeQueued(nil, -1)
}

// TestServiceDelayCollectsStragglers: with a service delay just above a
// round trip, clients answered by the previous pass rejoin the next
// batch (the combining list's batching mechanism).
func TestServiceDelayCollectsStragglers(t *testing.T) {
	run := func(delay Time) float64 {
		e := NewEngine(testConfig())
		var batchTotal, batches int
		pim := e.NewPIMCore(nil)
		pim.ServiceDelay = delay
		pim.SetHandler(func(c *PIMCore, m Message) {
			msgs := c.TakeQueued([]Message{m}, -1)
			batchTotal += len(msgs)
			batches++
			c.ReadN(100) // long service: 3µs per batch
			for _, mm := range msgs {
				c.Send(Message{To: mm.From, OK: true})
			}
		})
		clients := make([]*Client, 8)
		for i := range clients {
			clients[i] = NewClient(e, func(c *CPU, seq uint64) Message {
				return Message{To: pim.ID()}
			})
		}
		m := &Meter{Engine: e, Clients: clients}
		m.Run(100*Microsecond, 500*Microsecond)
		return float64(batchTotal) / float64(batches)
	}
	noDelay := run(0)
	withDelay := run(2*90*Nanosecond + Nanosecond)
	if withDelay < 7.5 {
		t.Errorf("avg batch with delay = %.2f, want ≈ 8", withDelay)
	}
	if noDelay > withDelay {
		t.Errorf("delay should not shrink batches: %.2f vs %.2f", noDelay, withDelay)
	}
}

// TestExecWhileBusyRequeues: Exec on a busy CPU runs after the current
// work completes.
func TestExecWhileBusyRequeues(t *testing.T) {
	e := NewEngine(testConfig())
	cpu := e.NewCPU(nil)
	var order []string
	cpu.Exec(func(c *CPU) {
		c.MemReadN(10) // busy until 900ns
		order = append(order, "first")
	})
	e.Schedule(100*Nanosecond, func() {
		cpu.Exec(func(c *CPU) {
			order = append(order, "second")
			if c.Clock() < 900*Nanosecond {
				t.Errorf("second exec ran at %v, want ≥ 900ns", c.Clock())
			}
		})
	})
	e.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

// TestLoopClosedLoopThroughput: Loop iterations are back-to-back in
// virtual time.
func TestLoopClosedLoopThroughput(t *testing.T) {
	e := NewEngine(testConfig())
	cpu := e.NewCPU(nil)
	Loop(cpu, func(c *CPU) {
		c.MemRead() // 90ns per iteration
		c.CountOp()
	})
	completed, ops := Measure(e, func() {}, OpsOfCPUs([]*CPU{cpu}), 9*Microsecond, 90*Microsecond)
	// 90µs / 90ns = 1000 ops exactly (ops/s comparison is subject to
	// float rounding, so compare the count).
	if completed != 1000 {
		t.Errorf("loop completed = %d (%v ops/s), want 1000", completed, ops)
	}
}

// TestOpsOfPIMCores sums across cores.
func TestOpsOfPIMCores(t *testing.T) {
	e := NewEngine(testConfig())
	a := e.NewPIMCore(echoHandler(1))
	b := e.NewPIMCore(echoHandler(1))
	cl1 := NewClient(e, func(c *CPU, seq uint64) Message { return Message{To: a.ID()} })
	cl2 := NewClient(e, func(c *CPU, seq uint64) Message { return Message{To: b.ID()} })
	m := &Meter{Engine: e, Clients: []*Client{cl1, cl2}}
	m.Run(0, 100*Microsecond)
	snap := OpsOfPIMCores([]*PIMCore{a, b})
	if got := snap(); got != a.Stats.Ops+b.Stats.Ops || got == 0 {
		t.Errorf("OpsOfPIMCores = %d", got)
	}
}

// TestInboxCompaction exercises the inbox head-compaction path with
// thousands of queued messages.
func TestInboxCompaction(t *testing.T) {
	e := NewEngine(testConfig())
	served := 0
	pim := e.NewPIMCore(func(c *PIMCore, m Message) {
		served++
		c.Local()
	})
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		for i := 0; i < 5000; i++ {
			c.Send(Message{To: pim.ID(), Key: int64(i)})
		}
	})
	e.Run()
	if served != 5000 {
		t.Fatalf("served = %d, want 5000", served)
	}
}

// TestPerChannelFIFOProperty: random interleavings of sends on several
// channels always deliver per-channel in order.
func TestPerChannelFIFOProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		e := NewEngine(testConfig())
		const senders = 3
		received := map[CoreID][]int64{}
		pim := e.NewPIMCore(func(c *PIMCore, m Message) {
			received[m.From] = append(received[m.From], m.Key)
			c.ReadN(int(seedRaw%3) + 1)
		})
		for s := 0; s < senders; s++ {
			s := s
			cpu := e.NewCPU(nil)
			cpu.Exec(func(c *CPU) {
				for i := int64(0); i < 20; i++ {
					c.Compute(Time(int64(seedRaw)+i*int64(s+1)) * Nanosecond)
					c.Send(Message{To: pim.ID(), Key: i})
				}
			})
		}
		e.Run()
		for _, keys := range received {
			for i := 1; i < len(keys); i++ {
				if keys[i] <= keys[i-1] {
					return false
				}
			}
			if len(keys) != 20 {
				return false
			}
		}
		return len(received) == senders
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRemoteVaultAccess: remote accesses charge LpimRemote against the
// target vault's counters.
func TestRemoteVaultAccess(t *testing.T) {
	cfg := testConfig()
	cfg.LpimRemote = 60 * Nanosecond
	e := NewEngine(cfg)
	target := e.NewPIMCore(func(c *PIMCore, m Message) {})
	var clk Time
	src := e.NewPIMCore(nil)
	src.SetHandler(func(c *PIMCore, m Message) {
		c.RemoteRead(target.Vault())
		c.RemoteWrite(target.Vault())
		clk = c.Clock()
	})
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) { c.Send(Message{To: src.ID()}) })
	e.Run()
	// Handler starts at 90ns (message arrival), + 2×60ns remote.
	if want := 210 * Nanosecond; clk != want {
		t.Errorf("clock = %v, want %v", clk, want)
	}
	if target.Vault().Reads != 1 || target.Vault().Writes != 1 {
		t.Errorf("target vault counters: %d/%d", target.Vault().Reads, target.Vault().Writes)
	}
}

// TestRemoteAccessGuards: disabled remote access and local-vault misuse
// both panic.
func TestRemoteAccessGuards(t *testing.T) {
	runPanics := func(name string, cfg Config, f func(c *PIMCore, other *PIMCore)) {
		e := NewEngine(cfg)
		other := e.NewPIMCore(func(c *PIMCore, m Message) {})
		core := e.NewPIMCore(nil)
		core.SetHandler(func(c *PIMCore, m Message) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f(c, other)
		})
		cpu := e.NewCPU(nil)
		cpu.Exec(func(c *CPU) { c.Send(Message{To: core.ID()}) })
		e.Run()
	}
	runPanics("remote access when disabled", testConfig(), func(c *PIMCore, other *PIMCore) {
		c.RemoteRead(other.Vault())
	})
	enabled := testConfig()
	enabled.LpimRemote = 60 * Nanosecond
	runPanics("remote access to own vault", enabled, func(c *PIMCore, other *PIMCore) {
		c.RemoteWrite(c.Vault())
	})
}

// TestClientLatencyHistogram: a fixed-cost closed loop yields a
// constant latency equal to the round trip.
func TestClientLatencyHistogram(t *testing.T) {
	e := NewEngine(testConfig())
	pim := e.NewPIMCore(echoHandler(2))
	cl := NewClient(e, func(c *CPU, seq uint64) Message {
		return Message{To: pim.ID()}
	})
	m := &Meter{Engine: e, Clients: []*Client{cl}}
	m.Run(0, 48*Microsecond) // 200 ops at 240ns each
	if cl.Latency.N() < 100 {
		t.Fatalf("latency samples = %d", cl.Latency.N())
	}
	// Round trip = 90 + 60 + 90 = 240ns = 240000ps; histogram lower
	// bound of the containing sub-bucket is within 1/16.
	p50, _, p99 := cl.Latency.Percentiles()
	if p50 < 220_000 || p50 > 240_000 || p99 < 220_000 || p99 > 240_000 {
		t.Errorf("p50/p99 = %d/%d ps, want ≈ 240000", p50, p99)
	}
	if mean := cl.Latency.Mean(); mean != 240_000 {
		t.Errorf("mean latency = %v ps, want exactly 240000", mean)
	}
}

// TestTracerObservesProtocol: the counting tracer sees every send,
// delivery and served message.
func TestTracerObservesProtocol(t *testing.T) {
	e := NewEngine(testConfig())
	tr := NewCountingTracer()
	e.SetTracer(tr)
	pim := e.NewPIMCore(echoHandler(1))
	cl := NewClient(e, func(c *CPU, seq uint64) Message {
		return Message{To: pim.ID(), Kind: 7}
	})
	m := &Meter{Engine: e, Clients: []*Client{cl}}
	completed, _ := m.Run(0, 50*Microsecond)
	if completed == 0 {
		t.Fatal("nothing completed")
	}
	// Each op = request + response; requests are kind 7, replies kind 8.
	if tr.Sent < 2*completed || tr.Delivered < 2*completed {
		t.Errorf("sent/delivered = %d/%d, want ≥ %d", tr.Sent, tr.Delivered, 2*completed)
	}
	if tr.ByKind[7] < completed || tr.ByKind[8] < completed {
		t.Errorf("per-kind counts = %v", tr.ByKind)
	}
	if tr.Served < completed {
		t.Errorf("served = %d, want ≥ %d", tr.Served, completed)
	}
}

// TestWriterTracerFormats: text tracing produces one line per event
// with symbolic kinds when a namer is installed.
func TestWriterTracerFormats(t *testing.T) {
	var buf strings.Builder
	e := NewEngine(testConfig())
	e.SetTracer(&WriterTracer{W: &buf, KindName: func(k int) string { return "OP" }})
	pim := e.NewPIMCore(echoHandler(1))
	cpu := e.NewCPU(func(c *CPU, m Message) {})
	cpu.Exec(func(c *CPU) { c.Send(Message{To: pim.ID(), Kind: 1, Key: 42}) })
	e.Run()
	out := buf.String()
	for _, want := range []string{"send", "deliver", "served", "OP", "key=42"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestMessageGapThrottlesInjection: with a finite injection gap, one
// sender's burst of messages serializes at 1/gap.
func TestMessageGapThrottlesInjection(t *testing.T) {
	cfg := testConfig()
	cfg.MessageGap = 50 * Nanosecond
	e := NewEngine(cfg)
	var arrivals []Time
	sink := e.NewPIMCore(func(c *PIMCore, m Message) {
		arrivals = append(arrivals, e.Now())
	})
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		for i := 0; i < 5; i++ {
			c.Send(Message{To: sink.ID(), Key: int64(i)})
		}
	})
	e.Run()
	if len(arrivals) != 5 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// First at 90ns, then spaced by the 50ns gap.
	for i, at := range arrivals {
		want := 90*Nanosecond + Time(i)*50*Nanosecond
		if at != want {
			t.Errorf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

// TestMessageGapZeroIsUnlimited: the default model is unthrottled.
func TestMessageGapZeroIsUnlimited(t *testing.T) {
	e := NewEngine(testConfig())
	var arrivals []Time
	sink := e.NewPIMCore(func(c *PIMCore, m Message) {
		arrivals = append(arrivals, e.Now())
	})
	cpu := e.NewCPU(nil)
	cpu.Exec(func(c *CPU) {
		for i := 0; i < 3; i++ {
			c.Send(Message{To: sink.ID()})
		}
	})
	e.Run()
	for _, at := range arrivals {
		if at != 90*Nanosecond {
			t.Errorf("arrival at %v, want 90ns (no gap)", at)
		}
	}
}
