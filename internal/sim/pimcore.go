package sim

import "fmt"

// CoreStats aggregates what a core did during a simulation.
type CoreStats struct {
	Messages uint64 // messages processed from the inbox
	Ops      uint64 // completed data-structure operations (protocol-defined)
	Busy     Time   // total virtual time spent executing handlers
}

// PIMHandler is the program of a PIM core: it is invoked once per
// inbound message, in arrival order. Inside the handler the core's
// local clock advances as the handler calls Read, Write, Compute and
// Send; when the handler returns, the core becomes available for its
// next message at the advanced clock.
//
// This is the paper's in-order PIM core: everything a core does is
// sequential, and pipelining (Section 5.2) falls out naturally because
// Send does not wait for delivery.
type PIMHandler func(c *PIMCore, m Message)

// PIMCore is a lightweight in-order core attached to one vault. It can
// read and write only its local vault (plain loads and stores — the
// architecture gives PIM cores no atomic operations), and communicates
// with everything else by messages.
type PIMCore struct {
	eng     *Engine
	id      CoreID
	vault   *Vault
	handler PIMHandler

	inbox     []Message
	inboxHead int
	busyUntil Time
	scheduled bool
	running   bool
	clock     Time

	// ServiceDelay postpones the start of each buffer-service pass by
	// a fixed amount. Protocols that batch their whole buffer per pass
	// (the combining linked-list) set it slightly above one round trip
	// (2·Lmessage) so that clients answered by the previous pass can
	// get their next request into the buffer — otherwise a saturated
	// core falls into lockstep with half its clients and batches never
	// grow past p/2. The cost is the same delay added to an idle
	// core's response latency.
	ServiceDelay Time

	Stats CoreStats
}

// NewPIMCore registers a new PIM core with its own vault. The handler
// may be nil at creation and set later with SetHandler (data structures
// need the core's ID to build their protocol before wiring the
// handler).
func (e *Engine) NewPIMCore(handler PIMHandler) *PIMCore {
	c := &PIMCore{eng: e, handler: handler}
	c.id = e.register(c)
	c.vault = &Vault{id: int(c.id), owner: c.id}
	return c
}

// SetHandler installs the core's message handler.
func (c *PIMCore) SetHandler(h PIMHandler) { c.handler = h }

// ID returns the core's engine-assigned identifier.
func (c *PIMCore) ID() CoreID { return c.id }

// Vault returns the core's local vault.
func (c *PIMCore) Vault() *Vault { return c.vault }

// Engine returns the core's engine.
func (c *PIMCore) Engine() *Engine { return c.eng }

// QueueLen returns the number of buffered, unprocessed messages.
func (c *PIMCore) QueueLen() int { return len(c.inbox) - c.inboxHead }

func (c *PIMCore) coreID() CoreID { return c.id }

func (c *PIMCore) deliver(m Message) {
	c.inbox = append(c.inbox, m)
	if c.eng.met != nil {
		c.eng.met.queueDepth(c.id, len(c.inbox)-c.inboxHead)
	}
	c.maybeSchedule()
}

func (c *PIMCore) maybeSchedule() {
	if c.scheduled || c.running || c.inboxHead >= len(c.inbox) {
		return
	}
	c.scheduled = true
	at := c.eng.now
	if c.busyUntil > at {
		at = c.busyUntil
	}
	c.eng.Schedule(at+c.ServiceDelay, c.service)
}

// service processes exactly one message. Handling one message per event
// (rather than draining the inbox) keeps the interleaving with newly
// arriving messages faithful: a message that arrives while the core is
// busy is processed after the current one completes, in arrival order.
func (c *PIMCore) service() {
	c.scheduled = false
	m := c.inbox[c.inboxHead]
	c.inboxHead++
	if c.inboxHead == len(c.inbox) {
		c.inbox = c.inbox[:0]
		c.inboxHead = 0
	} else if c.inboxHead > 1024 && c.inboxHead*2 > len(c.inbox) {
		n := copy(c.inbox, c.inbox[c.inboxHead:])
		c.inbox = c.inbox[:n]
		c.inboxHead = 0
	}

	start := c.eng.now
	c.clock = start
	c.running = true
	if c.handler == nil {
		panic(fmt.Sprintf("sim: PIM core %d received message with no handler", c.id))
	}
	if p := c.eng.prof; p != nil {
		p.MsgConsumed(start, m.pid, c.id, false)
	}
	c.handler(c, m)
	c.running = false
	c.busyUntil = c.clock
	c.Stats.Messages++
	c.Stats.Busy += c.clock - start
	if c.eng.tracer != nil {
		c.eng.tracer.HandlerDone(c.clock, c.id, m, c.clock-start)
	}
	if p := c.eng.prof; p != nil {
		p.HandlerEnd(c.clock, c.id)
	}
	c.maybeSchedule()
}

// mustRun panics if called outside a handler; every cost-charging
// method requires an active local clock.
func (c *PIMCore) mustRun(op string) {
	if !c.running {
		panic(fmt.Sprintf("sim: PIM core %d: %s outside handler", c.id, op))
	}
}

// Clock returns the core's local virtual time inside a handler.
func (c *PIMCore) Clock() Time {
	c.mustRun("Clock")
	return c.clock
}

// advance moves the local clock by d and reports the charge to the
// profiler, if attached.
func (c *PIMCore) advance(kind CostKind, d Time) {
	c.clock += d
	if p := c.eng.prof; p != nil && d > 0 {
		p.Charge(c.clock, c.id, kind, d)
	}
}

// Read charges one local-vault load (Lpim).
func (c *PIMCore) Read() {
	c.mustRun("Read")
	c.advance(CostMemory, c.eng.cfg.Lpim)
	c.vault.Reads++
}

// Write charges one local-vault store (Lpim).
func (c *PIMCore) Write() {
	c.mustRun("Write")
	c.advance(CostMemory, c.eng.cfg.Lpim)
	c.vault.Writes++
}

// RemoteRead charges one load of another core's vault (LpimRemote).
// It panics unless the configuration enables remote vault access
// (Section 2 footnote 2) and v is not the local vault.
func (c *PIMCore) RemoteRead(v *Vault) {
	c.mustRun("RemoteRead")
	c.remoteCheck(v)
	c.advance(CostMemory, c.eng.cfg.LpimRemote)
	v.Reads++
}

// RemoteWrite charges one store to another core's vault (LpimRemote).
func (c *PIMCore) RemoteWrite(v *Vault) {
	c.mustRun("RemoteWrite")
	c.remoteCheck(v)
	c.advance(CostMemory, c.eng.cfg.LpimRemote)
	v.Writes++
}

func (c *PIMCore) remoteCheck(v *Vault) {
	if c.eng.cfg.LpimRemote <= 0 {
		panic("sim: remote vault access disabled (LpimRemote = 0)")
	}
	if v.owner == c.id {
		panic("sim: RemoteRead/Write on the local vault; use Read/Write")
	}
}

// ReadN charges n local-vault loads.
func (c *PIMCore) ReadN(n int) {
	for i := 0; i < n; i++ {
		c.Read()
	}
}

// Local charges one L1/bookkeeping step (Epsilon). The paper's model
// treats these as negligible; the default Epsilon is zero but can be
// raised to study sensitivity.
func (c *PIMCore) Local() {
	c.mustRun("Local")
	c.advance(CostService, c.eng.cfg.Epsilon)
}

// Compute charges d of pure computation.
func (c *PIMCore) Compute(d Time) {
	c.mustRun("Compute")
	if d < 0 {
		panic("sim: negative compute time")
	}
	c.advance(CostService, d)
}

// Send transmits m (stamped From = this core) without waiting for
// delivery: the core continues immediately, which is exactly the
// pipelining of Section 5.2. Sending itself costs Epsilon.
func (c *PIMCore) Send(m Message) {
	c.mustRun("Send")
	m.From = c.id
	c.advance(CostService, c.eng.cfg.Epsilon)
	c.eng.send(c.clock, m)
}

// CountOp records one completed data-structure operation for
// throughput accounting.
func (c *PIMCore) CountOp() { c.Stats.Ops++ }

// TakeQueued appends up to limit already-buffered messages to dst and
// removes them from the inbox (limit < 0 means all). It may only be
// called from inside the handler and models a core scanning its whole
// message buffer at once — the basis of the combining optimization of
// Section 4.1. Draining the buffer costs one Epsilon per message.
func (c *PIMCore) TakeQueued(dst []Message, limit int) []Message {
	c.mustRun("TakeQueued")
	for (limit < 0 || limit > 0) && c.inboxHead < len(c.inbox) {
		m := c.inbox[c.inboxHead]
		dst = append(dst, m)
		c.inboxHead++
		if p := c.eng.prof; p != nil {
			p.MsgConsumed(c.clock, m.pid, c.id, true)
		}
		c.advance(CostService, c.eng.cfg.Epsilon)
		if limit > 0 {
			limit--
		}
	}
	if c.inboxHead == len(c.inbox) {
		c.inbox = c.inbox[:0]
		c.inboxHead = 0
	}
	return dst
}
