package sim

import (
	"fmt"
	"io"

	"pimds/internal/obs"
)

// ChromeTracer emits Chrome trace-event JSON (the format chrome://
// tracing and Perfetto load): every served request becomes a complete
// ("X") slice on its core's track, and every message transfer becomes
// an async ("b"/"e") span from send to delivery, so the UI shows
// per-core timelines with message round-trips between them.
//
// Virtual time is rendered in microseconds (the trace format's unit)
// with picosecond precision. Event encoding and array framing are
// obs.ChromeWriter's (shared with pimserve's wall-clock span export,
// so simulator and server traces open in the same viewer); the tracer
// buffers nothing and streams events as they fire. Call Close to
// terminate the JSON array; the output is a single JSON array of
// event objects.
type ChromeTracer struct {
	cw  *obs.ChromeWriter
	eng *Engine // for kind and core names; may be nil

	named map[CoreID]bool         // tids with a thread_name metadata event
	flows map[channelKey][]uint64 // pending flow ids, FIFO per channel
	next  uint64                  // next flow id
}

// NewChromeTracer returns a tracer streaming trace events to w. eng,
// when non-nil, supplies symbolic kind names (Engine.SetKindNamer) and
// core kinds for track naming.
func NewChromeTracer(w io.Writer, eng *Engine) *ChromeTracer {
	return &ChromeTracer{cw: obs.NewChromeWriter(w), eng: eng, named: make(map[CoreID]bool), flows: make(map[channelKey][]uint64)}
}

// us converts virtual time to trace microseconds.
func us(t Time) float64 { return float64(t) / 1e6 }

func (t *ChromeTracer) kind(k int) string {
	if t.eng != nil {
		return t.eng.KindName(k)
	}
	return fmt.Sprintf("kind_%02d", k)
}

// nameThread emits a one-time thread_name metadata event for id.
func (t *ChromeTracer) nameThread(id CoreID) {
	if t.named[id] {
		return
	}
	t.named[id] = true
	name := fmt.Sprintf("core %d", id)
	if t.eng != nil {
		switch t.eng.endpoints[id].(type) {
		case *PIMCore:
			name = fmt.Sprintf("pim core %d", id)
		case *CPU:
			name = fmt.Sprintf("cpu %d", id)
		}
	}
	t.cw.Emit(obs.TraceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: int(id),
		Args: map[string]interface{}{"name": name}})
}

// MessageSent implements Tracer: opens an async span on the sender's
// track. Per-channel FIFO delivery lets MessageDelivered pair spans by
// matching ids in order.
func (t *ChromeTracer) MessageSent(at Time, m Message) {
	t.nameThread(m.From)
	t.next++
	key := channelKey{m.From, m.To}
	t.flows[key] = append(t.flows[key], t.next)
	t.cw.Emit(obs.TraceEvent{Name: t.kind(m.Kind), Cat: "msg", Ph: "b", Ts: us(at),
		Pid: 1, Tid: int(m.From), ID: fmt.Sprintf("%#x", t.next),
		Args: map[string]interface{}{"key": m.Key, "to": int(m.To)}})
}

// MessageDelivered implements Tracer: closes the channel's oldest open
// async span.
func (t *ChromeTracer) MessageDelivered(at Time, m Message) {
	t.nameThread(m.To)
	key := channelKey{m.From, m.To}
	ids := t.flows[key]
	if len(ids) == 0 {
		return // delivery without a traced send (tracer installed mid-run)
	}
	id := ids[0]
	t.flows[key] = ids[1:]
	t.cw.Emit(obs.TraceEvent{Name: t.kind(m.Kind), Cat: "msg", Ph: "e", Ts: us(at),
		Pid: 1, Tid: int(m.From), ID: fmt.Sprintf("%#x", id)})
}

// HandlerDone implements Tracer: draws the handler's execution as a
// complete slice ending at the core's local clock.
func (t *ChromeTracer) HandlerDone(at Time, core CoreID, m Message, busy Time) {
	t.nameThread(core)
	dur := us(busy)
	t.cw.Emit(obs.TraceEvent{Name: t.kind(m.Kind), Cat: "handler", Ph: "X",
		Ts: us(at - busy), Dur: &dur, Pid: 1, Tid: int(core),
		Args: map[string]interface{}{"key": m.Key}})
}

// Close terminates the JSON array and reports any write error. The
// tracer is unusable afterwards.
func (t *ChromeTracer) Close() error {
	return t.cw.Close()
}

// MultiTracer fans simulator events out to several tracers, e.g. a
// text trace and a Chrome trace in the same run.
type MultiTracer []Tracer

// MessageSent implements Tracer.
func (ts MultiTracer) MessageSent(at Time, m Message) {
	for _, t := range ts {
		t.MessageSent(at, m)
	}
}

// MessageDelivered implements Tracer.
func (ts MultiTracer) MessageDelivered(at Time, m Message) {
	for _, t := range ts {
		t.MessageDelivered(at, m)
	}
}

// HandlerDone implements Tracer.
func (ts MultiTracer) HandlerDone(at Time, core CoreID, m Message, busy Time) {
	for _, t := range ts {
		t.HandlerDone(at, core, m, busy)
	}
}
