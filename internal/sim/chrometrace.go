package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTracer emits Chrome trace-event JSON (the format chrome://
// tracing and Perfetto load): every served request becomes a complete
// ("X") slice on its core's track, and every message transfer becomes
// an async ("b"/"e") span from send to delivery, so the UI shows
// per-core timelines with message round-trips between them.
//
// Virtual time is rendered in microseconds (the trace format's unit)
// with picosecond precision. The tracer buffers nothing: events stream
// to W as they fire. Call Close to terminate the JSON array; the
// output is a single JSON array of event objects.
type ChromeTracer struct {
	w   io.Writer
	eng *Engine // for kind and core names; may be nil
	err error

	n     int                     // events written
	named map[CoreID]bool         // tids with a thread_name metadata event
	flows map[channelKey][]uint64 // pending flow ids, FIFO per channel
	next  uint64                  // next flow id
}

// NewChromeTracer returns a tracer streaming trace events to w. eng,
// when non-nil, supplies symbolic kind names (Engine.SetKindNamer) and
// core kinds for track naming.
func NewChromeTracer(w io.Writer, eng *Engine) *ChromeTracer {
	return &ChromeTracer{w: w, eng: eng, named: make(map[CoreID]bool), flows: make(map[channelKey][]uint64)}
}

// chromeEvent is one trace event. Fields follow the Chrome trace-event
// format; Ts and Dur are microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// us converts virtual time to trace microseconds.
func us(t Time) float64 { return float64(t) / 1e6 }

func (t *ChromeTracer) kind(k int) string {
	if t.eng != nil {
		return t.eng.KindName(k)
	}
	return fmt.Sprintf("kind_%02d", k)
}

// emit writes one event, managing the enclosing JSON array.
func (t *ChromeTracer) emit(ev chromeEvent) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	sep := ",\n"
	if t.n == 0 {
		sep = "[\n"
	}
	if _, err := io.WriteString(t.w, sep); err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.n++
}

// nameThread emits a one-time thread_name metadata event for id.
func (t *ChromeTracer) nameThread(id CoreID) {
	if t.named[id] {
		return
	}
	t.named[id] = true
	name := fmt.Sprintf("core %d", id)
	if t.eng != nil {
		switch t.eng.endpoints[id].(type) {
		case *PIMCore:
			name = fmt.Sprintf("pim core %d", id)
		case *CPU:
			name = fmt.Sprintf("cpu %d", id)
		}
	}
	t.emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: int(id),
		Args: map[string]interface{}{"name": name}})
}

// MessageSent implements Tracer: opens an async span on the sender's
// track. Per-channel FIFO delivery lets MessageDelivered pair spans by
// matching ids in order.
func (t *ChromeTracer) MessageSent(at Time, m Message) {
	t.nameThread(m.From)
	t.next++
	key := channelKey{m.From, m.To}
	t.flows[key] = append(t.flows[key], t.next)
	t.emit(chromeEvent{Name: t.kind(m.Kind), Cat: "msg", Ph: "b", Ts: us(at),
		Pid: 1, Tid: int(m.From), ID: fmt.Sprintf("%#x", t.next),
		Args: map[string]interface{}{"key": m.Key, "to": int(m.To)}})
}

// MessageDelivered implements Tracer: closes the channel's oldest open
// async span.
func (t *ChromeTracer) MessageDelivered(at Time, m Message) {
	t.nameThread(m.To)
	key := channelKey{m.From, m.To}
	ids := t.flows[key]
	if len(ids) == 0 {
		return // delivery without a traced send (tracer installed mid-run)
	}
	id := ids[0]
	t.flows[key] = ids[1:]
	t.emit(chromeEvent{Name: t.kind(m.Kind), Cat: "msg", Ph: "e", Ts: us(at),
		Pid: 1, Tid: int(m.From), ID: fmt.Sprintf("%#x", id)})
}

// HandlerDone implements Tracer: draws the handler's execution as a
// complete slice ending at the core's local clock.
func (t *ChromeTracer) HandlerDone(at Time, core CoreID, m Message, busy Time) {
	t.nameThread(core)
	dur := us(busy)
	t.emit(chromeEvent{Name: t.kind(m.Kind), Cat: "handler", Ph: "X",
		Ts: us(at - busy), Dur: &dur, Pid: 1, Tid: int(core),
		Args: map[string]interface{}{"key": m.Key}})
}

// Close terminates the JSON array and reports any write error. The
// tracer is unusable afterwards.
func (t *ChromeTracer) Close() error {
	if t.err != nil {
		return t.err
	}
	open := "[\n"
	if t.n > 0 {
		open = ""
	}
	_, err := io.WriteString(t.w, open+"\n]\n")
	return err
}

// MultiTracer fans simulator events out to several tracers, e.g. a
// text trace and a Chrome trace in the same run.
type MultiTracer []Tracer

// MessageSent implements Tracer.
func (ts MultiTracer) MessageSent(at Time, m Message) {
	for _, t := range ts {
		t.MessageSent(at, m)
	}
}

// MessageDelivered implements Tracer.
func (ts MultiTracer) MessageDelivered(at Time, m Message) {
	for _, t := range ts {
		t.MessageDelivered(at, m)
	}
}

// HandlerDone implements Tracer.
func (ts MultiTracer) HandlerDone(at Time, core CoreID, m Message, busy Time) {
	for _, t := range ts {
		t.HandlerDone(at, core, m, busy)
	}
}
