package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestChromeTracerEmitsValidTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	e, clients := echoSim(t, 2)
	e.SetKindNamer(func(k int) string {
		if k == 1 {
			return "Echo"
		}
		return "Resp"
	})
	ct := NewChromeTracer(&buf, e)
	e.SetTracer(ct)
	runEcho(e, clients, 3*Microsecond)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array of events: %v\n%s", err, buf.String())
	}
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}

	phases := map[string]int{}
	begins := map[string]int{} // open async spans by id
	sawThreadName := false
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "M":
			if ev["name"] == "thread_name" {
				sawThreadName = true
			}
			continue
		case "b":
			begins[ev["id"].(string)]++
		case "e":
			begins[ev["id"].(string)]--
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("X event without dur: %v", ev)
			}
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event without numeric ts: %v", ev)
		}
		name, _ := ev["name"].(string)
		if name != "Echo" && name != "Resp" {
			t.Errorf("event with unexpected name %q", name)
		}
	}
	if phases["X"] == 0 {
		t.Error("no handler slices (ph=X)")
	}
	if phases["b"] == 0 || phases["e"] == 0 {
		t.Errorf("no message spans: phases=%v", phases)
	}
	if !sawThreadName {
		t.Error("no thread_name metadata events")
	}
	for id, n := range begins {
		if n < 0 {
			t.Errorf("async span %s ended more times than it began", id)
		}
	}
}

func TestChromeTracerEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTracer(&buf, nil)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%q", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("expected no events, got %d", len(events))
	}
}

// TestChromeTracerAsyncSpanIDsUnique: every async message span ("b")
// must carry a fresh id, and each id must be closed ("e") exactly once
// — duplicated or recycled ids make Perfetto merge unrelated message
// flights into one span.
func TestChromeTracerAsyncSpanIDsUnique(t *testing.T) {
	var buf bytes.Buffer
	e, clients := echoSim(t, 4)
	ct := NewChromeTracer(&buf, e)
	e.SetTracer(ct)
	runEcho(e, clients, 5*Microsecond)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	begun := map[string]float64{} // id -> begin ts
	ended := map[string]bool{}
	for _, ev := range events {
		id, _ := ev["id"].(string)
		ts, _ := ev["ts"].(float64)
		switch ev["ph"] {
		case "b":
			if _, dup := begun[id]; dup {
				t.Fatalf("async span id %s begun twice", id)
			}
			begun[id] = ts
		case "e":
			if _, ok := begun[id]; !ok {
				t.Fatalf("async span id %s ended without beginning", id)
			}
			if ended[id] {
				t.Fatalf("async span id %s ended twice", id)
			}
			ended[id] = true
			if ts < begun[id] {
				t.Fatalf("async span id %s ends at %v before it begins at %v", id, ts, begun[id])
			}
		}
	}
	if len(begun) < 2 {
		t.Fatalf("expected many async spans, saw %d", len(begun))
	}
	// Closed-loop clients always have one message in flight, so up to
	// one span per client may legitimately still be open at cutoff.
	if open := len(begun) - len(ended); open > 4 {
		t.Errorf("%d async spans never ended; at most one in-flight message per client expected", open)
	}
}

// recordingTracer logs every callback into a shared sequence so tests
// can check MultiTracer's fan-out order.
type recordingTracer struct {
	name string
	log  *[]string
}

func (r *recordingTracer) MessageSent(at Time, m Message) {
	*r.log = append(*r.log, fmt.Sprintf("%s:sent:%d->%d@%d", r.name, m.From, m.To, at))
}
func (r *recordingTracer) MessageDelivered(at Time, m Message) {
	*r.log = append(*r.log, fmt.Sprintf("%s:delivered:%d->%d@%d", r.name, m.From, m.To, at))
}
func (r *recordingTracer) HandlerDone(at Time, core CoreID, m Message, busy Time) {
	*r.log = append(*r.log, fmt.Sprintf("%s:done:%d@%d", r.name, core, at))
}

// TestMultiTracerFanOutOrdering: MultiTracer must invoke its tracers in
// slice order for every event, with no reordering or dropped fan-out —
// the log must be a strict alternation a,b,a,b,… where each pair
// describes the same event.
func TestMultiTracerFanOutOrdering(t *testing.T) {
	var log []string
	a := &recordingTracer{name: "a", log: &log}
	b := &recordingTracer{name: "b", log: &log}
	e, clients := echoSim(t, 2)
	e.SetTracer(MultiTracer{a, b})
	runEcho(e, clients, 2*Microsecond)

	if len(log) == 0 {
		t.Fatal("no tracer callbacks recorded")
	}
	if len(log)%2 != 0 {
		t.Fatalf("odd log length %d: some event did not fan out to both tracers", len(log))
	}
	for i := 0; i < len(log); i += 2 {
		first, second := log[i], log[i+1]
		if !strings.HasPrefix(first, "a:") || !strings.HasPrefix(second, "b:") {
			t.Fatalf("fan-out out of order at %d: %q then %q", i, first, second)
		}
		if first[2:] != second[2:] {
			t.Fatalf("tracers saw different events at %d: %q vs %q", i, first, second)
		}
	}
}

// TestChromeTracerDoesNotPerturb: tracing must not change virtual-time
// results.
func TestChromeTracerDoesNotPerturb(t *testing.T) {
	run := func(traced bool) (Time, uint64) {
		e, clients := echoSim(t, 3)
		if traced {
			var buf bytes.Buffer
			e.SetTracer(NewChromeTracer(&buf, e))
		}
		runEcho(e, clients, 3*Microsecond)
		var ops uint64
		for _, cl := range clients {
			ops += cl.Completed
		}
		return e.Now(), ops
	}
	nowA, opsA := run(false)
	nowB, opsB := run(true)
	if nowA != nowB || opsA != opsB {
		t.Errorf("chrome tracer perturbed the run: (%v,%d) vs (%v,%d)", nowA, opsA, nowB, opsB)
	}
}
