package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeTracerEmitsValidTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	e, clients := echoSim(t, 2)
	e.SetKindNamer(func(k int) string {
		if k == 1 {
			return "Echo"
		}
		return "Resp"
	})
	ct := NewChromeTracer(&buf, e)
	e.SetTracer(ct)
	runEcho(e, clients, 3*Microsecond)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array of events: %v\n%s", err, buf.String())
	}
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}

	phases := map[string]int{}
	begins := map[string]int{} // open async spans by id
	sawThreadName := false
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "M":
			if ev["name"] == "thread_name" {
				sawThreadName = true
			}
			continue
		case "b":
			begins[ev["id"].(string)]++
		case "e":
			begins[ev["id"].(string)]--
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("X event without dur: %v", ev)
			}
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event without numeric ts: %v", ev)
		}
		name, _ := ev["name"].(string)
		if name != "Echo" && name != "Resp" {
			t.Errorf("event with unexpected name %q", name)
		}
	}
	if phases["X"] == 0 {
		t.Error("no handler slices (ph=X)")
	}
	if phases["b"] == 0 || phases["e"] == 0 {
		t.Errorf("no message spans: phases=%v", phases)
	}
	if !sawThreadName {
		t.Error("no thread_name metadata events")
	}
	for id, n := range begins {
		if n < 0 {
			t.Errorf("async span %s ended more times than it began", id)
		}
	}
}

func TestChromeTracerEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTracer(&buf, nil)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%q", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("expected no events, got %d", len(events))
	}
}

// TestChromeTracerDoesNotPerturb: tracing must not change virtual-time
// results.
func TestChromeTracerDoesNotPerturb(t *testing.T) {
	run := func(traced bool) (Time, uint64) {
		e, clients := echoSim(t, 3)
		if traced {
			var buf bytes.Buffer
			e.SetTracer(NewChromeTracer(&buf, e))
		}
		runEcho(e, clients, 3*Microsecond)
		var ops uint64
		for _, cl := range clients {
			ops += cl.Completed
		}
		return e.Now(), ops
	}
	nowA, opsA := run(false)
	nowB, opsB := run(true)
	if nowA != nowB || opsA != opsB {
		t.Errorf("chrome tracer perturbed the run: (%v,%d) vs (%v,%d)", nowA, opsA, nowB, opsB)
	}
}
