package sim

import "pimds/internal/stats"

// Client is a closed-loop workload driver on one CPU: it sends a
// request, waits for the response, counts the completed operation and
// immediately issues the next request — the paper's "a CPU makes a new
// operation request immediately after its previous one completes".
//
// MakeRequest builds request number seq (with To filled in). The
// optional OnResponse inspects a response before the next request is
// issued; returning false stops the loop (used for protocols that
// handle retries themselves — a false return means "I resent the
// request myself, do not count an op or advance").
type Client struct {
	CPU         *CPU
	MakeRequest func(c *CPU, seq uint64) Message
	OnResponse  func(c *CPU, m Message) bool

	// Latency records the response time (request send to response
	// arrival, in picoseconds) of every completed operation.
	Latency *stats.Histogram

	seq       uint64
	issuedAt  Time
	reqKind   int // kind of the in-flight request, for per-kind latency
	Completed uint64
}

// NewClient creates a closed-loop client on a fresh CPU. Call Start to
// begin issuing requests.
func NewClient(e *Engine, makeRequest func(c *CPU, seq uint64) Message) *Client {
	cl := &Client{MakeRequest: makeRequest, Latency: stats.NewHistogram(16)}
	cl.CPU = e.NewCPU(cl.onMessage)
	return cl
}

// Start issues the client's first request as soon as its CPU is free.
func (cl *Client) Start() {
	cl.CPU.Exec(func(c *CPU) {
		cl.issuedAt = c.Clock()
		c.ProfOpStart()
		cl.send(c, cl.MakeRequest(c, cl.seq))
	})
}

// send transmits the request, remembering its kind for the per-kind
// latency metrics.
func (cl *Client) send(c *CPU, m Message) {
	cl.reqKind = m.Kind
	c.Send(m)
}

func (cl *Client) onMessage(c *CPU, m Message) {
	if cl.OnResponse != nil && !cl.OnResponse(c, m) {
		return
	}
	cl.Completed++
	c.CountOp()
	d := c.Clock() - cl.issuedAt
	cl.Latency.Add(int64(d))
	c.ProfOpEnd()
	if met := c.eng.met; met != nil {
		met.opLatency(cl.reqKind, d)
	}
	cl.seq++
	cl.issuedAt = c.Clock()
	c.ProfOpStart()
	cl.send(c, cl.MakeRequest(c, cl.seq))
}

// Meter measures steady-state throughput of a set of clients: run the
// simulation for a warmup period, snapshot completed operations, run
// for the measurement period, and report completed operations per
// (virtual) second.
type Meter struct {
	Engine  *Engine
	Clients []*Client
}

// snapshot sums completed operations across clients.
func (m *Meter) snapshot() uint64 {
	var total uint64
	for _, cl := range m.Clients {
		total += cl.Completed
	}
	return total
}

// Run starts every client, warms up for warmup, measures for measure,
// and returns (completed ops in window, ops per second).
func (m *Meter) Run(warmup, measure Time) (uint64, float64) {
	start := func() {
		for _, cl := range m.Clients {
			cl.Start()
		}
	}
	return Measure(m.Engine, start, m.snapshot, warmup, measure)
}

// Measure is the generic steady-state throughput harness: it calls
// start to kick off the workload, runs the simulation for warmup,
// snapshots the completed-operation count, runs for measure, and
// returns (ops completed in the window, ops per virtual second).
func Measure(e *Engine, start func(), snapshot func() uint64, warmup, measure Time) (uint64, float64) {
	start()
	e.RunFor(warmup)
	before := snapshot()
	e.RunFor(measure)
	completed := snapshot() - before
	return completed, float64(completed) / measure.Seconds()
}

// OpsOfCPUs sums completed operations over CPUs; a snapshot function
// for Measure.
func OpsOfCPUs(cpus []*CPU) func() uint64 {
	return func() uint64 {
		var total uint64
		for _, c := range cpus {
			total += c.Stats.Ops
		}
		return total
	}
}

// OpsOfPIMCores sums completed operations over PIM cores.
func OpsOfPIMCores(cores []*PIMCore) func() uint64 {
	return func() uint64 {
		var total uint64
		for _, c := range cores {
			total += c.Stats.Ops
		}
		return total
	}
}

// Loop runs work on cpu in a closed loop: each iteration starts as soon
// as the previous one's charged costs complete. It models a CPU thread
// that "makes a new operation request immediately after its previous
// one completes" without message traffic (used by the simulated
// CPU-side baselines).
func Loop(cpu *CPU, work func(c *CPU)) {
	var loop func(c *CPU)
	loop = func(c *CPU) {
		work(c)
		cpu.Exec(loop)
	}
	cpu.Exec(loop)
}
