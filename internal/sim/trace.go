package sim

import (
	"fmt"
	"io"
)

// Tracer observes simulator events. Install one with Engine.SetTracer;
// the zero default (nil) costs nothing. Tracers see protocol-level
// traffic, which is how the protocol tests and cmd/pimsim's -trace
// flag expose what a simulation actually did.
type Tracer interface {
	// MessageSent fires when a sender finishes sending (virtual send
	// time, before the transfer delay).
	MessageSent(at Time, m Message)
	// MessageDelivered fires when the message lands in the receiver's
	// buffer.
	MessageDelivered(at Time, m Message)
	// HandlerDone fires when a core finishes serving one message:
	// busy is the virtual time the handler consumed.
	HandlerDone(at Time, core CoreID, m Message, busy Time)
}

// SetTracer installs t (nil disables tracing).
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// WriterTracer logs events as text lines, one per event — the -trace
// output of cmd/pimsim.
type WriterTracer struct {
	W io.Writer
	// KindName, if set, renders protocol kind tags symbolically.
	KindName func(kind int) string
}

func (t *WriterTracer) kind(k int) string {
	if t.KindName != nil {
		return t.KindName(k)
	}
	return fmt.Sprintf("kind=%d", k)
}

// MessageSent implements Tracer.
func (t *WriterTracer) MessageSent(at Time, m Message) {
	fmt.Fprintf(t.W, "%12v  send     %3d → %3d  %s key=%d\n", at, m.From, m.To, t.kind(m.Kind), m.Key)
}

// MessageDelivered implements Tracer.
func (t *WriterTracer) MessageDelivered(at Time, m Message) {
	fmt.Fprintf(t.W, "%12v  deliver  %3d → %3d  %s key=%d\n", at, m.From, m.To, t.kind(m.Kind), m.Key)
}

// HandlerDone implements Tracer.
func (t *WriterTracer) HandlerDone(at Time, core CoreID, m Message, busy Time) {
	fmt.Fprintf(t.W, "%12v  served   core %3d   %s key=%d busy=%v\n", at, core, t.kind(m.Kind), m.Key, busy)
}

// CountingTracer tallies events; tests use it to assert protocol
// message counts without string parsing.
type CountingTracer struct {
	Sent      uint64
	Delivered uint64
	Served    uint64
	ByKind    map[int]uint64
}

// NewCountingTracer returns an empty counting tracer.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{ByKind: make(map[int]uint64)}
}

// MessageSent implements Tracer.
func (t *CountingTracer) MessageSent(_ Time, m Message) {
	t.Sent++
	t.ByKind[m.Kind]++
}

// MessageDelivered implements Tracer.
func (t *CountingTracer) MessageDelivered(Time, Message) { t.Delivered++ }

// HandlerDone implements Tracer.
func (t *CountingTracer) HandlerDone(Time, CoreID, Message, Time) { t.Served++ }
