package sim

import "fmt"

// AtomicLine models one contended cache line targeted by CPU atomic
// operations. Following Section 3, k concurrent atomics on the same
// line serialize: they complete at Latomic, 2·Latomic, …, k·Latomic.
// The line keeps the time at which it next becomes free.
type AtomicLine struct {
	nextFree Time
	Ops      uint64 // completed atomic operations on this line
}

// acquire serializes one atomic starting no earlier than now and
// returns its completion time.
func (l *AtomicLine) acquire(now, cost Time) Time {
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	done := start + cost
	l.nextFree = done
	l.Ops++
	return done
}

// CPUHandler is invoked once per message arriving at a CPU, in arrival
// order — typically a response from a PIM core, upon which a
// closed-loop client issues its next request.
type CPUHandler func(c *CPU, m Message)

// CPU is a full-fledged CPU core. Unlike a PIM core it may use atomic
// operations and benefits from the last-level cache, but its memory
// accesses cost Lcpu.
type CPU struct {
	eng     *Engine
	id      CoreID
	handler CPUHandler

	inbox     []Message
	inboxHead int
	busyUntil Time
	scheduled bool
	running   bool
	clock     Time

	Stats CoreStats
}

// NewCPU registers a new CPU core.
func (e *Engine) NewCPU(handler CPUHandler) *CPU {
	c := &CPU{eng: e, handler: handler}
	c.id = e.register(c)
	return c
}

// SetHandler installs the CPU's message handler.
func (c *CPU) SetHandler(h CPUHandler) { c.handler = h }

// ID returns the CPU's engine-assigned identifier.
func (c *CPU) ID() CoreID { return c.id }

// Engine returns the CPU's engine.
func (c *CPU) Engine() *Engine { return c.eng }

func (c *CPU) coreID() CoreID { return c.id }

func (c *CPU) deliver(m Message) {
	c.inbox = append(c.inbox, m)
	if c.eng.met != nil {
		c.eng.met.queueDepth(c.id, len(c.inbox)-c.inboxHead)
	}
	c.maybeSchedule()
}

func (c *CPU) maybeSchedule() {
	if c.scheduled || c.running || c.inboxHead >= len(c.inbox) {
		return
	}
	c.scheduled = true
	at := c.eng.now
	if c.busyUntil > at {
		at = c.busyUntil
	}
	c.eng.Schedule(at, c.service)
}

func (c *CPU) service() {
	c.scheduled = false
	m := c.inbox[c.inboxHead]
	c.inboxHead++
	if c.inboxHead == len(c.inbox) {
		c.inbox = c.inbox[:0]
		c.inboxHead = 0
	}
	if p := c.eng.prof; p != nil {
		p.MsgConsumed(c.eng.now, m.pid, c.id, false)
	}
	c.runNow(func(c *CPU) {
		if c.handler == nil {
			panic(fmt.Sprintf("sim: CPU %d received message with no handler", c.id))
		}
		c.handler(c, m)
	})
	c.maybeSchedule()
}

// Exec schedules fn to run on this CPU as soon as it is free. It is the
// way simulations kick off client loops at time zero and how CPU-side
// algorithms (e.g. simulated baselines) run work that is not a response
// to a message.
func (c *CPU) Exec(fn func(*CPU)) {
	at := c.eng.now
	if c.busyUntil > at {
		at = c.busyUntil
	}
	c.eng.Schedule(at, func() {
		// The CPU may have become busy between scheduling and
		// firing (e.g. a message was serviced); requeue after it.
		if c.running || c.busyUntil > c.eng.now {
			c.Exec(fn)
			return
		}
		c.runNow(fn)
		c.maybeSchedule()
	})
}

func (c *CPU) runNow(fn func(*CPU)) {
	start := c.eng.now
	c.clock = start
	c.running = true
	fn(c)
	c.running = false
	c.busyUntil = c.clock
	c.Stats.Messages++
	c.Stats.Busy += c.clock - start
	if p := c.eng.prof; p != nil {
		p.HandlerEnd(c.busyUntil, c.id)
	}
}

// advance moves the local clock by d and reports the charge to the
// profiler, if attached.
func (c *CPU) advance(kind CostKind, d Time) {
	c.clock += d
	if p := c.eng.prof; p != nil && d > 0 {
		p.Charge(c.clock, c.id, kind, d)
	}
}

func (c *CPU) mustRun(op string) {
	if !c.running {
		panic(fmt.Sprintf("sim: CPU %d: %s outside handler", c.id, op))
	}
}

// Clock returns the CPU's local virtual time inside a handler.
func (c *CPU) Clock() Time {
	c.mustRun("Clock")
	return c.clock
}

// MemRead charges one memory load (Lcpu).
func (c *CPU) MemRead() {
	c.mustRun("MemRead")
	c.advance(CostMemory, c.eng.cfg.Lcpu)
}

// MemWrite charges one memory store (Lcpu).
func (c *CPU) MemWrite() {
	c.mustRun("MemWrite")
	c.advance(CostMemory, c.eng.cfg.Lcpu)
}

// MemReadN charges n memory loads.
func (c *CPU) MemReadN(n int) {
	c.mustRun("MemReadN")
	if n < 0 {
		panic("sim: negative access count")
	}
	c.advance(CostMemory, Time(n)*c.eng.cfg.Lcpu)
}

// LLCRead charges one last-level-cache load (Lllc).
func (c *CPU) LLCRead() {
	c.mustRun("LLCRead")
	c.advance(CostMemory, c.eng.cfg.Lllc)
}

// LLCWrite charges one last-level-cache store (Lllc).
func (c *CPU) LLCWrite() {
	c.mustRun("LLCWrite")
	c.advance(CostMemory, c.eng.cfg.Lllc)
}

// Local charges one L1/bookkeeping step (Epsilon).
func (c *CPU) Local() {
	c.mustRun("Local")
	c.advance(CostService, c.eng.cfg.Epsilon)
}

// Compute charges d of pure computation.
func (c *CPU) Compute(d Time) {
	c.mustRun("Compute")
	if d < 0 {
		panic("sim: negative compute time")
	}
	c.advance(CostService, d)
}

// Atomic performs one atomic operation (CAS, F&A, …) on line,
// serializing with other atomics on the same line per Section 3. The
// CPU blocks until its atomic completes.
func (c *CPU) Atomic(line *AtomicLine) {
	c.mustRun("Atomic")
	done := line.acquire(c.clock, c.eng.cfg.Latomic)
	if p := c.eng.prof; p != nil {
		cost := c.eng.cfg.Latomic
		if wait := done - cost - c.clock; wait > 0 {
			p.Charge(done-cost, c.id, CostAtomicWait, wait)
		}
		if cost > 0 {
			p.Charge(done, c.id, CostAtomic, cost)
		}
	}
	c.clock = done
}

// Send transmits m (stamped From = this CPU) without blocking.
func (c *CPU) Send(m Message) {
	c.mustRun("Send")
	m.From = c.id
	c.advance(CostService, c.eng.cfg.Epsilon)
	c.eng.send(c.clock, m)
}

// CountOp records one completed operation for throughput accounting.
func (c *CPU) CountOp() { c.Stats.Ops++ }
