package sim

import (
	"container/heap"
	"fmt"
)

// An event is a callback scheduled at a virtual time. Events with equal
// times fire in scheduling order (seq), which makes runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. It owns virtual time, the
// pending-event heap and the registry of message endpoints (PIM cores
// and CPUs). An Engine is not safe for concurrent use; a simulation is
// a single-goroutine computation.
type Engine struct {
	cfg Config

	now       Time
	seq       uint64
	events    eventHeap
	processed uint64

	endpoints map[CoreID]endpoint
	nextID    CoreID
	tracer    Tracer
	met       *simMetrics
	kindName  func(kind int) string

	// prof, when non-nil, receives fine-grained virtual-time events.
	// profSeq numbers messages so the profiler can correlate sends
	// with deliveries and consumptions; it only advances while a
	// profiler is attached.
	prof    Profiler
	profSeq uint64

	// channels tracks per (sender, receiver) FIFO delivery state so
	// that the "messages from the same sender to the same receiver
	// are delivered in FIFO order" guarantee of Section 2 holds even
	// if a sender ever uses non-uniform message latencies.
	channels map[channelKey]*channelState

	// lastInject tracks each sender's last link-injection time when
	// Config.MessageGap models finite injection bandwidth.
	lastInject map[CoreID]Time
}

type channelKey struct{ from, to CoreID }

type channelState struct {
	lastArrival Time   // arrival time of the most recent message on this channel
	sent        uint64 // messages sent
}

// NewEngine returns an engine charging the latencies in cfg. It panics
// if cfg is invalid: a simulator with non-positive latencies would
// silently produce infinite throughput.
func NewEngine(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Engine{
		cfg:        cfg,
		endpoints:  make(map[CoreID]endpoint),
		channels:   make(map[channelKey]*channelState),
		lastInject: make(map[CoreID]Time),
	}
}

// Config returns the engine's latency configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at virtual time at. Scheduling in the past panics:
// it would mean a causality bug in the calling data structure.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// step executes the earliest pending event and reports whether one
// existed.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until none remain and returns the final time.
// Closed-loop clients never go idle, so most simulations use RunUntil.
func (e *Engine) Run() Time {
	for e.step() {
	}
	return e.now
}

// RunUntil executes events up to and including virtual time t, then
// advances the clock to exactly t. Events scheduled later remain
// pending, so a simulation can be resumed with further RunUntil calls.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
