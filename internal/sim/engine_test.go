package sim

import (
	"testing"
	"time"

	"pimds/internal/model"
)

func testConfig() Config {
	return Config{
		Lcpu:     90 * Nanosecond,
		Lpim:     30 * Nanosecond,
		Lllc:     30 * Nanosecond,
		Latomic:  90 * Nanosecond,
		Lmessage: 90 * Nanosecond,
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(90 * time.Nanosecond); got != 90*Nanosecond {
		t.Errorf("FromDuration = %v, want 90ns", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := (90 * Nanosecond).Duration(); got != 90*time.Nanosecond {
		t.Errorf("Duration = %v", got)
	}
	if got := (2 * Microsecond).String(); got != "2µs" {
		t.Errorf("String = %q", got)
	}
}

func TestConfigFromParams(t *testing.T) {
	cfg := ConfigFromParams(model.DefaultParams())
	if cfg.Lcpu != 90*Nanosecond || cfg.Lpim != 30*Nanosecond ||
		cfg.Lllc != 30*Nanosecond || cfg.Latomic != 90*Nanosecond ||
		cfg.Lmessage != 90*Nanosecond {
		t.Errorf("unexpected config: %+v", cfg)
	}
	// Non-integer-nanosecond ratios stay exact in picoseconds.
	pr := model.Params{Lcpu: 90 * time.Nanosecond, R1: 4.75, R2: 9.25, R3: 0.75}
	cfg = ConfigFromParams(pr)
	if cfg.Lpim != Time(18947) { // 90ns/4.75 = 18.947ns
		t.Errorf("Lpim = %d ps, want 18947", cfg.Lpim)
	}
	if cfg.Latomic != Time(67500) {
		t.Errorf("Latomic = %d ps, want 67500", cfg.Latomic)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.Lpim = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Lpim should be invalid")
	}
	bad = testConfig()
	bad.Epsilon = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative epsilon should be invalid")
	}
}

func TestNewEnginePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine should panic on invalid config")
		}
	}()
	NewEngine(Config{})
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(testConfig())
	var order []int
	e.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	// Equal times fire in scheduling order.
	e.Schedule(20*Nanosecond, func() { order = append(order, 4) })
	end := e.Run()
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 30*Nanosecond {
		t.Errorf("final time = %v, want 30ns", end)
	}
	if e.Processed() != 4 {
		t.Errorf("processed = %d, want 4", e.Processed())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(testConfig())
	e.Schedule(10*Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.Schedule(5*Nanosecond, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(testConfig())
	fired := 0
	reschedule := func() {}
	reschedule = func() {
		fired++
		e.After(10*Nanosecond, reschedule)
	}
	e.Schedule(0, reschedule)
	e.RunUntil(95 * Nanosecond)
	// Fires at 0,10,...,90 = 10 events.
	if fired != 10 {
		t.Errorf("fired = %d, want 10", fired)
	}
	if e.Now() != 95*Nanosecond {
		t.Errorf("now = %v, want 95ns", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunFor(5 * Nanosecond) // picks up the event at 100ns
	if fired != 11 {
		t.Errorf("fired = %d, want 11 after RunFor", fired)
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine(testConfig())
	var at Time = -1
	e.Schedule(40*Nanosecond, func() {
		e.After(5*Nanosecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 45*Nanosecond {
		t.Errorf("After fired at %v, want 45ns", at)
	}
}
