package sim

// Vault is one memory vault: the paper's unit of PIM memory, owned and
// exclusively accessed by its local PIM core (Section 2). The simulator
// keeps data-structure nodes as ordinary Go objects; the vault's job is
// accounting and ownership checking — every load and store performed by
// a PIM core on vault-resident data must go through its core's Read and
// Write methods, which charge Lpim and tick these counters.
type Vault struct {
	id    int
	owner CoreID

	// Counters of charged accesses and allocation bookkeeping.
	Reads     uint64
	Writes    uint64
	Allocs    uint64
	Frees     uint64
	LiveNodes int64
}

// ID returns the vault's index within its engine.
func (v *Vault) ID() int { return v.id }

// Owner returns the CoreID of the local PIM core.
func (v *Vault) Owner() CoreID { return v.owner }

// Accesses returns the total number of charged memory accesses.
func (v *Vault) Accesses() uint64 { return v.Reads + v.Writes }

// RecordAlloc accounts for the allocation of one node in the vault.
func (v *Vault) RecordAlloc() {
	v.Allocs++
	v.LiveNodes++
}

// RecordFree accounts for freeing one node.
func (v *Vault) RecordFree() {
	v.Frees++
	v.LiveNodes--
}
