package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleDoc() *Doc {
	return &Doc{Shards: []Shard{
		{Seq: 12, State: []int64{1, 2, 3}},
		{Seq: 0, State: nil},
		{Seq: 7, State: []int64{-9, 1 << 40}},
	}}
}

func TestRoundTrip(t *testing.T) {
	doc := sampleDoc()
	buf := Append(nil, doc)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Shards) != len(doc.Shards) {
		t.Fatalf("decoded %d shards, want %d", len(got.Shards), len(doc.Shards))
	}
	for i := range doc.Shards {
		if got.Shards[i].Seq != doc.Shards[i].Seq {
			t.Fatalf("shard %d seq = %d, want %d", i, got.Shards[i].Seq, doc.Shards[i].Seq)
		}
		if len(got.Shards[i].State) != len(doc.Shards[i].State) {
			t.Fatalf("shard %d has %d vals, want %d", i, len(got.Shards[i].State), len(doc.Shards[i].State))
		}
		for j, v := range doc.Shards[i].State {
			if got.Shards[i].State[j] != v {
				t.Fatalf("shard %d val %d = %d, want %d", i, j, got.Shards[i].State[j], v)
			}
		}
	}
	// Canonical: re-encoding the decoded doc is byte-identical.
	if !bytes.Equal(Append(nil, got), buf) {
		t.Fatal("re-encoded doc differs")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	buf := Append(nil, sampleDoc())
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-4] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 1; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		bad := tc.mut(append([]byte(nil), buf...))
		if _, err := Decode(bad); err == nil {
			t.Fatalf("%s: decode accepted damaged doc", tc.name)
		}
	}
}

func TestWriteLatestPrune(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := Latest(dir); err != nil || ok {
		t.Fatalf("Latest on empty dir = ok %v, err %v", ok, err)
	}
	d1 := &Doc{Shards: []Shard{{Seq: 1, State: []int64{1}}}}
	d2 := &Doc{Shards: []Shard{{Seq: 2, State: []int64{1, 2}}}}
	if err := Write(dir, 1, d1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Write(dir, 4, d2); err != nil {
		t.Fatalf("Write: %v", err)
	}
	doc, seg, ok, err := Latest(dir)
	if err != nil || !ok {
		t.Fatalf("Latest: ok %v, err %v", ok, err)
	}
	if seg != 4 || !reflect.DeepEqual(doc, d2) {
		t.Fatalf("Latest = seg %d doc %+v, want seg 4 %+v", seg, doc, d2)
	}
	// A corrupt newest snapshot falls back to the older one.
	path := filepath.Join(dir, Name(4))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	doc, seg, ok, err = Latest(dir)
	if err != nil || !ok || seg != 1 || !reflect.DeepEqual(doc, d1) {
		t.Fatalf("Latest with corrupt newest = seg %d ok %v err %v, want fallback to seg 1", seg, ok, err)
	}
	// Prune removes snapshots below the boundary.
	if err := Prune(dir, 4); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, Name(1))); !os.IsNotExist(err) {
		t.Fatalf("snap 1 survived prune: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snap 4 pruned: %v", err)
	}
	// No temp files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, ok := parseName(e.Name()); !ok {
			t.Fatalf("foreign file left in snapshot dir: %s", e.Name())
		}
	}
}
