// Package snapshot serializes a server's full structure state so the
// WAL can be truncated: a snapshot at segment boundary N captures, for
// every shard, a canonical state dump plus the WAL sequence number that
// state includes. Recovery restores the newest valid snapshot, then
// replays only log records with seq beyond it.
//
// Document layout (little-endian):
//
//	magic "PIMSNAP1" (8) | uint32 crc | uint32 len | payload
//	payload:
//	    uint16 nshards
//	    per shard: uint64 seq | uint32 nvals | nvals × int64
//
// Writes are atomic: the document goes to a temp file, is fsynced,
// renamed into place (snap-%08d.snap), and the directory entry is
// fsynced. A torn snapshot therefore never exists under its final
// name, and Latest additionally CRC-checks and falls back to older
// snapshots, so a bad newest snapshot degrades to a longer replay, not
// a failed recovery.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

const magic = "PIMSNAP1"

// ErrCorrupt marks a snapshot document that fails its magic, CRC, or
// structural checks.
var ErrCorrupt = errors.New("snapshot: corrupt document")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Shard is one shard's captured state.
type Shard struct {
	// Seq is the per-shard WAL sequence number the state includes:
	// replay skips records with seq ≤ Seq.
	Seq uint64
	// State is the backend's canonical dump (AppendState order).
	State []int64
}

// Doc is a whole-server snapshot.
type Doc struct {
	Shards []Shard
}

// Append encodes doc and returns the extended buffer. Encoding is
// canonical: equal docs encode byte-identically, which the replay
// determinism tests rely on.
func Append(buf []byte, doc *Doc) []byte {
	start := len(buf)
	buf = append(buf, magic...)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // crc + len, patched below
	body := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(doc.Shards)))
	for _, sh := range doc.Shards {
		buf = binary.LittleEndian.AppendUint64(buf, sh.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sh.State)))
		for _, v := range sh.State {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	payload := buf[body:]
	binary.LittleEndian.PutUint32(buf[start+len(magic):], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(buf[start+len(magic)+4:], uint32(len(payload)))
	return buf
}

// Decode parses one snapshot document.
func Decode(b []byte) (*Doc, error) {
	head := len(magic) + 8
	if len(b) < head || string(b[:len(magic)]) != magic {
		return nil, ErrCorrupt
	}
	crc := binary.LittleEndian.Uint32(b[len(magic):])
	n := int(binary.LittleEndian.Uint32(b[len(magic)+4:]))
	if n < 2 || len(b) != head+n {
		return nil, ErrCorrupt
	}
	payload := b[head:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, ErrCorrupt
	}
	nshards := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	doc := &Doc{Shards: make([]Shard, nshards)}
	for i := 0; i < nshards; i++ {
		if len(payload) < 12 {
			return nil, ErrCorrupt
		}
		seq := binary.LittleEndian.Uint64(payload)
		nvals := int(binary.LittleEndian.Uint32(payload[8:]))
		payload = payload[12:]
		if len(payload) < 8*nvals {
			return nil, ErrCorrupt
		}
		vals := make([]int64, nvals)
		for j := range vals {
			vals[j] = int64(binary.LittleEndian.Uint64(payload[8*j:]))
		}
		payload = payload[8*nvals:]
		doc.Shards[i] = Shard{Seq: seq, State: vals}
	}
	if len(payload) != 0 {
		return nil, ErrCorrupt
	}
	return doc, nil
}

// Name returns the file name of the snapshot taken at WAL segment
// boundary seg.
func Name(seg uint64) string { return fmt.Sprintf("snap-%08d.snap", seg) }

// parseName inverts Name; round-tripping rejects non-canonical names.
func parseName(name string) (uint64, bool) {
	var n uint64
	c, err := fmt.Sscanf(name, "snap-%d.snap", &n)
	if err == nil && c == 1 && name == Name(n) {
		return n, true
	}
	return 0, false
}

// Write atomically persists doc as the snapshot for segment boundary
// seg: temp file, fsync, rename, directory fsync.
func Write(dir string, seg uint64, doc *Doc) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	buf := Append(nil, doc)
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, Name(seg))); err != nil {
		return err
	}
	return syncDir(dir)
}

// Latest loads the newest valid snapshot in dir, returning its doc,
// its segment boundary, and whether one exists. Corrupt snapshots are
// skipped in favor of older ones — recovery then replays a longer log
// tail instead of failing.
func Latest(dir string) (*Doc, uint64, bool, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	var segs []uint64
	for _, e := range ents {
		if n, ok := parseName(e.Name()); ok && !e.IsDir() {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] > segs[j] })
	for _, seg := range segs {
		b, err := os.ReadFile(filepath.Join(dir, Name(seg)))
		if err != nil {
			return nil, 0, false, err
		}
		doc, err := Decode(b)
		if err != nil {
			continue
		}
		return doc, seg, true, nil
	}
	return nil, 0, false, nil
}

// Prune removes every snapshot for a segment boundary < below; the
// snapshot at `below` supersedes them.
func Prune(dir string, below uint64) error {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range ents {
		if n, ok := parseName(e.Name()); ok && n < below {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncDir fsyncs a directory so the rename that published a snapshot
// survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
