package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pimds/internal/wire"
)

func mkOps(n int) []wire.Op {
	ops := make([]wire.Op, n)
	for i := range ops {
		ops[i] = wire.Op{ID: uint64(i + 1), Kind: wire.Add, Key: int64(100 + i)}
	}
	return ops
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []wire.Op{
		{ID: 1, Kind: wire.Add, Key: 42},
		{ID: 2, Kind: wire.Remove, Key: -7},
		{ID: 3, Kind: wire.Enqueue, Key: 1 << 40},
		{ID: 4, Kind: wire.PopMax, Key: 0},
	}
	buf := AppendRecord(nil, 3, 17, ops)
	rec, n, err := DecodeRecord(buf, nil)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if rec.Shard != 3 || rec.Seq != 17 {
		t.Fatalf("header = shard %d seq %d, want 3/17", rec.Shard, rec.Seq)
	}
	if len(rec.Ops) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(rec.Ops), len(ops))
	}
	for i := range ops {
		if rec.Ops[i] != ops[i] {
			t.Fatalf("op %d = %+v, want %+v", i, rec.Ops[i], ops[i])
		}
	}
	// Canonical: re-encoding the decoded record is byte-identical.
	re := AppendRecord(nil, rec.Shard, rec.Seq, rec.Ops)
	if !bytes.Equal(re, buf) {
		t.Fatal("re-encoded record differs from the original bytes")
	}
}

func TestStagingMatchesAppendRecord(t *testing.T) {
	ops := mkOps(9)
	whole := AppendRecord(nil, 1, 5, ops)
	staged := BeginRecord(make([]byte, 0, RecordCap(16)), 1, 5)
	for _, op := range ops {
		staged = wire.AppendOp(staged, op)
	}
	staged = FinishRecord(staged, len(ops))
	if !bytes.Equal(whole, staged) {
		t.Fatal("staged encoding differs from AppendRecord")
	}
}

func TestEmptyRecordStagesToNothing(t *testing.T) {
	buf := BeginRecord(nil, 0, 1)
	if got := FinishRecord(buf, 0); len(got) != 0 {
		t.Fatalf("count-0 record sealed to %d bytes, want 0", len(got))
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	buf := AppendRecord(nil, 0, 1, mkOps(3))
	// Every strict prefix is torn, never corrupt: a crash can cut the
	// stream anywhere and recovery must classify it as a clean tail.
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeRecord(buf[:n], nil); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix len %d: err = %v, want ErrTorn", n, err)
		}
	}
	// A flipped payload byte is corrupt (CRC catches it).
	bad := append([]byte(nil), buf...)
	bad[recHeaderSize+4] ^= 0xff
	if _, _, err := DecodeRecord(bad, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte: err = %v, want ErrCorrupt", err)
	}
	// A zero count contradicts the framing.
	zero := AppendRecord(nil, 0, 1, mkOps(1))
	zero[recHeaderSize+10] = 0
	if _, _, err := DecodeRecord(zero, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero count: err = %v, want ErrCorrupt", err)
	}
	// An absurd declared length is corrupt even though the bytes run out.
	huge := append([]byte(nil), buf...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeRecord(huge, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeRejectsNonMutatingOps: a CRC-valid record carrying a
// read-only kind was produced by a broken writer; recovery must not
// trust it.
func TestDecodeRejectsNonMutatingOps(t *testing.T) {
	buf := AppendRecord(nil, 0, 1, []wire.Op{{ID: 1, Kind: wire.Contains, Key: 9}})
	if _, _, err := DecodeRecord(buf, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read-only op in record: err = %v, want ErrCorrupt", err)
	}
}

func writeRecords(t *testing.T, l *Log, shard uint16, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		rec := AppendRecord(nil, shard, seq, mkOps(2))
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeRecords(t, l, 0, 1, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var seqs []uint64
	res, err := Replay(dir, 0, func(rec Record) error {
		seqs = append(seqs, rec.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Records != 5 || res.Ops != 10 || res.Truncated {
		t.Fatalf("replay = %+v, want 5 records / 10 ops, not truncated", res)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("replay order %v, want 1..5", seqs)
		}
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeRecords(t, l, 0, 1, 3)
	goodSize := l.Size()
	// A torn append: half a record reaches the file before the crash.
	torn := AppendRecord(nil, 0, 4, mkOps(2))
	if err := l.Append(torn[:len(torn)/2]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res, err := Replay(dir, 0, nil2(t))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Records != 3 || !res.Truncated {
		t.Fatalf("replay = %+v, want 3 records, truncated", res)
	}
	st, err := os.Stat(filepath.Join(dir, SegmentName(0)))
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Size() != goodSize {
		t.Fatalf("segment size after truncation = %d, want %d", st.Size(), goodSize)
	}
	// The cleaned log replays without truncation and accepts appends.
	res, err = Replay(dir, 0, nil2(t))
	if err != nil || res.Truncated || res.Records != 3 {
		t.Fatalf("second replay = %+v (err %v), want clean 3 records", res, err)
	}
	l, err = Open(dir, res.NextSeg, false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	writeRecords(t, l, 0, 4, 4)
	l.Close()
	res, err = Replay(dir, 0, nil2(t))
	if err != nil || res.Records != 4 {
		t.Fatalf("replay after continued append = %+v (err %v), want 4 records", res, err)
	}
}

func TestReplayStopsAtCorruptRecordAndDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeRecords(t, l, 0, 1, 2)
	if err := l.Roll(); err != nil {
		t.Fatalf("Roll: %v", err)
	}
	writeRecords(t, l, 0, 3, 4)
	if err := l.Roll(); err != nil {
		t.Fatalf("Roll: %v", err)
	}
	writeRecords(t, l, 0, 5, 6)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the first record of segment 1: recovery keeps segment 0,
	// cuts segment 1 to zero records, and removes segment 2 entirely.
	path := filepath.Join(dir, SegmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[recHeaderSize+4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	res, err := Replay(dir, 0, nil2(t))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Records != 2 || !res.Truncated || res.NextSeg != 1 {
		t.Fatalf("replay = %+v, want 2 records, truncated, NextSeg 1", res)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	if len(segs) != 2 || segs[0] != 0 || segs[1] != 1 {
		t.Fatalf("segments after truncation = %v, want [0 1]", segs)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("corrupt segment cut to %d bytes, want 0", st.Size())
	}
}

func TestReplayFromSkipsOldSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeRecords(t, l, 0, 1, 2)
	if err := l.Roll(); err != nil {
		t.Fatalf("Roll: %v", err)
	}
	writeRecords(t, l, 0, 3, 4)
	l.Close()
	res, err := Replay(dir, 1, nil2(t))
	if err != nil || res.Records != 2 || res.NextSeg != 1 {
		t.Fatalf("replay from seg 1 = %+v (err %v), want 2 records from seg 1", res, err)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Roll(); err != nil {
			t.Fatalf("Roll: %v", err)
		}
	}
	l.Close()
	if err := Prune(dir, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	if len(segs) != 2 || segs[0] != 2 || segs[1] != 3 {
		t.Fatalf("segments after prune = %v, want [2 3]", segs)
	}
}

func TestSegmentsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"wal-00000002.log", "snap-00000001.snap", "wal-junk.log", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("segments = %v, want [2]", segs)
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	res, err := Replay(filepath.Join(t.TempDir(), "absent"), 0, nil2(t))
	if err != nil || res.Records != 0 || res.NextSeg != 0 {
		t.Fatalf("replay of missing dir = %+v (err %v), want empty", res, err)
	}
}

// nil2 is a replay callback that accepts every record, for tests that
// only assert on the summary counts.
func nil2(t *testing.T) func(Record) error {
	t.Helper()
	return func(Record) error { return nil }
}
