package wal

import (
	"bytes"
	"errors"
	"testing"

	"pimds/internal/wire"
)

// FuzzDecodeRecord drives the WAL record decoder with arbitrary bytes,
// pinning the recovery contract: every input is either cleanly rejected
// as ErrTorn/ErrCorrupt (never a panic, never a partial record) or
// decodes to a record that re-encodes byte-identically — the canonical
// framing property the wire decoders also hold. The committed corpus
// seeds the two failure shapes recovery must stop at: a truncated tail
// and a CRC-corrupt record.
func FuzzDecodeRecord(f *testing.F) {
	// A healthy two-op record.
	good := AppendRecord(nil, 1, 7, []wire.Op{
		{ID: 1, Kind: wire.Add, Key: 42},
		{ID: 2, Kind: wire.Remove, Key: 9},
	})
	f.Add(good)
	// Truncated tail: the crash cut the record mid-payload.
	f.Add(append([]byte(nil), good[:len(good)-5]...))
	// Corrupt CRC: a payload byte flipped after the seal.
	bad := append([]byte(nil), good...)
	bad[recHeaderSize+3] ^= 0x40
	f.Add(bad)
	// Empty input and a bare header.
	f.Add([]byte{})
	f.Add(good[:recHeaderSize])

	var arena []wire.Op
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data, arena[:0])
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is neither ErrTorn nor ErrCorrupt: %v", err)
			}
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		arena = rec.Ops[:0]
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendRecord(nil, rec.Shard, rec.Seq, rec.Ops)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("accepted record does not re-encode byte-identically")
		}
	})
}
