// Package wal is the write-ahead log behind pimserve's durability. It
// applies the paper's flat-combining insight to storage: the per-shard
// combiner already applies whole batches, so one log record — and in
// the default policy, one fsync — covers an entire batch of acked ops.
// Group commit falls out of the combining structure for free.
//
// The log is a directory of append-only segment files (wal-%08d.log).
// Each record frames one combiner batch:
//
//	uint32 length  payload bytes after this 8-byte record header
//	uint32 crc     CRC-32C (Castagnoli) of the payload
//	payload:
//	    uint16 shard | uint64 seq | uint16 count | count × wire.OpRecordSize
//
// seq is a per-shard, contiguous record sequence number starting at 1;
// snapshots cite it so replay can skip records already folded into a
// restored state. Ops reuse the canonical 27-byte wire encoding
// (wire.AppendOp), and only mutating kinds are logged.
//
// Records are staged in two halves so the server can fill one inside
// the pinned combining window without allocating or touching a file:
// BeginRecord reserves the header, wire.AppendOp appends each op, and
// FinishRecord patches the count and seals the CRC. The actual write
// and fsync happen later, on the WAL writer goroutine.
//
// Decoding is strict, mirroring internal/wire: every accepted record
// re-encodes byte-identically, and recovery distinguishes a torn tail
// (ErrTorn — the crash cut the stream mid-record; truncate and carry
// on) from structural corruption (ErrCorrupt — CRC or shape violation;
// also a stopping point, never skipped over).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pimds/internal/wire"
)

// Record framing constants.
const (
	recHeaderSize = 4 + 4     // length, crc
	payloadHead   = 2 + 8 + 2 // shard, seq, count

	// MaxRecordPayload bounds one record's payload: a record carries at
	// most one frame's worth of ops, like the wire protocol it borrows
	// its op encoding from.
	MaxRecordPayload = payloadHead + wire.MaxOpsPerFrame*wire.OpRecordSize
)

// RecordCap returns the buffer capacity needed to stage one record of
// up to maxOps ops; the server preallocates staging buffers with it.
func RecordCap(maxOps int) int {
	return recHeaderSize + payloadHead + maxOps*wire.OpRecordSize
}

// Decode errors. Replay treats both as "the log ends here": ErrTorn is
// the expected shape of a crash (the tail was cut mid-record), while
// ErrCorrupt means a structurally complete record contradicts itself.
var (
	ErrTorn    = errors.New("wal: torn record (truncated tail)")
	ErrCorrupt = errors.New("wal: corrupt record")
)

// crcTable is the Castagnoli polynomial, built once at init so the
// checksum call inside the pinned combining window never takes the
// lazy-initialization path.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BeginRecord starts staging one record into buf (normally buf[:0] of
// a preallocated arena): it reserves the record header and writes the
// shard and sequence fields, leaving length, crc and count as
// placeholders for FinishRecord. Zero-alloc when buf has capacity.
//
//pimvet:allocfree //pimvet:nonblocking
func BeginRecord(buf []byte, shard uint16, seq uint64) []byte {
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc, patched by FinishRecord
	buf = binary.LittleEndian.AppendUint16(buf, shard)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // count, patched by FinishRecord
	return buf
}

// FinishRecord seals a record staged by BeginRecord followed by count
// wire.AppendOp calls: it patches the count, then the length and CRC.
// buf must begin at the record's first byte. A batch that mutated
// nothing (count 0) produces no record — the empty slice is returned
// and nothing need be logged. Zero-alloc.
//
//pimvet:allocfree //pimvet:nonblocking
func FinishRecord(buf []byte, count int) []byte {
	if count == 0 {
		return buf[:0]
	}
	payload := buf[recHeaderSize:]
	binary.LittleEndian.PutUint16(payload[10:], uint16(count))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	return buf
}

// AppendRecord encodes one whole record in a single call — the
// convenience form of BeginRecord + AppendOp× + FinishRecord that
// tests and tools use; the staging halves exist for the server, which
// fills the record incrementally inside the combining window.
func AppendRecord(buf []byte, shard uint16, seq uint64, ops []wire.Op) []byte {
	start := len(buf)
	buf = BeginRecord(buf, shard, seq)
	for _, op := range ops {
		buf = wire.AppendOp(buf, op)
	}
	sealed := FinishRecord(buf[start:], len(ops))
	return buf[:start+len(sealed)]
}

// Record is one decoded WAL record: a combiner batch's mutating ops.
type Record struct {
	Shard uint16
	Seq   uint64
	// Ops aliases the arena passed to DecodeRecord; reuse it via
	// rec.Ops[:0] on the next call.
	Ops []wire.Op
}

// DecodeRecord decodes one record from the front of b, appending its
// ops to dst (pass dst[:0] to reuse an arena across records). It
// returns the record, the total bytes consumed, and an error: ErrTorn
// when b ends before the record does, ErrCorrupt when a complete
// record fails its CRC or declares an impossible shape.
func DecodeRecord(b []byte, dst []wire.Op) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, ErrTorn
	}
	n := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n < payloadHead || n > MaxRecordPayload {
		return Record{}, 0, ErrCorrupt
	}
	if len(b) < recHeaderSize+n {
		return Record{}, 0, ErrTorn
	}
	payload := b[recHeaderSize : recHeaderSize+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return Record{}, 0, ErrCorrupt
	}
	rec := Record{
		Shard: binary.LittleEndian.Uint16(payload),
		Seq:   binary.LittleEndian.Uint64(payload[2:]),
	}
	count := int(binary.LittleEndian.Uint16(payload[10:]))
	if count == 0 || count > wire.MaxOpsPerFrame || n != payloadHead+count*wire.OpRecordSize {
		return Record{}, 0, ErrCorrupt
	}
	body := payload[payloadHead:]
	start := len(dst)
	for i := 0; i < count; i++ {
		op, err := wire.DecodeOp(body[i*wire.OpRecordSize:])
		if err != nil || !op.Kind.Mutating() {
			// The CRC passed but the op is not one a WAL writer would
			// ever log: the record was produced by a broken encoder.
			return Record{}, 0, ErrCorrupt
		}
		dst = append(dst, op)
	}
	rec.Ops = dst[start:]
	return rec, recHeaderSize + n, nil
}

// SegmentName returns the file name of segment n.
func SegmentName(n uint64) string { return fmt.Sprintf("wal-%08d.log", n) }

// parseSegment inverts SegmentName; ok is false for foreign files.
// Round-tripping through SegmentName rejects anything non-canonical
// (wrong padding, trailing junk).
func parseSegment(name string) (uint64, bool) {
	var n uint64
	c, err := fmt.Sscanf(name, "wal-%d.log", &n)
	if err == nil && c == 1 && name == SegmentName(n) {
		return n, true
	}
	return 0, false
}

// Segments lists the segment indexes present in dir, ascending. A
// missing directory is an empty log, not an error.
func Segments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if n, ok := parseSegment(e.Name()); ok && !e.IsDir() {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Prune removes every segment with index < below. Called after a
// snapshot at segment boundary `below` makes the older segments
// redundant. Best-effort per file; the first removal error is returned
// but a leftover segment is harmless (replay skips its records by seq).
func Prune(dir string, below uint64) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg >= below {
			break
		}
		if err := os.Remove(filepath.Join(dir, SegmentName(seg))); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives power loss, not only process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// A Log is one open segment being appended to. Appends accumulate in a
// userspace buffer; Sync flushes it and (when the log was opened with
// fsync) forces the segment to stable storage. All methods belong to
// one goroutine — the server's WAL writer.
type Log struct {
	dir   string
	fsync bool
	seg   uint64
	f     *os.File
	bw    *bufio.Writer
	size  int64
}

// Open opens segment seg in dir for appending, creating the directory
// and the segment as needed. fsync selects whether Sync reaches the
// disk or only the kernel. The directory entries for the segment — and
// for the WAL directory itself, when Open created it — are fsynced
// before returning, mirroring Roll: otherwise records fsynced into a
// fresh segment could vanish on power loss with their file.
func Open(dir string, seg uint64, fsync bool) (*Log, error) {
	_, statErr := os.Stat(dir)
	madeDir := errors.Is(statErr, os.ErrNotExist)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	if madeDir {
		if err := syncDir(filepath.Dir(dir)); err != nil {
			f.Close()
			return nil, err
		}
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Log{dir: dir, fsync: fsync, seg: seg, f: f, bw: bufio.NewWriterSize(f, 1<<18), size: st.Size()}, nil
}

// Append buffers one sealed record. Durability is Sync's job.
func (l *Log) Append(rec []byte) error {
	n, err := l.bw.Write(rec)
	l.size += int64(n)
	return err
}

// Sync flushes buffered records to the file and, when the log was
// opened with fsync, forces them to stable storage. This is the
// group-commit point: everything appended since the last Sync becomes
// durable together.
func (l *Log) Sync() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if !l.fsync {
		return nil
	}
	return l.f.Sync()
}

// Seg returns the index of the open segment.
func (l *Log) Seg() uint64 { return l.seg }

// Size returns the byte size of the open segment including buffered
// appends.
func (l *Log) Size() int64 { return l.size }

// Roll syncs and closes the open segment and opens the next one. The
// new segment's directory entry is fsynced so the roll itself is
// durable. Snapshots roll first: every record in closed segments then
// predates the snapshot's per-shard sequence numbers.
func (l *Log) Roll() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(l.dir, SegmentName(l.seg+1)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.seg++
	l.f = f
	l.size = 0
	l.bw.Reset(f)
	return nil
}

// Close syncs and closes the open segment.
func (l *Log) Close() error {
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReplayResult summarizes one recovery pass.
type ReplayResult struct {
	Records   int
	Ops       int
	Truncated bool   // a torn or corrupt tail was cut off
	NextSeg   uint64 // segment to open for appending
}

// Replay walks every record in dir's segments with index ≥ from, in
// segment then file order, calling fn for each. Segments are streamed
// through a bounded buffer, so recovery memory is independent of
// segment size. Recovery stops cleanly at the first torn or corrupt
// record: the containing segment is truncated at the last good byte
// and any later segments — written after the point the log went bad —
// are removed, so the next process appends to an intact log. fn's
// error aborts the walk unchanged.
//
// The Record passed to fn aliases an internal arena reused between
// calls; copy what must outlive the callback.
func Replay(dir string, from uint64, fn func(Record) error) (ReplayResult, error) {
	segs, err := Segments(dir)
	if err != nil {
		return ReplayResult{}, err
	}
	res := ReplayResult{NextSeg: from}
	var arena []wire.Op
	recBuf := make([]byte, recHeaderSize+MaxRecordPayload)
	for si, seg := range segs {
		if seg < from {
			continue
		}
		res.NextSeg = seg
		path := filepath.Join(dir, SegmentName(seg))
		good, ok, err := replaySegment(path, recBuf, &arena, &res, fn)
		if err != nil {
			return res, err
		}
		if !ok {
			// The log ends here. Cut the bad tail and drop every
			// later segment so the survivors form an intact log.
			if err := os.Truncate(path, good); err != nil {
				return res, err
			}
			for _, later := range segs[si+1:] {
				if err := os.Remove(filepath.Join(dir, SegmentName(later))); err != nil {
					return res, err
				}
			}
			res.Truncated = true
			return res, nil
		}
	}
	return res, nil
}

// replaySegment streams one segment's records through fn, accumulating
// counts into res. It returns the byte offset of the end of the last
// good record and whether the segment was consumed cleanly; ok == false
// with a nil error means the segment turned torn or corrupt at offset
// good and the caller should truncate there. recBuf must hold a
// maximum-size record; arena is the op arena reused across records.
func replaySegment(path string, recBuf []byte, arena *[]wire.Op, res *ReplayResult, fn func(Record) error) (good int64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<18)
	for {
		if _, rerr := io.ReadFull(br, recBuf[:recHeaderSize]); rerr != nil {
			if rerr == io.EOF {
				return good, true, nil
			}
			if rerr == io.ErrUnexpectedEOF {
				return good, false, nil // torn mid-header
			}
			return good, false, rerr
		}
		n := int(binary.LittleEndian.Uint32(recBuf))
		if n < payloadHead || n > MaxRecordPayload {
			return good, false, nil // corrupt length; DecodeRecord would reject it too
		}
		if _, rerr := io.ReadFull(br, recBuf[recHeaderSize:recHeaderSize+n]); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return good, false, nil // torn mid-payload
			}
			return good, false, rerr
		}
		rec, consumed, derr := DecodeRecord(recBuf[:recHeaderSize+n], (*arena)[:0])
		if derr != nil {
			return good, false, nil
		}
		*arena = rec.Ops[:0]
		if ferr := fn(rec); ferr != nil {
			return good, false, ferr
		}
		res.Records++
		res.Ops += len(rec.Ops)
		good += int64(consumed)
	}
}
