package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimds/internal/analysis"
)

// dummy reports every call to a function named bad.
var dummy = &analysis.Analyzer{
	Name: "dummy",
	Doc:  "reports calls to bad()",
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
	},
}

func loadFixture(t *testing.T, dir string) (*analysis.Loader, *analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("fixture errors: %v", pkg.Errors)
	}
	return loader, pkg
}

func TestSuppression(t *testing.T) {
	_, pkg := loadFixture(t, "testdata/src/suppress")
	diags := analysis.RunPackage(pkg, []*analysis.Analyzer{dummy}, analysis.Options{})
	// Unsuppressed: fires() and the wrong-analyzer directive. The
	// justification-less //pimvet:allow still suppresses outside
	// strict mode.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "dummy" || d.Message != "call to bad" {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
}

func TestSuppressionStrict(t *testing.T) {
	_, pkg := loadFixture(t, "testdata/src/suppress")
	diags := analysis.RunPackage(pkg, []*analysis.Analyzer{dummy}, analysis.Options{Strict: true})
	var unjustified, calls int
	for _, d := range diags {
		switch {
		case d.Analyzer == "pimvet" && strings.Contains(d.Message, "suppression without justification"):
			unjustified++
		case d.Analyzer == "dummy":
			calls++
		default:
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	if unjustified != 1 {
		t.Errorf("got %d unjustified-suppression findings, want 1", unjustified)
	}
	if calls != 2 {
		t.Errorf("got %d dummy findings, want 2", calls)
	}
}

func TestFileLevelSuppression(t *testing.T) {
	_, pkg := loadFixture(t, "testdata/src/suppressfile")
	diags := analysis.RunPackage(pkg, []*analysis.Analyzer{dummy}, analysis.Options{Strict: true})
	if len(diags) != 0 {
		t.Fatalf("file-level allow should silence everything, got %v", diags)
	}
}

func TestPackageOverride(t *testing.T) {
	// The determinism fixture carries //pimvet:package; check the
	// loader surfaces it as the logical path while keeping the real
	// one.
	dir := filepath.Join("..", "analysis", "analyzers", "testdata", "src", "determinism")
	_, pkg := loadFixture(t, dir)
	if pkg.LogicalPath != "pimds/internal/core/fixture" {
		t.Errorf("LogicalPath = %q, want pimds/internal/core/fixture", pkg.LogicalPath)
	}
	if !strings.HasPrefix(pkg.Path, "pimds/internal/analysis/") {
		t.Errorf("Path = %q, want the real module-relative path", pkg.Path)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(loader.ModRoot, []string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("ExpandPatterns descended into %s", d)
		}
	}
	if len(dirs) < 3 {
		t.Errorf("expected at least analysis, analysistest and analyzers dirs, got %v", dirs)
	}
}

func TestLoaderResolvesIntraModuleImports(t *testing.T) {
	loader, pkg := loadFixture(t, filepath.Join("..", "sim"))
	if pkg.Types == nil || pkg.Types.Name() != "sim" {
		t.Fatalf("failed to type-check internal/sim: %+v", pkg)
	}
	// The sim package imports pimds/internal/model; the loader must
	// have resolved it through the module tree.
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "pimds/internal/model" {
			found = true
		}
	}
	if !found {
		t.Error("pimds/internal/model not among sim's resolved imports")
	}
	if loader.ModPath != "pimds" {
		t.Errorf("ModPath = %q, want pimds", loader.ModPath)
	}
}
