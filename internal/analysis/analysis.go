// Package analysis is a minimal static-analysis framework built on the
// standard library's go/parser, go/types and go/importer only (the repo
// is stdlib-only, so golang.org/x/tools/go/analysis is off limits).
//
// It exists for one purpose: the simulator's two load-bearing
// invariants — bit-for-bit determinism under a seed, and "every memory
// access is charged through the paper's cost model" — are not checkable
// by the Go compiler. The analyzers in internal/analysis/analyzers
// machine-check them on every change; cmd/pimvet is the CLI driver and
// CI gate.
//
// The framework mirrors x/tools' analysis API in miniature: an Analyzer
// holds a name, a doc string and a Run function; Run receives a Pass
// with the parsed files and full type information for one package and
// reports Diagnostics. Suppression is handled by the driver (see
// directives.go), not by individual analyzers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name is the analyzer's identifier, used on the command line, in
	// diagnostics and in //pimvet:allow directives.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// guards.
	Doc string

	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package's logical import path: the module-relative
	// import path, unless a file carries a //pimvet:package override
	// (used by testdata fixtures to opt into path-scoped checks).
	Path string

	// Lookup resolves a module import path to its loaded package, for
	// analyzers that follow calls across package boundaries (allocfree,
	// combinerpurity). It returns nil for paths outside the module and
	// is itself nil when the pass was built without a loader; callers
	// must treat both as "opaque callee".
	Lookup func(path string) *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPosf records a diagnostic at an already-resolved position.
// Analyzers use it for findings anchored to parsed directives, whose
// positions are stored resolved.
func (p *Pass) ReportPosf(posn token.Position, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      posn,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way go vet does:
// path/file.go:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// SortDiagnostics orders diagnostics by file, line, column and analyzer
// so output is stable across runs.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
