package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives are magic comments understood by pimvet:
//
//	//pimvet:allow analyzer1,analyzer2: justification
//	    Suppresses diagnostics from the listed analyzers on the same
//	    line or the immediately following line. The justification (text
//	    after the colon) is required under -strict.
//
//	//pimvet:allow-file analyzer1,analyzer2: justification
//	    Suppresses the listed analyzers for the whole file.
//
//	//pimvet:package import/path
//	    Overrides the package's logical import path. Used by testdata
//	    fixtures so path-scoped analyzers (which key off
//	    pimds/internal/sim, pimds/internal/core/...) treat the fixture
//	    as in-scope code.
//
// The analyzer list may be "all" to cover every analyzer.

// Directive is one parsed //pimvet: comment.
type Directive struct {
	Kind          string // "allow", "allow-file" or "package"
	Analyzers     []string
	Justification string
	Arg           string // for "package": the override path
	Pos           token.Position
}

// Matches reports whether the directive covers the named analyzer.
func (d *Directive) Matches(analyzer string) bool {
	for _, a := range d.Analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

const directivePrefix = "//pimvet:"

// parseDirectives extracts all pimvet directives from a file. Malformed
// directives (an unknown verb after //pimvet:) are returned with Kind
// "" so the driver can surface them instead of silently ignoring a
// suppression the author believed was active.
func parseDirectives(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			d := Directive{Pos: fset.Position(c.Pos())}
			switch {
			case strings.HasPrefix(rest, "package "):
				d.Kind = "package"
				d.Arg = strings.TrimSpace(strings.TrimPrefix(rest, "package "))
			case strings.HasPrefix(rest, "allow-file "):
				d.Kind = "allow-file"
				parseAllow(&d, strings.TrimPrefix(rest, "allow-file "))
			case strings.HasPrefix(rest, "allow "):
				d.Kind = "allow"
				parseAllow(&d, strings.TrimPrefix(rest, "allow "))
			default:
				d.Kind = "" // malformed; reported by the driver
				d.Arg = rest
			}
			out = append(out, d)
		}
	}
	return out
}

// parseAllow splits "analyzer1,analyzer2: justification".
func parseAllow(d *Directive, s string) {
	names := s
	if i := strings.Index(s, ":"); i >= 0 {
		names = s[:i]
		d.Justification = strings.TrimSpace(s[i+1:])
	}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			d.Analyzers = append(d.Analyzers, n)
		}
	}
}

// fileDirectives groups a file's directives for fast suppression
// lookups.
type fileDirectives struct {
	fileAllows []Directive
	lineAllows map[int][]Directive // keyed by source line of the comment
	malformed  []Directive
}

func buildFileDirectives(fset *token.FileSet, file *ast.File) fileDirectives {
	fd := fileDirectives{lineAllows: make(map[int][]Directive)}
	for _, d := range parseDirectives(fset, file) {
		switch d.Kind {
		case "allow":
			fd.lineAllows[d.Pos.Line] = append(fd.lineAllows[d.Pos.Line], d)
		case "allow-file":
			fd.fileAllows = append(fd.fileAllows, d)
		case "package":
			// handled at load time
		default:
			fd.malformed = append(fd.malformed, d)
		}
	}
	return fd
}

// suppressors returns the directives that suppress a diagnostic from
// analyzer at line: file-level allows plus line allows on the same line
// or the line directly above.
func (fd *fileDirectives) suppressors(analyzer string, line int) []Directive {
	var out []Directive
	for _, d := range fd.fileAllows {
		if d.Matches(analyzer) {
			out = append(out, d)
		}
	}
	for _, l := range [2]int{line, line - 1} {
		for _, d := range fd.lineAllows[l] {
			if d.Matches(analyzer) {
				out = append(out, d)
			}
		}
	}
	return out
}

// packageOverride returns the //pimvet:package override declared in any
// of the files, or "".
func packageOverride(fset *token.FileSet, files []*ast.File) string {
	for _, f := range files {
		for _, d := range parseDirectives(fset, f) {
			if d.Kind == "package" && d.Arg != "" {
				return d.Arg
			}
		}
	}
	return ""
}
