package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives are magic comments understood by pimvet:
//
//	//pimvet:allow analyzer1,analyzer2: justification
//	    Suppresses diagnostics from the listed analyzers on the same
//	    line or the immediately following line. The justification (text
//	    after the colon) is required under -strict.
//
//	//pimvet:allow-file analyzer1,analyzer2: justification
//	    Suppresses the listed analyzers for the whole file.
//
//	//pimvet:package import/path
//	    Overrides the package's logical import path. Used by testdata
//	    fixtures so path-scoped analyzers (which key off
//	    pimds/internal/sim, pimds/internal/core/...) treat the fixture
//	    as in-scope code.
//
//	//pimvet:allocfree note
//	//pimvet:nonblocking note
//	//pimvet:rotator note
//	//pimvet:window note
//	    Function annotations, written in the doc comment of a function
//	    declaration (or on the line directly above it). allocfree and
//	    nonblocking declare a hot-path contract — no heap allocations /
//	    no blocking operations, transitively — that the allocfree and
//	    combinerpurity analyzers enforce. rotator declares the function
//	    a sanctioned owner of metrics-window rotation and health
//	    evaluation (a dedicated ticker goroutine); obssafety flags
//	    rotation anywhere else in the server. window declares the
//	    function part of the pinned combining window — the stretch
//	    where a shard's combiner holds every waiter captive — and
//	    obssafety forbids file I/O and fsync inside it (durability runs
//	    on the WAL writer goroutine, never inline). The note is
//	    free-form and optional.
//
// The analyzer list may be "all" to cover every analyzer. A comment
// recognized as a directive must begin with //pimvet: (no leading
// whitespace inside the comment), which keeps prose that merely cites a
// directive — like this block — inert. Within one directive comment,
// each further occurrence of //pimvet: starts a new directive, so
// several can share a line. The verb is separated from its payload by
// any run of spaces or tabs.

// Directive kinds.
const (
	KindAllow       = "allow"
	KindAllowFile   = "allow-file"
	KindPackage     = "package"
	KindAllocFree   = "allocfree"
	KindNonBlocking = "nonblocking"
	KindRotator     = "rotator"
	KindWindow      = "window"
)

// Directive is one parsed //pimvet: comment.
type Directive struct {
	Kind          string // one of the Kind constants; "" when malformed
	Analyzers     []string
	Justification string
	Arg           string // "package": the override path; marks: the note; malformed: raw text
	Pos           token.Position
}

// Matches reports whether the directive covers the named analyzer.
func (d *Directive) Matches(analyzer string) bool {
	for _, a := range d.Analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

const directivePrefix = "//pimvet:"

// ParseDirectives extracts all pimvet directives from a file, malformed
// ones included (Kind ""). Analyzers use it to locate function
// annotations; suppression directives are consumed by the driver.
func ParseDirectives(fset *token.FileSet, file *ast.File) []Directive {
	return parseDirectives(fset, file)
}

// parseDirectives extracts all pimvet directives from a file. Malformed
// directives (an unknown verb after //pimvet:, or a known verb missing
// its required payload) are returned with Kind "" so the driver can
// surface them instead of silently ignoring a suppression the author
// believed was active.
func parseDirectives(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			// One comment may carry several directives; each occurrence
			// of the prefix starts a new one.
			text := c.Text
			for start := 0; start < len(text); {
				next := strings.Index(text[start+len(directivePrefix):], directivePrefix)
				end := len(text)
				if next >= 0 {
					end = start + len(directivePrefix) + next
				}
				chunk := text[start+len(directivePrefix) : end]
				pos := fset.Position(c.Pos() + token.Pos(start))
				out = append(out, parseOne(chunk, pos))
				start = end
			}
		}
	}
	return out
}

// parseOne parses the text after one //pimvet: prefix. The verb runs up
// to the first space or tab (so tab-separated payloads parse the same
// as space-separated ones).
func parseOne(chunk string, pos token.Position) Directive {
	d := Directive{Pos: pos}
	malformed := func() Directive {
		d.Kind = ""
		d.Analyzers = nil
		d.Justification = ""
		d.Arg = chunk
		return d
	}
	s := strings.TrimSpace(chunk)
	verb, rest := s, ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		verb, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	switch verb {
	case KindPackage:
		d.Kind = KindPackage
		d.Arg = rest
		if rest == "" {
			return malformed()
		}
	case KindAllow, KindAllowFile:
		d.Kind = verb
		parseAllow(&d, rest)
		if len(d.Analyzers) == 0 {
			return malformed()
		}
	case KindAllocFree, KindNonBlocking, KindRotator, KindWindow:
		d.Kind = verb
		d.Arg = rest // optional free-form note
	default:
		return malformed()
	}
	return d
}

// parseAllow splits "analyzer1,analyzer2: justification".
func parseAllow(d *Directive, s string) {
	names := s
	if i := strings.Index(s, ":"); i >= 0 {
		names = s[:i]
		d.Justification = strings.TrimSpace(s[i+1:])
	}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			d.Analyzers = append(d.Analyzers, n)
		}
	}
}

// fileDirectives groups a file's directives for fast suppression
// lookups.
type fileDirectives struct {
	fileAllows []Directive
	lineAllows map[int][]Directive // keyed by source line of the comment
	malformed  []Directive
}

func buildFileDirectives(fset *token.FileSet, file *ast.File) fileDirectives {
	fd := fileDirectives{lineAllows: make(map[int][]Directive)}
	for _, d := range parseDirectives(fset, file) {
		switch d.Kind {
		case KindAllow:
			fd.lineAllows[d.Pos.Line] = append(fd.lineAllows[d.Pos.Line], d)
		case KindAllowFile:
			fd.fileAllows = append(fd.fileAllows, d)
		case KindPackage, KindAllocFree, KindNonBlocking, KindRotator, KindWindow:
			// package: handled at load time.
			// allocfree/nonblocking/rotator/window: function
			// annotations, consumed by the analyzers through
			// ParseDirectives.
		default:
			fd.malformed = append(fd.malformed, d)
		}
	}
	return fd
}

// suppressors returns the directives that suppress a diagnostic from
// analyzer at line: file-level allows plus line allows on the same line
// or the line directly above.
func (fd *fileDirectives) suppressors(analyzer string, line int) []Directive {
	var out []Directive
	for _, d := range fd.fileAllows {
		if d.Matches(analyzer) {
			out = append(out, d)
		}
	}
	for _, l := range [2]int{line, line - 1} {
		for _, d := range fd.lineAllows[l] {
			if d.Matches(analyzer) {
				out = append(out, d)
			}
		}
	}
	return out
}

// packageOverride returns the //pimvet:package override declared in any
// of the files, or "".
func packageOverride(fset *token.FileSet, files []*ast.File) string {
	for _, f := range files {
		for _, d := range parseDirectives(fset, f) {
			if d.Kind == KindPackage && d.Arg != "" {
				return d.Arg
			}
		}
	}
	return ""
}
