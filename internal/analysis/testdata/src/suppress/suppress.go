// Fixture for the framework's suppression tests. The dummy analyzer in
// framework_test.go reports every call to bad().
package suppress

func bad() {}

func fires() {
	bad()
}

func suppressedSameLine() {
	bad() //pimvet:allow dummy: demonstrating a justified same-line suppression
}

func suppressedLineAbove() {
	//pimvet:allow dummy: demonstrating a justified previous-line suppression
	bad()
}

func suppressedNoJustification() {
	bad() //pimvet:allow dummy
}

func otherAnalyzerDirectiveDoesNotApply() {
	bad() //pimvet:allow somethingelse: wrong analyzer name, must not suppress
}
