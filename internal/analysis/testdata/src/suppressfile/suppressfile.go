// Fixture: a file-level allow silences the dummy analyzer everywhere
// in the file.
//
//pimvet:allow-file dummy: the whole file is exempt, with a reason
package suppressfile

func bad() {}

func a() { bad() }

func b() { bad() }
