package analysis

import "fmt"

// Options controls a Run.
type Options struct {
	// Strict additionally reports //pimvet:allow directives that carry
	// no justification text (the part after the colon). A suppression
	// without a recorded reason is itself a finding: the whole point of
	// the allowlist is that every exemption from an invariant is
	// justified in-tree.
	Strict bool
}

// Run type-checks each directory's package and applies every analyzer,
// returning the surviving (unsuppressed) diagnostics in stable order.
// A package that fails to parse or type-check aborts the run with an
// error: analyzers on broken trees produce nonsense.
func Run(loader *Loader, dirs []string, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("pimvet: %s: %v", dir, pkg.Errors[0])
		}
		diags = append(diags, RunPackage(pkg, analyzers, opts)...)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package and filters
// the results through the package's //pimvet:allow directives.
func RunPackage(pkg *Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.LogicalPath,
			diags:     &raw,
		}
		if pkg.loader != nil {
			pass.Lookup = pkg.loader.PackageFor
		}
		a.Run(pass)
	}

	byFile := make(map[string]*fileDirectives)
	var out []Diagnostic
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		fd := buildFileDirectives(pkg.Fset, f)
		byFile[name] = &fd
		for _, m := range fd.malformed {
			out = append(out, Diagnostic{
				Analyzer: "pimvet",
				Pos:      m.Pos,
				Message:  fmt.Sprintf("malformed //pimvet: directive %q", directivePrefix+m.Arg),
			})
		}
		if opts.Strict {
			for _, d := range append(append([]Directive(nil), fd.fileAllows...), flatten(fd.lineAllows)...) {
				if d.Justification == "" {
					out = append(out, Diagnostic{
						Analyzer: "pimvet",
						Pos:      d.Pos,
						Message:  "suppression without justification (write //pimvet:" + d.Kind + " <analyzers>: <reason>)",
					})
				}
			}
		}
	}
	for _, d := range raw {
		fd := byFile[d.Pos.Filename]
		if fd != nil && len(fd.suppressors(d.Analyzer, d.Pos.Line)) > 0 {
			continue
		}
		out = append(out, d)
	}
	return out
}

func flatten(m map[int][]Directive) []Directive {
	var out []Directive
	for _, ds := range m {
		out = append(out, ds...)
	}
	return out
}
