package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string // absolute directory
	Path  string // module-relative import path (modulePath/rel/dir)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// LogicalPath is Path unless a //pimvet:package directive overrides
	// it (testdata fixtures use this to opt into path-scoped checks).
	LogicalPath string

	// Errors holds parse and type errors. Analyzers still run on
	// packages with errors only if the caller chooses to.
	Errors []error

	loader *Loader                    // back-reference for cross-package lookups
	supp   map[string]*fileDirectives // lazy per-file directive cache, keyed by filename
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos would be filtered by this package's own //pimvet:allow
// directives. Cross-package analyzers use it so a justified exemption
// inside a callee's package keeps suppressing the finding when the
// callee is reached from a marked function elsewhere.
func (p *Package) Suppressed(analyzer string, pos token.Position) bool {
	if p.supp == nil {
		p.supp = make(map[string]*fileDirectives, len(p.Files))
		for _, f := range p.Files {
			fd := buildFileDirectives(p.Fset, f)
			p.supp[p.Fset.Position(f.Pos()).Filename] = &fd
		}
	}
	fd := p.supp[pos.Filename]
	return fd != nil && len(fd.suppressors(analyzer, pos.Line)) > 0
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: intra-module imports are resolved by
// walking the module tree, everything else goes to the "source"
// importer (which type-checks GOROOT packages from source — no compiled
// export data needed).
type Loader struct {
	ModRoot string // absolute path of the directory containing go.mod
	ModPath string // module path declared in go.mod

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // keyed by import path
	dirs map[string]*Package // keyed by absolute dir
}

// NewLoader locates the module containing dir and returns a loader for
// it.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: path,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		dirs:    make(map[string]*Package),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir to the nearest go.mod and parses its
// module line.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// LoadDir parses and type-checks the package in dir (non-test files
// only). Results are cached, so loading a package twice — directly or
// via imports — is free.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.dirs[abs]; ok {
		return p, nil
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", abs, l.ModRoot)
	}
	importPath := l.ModPath
	if rel != "." {
		importPath = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(importPath, abs)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	pkg := &Package{Dir: dir, Path: importPath, Fset: l.fset, loader: l}
	// Register before type-checking so import cycles fail in go/types
	// (as an error) rather than recursing forever here.
	l.pkgs[importPath] = pkg
	l.dirs[dir] = pkg

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	for _, n := range names {
		path := filepath.Join(dir, n)
		src, err := os.ReadFile(path)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		if buildExcluded(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	// Check reports the first hard error; the Error hook above already
	// collected it (and any others), so the return is redundant here.
	pkg.Types, _ = conf.Check(importPath, l.fset, pkg.Files, pkg.Info)

	pkg.LogicalPath = pkg.Path
	if o := packageOverride(l.fset, pkg.Files); o != "" {
		pkg.LogicalPath = o
	}
	return pkg, nil
}

// buildExcluded reports whether the file's //go:build constraint (if
// any) excludes it from the default build the analyzer models: current
// GOOS/GOARCH, gc, no extra tags. Without this, tag-paired files (such
// as race.go/norace.go declaring the same constant) would both load and
// collide in the type checker. Only the //go:build form is recognized;
// the legacy // +build lines alone do not exclude a file.
func buildExcluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return false
			}
			return !expr.Eval(buildTagSatisfied)
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		// Reached the package clause (constraints must precede it).
		return false
	}
	return false
}

// buildTagSatisfied is the loader's tag assignment: the host platform
// and compiler are in, every go1.N language tag this toolchain accepts
// is in, and everything else (race, purego, custom tags) is out.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// PackageFor returns the loaded module package with the given import
// path, loading it on demand. It returns nil for paths outside the
// module and for packages that fail to load or type-check — callers
// treat such callees as opaque.
func (l *Loader) PackageFor(path string) *Package {
	if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
		return nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	p, err := l.load(path, dir)
	if err != nil || p.Types == nil {
		return nil
	}
	return p
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages are
// loaded from the module tree, "unsafe" is built in, and everything
// else (the standard library) is delegated to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("analysis: import %q failed to type-check", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// ExpandPatterns resolves go-tool-style package patterns relative to
// root into package directories: "dir" names one directory, "dir/..."
// walks recursively. testdata, vendor, hidden and underscore-prefixed
// directories are skipped, as are directories with no non-test Go
// files.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		base = filepath.Clean(base)
		if !recursive {
			if ok, err := hasGoFiles(base); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("pimvet: no Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(p); err != nil {
				return err
			} else if ok {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
