// Package analysistest runs analyzers over testdata fixture packages
// and checks their diagnostics against // want "regexp" comments, in
// the style of golang.org/x/tools/go/analysis/analysistest but
// stdlib-only.
//
// A fixture line expecting diagnostics carries one or more quoted
// regular expressions:
//
//	x := rand.Int() // want `global math/rand\.Int`
//	f(a, b)         // want "first finding" "second finding"
//
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic; anything unmatched fails the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pimds/internal/analysis"
)

// expectation is one want clause.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quoteRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the package in fixtureDir, applies the analyzer and
// verifies its diagnostics against the fixture's want comments.
func Run(t *testing.T, fixtureDir string, a *analysis.Analyzer, opts analysis.Options) {
	t.Helper()
	diags := Diagnostics(t, fixtureDir, a, opts)

	var wants []*expectation
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(fixtureDir, e.Name())
		ws, err := parseWants(path)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// Diagnostics loads the fixture package and returns the analyzer's
// surviving diagnostics (after suppression), failing the test on load
// or type errors.
func Diagnostics(t *testing.T, fixtureDir string, a *analysis.Analyzer, opts analysis.Options) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range pkg.Errors {
		t.Errorf("fixture error: %v", e)
	}
	if t.Failed() {
		t.FailNow()
	}
	diags := analysis.RunPackage(pkg, []*analysis.Analyzer{a}, opts)
	analysis.SortDiagnostics(diags)
	return diags
}

// parseWants extracts want expectations from one fixture file.
func parseWants(path string) ([]*expectation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		quoted := quoteRE.FindAllString(m[1], -1)
		if len(quoted) == 0 {
			return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", path, i+1)
		}
		for _, q := range quoted {
			var pat string
			if strings.HasPrefix(q, "`") {
				pat = strings.Trim(q, "`")
			} else {
				pat, err = strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", path, i+1, q, err)
				}
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
			}
			out = append(out, &expectation{file: abs, line: i + 1, pattern: re})
		}
	}
	return out, nil
}
