// Package analyzers holds the pimvet checks. Each analyzer guards one
// invariant of the reproduction that the compiler cannot see:
//
//   - determinism: the simulator is bit-for-bit reproducible under a
//     seed (no wall clocks, no global RNG, no map-iteration-order or
//     goroutine-schedule dependence in simulated code).
//   - costcharge: algorithm code cannot touch vault-resident state
//     without charging the paper's latency model.
//   - atomichygiene: the host-side concurrent structures use sync and
//     sync/atomic coherently (no mixed atomic/plain access, no
//     by-value lock copies).
//   - obssafety: observability is write-only from simulated code, so
//     enabling metrics changes results by exactly zero.
//   - allocfree: functions marked //pimvet:allocfree (server combiner
//     apply, wire encode/decode, loadgen inner loop) and their module
//     callees never heap-allocate.
//   - combinerpurity: functions marked //pimvet:nonblocking and their
//     module callees never block (no channel ops, locks, sleeps or
//     I/O).
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"pimds/internal/analysis"
)

// All returns every pimvet analyzer in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		CostCharge,
		AtomicHygiene,
		ObsSafety,
		AllocFree,
		CombinerPurity,
	}
}

// ByName resolves a comma-separated analyzer list ("" or "all" means
// everything). Unknown names return nil.
func ByName(names string) []*analysis.Analyzer {
	if names == "" || names == "all" {
		return All()
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

// Package-path scopes. Analyzers use the pass's logical path (which
// testdata fixtures override with //pimvet:package) so scope rules are
// testable.
const (
	simPath    = "pimds/internal/sim"
	corePath   = "pimds/internal/core"
	cdsPath    = "pimds/internal/cds"
	obsPath    = "pimds/internal/obs"
	healthPath = "pimds/internal/obs/health"
	profPath   = "pimds/internal/prof"
	serverPath = "pimds/internal/server"
)

func underPath(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// namedType unwraps pointers and returns the named type of t, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeFromPkg reports whether t (possibly behind pointers) is a named
// type declared in a package whose path is pkgPath (or, when
// underTree is true, any package under that path prefix).
func typeFromPkg(t types.Type, pkgPath string, underTree bool) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	if underTree {
		return underPath(p, pkgPath)
	}
	return p == pkgPath
}

// isSimType reports whether t is sim.<name> (possibly behind pointers).
func isSimType(t types.Type, name string) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == simPath && n.Obj().Name() == name
}

// pkgFunc resolves a call expression to the package-level function or
// method it invokes, using type information. Returns nil for calls
// through function values, built-ins and conversions.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleePkgPath returns the import path of the package a call resolves
// into, or "".
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	f := pkgFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// funcNodes yields every function body in the files: declarations and
// literals, paired with their parameter list types.
type funcNode struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	typ  *ast.FuncType
	body *ast.BlockStmt
}

func (f funcNode) name() string {
	if f.decl != nil {
		return f.decl.Name.Name
	}
	return "func literal"
}

func allFuncs(files []*ast.File) []funcNode {
	var out []funcNode
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, funcNode{decl: fn, typ: fn.Type, body: fn.Body})
				}
			case *ast.FuncLit:
				out = append(out, funcNode{lit: fn, typ: fn.Type, body: fn.Body})
			}
			return true
		})
	}
	return out
}

// paramOfType returns the identifier of the first parameter whose type
// matches pred, or nil.
func paramOfType(info *types.Info, typ *ast.FuncType, pred func(types.Type) bool) *ast.Ident {
	if typ.Params == nil {
		return nil
	}
	for _, field := range typ.Params.List {
		t := info.Types[field.Type].Type
		if t == nil || !pred(t) {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0]
		}
	}
	return nil
}

// inspectShallow walks body but does not descend into nested function
// literals: their statements execute on their own schedule and are
// analyzed as functions in their own right.
func inspectShallow(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		return fn(n)
	})
}

// rootIdent returns the identifier at the base of a selector/index
// chain: for a.b[i].c it returns a. Returns nil when the base is not a
// plain identifier (e.g. a call result or composite literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// node's source range.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n != nil &&
		obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}
