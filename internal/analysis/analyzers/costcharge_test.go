package analyzers_test

import (
	"testing"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analysistest"
	"pimds/internal/analysis/analyzers"
)

func TestCostCharge(t *testing.T) {
	analysistest.Run(t, "testdata/src/costcharge", analyzers.CostCharge, analysis.Options{})
}
