package analyzers_test

import (
	"testing"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analysistest"
	"pimds/internal/analysis/analyzers"
)

func TestAtomicHygiene(t *testing.T) {
	analysistest.Run(t, "testdata/src/atomichygiene", analyzers.AtomicHygiene, analysis.Options{})
}
