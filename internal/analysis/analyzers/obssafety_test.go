package analyzers_test

import (
	"testing"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analysistest"
	"pimds/internal/analysis/analyzers"
)

func TestObsSafety(t *testing.T) {
	analysistest.Run(t, "testdata/src/obssafety", analyzers.ObsSafety, analysis.Options{})
}

func TestObsSafetyServerSpans(t *testing.T) {
	analysistest.Run(t, "testdata/src/obssafety_span", analyzers.ObsSafety, analysis.Options{})
}

func TestObsSafetyServerRotation(t *testing.T) {
	analysistest.Run(t, "testdata/src/obssafety_rotate", analyzers.ObsSafety, analysis.Options{})
}

func TestObsSafetyWindowIO(t *testing.T) {
	analysistest.Run(t, "testdata/src/obssafety_window", analyzers.ObsSafety, analysis.Options{})
}
