package analyzers

import (
	"go/ast"
	"go/types"

	"pimds/internal/analysis"
)

// Determinism guards the simulator's core guarantee: the same
// configuration and seed produce the identical event trace. Anything
// that injects wall-clock time, unseeded randomness, map iteration
// order or goroutine scheduling into simulated state breaks it.
//
// Checks, everywhere the analyzer runs:
//   - wall-clock reads: time.Now, time.Since, time.Until, time.Sleep,
//     time.Tick, time.After, time.NewTicker, time.NewTimer;
//   - the global math/rand generator (rand.Int, rand.Intn, rand.Seed,
//     rand.Shuffle, ... — every top-level function except the
//     constructors New, NewSource and NewZipf);
//   - rand.New whose source is not an explicit rand.NewSource(seed)
//     (an RNG whose seed is not visible at the call site cannot be
//     reproduced from the run's configuration).
//
// Checks only inside simulator-scoped packages (pimds/internal/sim and
// pimds/internal/core/...), where all state is simulated state:
//   - go statements (the simulator is single-goroutine by design; a
//     goroutine's interleaving is not replayable);
//   - range loops over maps whose body writes state that outlives the
//     function (receiver fields, captured variables, globals) or calls
//     pointer-receiver methods on such state — map iteration order
//     differs run to run, so such loops apply order-dependent
//     mutations. Building function-local values (e.g. collecting keys
//     to sort) is fine.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flags wall clocks, global/unseeded RNG, goroutines and map-order-dependent mutation in simulated code",
	Run:  runDeterminism,
}

// wallClockFuncs are time-package functions that read or depend on the
// wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand functions that are fine to call:
// they build explicitly-seeded generators rather than using the global
// one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(pass *analysis.Pass) {
	info := pass.TypesInfo
	simScoped := underPath(pass.Path, simPath) || underPath(pass.Path, corePath)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.GoStmt:
				if simScoped {
					pass.Reportf(n.Pos(),
						"goroutine spawned in simulator-scoped code; the simulator is single-goroutine and goroutine interleavings are not replayable")
				}
			}
			return true
		})
	}

	if !simScoped {
		return
	}
	for _, fn := range allFuncs(pass.Files) {
		body := fn.body
		inspectShallow(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if site := mapRangeMutation(info, rng, fn); site != nil {
				pass.Reportf(site.Pos(),
					"map-range body mutates state that outlives %s; map iteration order is random, so this mutation order is not reproducible (iterate sorted keys instead)", fn.name())
			}
			return true
		})
	}
}

func checkDeterminismCall(pass *analysis.Pass, call *ast.CallExpr) {
	f := pkgFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if wallClockFuncs[f.Name()] && f.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulated time must come from the engine (sim.Time), and host-side timing needs an explicit //pimvet:allow", f.Name())
		}
	case "math/rand", "math/rand/v2":
		if f.Type().(*types.Signature).Recv() != nil {
			return // methods on *rand.Rand are fine: the source was seeded at construction
		}
		if !randConstructors[f.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s is seeded from runtime state; use rand.New(rand.NewSource(seed)) with a configured seed", f.Name())
			return
		}
		if f.Name() == "New" && !seededSourceArg(pass.TypesInfo, call) {
			pass.Reportf(call.Pos(),
				"rand.New with a source not built by rand.NewSource(seed) at the call site; the seed must be auditable where the generator is created")
		}
	}
}

// seededSourceArg reports whether the single argument of rand.New is a
// direct rand.NewSource(...) call.
func seededSourceArg(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	f := pkgFunc(info, inner)
	return f != nil && f.Pkg() != nil &&
		(f.Pkg().Path() == "math/rand" || f.Pkg().Path() == "math/rand/v2") &&
		(f.Name() == "NewSource" || f.Name() == "NewPCG" || f.Name() == "NewChaCha8")
}

// mapRangeMutation returns the first node in the range body that
// mutates state declared outside the enclosing function, or nil.
func mapRangeMutation(info *types.Info, rng *ast.RangeStmt, fn funcNode) ast.Node {
	outer := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		// Anything not declared inside this function's body — the
		// receiver, parameters, captured variables, package globals —
		// is (or aliases) state observable after the loop, so
		// order-dependent writes to it are flagged.
		return !declaredWithin(v, fn.body)
	}

	var found ast.Node
	inspectShallow(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if outer(lhs) {
					found = n
					return false
				}
			}
		case *ast.IncDecStmt:
			if outer(n.X) {
				found = n
				return false
			}
		case *ast.CallExpr:
			// A pointer-receiver method on outer state mutates (or may
			// mutate) it in map order: m.parts[h(k)].table.Put(k, v).
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok {
					if f, ok := s.Obj().(*types.Func); ok && recvIsPointer(f) && outer(sel.X) {
						found = n
						return false
					}
				}
			}
			// &outer passed as an argument hands mutable access over.
			for _, arg := range n.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "&" && outer(u.X) {
					found = n
					return false
				}
			}
		}
		return true
	})
	return found
}

func recvIsPointer(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().(*types.Pointer)
	return ok
}
