package analyzers_test

import (
	"testing"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analysistest"
	"pimds/internal/analysis/analyzers"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata/src/allocfree", analyzers.AllocFree, analysis.Options{Strict: true})
}
