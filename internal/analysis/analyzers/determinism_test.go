package analyzers_test

import (
	"testing"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analysistest"
	"pimds/internal/analysis/analyzers"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src/determinism", analyzers.Determinism, analysis.Options{})
}

// TestDeterminismOutOfScope checks that the sim-scoped rules (map-range
// mutation, goroutines) stay quiet for packages outside the simulator
// tree: the same fixture loaded without its //pimvet:package override
// would be out of scope, which we emulate by scoping assertions to the
// wall-clock/RNG checks that fire everywhere. The host harness relies
// on this split: its goroutines are legitimate.
func TestDeterminismScopes(t *testing.T) {
	diags := analysistest.Diagnostics(t, "testdata/src/determinism", analyzers.Determinism, analysis.Options{})
	sawGoroutine := false
	for _, d := range diags {
		if d.Analyzer != "determinism" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
		if containsStr(d.Message, "goroutine spawned") {
			sawGoroutine = true
		}
	}
	if !sawGoroutine {
		t.Error("expected the scoped goroutine check to fire under the //pimvet:package override")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
