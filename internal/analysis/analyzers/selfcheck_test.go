package analyzers_test

import (
	"os"
	"path/filepath"
	"testing"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analyzers"
)

// TestRepoIsClean is the meta-test behind the CI gate: `pimvet -strict
// ./...` must be clean on the repository itself. Every analyzer runs
// over every package; any finding — including an unjustified
// //pimvet:allow — fails.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(loader.ModRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("pattern expansion found only %d package dirs under %s; expansion is broken", len(dirs), loader.ModRoot)
	}
	diags, err := analysis.Run(loader, dirs, analyzers.All(), analysis.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("pimvet finding on the tree: %s", d)
	}
	// Sanity-check the expansion covered the load-bearing packages.
	want := map[string]bool{"sim": true, "pimhash": true, "harness": true}
	for _, d := range dirs {
		delete(want, filepath.Base(d))
	}
	for missing := range want {
		t.Errorf("package %q not covered by ./... expansion", missing)
	}
}
