package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"pimds/internal/analysis"
)

// CostCharge guards the cost-model accounting of the PIM algorithms
// (pimds/internal/core/...): vault-resident state — the sequential
// structures from pimds/internal/cds that partitions keep behind their
// PIM cores — may be touched from handler code only alongside charges
// to the simulator's latency model.
//
// "Handler code" is any function with a *sim.PIMCore or *sim.CPU
// parameter: the message handlers themselves plus the helpers they
// thread their core through. A handler-context function that calls
// methods on (or reads fields of) a cds-declared type must charge the
// core at least once — directly via the charged accessor API (Read,
// Write, ReadN, RemoteRead/Write, MemRead/Write/ReadN, LLCRead/Write,
// Atomic, Compute, Local, Send, TakeQueued) or by calling a
// package-local function that transitively does. Setup paths (New,
// Preload, post-run accessors) carry no core and are exempt: the
// protocol defines them as cost-free.
//
// The check is deliberately coarse — it proves "no free rides", not
// "the charge count is exactly right" (the simulator's runtime
// accounting and the model-vs-sim comparison tests pin the amounts).
// What it makes impossible is an algorithm quietly serving requests
// out of vault state without paying the latency model at all.
var CostCharge = &analysis.Analyzer{
	Name: "costcharge",
	Doc:  "flags handler code in internal/core that touches vault-resident cds structures without charging the latency model",
	Run:  runCostCharge,
}

// chargeMethods is the charged accessor API on *sim.PIMCore and
// *sim.CPU: every method that advances the calling core's local clock.
var chargeMethods = map[string]bool{
	// PIM core.
	"Read": true, "Write": true, "ReadN": true,
	"RemoteRead": true, "RemoteWrite": true,
	// CPU.
	"MemRead": true, "MemWrite": true, "MemReadN": true,
	"LLCRead": true, "LLCWrite": true, "Atomic": true,
	// Both.
	"Local": true, "Compute": true, "Send": true, "TakeQueued": true,
}

func isCoreParam(t types.Type) bool {
	return isSimType(t, "PIMCore") || isSimType(t, "CPU")
}

func runCostCharge(pass *analysis.Pass) {
	if !underPath(pass.Path, corePath) {
		return
	}
	info := pass.TypesInfo

	// Helper propagation (shared machinery in facts.go): which
	// package-level functions charge a core, directly or through
	// package-local calls?
	fns := make(map[*types.Func]*localFact)
	var nodes []funcNode
	for _, fn := range allFuncs(pass.Files) {
		nodes = append(nodes, fn)
		if fn.decl == nil {
			continue
		}
		obj, ok := info.Defs[fn.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		lf := &localFact{}
		scanCharges(info, fn.body, &lf.direct, &lf.callees)
		fns[obj] = lf
	}
	charges := propagate(fns)

	for _, fn := range nodes {
		if paramOfType(info, fn.typ, isCoreParam) == nil {
			continue // not handler code: setup/accessor path, cost-free by protocol
		}
		var direct bool
		var callees []*types.Func
		scanCharges(info, fn.body, &direct, &callees)
		charging := direct
		for _, callee := range callees {
			if charges[callee] {
				charging = true
				break
			}
		}
		if charging {
			continue
		}
		for _, touch := range cdsTouches(info, fn.body) {
			pass.Reportf(touch.pos,
				"%s in handler code (%s) without charging the cost model; vault-resident accesses must pay Read/Write/ReadN (or a helper that does)",
				touch.what, fn.name())
		}
	}
}

// scanCharges records whether body directly calls a charge method on a
// *sim.PIMCore / *sim.CPU, and which package-local functions it calls.
func scanCharges(info *types.Info, body ast.Node, direct *bool, callees *[]*types.Func) {
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok {
				if f, ok := s.Obj().(*types.Func); ok &&
					chargeMethods[f.Name()] && isCoreParam(s.Recv()) {
					*direct = true
					return true
				}
			}
		}
		if f := pkgFunc(info, call); f != nil {
			*callees = append(*callees, f)
		}
		return true
	})
}

type touch struct {
	pos  token.Pos
	what string
}

// cdsTouches lists accesses to cds-declared state in body: method
// calls on, and field reads/writes of, types declared under
// pimds/internal/cds, reached through a pointer. The pointer
// requirement separates vault-resident structures (always held by
// pointer behind a partition) from by-value request descriptors like
// seqlist.Op, which travel in messages as copies and are not memory.
func cdsTouches(info *types.Info, body ast.Node) []touch {
	var out []touch
	inspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok {
			return true
		}
		if _, isPtr := s.Recv().(*types.Pointer); !isPtr {
			return true
		}
		if !typeFromPkg(s.Recv(), cdsPath, true) {
			return true
		}
		switch obj := s.Obj().(type) {
		case *types.Func:
			out = append(out, touch{sel.Sel.Pos(), "call to " + namedType(s.Recv()).Obj().Name() + "." + obj.Name()})
		case *types.Var:
			out = append(out, touch{sel.Sel.Pos(), "access to field " + namedType(s.Recv()).Obj().Name() + "." + obj.Name()})
		}
		return true
	})
	return out
}
